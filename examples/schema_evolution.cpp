// Schema evolution: when a DTD changes, which stored queries keep their
// guarantees? For each query we check satisfiability and key containments
// under the old and the new schema, and we exploit EDTD expressiveness
// (abstract labels ≠ concrete labels) to bound section-nesting depth — the
// paper's own example of a schema no plain DTD can express (Section 2.1).

#include <cstdio>

#include "xpc/xpc.h"

int main() {
  // Version 1: sections nest arbitrarily.
  xpc::Edtd v1 = xpc::Edtd::Parse(R"(
    doc := section+
    section := (section | para)*
    para := epsilon
  )").value();

  // Version 2: an *extended* DTD capping nesting at depth 2 — abstract
  // labels s1, s2 both render as "section".
  xpc::Edtd v2 = xpc::Edtd::Parse(R"(
    doc := s1+
    s1 -> section := (s2 | para)*
    s2 -> section := para*
    para := epsilon
  )").value();

  std::printf("v1 plain DTD: %s; v2 plain DTD: %s\n\n",
              v1.IsPlainDtd() ? "yes" : "no", v2.IsPlainDtd() ? "yes" : "no");

  xpc::Solver solver;
  struct Check {
    const char* what;
    const char* alpha;
    const char* beta;
  };
  const Check checks[] = {
      {"sections at depth 3 exist", "down/down[section]/down[section]/down[section]",
       "down[false]"},
      {"every para sits in a section", "down*[para]", "down*[section]/down[para]"},
      {"deep paras reachable via 2 sections", "down*[para]",
       "down/down[section]/down*[para]"},
  };

  for (const Check& c : checks) {
    xpc::PathPtr alpha = xpc::ParsePath(c.alpha).value();
    xpc::PathPtr beta = xpc::ParsePath(c.beta).value();
    xpc::ContainmentResult r1 = solver.Contains(alpha, beta, v1);
    xpc::ContainmentResult r2 = solver.Contains(alpha, beta, v2);
    std::printf("%-40s  v1: %-14s v2: %s\n", c.what,
                xpc::ContainmentVerdictName(r1.verdict),
                xpc::ContainmentVerdictName(r2.verdict));
  }

  // Conformance spot check: a depth-3 document conforms to v1 but not v2.
  xpc::XmlTree deep =
      xpc::ParseTree("doc(section(section(section(para))))").value();
  std::printf("\ndepth-3 document conforms: v1=%s v2=%s\n",
              xpc::Conforms(deep, v1) ? "yes" : "no",
              xpc::Conforms(deep, v2) ? "yes" : "no");

  // Witness typing under v2 for a legal document.
  xpc::XmlTree legal = xpc::ParseTree("doc(section(section(para),para))").value();
  auto typing = xpc::WitnessTyping(legal, v2);
  std::printf("witness typing of %s:\n", xpc::TreeToText(legal).c_str());
  for (xpc::NodeId n = 0; n < legal.size(); ++n) {
    std::printf("  node %d: %s -> %s\n", n, typing[n].c_str(), legal.label(n).c_str());
  }
  return 0;
}
