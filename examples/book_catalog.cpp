// The paper's running example (Section 2.2): the book EDTD and the four
// "image retrieval" queries written in CoreXPath(≈), CoreXPath(∩),
// CoreXPath(−) and CoreXPath(*). Demonstrates:
//   - sampling documents from an EDTD and validating conformance,
//   - evaluating each extension's query,
//   - checking on every sample that the ≈-query and the *-query select the
//     same nodes ("first image of each chapter"), and that the −-query
//     refines the ∩-query.

#include <cstdio>
#include <string>

#include "xpc/xpc.h"

namespace {

const char* kBookEdtd = R"(
  Book := Chapter+
  Chapter := Section+
  Section := (Section | Paragraph | Image)+
  Paragraph := epsilon
  Image := epsilon
)";

// following / preceding, as defined in the paper.
const char* kFollowing = "up*/right+/down*";
const char* kPreceding = "up*/left+/down*";

}  // namespace

int main() {
  xpc::Edtd book = xpc::Edtd::Parse(kBookEdtd).value();

  // CoreXPath(≈): from the root, the first image of each chapter.
  xpc::PathPtr q_eq = xpc::ParsePath(
      std::string("down*[Image and not(eq(") + kPreceding +
      "[Image], up+[Chapter]/down+[Image]))]").value();

  // CoreXPath(*): the same query via transitive closure. The paper writes
  // ↓[Chapter]/(↓[¬⟨←⟩] ∪ .[¬⟨↓⁺[Image]⟩]/→)*[Image]; note that its skip
  // test ¬⟨↓⁺[Image]⟩ checks only *proper* descendants, so the walk may
  // step right past an image leaf and select later images too. We use the
  // descendant-or-self test ¬⟨↓*[Image]⟩, which makes the walk stop at the
  // first image in document order (the stated intent).
  xpc::PathPtr q_star = xpc::ParsePath(
      "down[Chapter]/(down[not(<left>)] | .[not(<down*[Image]>)]/right)*[Image]").value();

  // CoreXPath(∩): from a node, all following images in the same chapter.
  xpc::PathPtr q_cap = xpc::ParsePath(
      std::string("(") + kFollowing + "[Image]) & (up+[Chapter]/down+[Image])").value();

  // CoreXPath(−): only the first following image in the same chapter.
  xpc::PathPtr q_minus = xpc::ParsePath(
      std::string("((") + kFollowing + "[Image]) & (up+[Chapter]/down+[Image])) - (" +
      kFollowing + "[Image]/" + kFollowing + "[Image])").value();

  std::printf("Queries (paper Section 2.2):\n");
  std::printf("  q_eq    = %s\n", xpc::ToString(q_eq).c_str());
  std::printf("  q_star  = %s\n", xpc::ToString(q_star).c_str());
  std::printf("  q_cap   = %s\n", xpc::ToString(q_cap).c_str());
  std::printf("  q_minus = %s\n\n", xpc::ToString(q_minus).c_str());

  int agree = 0, total = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto [ok, doc] = xpc::SampleConformingTree(book, 30, seed);
    if (!ok || !xpc::Conforms(doc, book)) continue;
    ++total;
    xpc::Evaluator eval(doc);

    // "First image of each chapter": ≈-query vs *-query, from the root.
    xpc::Relation from_eq = eval.EvalPath(q_eq);
    xpc::Relation from_star = eval.EvalPath(q_star);
    std::string selected;
    bool same = true;
    for (xpc::NodeId n = 0; n < doc.size(); ++n) {
      bool a = from_eq.Contains(doc.root(), n);
      bool b = from_star.Contains(doc.root(), n);
      if (a) selected += " " + std::to_string(n);
      same = same && a == b;
    }
    // The −-query must be a sub-relation of the ∩-query.
    xpc::Relation diff = eval.EvalPath(q_minus);
    diff.SubtractWith(eval.EvalPath(q_cap));
    same = same && diff.Empty();
    agree += same;

    std::printf("doc %2llu (%2d nodes): first images per chapter:%s  [%s]\n",
                static_cast<unsigned long long>(seed), doc.size(),
                selected.empty() ? " (none)" : selected.c_str(),
                same ? "queries agree" : "MISMATCH");
  }
  std::printf("\n%d/%d sampled documents: ≈/* queries agree and − refines ∩.\n",
              agree, total);

  // Static analysis across ALL documents (no schema needed): the
  // first-image query only ever selects Images.
  xpc::Solver solver;
  xpc::ContainmentResult r =
      solver.Contains(q_eq, xpc::ParsePath("down*[Image]").value());
  std::printf("q_eq ⊆ down*[Image] over all documents: %s\n",
              xpc::ContainmentVerdictName(r.verdict));
  return agree == total ? 0 : 1;
}
