// xpc_cli — command-line front end for the solver.
//
// Usage:
//   xpc_cli [--stats-json] sat      '<node-expr>'  [edtd-file]
//   xpc_cli [--stats-json] psat     '<path-expr>'  [edtd-file]
//   xpc_cli [--stats-json] contains '<alpha>' '<beta>' [edtd-file]
//   xpc_cli [--stats-json] equiv    '<alpha>' '<beta>' [edtd-file]
//   xpc_cli eval     '<path-expr>' '<tree>'
//   xpc_cli fragment '<path-expr>'
//   xpc_cli [--stats-json] batch <queries-file> [--edtd file] [--repeat N]
//   xpc_cli [--stats-json] stream <queries-file> '<tree>' [--edtd file] [--prune-subsumed]
//
// `--stats-json` (anywhere on the command line) makes stdout exactly one
// JSON object with the query verdict plus the full solver telemetry:
// per-phase wall-clock timers, peak automaton state/transition counts,
// determinization blowup, and session cache hit/miss/eviction counters.
// The human-readable report moves to stderr, so `xpc_cli --stats-json ... |
// jq .` just works.
//
// `batch` decides one containment query per line of the queries file
// (format: `alpha ;; beta`; blank lines and `#` comments are skipped)
// through the memoizing Session layer and reports its cache statistics.
// `--repeat N` re-submits the whole workload N times, which makes the
// cache hit rate and warm/cold timing observable.
//
// `stream` registers one streamable path per line of the queries file,
// shrinks the bundle through the BundleOptimizer (pass `--prune-subsumed`
// to also drop queries provably covered by another registered query),
// compiles the survivors into ONE shared automaton, and runs the tree's
// SAX event stream through it in a single pass, reporting each query's
// disposition and matched node ordinals (preorder, root = 0).
//
// Examples:
//   xpc_cli contains 'down[a]' 'down'
//   xpc_cli sat 'section and <down[figure]> and not(<down[section]>)'
//   xpc_cli eval 'down*[b]' 'a(b,a(b))'
//   xpc_cli batch queries.txt --repeat 2
//   xpc_cli stream queries.txt 'a(b,a(b))'

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "xpc/xpc.h"

namespace {

// Human-readable report stream: stdout normally, stderr under --stats-json
// (which reserves stdout for the single JSON document).
FILE* g_human = stdout;

int Usage() {
  std::fprintf(stderr,
               "usage: xpc_cli [--stats-json] sat|psat '<expr>' [edtd-file]\n"
               "       xpc_cli [--stats-json] contains|equiv '<alpha>' '<beta>' [edtd-file]\n"
               "       xpc_cli eval '<path>' '<tree>'\n"
               "       xpc_cli fragment '<path>'\n"
               "       xpc_cli [--stats-json] batch <queries-file> [--edtd file] [--repeat N]\n"
               "       xpc_cli [--stats-json] stream <queries-file> '<tree>' [--edtd file] "
               "[--prune-subsumed]\n");
  return 2;
}

// Strict numeric flag parsing: the whole token must be a decimal integer in
// [min, max]. std::atoi silently maps junk ("3x", "", "99999999999") to a
// number; a mistyped flag value must be a usage error, not a quiet default.
bool ParseIntFlag(const char* flag, const char* token, long min, long max, long* out) {
  if (token == nullptr || *token == '\0') {
    std::fprintf(stderr, "error: %s expects an integer\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(token, &end, 10);
  if (*end != '\0' || errno == ERANGE || value < min || value > max) {
    std::fprintf(stderr, "error: %s expects an integer in [%ld, %ld], got \"%s\"\n", flag, min,
                 max, token);
    return false;
  }
  *out = value;
  return true;
}

std::optional<xpc::Edtd> LoadEdtd(const char* file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "error: cannot open EDTD file %s\n", file);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = xpc::Edtd::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().c_str());
    return std::nullopt;
  }
  return parsed.value();
}

void PrintSat(const xpc::SatResult& r) {
  std::fprintf(g_human, "%s   (engine: %s, states: %lld)\n", xpc::SolveStatusName(r.status),
              r.engine.c_str(), static_cast<long long>(r.explored_states));
  if (r.witness) std::fprintf(g_human, "witness: %s\n", xpc::TreeToText(*r.witness).c_str());
}

// One JSON object per invocation: verdict + the session's unified telemetry
// (per-phase timers, peak automaton sizes, cache counters).
void PrintStatsJson(const char* command, const char* verdict, const char* engine,
                    const xpc::Session& session) {
  std::printf("{\n  \"command\": \"%s\",\n  \"verdict\": \"%s\",\n  \"engine\": \"%s\",\n  \"stats\": %s\n}\n",
              command, verdict, engine, session.telemetry().ToJson(2).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global --stats-json flag wherever it appears.
  bool stats_json = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--stats-json") {
      stats_json = true;
      g_human = stderr;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  xpc::Session session;

  if (cmd == "sat" || cmd == "psat") {
    std::optional<xpc::Edtd> edtd;
    if (argc >= 4 && !(edtd = LoadEdtd(argv[3]))) return 1;
    if (edtd) session.SetEdtd(*edtd);
    xpc::SatResult r;
    if (cmd == "sat") {
      auto phi = xpc::ParseNode(argv[2]);
      if (!phi.ok()) {
        std::fprintf(stderr, "error: %s\n", phi.error().c_str());
        return 1;
      }
      r = session.NodeSatisfiable(phi.value());
    } else {
      auto alpha = xpc::ParsePath(argv[2]);
      if (!alpha.ok()) {
        std::fprintf(stderr, "error: %s\n", alpha.error().c_str());
        return 1;
      }
      r = session.PathSatisfiable(alpha.value());
    }
    PrintSat(r);
    if (stats_json) {
      PrintStatsJson(cmd.c_str(), xpc::SolveStatusName(r.status), r.engine.c_str(), session);
    }
    return r.status == xpc::SolveStatus::kResourceLimit ? 3 : 0;
  }

  if (cmd == "contains" || cmd == "equiv") {
    if (argc < 4) return Usage();
    auto alpha = xpc::ParsePath(argv[2]);
    auto beta = xpc::ParsePath(argv[3]);
    if (!alpha.ok() || !beta.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   (!alpha.ok() ? alpha.error() : beta.error()).c_str());
      return 1;
    }
    std::optional<xpc::Edtd> edtd;
    if (argc >= 5 && !(edtd = LoadEdtd(argv[4]))) return 1;
    if (edtd) session.SetEdtd(*edtd);
    xpc::ContainmentResult r;
    if (cmd == "contains") {
      r = session.Contains(alpha.value(), beta.value());
    } else {
      r = session.Equivalent(alpha.value(), beta.value());
    }
    std::fprintf(g_human, "%s   (engine: %s)\n", xpc::ContainmentVerdictName(r.verdict),
                r.engine.c_str());
    if (r.counterexample) {
      std::fprintf(g_human, "counterexample: %s\n", xpc::TreeToText(*r.counterexample).c_str());
    }
    if (stats_json) {
      PrintStatsJson(cmd.c_str(), xpc::ContainmentVerdictName(r.verdict), r.engine.c_str(),
                     session);
    }
    return r.verdict == xpc::ContainmentVerdict::kUnknown ? 3 : 0;
  }

  if (cmd == "eval") {
    if (argc < 4) return Usage();
    auto alpha = xpc::ParsePath(argv[2]);
    auto tree = xpc::ParseTree(argv[3]);
    if (!alpha.ok() || !tree.ok()) {
      std::fprintf(stderr, "error: %s\n", (!alpha.ok() ? alpha.error() : tree.error()).c_str());
      return 1;
    }
    xpc::Evaluator eval(tree.value());
    for (auto [src, dst] : eval.EvalPath(alpha.value()).ToPairs()) {
      std::printf("(%d, %d)\n", src, dst);
    }
    return 0;
  }

  if (cmd == "batch") {
    const char* queries_file = argv[2];
    const char* edtd_file = nullptr;
    int repeat = 1;
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--edtd" && i + 1 < argc) {
        edtd_file = argv[++i];
      } else if (arg == "--repeat" && i + 1 < argc) {
        long value = 0;
        if (!ParseIntFlag("--repeat", argv[++i], 1, 1000000, &value)) return Usage();
        repeat = static_cast<int>(value);
      } else {
        return Usage();
      }
    }

    std::ifstream in(queries_file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open queries file %s\n", queries_file);
      return 1;
    }
    std::vector<std::pair<xpc::PathPtr, xpc::PathPtr>> queries;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      size_t sep = line.find(";;");
      if (sep == std::string::npos) {
        std::fprintf(stderr, "error: %s:%d: expected 'alpha ;; beta'\n", queries_file, lineno);
        return 1;
      }
      auto alpha = xpc::ParsePath(line.substr(0, sep));
      auto beta = xpc::ParsePath(line.substr(sep + 2));
      if (!alpha.ok() || !beta.ok()) {
        std::fprintf(stderr, "error: %s:%d: %s\n", queries_file, lineno,
                     (!alpha.ok() ? alpha.error() : beta.error()).c_str());
        return 1;
      }
      queries.emplace_back(alpha.value(), beta.value());
    }

    if (edtd_file != nullptr) {
      auto edtd = LoadEdtd(edtd_file);
      if (!edtd) return 1;
      session.SetEdtd(*edtd);
    }
    bool unknown = false;
    for (int pass = 0; pass < repeat; ++pass) {
      auto t0 = std::chrono::steady_clock::now();
      std::vector<xpc::ContainmentResult> results = session.ContainsBatch(queries);
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      if (pass == 0) {
        for (size_t i = 0; i < results.size(); ++i) {
          std::fprintf(g_human, "%-14s (engine: %s) %s ;; %s\n",
                      xpc::ContainmentVerdictName(results[i].verdict),
                      results[i].engine.c_str(), xpc::ToString(queries[i].first).c_str(),
                      xpc::ToString(queries[i].second).c_str());
          if (results[i].verdict == xpc::ContainmentVerdict::kUnknown) unknown = true;
        }
      }
      std::fprintf(g_human, "pass %d: %zu queries in %.3f ms\n", pass + 1, queries.size(),
                  micros / 1000.0);
    }
    std::fprintf(g_human, "%s", session.stats().ToString().c_str());
    if (stats_json) {
      PrintStatsJson("batch", unknown ? "unknown" : "decided", "session", session);
    }
    return unknown ? 3 : 0;
  }

  if (cmd == "stream") {
    if (argc < 4) return Usage();
    const char* queries_file = argv[2];
    auto tree = xpc::ParseTree(argv[3]);
    if (!tree.ok()) {
      std::fprintf(stderr, "error: %s\n", tree.error().c_str());
      return 1;
    }
    const char* edtd_file = nullptr;
    xpc::BundleOptions options;
    for (int i = 4; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--edtd" && i + 1 < argc) {
        edtd_file = argv[++i];
      } else if (arg == "--prune-subsumed") {
        options.prune_subsumed = true;
      } else {
        return Usage();
      }
    }
    if (edtd_file != nullptr) {
      auto edtd = LoadEdtd(edtd_file);
      if (!edtd) return 1;
      session.SetEdtd(*edtd);
    }

    std::ifstream in(queries_file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open queries file %s\n", queries_file);
      return 1;
    }
    std::vector<xpc::PathPtr> queries;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      auto alpha = xpc::ParsePath(line);
      if (!alpha.ok()) {
        std::fprintf(stderr, "error: %s:%d: %s\n", queries_file, lineno, alpha.error().c_str());
        return 1;
      }
      queries.push_back(alpha.value());
    }

    xpc::BundleOptimizer optimizer(&session, options);
    xpc::OptimizedBundle plan = optimizer.Optimize(queries);
    xpc::CompiledBundle bundle =
        xpc::CompileBundle(plan.compile_set, static_cast<int>(queries.size()));

    xpc::StreamMatcher matcher(&bundle);
    std::vector<std::vector<int64_t>> hits(queries.size());
    matcher.SetCallback(
        [&](int32_t query, int64_t ordinal) { hits[query].push_back(ordinal); });
    matcher.BeginDocument();
    for (const xpc::StreamEvent& event : xpc::EventsOf(tree.value())) {
      switch (event.kind) {
        case xpc::StreamEventKind::kStartElement: matcher.StartElement(event.label); break;
        case xpc::StreamEventKind::kEndElement: matcher.EndElement(); break;
        case xpc::StreamEventKind::kText: matcher.Text(); break;
      }
    }
    matcher.EndDocument();

    static const char* const kDispositions[] = {"active", "aliased", "subsumed", "unsat",
                                                "rejected"};
    for (size_t q = 0; q < queries.size(); ++q) {
      const xpc::BundleQueryInfo& info = plan.queries[q];
      std::fprintf(g_human, "q%zu %-9s", q, kDispositions[static_cast<int>(info.disposition)]);
      if (info.target >= 0) std::fprintf(g_human, " -> q%d", info.target);
      if (!info.reason.empty()) std::fprintf(g_human, " (%s)", info.reason.c_str());
      std::fprintf(g_human, "  %s\n", xpc::ToString(queries[q]).c_str());
      if (info.disposition == xpc::BundleQueryInfo::Disposition::kActive ||
          info.disposition == xpc::BundleQueryInfo::Disposition::kAliased) {
        std::fprintf(g_human, "    matches:");
        for (int64_t ordinal : hits[q]) std::fprintf(g_human, " %lld", (long long)ordinal);
        std::fprintf(g_human, "\n");
      }
    }
    std::fprintf(g_human,
                 "bundle: %d registered, %d active, %d aliased, %d subsumed, %d unsat, "
                 "%d rejected; automaton: %d states, %d cached sets, %lld events, %lld matches\n",
                 plan.num_queries, plan.num_active, plan.num_aliased, plan.num_subsumed,
                 plan.num_unsat, plan.num_rejected, bundle.nfa.num_states(),
                 matcher.dfa_states(), (long long)matcher.events(), (long long)matcher.matches());
    if (stats_json) PrintStatsJson("stream", "ok", "stream", session);
    return 0;
  }

  if (cmd == "fragment") {
    auto alpha = xpc::ParsePath(argv[2]);
    if (!alpha.ok()) {
      std::fprintf(stderr, "error: %s\n", alpha.error().c_str());
      return 1;
    }
    xpc::Fragment f = xpc::DetectFragment(alpha.value());
    std::printf("%s  (size %d, cap-depth %d)\n", f.Name().c_str(), xpc::Size(alpha.value()),
                xpc::IntersectionDepth(alpha.value()));
    return 0;
  }

  return Usage();
}
