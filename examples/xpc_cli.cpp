// xpc_cli — command-line front end for the solver.
//
// Usage:
//   xpc_cli sat      '<node-expr>'  [edtd-file]
//   xpc_cli psat     '<path-expr>'  [edtd-file]
//   xpc_cli contains '<alpha>' '<beta>' [edtd-file]
//   xpc_cli equiv    '<alpha>' '<beta>' [edtd-file]
//   xpc_cli eval     '<path-expr>' '<tree>'
//   xpc_cli fragment '<path-expr>'
//
// Examples:
//   xpc_cli contains 'down[a]' 'down'
//   xpc_cli sat 'section and <down[figure]> and not(<down[section]>)'
//   xpc_cli eval 'down*[b]' 'a(b,a(b))'

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "xpc/xpc.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xpc_cli sat|psat '<expr>' [edtd-file]\n"
               "       xpc_cli contains|equiv '<alpha>' '<beta>' [edtd-file]\n"
               "       xpc_cli eval '<path>' '<tree>'\n"
               "       xpc_cli fragment '<path>'\n");
  return 2;
}

std::optional<xpc::Edtd> LoadEdtd(const char* file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "error: cannot open EDTD file %s\n", file);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = xpc::Edtd::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().c_str());
    return std::nullopt;
  }
  return parsed.value();
}

void PrintSat(const xpc::SatResult& r) {
  std::printf("%s   (engine: %s, states: %lld)\n", xpc::SolveStatusName(r.status),
              r.engine.c_str(), static_cast<long long>(r.explored_states));
  if (r.witness) std::printf("witness: %s\n", xpc::TreeToText(*r.witness).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  xpc::Solver solver;

  if (cmd == "sat" || cmd == "psat") {
    std::optional<xpc::Edtd> edtd;
    if (argc >= 4 && !(edtd = LoadEdtd(argv[3]))) return 1;
    xpc::SatResult r;
    if (cmd == "sat") {
      auto phi = xpc::ParseNode(argv[2]);
      if (!phi.ok()) {
        std::fprintf(stderr, "error: %s\n", phi.error().c_str());
        return 1;
      }
      r = edtd ? solver.NodeSatisfiable(phi.value(), *edtd)
               : solver.NodeSatisfiable(phi.value());
    } else {
      auto alpha = xpc::ParsePath(argv[2]);
      if (!alpha.ok()) {
        std::fprintf(stderr, "error: %s\n", alpha.error().c_str());
        return 1;
      }
      r = edtd ? solver.PathSatisfiable(alpha.value(), *edtd)
               : solver.PathSatisfiable(alpha.value());
    }
    PrintSat(r);
    return r.status == xpc::SolveStatus::kResourceLimit ? 3 : 0;
  }

  if (cmd == "contains" || cmd == "equiv") {
    if (argc < 4) return Usage();
    auto alpha = xpc::ParsePath(argv[2]);
    auto beta = xpc::ParsePath(argv[3]);
    if (!alpha.ok() || !beta.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   (!alpha.ok() ? alpha.error() : beta.error()).c_str());
      return 1;
    }
    std::optional<xpc::Edtd> edtd;
    if (argc >= 5 && !(edtd = LoadEdtd(argv[4]))) return 1;
    xpc::ContainmentResult r;
    if (cmd == "contains") {
      r = edtd ? solver.Contains(alpha.value(), beta.value(), *edtd)
               : solver.Contains(alpha.value(), beta.value());
    } else {
      r = solver.Equivalent(alpha.value(), beta.value());
    }
    std::printf("%s   (engine: %s)\n", xpc::ContainmentVerdictName(r.verdict),
                r.engine.c_str());
    if (r.counterexample) {
      std::printf("counterexample: %s\n", xpc::TreeToText(*r.counterexample).c_str());
    }
    return r.verdict == xpc::ContainmentVerdict::kUnknown ? 3 : 0;
  }

  if (cmd == "eval") {
    if (argc < 4) return Usage();
    auto alpha = xpc::ParsePath(argv[2]);
    auto tree = xpc::ParseTree(argv[3]);
    if (!alpha.ok() || !tree.ok()) {
      std::fprintf(stderr, "error: %s\n", (!alpha.ok() ? alpha.error() : tree.error()).c_str());
      return 1;
    }
    xpc::Evaluator eval(tree.value());
    for (auto [src, dst] : eval.EvalPath(alpha.value()).ToPairs()) {
      std::printf("(%d, %d)\n", src, dst);
    }
    return 0;
  }

  if (cmd == "fragment") {
    auto alpha = xpc::ParsePath(argv[2]);
    if (!alpha.ok()) {
      std::fprintf(stderr, "error: %s\n", alpha.error().c_str());
      return 1;
    }
    xpc::Fragment f = xpc::DetectFragment(alpha.value());
    std::printf("%s  (size %d, cap-depth %d)\n", f.Name().c_str(), xpc::Size(alpha.value()),
                xpc::IntersectionDepth(alpha.value()));
    return 0;
  }

  return Usage();
}
