// xpc_fuzz — seeded metamorphic fuzzing campaign driver.
//
// Usage:
//   xpc_fuzz [--seed N] [--cases M]
//            [--oracle all|roundtrip|translations|engines|session|o5|fastpath|o6|stream]
//            [--trees K] [--max-nodes K] [--max-ops K] [--no-shrink]
//            [--corpus DIR] [--fail-dir DIR]
//
// Runs M deterministic cases through the enabled oracle families:
//   O1  parse(print(e)) structurally identical to e          (roundtrip)
//   O2  translations semantics-preserving on concrete trees  (translations)
//   O3  sat/containment engines agree, witnesses re-validate (engines)
//   O4  Session-cached results equal cold results            (session)
//   O5  PTIME fast paths agree with the full engines and
//       never misroute                                       (o5 / fastpath)
//   O6  shared streaming automaton ≡ per-query automata ≡
//       evaluator root matches; bundle pruning sound         (o6 / stream)
//
// Failures are delta-minimized and printed in the regression-corpus `.case`
// format, ready to check in under tests/fuzz_corpus/. `--corpus DIR` replays
// an existing corpus instead of (before) fuzzing. `--fail-dir DIR` also
// writes each FAIL block to DIR/fail-<oracle>-<caseseed>.case (creating DIR
// if needed) — the nightly CI campaign uploads that directory as a workflow
// artifact, so a red nightly hands over ready-to-commit corpus files.
//
// Exit status: 0 when every case passed, 1 on any failure, 2 on bad usage.
//
// Examples:
//   xpc_fuzz --seed 7 --cases 10000 --oracle all
//   xpc_fuzz --oracle roundtrip --cases 100000 --no-shrink
//   xpc_fuzz --corpus ../tests/fuzz_corpus --cases 0

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "xpc/fuzz/corpus.h"
#include "xpc/fuzz/oracles.h"

namespace {

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: xpc_fuzz [--seed N] [--cases M] [--oracle all|roundtrip|translations|"
               "engines|session|o5|fastpath|o6|stream]\n"
               "                [--trees K] [--max-nodes K] [--max-ops K] [--no-shrink] "
               "[--corpus DIR] [--fail-dir DIR]\n");
  std::exit(2);
}

int64_t ParseInt(const char* flag, const char* value) {
  char* end = nullptr;
  long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    std::fprintf(stderr, "xpc_fuzz: %s wants a non-negative integer, got `%s`\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  xpc::FuzzOptions options;
  std::string corpus_dir;
  std::string fail_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(ParseInt("--seed", value()));
    } else if (arg == "--cases") {
      options.cases = ParseInt("--cases", value());
    } else if (arg == "--trees") {
      options.trees_per_case = static_cast<int>(ParseInt("--trees", value()));
    } else if (arg == "--max-nodes") {
      options.max_tree_nodes = static_cast<int>(ParseInt("--max-nodes", value()));
    } else if (arg == "--max-ops") {
      options.max_ops = static_cast<int>(ParseInt("--max-ops", value()));
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--corpus") {
      corpus_dir = value();
    } else if (arg == "--fail-dir") {
      fail_dir = value();
    } else if (arg == "--oracle") {
      const std::string which = value();
      options.roundtrip = which == "all" || which == "roundtrip";
      options.translations = which == "all" || which == "translations";
      options.engines = which == "all" || which == "engines";
      options.session = which == "all" || which == "session";
      options.fastpaths = which == "all" || which == "o5" || which == "fastpath";
      options.streams = which == "all" || which == "o6" || which == "stream";
      if (!options.roundtrip && !options.translations && !options.engines && !options.session &&
          !options.fastpaths && !options.streams) {
        std::fprintf(stderr, "xpc_fuzz: unknown oracle family `%s`\n", which.c_str());
        Usage();
      }
    } else {
      Usage();
    }
  }

  bool failed = false;

  if (!corpus_dir.empty()) {
    std::string error;
    std::vector<xpc::CorpusCase> corpus = xpc::LoadCorpus(corpus_dir, &error);
    if (corpus.empty()) {
      std::fprintf(stderr, "xpc_fuzz: corpus: %s\n", error.c_str());
      return 2;
    }
    int replayed = 0;
    for (const xpc::CorpusCase& c : corpus) {
      std::string detail = xpc::ReplayCase(c);
      ++replayed;
      if (!detail.empty()) {
        failed = true;
        std::printf("REGRESSED %s (%s)\n  %s\n", c.file.c_str(), c.oracle.c_str(),
                    detail.c_str());
      }
    }
    std::printf("corpus: %d case%s replayed, %s\n", replayed, replayed == 1 ? "" : "s",
                failed ? "REGRESSIONS FOUND" : "all still fixed");
  }

  if (options.cases > 0) {
    xpc::FuzzReport report = xpc::RunFuzz(options);
    std::printf("fuzz: seed %llu: %s\n", static_cast<unsigned long long>(options.seed),
                report.Summary().c_str());
    if (!fail_dir.empty() && !report.failures.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(fail_dir, ec);
      if (ec) {
        std::fprintf(stderr, "xpc_fuzz: cannot create --fail-dir %s: %s\n", fail_dir.c_str(),
                     ec.message().c_str());
        return 2;
      }
    }
    for (const xpc::FuzzFailure& f : report.failures) {
      failed = true;
      // Corpus-ready block: paste into tests/fuzz_corpus/<name>.case.
      std::printf("FAIL\n# %s\noracle: %s\nexpr: %s\nseed: %llu\n", f.detail.c_str(),
                  f.oracle.c_str(), f.expr.c_str(),
                  static_cast<unsigned long long>(f.case_seed));
      if (!f.edtd.empty()) std::printf("edtd: %s\n", f.edtd.c_str());
      if (!fail_dir.empty()) {
        const std::string path = fail_dir + "/fail-" + f.oracle + "-" +
                                 std::to_string(f.case_seed) + ".case";
        std::ofstream out(path);
        out << "# " << f.detail << "\noracle: " << f.oracle << "\nexpr: " << f.expr
            << "\nseed: " << f.case_seed << "\n";
        if (!f.edtd.empty()) out << "edtd: " << f.edtd << "\n";
        if (!out) {
          std::fprintf(stderr, "xpc_fuzz: cannot write %s\n", path.c_str());
          return 2;
        }
        std::printf("wrote %s\n", path.c_str());
      }
    }
  }

  return failed ? 1 : 0;
}
