// Quickstart: parse XPath expressions, evaluate them on a document, and
// decide containment / satisfiability with certificates.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "xpc/xpc.h"

int main() {
  // ---------------------------------------------------------------- 1 ---
  // Parse a document (compact term notation) and evaluate expressions.
  xpc::XmlTree doc = xpc::ParseTree(
      "library(book(title,chapter(section,section(figure))),"
      "book(title,chapter(figure)))").value();

  xpc::Evaluator eval(doc);
  xpc::PathPtr figures = xpc::ParsePath("down*[figure]").value();
  std::printf("document: %s\n", xpc::TreeToText(doc).c_str());
  std::printf("⟦down*[figure]⟧ from the root selects nodes:");
  for (auto [src, dst] : eval.EvalPath(figures).ToPairs()) {
    if (src == doc.root()) std::printf(" %d", dst);
  }
  std::printf("\n\n");

  // ---------------------------------------------------------------- 2 ---
  // Containment: is every figure inside a chapter? The solver answers for
  // ALL documents, not just this one — and produces a counterexample tree
  // when the answer is no.
  xpc::Solver solver;
  xpc::PathPtr book_figures = xpc::ParsePath("down[book]/down*[figure]").value();
  xpc::PathPtr inside_chapter =
      xpc::ParsePath("down[book]/down[chapter]/down*[figure]").value();

  xpc::ContainmentResult r = solver.Contains(book_figures, inside_chapter);
  std::printf("down[book]/down*[figure] ⊆ down[book]/down[chapter]/down*[figure]?  %s\n",
              xpc::ContainmentVerdictName(r.verdict));
  if (r.counterexample) {
    std::printf("  counterexample: %s\n", xpc::TreeToText(*r.counterexample).c_str());
  }

  // With a schema the answer changes: under this DTD figures occur only
  // below chapters.
  xpc::Edtd schema = xpc::Edtd::Parse(R"(
    library := book+
    book := title chapter+
    title := epsilon
    chapter := (section | figure)+
    section := (section | figure)*
    figure := epsilon
  )").value();
  xpc::ContainmentResult r2 = solver.Contains(book_figures, inside_chapter, schema);
  std::printf("...with the library DTD?  %s   (engine: %s)\n\n",
              xpc::ContainmentVerdictName(r2.verdict), r2.engine.c_str());

  // ---------------------------------------------------------------- 3 ---
  // Satisfiability with a witness: ask for a document where some section
  // contains a figure but no subsection.
  xpc::NodePtr phi =
      xpc::ParseNode("section and <down[figure]> and not(<down[section]>)").value();
  xpc::SatResult sat = solver.NodeSatisfiable(phi, schema);
  std::printf("satisfiable under the DTD?  %s\n", xpc::SolveStatusName(sat.status));
  if (sat.witness) {
    std::printf("  witness document: %s\n", xpc::TreeToText(*sat.witness).c_str());
    std::printf("  conforms to DTD: %s\n",
                xpc::Conforms(*sat.witness, schema) ? "yes" : "no");
  }

  // ---------------------------------------------------------------- 4 ---
  // Path intersection (XPath 2.0): figures that are BOTH below the first
  // chapter-bearing book and below some section — the solver dispatches the
  // ∩ fragment automatically.
  xpc::PathPtr both =
      xpc::ParsePath("down*[figure] & down*[section]/down[figure]").value();
  std::printf("\n⟦α ∩ β⟧ satisfiable?  %s\n",
              xpc::SolveStatusName(solver.PathSatisfiable(both).status));
  return 0;
}
