// Containment as a query-optimizer primitive: given a workload of XPath
// queries, use the solver to
//   (1) drop queries subsumed by others (multi-query answering: if α ⊆ β,
//       answering β also answers α — the Tajima & Fukui / Hammerschmidt et
//       al. applications cited in the paper's related work),
//   (2) detect schema-empty queries (dead branches under a DTD), and
//   (3) prove rewrite candidates equivalent before applying them.

#include <cstdio>
#include <string>
#include <vector>

#include "xpc/xpc.h"

int main() {
  xpc::Edtd schema = xpc::Edtd::Parse(R"(
    feed := entry+
    entry := header body attachment*
    header := epsilon
    body := (para | code)+
    para := epsilon
    code := epsilon
    attachment := epsilon
  )").value();

  const char* workload[] = {
      "down[entry]/down[body]/down[code]",
      "down[entry]/down*[code]",                       // Subsumes the first.
      "down*[entry]/down[body]",
      "down[entry]/down[body]",                        // Subsumed by the previous.
      "down[entry]/down[header]/down[para]",           // Dead under the schema.
      "down[entry]/down[attachment]",
  };

  xpc::Solver solver;
  std::vector<xpc::PathPtr> queries;
  for (const char* q : workload) queries.push_back(xpc::ParsePath(q).value());

  std::printf("Workload of %zu queries under the feed DTD\n\n", queries.size());

  // (2) Dead queries: unsatisfiable w.r.t. the schema.
  std::vector<bool> dead(queries.size(), false);
  for (size_t i = 0; i < queries.size(); ++i) {
    xpc::SatResult r = solver.PathSatisfiable(queries[i], schema);
    dead[i] = r.status == xpc::SolveStatus::kUnsat;
    if (dead[i]) {
      std::printf("DEAD     %-42s (schema-empty, engine %s)\n", workload[i],
                  r.engine.c_str());
    }
  }

  // (1) Pairwise subsumption among the live queries: keep the more general
  // query of each contained pair (for equivalent pairs, keep the first).
  std::vector<bool> covered(queries.size(), false);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < queries.size(); ++j) {
      if (i == j || dead[j]) continue;
      bool fwd = solver.Contains(queries[i], queries[j], schema).verdict ==
                 xpc::ContainmentVerdict::kContained;
      if (!fwd) continue;
      bool back = solver.Contains(queries[j], queries[i], schema).verdict ==
                  xpc::ContainmentVerdict::kContained;
      if (!back || j < i) {
        covered[i] = true;
        std::printf("COVERED  %-42s ⊆ %s\n", workload[i], workload[j]);
        break;
      }
    }
  }

  std::printf("\nReduced workload:\n");
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!dead[i] && !covered[i]) std::printf("  KEEP   %s\n", workload[i]);
  }

  // (3) Rewrite validation: descendant-or-self unfolding.
  xpc::PathPtr original = xpc::ParsePath("down*[code]").value();
  xpc::PathPtr rewritten = xpc::ParsePath(".[code] | down/down*[code]").value();
  xpc::ContainmentResult eq = solver.Equivalent(original, rewritten);
  std::printf("\nrewrite  down*[code] ≡ .[code] | down/down*[code] : %s\n",
              xpc::ContainmentVerdictName(eq.verdict));

  // A WRONG rewrite is caught with a counterexample document.
  xpc::PathPtr wrong = xpc::ParsePath("down/down*[code]").value();
  xpc::ContainmentResult bad = solver.Equivalent(original, wrong);
  std::printf("rewrite  down*[code] ≡ down/down*[code]         : %s\n",
              xpc::ContainmentVerdictName(bad.verdict));
  if (bad.counterexample) {
    std::printf("  counterexample: %s\n", xpc::TreeToText(*bad.counterexample).c_str());
  }
  return 0;
}
