// Property tests: algebraic laws of the path algebra, validated by the
// reference evaluator on randomized trees. These are the rewrite axioms the
// paper's Discussion points to (ten Cate & Marx's axiomatization), and they
// double as a broad randomized sweep of the evaluator itself.

#include <gtest/gtest.h>

#include "xpc/eval/evaluator.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

struct Law {
  const char* name;
  const char* lhs;
  const char* rhs;
};

class PathAlgebra : public ::testing::TestWithParam<Law> {};

TEST_P(PathAlgebra, HoldsOnRandomTrees) {
  const Law& law = GetParam();
  PathPtr lhs = ParsePath(law.lhs).value();
  PathPtr rhs = ParsePath(law.rhs).value();
  TreeGenerator gen(0xA15EB4A);
  for (int i = 0; i < 60; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(13));
    opt.alphabet = {"a", "b", "c"};
    XmlTree t = gen.Generate(opt);
    Evaluator ev(t);
    ASSERT_TRUE(ev.EvalPath(lhs) == ev.EvalPath(rhs))
        << law.name << " fails on " << TreeToText(t);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Laws, PathAlgebra,
    ::testing::Values(
        // Composition distributes over union (the axiom quoted in §9).
        Law{"seq-union-dist", "(down | up)/right", "down/right | up/right"},
        Law{"union-seq-dist", "right/(down | up)", "right/down | right/up"},
        // Identity and associativity.
        Law{"self-left-unit", "./down[a]", "down[a]"},
        Law{"self-right-unit", "down[a]/.", "down[a]"},
        Law{"seq-assoc", "(down/right)/up", "down/(right/up)"},
        // Filters.
        Law{"filter-split", "down[a and b]", "down[a][b]"},
        Law{"filter-as-test", "down[a]", "down/.[a]"},
        Law{"filter-union", "down[a or b]", "down[a] | down[b]"},
        // Axis closures.
        Law{"star-unfold", "down*", ". | down/down*"},
        Law{"star-unfold-right", "down*", ". | down*/down"},
        Law{"plus-def", "down+", "down/down*"},
        Law{"star-idempotent", "down*/down*", "down*"},
        // General transitive closure.
        Law{"gen-star-unfold", "(down/down)*", ". | down/down/(down/down)*"},
        Law{"gen-star-axis", "(down)*", "down*"},
        // Intersection lattice laws.
        Law{"cap-idempotent", "down* & down*", "down*"},
        Law{"cap-commutes", "down[a] & down*", "down* & down[a]"},
        Law{"cap-assoc", "(down* & down+) & down", "down* & (down+ & down)"},
        Law{"cap-union-absorb", "down & (down | up)", "down"},
        Law{"cap-distributes", "(down | up) & (down | right)",
            "down | (up & right)"},
        // Complementation.
        Law{"minus-self", "down* - down*", "down[a and not(a)]"},
        Law{"minus-empty", "down - (down - down)", "down"},
        Law{"de-morgan-ish", "down* - (down* - down+)", "down+"},
        // Converse-style round trips.
        Law{"up-down-loop", "down/up & .", ".[<down>]"},
        Law{"left-right", "right/left & .", ".[<right>]"}));

// Node-expression laws, checked pointwise.
struct NodeLaw {
  const char* name;
  const char* lhs;
  const char* rhs;
};

class NodeAlgebra : public ::testing::TestWithParam<NodeLaw> {};

TEST_P(NodeAlgebra, HoldsOnRandomTrees) {
  const NodeLaw& law = GetParam();
  NodePtr lhs = ParseNode(law.lhs).value();
  NodePtr rhs = ParseNode(law.rhs).value();
  TreeGenerator gen(0xBEEF);
  for (int i = 0; i < 60; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(13));
    opt.alphabet = {"a", "b"};
    XmlTree t = gen.Generate(opt);
    Evaluator ev(t);
    ASSERT_TRUE(ev.EvalNode(lhs) == ev.EvalNode(rhs))
        << law.name << " fails on " << TreeToText(t);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Laws, NodeAlgebra,
    ::testing::Values(
        NodeLaw{"eq-symmetric", "eq(down[a], down*)", "eq(down*, down[a])"},
        NodeLaw{"eq-as-some-cap", "eq(down[a], down+)", "<down[a] & down+>"},
        NodeLaw{"some-union", "<down | up>", "<down> or <up>"},
        NodeLaw{"every-and", "every(down, a and b)",
                "every(down, a) and every(down, b)"},
        NodeLaw{"not-some-every", "not(<down[a]>)", "every(down, not(a))"},
        NodeLaw{"loop-self", "loop(.)", "true"},
        NodeLaw{"loop-child", "loop(down/up)", "<down>"},
        NodeLaw{"some-seq", "<down/right>", "<down[<right>]>"},
        NodeLaw{"de-morgan", "not(a and b)", "not(a) or not(b)"}));

}  // namespace
}  // namespace xpc
