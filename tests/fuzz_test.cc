#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xpc/eval/evaluator.h"
#include "xpc/fuzz/corpus.h"
#include "xpc/fuzz/generator.h"
#include "xpc/fuzz/oracles.h"
#include "xpc/fuzz/shrink.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/translate/for_elim.h"
#include "xpc/translate/intersect_product.h"
#include "xpc/xpath/ast.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

// --- O1: parse∘print round-trips ---------------------------------------

// The printer once dropped parentheses around right-nested operands of the
// left-associative operators; each of these reparsed into the left-nested
// tree. Kept explicit (alongside the fuzz corpus) because they pin down the
// exact rule: the right operand prints at strictly tighter precedence.
TEST(FuzzRegression, PrinterRightNestedPathOperators) {
  const char* cases[] = {
      "down/(down/down)",   "down | (down | down)",    "down & (down & down)",
      "down - (down - down)", "(down | down)/(down | down)",
      "right*/(./.)",        "down*/(./down)",
  };
  for (const char* c : cases) {
    PathPtr p = P(c);
    EXPECT_EQ(CheckRoundTripPath(p), "") << c << " printed as " << ToString(p);
  }
}

TEST(FuzzRegression, PrinterRightNestedNodeOperators) {
  const char* cases[] = {
      "a and (b and c)", "a or (b or c)", "true and (true and a)",
      "(a or b) and (b or c)",
  };
  for (const char* c : cases) {
    NodePtr n = N(c);
    EXPECT_EQ(CheckRoundTripNode(n), "") << c << " printed as " << ToString(n);
  }
}

// Left-nested chains must stay paren-free — the fix may not over-parenthesize.
TEST(FuzzRegression, PrinterLeftNestedStaysFlat) {
  EXPECT_EQ(ToString(P("down/down/down")), "down/down/down");
  EXPECT_EQ(ToString(P("down | down | down")), "down | down | down");
  EXPECT_EQ(ToString(N("a and b and c")), "a and b and c");
  EXPECT_EQ(ToString(P("down/(down/down)")), "down/(down/down)");
}

// 1000 seeded cases over the full CoreXPath(≈, ∩, −, for, *) syntax. This is
// a compressed always-on slice of the xpc_fuzz campaign: any printer/parser
// disagreement the grammar can reach in ≤12 operators shows up here.
TEST(FuzzProperty, RoundTripThousandCases) {
  ExprGenOptions o = ExprGenOptions::FullSyntax();
  o.max_ops = 12;
  for (uint64_t i = 0; i < 1000; ++i) {
    FuzzGen gen(0x5eed + i);
    if (i % 2 == 0) {
      PathPtr p = gen.GenPath(o);
      EXPECT_EQ(CheckRoundTripPath(p), "") << "case " << i;
    } else {
      NodePtr n = gen.GenNode(o);
      EXPECT_EQ(CheckRoundTripNode(n), "") << "case " << i;
    }
  }
}

// --- O2: translations --------------------------------------------------

// The fresh-variable discipline: rewriting must never capture a user
// variable that follows the rewriter's own f<N> naming scheme.
TEST(FuzzRegression, IntersectToForAvoidsUserF0) {
  PathPtr p = P("for $f0 in up return down & down[is $f0]");
  PathPtr rewritten = RewriteIntersectToFor(p);
  // The generated binder must not shadow $f0...
  EXPECT_EQ(ToString(rewritten),
            "for $f0 in up return for $f1 in down return down[is $f0][is $f1]");
  // ...and the rewrite must be semantics-preserving (the capturing version
  // differed on trees as small as b(c(c(b,c),c),b)).
  EXPECT_EQ(CheckIntersectToFor(p, /*tree_seed=*/99, /*trees=*/8, /*max_nodes=*/8), "");
}

TEST(FuzzRegression, ComplementToForAvoidsUserF0) {
  PathPtr p = P("for $f0 in down return down* - down*[is $f0]");
  PathPtr rewritten = RewriteComplementToFor(p);
  EXPECT_EQ(Variables(rewritten).count("f1"), 1u) << ToString(rewritten);
  EXPECT_EQ(CheckComplementToFor(p, 99, 8, 8), "");
}

// Caller-supplied binder names collide the same way; the translation must
// freshen them itself rather than trust the caller.
TEST(FuzzRegression, ExplicitVarFreshenedAgainstBeta) {
  PathPtr alpha = P("down");
  PathPtr beta = P("down[is $v]");
  PathPtr inter = IntersectToFor(alpha, beta, "v");
  EXPECT_EQ(ToString(inter), "for $v_ in down return down[is $v][is $v_]");
  PathPtr comp = ComplementToFor(alpha, beta, "v");
  EXPECT_EQ(Variables(comp).count("v_"), 1u) << ToString(comp);
  // A non-colliding name is used as-is.
  EXPECT_EQ(ToString(IntersectToFor(alpha, beta, "w")),
            "for $w in down return down[is $v][is $w]");
}

// Seeded semantic slices of each translation oracle (the full-size versions
// run in the xpc_fuzz campaign; these keep a small always-on sample in the
// fast suite).
TEST(FuzzProperty, IntersectToForSemantics) {
  ExprGenOptions o = ExprGenOptions::FullSyntax();
  o.allow_complement = false;
  for (uint64_t i = 0; i < 50; ++i) {
    FuzzGen gen(0xabc0 + i);
    PathPtr p = gen.GenPath(o);
    EXPECT_EQ(CheckIntersectToFor(p, i, 3, 8), "") << "case " << i << ": " << ToString(p);
  }
}

TEST(FuzzProperty, ComplementToForSemantics) {
  ExprGenOptions o = ExprGenOptions::DownwardComplement();
  o.allow_for = true;  // Exercise the capture-avoidance path too.
  for (uint64_t i = 0; i < 50; ++i) {
    FuzzGen gen(0xdef0 + i);
    PathPtr p = gen.GenPath(o);
    EXPECT_EQ(CheckComplementToFor(p, i, 3, 8), "") << "case " << i << ": " << ToString(p);
  }
}

// --- O3: the loop-sat witness-reconstruction crash ---------------------

// Fuzzer-found: re-deriving an item sibling-free overwrote its derivation
// backpointers in place, which could make the backpointer graph cyclic and
// send witness reconstruction into unbounded recursion. eq(left*, left/left*)
// is the minimized trigger.
TEST(FuzzRegression, LoopSatWitnessNoCycle) {
  NodePtr phi = N("eq(left*, left/left*)");
  LExprPtr nf = IntersectToLoopNormalForm(phi);
  ASSERT_TRUE(nf);
  LoopSatOptions o;
  o.want_witness = true;
  SatResult r = LoopSatisfiable(nf, o);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(Evaluator(*r.witness).SatisfiedSomewhere(phi));
  // The full engine-agreement oracle used to stack-overflow here.
  EXPECT_EQ(CheckEngineAgreement(phi), "");
}

// --- Shrinker ----------------------------------------------------------

TEST(Shrink, ReductionsStrictlyDecreaseSize) {
  PathPtr p = P("for $i in down*[a and <up>] return (down & down*[is $i]) - .");
  std::vector<PathPtr> reds = PathReductions(p);
  ASSERT_FALSE(reds.empty());
  for (const PathPtr& r : reds) EXPECT_LT(Size(r), Size(p)) << ToString(r);
  NodePtr n = N("not(a and <down[b or c]>)");
  for (const NodePtr& r : NodeReductions(n)) EXPECT_LT(Size(r), Size(n)) << ToString(r);
}

TEST(Shrink, FindsMinimalSeqUnderPredicate) {
  // Predicate: contains a `/` with a `/` as right child (the shape of the
  // printer bug). The shrinker should strip everything else.
  PathPredicate has_right_nested_seq = [](const PathPtr& p) {
    std::function<bool(const PathPtr&)> scan = [&](const PathPtr& q) -> bool {
      if (q->kind == PathKind::kSeq && q->right->kind == PathKind::kSeq) return true;
      bool hit = false;
      if (q->left) hit = hit || scan(q->left);
      if (q->right) hit = hit || scan(q->right);
      return hit;
    };
    return scan(p);
  };
  PathPtr big = P("(down | up)/((down/(down[a]/down*)) & .)/right");
  ASSERT_TRUE(has_right_nested_seq(big));
  PathPtr small = ShrinkPath(big, has_right_nested_seq);
  EXPECT_TRUE(has_right_nested_seq(small));
  // 1-minimal: five AST nodes — Seq(atom, Seq(atom, atom)).
  EXPECT_EQ(Size(small), 5) << ToString(small);
}

TEST(Shrink, PredicateNeverSeesLargerCandidates) {
  int calls = 0;
  PathPtr start = P("down/(down/(down/(down/down)))");
  const int start_size = Size(start);
  PathPredicate pred = [&](const PathPtr& p) {
    ++calls;
    EXPECT_LT(Size(p), start_size);
    return CheckRoundTripPath(p).empty() == false;  // Nothing fails now.
  };
  PathPtr out = ShrinkPath(start, pred);
  EXPECT_GT(calls, 0);
  EXPECT_TRUE(Equal(out, start));  // No candidate failed → input unchanged.
}

// --- Campaign determinism and corpus replay ----------------------------

TEST(FuzzCampaign, DeterministicAcrossRuns) {
  FuzzOptions o;
  o.cases = 200;
  o.seed = 77;
  FuzzReport a = RunFuzz(o);
  FuzzReport b = RunFuzz(o);
  EXPECT_EQ(a.cases_run, 200);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.per_oracle, b.per_oracle);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].expr, b.failures[i].expr);
    EXPECT_EQ(a.failures[i].oracle, b.failures[i].oracle);
  }
}

TEST(FuzzCampaign, SmokeAllOraclesPass) {
  FuzzOptions o;
  o.cases = 400;
  o.seed = 3;
  FuzzReport r = RunFuzz(o);
  EXPECT_TRUE(r.ok()) << r.Summary()
                      << (r.failures.empty() ? "" : ": " + r.failures[0].detail);
  // Every oracle family must actually have run.
  EXPECT_EQ(r.per_oracle.size(), 14u) << r.Summary();
}

// Replays tests/fuzz_corpus/ — every minimized bug this subsystem has found
// must stay fixed. XPC_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt.
TEST(FuzzCampaign, CorpusStaysFixed) {
  std::string error;
  std::vector<CorpusCase> corpus = LoadCorpus(XPC_FUZZ_CORPUS_DIR, &error);
  ASSERT_FALSE(corpus.empty()) << error;
  EXPECT_GE(corpus.size(), 8u);
  for (const CorpusCase& c : corpus) {
    EXPECT_EQ(ReplayCase(c), "") << c.file;
  }
}

}  // namespace
}  // namespace xpc
