#include <gtest/gtest.h>

#include <map>

#include "xpc/eval/evaluator.h"
#include "xpc/eval/loop_evaluator.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/translate/for_elim.h"
#include "xpc/translate/intersect_product.h"
#include "xpc/translate/let_elim.h"
#include "xpc/translate/starfree.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/fragment.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

StarFreePtr SF(const std::string& s) {
  auto r = ParseStarFree(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

// --- Star-free expressions (Theorem 30) --------------------------------

TEST(StarFree, ParsePrintRoundTrip) {
  const char* cases[] = {"a", "a b", "a | b", "-(a)", "a -(b c) | -(a) b"};
  for (const char* c : cases) {
    StarFreePtr r = SF(c);
    EXPECT_EQ(StarFreeToString(SF(StarFreeToString(r))), StarFreeToString(r)) << c;
  }
}

TEST(StarFree, DfaSemantics) {
  // -(a) over {a, b}: all words except "a".
  std::vector<std::string> sigma = {"a", "b"};
  // Complement is relative to Σ⁺ (star-free languages are ε-free here —
  // see StarFreeToDfa), so ε is never accepted.
  Dfa d = StarFreeToDfa(SF("-(a)"), sigma);
  EXPECT_FALSE(d.Accepts({}));
  EXPECT_FALSE(d.Accepts({0}));
  EXPECT_TRUE(d.Accepts({1}));
  EXPECT_TRUE(d.Accepts({0, 0}));

  // a -(−∅-ish): a followed by anything: "a -(b b) | a b b"? Keep simple:
  // (a | b) -(a) : words of length ≥ 1 whose tail after the first symbol
  // is not exactly "a".
  Dfa d2 = StarFreeToDfa(SF("(a | b) -(a)"), sigma);
  EXPECT_FALSE(d2.Accepts({}));
  EXPECT_FALSE(d2.Accepts({0}));  // ε ∉ L(−a).
  EXPECT_FALSE(d2.Accepts({1, 0}));
  EXPECT_TRUE(d2.Accepts({1, 0, 0}));
}

TEST(StarFree, Emptiness) {
  EXPECT_FALSE(StarFreeEmpty(SF("a")));
  // a ∩ b is empty: a − ... use complement form: words that are both "a"
  // and "b" — encode as -( -(a) | -(b) ).
  EXPECT_TRUE(StarFreeEmpty(SF("-( -(a) | -(b) )")));
  EXPECT_FALSE(StarFreeEmpty(SF("-( -(a) | -(a) )")));
}

// tr(r) relates n to m iff the label word strictly below n down to m is in
// L(r) (Theorem 30's invariant), hence: L(r) ≠ ∅ iff tr(r) satisfiable.
TEST(StarFree, TranslationInvariant) {
  TreeGenerator gen(17);
  const char* exprs[] = {"a", "a b", "a | b b", "-(a)", "a -(b)", "-( -(a) | -(b) )"};
  for (const char* s : exprs) {
    StarFreePtr r = SF(s);
    std::vector<std::string> sigma = {"a", "b"};
    Dfa dfa = StarFreeToDfa(r, sigma);
    PathPtr tr = StarFreeToPath(r);
    EXPECT_TRUE(DetectFragment(tr).uses_complement || r->kind != StarFree::Kind::kComplement);
    for (int i = 0; i < 12; ++i) {
      TreeGenOptions opt;
      opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(9));
      opt.alphabet = {"a", "b"};
      XmlTree t = gen.Generate(opt);
      Evaluator ev(t);
      Relation rel = ev.EvalPath(tr);
      for (NodeId n = 0; n < t.size(); ++n) {
        for (NodeId m = 0; m < t.size(); ++m) {
          // Label word along the unique downward path from n to m
          // (exclusive of n, inclusive of m), if m is a descendant of n.
          if (!t.IsAncestorOrSelf(n, m)) {
            EXPECT_FALSE(rel.Contains(n, m));
            continue;
          }
          std::vector<int> word;
          bool ok = true;
          for (NodeId v = m; v != n; v = t.parent(v)) {
            int idx = t.label(v) == "a" ? 0 : (t.label(v) == "b" ? 1 : -1);
            if (idx < 0) ok = false;
            word.push_back(idx);
          }
          std::reverse(word.begin(), word.end());
          // tr(·) relates only *proper* descendants (every branch passes
          // through at least one ↓ step), so the ε word never shows up:
          // ε ∈ L(r) is invisible to tr (cf. the remark on ↓⁺ in Thm 30).
          bool expected = ok && n != m && dfa.Accepts(word);
          EXPECT_EQ(rel.Contains(n, m), expected)
              << s << " pair (" << n << "," << m << ") on " << TreeToText(t);
        }
      }
    }
  }
}

TEST(StarFree, PureFragmentF) {
  // The pure-F translation has no primitive unions and agrees semantically.
  StarFreePtr r = SF("a | b -(a)");
  PathPtr with_union = StarFreeToPath(r, /*pure_f=*/false);
  PathPtr pure = StarFreeToPath(r, /*pure_f=*/true);
  std::function<bool(const PathPtr&)> has_union = [&](const PathPtr& p) -> bool {
    if (!p) return false;
    if (p->kind == PathKind::kUnion) return true;
    return has_union(p->left) || has_union(p->right);
  };
  EXPECT_TRUE(has_union(with_union));
  EXPECT_FALSE(has_union(pure));
  TreeGenerator gen(4);
  for (int i = 0; i < 10; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(8));
    opt.alphabet = {"a", "b"};
    XmlTree t = gen.Generate(opt);
    Evaluator ev(t);
    EXPECT_TRUE(ev.EvalPath(with_union) == ev.EvalPath(pure)) << TreeToText(t);
  }
}

// --- For-loop / complementation identities (Sections 2.2, 7) -----------

TEST(ForElim, IdentitiesOnRandomTrees) {
  TreeGenerator gen(31337);
  for (int i = 0; i < 20; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(10));
    opt.alphabet = {"a", "b"};
    XmlTree t = gen.Generate(opt);
    Evaluator ev(t);

    PathPtr alpha = P("down+[a] | down*");
    PathPtr beta = P("down/down | down[b]");
    // Theorem 31 (downward operands).
    EXPECT_TRUE(ev.EvalPath(Complement(alpha, beta)) ==
                ev.EvalPath(ComplementToFor(alpha, beta, "i")))
        << TreeToText(t);
    // α ∩ β ≡ for $i in α return β[. is $i].
    EXPECT_TRUE(ev.EvalPath(Intersect(alpha, beta)) ==
                ev.EvalPath(IntersectToFor(alpha, beta, "i")))
        << TreeToText(t);
    // α ∩ β ≡ α − (α − β); α ∪ β ≡ U − ((U−α) ∩ (U−β)).
    EXPECT_TRUE(ev.EvalPath(Intersect(alpha, beta)) ==
                ev.EvalPath(IntersectToComplement(alpha, beta)))
        << TreeToText(t);
    EXPECT_TRUE(ev.EvalPath(Union(alpha, beta)) ==
                ev.EvalPath(UnionToComplement(alpha, beta)))
        << TreeToText(t);
    // Non-downward operands too (∩ and ∪ identities are unconditional).
    PathPtr gamma = P("up*/right");
    EXPECT_TRUE(ev.EvalPath(Intersect(alpha, gamma)) ==
                ev.EvalPath(IntersectToComplement(alpha, gamma)))
        << TreeToText(t);
  }
}

TEST(ForElim, RecursiveRewrites) {
  PathPtr p = P("down* & (down & down[a])/down");
  PathPtr rewritten = RewriteIntersectToFor(p);
  Fragment f = DetectFragment(rewritten);
  EXPECT_FALSE(f.uses_intersect);
  EXPECT_TRUE(f.uses_for);
  TreeGenerator gen(77);
  for (int i = 0; i < 15; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(9));
    opt.alphabet = {"a"};
    XmlTree t = gen.Generate(opt);
    Evaluator ev(t);
    EXPECT_TRUE(ev.EvalPath(p) == ev.EvalPath(rewritten)) << TreeToText(t);
  }

  PathPtr q = P("down+ - down[a]");
  PathPtr qf = RewriteComplementToFor(q);
  EXPECT_FALSE(DetectFragment(qf).uses_complement);
  EXPECT_TRUE(DetectFragment(qf).uses_for);
  for (int i = 0; i < 15; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(9));
    opt.alphabet = {"a", "b"};
    XmlTree t = gen.Generate(opt);
    Evaluator ev(t);
    EXPECT_TRUE(ev.EvalPath(q) == ev.EvalPath(qf)) << TreeToText(t);
  }
}

// --- Lemma 18: let-elimination -----------------------------------------

// Lemma 18 validation by model checking (solving the eliminated formula
// directly is intentionally expensive — it materializes all sharing — so we
// verify the construction semantically instead):
//  - models of φ extend to models of the eliminated formula by attaching a
//    marker child for every binding whose definition holds (the intended
//    decoration), and
//  - on adversarially decorated trees the eliminated formula never becomes
//    satisfiable when φ is unsatisfiable.
TEST(LetElim, PreservesSatisfiability) {
  struct Case {
    const char* formula;
    bool satisfiable;
  };
  const Case cases[] = {
      {"<down & down>", true},
      {"<down* & down/down>", true},
      {"<down & down/down>", false},
      {"<down[a] & down[b]>", false},
  };
  TreeGenerator gen(4242);
  for (const Case& c : cases) {
    LExprPtr original = IntersectToLoopNormalForm(N(c.formula));
    ASSERT_TRUE(original) << c.formula;
    LetElimResult elim = EliminateLets(original);
    ASSERT_GT(elim.num_markers, 0) << c.formula;
    // Map raw automaton pointers back to shared handles for LoopEvaluator.
    std::map<const PathAutomaton*, PathAutoPtr> shared;
    for (const PathAutoPtr& a : CollectAutomata(original)) shared[a.get()] = a;

    if (c.satisfiable) {
      SatResult r = LoopSatisfiable(original);
      ASSERT_EQ(r.status, SolveStatus::kSat) << c.formula;
      // Decorate the witness with the intended markers.
      XmlTree decorated = *r.witness;
      const int original_size = decorated.size();
      LoopEvaluator undecorated_eval(*r.witness);
      for (NodeId v = 0; v < original_size; ++v) {
        for (size_t m = 0; m < elim.bindings.size(); ++m) {
          const auto& b = elim.bindings[m];
          const StateRel& rel = undecorated_eval.LoopRelations(shared.at(b.automaton))[v];
          if (rel.Get(b.q_from, b.q_to)) {
            decorated.AddChild(v, MarkerLabel(static_cast<int>(m)));
          }
        }
      }
      LoopEvaluator decorated_eval(decorated);
      const std::vector<bool>& truth = decorated_eval.EvalAll(elim.formula);
      bool holds_somewhere = false;
      for (NodeId v = 0; v < decorated.size(); ++v) holds_somewhere |= truth[v];
      EXPECT_TRUE(holds_somewhere)
          << c.formula << " eliminated formula fails on intended decoration of "
          << TreeToText(decorated);
    } else {
      // Adversarial sweep: random trees with random marker decorations must
      // never satisfy the eliminated formula.
      for (int i = 0; i < 60; ++i) {
        TreeGenOptions opt;
        opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(6));
        opt.alphabet = {"a", "b"};
        XmlTree t = gen.Generate(opt);
        const int base_size = t.size();
        for (NodeId v = 0; v < base_size; ++v) {
          for (int m = 0; m < elim.num_markers; ++m) {
            if (gen.NextBelow(3) == 0) t.AddChild(v, MarkerLabel(m));
          }
        }
        LoopEvaluator ev(t);
        const std::vector<bool>& truth = ev.EvalAll(elim.formula);
        for (NodeId v = 0; v < t.size(); ++v) {
          ASSERT_FALSE(truth[v]) << c.formula << " claimed satisfied at node " << v
                                 << " of decorated tree " << TreeToText(t);
        }
      }
    }
  }
}

TEST(LetElim, NoMarkersWithoutNesting) {
  LExprPtr e = ToLoopNormalForm(N("<down[a]>"));
  ASSERT_TRUE(e);
  LetElimResult r = EliminateLets(e);
  EXPECT_EQ(r.num_markers, 0);
}

TEST(LetElim, SizeIsPolynomialInDagSize) {
  // Nested products explode the *tree* size but the let-eliminated formula
  // stays polynomial in the DAG size.
  for (int n = 1; n <= 3; ++n) {
    std::string s = "down & down[a]";
    for (int i = 1; i < n; ++i) s = "(" + s + ") & (down & down[a])";
    LExprPtr e = IntersectToLoopNormalForm(N("<" + s + ">"));
    ASSERT_TRUE(e);
    LetElimResult r = EliminateLets(e);
    int64_t dag = DagSizeOf(e);
    int64_t flat = DagSizeOf(r.formula);
    EXPECT_LE(flat, 40 * dag + 2000) << "n=" << n;
  }
}

}  // namespace
}  // namespace xpc
