// The streaming matcher suite (`ctest -L stream`, DESIGN.md §2.11):
//
//  - fragment gate: StreamableReason names the offending construct for
//    everything outside ↓ / ↓* / . / seq / union / * / label booleans;
//  - handcrafted semantics: exact match ordinals on known trees;
//  - seeded differential battery: random Streamable bundles × random and
//    EDTD-conforming streams, shared automaton ≡ per-query automata ≡
//    evaluator root matches (the O6 oracle);
//  - BundleOptimizer: the curated routing scenario demonstrates ≥1
//    subsumed, ≥1 root-unsat and ≥1 aliased query, and pruning is sound;
//  - determinism: SchemaIndex build-thread counts and warm/cold subset
//    caches never change the compiled automaton or the match stream.

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "xpc/core/session.h"
#include "xpc/edtd/conformance.h"
#include "xpc/edtd/edtd.h"
#include "xpc/eval/evaluator.h"
#include "xpc/fuzz/generator.h"
#include "xpc/fuzz/oracles.h"
#include "xpc/stream/bundle_optimizer.h"
#include "xpc/stream/stream_compile.h"
#include "xpc/stream/stream_event.h"
#include "xpc/stream/stream_matcher.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

PathPtr P(const std::string& text) {
  auto r = ParsePath(text);
  EXPECT_TRUE(r.ok()) << text << ": " << (r.ok() ? "" : r.error());
  return r.value();
}

XmlTree T(const std::string& text) {
  auto r = ParseTree(text);
  EXPECT_TRUE(r.ok()) << text;
  return r.value();
}

// The routing-flavored schema of the examples: a feed of channels of
// (recursively nested) items. Root-unsat queries against it are easy to
// write (`down[item]` — a feed's children are channels) without being
// globally unsat.
Edtd FeedEdtd() {
  auto r = Edtd::Parse(
      "Feed -> feed := Channel*\n"
      "Channel -> channel := Meta? Item*\n"
      "Meta -> meta := epsilon\n"
      "Item -> item := Title? Body? Item*\n"
      "Title -> title := epsilon\n"
      "Body -> body := Para* Tag*\n"
      "Para -> para := epsilon\n"
      "Tag -> tag := epsilon\n");
  EXPECT_TRUE(r.ok());
  return r.value();
}

// Matches of one query on one stream, as sorted (query-relative) ordinals.
std::vector<int64_t> Matches(StreamMatcher* m, const std::vector<StreamEvent>& events,
                             int32_t query) {
  std::vector<int64_t> out;
  for (auto [q, n] : m->MatchStream(events)) {
    if (q == query) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(StreamCompile, RejectsNonStreamableWithReasons) {
  EXPECT_EQ(StreamableReason(P("down*[b]/down")), "");
  EXPECT_EQ(StreamableReason(P("(down/down[a])*")), "");
  EXPECT_EQ(StreamableReason(P(".[a and not(b or c)]")), "");
  for (const char* bad : {"up", "right", "left", "up*", "down & down[a]",
                          "down - down[a]", "down[<up>]", "down[eq(down, down)]",
                          "down[is $i]", "for $i in down return down"}) {
    EXPECT_NE(StreamableReason(P(bad)), "") << bad;
  }
}

TEST(StreamCompile, SingleQueryMatchesKnownOrdinals) {
  // Tree a(b(b),a(b)): preorder ordinals a=0, b=1, b=2, a=3, b=4.
  XmlTree tree = T("a(b(b),a(b))");
  std::vector<StreamEvent> events = EventsOf(tree);

  struct Case {
    const char* query;
    std::vector<int64_t> want;
  };
  for (const Case& c : std::initializer_list<Case>{
           {".", {0}},
           {".[a]", {0}},
           {".[b]", {}},
           {"down", {1, 3}},
           {"down[b]", {1}},
           {"down*", {0, 1, 2, 3, 4}},
           {"down*[b]", {1, 2, 4}},
           {"down/down", {2, 4}},
           {"down[b]/down[b]", {2}},
           {"(down[a])*[a]", {0, 3}},
           {"down*[not(a)]", {1, 2, 4}},
           {"down[a] | down[b]", {1, 3}},
       }) {
    CompiledBundle single = CompileSingle(P(c.query));
    StreamMatcher m(&single);
    EXPECT_EQ(Matches(&m, events, 0), c.want) << c.query;
  }
}

TEST(StreamCompile, SharedAutomatonInterleavesOwners) {
  std::vector<BundleQuery> queries;
  const char* exprs[] = {"down[b]", "down*[b]", "down/down"};
  for (int i = 0; i < 3; ++i) queries.push_back({P(exprs[i]), {i}});
  CompiledBundle bundle = CompileBundle(queries, 3);
  StreamMatcher m(&bundle);
  std::vector<StreamEvent> events = EventsOf(T("a(b(b),a(b))"));
  EXPECT_EQ(Matches(&m, events, 0), (std::vector<int64_t>{1}));
  EXPECT_EQ(Matches(&m, events, 1), (std::vector<int64_t>{1, 2, 4}));
  EXPECT_EQ(Matches(&m, events, 2), (std::vector<int64_t>{2, 4}));
  // Per-query final masks project the shared state space faithfully.
  for (int q = 0; q < 3; ++q) {
    Bits mask = bundle.QueryFinalMask(q);
    EXPECT_FALSE(mask.None()) << q;
    EXPECT_TRUE(mask.SubsetOf(bundle.final_mask)) << q;
  }
}

TEST(StreamMatcher, UnbalancedStreamsAreReportedAndRecovered) {
  CompiledBundle single = CompileSingle(P("down"));
  StreamMatcher m(&single);
  m.BeginDocument();
  m.StartElement("a");
  m.EndElement();
  m.EndElement();  // Underflow.
  EXPECT_FALSE(m.EndDocument());

  m.BeginDocument();
  m.StartElement("a");
  m.StartElement("b");
  m.EndElement();
  EXPECT_FALSE(m.EndDocument());  // One element left open.

  // The matcher recovers: a well-formed document still works afterwards.
  std::vector<StreamEvent> events = EventsOf(T("a(b)"));
  EXPECT_EQ(Matches(&m, events, 0), (std::vector<int64_t>{1}));
}

TEST(StreamMatcher, WarmCacheNeverChangesMatches) {
  // One matcher consuming many documents (warm subset cache) must report
  // exactly what a cold matcher reports per document.
  std::vector<BundleQuery> queries;
  const char* exprs[] = {"down*[b]", "down[a]/down", ".[a]"};
  for (int i = 0; i < 3; ++i) queries.push_back({P(exprs[i]), {i}});
  CompiledBundle bundle = CompileBundle(queries, 3);
  StreamMatcher warm(&bundle);
  FuzzGen gen(20260807);
  for (int doc = 0; doc < 50; ++doc) {
    XmlTree tree = gen.GenTree(12, {"a", "b", "c"});
    std::vector<StreamEvent> events = EventsOf(tree);
    StreamMatcher cold(&bundle);
    EXPECT_EQ(warm.MatchStream(events), cold.MatchStream(events))
        << TreeToText(tree);
  }
  EXPECT_GT(warm.events(), 0);
}

// The seeded differential battery: the O6 oracle over generator-drawn
// Streamable bundles, against random trees and (every other case) random
// EDTD-conforming streams. Any disagreement between the shared automaton,
// the per-query automata and the reference evaluator fails with the
// offending bundle and tree inline.
TEST(StreamDifferential, RandomBundlesAgainstEvaluator) {
  FuzzGen gen(0xC0FFEE);
  ExprGenOptions o = ExprGenOptions::Streamable();
  o.max_ops = 6;
  for (int i = 0; i < 120; ++i) {
    const int k = 2 + static_cast<int>(gen.NextBelow(4));
    std::vector<PathPtr> bundle;
    std::string joined;
    for (int q = 0; q < k; ++q) {
      bundle.push_back(gen.GenPath(o));
      joined += (q > 0 ? " ; " : "") + ToString(bundle.back());
    }
    std::optional<Edtd> edtd;
    if (i % 2 == 0) edtd.emplace(gen.GenEdtd(EdtdGenOptions{}));
    uint64_t tree_seed = gen.NextU64();
    EXPECT_EQ(CheckStreamMatcher(bundle, edtd ? &*edtd : nullptr, tree_seed, 4, 10), "")
        << "bundle " << i << ": " << joined;
  }
}

TEST(BundleOptimizer, CuratedScenarioPrunesAndAliases) {
  Session session;
  session.SetEdtd(FeedEdtd());
  BundleOptions options;
  options.prune_subsumed = true;
  BundleOptimizer optimizer(&session, options);

  std::vector<PathPtr> queries = {
      P("down*[title]"),           // 0: active representative.
      P("down/down/down[title]"),  // 1: subsumed by 0 (⊆ down*[title]).
      P("down[channel]/down[item]"),  // 2: active.
      P("down[item]"),                // 3: root-unsat (feed children: channel).
      P("down*[title]"),              // 4: structural duplicate of 0.
      P(".[channel]"),                // 5: root-unsat (root is feed).
      P("down[meta]"),                // 6: root-unsat (channel-level label).
  };
  OptimizedBundle plan = optimizer.Optimize(queries);

  using D = BundleQueryInfo::Disposition;
  EXPECT_EQ(plan.queries[0].disposition, D::kActive);
  EXPECT_EQ(plan.queries[1].disposition, D::kSubsumed);
  EXPECT_EQ(plan.queries[1].target, 0);
  EXPECT_EQ(plan.queries[2].disposition, D::kActive);
  EXPECT_EQ(plan.queries[3].disposition, D::kUnsat);
  EXPECT_EQ(plan.queries[4].disposition, D::kAliased);
  EXPECT_EQ(plan.queries[4].target, 0);
  EXPECT_EQ(plan.queries[5].disposition, D::kUnsat);
  EXPECT_EQ(plan.queries[6].disposition, D::kUnsat);
  EXPECT_GE(plan.num_subsumed, 1);
  EXPECT_GE(plan.num_unsat, 1);
  EXPECT_GE(plan.num_aliased, 1);

  // Soundness on conforming documents: the aliased query fires exactly like
  // its representative, the subsumed query's matches are covered by its
  // subsumer, pruned queries never match.
  CompiledBundle bundle = CompileBundle(plan.compile_set, static_cast<int>(queries.size()));
  StreamMatcher matcher(&bundle);
  Edtd edtd = FeedEdtd();
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    auto [ok, tree] = SampleConformingTree(edtd, 40, seed);
    if (!ok) continue;
    std::vector<StreamEvent> events = EventsOf(tree);
    Evaluator eval(tree);
    std::vector<std::vector<int64_t>> fired(queries.size());
    for (auto [q, n] : matcher.MatchStream(events)) fired[q].push_back(n);
    EXPECT_EQ(fired[0], fired[4]) << TreeToText(tree);
    EXPECT_TRUE(fired[1].empty());
    EXPECT_TRUE(fired[3].empty());
    // Reference coverage: every evaluator root match of q1 is a root match
    // of its subsumer q0.
    auto covered = [&](const PathPtr& sub, const PathPtr& super) {
      auto pairs_sub = eval.EvalPath(sub).ToPairs();
      auto rel_super = eval.EvalPath(super);
      for (auto [src, dst] : pairs_sub) {
        if (src == tree.root() && !rel_super.Contains(src, dst)) return false;
      }
      return true;
    };
    EXPECT_TRUE(covered(queries[1], queries[0])) << TreeToText(tree);
    // Unsat-pruned queries must not match conforming documents at the root.
    for (int dead : {3, 5, 6}) {
      for (auto [src, dst] : eval.EvalPath(queries[dead]).ToPairs()) {
        EXPECT_NE(src, tree.root()) << "q" << dead << " on " << TreeToText(tree);
      }
    }
  }
}

TEST(BundleOptimizer, SubsumptionOffKeepsEveryQueryFiring) {
  Session session;
  BundleOptimizer optimizer(&session);  // Defaults: dedupe on, subsumption off.
  std::vector<PathPtr> queries = {P("down*[b]"), P("down/down[b]")};
  OptimizedBundle plan = optimizer.Optimize(queries);
  EXPECT_EQ(plan.num_active, 2);
  EXPECT_EQ(plan.num_subsumed, 0);
}

TEST(StreamDeterminism, SchemaIndexThreadCountsDoNotChangeOutcome) {
  // The optimizer consults the session's SchemaIndex (built with a
  // configurable thread count); the compiled automaton and the match stream
  // must be identical at every setting.
  std::vector<PathPtr> queries = {P("down*[title]"), P("down/down/down[title]"),
                                  P("down[channel]/down[item]"), P("down[item]"),
                                  P("down*[para]")};
  Edtd edtd = FeedEdtd();

  std::vector<std::pair<int32_t, int64_t>> first_matches;
  int first_states = -1;
  std::vector<BundleQueryInfo::Disposition> first_plan;
  for (int threads : {1, 2, 4}) {
    SchemaIndex::ClearRegistry();  // Force a rebuild at this thread count.
    SessionOptions so;
    so.schema_index.build_threads = threads;
    Session session(so);
    session.SetEdtd(edtd);
    BundleOptions options;
    options.prune_subsumed = true;
    BundleOptimizer optimizer(&session, options);
    OptimizedBundle plan = optimizer.Optimize(queries);
    CompiledBundle bundle = CompileBundle(plan.compile_set, static_cast<int>(queries.size()));
    StreamMatcher matcher(&bundle);
    auto [ok, tree] = SampleConformingTree(edtd, 60, 7);
    ASSERT_TRUE(ok);
    std::vector<std::pair<int32_t, int64_t>> matches = matcher.MatchStream(EventsOf(tree));
    std::vector<BundleQueryInfo::Disposition> dispositions;
    for (const BundleQueryInfo& info : plan.queries) dispositions.push_back(info.disposition);
    if (first_states < 0) {
      first_states = bundle.nfa.num_states();
      first_matches = std::move(matches);
      first_plan = std::move(dispositions);
    } else {
      EXPECT_EQ(bundle.nfa.num_states(), first_states) << threads;
      EXPECT_EQ(matches, first_matches) << threads;
      EXPECT_EQ(dispositions, first_plan) << threads;
    }
  }
  SchemaIndex::ClearRegistry();
}

TEST(StreamOracle, FuzzFamilySmoke) {
  FuzzOptions options;
  options.cases = 80;
  options.seed = 20260807;
  options.roundtrip = false;
  options.translations = false;
  options.engines = false;
  options.session = false;
  options.fastpaths = false;
  FuzzReport report = RunFuzz(options);
  EXPECT_TRUE(report.ok()) << report.Summary()
                           << (report.failures.empty() ? "" : ": " + report.failures[0].detail);
  EXPECT_EQ(report.per_oracle.count("stream"), 1u);
}

}  // namespace
}  // namespace xpc
