// Randomized differential testing of the containment stack, with and
// without the Session cache — the whole battery instantiated twice, with
// the classifier fast paths on and off (SolverOptions::fast_paths), so a
// fast-path verdict that diverges from the full engines on a dispatched
// query fails the brute-force cross-check directly.
//
// A seeded, deterministic generator produces random CoreXPath(∩, ≈)
// expression pairs (the largest fragment every complete engine — loop-sat,
// the ∩-product pipeline and the downward engine — can be dispatched to).
// For each pair (α, β) the solver verdict is cross-checked against
// brute-force evaluation over ALL trees up to a node bound (via
// EnumerateTrees), and the cached (Session) and uncached (Solver) stacks
// must agree exactly:
//
//   * kContained      → no enumerated tree may witness ⟦α⟧ ⊄ ⟦β⟧;
//   * kNotContained   → the attached counterexample must be a real witness
//                       under the reference evaluator;
//   * any verdict     → Session (cold), Session (warm repeat), Solver and
//                       ContainsBatch all report the same verdict.
//
// Every failure message carries the case seed; re-run a single case with
//   XPC_DIFF_SEED=<seed> XPC_DIFF_CASES=1 ./xpc_differential_tests \
//       --gtest_filter='*Differential*On' (or Off)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "xpc/core/session.h"
#include "xpc/core/solver.h"
#include "xpc/eval/evaluator.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

constexpr uint64_t kDefaultBaseSeed = 0xd1ffe7e57ULL;
constexpr int kDefaultCases = 500;
constexpr int kMaxReferenceNodes = 5;  // Enumerate all trees up to this size.

uint64_t BaseSeed() {
  if (const char* env = std::getenv("XPC_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefaultBaseSeed;
}

int NumCases() {
  if (const char* env = std::getenv("XPC_DIFF_CASES")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return kDefaultCases;
}

/// Deterministic random CoreXPath(∩, ≈) expression generator. `budget`
/// bounds the number of operator applications, keeping expressions small
/// enough that the 2-EXPTIME product pipeline stays fast.
class ExprGen {
 public:
  explicit ExprGen(uint64_t seed) : rng_(seed) {}

  PathPtr GenPath(int budget) {
    if (budget <= 1) return GenAtom();
    switch (rng_.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
        return Seq(GenPath(budget / 2), GenPath(budget - budget / 2));
      case 3:
        return Union(GenPath(budget / 2), GenPath(budget - budget / 2));
      case 4:
      case 5:
        return Filter(GenPath(budget / 2), GenNode(budget - budget / 2));
      case 6:
        return Intersect(GenPath(budget / 2), GenPath(budget - budget / 2));
      default:
        return GenAtom();
    }
  }

  NodePtr GenNode(int budget) {
    if (budget <= 1) {
      return rng_.NextBelow(4) == 0 ? True() : Label(RandLabel());
    }
    switch (rng_.NextBelow(10)) {
      case 0:
      case 1:
        return Not(GenNode(budget - 1));
      case 2:
        return And(GenNode(budget / 2), GenNode(budget - budget / 2));
      case 3:
        return Or(GenNode(budget / 2), GenNode(budget - budget / 2));
      case 4:
      case 5:
        return Some(GenPath(budget / 2));
      case 6:
        return PathEq(GenPath(budget / 2), GenPath(budget - budget / 2));
      default:
        return Label(RandLabel());
    }
  }

 private:
  PathPtr GenAtom() {
    switch (rng_.NextBelow(6)) {
      case 0:
      case 1:
        return Ax(RandAxis());
      case 2:
      case 3:
        return AxStar(RandAxis());
      case 4:
        return Self();
      default:
        return Filter(Self(), Label(RandLabel()));
    }
  }

  // ↓-biased so the downward engine is regularly exercised too.
  Axis RandAxis() {
    switch (rng_.NextBelow(7)) {
      case 0:
      case 1:
      case 2:
        return Axis::kChild;
      case 3:
        return Axis::kParent;
      case 4:
        return Axis::kRight;
      default:
        return Axis::kLeft;
    }
  }

  std::string RandLabel() { return rng_.NextBelow(2) == 0 ? "a" : "b"; }

  TreeGenerator rng_;
};

struct Verdicts {
  ContainmentResult cold;  // Fresh Solver (no cache anywhere).
  ContainmentResult miss;  // Session, first submission.
  ContainmentResult hit;   // Session, repeat submission (cache hit).
};

class DifferentialHarness : public ::testing::TestWithParam<bool> {
 protected:
  static std::vector<XmlTree>* reference_trees_;

  static void SetUpTestSuite() {
    reference_trees_ = new std::vector<XmlTree>();
    for (int n = 1; n <= kMaxReferenceNodes; ++n) {
      for (XmlTree& t : EnumerateTrees(n, {"a", "b"})) {
        reference_trees_->push_back(std::move(t));
      }
    }
  }

  static void TearDownTestSuite() {
    delete reference_trees_;
    reference_trees_ = nullptr;
  }

  // The reference evaluator's bounded verdict: the first tree violating
  // ⟦α⟧ ⊆ ⟦β⟧, or -1 if none exists up to the bound.
  static int FirstViolation(const PathPtr& alpha, const PathPtr& beta) {
    for (size_t i = 0; i < reference_trees_->size(); ++i) {
      Evaluator ev((*reference_trees_)[i]);
      if (!ev.ContainedIn(alpha, beta)) return static_cast<int>(i);
    }
    return -1;
  }
};

std::vector<XmlTree>* DifferentialHarness::reference_trees_ = nullptr;

TEST_P(DifferentialHarness, SolverAgreesWithBruteForceWithAndWithoutCache) {
  const bool fast_paths = GetParam();
  const uint64_t base_seed = BaseSeed();
  const int cases = NumCases();
  std::printf("[differential] base seed 0x%llx, %d cases, fast_paths=%s "
              "(override with XPC_DIFF_SEED / XPC_DIFF_CASES)\n",
              static_cast<unsigned long long>(base_seed), cases,
              fast_paths ? "on" : "off");

  SessionOptions session_options;
  session_options.solver.fast_paths = fast_paths;
  Session session(session_options);
  SolverOptions solver_options;
  solver_options.fast_paths = fast_paths;
  Solver solver(solver_options);
  std::vector<std::pair<PathPtr, PathPtr>> all_pairs;
  std::vector<ContainmentVerdict> all_verdicts;
  int unknown = 0;

  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    ExprGen gen(seed);
    PathPtr alpha = gen.GenPath(3);
    PathPtr beta = gen.GenPath(3);
    const std::string trace = "case " + std::to_string(i) + " seed " + std::to_string(seed) +
                              ": " + ToString(alpha) + " ⊆? " + ToString(beta);
    SCOPED_TRACE(trace);

    Verdicts v;
    v.cold = solver.Contains(alpha, beta);
    v.miss = session.Contains(alpha, beta);
    v.hit = session.Contains(alpha, beta);

    // Cache on, cache off and warm cache must agree exactly.
    ASSERT_EQ(v.miss.verdict, v.cold.verdict) << "session(miss) vs cold solver";
    ASSERT_EQ(v.hit.verdict, v.cold.verdict) << "session(hit) vs cold solver";
    ASSERT_EQ(v.hit.engine, v.miss.engine);
    ASSERT_FALSE(v.cold.engine.empty());

    all_pairs.emplace_back(alpha, beta);
    all_verdicts.push_back(v.cold.verdict);

    switch (v.cold.verdict) {
      case ContainmentVerdict::kContained: {
        int violation = FirstViolation(alpha, beta);
        ASSERT_EQ(violation, -1)
            << "solver claims containment but the reference evaluator found "
            << "counterexample " << TreeToText((*reference_trees_)[violation]);
        break;
      }
      case ContainmentVerdict::kNotContained: {
        // The dispatched engines always attach a counterexample here, and
        // it must be a genuine one.
        ASSERT_TRUE(v.cold.counterexample.has_value());
        Evaluator ev(*v.cold.counterexample);
        ASSERT_FALSE(ev.ContainedIn(alpha, beta))
            << "claimed counterexample is not one: " << TreeToText(*v.cold.counterexample);
        ASSERT_TRUE(v.miss.counterexample.has_value());
        Evaluator ev2(*v.miss.counterexample);
        ASSERT_FALSE(ev2.ContainedIn(alpha, beta));
        break;
      }
      case ContainmentVerdict::kUnknown:
        // Resource limits (possible on unlucky ∩ nestings): nothing to
        // check semantically, but cache agreement above still applies.
        ++unknown;
        break;
    }
  }

  // The whole workload again through the batch API of a FRESH session, so
  // the thread pool genuinely re-solves (no warm cache): verdicts must
  // match the sequential ones, query by query.
  Session batch_session(session_options);
  std::vector<ContainmentResult> batch = batch_session.ContainsBatch(all_pairs);
  ASSERT_EQ(batch.size(), all_pairs.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].verdict, all_verdicts[i])
        << "batch disagrees on case " << i << " (seed "
        << base_seed + static_cast<uint64_t>(i) << "): " << ToString(all_pairs[i].first)
        << " ⊆? " << ToString(all_pairs[i].second);
  }

  // The complete engines decide this fragment; unknowns should be rare.
  EXPECT_LE(unknown, cases / 10)
      << "too many resource-limited verdicts — generator or limits regressed";

  SessionStats stats = session.stats();
  std::printf("[differential] %d cases, %d unknown; %s", cases, unknown,
              stats.ToString().c_str());
}

INSTANTIATE_TEST_SUITE_P(FastPaths, DifferentialHarness, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "On" : "Off";
                         });

}  // namespace
}  // namespace xpc
