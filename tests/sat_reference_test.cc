// Reference cross-checks for the worklist-driven sat engines.
//
// Both engine rewrites (the dependency-indexed downward fixpoint and the
// hash-interned loop-sat tables) claim *bit-identity* with the cores they
// replaced: same verdicts, same explored counts, and byte-identical witness
// trees. This file keeps the pre-worklist cores alive as test-only
// reference implementations and asserts those claims on hundreds of seeded
// random instances:
//
//   * `refdown` is the old downward engine: the global-sweep fixpoint that
//     re-scans every type against the full summary table until stable, the
//     byte-per-atom Resolve memo, and the per-candidate WordExistsContaining
//     usable-types closure (the production engine replaced the latter with
//     the one-pass UsefulChildren computation — semantically equal, which
//     this suite demonstrates). The sweep discovers summaries in a
//     different ORDER than the worklist, so the reference shares the
//     production engine's canonical finish (sorted (type, bits) scan +
//     stratified canonical derivations), making the witness a pure function
//     of the summary *set* — the set both fixpoints must agree on.
//
//   * `refloop` is the old loop-sat engine verbatim: std::map relation
//     tables, per-call closure recomputation, the quadratic (fc, ns) item
//     join and std::set-ordered pool growth. The interned rewrite promises
//     the exact same add_item sequence, so status, item counts AND
//     witnesses must match exactly — including on resource limits.
//
// The downward suites additionally run the production engine with
// sat_threads = 3 and require full equality with the serial run (the
// frozen-generation merge determinism claim).
//
// Every failure message carries the case seed; re-run one case with
//   XPC_REF_SEED=<seed> XPC_REF_CASES=1 ./xpc_tests --gtest_filter='SatReference.*'

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "xpc/automata/regex.h"
#include "xpc/common/arena.h"
#include "xpc/common/bits.h"
#include "xpc/core/solver.h"
#include "xpc/edtd/conformance.h"
#include "xpc/edtd/edtd.h"
#include "xpc/eval/evaluator.h"
#include "xpc/pathauto/lexpr.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/pathauto/state_relation.h"
#include "xpc/sat/downward_sat.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/sat/simple_paths.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

constexpr uint64_t kDefaultBaseSeed = 0x5a7c0de5ULL;
// 250 + 150 + 150 = 550 cross-checked instances per full run.
constexpr int kDownwardFreeCases = 250;
constexpr int kDownwardEdtdCases = 150;
constexpr int kLoopCases = 150;

uint64_t BaseSeed() {
  if (const char* env = std::getenv("XPC_REF_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefaultBaseSeed;
}

int Cases(int dflt) {
  if (const char* env = std::getenv("XPC_REF_CASES")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return dflt;
}

// ======================================================================
// Reference downward engine: the pre-worklist global-sweep fixpoint.
// Registration, truth evaluation and the per-pass exploration are the old
// code; the finish (canonical scan + stratified canonical derivations) is
// shared with the production engine so witnesses depend only on the
// summary set. Differences from production kept on purpose:
//   - ExpandType restarts a from-scratch BFS over the FULL summary table
//     every pass, inside a while-changed sweep over all types;
//   - Resolve memoizes through a byte-per-atom table;
//   - usable types and the witness chain use per-candidate
//     WordExistsContaining queries instead of UsefulChildren;
//   - canonical derivations run dense rounds over every type instead of
//     dependency-driven rounds.
// ======================================================================

namespace refdown {

struct Atom {
  SimpleStep::Kind head;
  const SimplePath* path;
  int pos;
};

struct Summary {
  int type = 0;
  Bits bits;

  bool operator==(const Summary& o) const { return type == o.type && bits == o.bits; }
};

struct SummaryHash {
  size_t operator()(const Summary& s) const {
    return s.bits.Hash() * 31 + static_cast<size_t>(s.type);
  }
};

struct BitsPairHash {
  size_t operator()(const std::pair<Bits, Bits>& p) const {
    return p.first.Hash() * 0x9e3779b97f4a7c15ULL + p.second.Hash();
  }
};

struct BitsBoolHash {
  size_t operator()(const std::pair<Bits, bool>& p) const {
    return p.first.Hash() * 2 + (p.second ? 1 : 0);
  }
};

class Engine {
 public:
  Engine(const NodePtr& phi, const Edtd& edtd, bool any_root,
         const DownwardSatOptions& options)
      : options_(options), edtd_(edtd), any_root_(any_root) {
    phi_ = RewritePathEqDeep(phi);
  }

  SatResult Run() {
    SatResult result;
    result.engine = "downward-sat";
    if (!supported_ || !RegisterAll(phi_)) {
      result.engine = "downward-sat:unsupported";
      result.status = SolveStatus::kResourceLimit;
      return result;
    }

    // The old bottom-up realizability fixpoint: sweep every type against
    // the whole summary table until a full sweep adds nothing.
    const int num_types = static_cast<int>(edtd_.types().size());
    bool changed = true;
    while (changed) {
      changed = false;
      for (int t = 0; t < num_types; ++t) {
        if (!ExpandType(t, &changed)) {
          result.status = SolveStatus::kResourceLimit;
          result.explored_states = static_cast<int64_t>(summaries_.size());
          return result;
        }
      }
    }
    result.explored_states = static_cast<int64_t>(summaries_.size());

    std::vector<bool> usable = ComputeUsableTypes();

    // Canonical finish, as in production: summaries in (type, bits) order.
    std::vector<int> order(summaries_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (summaries_[a].type != summaries_[b].type) {
        return summaries_[a].type < summaries_[b].type;
      }
      return summaries_[a].bits < summaries_[b].bits;
    });
    canon_order_ = std::move(order);

    for (int sid : canon_order_) {
      const Summary& s = summaries_[sid];
      if (!usable[s.type]) continue;
      if (TruthOfNode(phi_, s.type, [&](int atom) { return s.bits.Get(atom); })) {
        result.status = SolveStatus::kSat;
        if (options_.want_witness) {
          result.witness = BuildWitness(sid);
        }
        return result;
      }
    }
    result.status = SolveStatus::kUnsat;
    return result;
  }

 private:
  using BitFn = std::function<bool(int)>;

  NodePtr RewritePathEqDeep(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kLabel:
      case NodeKind::kTrue:
      case NodeKind::kIsVar:
        return node;
      case NodeKind::kSome:
        return Some(RewriteInPath(node->path));
      case NodeKind::kNot:
        return Not(RewritePathEqDeep(node->child1));
      case NodeKind::kAnd:
        return And(RewritePathEqDeep(node->child1), RewritePathEqDeep(node->child2));
      case NodeKind::kOr:
        return Or(RewritePathEqDeep(node->child1), RewritePathEqDeep(node->child2));
      case NodeKind::kPathEq:
        return Some(Intersect(RewriteInPath(node->path), RewriteInPath(node->path2)));
    }
    return node;
  }

  PathPtr RewriteInPath(const PathPtr& path) {
    switch (path->kind) {
      case PathKind::kAxis:
      case PathKind::kAxisStar:
      case PathKind::kSelf:
        return path;
      case PathKind::kSeq:
        return Seq(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kUnion:
        return Union(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kFilter:
        return Filter(RewriteInPath(path->left), RewritePathEqDeep(path->filter));
      case PathKind::kIntersect:
        return Intersect(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kStar:
      case PathKind::kComplement:
      case PathKind::kFor:
        supported_ = false;
        return path;
    }
    return path;
  }

  bool RegisterAll(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kLabel:
      case NodeKind::kTrue:
        return true;
      case NodeKind::kIsVar:
        supported_ = false;
        return false;
      case NodeKind::kNot:
        return RegisterAll(node->child1);
      case NodeKind::kAnd:
      case NodeKind::kOr:
        return RegisterAll(node->child1) && RegisterAll(node->child2);
      case NodeKind::kPathEq:
        supported_ = false;
        return false;
      case NodeKind::kSome:
        return RegisterSome(node);
    }
    return false;
  }

  bool RegisterSome(const NodePtr& some) {
    if (some_insts_.count(some.get())) return true;
    auto [ok, paths] = Instantiate(some->path, options_.max_inst_paths);
    if (!ok || static_cast<int64_t>(atoms_.size()) > options_.max_atoms) {
      supported_ = false;
      return false;
    }
    auto owned = std::make_shared<std::vector<SimplePath>>(std::move(paths));
    inst_storage_.push_back(owned);
    some_insts_[some.get()] = owned.get();
    for (const SimplePath& p : *owned) {
      for (size_t i = 0; i < p.size(); ++i) {
        if (p[i].kind == SimpleStep::Kind::kTest) {
          if (!RegisterAll(p[i].test)) return false;
        } else {
          RegisterAtom(p, static_cast<int>(i));
        }
      }
      path_suffix_ids_[&p] = SuffixIdsFor(p);
    }
    return true;
  }

  std::string SuffixKey(const SimplePath& p, int pos) const {
    std::ostringstream os;
    for (size_t i = pos; i < p.size(); ++i) {
      switch (p[i].kind) {
        case SimpleStep::Kind::kDown: os << 'D'; break;
        case SimpleStep::Kind::kDownStar: os << 'S'; break;
        case SimpleStep::Kind::kTest: os << 'T' << p[i].test.get(); break;
      }
    }
    return os.str();
  }

  int RegisterAtom(const SimplePath& p, int pos) {
    std::string key = SuffixKey(p, pos);
    auto it = atom_ids_.find(key);
    if (it != atom_ids_.end()) return it->second;
    int id = static_cast<int>(atoms_.size());
    atom_ids_.emplace(std::move(key), id);
    atoms_.push_back(Atom{p[pos].kind, &p, pos});
    return id;
  }

  std::vector<int> SuffixIdsFor(const SimplePath& p) {
    std::vector<int> ids(p.size(), -1);
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i].kind != SimpleStep::Kind::kTest) {
        ids[i] = atom_ids_.at(SuffixKey(p, static_cast<int>(i)));
      }
    }
    return ids;
  }

  bool TruthOfNode(const NodePtr& node, int type, const BitFn& bit) const {
    switch (node->kind) {
      case NodeKind::kLabel:
        return edtd_.types()[type].concrete_label == node->label;
      case NodeKind::kTrue:
        return true;
      case NodeKind::kNot:
        return !TruthOfNode(node->child1, type, bit);
      case NodeKind::kAnd:
        return TruthOfNode(node->child1, type, bit) &&
               TruthOfNode(node->child2, type, bit);
      case NodeKind::kOr:
        return TruthOfNode(node->child1, type, bit) ||
               TruthOfNode(node->child2, type, bit);
      case NodeKind::kSome: {
        const std::vector<SimplePath>* insts = some_insts_.at(node.get());
        for (const SimplePath& p : *insts) {
          if (TruthOfSuffix(p, 0, type, bit)) return true;
        }
        return false;
      }
      case NodeKind::kPathEq:
      case NodeKind::kIsVar:
        return false;
    }
    return false;
  }

  bool TruthOfSuffix(const SimplePath& p, int pos, int type, const BitFn& bit) const {
    int i = pos;
    while (i < static_cast<int>(p.size()) && p[i].kind == SimpleStep::Kind::kTest) {
      if (!TruthOfNode(p[i].test, type, bit)) return false;
      ++i;
    }
    if (i == static_cast<int>(p.size())) return true;
    return bit(path_suffix_ids_.at(&p)[i]);
  }

  // The old lazy per-id contribution cache.
  const Bits& ContributionOf(int summary_id) {
    while (summary_id >= static_cast<int>(contrib_.size())) {
      contrib_.push_back(ComputeContribution(static_cast<int>(contrib_.size())));
    }
    return contrib_[summary_id];
  }

  Bits ComputeContribution(int summary_id) const {
    const Summary& c = summaries_[summary_id];
    Bits out(static_cast<int>(atoms_.size()));
    BitFn bit = [&](int a) { return c.bits.Get(a); };
    for (size_t a = 0; a < atoms_.size(); ++a) {
      const Atom& atom = atoms_[a];
      if (atom.head == SimpleStep::Kind::kDown) {
        if (TruthOfSuffix(*atom.path, atom.pos + 1, c.type, bit)) out.Set(a);
      } else {
        if (c.bits.Get(static_cast<int>(a))) out.Set(a);
      }
    }
    return out;
  }

  // The old Resolve: byte-per-atom memo (production uses a (known, value)
  // bitset pair; the values must coincide).
  Bits Resolve(int type, const Bits& acc) const {
    const int n = static_cast<int>(atoms_.size());
    std::vector<int8_t> memo(n, -1);
    BitFn bit = [&](int a) -> bool { return ResolveAtom(a, type, acc, &memo); };
    Bits out(n);
    for (int a = 0; a < n; ++a) {
      if (bit(a)) out.Set(a);
    }
    return out;
  }

  bool ResolveAtom(int a, int type, const Bits& acc, std::vector<int8_t>* memo) const {
    if ((*memo)[a] >= 0) return (*memo)[a] == 1;
    (*memo)[a] = acc.Get(a) ? 1 : 0;
    bool value = acc.Get(a);
    if (!value && atoms_[a].head == SimpleStep::Kind::kDownStar) {
      BitFn bit = [&](int b) -> bool { return ResolveAtom(b, type, acc, memo); };
      value = TruthOfSuffix(*atoms_[a].path, atoms_[a].pos + 1, type, bit);
    }
    (*memo)[a] = value ? 1 : 0;
    return value;
  }

  // One pass of the old sweep: from-scratch BFS over (NFA state-set,
  // accumulated bits) pairs against the current summary table.
  bool ExpandType(int t, bool* changed) {
    const Nfa& nfa = edtd_.ContentNfa(t);
    struct Node {
      Bits states;
      Bits acc;
    };
    std::vector<Node> nodes;
    std::unordered_map<std::pair<Bits, Bits>, int, BitsPairHash> seen;
    std::queue<int> work;

    auto push = [&](Bits states, Bits acc) {
      auto key = std::make_pair(states, acc);
      if (seen.count(key)) return;
      int id = static_cast<int>(nodes.size());
      seen.emplace(std::move(key), id);
      nodes.push_back({std::move(states), std::move(acc)});
      work.push(id);
    };

    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<int> step_epoch(num_types, -1);
    std::vector<Bits> step_memo(num_types);

    push(nfa.InitialSet(), Bits(static_cast<int>(atoms_.size())));
    while (!work.empty()) {
      if (static_cast<int64_t>(nodes.size()) > options_.max_summaries) return false;
      int id = work.front();
      work.pop();
      if (nfa.AnyAccepting(nodes[id].states)) {
        Summary s;
        s.type = t;
        s.bits = Resolve(t, nodes[id].acc);
        auto it = summary_index_.find(s);
        if (it == summary_index_.end()) {
          int sid = static_cast<int>(summaries_.size());
          summary_index_.emplace(s, sid);
          summaries_.push_back(s);
          *changed = true;
          if (static_cast<int64_t>(summaries_.size()) > options_.max_summaries) return false;
        }
      }
      // Only the summaries present at pass start are used; the outer sweep
      // re-runs until stable.
      const size_t limit = summaries_.size();
      const Bits cur_states = nodes[id].states;  // push() may realloc nodes.
      for (size_t c = 0; c < limit; ++c) {
        const int ct = summaries_[c].type;
        if (step_epoch[ct] != id) {
          step_memo[ct] = nfa.Step(cur_states, ct);
          step_epoch[ct] = id;
        }
        const Bits& next = step_memo[ct];
        if (next.None()) continue;
        Bits acc = nodes[id].acc;
        acc.UnionWith(ContributionOf(static_cast<int>(c)));
        push(next, std::move(acc));
      }
    }
    return true;
  }

  // The old usable-types closure: a per-candidate subset-construction BFS
  // (WordExistsContaining) where production asks UsefulChildren once.
  std::vector<bool> ComputeUsableTypes() {
    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<bool> realizable(num_types, false);
    for (const Summary& s : summaries_) realizable[s.type] = true;
    std::vector<bool> usable(num_types, false);
    if (any_root_) {
      for (int t = 0; t < num_types; ++t) usable[t] = realizable[t];
      return usable;
    }
    int root = edtd_.TypeIndex(edtd_.root_type());
    usable[root] = realizable[root];
    bool changed = true;
    while (changed) {
      changed = false;
      for (int t = 0; t < num_types; ++t) {
        if (!usable[t]) continue;
        const Nfa& nfa = edtd_.ContentNfa(t);
        for (int c = 0; c < num_types; ++c) {
          if (!realizable[c] || usable[c]) continue;
          if (WordExistsContaining(nfa, realizable, c, nullptr)) {
            usable[c] = true;
            changed = true;
          }
        }
      }
    }
    return usable;
  }

  bool WordExistsContaining(const Nfa& nfa, const std::vector<bool>& allowed, int must,
                            std::vector<int>* word) const {
    struct Node {
      Bits states;
      bool has = false;
      int prev = -1;
      int via = -1;
    };
    std::vector<Node> nodes;
    std::unordered_map<std::pair<Bits, bool>, int, BitsBoolHash> seen;
    std::queue<int> work;
    auto push = [&](Bits states, bool has, int prev, int via) {
      auto key = std::make_pair(states, has);
      if (seen.count(key)) return;
      int id = static_cast<int>(nodes.size());
      seen.emplace(std::move(key), id);
      nodes.push_back({std::move(states), has, prev, via});
      work.push(id);
    };
    push(nfa.InitialSet(), false, -1, -1);
    while (!work.empty()) {
      int id = work.front();
      work.pop();
      if (nodes[id].has && nfa.AnyAccepting(nodes[id].states)) {
        if (word != nullptr) {
          for (int n = id; nodes[n].prev >= 0; n = nodes[n].prev) word->push_back(nodes[n].via);
          std::reverse(word->begin(), word->end());
        }
        return true;
      }
      for (size_t c = 0; c < allowed.size(); ++c) {
        if (!allowed[c]) continue;
        Bits next = nfa.Step(nodes[id].states, static_cast<int>(c));
        if (next.None()) continue;
        push(std::move(next), nodes[id].has || static_cast<int>(c) == must,
             id, static_cast<int>(c));
      }
    }
    return false;
  }

  // --- Canonical finish (shared with production) -----------------------

  // Dense variant of the production rounds: every type re-derives each
  // round. Production only wakes types whose content alphabet gained a
  // derivation — a pure skip of no-op BFS runs, so the assigned words must
  // be identical.
  void ComputeCanonicalDerivations() {
    canon_deriv_.assign(summaries_.size(), {});
    deriv_set_.assign(summaries_.size(), 0);
    const int num_types = static_cast<int>(edtd_.types().size());
    size_t have = 0;
    while (have < summaries_.size()) {
      const std::vector<char> frozen = deriv_set_;
      size_t gained = 0;
      for (int t = 0; t < num_types; ++t) {
        gained += static_cast<size_t>(DeriveRound(t, frozen));
      }
      if (gained == 0) break;  // Unreachable: every summary was interned
                               // from earlier-round children.
      have += gained;
    }
  }

  int DeriveRound(int t, const std::vector<char>& frozen) {
    const Nfa& nfa = edtd_.ContentNfa(t);
    struct Node {
      Bits states;
      Bits acc;
      int prev = -1;
      int via_child = -1;
    };
    std::vector<Node> nodes;
    std::unordered_map<std::pair<Bits, Bits>, int, BitsPairHash> seen;
    std::queue<int> work;
    int gained = 0;
    auto push = [&](Bits states, Bits acc, int prev, int via) {
      auto key = std::make_pair(states, acc);
      if (seen.count(key)) return;
      int id = static_cast<int>(nodes.size());
      seen.emplace(std::move(key), id);
      nodes.push_back({std::move(states), std::move(acc), prev, via});
      work.push(id);
    };

    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<int> step_epoch(num_types, -1);
    std::vector<Bits> step_memo(num_types);

    push(nfa.InitialSet(), Bits(static_cast<int>(atoms_.size())), -1, -1);
    while (!work.empty()) {
      int id = work.front();
      work.pop();
      if (nfa.AnyAccepting(nodes[id].states)) {
        Summary s;
        s.type = t;
        s.bits = Resolve(t, nodes[id].acc);
        auto it = summary_index_.find(s);
        if (it != summary_index_.end() && !deriv_set_[it->second]) {
          deriv_set_[it->second] = 1;
          ++gained;
          std::vector<int> word;
          for (int n = id; nodes[n].prev >= 0; n = nodes[n].prev) {
            word.push_back(nodes[n].via_child);
          }
          std::reverse(word.begin(), word.end());
          canon_deriv_[it->second] = std::move(word);
        }
      }
      const Bits cur_states = nodes[id].states;
      for (int c : canon_order_) {
        if (!frozen[c]) continue;
        const int ct = summaries_[c].type;
        if (step_epoch[ct] != id) {
          step_memo[ct] = nfa.Step(cur_states, ct);
          step_epoch[ct] = id;
        }
        const Bits& next = step_memo[ct];
        if (next.None()) continue;
        Bits acc = nodes[id].acc;
        acc.UnionWith(ContributionOf(c));
        push(next, std::move(acc), id, c);
      }
    }
    return gained;
  }

  int CanonicalFirstOfType(int t) const {
    for (int sid : canon_order_) {
      if (summaries_[sid].type == t) return sid;
    }
    return -1;
  }

  void ExpandSummary(int sid, XmlTree* tree, NodeId node) {
    if (canon_deriv_.empty()) ComputeCanonicalDerivations();
    const std::vector<int>& word = canon_deriv_[sid];
    for (int child : word) {
      NodeId c = tree->AddChild(node, edtd_.types()[summaries_[child].type].concrete_label);
      ExpandSummary(child, tree, c);
    }
  }

  XmlTree BuildWitness(int target_sid) {
    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<bool> realizable(num_types, false);
    for (const Summary& s : summaries_) realizable[s.type] = true;

    const int target_type = summaries_[target_sid].type;
    if (any_root_) {
      XmlTree tree(edtd_.types()[target_type].concrete_label);
      ExpandSummary(target_sid, &tree, tree.root());
      return tree;
    }
    std::vector<int> parent(num_types, -1);
    std::vector<bool> visited(num_types, false);
    std::queue<int> q;
    int start = edtd_.TypeIndex(edtd_.root_type());
    visited[start] = true;
    q.push(start);
    while (!q.empty()) {
      int t = q.front();
      q.pop();
      if (t == target_type) break;
      const Nfa& nfa = edtd_.ContentNfa(t);
      for (int c = 0; c < num_types; ++c) {
        if (visited[c] || !realizable[c]) continue;
        if (WordExistsContaining(nfa, realizable, c, nullptr)) {
          visited[c] = true;
          parent[c] = t;
          q.push(c);
        }
      }
    }
    std::vector<int> chain;
    for (int t = target_type; t != -1; t = parent[t]) chain.push_back(t);
    std::reverse(chain.begin(), chain.end());

    XmlTree tree(edtd_.types()[chain[0]].concrete_label);
    NodeId at = tree.root();
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      std::vector<int> word;
      bool ok = WordExistsContaining(edtd_.ContentNfa(chain[i]), realizable, chain[i + 1], &word);
      assert(ok);
      (void)ok;
      NodeId next_at = kNoNode;
      for (int ct : word) {
        NodeId c = tree.AddChild(at, edtd_.types()[ct].concrete_label);
        if (ct == chain[i + 1] && next_at == kNoNode) {
          next_at = c;
          if (i + 2 == chain.size()) {
            ExpandSummary(target_sid, &tree, c);
          }
        } else {
          int filler = CanonicalFirstOfType(ct);
          if (filler >= 0) ExpandSummary(filler, &tree, c);
        }
      }
      at = next_at;
    }
    if (chain.size() == 1) ExpandSummary(target_sid, &tree, at);
    return tree;
  }

  DownwardSatOptions options_;
  const Edtd& edtd_;
  bool any_root_ = false;
  NodePtr phi_;
  bool supported_ = true;

  std::vector<std::shared_ptr<std::vector<SimplePath>>> inst_storage_;
  std::map<const NodeExpr*, const std::vector<SimplePath>*> some_insts_;
  std::map<std::string, int> atom_ids_;
  std::vector<Atom> atoms_;
  std::map<const SimplePath*, std::vector<int>> path_suffix_ids_;

  std::vector<Summary> summaries_;
  std::unordered_map<Summary, int, SummaryHash> summary_index_;
  std::vector<Bits> contrib_;

  std::vector<int> canon_order_;
  std::vector<std::vector<int>> canon_deriv_;
  std::vector<char> deriv_set_;
};

SatResult SatisfiableWithEdtd(const NodePtr& phi, const Edtd& edtd,
                              const DownwardSatOptions& options) {
  Engine engine(phi, edtd, /*any_root=*/false, options);
  return engine.Run();
}

SatResult Satisfiable(const NodePtr& phi, const DownwardSatOptions& options) {
  std::set<std::string> labels = Labels(phi);
  labels.insert(FreshLabel(labels, "_other"));
  std::vector<Edtd::TypeDef> types;
  RegexPtr any;
  for (const std::string& l : labels) any = any ? RxUnion(any, RxSymbol(l)) : RxSymbol(l);
  for (const std::string& l : labels) types.push_back({l, RxStar(any), l});
  Edtd free_schema(std::move(types), *labels.begin());
  Engine engine(phi, free_schema, /*any_root=*/true, options);
  return engine.Run();
}

}  // namespace refdown

// ======================================================================
// Reference loop engine: the pre-interning core, verbatim. std::map
// relation tables, items carrying materialized D matrices, per-call
// TestRel/closure recomputation, the unfiltered quadratic (fc, ns) join
// and std::set-ordered GrowPool. The production rewrite must reproduce
// its add_item sequence exactly.
// ======================================================================

namespace refloop {

struct Item {
  int label = 0;
  std::vector<StateRel> d;
  std::vector<int> u_ids;

  bool operator==(const Item& o) const {
    return label == o.label && u_ids == o.u_ids && d == o.d;
  }

  size_t Hash() const {
    size_t h = static_cast<size_t>(label) * 0x9e3779b97f4a7c15ULL;
    for (const StateRel& r : d) h = h * 1099511628211ULL + r.Hash();
    for (int u : u_ids) h = h * 1099511628211ULL + static_cast<size_t>(u + 1);
    return h;
  }
};

struct ItemHash {
  size_t operator()(const Item& i) const { return i.Hash(); }
};

struct AutoData {
  PathAutoPtr automaton;
  int nq = 0;
  StateRel down1, up1, right, left;
  struct TestEdge {
    int from;
    LExprPtr test;
    int to;
  };
  std::vector<TestEdge> tests;
};

struct Derivation {
  int fc = -1;
  int ns = -1;
};

class RelTable {
 public:
  int Intern(const StateRel& r) {
    auto [it, inserted] = ids_.emplace(r, static_cast<int>(rels_.size()));
    if (inserted) rels_.push_back(r);
    return it->second;
  }
  int Find(const StateRel& r) const {
    auto it = ids_.find(r);
    return it == ids_.end() ? -1 : it->second;
  }
  const StateRel& Get(int id) const { return rels_[id]; }
  int size() const { return static_cast<int>(rels_.size()); }
  void Clear() {
    ids_.clear();
    rels_.clear();
  }

 private:
  std::map<StateRel, int> ids_;
  std::vector<StateRel> rels_;
};

class Engine {
 public:
  Engine(const LExprPtr& phi, const LoopSatOptions& options)
      : options_(options), target_(MergeStrataAutomata(SomewhereInTree(phi))) {
    for (const std::string& l : CollectLabels(target_)) labels_.push_back(l);
    labels_.push_back("_other");

    for (const PathAutoPtr& a : CollectAutomata(target_)) {
      AutoData data;
      data.automaton = a;
      data.nq = a->num_states;
      data.down1 = StateRel(data.nq);
      data.up1 = StateRel(data.nq);
      data.right = StateRel(data.nq);
      data.left = StateRel(data.nq);
      for (const PathAutomaton::Transition& t : a->transitions) {
        switch (t.move) {
          case Move::kDown1: data.down1.Set(t.from, t.to); break;
          case Move::kUp1: data.up1.Set(t.from, t.to); break;
          case Move::kRight: data.right.Set(t.from, t.to); break;
          case Move::kLeft: data.left.Set(t.from, t.to); break;
          case Move::kTest: data.tests.push_back({t.from, t.test, t.to}); break;
        }
      }
      auto_index_[a.get()] = static_cast<int>(autos_.size());
      autos_.push_back(std::move(data));
    }
  }

  SatResult Run() {
    const int num_autos = static_cast<int>(autos_.size());
    pools_.assign(num_autos, RelTable());
    for (int k = 0; k < num_autos; ++k) {
      if (!ComputeItems(k + 1, /*final_phase=*/false, nullptr, nullptr)) return Limit();
      if (!GrowPool(k)) return Limit();
    }
    std::vector<Derivation> derivs;
    int sat_index = -1;
    if (!ComputeItems(num_autos, /*final_phase=*/true, &derivs, &sat_index)) return Limit();

    SatResult result;
    result.engine = "loop-sat";
    result.explored_states = explored_;
    if (sat_index < 0) {
      result.status = SolveStatus::kUnsat;
      return result;
    }
    result.status = SolveStatus::kSat;
    if (options_.want_witness) {
      XmlTree tree(labels_[items_[sat_index].label]);
      if (derivs[sat_index].fc >= 0) {
        BuildSubtree(derivs, derivs[sat_index].fc, &tree, tree.root());
      }
      result.witness = std::move(tree);
    }
    return result;
  }

 private:
  SatResult Limit() {
    SatResult r;
    r.engine = "loop-sat";
    r.status = SolveStatus::kResourceLimit;
    r.explored_states = explored_;
    return r;
  }

  bool EvalTest(const LExprPtr& e, int label, const std::vector<StateRel>& loops) const {
    switch (e->kind) {
      case LExpr::Kind::kLabel:
        return labels_[label] == e->label;
      case LExpr::Kind::kTrue:
        return true;
      case LExpr::Kind::kNot:
        return !EvalTest(e->a, label, loops);
      case LExpr::Kind::kAnd:
        return EvalTest(e->a, label, loops) && EvalTest(e->b, label, loops);
      case LExpr::Kind::kOr:
        return EvalTest(e->a, label, loops) || EvalTest(e->b, label, loops);
      case LExpr::Kind::kLoop: {
        const int j = auto_index_.at(e->automaton.get());
        assert(j < static_cast<int>(loops.size()));
        return loops[j].Get(e->q_from, e->q_to);
      }
    }
    return false;
  }

  StateRel TestRel(int j, int label, const std::vector<StateRel>& loops) const {
    const AutoData& a = autos_[j];
    StateRel t(a.nq);
    for (const AutoData::TestEdge& e : a.tests) {
      if (EvalTest(e.test, label, loops)) t.Set(e.from, e.to);
    }
    return t;
  }

  int ExpectedChildUId(int j, int t_id, int other_exc_id, int u_id, int side) {
    uint64_t key = ((static_cast<uint64_t>(t_id) * 2097152 + (other_exc_id + 1)) * 2097152 +
                    u_id) * 2 + side;
    auto it = expected_memo_[j].find(key);
    if (it != expected_memo_[j].end()) return it->second;
    const AutoData& a = autos_[j];
    StateRel m = test_table_[j].Get(t_id);
    if (other_exc_id >= 0) m.UnionWith(exc_table_[j].Get(other_exc_id));
    m.UnionWith(pools_[j].Get(u_id));
    m.CloseReflexiveTransitive();
    StateRel expected = side == 0 ? a.up1.Compose(m).Compose(a.down1)
                                  : a.left.Compose(m).Compose(a.right);
    int id = pools_[j].Find(expected);
    if (id < 0) id = -2;
    expected_memo_[j].emplace(key, id);
    return id;
  }

  bool Extend(int j, int level, int u_size, Item* partial, std::vector<StateRel>* loops,
              int fc_id, int ns_id, const std::function<bool(const Item&)>& f) {
    if (j == level) return f(*partial);
    const AutoData& a = autos_[j];
    StateRel tests = TestRel(j, partial->label, *loops);
    StateRel d = tests;
    if (fc_id >= 0) d.UnionWith(exc_table_[j].Get(item_exc_[fc_id][j].as_fc));
    if (ns_id >= 0) d.UnionWith(exc_table_[j].Get(item_exc_[ns_id][j].as_ns));
    d.CloseReflexiveTransitive();
    partial->d.push_back(d);

    bool ok = true;
    if (j >= u_size) {
      loops->push_back(StateRel(a.nq));
      ok = Extend(j + 1, level, u_size, partial, loops, fc_id, ns_id, f);
      loops->pop_back();
    } else {
      const int t_id = test_table_[j].Intern(tests);
      const int fc_exc_ns = fc_id >= 0 ? item_exc_[fc_id][j].as_fc : -1;
      const int ns_exc = ns_id >= 0 ? item_exc_[ns_id][j].as_ns : -1;
      for (int u_id = 0; ok && u_id < pools_[j].size(); ++u_id) {
        if (fc_id >= 0 &&
            ExpectedChildUId(j, t_id, ns_exc, u_id, 0) != items_[fc_id].u_ids[j]) {
          continue;
        }
        if (ns_id >= 0 &&
            ExpectedChildUId(j, t_id, fc_exc_ns, u_id, 1) != items_[ns_id].u_ids[j]) {
          continue;
        }
        partial->u_ids.push_back(u_id);
        StateRel l = d;
        l.UnionWith(pools_[j].Get(u_id));
        l.CloseReflexiveTransitive();
        loops->push_back(std::move(l));
        ok = Extend(j + 1, level, u_size, partial, loops, fc_id, ns_id, f);
        loops->pop_back();
        partial->u_ids.pop_back();
      }
    }
    partial->d.pop_back();
    return ok;
  }

  std::vector<StateRel> LoopsOf(const Item& item) const {
    std::vector<StateRel> loops;
    for (size_t j = 0; j < item.d.size(); ++j) {
      StateRel l = item.d[j];
      if (j < item.u_ids.size()) l.UnionWith(pools_[j].Get(item.u_ids[j]));
      l.CloseReflexiveTransitive();
      loops.push_back(std::move(l));
    }
    return loops;
  }

  bool ComputeItems(int level, bool final_phase, std::vector<Derivation>* derivs,
                    int* sat_index) {
    const int u_size = final_phase ? level : level - 1;
    items_.clear();
    item_exc_.clear();
    item_index_.clear();
    for (int j = 0; j < static_cast<int>(autos_.size()); ++j) {
      test_table_[j].Clear();
      expected_memo_[j].clear();
    }
    std::vector<char> is_root_candidate;

    auto sat_found = [&] { return final_phase && sat_index != nullptr && *sat_index >= 0; };

    auto add_item = [&](const Item& item, int fc, int ns) -> bool {
      auto it = item_index_.find(item);
      int id;
      if (it == item_index_.end()) {
        id = static_cast<int>(items_.size());
        item_index_.emplace(item, id);
        items_.push_back(item);
        std::vector<ExcIds> exc(level);
        for (int j = 0; j < level; ++j) {
          const AutoData& a = autos_[j];
          exc[j].as_fc = exc_table_[j].Intern(a.down1.Compose(item.d[j]).Compose(a.up1));
          exc[j].as_ns = exc_table_[j].Intern(a.right.Compose(item.d[j]).Compose(a.left));
        }
        item_exc_.push_back(std::move(exc));
        if (derivs != nullptr) derivs->push_back({fc, ns});
        is_root_candidate.push_back(ns < 0 ? 1 : 0);
        ++explored_;
      } else {
        id = it->second;
        if (ns < 0 && !is_root_candidate[id]) {
          is_root_candidate[id] = 1;
          if (derivs != nullptr) (*derivs)[id] = {fc, ns};
        }
      }
      if (final_phase && sat_index != nullptr && *sat_index < 0 && is_root_candidate[id]) {
        bool all_empty = true;
        for (int j = 0; j < u_size; ++j) {
          all_empty = all_empty && pools_[j].Get(items_[id].u_ids[j]) == StateRel(autos_[j].nq);
        }
        if (all_empty &&
            EvalTest(target_, items_[id].label, LoopsOf(items_[id]))) {
          *sat_index = id;
        }
      }
      return explored_ < options_.max_items && !sat_found();
    };

    const int num_labels = static_cast<int>(labels_.size());
    std::vector<StateRel> loops;
    auto try_children = [&](int fc_id, int ns_id) -> bool {
      for (int label = 0; label < num_labels; ++label) {
        Item partial;
        partial.label = label;
        loops.clear();
        bool ok = Extend(0, level, u_size, &partial, &loops, fc_id, ns_id,
                         [&](const Item& item) { return add_item(item, fc_id, ns_id); });
        if (!ok) return false;
      }
      return true;
    };

    if (!try_children(-1, -1)) return sat_found();
    size_t processed = 0;
    while (processed < items_.size()) {
      if (sat_found()) return true;
      const int current = static_cast<int>(processed);
      ++processed;
      if (!try_children(current, -1)) return sat_found();
      if (!try_children(-1, current)) return sat_found();
      for (int other = 0; other < static_cast<int>(processed); ++other) {
        if (!try_children(current, other)) return sat_found();
        if (other != current && !try_children(other, current)) return sat_found();
      }
    }
    return true;
  }

  bool GrowPool(int k) {
    const AutoData& a = autos_[k];
    std::set<int> t_ids;
    std::set<int> exc_ids[2];
    exc_ids[0].insert(-1);
    exc_ids[1].insert(-1);
    for (const Item& parent : items_) {
      t_ids.insert(test_table_[k].Intern(TestRel(k, parent.label, LoopsOf(parent))));
    }
    for (const auto& exc : item_exc_) {
      exc_ids[0].insert(exc[k].as_ns);
      exc_ids[1].insert(exc[k].as_fc);
    }
    std::set<StateRel> base_set[2];
    for (int t_id : t_ids) {
      for (int side = 0; side < 2; ++side) {
        for (int exc_id : exc_ids[side]) {
          StateRel base = test_table_[k].Get(t_id);
          if (exc_id >= 0) base.UnionWith(exc_table_[k].Get(exc_id));
          base_set[side].insert(std::move(base));
        }
      }
    }

    RelTable& pool = pools_[k];
    std::vector<int> worklist;
    worklist.push_back(pool.Intern(StateRel(a.nq)));
    while (!worklist.empty()) {
      StateRel u = pool.Get(worklist.back());
      worklist.pop_back();
      for (int side = 0; side < 2; ++side) {
        for (const StateRel& base : base_set[side]) {
          StateRel m = base;
          m.UnionWith(u);
          m.CloseReflexiveTransitive();
          StateRel expected = side == 0 ? a.up1.Compose(m).Compose(a.down1)
                                        : a.left.Compose(m).Compose(a.right);
          int before = pool.size();
          int id = pool.Intern(expected);
          if (pool.size() > before) {
            worklist.push_back(id);
            if (pool.size() > options_.max_pool) return false;
          }
        }
      }
    }
    return true;
  }

  void BuildSubtree(const std::vector<Derivation>& derivs, int item_id, XmlTree* tree,
                    NodeId parent) const {
    NodeId node = tree->AddChild(parent, labels_[items_[item_id].label]);
    if (derivs[item_id].fc >= 0) BuildSubtree(derivs, derivs[item_id].fc, tree, node);
    if (derivs[item_id].ns >= 0) BuildSubtree(derivs, derivs[item_id].ns, tree, parent);
  }

  struct ExcIds {
    int as_fc = -1;
    int as_ns = -1;
  };

  LoopSatOptions options_;
  LExprPtr target_;
  std::vector<std::string> labels_;
  std::vector<AutoData> autos_;
  std::map<const PathAutomaton*, int> auto_index_;

  std::vector<RelTable> pools_;
  std::map<int, RelTable> exc_table_;
  std::map<int, RelTable> test_table_;
  std::map<int, std::unordered_map<uint64_t, int>> expected_memo_;

  std::vector<Item> items_;
  std::vector<std::vector<ExcIds>> item_exc_;
  std::unordered_map<Item, int, ItemHash> item_index_;

  int64_t explored_ = 0;
};

SatResult Satisfiable(const LExprPtr& phi, const LoopSatOptions& options) {
  Engine engine(phi, options);
  return engine.Run();
}

}  // namespace refloop

// ======================================================================
// Seeded generators.
// ======================================================================

// Downward-fragment generator: CoreXPath↓(∩) node expressions (child /
// child* axes only, ≈ included — the engine rewrites it to ∩).
class DownGen {
 public:
  explicit DownGen(uint64_t seed) : rng_(seed) {}

  NodePtr GenNode(int budget) {
    if (budget <= 1) {
      return rng_.NextBelow(4) == 0 ? True() : Label(RandLabel());
    }
    switch (rng_.NextBelow(12)) {
      case 0:
      case 1:
        return Not(GenNode(budget - 1));
      case 2:
        return And(GenNode(budget / 2), GenNode(budget - budget / 2));
      case 3:
        return Or(GenNode(budget / 2), GenNode(budget - budget / 2));
      case 4:
      case 5:
      case 6:
      case 7:
        return Some(GenPath(budget - 1));
      case 8:
      case 9:
        return PathEq(GenPath(budget / 2), GenPath(budget - budget / 2));
      default:
        return Label(RandLabel());
    }
  }

  PathPtr GenPath(int budget) {
    if (budget <= 1) return GenAtom();
    switch (rng_.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
        return Seq(GenPath(budget / 2), GenPath(budget - budget / 2));
      case 3:
        return Union(GenPath(budget / 2), GenPath(budget - budget / 2));
      case 4:
      case 5:
        return Filter(GenPath(budget / 2), GenNode(budget - budget / 2));
      case 6:
      case 7:
        return Intersect(GenPath(budget / 2), GenPath(budget - budget / 2));
      default:
        return GenAtom();
    }
  }

 private:
  PathPtr GenAtom() {
    switch (rng_.NextBelow(6)) {
      case 0:
      case 1:
        return Ax(Axis::kChild);
      case 2:
      case 3:
        return AxStar(Axis::kChild);
      case 4:
        return Self();
      default:
        return Filter(Self(), Label(RandLabel()));
    }
  }

  std::string RandLabel() {
    switch (rng_.NextBelow(3)) {
      case 0: return "a";
      case 1: return "b";
      default: return "c";
    }
  }

  TreeGenerator rng_;
};

// Full-axes generator for the loop fragment (same shape as the
// differential suite's ExprGen, ↓-biased).
class LoopGen {
 public:
  explicit LoopGen(uint64_t seed) : rng_(seed) {}

  NodePtr GenNode(int budget) {
    if (budget <= 1) {
      return rng_.NextBelow(4) == 0 ? True() : Label(RandLabel());
    }
    switch (rng_.NextBelow(10)) {
      case 0:
      case 1:
        return Not(GenNode(budget - 1));
      case 2:
        return And(GenNode(budget / 2), GenNode(budget - budget / 2));
      case 3:
        return Or(GenNode(budget / 2), GenNode(budget - budget / 2));
      case 4:
      case 5:
        return Some(GenPath(budget / 2));
      case 6:
        return PathEq(GenPath(budget / 2), GenPath(budget - budget / 2));
      default:
        return Label(RandLabel());
    }
  }

  PathPtr GenPath(int budget) {
    if (budget <= 1) return GenAtom();
    switch (rng_.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
        return Seq(GenPath(budget / 2), GenPath(budget - budget / 2));
      case 3:
        return Union(GenPath(budget / 2), GenPath(budget - budget / 2));
      case 4:
      case 5:
      case 6:
        // No ∩: ToLoopNormalForm covers CoreXPath(≈) only.
        return Filter(GenPath(budget / 2), GenNode(budget - budget / 2));
      default:
        return GenAtom();
    }
  }

 private:
  PathPtr GenAtom() {
    switch (rng_.NextBelow(6)) {
      case 0:
      case 1:
        return Ax(RandAxis());
      case 2:
      case 3:
        return AxStar(RandAxis());
      case 4:
        return Self();
      default:
        return Filter(Self(), Label(RandLabel()));
    }
  }

  Axis RandAxis() {
    switch (rng_.NextBelow(7)) {
      case 0:
      case 1:
      case 2:
        return Axis::kChild;
      case 3:
        return Axis::kParent;
      case 4:
        return Axis::kRight;
      default:
        return Axis::kLeft;
    }
  }

  std::string RandLabel() { return rng_.NextBelow(2) == 0 ? "a" : "b"; }

  TreeGenerator rng_;
};

// A random small EDTD over concrete labels {a, b, c}: 2–4 abstract types
// with random regular content models (recursion, and hence unrealizable
// types, allowed — both engines must agree on those too).
std::string RandomContent(TreeGenerator& rng, const std::vector<std::string>& names) {
  auto t = [&] { return names[rng.NextBelow(names.size())]; };
  switch (rng.NextBelow(8)) {
    case 0: return "epsilon";
    case 1: return t() + "?";
    case 2: return t() + "*";
    case 3: return "(" + t() + " | " + t() + ")*";
    case 4: return t() + ", " + t() + "?";
    case 5: return t() + "+";
    case 6: return "(" + t() + ", " + t() + ")?";
    default: return t() + "?, " + t() + "?";
  }
}

Edtd RandomEdtd(TreeGenerator& rng) {
  const int num_types = 2 + static_cast<int>(rng.NextBelow(3));
  const char* kConcrete[] = {"a", "b", "c"};
  std::vector<std::string> names;
  for (int i = 0; i < num_types; ++i) names.push_back("t" + std::to_string(i));
  std::ostringstream os;
  for (int i = 0; i < num_types; ++i) {
    os << names[i] << " -> " << kConcrete[rng.NextBelow(3)] << " := "
       << RandomContent(rng, names) << "\n";
  }
  Result<Edtd> r = Edtd::Parse(os.str());
  EXPECT_TRUE(r.ok()) << os.str() << ": " << r.error();
  return r.value();
}

// ======================================================================
// Cross-check suites.
// ======================================================================

// Every instance this file generates also goes through the solver facade
// twice — classifier fast paths on and off — and both runs must agree
// whenever both are decisive. Out-of-fragment cases (the majority here:
// the generators emit ∩ / ≈ / ¬ freely) classify, decline, and fall
// through to the same engine; in-fragment draws route to the PTIME
// procedures of src/xpc/classify/, whose verdicts the full pipeline must
// reproduce. Budgets are capped so starved full-pipeline runs skip rather
// than stall.
void CheckFacadeFastPathAgreement(const NodePtr& phi, const Edtd* edtd) {
  SolverOptions on;
  on.verify_witnesses = false;
  on.loop.max_items = 3000;
  on.loop.max_pool = 2000;
  SolverOptions off = on;
  off.fast_paths = false;
  SatResult fast = edtd != nullptr ? Solver(on).NodeSatisfiable(phi, *edtd)
                                   : Solver(on).NodeSatisfiable(phi);
  SatResult full = edtd != nullptr ? Solver(off).NodeSatisfiable(phi, *edtd)
                                   : Solver(off).NodeSatisfiable(phi);
  if (fast.status == SolveStatus::kResourceLimit ||
      full.status == SolveStatus::kResourceLimit) {
    return;
  }
  ASSERT_EQ(fast.status, full.status) << "facade fast_paths on (" << fast.engine
                                      << ") vs off (" << full.engine << ")";
}

// Asserts the production/reference equality contract for one downward
// case, plus serial/parallel bit-identity. `phi` is the original (pre-
// rewrite) formula for witness validation.
void CheckDownwardCase(const NodePtr& phi, const SatResult& got, const SatResult& ref,
                       const SatResult& par, const Edtd* edtd) {
  ASSERT_EQ(got.status, ref.status) << "worklist vs sweep reference";

  // Parallel runs promise full bit-identity with serial, limits included.
  ASSERT_EQ(par.status, got.status) << "parallel vs serial";
  ASSERT_EQ(par.explored_states, got.explored_states) << "parallel vs serial";
  ASSERT_EQ(par.witness.has_value(), got.witness.has_value());
  if (par.witness.has_value()) {
    ASSERT_EQ(TreeToText(*par.witness), TreeToText(*got.witness)) << "parallel vs serial";
  }

  if (got.status == SolveStatus::kResourceLimit) return;
  // The final summary table is the same closure set either way.
  ASSERT_EQ(got.explored_states, ref.explored_states) << "worklist vs sweep reference";

  if (got.status != SolveStatus::kSat) return;
  ASSERT_TRUE(got.witness.has_value());
  ASSERT_TRUE(ref.witness.has_value());
  // The canonical finish makes the witness a pure function of the summary
  // set, so even the order-scrambled sweep must reproduce it byte for byte.
  ASSERT_EQ(TreeToText(*got.witness), TreeToText(*ref.witness))
      << "worklist vs sweep reference";
  Evaluator ev(*got.witness);
  EXPECT_TRUE(ev.SatisfiedSomewhere(phi))
      << "claimed witness does not satisfy the formula: " << TreeToText(*got.witness);
  if (edtd != nullptr) {
    EXPECT_TRUE(Conforms(*got.witness, *edtd))
        << "witness does not conform to the EDTD: " << TreeToText(*got.witness);
  }
}

TEST(SatReference, DownwardFreeSchemaMatchesSweep) {
  const uint64_t base_seed = BaseSeed();
  const int cases = Cases(kDownwardFreeCases);
  std::printf("[sat-reference] downward/free: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  int sat = 0, unsat = 0, limit = 0;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    DownGen gen(seed);
    NodePtr phi = gen.GenNode(6);
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));

    DownwardSatOptions opts;
    SatResult got = DownwardSatisfiable(phi, opts);
    SatResult ref = refdown::Satisfiable(phi, opts);
    DownwardSatOptions popts;
    popts.sat_threads = 3;
    SatResult par = DownwardSatisfiable(phi, popts);

    CheckDownwardCase(phi, got, ref, par, nullptr);
    if (HasFatalFailure()) return;
    CheckFacadeFastPathAgreement(phi, nullptr);
    if (HasFatalFailure()) return;
    switch (got.status) {
      case SolveStatus::kSat: ++sat; break;
      case SolveStatus::kUnsat: ++unsat; break;
      case SolveStatus::kResourceLimit: ++limit; break;
    }
  }
  std::printf("[sat-reference] downward/free: %d sat, %d unsat, %d limit\n",
              sat, unsat, limit);
  // The generator must exercise both verdicts, or the cross-check is hollow.
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
}

TEST(SatReference, DownwardRandomEdtdsMatchSweep) {
  const uint64_t base_seed = BaseSeed() ^ 0xed7d0000ULL;
  const int cases = Cases(kDownwardEdtdCases);
  std::printf("[sat-reference] downward/edtd: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  int sat = 0, unsat = 0, limit = 0;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    TreeGenerator schema_rng(seed * 2 + 1);
    Edtd edtd = RandomEdtd(schema_rng);
    DownGen gen(seed);
    NodePtr phi = gen.GenNode(5);
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));

    DownwardSatOptions opts;
    SatResult got = DownwardSatisfiableWithEdtd(phi, edtd, opts);
    SatResult ref = refdown::SatisfiableWithEdtd(phi, edtd, opts);
    DownwardSatOptions popts;
    popts.sat_threads = 3;
    SatResult par = DownwardSatisfiableWithEdtd(phi, edtd, popts);

    CheckDownwardCase(phi, got, ref, par, &edtd);
    if (HasFatalFailure()) return;
    CheckFacadeFastPathAgreement(phi, &edtd);
    if (HasFatalFailure()) return;
    switch (got.status) {
      case SolveStatus::kSat: ++sat; break;
      case SolveStatus::kUnsat: ++unsat; break;
      case SolveStatus::kResourceLimit: ++limit; break;
    }
  }
  std::printf("[sat-reference] downward/edtd: %d sat, %d unsat, %d limit\n",
              sat, unsat, limit);
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
}

TEST(SatReference, LoopEngineMatchesMapTableReference) {
  const uint64_t base_seed = BaseSeed() ^ 0x100900000ULL;
  const int cases = Cases(kLoopCases);
  std::printf("[sat-reference] loop: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  int sat = 0, unsat = 0, limit = 0;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    LoopGen gen(seed);
    NodePtr phi = gen.GenNode(4);
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));
    LExprPtr e = ToLoopNormalForm(phi);
    ASSERT_NE(e, nullptr) << "generator produced a formula outside the loop fragment";

    // Tight caps keep the (deliberately slow) reference affordable and
    // exercise the limit path: the interned engine replays the reference's
    // add_item sequence exactly, so even truncated runs must agree on the
    // explored count.
    LoopSatOptions opts;
    opts.max_items = 3000;
    opts.max_pool = 2000;
    SatResult got = LoopSatisfiable(e, opts);
    SatResult ref = refloop::Satisfiable(e, opts);

    ASSERT_EQ(got.status, ref.status) << "interned vs map-table reference";
    ASSERT_EQ(got.explored_states, ref.explored_states)
        << "interned vs map-table reference";
    ASSERT_EQ(got.witness.has_value(), ref.witness.has_value());
    if (got.status == SolveStatus::kSat) {
      ASSERT_TRUE(got.witness.has_value());
      ASSERT_EQ(TreeToText(*got.witness), TreeToText(*ref.witness))
          << "interned vs map-table reference";
      Evaluator ev(*got.witness);
      EXPECT_TRUE(ev.SatisfiedSomewhere(phi))
          << "claimed witness does not satisfy the formula: " << TreeToText(*got.witness);
    }
    CheckFacadeFastPathAgreement(phi, nullptr);
    if (HasFatalFailure()) return;
    switch (got.status) {
      case SolveStatus::kSat: ++sat; break;
      case SolveStatus::kUnsat: ++unsat; break;
      case SolveStatus::kResourceLimit: ++limit; break;
    }
  }
  std::printf("[sat-reference] loop: %d sat, %d unsat, %d limit\n", sat, unsat, limit);
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
}

// Starved caps: truncated runs must agree too. The downward pair is the
// serial/parallel bit-identity claim (caps trip at the same merge step
// regardless of thread count); the loop pair is the add_item-sequence
// claim (both engines count the same items before tripping).
TEST(SatReference, DownwardLimitPathsAgreeSerialAndParallel) {
  const uint64_t base_seed = BaseSeed() ^ 0x11111ULL;
  int limit = 0;
  for (int i = 0; i < 30; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    DownGen gen(seed);
    NodePtr phi = gen.GenNode(6);
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));
    DownwardSatOptions opts;
    opts.max_summaries = 3;
    SatResult serial = DownwardSatisfiable(phi, opts);
    opts.sat_threads = 3;
    SatResult par = DownwardSatisfiable(phi, opts);
    ASSERT_EQ(par.status, serial.status);
    ASSERT_EQ(par.explored_states, serial.explored_states);
    ASSERT_EQ(par.witness.has_value(), serial.witness.has_value());
    if (par.witness.has_value()) {
      ASSERT_EQ(TreeToText(*par.witness), TreeToText(*serial.witness));
    }
    if (serial.status == SolveStatus::kResourceLimit) ++limit;
  }
  EXPECT_GT(limit, 0) << "cap of 3 summaries never tripped — starve harder";
}

// --- Data-oriented layout axis (PR 8) -----------------------------------
// The layout pass (per-query arenas, inline Bits, flat StateRel rows and
// open-addressing tables) claims bit-identity with the pre-PR layout it
// emulates under XPC_ARENA=0: same verdicts, same explored counts and
// byte-identical witnesses, engine by engine. 520 seeded cases across the
// downward (free and EDTD-backed) and loop families, each solved once per
// leg with the gate flipped in between.
TEST(SatReference, LayoutLegsAgreeAcrossEngines) {
  struct LayoutGuard {
    bool entry = ArenaEnabled();
    ~LayoutGuard() { SetArenaEnabled(entry); }
  } guard;
  const uint64_t base_seed = BaseSeed() ^ 0xa7e4a7e4ULL;
  const int cases = Cases(520);
  std::printf("[sat-reference] layout axis: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  int sat = 0, unsat = 0, limit = 0;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    std::optional<SatResult> legs[2];
    for (int leg = 0; leg < 2; ++leg) {
      SetArenaEnabled(leg == 0);
      switch (i % 3) {
        case 0: {
          DownGen gen(seed);
          NodePtr phi = gen.GenNode(6);
          DownwardSatOptions opts;
          legs[leg] = DownwardSatisfiable(phi, opts);
          break;
        }
        case 1: {
          TreeGenerator schema_rng(seed * 2 + 1);
          Edtd edtd = RandomEdtd(schema_rng);
          DownGen gen(seed);
          NodePtr phi = gen.GenNode(5);
          DownwardSatOptions opts;
          legs[leg] = DownwardSatisfiableWithEdtd(phi, edtd, opts);
          break;
        }
        case 2: {
          LoopGen gen(seed);
          NodePtr phi = gen.GenNode(4);
          LExprPtr e = ToLoopNormalForm(phi);
          ASSERT_NE(e, nullptr);
          LoopSatOptions opts;
          opts.max_items = 3000;
          opts.max_pool = 2000;
          legs[leg] = LoopSatisfiable(e, opts);
          break;
        }
      }
    }
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed));
    const SatResult& on = *legs[0];
    const SatResult& off = *legs[1];
    ASSERT_EQ(on.status, off.status) << "layout on vs XPC_ARENA=0";
    ASSERT_EQ(on.explored_states, off.explored_states) << "layout on vs XPC_ARENA=0";
    ASSERT_EQ(on.witness.has_value(), off.witness.has_value());
    if (on.witness.has_value()) {
      ASSERT_EQ(TreeToText(*on.witness), TreeToText(*off.witness))
          << "layout on vs XPC_ARENA=0";
    }
    switch (on.status) {
      case SolveStatus::kSat: ++sat; break;
      case SolveStatus::kUnsat: ++unsat; break;
      case SolveStatus::kResourceLimit: ++limit; break;
    }
  }
  std::printf("[sat-reference] layout axis: %d sat, %d unsat, %d limit\n", sat,
              unsat, limit);
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
}

TEST(SatReference, LoopLimitPathsAgree) {
  const uint64_t base_seed = BaseSeed() ^ 0x22222ULL;
  int limit = 0;
  for (int i = 0; i < 30; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    LoopGen gen(seed);
    NodePtr phi = gen.GenNode(4);
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));
    LExprPtr e = ToLoopNormalForm(phi);
    ASSERT_NE(e, nullptr);
    LoopSatOptions opts;
    opts.max_items = 15;
    opts.max_pool = 4;
    SatResult got = LoopSatisfiable(e, opts);
    SatResult ref = refloop::Satisfiable(e, opts);
    ASSERT_EQ(got.status, ref.status);
    ASSERT_EQ(got.explored_states, ref.explored_states);
    ASSERT_EQ(got.witness.has_value(), ref.witness.has_value());
    if (got.witness.has_value()) {
      ASSERT_EQ(TreeToText(*got.witness), TreeToText(*ref.witness));
    }
    if (got.status == SolveStatus::kResourceLimit) ++limit;
  }
  EXPECT_GT(limit, 0) << "cap of 15 items never tripped — starve harder";
}

}  // namespace
}  // namespace xpc
