// Differential tests for the automata substrate: the production algorithms
// (Hopcroft minimization, hash-interned subset construction, on-the-fly
// pair-BFS products) are cross-checked against straightforward reference
// implementations — Moore signature refinement and fully materialized n×m
// products — on hundreds of seeded Tabakov-Vardi random NFAs.

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <tuple>
#include <vector>

#include "xpc/automata/dfa.h"
#include "xpc/automata/nfa.h"
#include "xpc/automata/random_nfa.h"
#include "xpc/common/arena.h"

namespace xpc {
namespace {

// Moore partition refinement (signature maps), restricted to reachable
// states first — the pre-Hopcroft production algorithm, kept verbatim as a
// reference.
Dfa MooreMinimizeReference(const Dfa& dfa) {
  const int k = dfa.alphabet_size();
  std::vector<int> reach_id(dfa.num_states(), -1);
  std::vector<int> order;
  std::queue<int> q;
  reach_id[dfa.initial()] = 0;
  order.push_back(dfa.initial());
  q.push(dfa.initial());
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    for (int a = 0; a < k; ++a) {
      int t = dfa.next(s, a);
      if (reach_id[t] < 0) {
        reach_id[t] = static_cast<int>(order.size());
        order.push_back(t);
        q.push(t);
      }
    }
  }
  const int n = static_cast<int>(order.size());

  std::vector<int> part(n);
  for (int i = 0; i < n; ++i) part[i] = dfa.accepting(order[i]) ? 1 : 0;
  int num_parts = 2;
  while (true) {
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> new_part(n);
    for (int i = 0; i < n; ++i) {
      std::vector<int> sig;
      sig.reserve(k + 1);
      sig.push_back(part[i]);
      for (int a = 0; a < k; ++a) sig.push_back(part[reach_id[dfa.next(order[i], a)]]);
      auto [it, inserted] = sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
      new_part[i] = it->second;
      (void)inserted;
    }
    int new_num = static_cast<int>(sig_ids.size());
    part.swap(new_part);
    if (new_num == num_parts) break;
    num_parts = new_num;
  }

  Dfa out(k, num_parts);
  out.set_initial(part[0]);
  for (int i = 0; i < n; ++i) {
    int p = part[i];
    out.set_accepting(p, dfa.accepting(order[i]));
    for (int a = 0; a < k; ++a) out.set_next(p, a, part[reach_id[dfa.next(order[i], a)]]);
  }
  return out;
}

// Fully materialized n×m product — the pre-lazy production algorithm.
Dfa MaterializedProduct(const Dfa& a, const Dfa& b, bool intersect) {
  const int k = a.alphabet_size();
  const int nb = b.num_states();
  Dfa out(k, a.num_states() * nb);
  out.set_initial(a.initial() * nb + b.initial());
  for (int sa = 0; sa < a.num_states(); ++sa) {
    for (int sb = 0; sb < nb; ++sb) {
      int s = sa * nb + sb;
      bool acc = intersect ? (a.accepting(sa) && b.accepting(sb))
                           : (a.accepting(sa) || b.accepting(sb));
      out.set_accepting(s, acc);
      for (int x = 0; x < k; ++x) {
        out.set_next(s, x, a.next(sa, x) * nb + b.next(sb, x));
      }
    }
  }
  return out;
}

// Symmetric-difference emptiness via materialized products.
bool EquivalentReference(const Dfa& a, const Dfa& b) {
  return MaterializedProduct(a, b.Complement(), true).IsEmpty() &&
         MaterializedProduct(a.Complement(), b, true).IsEmpty();
}

// Length of a shortest accepted word of a (complete) DFA, -1 if L = ∅.
int DfaShortestAcceptLen(const Dfa& d) {
  std::vector<int> dist(d.num_states(), -1);
  std::queue<int> q;
  dist[d.initial()] = 0;
  q.push(d.initial());
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    if (d.accepting(s)) return dist[s];
    for (int a = 0; a < d.alphabet_size(); ++a) {
      int t = d.next(s, a);
      if (dist[t] < 0) {
        dist[t] = dist[s] + 1;
        q.push(t);
      }
    }
  }
  return -1;
}

TEST(AutomataReference, RandomizedCrossCheck) {
  // 520 seeded random NFAs in the Tabakov-Vardi hard region: every
  // production-path result is compared against the reference algorithms.
  constexpr int kNumNfas = 520;
  Dfa prev(2, 1);
  bool have_prev = false;
  for (int i = 0; i < kNumNfas; ++i) {
    const int n = 4 + (i % 7);
    Nfa nfa = RandomTabakovVardiNfa(n, 2, 1.25, 0.3, 7000 + i);
    Dfa d = Dfa::Determinize(nfa);

    // Hopcroft agrees with Moore: same (minimal) size, same language.
    Dfa m = d.Minimize();
    Dfa ref = MooreMinimizeReference(d);
    ASSERT_EQ(m.num_states(), ref.num_states()) << "nfa " << i;
    ASSERT_TRUE(EquivalentReference(m, d)) << "nfa " << i;
    ASSERT_TRUE(d.EquivalentTo(m)) << "nfa " << i;

    // ShortestWord is genuinely shortest (cross-checked on the DFA).
    auto [found, word] = nfa.ShortestWord();
    int want_len = DfaShortestAcceptLen(d);
    if (found) {
      ASSERT_EQ(static_cast<int>(word.size()), want_len) << "nfa " << i;
      ASSERT_TRUE(nfa.Accepts(word)) << "nfa " << i;
      ASSERT_TRUE(d.Accepts(word)) << "nfa " << i;
    } else {
      ASSERT_EQ(want_len, -1) << "nfa " << i;
    }

    if (have_prev) {
      // On-the-fly decisions agree with materialized products.
      ASSERT_EQ(Dfa::IsEmptyProduct(d, prev), MaterializedProduct(d, prev, true).IsEmpty())
          << "nfa " << i;
      ASSERT_EQ(d.EquivalentTo(prev), EquivalentReference(d, prev)) << "nfa " << i;
      // Lazy reachable-only products denote the same languages.
      ASSERT_TRUE(EquivalentReference(d.IntersectWith(prev), MaterializedProduct(d, prev, true)))
          << "nfa " << i;
      ASSERT_TRUE(EquivalentReference(d.UnionWith(prev), MaterializedProduct(d, prev, false)))
          << "nfa " << i;
      // Lazy products never exceed the materialized state count.
      ASSERT_LE(d.IntersectWith(prev).num_states(), d.num_states() * prev.num_states());
    }
    prev = d;
    have_prev = true;
  }
}

TEST(AutomataReference, EpsilonPathsCrossCheck) {
  // Thompson compositions are ε-rich: exercise the ε-closure memo, indexed
  // RemoveEpsilons, and the zero-weight edges of the 0-1 BFS.
  for (int i = 0; i < 60; ++i) {
    const int n = 3 + (i % 4);
    Nfa a = RandomTabakovVardiNfa(n, 2, 1.25, 0.3, 9000 + i);
    Nfa b = RandomTabakovVardiNfa(n, 2, 1.25, 0.3, 9500 + i);
    Nfa star = Nfa::StarOf(Nfa::ConcatOf(a, Nfa::OptionalOf(b)));
    Nfa noeps = star.RemoveEpsilons();
    Dfa d1 = Dfa::Determinize(star);
    Dfa d2 = Dfa::Determinize(noeps);
    ASSERT_TRUE(EquivalentReference(d1, d2)) << "pair " << i;
    ASSERT_TRUE(d1.EquivalentTo(d2)) << "pair " << i;
    // StarOf accepts ε, and only a true 0-1 BFS reports length 0 here.
    auto [found, word] = star.ShortestWord();
    ASSERT_TRUE(found) << "pair " << i;
    ASSERT_TRUE(word.empty()) << "pair " << i;
  }
}

// State-by-state, transition-by-transition equality — the bit-identity
// claim, not just language equivalence.
void ExpectSameDfa(const Dfa& a, const Dfa& b, int case_id) {
  ASSERT_EQ(a.num_states(), b.num_states()) << "nfa " << case_id;
  ASSERT_EQ(a.alphabet_size(), b.alphabet_size()) << "nfa " << case_id;
  ASSERT_EQ(a.initial(), b.initial()) << "nfa " << case_id;
  for (int s = 0; s < a.num_states(); ++s) {
    ASSERT_EQ(a.accepting(s), b.accepting(s)) << "nfa " << case_id << " state " << s;
    for (int x = 0; x < a.alphabet_size(); ++x) {
      ASSERT_EQ(a.next(s, x), b.next(s, x)) << "nfa " << case_id << " state " << s;
    }
  }
}

// Data-oriented layout axis (PR 8): the subset construction, minimization
// and product loops run over inline/arena Bits and flat interning tables
// with the layout on, and over the pre-PR per-object heap layout under
// XPC_ARENA=0. Both legs must produce bit-identical automata — the same
// worklist discovery order, hence the same state numbering — and automata
// built under different legs must interoperate.
TEST(AutomataReference, LayoutLegsProduceIdenticalAutomata) {
  struct LayoutGuard {
    bool entry = ArenaEnabled();
    ~LayoutGuard() { SetArenaEnabled(entry); }
  } guard;
  for (int i = 0; i < 80; ++i) {
    const int n = 4 + (i % 7);
    auto run = [&](bool on) {
      SetArenaEnabled(on);
      Nfa nfa = RandomTabakovVardiNfa(n, 2, 1.25, 0.3, 26000 + i);
      Dfa d = Dfa::Determinize(nfa);
      Dfa m = d.Minimize();
      auto [found, word] = nfa.ShortestWord();
      return std::make_tuple(std::move(d), std::move(m), found, word);
    };
    auto [d_on, m_on, found_on, word_on] = run(true);
    auto [d_off, m_off, found_off, word_off] = run(false);
    ExpectSameDfa(d_on, d_off, i);
    if (HasFatalFailure()) return;
    ExpectSameDfa(m_on, m_off, i);
    if (HasFatalFailure()) return;
    ASSERT_EQ(found_on, found_off) << "nfa " << i;
    ASSERT_EQ(word_on, word_off) << "nfa " << i;

    // Cross-vintage interop: a product of one leg's DFA with the other
    // leg's must still decide emptiness/equivalence identically.
    SetArenaEnabled(true);
    const bool empty_mixed = Dfa::IsEmptyProduct(d_on, m_off);
    ASSERT_TRUE(d_on.EquivalentTo(m_off)) << "nfa " << i;
    SetArenaEnabled(false);
    ASSERT_EQ(Dfa::IsEmptyProduct(d_off, m_on), empty_mixed) << "nfa " << i;
    ASSERT_TRUE(d_off.EquivalentTo(m_on)) << "nfa " << i;
  }
}

TEST(AutomataReference, IndexInvalidationOnMutation) {
  Nfa nfa(2, 2);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 0, 1);
  EXPECT_TRUE(nfa.IsEmpty());  // Builds the index with no accepting states.
  nfa.SetAccepting(1);         // Must invalidate the accepting mask.
  EXPECT_FALSE(nfa.IsEmpty());
  auto [found, word] = nfa.ShortestWord();
  ASSERT_TRUE(found);
  EXPECT_EQ(word, std::vector<int>({0}));
  int s = nfa.AddState();      // Must invalidate the CSR layout.
  nfa.AddTransition(0, 1, s);
  nfa.SetAccepting(s);
  EXPECT_TRUE(nfa.Accepts({1}));
  EXPECT_TRUE(nfa.Accepts({0}));
}

}  // namespace
}  // namespace xpc
