// Randomized equivalence battery for the dispatched SIMD kernels
// (DESIGN.md §2.10): every ISA leg reachable on this host must agree
// *bit-exactly* with the scalar reference — resulting words, boolean flags
// (changed / intersected / any-left), counts — across operand sizes that
// straddle the vector strides (64/128/192/256 bits and beyond) and the
// inline/heap representation boundary of `Bits`, on both `XPC_ARENA` legs.
//
// Runs in its own binary (`ctest -L simd`) so the leg latch can be
// re-pointed with `simd::Select()` without racing the main suite.

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "xpc/common/arena.h"
#include "xpc/common/bits.h"
#include "xpc/common/simd.h"
#include "xpc/pathauto/state_relation.h"

namespace xpc {
namespace {

// Every leg compiled into this binary that the host can actually run.
std::vector<const char*> ReachableLegs() {
  std::vector<const char*> legs = {"scalar"};
  for (const char* name : {"avx2", "neon"}) {
    if (simd::Available(name)) legs.push_back(name);
  }
  return legs;
}

// Word counts straddling the vector strides: 1 (inline), 2 (inline cap),
// 3 (first dispatched / first AVX2 tail), 4 (one full 256-bit vector),
// 5, 7, 8, 13, 16 (multi-vector with and without tails).
const uint32_t kWordCounts[] = {1, 2, 3, 4, 5, 7, 8, 13, 16};

std::vector<uint64_t> RandomWords(std::mt19937_64* rng, uint32_t n, int density) {
  std::vector<uint64_t> w(n);
  for (auto& x : w) {
    x = (*rng)();
    // Sparser operands exercise the none/intersects early-outs.
    for (int d = 0; d < density; ++d) x &= (*rng)();
  }
  return w;
}

// Restores the latched leg (and arena gate) after each test so suite order
// never leaks a forced leg into later tests. Both restore to the *ambient*
// setting — this binary also runs under CI's XPC_SIMD=scalar / XPC_ARENA=0
// passes, and must not quietly re-enable what those legs disabled.
class SimdKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ambient_leg_ = simd::ActiveName();
    ambient_arena_ = ArenaEnabled();
  }
  void TearDown() override {
    ASSERT_TRUE(simd::Select(ambient_leg_));
    SetArenaEnabled(ambient_arena_);
  }

 private:
  const char* ambient_leg_ = nullptr;
  bool ambient_arena_ = true;
};

// --- Raw kernel table equivalence -------------------------------------

TEST_F(SimdKernelTest, RawKernelsMatchScalarOnRandomOperands) {
  const simd::Kernels& ref = simd::Scalar();
  std::mt19937_64 rng(0x51D0A11ED);
  for (const char* leg : ReachableLegs()) {
    ASSERT_TRUE(simd::Select(leg)) << leg;
    const simd::Kernels& k = simd::Active();
    ASSERT_STREQ(k.name, leg);
    for (uint32_t n : kWordCounts) {
      for (int density = 0; density < 4; ++density) {
        for (int trial = 0; trial < 24; ++trial) {
          const std::vector<uint64_t> a = RandomWords(&rng, n, density);
          const std::vector<uint64_t> b = RandomWords(&rng, n, density);
          SCOPED_TRACE(std::string(leg) + " n=" + std::to_string(n) +
                       " density=" + std::to_string(density));

          // Pure predicates first (no mutation).
          EXPECT_EQ(k.intersects(a.data(), b.data(), n),
                    ref.intersects(a.data(), b.data(), n));
          EXPECT_EQ(k.subset_of(a.data(), b.data(), n),
                    ref.subset_of(a.data(), b.data(), n));
          EXPECT_EQ(k.equals(a.data(), b.data(), n),
                    ref.equals(a.data(), b.data(), n));
          EXPECT_TRUE(k.equals(a.data(), a.data(), n));
          EXPECT_EQ(k.none(a.data(), n), ref.none(a.data(), n));
          EXPECT_EQ(k.count(a.data(), n), ref.count(a.data(), n));

          // Mutating kernels: run the leg and the reference on separate
          // copies, demand identical words *and* identical flags.
          auto check = [&](auto&& call) {
            std::vector<uint64_t> got = a;
            std::vector<uint64_t> want = a;
            auto gf = call(k, got.data());
            auto wf = call(ref, want.data());
            EXPECT_EQ(gf, wf);
            EXPECT_EQ(got, want);
          };
          check([&](const simd::Kernels& kk, uint64_t* w) {
            return kk.union_with(w, b.data(), n);
          });
          check([&](const simd::Kernels& kk, uint64_t* w) {
            return kk.union_with_intersects(w, b.data(), n);
          });
          check([&](const simd::Kernels& kk, uint64_t* w) {
            kk.intersect_with(w, b.data(), n);
            return 0;
          });
          check([&](const simd::Kernels& kk, uint64_t* w) {
            kk.subtract_with(w, b.data(), n);
            return 0;
          });
          check([&](const simd::Kernels& kk, uint64_t* w) {
            return kk.subtract_with_any(w, b.data(), n);
          });
          check([&](const simd::Kernels& kk, uint64_t* w) {
            kk.or_accum(w, b.data(), n);
            return 0;
          });
        }
      }
    }
  }
}

TEST_F(SimdKernelTest, RawKernelFlagEdgeCases) {
  for (const char* leg : ReachableLegs()) {
    ASSERT_TRUE(simd::Select(leg)) << leg;
    const simd::Kernels& k = simd::Active();
    for (uint32_t n : kWordCounts) {
      SCOPED_TRACE(std::string(leg) + " n=" + std::to_string(n));
      std::vector<uint64_t> zero(n, 0);
      std::vector<uint64_t> ones(n, ~uint64_t{0});
      // Disjoint halves: overlap only through the union.
      std::vector<uint64_t> lo(n, 0x5555555555555555ULL);
      std::vector<uint64_t> hi(n, 0xAAAAAAAAAAAAAAAAULL);

      EXPECT_TRUE(k.none(zero.data(), n));
      EXPECT_FALSE(k.none(lo.data(), n));
      EXPECT_EQ(k.count(ones.data(), n), static_cast<int>(n) * 64);
      EXPECT_TRUE(k.subset_of(lo.data(), ones.data(), n));
      EXPECT_FALSE(k.subset_of(ones.data(), lo.data(), n));
      EXPECT_FALSE(k.intersects(lo.data(), hi.data(), n));

      // union_with: no-op union reports no change.
      std::vector<uint64_t> w = lo;
      EXPECT_FALSE(k.union_with(w.data(), zero.data(), n));
      EXPECT_FALSE(k.union_with(w.data(), lo.data(), n));
      EXPECT_TRUE(k.union_with(w.data(), hi.data(), n));
      EXPECT_EQ(w, ones);

      // union_with_intersects reports *pre*-union overlap.
      w = lo;
      EXPECT_FALSE(k.union_with_intersects(w.data(), hi.data(), n));
      EXPECT_EQ(w, ones);
      EXPECT_TRUE(k.union_with_intersects(w.data(), hi.data(), n));

      // subtract_with_any: survival flag.
      w = ones;
      EXPECT_TRUE(k.subtract_with_any(w.data(), hi.data(), n));
      EXPECT_EQ(w, lo);
      EXPECT_FALSE(k.subtract_with_any(w.data(), lo.data(), n));
      EXPECT_TRUE(k.none(w.data(), n));

      // Change confined to the last word only — tail handling.
      w = zero;
      std::vector<uint64_t> last(n, 0);
      last[n - 1] = uint64_t{1} << 63;
      EXPECT_TRUE(k.union_with(w.data(), last.data(), n));
      EXPECT_FALSE(k.union_with(w.data(), last.data(), n));
      EXPECT_EQ(k.count(w.data(), n), 1);
    }
  }
}

// --- Bits-level equivalence across legs and layout gates ---------------

// Bit sizes straddling word boundaries and the inline (≤128-bit) / heap
// boundary of `Bits`.
const int kBitSizes[] = {1, 63, 64, 65, 127, 128, 129, 191, 192, 193,
                         255, 256, 257, 448, 992, 1023};

Bits RandomBits(std::mt19937_64* rng, int size, int density) {
  Bits b(size);
  std::uniform_int_distribution<int> coin(0, density);
  for (int i = 0; i < size; ++i) {
    if (coin(*rng) == 0) b.Set(i);
  }
  return b;
}

TEST_F(SimdKernelTest, BitsOpsAgreeAcrossLegsAndLayouts) {
  struct Result {
    std::vector<uint64_t> uw, ui, iw, sw, sa;
    bool f_uw, f_ui, f_sa, intersects, subset, eq, none;
    int count;
    size_t hash;
    bool operator==(const Result&) const = default;
  };
  std::mt19937_64 rng(0xB175C0DE);
  for (int size : kBitSizes) {
    for (int density = 1; density <= 5; density += 2) {
      const Bits a0 = RandomBits(&rng, size, density);
      const Bits b0 = RandomBits(&rng, size, density);
      std::vector<Result> results;
      std::vector<std::string> tags;
      for (bool arena : {true, false}) {
        SetArenaEnabled(arena);
        // Rebuild under the latched layout so the representation (inline /
        // arena / heap block) matches the leg under test.
        Bits a(size), b(size);
        a0.ForEach([&](int i) { a.Set(i); });
        b0.ForEach([&](int i) { b.Set(i); });
        for (const char* leg : ReachableLegs()) {
          ASSERT_TRUE(simd::Select(leg)) << leg;
          Result r;
          auto words_of = [](const Bits& x) {
            return std::vector<uint64_t>(x.cwords(), x.cwords() + x.num_words());
          };
          Bits t = a;
          r.f_uw = t.UnionWith(b);
          r.uw = words_of(t);
          t = a;
          r.f_ui = t.UnionWithIntersects(b);
          r.ui = words_of(t);
          t = a;
          t.IntersectWith(b);
          r.iw = words_of(t);
          t = a;
          t.SubtractWith(b);
          r.sw = words_of(t);
          t = a;
          r.f_sa = t.SubtractWithAny(b);
          r.sa = words_of(t);
          r.intersects = a.Intersects(b);
          r.subset = a.SubsetOf(b);
          r.eq = (a == b);
          r.none = a.None();
          r.count = a.Count();
          r.hash = a.Hash();
          results.push_back(std::move(r));
          tags.push_back(std::string(arena ? "arena/" : "heap/") + leg);
        }
      }
      for (size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i], results[0])
            << "size=" << size << " density=" << density << ": " << tags[i]
            << " disagrees with " << tags[0];
      }
    }
  }
}

TEST_F(SimdKernelTest, StateRelComposeCloseAgreeAcrossLegs) {
  std::mt19937_64 rng(0xC0117051);
  for (int n : {7, 64, 65, 130, 200}) {
    std::uniform_int_distribution<int> st(0, n - 1);
    // A sparse random relation pair, rebuilt identically per leg.
    std::vector<std::pair<int, int>> ra, rb;
    for (int i = 0; i < 3 * n; ++i) {
      ra.emplace_back(st(rng), st(rng));
      rb.emplace_back(st(rng), st(rng));
    }
    std::vector<size_t> hashes;
    std::vector<bool> changed;
    for (const char* leg : ReachableLegs()) {
      ASSERT_TRUE(simd::Select(leg)) << leg;
      StateRel a(n), b(n);
      for (auto [i, j] : ra) a.Set(i, j);
      for (auto [i, j] : rb) b.Set(i, j);
      StateRel c = a.Compose(b);
      c.CloseReflexiveTransitive();
      StateRel u = a;
      changed.push_back(u.UnionWith(b));
      hashes.push_back(c.Hash() * 31 + u.Hash());
    }
    for (size_t i = 1; i < hashes.size(); ++i) {
      EXPECT_EQ(hashes[i], hashes[0]) << "n=" << n;
      EXPECT_EQ(changed[i], changed[0]) << "n=" << n;
    }
  }
}

// --- Dispatch plumbing -------------------------------------------------

TEST_F(SimdKernelTest, SelectAndAvailability) {
  EXPECT_TRUE(simd::Available("scalar"));
  EXPECT_FALSE(simd::Available("avx512"));
  EXPECT_FALSE(simd::Select("avx512"));
  ASSERT_TRUE(simd::Select("scalar"));
  EXPECT_STREQ(simd::ActiveName(), "scalar");
  // DetectedName ignores the latch and any XPC_SIMD override.
  EXPECT_TRUE(simd::Available(simd::DetectedName()));
#if defined(__x86_64__)
  EXPECT_FALSE(simd::Available("neon"));
#elif defined(__aarch64__)
  EXPECT_TRUE(simd::Available("neon"));
  EXPECT_FALSE(simd::Available("avx2"));
#endif
}

// Env-gate resolution must be observable and distinguish "unrecognized
// name" from "recognized leg this host cannot run" — both used to fall
// back to scalar silently. `internal::ActivateSlow()` re-reads the
// environment each call, so the test drives resolution directly; the
// fixture's TearDown restores the ambient leg.
TEST_F(SimdKernelTest, GateResolutionRecordsEnvOutcome) {
  const char* prev_env = std::getenv("XPC_SIMD");
  const std::string saved = prev_env != nullptr ? prev_env : "";
  const bool had_env = prev_env != nullptr;

  ::setenv("XPC_SIMD", "avx512-typo", 1);
  simd::internal::ActivateSlow();
  simd::SimdGateStatus status = simd::SimdGateState();
  EXPECT_TRUE(status.from_env);
  EXPECT_FALSE(status.recognized);
  EXPECT_FALSE(status.runnable);
  EXPECT_STREQ(status.resolved, "scalar");
  EXPECT_STREQ(simd::ActiveName(), "scalar");
  EXPECT_EQ(simd::LegIndex(status.resolved), 1);

  ::setenv("XPC_SIMD", "scalar", 1);
  simd::internal::ActivateSlow();
  status = simd::SimdGateState();
  EXPECT_TRUE(status.from_env);
  EXPECT_TRUE(status.recognized);
  EXPECT_TRUE(status.runnable);
  EXPECT_STREQ(status.resolved, "scalar");

  // A recognized leg the host cannot run: at most one of avx2/neon is ever
  // available, so probe the missing one.
  for (const char* leg : {"avx2", "neon"}) {
    if (simd::Available(leg)) continue;
    ::setenv("XPC_SIMD", leg, 1);
    simd::internal::ActivateSlow();
    status = simd::SimdGateState();
    EXPECT_TRUE(status.recognized) << leg;
    EXPECT_FALSE(status.runnable) << leg;
    EXPECT_STREQ(status.resolved, "scalar") << leg;
    break;
  }

  if (had_env) {
    ::setenv("XPC_SIMD", saved.c_str(), 1);
  } else {
    ::unsetenv("XPC_SIMD");
  }
  // TearDown re-selects the ambient leg; nothing else to restore.
}

// SimdGateState() is a pure observer: reading the gate must never clobber
// a programmatic Select() — the kernel battery re-points the latch between
// legs while telemetry snapshots may run concurrently.
TEST_F(SimdKernelTest, GateStateDoesNotClobberSelect) {
  ASSERT_TRUE(simd::Select("scalar"));
  (void)simd::SimdGateState();
  EXPECT_STREQ(simd::ActiveName(), "scalar");
}

TEST_F(SimdKernelTest, ArenaWordBlocksAreCacheLineAligned) {
  // The vector kernels rely on dispatched-width blocks (more than one
  // cache line of words) never splitting cache lines; interleave
  // unaligned byte allocations to stress the fixup.
  Arena arena;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 200; ++i) {
    arena.Alloc(1 + static_cast<size_t>(rng() % 40));
    uint64_t* w = arena.AllocWords(9 + static_cast<size_t>(rng() % 24));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(w) % Arena::kWordBlockAlign, 0u);
  }
}

}  // namespace
}  // namespace xpc
