#include <gtest/gtest.h>

#include "xpc/xpath/ast.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/fragment.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

PathPtr MustParsePath(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.ok() ? r.value() : nullptr;
}

NodePtr MustParseNode(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.ok() ? r.value() : nullptr;
}

TEST(Ast, Converse) {
  EXPECT_EQ(Converse(Axis::kChild), Axis::kParent);
  EXPECT_EQ(Converse(Axis::kParent), Axis::kChild);
  EXPECT_EQ(Converse(Axis::kRight), Axis::kLeft);
  EXPECT_EQ(Converse(Axis::kLeft), Axis::kRight);
}

TEST(Ast, EqualStructural) {
  auto a = Seq(Ax(Axis::kChild), Filter(AxStar(Axis::kChild), Label("p")));
  auto b = Seq(Ax(Axis::kChild), Filter(AxStar(Axis::kChild), Label("p")));
  auto c = Seq(Ax(Axis::kChild), Filter(AxStar(Axis::kChild), Label("q")));
  EXPECT_TRUE(Equal(a, b));
  EXPECT_FALSE(Equal(a, c));
}

TEST(Ast, NotCollapsesDoubleNegation) {
  auto p = Label("p");
  EXPECT_TRUE(Equal(Not(Not(p)), p));
}

TEST(Parser, PathRoundTrips) {
  const char* cases[] = {
      "down",
      "down*",
      "down/up",
      "down*[Image and not(<down[q]>)]",
      "down | up | .",
      "down & up*/down*",
      "down - down/down",
      "(down[a] | .[not(b)])*",
      "for $i in down* return .[is $i]/down",
      "up*/left+/down*",
  };
  for (const char* c : cases) {
    PathPtr p = MustParsePath(c);
    ASSERT_TRUE(p) << c;
    PathPtr again = MustParsePath(ToString(p));
    ASSERT_TRUE(again) << ToString(p);
    // Print → parse → print is a fixpoint (associativity of '/' may differ
    // between the original and the reparse, so compare printed forms).
    EXPECT_EQ(ToString(p), ToString(again)) << c;
  }
}

TEST(Parser, NodeRoundTrips) {
  const char* cases[] = {
      "p",
      "true",
      "false",
      "not(p and q) or <down>",
      "eq(down*, up*)",
      "loop(down/up)",
      "every(down*, p)",
      "<for $i in down* return .[is $i]>",
      "p and q and r or s",
  };
  for (const char* c : cases) {
    NodePtr n = MustParseNode(c);
    ASSERT_TRUE(n) << c;
    NodePtr again = MustParseNode(ToString(n));
    ASSERT_TRUE(again) << ToString(n);
    EXPECT_TRUE(Equal(n, again)) << c << " vs " << ToString(n);
  }
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParsePath("").ok());
  EXPECT_FALSE(ParsePath("down/").ok());
  EXPECT_FALSE(ParsePath("down down").ok());
  EXPECT_FALSE(ParsePath("label").ok());  // Labels are node expressions.
  EXPECT_FALSE(ParseNode("and p").ok());
  EXPECT_FALSE(ParseNode("<down").ok());
  EXPECT_FALSE(ParseNode("eq(down)").ok());
  EXPECT_FALSE(ParseNode("not").ok());
  EXPECT_FALSE(ParsePath("for i in down return down").ok());
}

TEST(Parser, AxisStarVsGeneralStar) {
  PathPtr p = MustParsePath("down*");
  EXPECT_EQ(p->kind, PathKind::kAxisStar);
  PathPtr q = MustParsePath("(down)*");
  EXPECT_EQ(q->kind, PathKind::kAxisStar);  // (down) is still an atomic axis.
  PathPtr r = MustParsePath("(down/up)*");
  EXPECT_EQ(r->kind, PathKind::kStar);
}

TEST(Parser, Precedence) {
  // '|' loosest, then '-', then '&', then '/'.
  PathPtr p = MustParsePath("down - up & left / right | .");
  ASSERT_EQ(p->kind, PathKind::kUnion);
  ASSERT_EQ(p->left->kind, PathKind::kComplement);
  ASSERT_EQ(p->left->right->kind, PathKind::kIntersect);
  ASSERT_EQ(p->left->right->right->kind, PathKind::kSeq);
}

TEST(Printer, PaperExample) {
  // ↓⁺[p ∧ ¬⟨↓[q]⟩] from Section 2.2.
  PathPtr p = Filter(AxPlus(Axis::kChild), And(Label("p"), Not(Some(Filter(Ax(Axis::kChild), Label("q"))))));
  EXPECT_EQ(ToString(p), "(down/down*)[p and not(<down[q]>)]");
}

TEST(Metrics, SizeCountsSyntaxNodes) {
  // down/down* = Seq(Ax, AxStar): 3 syntax nodes.
  EXPECT_EQ(Size(MustParsePath("down/down*")), 3);
  // .[p] = Filter(Self, p): 3.
  EXPECT_EQ(Size(MustParsePath(".[p]")), 3);
  EXPECT_EQ(Size(MustParseNode("p and not(q)")), 4);
  EXPECT_EQ(Size(MustParseNode("eq(down, up)")), 3);
}

TEST(Metrics, IntersectionDepth) {
  EXPECT_EQ(IntersectionDepth(MustParsePath("down/up")), 0);
  EXPECT_EQ(IntersectionDepth(MustParsePath("down & up")), 1);
  EXPECT_EQ(IntersectionDepth(MustParsePath("(down & up) & left")), 2);
  EXPECT_EQ(IntersectionDepth(MustParsePath("(down & up) / (left & right)")), 1);
  // Intersection inside a filter contributes to d() but not dd().
  PathPtr p = MustParsePath("down[<down & up>]");
  EXPECT_EQ(DirectIntersectionDepth(p), 0);
  EXPECT_EQ(IntersectionDepth(p), 1);
}

TEST(Metrics, LabelsAndVariables) {
  PathPtr p = MustParsePath("for $i in down*[a] return .[b and is $i]");
  EXPECT_EQ(Labels(p), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(Variables(p), (std::set<std::string>{"i"}));
  EXPECT_EQ(FreshLabel({"a", "b"}, "a"), "a_0");
  EXPECT_EQ(FreshLabel({"a", "b"}, "c"), "c");
}

TEST(Fragment, Detection) {
  Fragment f = DetectFragment(MustParsePath("down*[p]"));
  EXPECT_TRUE(f.IsDownward());
  EXPECT_TRUE(f.IsRegularFriendly());
  EXPECT_FALSE(f.uses_star);

  f = DetectFragment(MustParsePath("down & up"));
  EXPECT_TRUE(f.uses_intersect);
  EXPECT_TRUE(f.IsVertical());
  EXPECT_FALSE(f.IsDownward());

  f = DetectFragment(MustParseNode("eq(down, .)"));
  EXPECT_TRUE(f.uses_path_eq);
  EXPECT_TRUE(f.IsRegularFriendly());

  f = DetectFragment(MustParsePath("(down/down)*"));
  EXPECT_TRUE(f.uses_star);

  f = DetectFragment(MustParsePath("down - down"));
  EXPECT_TRUE(f.uses_complement);
  EXPECT_FALSE(f.IsRegularFriendly());

  f = DetectFragment(MustParsePath("for $i in down return .[is $i]"));
  EXPECT_TRUE(f.uses_for);

  f = DetectFragment(MustParsePath("down/right"));
  EXPECT_TRUE(f.IsForward());
}

TEST(Fragment, Names) {
  EXPECT_EQ(DetectFragment(MustParsePath("down")).Name(), "CoreXPath_{v}");
  EXPECT_EQ(DetectFragment(MustParsePath("down & (down/down)*")).Name(),
            "CoreXPath_{v}(*, cap)");
  EXPECT_EQ(DetectFragment(MustParsePath("down/up/left/right")).Name(), "CoreXPath");
}

TEST(Build, ConversePath) {
  PathPtr p = MustParsePath("down[p]/right*");
  PathPtr c = ConversePath(p);
  ASSERT_TRUE(c);
  // ConversePath builds the mirrored Seq right-nested, and the printer keeps
  // the parentheses so the string reparses to the same (right-nested) tree.
  EXPECT_EQ(ToString(c), "left*/(.[p]/up)");
  EXPECT_FALSE(ConversePath(MustParsePath("for $i in down return down")));
  // (α*)⁻ = (α⁻)*.
  EXPECT_EQ(ToString(ConversePath(MustParsePath("(down/down)*"))), "(up/up)*");
}

TEST(Build, EveryShorthand) {
  // every(α, φ) = ¬⟨α[¬φ]⟩.
  NodePtr n = Every(Ax(Axis::kChild), Label("p"));
  EXPECT_EQ(ToString(n), "not(<down[not(p)]>)");
}

}  // namespace
}  // namespace xpc
