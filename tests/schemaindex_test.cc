// Tests of the ahead-of-time per-EDTD SchemaIndex (schemaindex/): build
// determinism across thread counts, exactness of the precomputed relations
// against brute-force automata checks, registry bookkeeping, and — the
// contract the warm-schema fast paths rest on — bit-for-bit agreement of
// indexed and index-disabled engines on seeded random schemas.

#include "xpc/schemaindex/schema_index.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "xpc/automata/dfa.h"
#include "xpc/core/session.h"
#include "xpc/core/solver.h"
#include "xpc/edtd/encode.h"
#include "xpc/fuzz/generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

// Every test starts and ends with an enabled, empty registry so the suite is
// order- and shard-independent.
class SchemaIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaIndex::SetEnabled(true);
    SchemaIndex::ClearRegistry();
  }
  void TearDown() override {
    SchemaIndex::SetEnabled(true);
    SchemaIndex::ClearRegistry();
  }
};

Edtd BookEdtd() {
  return Edtd::Parse(R"(Book := Chapter+
Chapter := Section+
Section := (Section | Paragraph | Image)+
Paragraph := epsilon
Image := epsilon)")
      .value();
}

Edtd RandomEdtd(uint64_t seed) {
  FuzzGen gen(seed);
  EdtdGenOptions options;
  options.num_types = 3 + static_cast<int>(seed % 4);
  options.concrete_labels = {"a", "b", "c"};
  options.linear_content = seed % 2 == 0;
  return gen.GenEdtd(options);
}

// --- Determinism ---------------------------------------------------------

void ExpectSameReachability(const TypeReachability& x, const TypeReachability& y) {
  EXPECT_EQ(x.n, y.n);
  EXPECT_EQ(x.root, y.root);
  EXPECT_EQ(x.realizable, y.realizable);
  EXPECT_EQ(x.realize_round, y.realize_round);
  EXPECT_EQ(x.reachable, y.reachable);
  EXPECT_EQ(x.reach_parent, y.reach_parent);
  EXPECT_EQ(x.avail, y.avail);
  EXPECT_EQ(x.down, y.down);
  EXPECT_EQ(x.explored, y.explored);
}

void ExpectSameDfa(const Dfa& a, const Dfa& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.alphabet_size(), b.alphabet_size());
  EXPECT_EQ(a.initial(), b.initial());
  for (int s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.accepting(s), b.accepting(s));
    for (int c = 0; c < a.alphabet_size(); ++c) EXPECT_EQ(a.next(s, c), b.next(s, c));
  }
}

void ExpectIndexesIdentical(const SchemaIndex& x, const SchemaIndex& y) {
  EXPECT_EQ(x.fingerprint(), y.fingerprint());
  ASSERT_EQ(x.num_types(), y.num_types());
  ExpectSameReachability(x.reachability(), y.reachability());

  EXPECT_EQ(x.schema_class().duplicate_free, y.schema_class().duplicate_free);
  EXPECT_EQ(x.schema_class().disjunction_free, y.schema_class().disjunction_free);
  EXPECT_EQ(x.schema_class().covering, y.schema_class().covering);

  EXPECT_EQ(x.state_offsets(), y.state_offsets());
  EXPECT_EQ(x.total_content_states(), y.total_content_states());

  for (int t = 0; t < x.num_types(); ++t) {
    const Nfa& na = x.EpsilonFreeContentNfa(t);
    const Nfa& nb = y.EpsilonFreeContentNfa(t);
    ASSERT_EQ(na.num_states(), nb.num_states());
    EXPECT_EQ(na.initial(), nb.initial());
    EXPECT_EQ(na.accepting(), nb.accepting());
    ASSERT_EQ(na.transitions().size(), nb.transitions().size());
    for (size_t i = 0; i < na.transitions().size(); ++i) {
      EXPECT_EQ(na.transitions()[i].from, nb.transitions()[i].from);
      EXPECT_EQ(na.transitions()[i].symbol, nb.transitions()[i].symbol);
      EXPECT_EQ(na.transitions()[i].to, nb.transitions()[i].to);
    }

    ExpectSameDfa(x.MinimalContentDfa(t), y.MinimalContentDfa(t));

    EXPECT_EQ(x.siblings(t).first, y.siblings(t).first);
    EXPECT_EQ(x.siblings(t).last, y.siblings(t).last);
    EXPECT_EQ(x.siblings(t).follow, y.siblings(t).follow);
  }

  EXPECT_EQ(x.dependents(), y.dependents());

  ASSERT_EQ(x.encode_skeleton().conjuncts.size(), y.encode_skeleton().conjuncts.size());
  for (size_t i = 0; i < x.encode_skeleton().conjuncts.size(); ++i) {
    EXPECT_EQ(ToString(x.encode_skeleton().conjuncts[i]),
              ToString(y.encode_skeleton().conjuncts[i]));
  }
  ASSERT_EQ(x.encode_skeleton().subst.size(), y.encode_skeleton().subst.size());
  for (const auto& [label, node] : x.encode_skeleton().subst) {
    auto it = y.encode_skeleton().subst.find(label);
    ASSERT_NE(it, y.encode_skeleton().subst.end()) << label;
    EXPECT_EQ(ToString(node), ToString(it->second));
  }
}

TEST_F(SchemaIndexTest, BuildIsBitIdenticalAcrossThreadCounts) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Edtd edtd = seed == 1 ? BookEdtd() : RandomEdtd(seed);
    auto serial = SchemaIndex::Build(edtd, {.build_threads = 1});
    auto two = SchemaIndex::Build(edtd, {.build_threads = 2});
    auto eight = SchemaIndex::Build(edtd, {.build_threads = 8});
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectIndexesIdentical(*serial, *two);
    ExpectIndexesIdentical(*serial, *eight);
  }
}

TEST_F(SchemaIndexTest, ReachabilityMatchesEdtdPredicates) {
  // A covering schema has every type realizable and reachable; the index's
  // closure and the Edtd's own cached predicate must agree.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Edtd edtd = RandomEdtd(seed);
    auto index = SchemaIndex::Build(edtd);
    const TypeReachability& r = index->reachability();
    bool all_used = true;
    for (int t = 0; t < r.n; ++t) {
      all_used = all_used && r.realizable.Get(t) && (r.reachable.Get(t) || t == r.root);
    }
    EXPECT_EQ(edtd.IsCovering(), all_used && r.root >= 0 && r.realizable.Get(r.root))
        << "seed " << seed;
    EXPECT_EQ(index->schema_class().covering, edtd.IsCovering());
  }
}

// --- Sibling relations vs. brute force -----------------------------------

// Pattern DFAs over the abstract alphabet, restricted to realizable
// symbols: all words in R*, optionally required to start with / end with /
// contain a given symbol or factor.
Dfa StartsWith(int alphabet, int a, const Bits& realizable) {
  Nfa p(alphabet, 2);
  p.SetInitial(0);
  p.AddTransition(0, a, 1);
  realizable.ForEach([&](int r) { p.AddTransition(1, r, 1); });
  p.SetAccepting(1);
  return Dfa::Determinize(p);
}

Dfa EndsWith(int alphabet, int a, const Bits& realizable) {
  Nfa p(alphabet, 2);
  p.SetInitial(0);
  realizable.ForEach([&](int r) { p.AddTransition(0, r, 0); });
  p.AddTransition(0, a, 1);
  p.SetAccepting(1);
  return Dfa::Determinize(p);
}

Dfa ContainsFactor(int alphabet, int a, int b, const Bits& realizable) {
  Nfa p(alphabet, 3);
  p.SetInitial(0);
  realizable.ForEach([&](int r) {
    p.AddTransition(0, r, 0);
    p.AddTransition(2, r, 2);
  });
  p.AddTransition(0, a, 1);
  p.AddTransition(1, b, 2);
  p.SetAccepting(2);
  return Dfa::Determinize(p);
}

// L(P(t)) restricted to words over realizable symbols only.
Dfa RealizableContent(const Edtd& edtd, int t, const Bits& realizable) {
  const Nfa& content = edtd.ContentNfa(t);
  Nfa all(content.alphabet_size(), 1);
  all.SetInitial(0);
  all.SetAccepting(0);
  realizable.ForEach([&](int r) { all.AddTransition(0, r, 0); });
  return Dfa::Determinize(content).IntersectWith(Dfa::Determinize(all));
}

TEST_F(SchemaIndexTest, SiblingRelationsMatchProductAutomata) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Edtd edtd = seed == 1 ? BookEdtd() : RandomEdtd(seed);
    auto index = SchemaIndex::Build(edtd);
    const Bits& realizable = index->reachability().realizable;
    const int n = index->num_types();
    for (int t = 0; t < n; ++t) {
      Dfa content = RealizableContent(edtd, t, realizable);
      const SchemaIndex::SiblingRelations& s = index->siblings(t);
      for (int a = 0; a < n; ++a) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " type " + std::to_string(t) +
                     " sym " + std::to_string(a));
        EXPECT_EQ(s.first.Get(a),
                  !Dfa::IsEmptyProduct(content, StartsWith(n, a, realizable)));
        EXPECT_EQ(s.last.Get(a),
                  !Dfa::IsEmptyProduct(content, EndsWith(n, a, realizable)));
        for (int b = 0; b < n; ++b) {
          EXPECT_EQ(s.follow[a].Get(b),
                    !Dfa::IsEmptyProduct(content, ContainsFactor(n, a, b, realizable)))
              << "follow " << a << " -> " << b;
        }
      }
    }
  }
}

TEST_F(SchemaIndexTest, MinimalContentDfasAcceptTheContentLanguage) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Edtd edtd = seed == 1 ? BookEdtd() : RandomEdtd(seed);
    auto index = SchemaIndex::Build(edtd);
    for (int t = 0; t < index->num_types(); ++t) {
      const Dfa& minimal = index->MinimalContentDfa(t);
      Dfa reference = Dfa::Determinize(edtd.ContentNfa(t));
      EXPECT_TRUE(minimal.EquivalentTo(reference)) << "seed " << seed << " type " << t;
      EXPECT_LE(minimal.num_states(), reference.num_states());
    }
  }
}

// --- Registry ------------------------------------------------------------

TEST_F(SchemaIndexTest, RegistryCountsHitsAndColdMisses) {
  Stats stats;
  ScopedStatsSink sink(&stats);
  Edtd book = BookEdtd();

  EXPECT_EQ(SchemaIndex::Lookup(book), nullptr);  // Cold.
  auto built = SchemaIndex::Acquire(book);        // Cold; builds + registers.
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(SchemaIndex::RegistrySize(), 1u);

  auto again = SchemaIndex::Acquire(book);  // Hit: the registered instance.
  EXPECT_EQ(again.get(), built.get());
  auto looked = SchemaIndex::Lookup(book);  // Hit.
  EXPECT_EQ(looked.get(), built.get());

  StatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.value(Metric::kSchemaIndexColdMisses), 2);
  EXPECT_EQ(s.value(Metric::kSchemaIndexHits), 2);
  EXPECT_GT(s.value(Metric::kSchemaIndexBuild), -1);  // Timer recorded.
  EXPECT_EQ(s.timer_calls(Metric::kSchemaIndexBuild), 1);

  SchemaIndex::ClearRegistry();
  EXPECT_EQ(SchemaIndex::RegistrySize(), 0u);
  EXPECT_EQ(SchemaIndex::Lookup(book), nullptr);
}

TEST_F(SchemaIndexTest, DisabledLayerServesNothing) {
  Edtd book = BookEdtd();
  SchemaIndex::Acquire(book);
  ASSERT_EQ(SchemaIndex::RegistrySize(), 1u);
  SchemaIndex::SetEnabled(false);
  EXPECT_EQ(SchemaIndex::Lookup(book), nullptr);
  EXPECT_EQ(SchemaIndex::Acquire(book), nullptr);
  SchemaIndex::SetEnabled(true);
  EXPECT_NE(SchemaIndex::Lookup(book), nullptr);
}

TEST_F(SchemaIndexTest, FingerprintIsStableAcrossCopies) {
  Edtd book = BookEdtd();
  Edtd copy = book;
  EXPECT_EQ(SchemaIndex::FingerprintEdtd(book), SchemaIndex::FingerprintEdtd(copy));
  Edtd other = RandomEdtd(7);
  EXPECT_NE(SchemaIndex::FingerprintEdtd(book), SchemaIndex::FingerprintEdtd(other));
}

// --- Indexed vs. index-disabled engines ----------------------------------

std::string WitnessText(const SatResult& r) {
  return r.witness.has_value() ? TreeToText(*r.witness) : std::string("<none>");
}

// The load-bearing differential: on seeded random EDTDs and in-fragment
// random queries, the indexed and index-disabled solves must agree on
// status, explored-state count, engine stamp, and the witness tree itself.
TEST_F(SchemaIndexTest, IndexedAndDisabledEnginesAgreeOnRandomEdtds) {
  // Starved resource limits keep the occasional out-of-fast-path case (which
  // lands on the full loop pipeline over the Prop. 6 encoding) cheap; the
  // verdict under a cap is still deterministic, so the comparison stands.
  SolverOptions options;
  options.loop.max_items = 2000;
  options.loop.max_pool = 500;
  options.downward.max_summaries = 10000;

  // The sanitizer CI legs (TSan especially) shrink the battery via
  // XPC_SI_SEEDS: each extra seed adds coverage, not new code paths, and 25
  // seeds of loop-pipeline fallbacks under TSan would flirt with the ctest
  // timeout.
  uint64_t num_seeds = 25;
  if (const char* env = std::getenv("XPC_SI_SEEDS")) {
    // Unset or non-positive (CI exports "" on non-TSan legs) keeps the full
    // battery.
    if (long long n = std::atoll(env); n > 0) num_seeds = static_cast<uint64_t>(n);
  }
  for (uint64_t seed = 1; seed <= num_seeds; ++seed) {
    FuzzGen gen(seed * 977);
    Edtd edtd = RandomEdtd(seed);

    std::vector<NodePtr> queries;
    ExprGenOptions vertical = ExprGenOptions::VerticalConjunctive();
    vertical.max_ops = 6;
    ExprGenOptions downward = ExprGenOptions::DownwardIntersect();
    downward.max_ops = 5;
    for (int i = 0; i < 2; ++i) {
      queries.push_back(gen.GenNode(vertical));
      queries.push_back(gen.GenNode(downward));
    }

    for (const NodePtr& phi : queries) {
      SchemaIndex::SetEnabled(true);
      SchemaIndex::ClearRegistry();
      SchemaIndex::Acquire(edtd);
      SatResult warm = Solver(options).NodeSatisfiable(phi, edtd);

      SchemaIndex::SetEnabled(false);
      SatResult cold = Solver(options).NodeSatisfiable(phi, edtd);
      SchemaIndex::SetEnabled(true);

      SCOPED_TRACE("seed " + std::to_string(seed) + " query " + ToString(phi));
      EXPECT_EQ(warm.status, cold.status);
      EXPECT_EQ(warm.engine, cold.engine);
      EXPECT_EQ(warm.explored_states, cold.explored_states);
      EXPECT_EQ(WitnessText(warm), WitnessText(cold));
    }
  }
}

TEST_F(SchemaIndexTest, EncodeSkeletonMatchesColdEncoding) {
  // The Prop. 6 encoding must be structurally identical whether composed
  // from the pre-saturated skeleton or derived from scratch.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Edtd edtd = seed == 1 ? BookEdtd() : RandomEdtd(seed);
    FuzzGen gen(seed * 31);
    NodePtr phi = gen.GenNode(ExprGenOptions::VerticalConjunctive());

    SchemaIndex::SetEnabled(false);
    std::string cold = ToString(EncodeEdtdSatisfiability(phi, edtd));
    SchemaIndex::SetEnabled(true);
    SchemaIndex::ClearRegistry();
    SchemaIndex::Acquire(edtd);
    std::string warm = ToString(EncodeEdtdSatisfiability(phi, edtd));
    EXPECT_EQ(warm, cold) << "seed " << seed;
  }
}

// --- Session integration -------------------------------------------------

TEST_F(SchemaIndexTest, SessionAttachBuildsIndexAndServesMinimizedDfas) {
  SessionOptions options;
  options.schema_index.build_threads = 2;
  Session session(options);
  Edtd book = BookEdtd();
  session.SetEdtd(book);
  EXPECT_EQ(SchemaIndex::RegistrySize(), 1u);

  std::shared_ptr<const Dfa> dfa = session.ContentModelDfa("Book");
  ASSERT_NE(dfa, nullptr);
  // Chapter+ — accepts one or more Chapters, nothing else.
  int chapter = book.TypeIndex("Chapter");
  int image = book.TypeIndex("Image");
  EXPECT_TRUE(dfa->Accepts({chapter}));
  EXPECT_TRUE(dfa->Accepts({chapter, chapter}));
  EXPECT_FALSE(dfa->Accepts({}));
  EXPECT_FALSE(dfa->Accepts({image}));

  // The served DFA is the index's minimized one (by pointer).
  auto index = SchemaIndex::Lookup(book);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(dfa.get(), &index->MinimalContentDfa(book.TypeIndex("Book")));

  // Repeat lookups hit the session cache with pointer identity.
  EXPECT_EQ(session.ContentModelDfa("Book").get(), dfa.get());
  SessionStats s = session.stats();
  EXPECT_EQ(s.dfa.misses, 1);
  EXPECT_EQ(s.dfa.hits, 1);
}

TEST_F(SchemaIndexTest, TwoSessionsShareOneRegistryEntry) {
  Stats stats;
  ScopedStatsSink sink(&stats);
  Edtd book = BookEdtd();
  Session first;
  first.SetEdtd(book);
  Session second;
  second.SetEdtd(book);
  EXPECT_EQ(SchemaIndex::RegistrySize(), 1u);
  StatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.value(Metric::kSchemaIndexColdMisses), 1);
  EXPECT_GE(s.value(Metric::kSchemaIndexHits), 1);
}

TEST_F(SchemaIndexTest, SessionVerdictsUnchangedByIndexLayer) {
  // End-to-end: the same queries through a Session with the layer on and
  // off produce identical verdicts.
  Edtd book = BookEdtd();
  FuzzGen gen(4242);
  std::vector<NodePtr> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(gen.GenNode(ExprGenOptions::VerticalConjunctive()));

  std::vector<SolveStatus> with_index;
  {
    Session session;
    session.SetEdtd(book);
    for (const NodePtr& phi : queries) with_index.push_back(session.NodeSatisfiable(phi).status);
  }
  SchemaIndex::SetEnabled(false);
  SchemaIndex::ClearRegistry();
  std::vector<SolveStatus> without_index;
  {
    Session session;
    session.SetEdtd(book);
    for (const NodePtr& phi : queries) without_index.push_back(session.NodeSatisfiable(phi).status);
  }
  SchemaIndex::SetEnabled(true);
  EXPECT_EQ(with_index, without_index);
}

}  // namespace
}  // namespace xpc
