#include "xpc/eval/evaluator.h"

#include <gtest/gtest.h>

#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/parser.h"

namespace xpc {
namespace {

XmlTree MustTree(const std::string& s) {
  auto r = ParseTree(s);
  EXPECT_TRUE(r.ok()) << r.error();
  return r.value();
}

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

TEST(Relation, BasicAlgebra) {
  XmlTree t = MustTree("r(a,b(c))");
  Relation child = Relation::OfAxis(t, Axis::kChild);
  EXPECT_TRUE(child.Contains(0, 1));
  EXPECT_TRUE(child.Contains(0, 2));
  EXPECT_TRUE(child.Contains(2, 3));
  EXPECT_EQ(child.Count(), 3);
  EXPECT_TRUE(child.Transpose().Contains(1, 0));

  Relation star = child.ReflexiveTransitiveClosure();
  EXPECT_TRUE(star.Contains(0, 0));
  EXPECT_TRUE(star.Contains(0, 3));
  EXPECT_FALSE(star.Contains(1, 3));

  Relation two = child.Compose(child);
  EXPECT_TRUE(two.Contains(0, 3));
  EXPECT_EQ(two.Count(), 1);
}

TEST(Evaluator, AxesMatchStructure) {
  XmlTree t = MustTree("r(a,b(c,d))");
  Evaluator ev(t);
  // r=0, a=1, b=2, c=3, d=4.
  EXPECT_TRUE(ev.EvalPath(P("right")).Contains(1, 2));
  EXPECT_TRUE(ev.EvalPath(P("left")).Contains(4, 3));
  EXPECT_TRUE(ev.EvalPath(P("up")).Contains(3, 2));
  EXPECT_TRUE(ev.EvalPath(P("down*")).Contains(0, 4));
  EXPECT_EQ(ev.EvalPath(P(".")).Count(), 5);
}

TEST(Evaluator, FilterAndSome) {
  XmlTree t = MustTree("r(p(q),p)");
  Evaluator ev(t);
  // Nodes: r=0, p=1, q=2, p=3.
  // ↓⁺[p ∧ ¬⟨↓[q]⟩]: descendants labeled p without a q child → node 3.
  Relation rel = ev.EvalPath(P("down+[p and not(<down[q]>)]"));
  EXPECT_FALSE(rel.Contains(0, 1));
  EXPECT_TRUE(rel.Contains(0, 3));
  EXPECT_EQ(rel.Count(), 1);
}

TEST(Evaluator, BooleanSemantics) {
  XmlTree t = MustTree("r(a,b)");
  Evaluator ev(t);
  EXPECT_EQ(ev.EvalNode(N("true")).Count(), 3);
  EXPECT_EQ(ev.EvalNode(N("false")).Count(), 0);
  EXPECT_EQ(ev.EvalNode(N("a or b")).Count(), 2);
  EXPECT_EQ(ev.EvalNode(N("not(a)")).Count(), 2);
  EXPECT_EQ(ev.EvalNode(N("a and b")).Count(), 0);
  EXPECT_EQ(ev.EvalNode(N("<down>")).ToVector(), (std::vector<NodeId>{0}));
}

TEST(Evaluator, PathEqualityExistential) {
  // ⟦α ≈ β⟧ = {n | ∃m. (n,m) ∈ ⟦α⟧ ∩ ⟦β⟧}.
  XmlTree t = MustTree("r(a,a(b))");
  Evaluator ev(t);
  // At node r: down[a] and down[<down>] intersect at node 2.
  NodeSet s = ev.EvalNode(N("eq(down[a], down[<down>])"));
  EXPECT_TRUE(s.Contains(0));
  EXPECT_EQ(s.Count(), 1);
  // loop(α) = α ≈ . is true where α self-loops.
  EXPECT_EQ(ev.EvalNode(N("loop(down/up)")).ToVector(), (std::vector<NodeId>{0, 2}));
}

TEST(Evaluator, IntersectionAndComplement) {
  XmlTree t = MustTree("r(a(b),a)");
  Evaluator ev(t);
  // following-images style: ⟦down* ∩ down/down⟧.
  Relation r1 = ev.EvalPath(P("down* & down/down"));
  EXPECT_EQ(r1.Count(), 1);
  EXPECT_TRUE(r1.Contains(0, 2));
  // α − β.
  Relation r2 = ev.EvalPath(P("down+ - down"));
  EXPECT_EQ(r2.Count(), 1);  // Only (0, b) at depth 2.
  EXPECT_TRUE(r2.Contains(0, 2));
  // ∩ via −: α∩β = α − (α − β).
  Relation r3 = ev.EvalPath(P("down* - (down* - down/down)"));
  EXPECT_TRUE(r3 == r1);
}

TEST(Evaluator, GeneralTransitiveClosure) {
  // (↓[a])* walks down through a-labeled nodes only.
  XmlTree t = MustTree("a(a(b(a)),a)");
  Evaluator ev(t);
  Relation r = ev.EvalPath(P("(down[a])*"));
  EXPECT_TRUE(r.Contains(0, 1));
  EXPECT_TRUE(r.Contains(0, 4));
  EXPECT_FALSE(r.Contains(0, 2));  // b node blocks.
  EXPECT_FALSE(r.Contains(0, 3));  // a below b unreachable through a-chain.
  EXPECT_TRUE(r.Contains(2, 3));
}

TEST(Evaluator, ForLoopBasic) {
  // for $i in α return β[. is $i] ≡ α ∩ β (Section 2.2).
  XmlTree t = MustTree("r(a(b),a)");
  Evaluator ev(t);
  Relation lhs = ev.EvalPath(P("for $i in down* return (down/down)[is $i]"));
  Relation rhs = ev.EvalPath(P("down* & down/down"));
  EXPECT_TRUE(lhs == rhs);
}

TEST(Evaluator, ForLoopComplementEncoding) {
  // Theorem 31: α − β ≡ for $i in α return .[¬⟨β[. is $i]⟩]/↓*[. is $i]
  // for downward α, β.
  XmlTree t = MustTree("r(a(b,c),a)");
  Evaluator ev(t);
  const std::string alpha = "down+";
  const std::string beta = "down";
  Relation direct = ev.EvalPath(P(alpha + " - " + beta));
  Relation encoded = ev.EvalPath(
      P("for $i in " + alpha + " return .[not(<" + beta + "[is $i]>)]/down*[is $i]"));
  EXPECT_TRUE(direct == encoded);
}

TEST(Evaluator, MultiLabelTrees) {
  XmlTree t = MustTree("r(a+x,b+x)");
  Evaluator ev(t);
  EXPECT_EQ(ev.EvalNode(N("x")).Count(), 2);
  EXPECT_EQ(ev.EvalNode(N("a and x")).Count(), 1);
}

TEST(Evaluator, PaperBookExample) {
  // The Section 2.2 example EDTD instance: first image of each chapter via ≈.
  XmlTree t = MustTree(
      "Book(Chapter(Section(Paragraph,Image,Image)),"
      "Chapter(Section(Section(Image),Paragraph)))");
  Evaluator ev(t);
  // following ≡ up*/right+/down*; preceding ≡ up*/left+/down*.
  const std::string preceding = "up*/(left/left*)/down*";
  NodePtr first_image_filter = N(
      "Image and not(eq(" + preceding + "[Image], (up/up*)[Chapter]/(down/down*)[Image]))");
  Relation r = ev.EvalPath(Filter(AxStar(Axis::kChild), first_image_filter));
  // Images: nodes 4,5 in chapter 1; node 9 in chapter 2 — firsts are 4 and 9.
  auto from_root = r.ToPairs();
  std::vector<NodeId> selected;
  for (auto [src, dst] : from_root) {
    if (src == 0) selected.push_back(dst);
  }
  EXPECT_EQ(selected, (std::vector<NodeId>{4, 9}));
}

TEST(Evaluator, ContainmentOnTree) {
  XmlTree t = MustTree("r(a(b),c)");
  Evaluator ev(t);
  EXPECT_TRUE(ev.ContainedIn(P("down"), P("down*")));
  EXPECT_FALSE(ev.ContainedIn(P("down*"), P("down")));
}

// Differential test: ⟨α⟩ ≡ loop(α/up*/down*) (Section 3.1, step (2)).
TEST(Evaluator, SomeAsLoopProperty) {
  TreeGenerator gen(11);
  const char* alphas[] = {"down[a]", "right/down", "up*[b]/down", "left"};
  for (int i = 0; i < 40; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(12));
    opt.alphabet = {"a", "b"};
    XmlTree t = gen.Generate(opt);
    Evaluator ev(t);
    for (const char* alpha : alphas) {
      NodeSet lhs = ev.EvalNode(N(std::string("<") + alpha + ">"));
      NodeSet rhs = ev.EvalNode(N(std::string("loop((") + alpha + ")/up*/down*)"));
      EXPECT_TRUE(lhs == rhs) << alpha << " on " << TreeToText(t);
    }
  }
}

}  // namespace
}  // namespace xpc
