#include <gtest/gtest.h>

#include "xpc/eval/evaluator.h"
#include "xpc/lowerbounds/atm.h"
#include "xpc/lowerbounds/atm_encodings.h"
#include "xpc/lowerbounds/families.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/fragment.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

TEST(Atm, SimulatorEvenOnes) {
  Atm m = AtmEvenOnes();
  EXPECT_EQ(SimulateAtm(m, {1, 1}, 4), AtmOutcome::kAccept);
  EXPECT_EQ(SimulateAtm(m, {1, 0}, 4), AtmOutcome::kReject);
  EXPECT_EQ(SimulateAtm(m, {0, 0}, 4), AtmOutcome::kAccept);
  EXPECT_EQ(SimulateAtm(m, {1, 1, 1}, 8), AtmOutcome::kReject);
  EXPECT_EQ(SimulateAtm(m, {}, 2), AtmOutcome::kAccept);
}

TEST(Atm, SimulatorAlternation) {
  EXPECT_EQ(SimulateAtm(AtmGuessAndVerify(), {0, 1}, 4), AtmOutcome::kAccept);
  EXPECT_EQ(SimulateAtm(AtmAlwaysAccept(), {1}, 2), AtmOutcome::kAccept);
  EXPECT_EQ(SimulateAtm(AtmAlwaysReject(), {1}, 2), AtmOutcome::kReject);
}

TEST(Encodings, FragmentsMatchTheorems) {
  Atm m = AtmEvenOnes();
  std::vector<int> w = {1, 1};
  // Theorem 27: vertical fragment.
  Fragment fv = DetectFragment(EncodeVertical(m, w));
  EXPECT_TRUE(fv.IsVertical());
  EXPECT_TRUE(fv.uses_intersect);
  EXPECT_FALSE(fv.uses_star);
  // Theorem 28: forward fragment (→⁺ only — the paper's promise to avoid
  // the nontransitive sibling axis... →⁺ is built from → and →*, both
  // forward).
  Fragment ff = DetectFragment(EncodeForward(m, w));
  EXPECT_TRUE(ff.IsForward());
  EXPECT_TRUE(ff.uses_intersect);
  // Theorem 29: downward fragment.
  Fragment fd = DetectFragment(EncodeDownward(m, w));
  EXPECT_TRUE(fd.IsDownward());
  EXPECT_TRUE(fd.uses_intersect);
  EXPECT_FALSE(fd.uses_star);
}

TEST(Encodings, SizeGrowsPolynomially) {
  Atm m = AtmEvenOnes();
  std::vector<int64_t> sizes;
  for (int k = 1; k <= 4; ++k) {
    std::vector<int> w(k, 1);
    sizes.push_back(Size(EncodeDownward(m, w)));
  }
  // Quadratic-ish in k = |w| (counters contribute O(k²)).
  EXPECT_LT(sizes[3], sizes[0] * 64);
  EXPECT_GT(sizes[3], sizes[0]);
}

// The heart of the Section 6.4 validation: the intended computation model
// of a deterministic machine satisfies φ''_{M,w} at its root iff the
// machine accepts (the rejecting run violates φ''_acc).
TEST(Encodings, DownwardModelChecking) {
  Atm m = AtmEvenOnes();
  struct Case {
    std::vector<int> word;
    bool accepts;
  };
  const Case cases[] = {{{1, 1}, true}, {{1, 0}, false}, {{0, 0}, true}};
  for (const Case& c : cases) {
    ASSERT_EQ(SimulateAtm(m, c.word, 1 << c.word.size()) == AtmOutcome::kAccept, c.accepts);
    auto [ok, model] = BuildDownwardComputationModel(m, c.word);
    ASSERT_TRUE(ok);
    NodePtr phi = EncodeDownward(m, c.word);
    Evaluator ev(model);
    EXPECT_EQ(ev.EvalNode(phi).Contains(model.root()), c.accepts)
        << "word " << c.word[0] << c.word[1];
  }
}

TEST(Encodings, DownwardModelIsFragile) {
  // Corrupting the computation (flipping a symbol in the middle) must break
  // the formula: the encoding really checks the transition relation.
  Atm m = AtmEvenOnes();
  std::vector<int> w = {1, 1};
  auto [ok, model] = BuildDownwardComputationModel(m, w);
  ASSERT_TRUE(ok);
  NodePtr phi = EncodeDownward(m, w);
  {
    Evaluator ev(model);
    ASSERT_TRUE(ev.EvalNode(phi).Contains(model.root()));
  }
  // Rebuild with a corrupted cell: node ids are chain positions; flip the
  // symbol label of a mid-chain node (config 1, cell 1 → position 5).
  XmlTree corrupted("x");
  {
    // Copy with surgery.
    std::vector<std::vector<std::string>> labels;
    for (NodeId n = 0; n < model.size(); ++n) labels.push_back(model.labels(n));
    NodeId target = 5;
    for (auto& l : labels[target]) {
      if (l == Atm::SymbolLabel(1)) l = Atm::SymbolLabel(0);
      else if (l == Atm::SymbolLabel(0)) l = Atm::SymbolLabel(1);
    }
    corrupted = XmlTree(labels[0]);
    NodeId at = corrupted.root();
    for (NodeId n = 1; n < model.size(); ++n) at = corrupted.AddChild(at, labels[n]);
  }
  Evaluator ev(corrupted);
  EXPECT_FALSE(ev.EvalNode(phi).Contains(corrupted.root()));
}

TEST(Encodings, Lemma25TreeEncoding) {
  XmlTree multi = ParseTree("a+c0(b(a),a+c1)").value();
  XmlTree single = EncodeMultiLabelTree(multi);
  EXPECT_TRUE(single.IsSingleLabeled());
  // Real nodes labeled x; label leaves attached after real children.
  EXPECT_EQ(single.label(0), "x");
  EXPECT_EQ(TreeToText(single), "x(x(x(a),b),x(a,c1),a,c0)");
}

// Lemma 25 semantics: φ on a multi-labeled tree ≡ φ' on the encoded tree,
// at corresponding (real) nodes.
TEST(Encodings, Lemma25Equivalence) {
  const char* formulas[] = {
      "<down[a]>",
      "<down*[b and <down[a]>]>",
      "every(down, a or b)",
      "<down & down[a]>",
      "<down*[c1] & down/down>",
      "not(<down[a and b]>)",
  };
  TreeGenerator gen(5);
  for (int i = 0; i < 15; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(8));
    opt.alphabet = {"a", "b", "c1"};
    opt.max_extra_labels = 2;
    XmlTree multi = gen.Generate(opt);
    XmlTree single = EncodeMultiLabelTree(multi);
    // Real node n of `multi` corresponds to the n-th x-labeled node of
    // `single` in creation order; EncodeMultiLabelTree preserves the DFS
    // order of real nodes, so match by order of x-nodes.
    std::vector<NodeId> real;
    for (NodeId n = 0; n < single.size(); ++n) {
      if (single.label(n) == "x") real.push_back(n);
    }
    // Creation orders differ (multi is random-parent order; single is DFS);
    // match by path-from-root instead: evaluate both and compare root truth
    // plus counts.
    for (const char* f : formulas) {
      NodePtr phi = ParseNode(f).value();
      NodePtr encoded = MultiLabelToSingle(phi);
      Evaluator ev_multi(multi);
      Evaluator ev_single(single);
      // The Lemma 25 statement is about satisfiability; the encoded formula
      // includes the aux-leaf conjuncts, so compare "satisfied at some real
      // node".
      bool sat_multi = !ev_multi.EvalNode(phi).Empty();
      NodeSet s = ev_single.EvalNode(encoded);
      bool sat_single = false;
      for (NodeId n : real) sat_single = sat_single || s.Contains(n);
      EXPECT_EQ(sat_multi, sat_single) << f << " on " << TreeToText(multi);
    }
  }
}

TEST(Families, PhiKShape) {
  for (int k = 1; k <= 3; ++k) {
    NodePtr phi = SuccinctnessPhiK(k);
    Fragment f = DetectFragment(phi);
    EXPECT_TRUE(f.uses_intersect);
    EXPECT_FALSE(f.uses_star);
    // Quadratic size in k.
    EXPECT_LT(Size(phi), 300 * (k + 1) * (k + 1));
  }
  // φ_k is monotone in k-ish in size.
  EXPECT_LT(Size(SuccinctnessPhiK(1)), Size(SuccinctnessPhiK(3)));
}

TEST(Families, PhiKSemantics) {
  // k = 1: positions i, j with pp-starts that agree at offset 0 (trivially
  // via ≡ at ℓ=0... offsets 2ℓ for ℓ<1 = {0}) must agree at offset 2.
  NodePtr phi = SuccinctnessPhiK(1);
  // Chain p p p p p p: all positions agree everywhere — satisfied.
  XmlTree uniform = ParseTree("p(p(p(p(p(p)))))").value();
  Evaluator ev1(uniform);
  EXPECT_TRUE(ev1.EvalNode(phi).Contains(uniform.root()));
  // Chain p p p p q vs ... construct a violating chain: positions 0 and 2
  // both start pp, agree at offset 0 (both p), but differ at offset 2:
  // u_2 = p, u_4 = q ⇒ positions 0, 2 violate with k = 1? offsets: i=0,
  // j=2: u_{i+0}=u_0=p, u_{j+0}=u_2=p agree; u_{i+2}=u_2=p, u_{j+2}=u_4=q
  // differ ⇒ φ_1 false somewhere.
  XmlTree violating = ParseTree("p(p(p(p(q))))").value();
  Evaluator ev2(violating);
  EXPECT_FALSE(ev2.EvalNode(phi).Contains(violating.root()));
}

TEST(Families, NerodeGrowth) {
  // The k = 1 language already needs ≥ 2^{2^1} = 4 states; empirically the
  // class count grows sharply with k.
  int64_t classes1 = CountNerodeClasses(SuccinctnessPhiK(1), 5, 4);
  EXPECT_GE(classes1, 4);
  int64_t classes2 = CountNerodeClasses(SuccinctnessPhiK(2), 7, 6);
  EXPECT_GT(classes2, classes1);
}

TEST(Families, ScalingFamiliesWellFormed) {
  for (int n = 1; n <= 4; ++n) {
    EXPECT_FALSE(DetectFragment(FamilyEqChain(n)).uses_intersect);
    EXPECT_TRUE(DetectFragment(FamilyEqChain(n)).uses_path_eq);
    EXPECT_EQ(IntersectionDepth(FamilyIntersectChain(n)), 1);
    EXPECT_EQ(IntersectionDepth(FamilyIntersectNested(n)), n);
    EXPECT_TRUE(DetectFragment(FamilyForChain(n)).uses_for);
    EXPECT_TRUE(DetectFragment(FamilyComplementTower(n)).uses_complement);
  }
}

}  // namespace
}  // namespace xpc
