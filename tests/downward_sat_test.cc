#include "xpc/sat/downward_sat.h"

#include <gtest/gtest.h>

#include "xpc/edtd/conformance.h"
#include "xpc/eval/evaluator.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/sat/simple_paths.h"
#include "xpc/translate/intersect_product.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

// Lemma 20 property: α ≡ ⋃ inst(α) on concrete trees.
TEST(SimplePaths, InstantiateEquivalence) {
  const char* paths[] = {
      "down",
      "down*",
      ".",
      "down[a]/down*",
      "down* & down/down",
      "down*[a] & down*[b]",
      "(down & down[a]) | down*/down",
      "down*/down* & down/down",
      "down[a]/(down* & down*[b])",
      "down* & down* & down",
  };
  TreeGenerator gen(99);
  for (const char* s : paths) {
    PathPtr alpha = P(s);
    auto [ok, insts] = Instantiate(alpha);
    ASSERT_TRUE(ok) << s;
    ASSERT_FALSE(insts.empty() && std::string(s) != "") << s;
    // Lemma 20(ii): each member has length ≤ 4|α|.
    for (const SimplePath& p : insts) {
      EXPECT_LE(static_cast<int>(p.size()), 4 * Size(alpha)) << s;
    }
    // Build the union and compare semantics on random trees.
    std::vector<PathPtr> parts;
    for (const SimplePath& p : insts) parts.push_back(SimplePathToPathExpr(p));
    PathPtr united = UnionAll(parts);
    for (int i = 0; i < 15; ++i) {
      TreeGenOptions opt;
      opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(10));
      opt.alphabet = {"a", "b"};
      XmlTree t = gen.Generate(opt);
      Evaluator ev(t);
      EXPECT_TRUE(ev.EvalPath(alpha) == ev.EvalPath(united))
          << s << " on " << TreeToText(t);
    }
  }
}

TEST(SimplePaths, EmptyIntersections) {
  // int{ε, ↓/β} = ∅: a self-loop cannot take a child step.
  auto [ok, insts] = Instantiate(P(". & down"));
  ASSERT_TRUE(ok);
  EXPECT_TRUE(insts.empty());
}

TEST(SimplePaths, RejectsNonDownward) {
  EXPECT_FALSE(Instantiate(P("up")).first);
  EXPECT_FALSE(Instantiate(P("right")).first);
  EXPECT_FALSE(Instantiate(P("(down/down)*")).first);
  EXPECT_FALSE(Instantiate(P("down - down")).first);
}

void ExpectDownward(const std::string& phi, SolveStatus expected) {
  SatResult r = DownwardSatisfiable(N(phi));
  ASSERT_NE(r.status, SolveStatus::kResourceLimit) << phi << " " << r.engine;
  EXPECT_EQ(r.status, expected) << phi;
  if (r.status == SolveStatus::kSat) {
    ASSERT_TRUE(r.witness.has_value());
    Evaluator ev(*r.witness);
    EXPECT_TRUE(ev.SatisfiedSomewhere(N(phi)))
        << phi << " witness " << TreeToText(*r.witness);
  }
}

TEST(DownwardSat, Basics) {
  ExpectDownward("a", SolveStatus::kSat);
  ExpectDownward("a and not(a)", SolveStatus::kUnsat);
  ExpectDownward("<down[a]> and every(down, b)", SolveStatus::kUnsat);
  ExpectDownward("<down[a]> and every(down, a)", SolveStatus::kSat);
  ExpectDownward("<down*[a and <down[b]>]>", SolveStatus::kSat);
  ExpectDownward("<down & down/down>", SolveStatus::kUnsat);
  ExpectDownward("<down* & down/down>", SolveStatus::kSat);
  ExpectDownward("<down*[a] & down*[b]>", SolveStatus::kUnsat);
  ExpectDownward("<down/down & down*[a]/down>", SolveStatus::kSat);
}

// The downward engine and the ∩-product + loop-sat pipeline are independent
// implementations; they must agree on CoreXPath↓(∩) inputs.
TEST(DownwardSat, AgreesWithLoopSatPipeline) {
  const char* formulas[] = {
      "<down[a] & down[b]>",
      "<down/down[a] & down*[b]/down>",
      "every(down*, a or b) and <down*[a]> and <down[b]>",
      "<(down & down[a])/(down* & down*[b])>",
      "not(<down>) and <down* & down*>",
      "<down*[a]> and every(down, not(a)) and not(a)",
      "<down & down> and every(down*, <down> or b)",
      "eq(down[a], down)",
      "eq(down* & down/down, down[b]/down)",
  };
  for (const char* f : formulas) {
    SatResult down = DownwardSatisfiable(N(f));
    LExprPtr e = IntersectToLoopNormalForm(N(f));
    ASSERT_TRUE(e) << f;
    SatResult loop = LoopSatisfiable(e);
    ASSERT_NE(down.status, SolveStatus::kResourceLimit) << f << " " << down.engine;
    ASSERT_NE(loop.status, SolveStatus::kResourceLimit) << f;
    EXPECT_EQ(down.status, loop.status) << f;
  }
}

TEST(DownwardSat, WithEdtd) {
  Edtd book = Edtd::Parse(R"(
    Book := Chapter+
    Chapter := Section+
    Section := (Section | Paragraph | Image)+
    Paragraph := epsilon
    Image := epsilon
  )").value();

  // "Some chapter contains an image" — satisfiable under the book schema.
  SatResult r1 = DownwardSatisfiableWithEdtd(N("Chapter and <down*[Image]>"), book);
  ASSERT_EQ(r1.status, SolveStatus::kSat) << r1.engine;
  ASSERT_TRUE(r1.witness.has_value());
  EXPECT_TRUE(Conforms(*r1.witness, book)) << TreeToText(*r1.witness);
  Evaluator ev(*r1.witness);
  EXPECT_TRUE(ev.SatisfiedSomewhere(N("Chapter and <down*[Image]>")));

  // A chapter with an Image child directly under it: forbidden by P(Chapter).
  SatResult r2 = DownwardSatisfiableWithEdtd(N("Chapter and <down[Image]>"), book);
  EXPECT_EQ(r2.status, SolveStatus::kUnsat);

  // A Book node inside a Book: the root type occurs only at the root.
  SatResult r3 = DownwardSatisfiableWithEdtd(N("<down*[Book]> and Chapter"), book);
  EXPECT_EQ(r3.status, SolveStatus::kUnsat);

  // Every section has a paragraph — satisfiable.
  SatResult r4 = DownwardSatisfiableWithEdtd(
      N("Book and every(down*, not(Section) or <down[Paragraph]>)"), book);
  EXPECT_EQ(r4.status, SolveStatus::kSat);
  EXPECT_TRUE(Conforms(*r4.witness, book));
}

TEST(DownwardSat, EdtdDepthBound) {
  // The sections EDTD allows nesting ≤ 3.
  Edtd sections = Edtd::Parse("s1 -> s := s2?\ns2 -> s := s3?\ns3 -> s := epsilon").value();
  EXPECT_EQ(DownwardSatisfiableWithEdtd(N("<down/down>"), sections).status, SolveStatus::kSat);
  EXPECT_EQ(DownwardSatisfiableWithEdtd(N("<down/down/down>"), sections).status,
            SolveStatus::kUnsat);
}

TEST(DownwardSat, UnsupportedInputs) {
  EXPECT_EQ(DownwardSatisfiable(N("<up>")).status, SolveStatus::kResourceLimit);
  EXPECT_EQ(DownwardSatisfiable(N("<(down/down)*>")).status, SolveStatus::kResourceLimit);
  EXPECT_EQ(DownwardSatisfiable(N("<down - down>")).status, SolveStatus::kResourceLimit);
}

}  // namespace
}  // namespace xpc
