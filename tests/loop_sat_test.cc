#include "xpc/sat/loop_sat.h"

#include <gtest/gtest.h>

#include "xpc/eval/evaluator.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/sat/bounded_sat.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

SatResult Solve(const std::string& phi) {
  LExprPtr e = ToLoopNormalForm(N(phi));
  EXPECT_TRUE(e) << phi;
  return LoopSatisfiable(e);
}

// Every SAT answer must come with a verified witness.
void ExpectSatWithWitness(const std::string& phi) {
  SatResult r = Solve(phi);
  ASSERT_EQ(r.status, SolveStatus::kSat) << phi;
  ASSERT_TRUE(r.witness.has_value()) << phi;
  Evaluator ev(*r.witness);
  EXPECT_TRUE(ev.SatisfiedSomewhere(N(phi)))
      << phi << " not satisfied by claimed witness " << TreeToText(*r.witness);
}

void ExpectUnsat(const std::string& phi) {
  SatResult r = Solve(phi);
  EXPECT_EQ(r.status, SolveStatus::kUnsat) << phi;
}

TEST(LoopSat, TrivialSat) {
  ExpectSatWithWitness("true");
  ExpectSatWithWitness("p");
  ExpectSatWithWitness("not(p)");
}

TEST(LoopSat, TrivialUnsat) {
  ExpectUnsat("false");
  ExpectUnsat("p and not(p)");
}

TEST(LoopSat, StructuralSat) {
  ExpectSatWithWitness("<down[p]>");
  ExpectSatWithWitness("<down[p]/right[q]>");
  ExpectSatWithWitness("<up[p]> and q");
  ExpectSatWithWitness("<down/down/down>");
  ExpectSatWithWitness("<down[p and <down[p]>]> and not(p)");
  ExpectSatWithWitness("<left> and <right>");
}

TEST(LoopSat, StructuralUnsat) {
  // A node cannot be both a leaf and have a child.
  ExpectUnsat("<down> and not(<down>)");
  // The root of the tree has no parent: everywhere-no-parent plus depth 1.
  ExpectUnsat("<up[not(<up>) and p and not(p)]>");
  // ⟨↓*⟩ always holds but ⟨↓*[p ∧ ¬p]⟩ never does.
  ExpectUnsat("<down*[p and not(p)]>");
  // First child has no left sibling: ⟨↓[¬⟨←⟩ ∧ ⟨←⟩]⟩.
  ExpectUnsat("<down[not(<left>) and <left>]>");
}

TEST(LoopSat, PathEqReasoning) {
  // eq(., .) is trivially true.
  ExpectSatWithWitness("eq(., .)");
  // loop(↓/↑) holds iff the node has a child.
  ExpectSatWithWitness("loop(down/up)");
  // A node whose parent-of-child differs from itself: impossible.
  ExpectUnsat("loop(down/up[p and not(p)])");
  // Two distinct children with the same... eq between disjointly-labeled
  // child sets is unsatisfiable on single-labeled trees.
  ExpectUnsat("eq(down[a and b], .) and not(eq(down[a], down[b]))");
}

TEST(LoopSat, SingleLabelSemantics) {
  // Nodes carry exactly one label, so a common target of ↓[a] and ↓[b]
  // would have to satisfy both labels: unsatisfiable.
  ExpectUnsat("eq(down[a], down[b])");
  ExpectUnsat("eq(down[a and b], down)");
}

TEST(LoopSat, StarFormulas) {
  // (↓[a])* chains: zero steps make the filter apply to the node itself, so
  // ⟨(↓[a])*[b]⟩ ∧ a is unsatisfiable on single-labeled trees, while a chain
  // of a-nodes followed by one ↓ step to a b-node is fine.
  ExpectUnsat("<(down[a])*[b]> and a");
  ExpectSatWithWitness("a and <(down[a])*/down[b]>");
  ExpectSatWithWitness("loop((down[a] | right)*[c]/(up | left)*) and c");
  // Every node on a ↓-chain is a, the last is b — contradiction with b≠a.
  ExpectUnsat("<(down[a])*[b]> and every(down*, not(b))");
}

TEST(LoopSat, EveryCombinations) {
  ExpectSatWithWitness("every(down, p) and <down>");
  ExpectUnsat("every(down*, p) and not(p)");
  ExpectUnsat("every(down*, p) and <down*[q and not(p)]>");
  ExpectSatWithWitness("every(down*, p or q) and <down*[q]> and <down*[p]>");
}

TEST(LoopSat, DeeperCombinations) {
  // Root with exactly... at least 3 children, pairwise-ordered labels.
  ExpectSatWithWitness("<down[a and not(<left>)]/right[b]/right[c]>");
  // a-node such that every child is b and some grandchild exists.
  ExpectSatWithWitness("a and every(down, b) and <down/down>");
  // Unsat: every child is b, some child is not b.
  ExpectUnsat("every(down, b) and <down[c and not(b)]>");
}

// Cross-validation against the bounded oracle on a battery of formulas in
// CoreXPath(*, ≈). For SAT both must agree; for UNSAT the oracle must fail
// to find a witness.
TEST(LoopSat, CrossValidatedBattery) {
  const char* formulas[] = {
      "p and every(up*, q or p)",
      "eq(down*[a], right*[a])",
      "not(<up>) and every(down, a) and <down[a]/down[b]>",
      "eq(up/down, .) and <right>",
      "eq(up/down, .) and not(<right>) and not(<left>) and <up>",
      "<down[a]> and <down[b]> and every(down, a or b)",
      "loop(right/right/left/left) and <right/right>",
      "every(down*, <down[a]> or <down[b]> or not(<down>))",
      "a and <(down[a])*[b]>",
      "eq(down[a]/down[b], down[c]/down[d])",
  };
  BoundedSatOptions oracle_opts;
  oracle_opts.max_exhaustive_nodes = 5;
  oracle_opts.random_trees = 60;
  oracle_opts.max_random_nodes = 10;
  for (const char* f : formulas) {
    SatResult fast = Solve(f);
    SatResult oracle = BoundedSatisfiable(N(f), oracle_opts);
    if (fast.status == SolveStatus::kSat) {
      ASSERT_TRUE(fast.witness.has_value()) << f;
      Evaluator ev(*fast.witness);
      EXPECT_TRUE(ev.SatisfiedSomewhere(N(f)))
          << f << " witness " << TreeToText(*fast.witness);
    } else {
      EXPECT_EQ(fast.status, SolveStatus::kUnsat) << f;
      EXPECT_NE(oracle.status, SolveStatus::kSat)
          << f << ": oracle found witness " << TreeToText(*oracle.witness)
          << " but engine says unsat";
    }
  }
}

TEST(LoopSat, WitnessesAreReasonablySmall) {
  SatResult r = Solve("<down/down/down[p]>");
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_LE(r.witness->size(), 8);
  EXPECT_GE(r.witness->Height(), 3);
}

}  // namespace
}  // namespace xpc
