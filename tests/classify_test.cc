// Unit coverage for the tractable-fragment classifier (src/xpc/classify/).
//
// Three layers:
//   * one positive and one negative expression per FragmentProfile feature
//     flag, so every dimension of the profile is pinned independently;
//   * golden classifications for the expressions the examples/ programs and
//     the paper-figure benchmarks actually run, so a classifier change that
//     silently reroutes a showcase query fails here first;
//   * SchemaClass predicates, SelectFastPath routing, and the engine-stamp
//     contract for forced fallbacks (a PTIME procedure invoked outside its
//     fragment must refuse loudly, never answer).

#include <string>

#include <gtest/gtest.h>

#include "xpc/classify/fastpath.h"
#include "xpc/classify/profile.h"
#include "xpc/core/solver.h"
#include "xpc/edtd/edtd.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

Edtd E(const std::string& s) {
  auto r = Edtd::Parse(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

// --- FragmentProfile: one positive + one negative per feature flag ------

TEST(ClassifyProfile, Disjunction) {
  EXPECT_TRUE(ClassifyNode(N("a or b")).uses_disjunction);
  EXPECT_TRUE(ClassifyPath(P("down | up")).uses_disjunction);
  EXPECT_FALSE(ClassifyNode(N("a and b")).uses_disjunction);
}

TEST(ClassifyProfile, Negation) {
  EXPECT_TRUE(ClassifyNode(N("not(a)")).uses_negation);
  EXPECT_FALSE(ClassifyNode(N("a and b")).uses_negation);
}

TEST(ClassifyProfile, Qualifier) {
  EXPECT_TRUE(ClassifyNode(N("<down[a]>")).uses_qualifier);
  EXPECT_FALSE(ClassifyNode(N("<down>")).uses_qualifier);
}

TEST(ClassifyProfile, QualifierDepthCountsNesting) {
  EXPECT_EQ(ClassifyNode(N("a")).qualifier_depth, 0);
  EXPECT_EQ(ClassifyNode(N("<down[a]>")).qualifier_depth, 1);
  EXPECT_EQ(ClassifyNode(N("<down[<down[b]>]>")).qualifier_depth, 2);
  // Siblings do not stack: two depth-1 filters stay depth 1.
  EXPECT_EQ(ClassifyPath(P("down[a]/down[b]")).qualifier_depth, 1);
}

TEST(ClassifyProfile, Variables) {
  EXPECT_TRUE(ClassifyPath(P("for $x in down return down[is $x]")).uses_variables);
  EXPECT_FALSE(ClassifyPath(P("down[a]")).uses_variables);
}

TEST(ClassifyProfile, FragmentCoordinates) {
  FragmentProfile p = ClassifyPath(P("up*/right+/down*"));
  EXPECT_TRUE(p.fragment.uses_parent);
  EXPECT_TRUE(p.fragment.uses_right);
  EXPECT_TRUE(p.fragment.uses_child);
  EXPECT_FALSE(p.fragment.uses_left);
  EXPECT_FALSE(p.fragment.IsVertical());

  EXPECT_TRUE(ClassifyPath(P("(down/up)*")).fragment.uses_star);
  EXPECT_TRUE(ClassifyPath(P("down & down*")).fragment.uses_intersect);
  EXPECT_TRUE(ClassifyPath(P("down* - down")).fragment.uses_complement);
  EXPECT_TRUE(ClassifyNode(N("eq(down, up)")).fragment.uses_path_eq);
  EXPECT_TRUE(ClassifyNode(N("<down[a]>")).fragment.IsDownward());
}

TEST(ClassifyProfile, OpsCountsAstOperators) {
  EXPECT_EQ(ClassifyNode(N("a")).ops, 1);
  EXPECT_GT(ClassifyNode(N("a and <down[b]>")).ops, ClassifyNode(N("a")).ops);
}

// --- The two fast-path shape gates --------------------------------------

TEST(ClassifyProfile, DownwardChainPositive) {
  for (const char* s : {"a and <down/down*[b]>", "Paragraph and <down>",
                        "a and b and <down[a and b]>", "true"}) {
    FragmentProfile p = ClassifyNode(N(s));
    EXPECT_TRUE(p.downward_chain) << s << ": " << p.Summary();
    // Chains are a sub-shape of the vertical-conjunctive fragment.
    EXPECT_TRUE(p.vertical_conjunctive) << s;
    EXPECT_TRUE(InDownwardChainFragment(N(s))) << s;
  }
}

TEST(ClassifyProfile, DownwardChainNegative) {
  for (const char* s : {
           "a or <down>",            // disjunction
           "not(<down>)",            // negation
           "<down> and <down>",      // two spines
           "<up>",                   // wrong axis
           "<down & down>",          // intersection
           "<down[<down>]>",         // non-label qualifier
       }) {
    EXPECT_FALSE(ClassifyNode(N(s)).downward_chain) << s;
    EXPECT_FALSE(InDownwardChainFragment(N(s))) << s;
  }
}

TEST(ClassifyProfile, VerticalConjunctivePositive) {
  for (const char* s : {"<down[a]/up>", "<up/down>", "<down[<down[b]>]>",
                        "a and <down[a and <up>]>"}) {
    FragmentProfile p = ClassifyNode(N(s));
    EXPECT_TRUE(p.vertical_conjunctive) << s << ": " << p.Summary();
    EXPECT_TRUE(InVerticalConjunctiveFragment(N(s))) << s;
  }
}

TEST(ClassifyProfile, VerticalConjunctiveNegative) {
  for (const char* s : {
           "a or b",            // disjunction
           "not(a)",            // negation
           "<right>",           // horizontal axis
           "<down - down>",     // complement
           "eq(down, down)",    // path equality
           "<down*/up>",        // ↑ below a ↓* step: parent undetermined
       }) {
    EXPECT_FALSE(ClassifyNode(N(s)).vertical_conjunctive) << s;
    EXPECT_FALSE(InVerticalConjunctiveFragment(N(s))) << s;
  }
}

// --- Golden classifications: examples/ and paper-figure queries ---------

TEST(ClassifyGolden, QuickstartQueries) {
  // examples/quickstart.cpp
  EXPECT_EQ(ClassifyPath(P("down*[figure]")).Summary(),
            "CoreXPath_{v} [chain, vertical, q=1]");
  EXPECT_EQ(ClassifyPath(P("down[book]/down*[figure]")).Summary(),
            "CoreXPath_{v} [chain, vertical, q=1]");
  EXPECT_EQ(ClassifyPath(P("down[book]/down[chapter]/down*[figure]")).Summary(),
            "CoreXPath_{v} [chain, vertical, q=1]");
  EXPECT_EQ(ClassifyNode(N("section and <down[figure]> and not(<down[section]>)")).Summary(),
            "CoreXPath_{v} [not, q=1]");
  EXPECT_EQ(ClassifyPath(P("down*[figure] & down*[section]/down[figure]")).Summary(),
            "CoreXPath_{v}(cap) [q=1]");
}

TEST(ClassifyGolden, Figure2Queries) {
  // bench/bench_fig2_downward.cc — the native Fig. 2 workload. Two of the
  // four route to the chain fast path, two carry ∩ and stay on the full
  // EXPSPACE engine.
  EXPECT_EQ(ClassifyNode(N("Chapter and <down*[Section]/down[Section]/down[Image]>"))
                .Summary(),
            "CoreXPath_{v} [chain, vertical, q=1]");
  EXPECT_EQ(ClassifyNode(N("Paragraph and <down>")).Summary(),
            "CoreXPath_{v} [chain, vertical]");
  EXPECT_EQ(ClassifyNode(N("Book and <down/down/down*[Image] & down*[Image]>")).Summary(),
            "CoreXPath_{v}(cap) [q=1]");
  EXPECT_EQ(ClassifyNode(N("Section and <down[Image] & down[Paragraph]>")).Summary(),
            "CoreXPath_{v}(cap) [q=1]");
}

TEST(ClassifyGolden, BookCatalogQueriesStayOutOfFragment) {
  // examples/book_catalog.cpp queries lean on ≈, − and ∩ — none may route.
  const char* kFollowing = "up*/right+/down*";
  for (const std::string& s : {
           std::string("down*[Image and not(eq(") + kFollowing +
               "[Image], up+[Chapter]/down+[Image]))]",
           std::string("(") + kFollowing + "[Image]) & (up+[Chapter]/down+[Image])",
       }) {
    FragmentProfile p = ClassifyPath(P(s));
    EXPECT_FALSE(p.downward_chain) << s;
    EXPECT_FALSE(p.vertical_conjunctive) << s;
    EXPECT_EQ(SelectFastPath(p, nullptr), FastPathRoute::kNone) << s;
  }
}

// --- SchemaClass --------------------------------------------------------

TEST(ClassifySchema, DuplicateAndDisjunctionFree) {
  SchemaClass c = ClassifySchema(E("A -> a := B, C\nB -> b := epsilon\nC -> c := epsilon"));
  EXPECT_TRUE(c.duplicate_free);
  EXPECT_TRUE(c.disjunction_free);
  EXPECT_TRUE(c.covering);
  EXPECT_EQ(c.num_types, 3);
  EXPECT_EQ(c.Summary(), "3 types, duplicate-free, disjunction-free, covering");
}

TEST(ClassifySchema, DuplicateContent) {
  SchemaClass c = ClassifySchema(E("A -> a := B, B\nB -> b := epsilon"));
  EXPECT_FALSE(c.duplicate_free);
  EXPECT_TRUE(c.disjunction_free);
}

TEST(ClassifySchema, DisjunctionInContent) {
  EXPECT_FALSE(ClassifySchema(E("A -> a := B | C\nB -> b := epsilon\nC -> c := epsilon"))
                   .disjunction_free);
  // `?` desugars to a union, so it counts as disjunction too.
  EXPECT_FALSE(ClassifySchema(E("A -> a := B?\nB -> b := epsilon")).disjunction_free);
}

TEST(ClassifySchema, NonCoveringSchema) {
  // B's content is unrealizable (B := B), so the schema does not cover.
  SchemaClass c = ClassifySchema(E("A -> a := B*\nB -> b := B"));
  EXPECT_FALSE(c.covering);
  EXPECT_TRUE(c.duplicate_free);
  EXPECT_TRUE(c.disjunction_free);
}

TEST(ClassifySchema, BookEdtdFromFigure2) {
  // `+` duplicates its operand and the Section model is a 3-way union:
  // the Fig. 2 book schema meets neither vertical-route precondition.
  SchemaClass c = ClassifySchema(E(
      "Book := Chapter+\nChapter := Section+\n"
      "Section := (Section | Paragraph | Image)+\n"
      "Paragraph := epsilon\nImage := epsilon"));
  EXPECT_FALSE(c.duplicate_free);
  EXPECT_FALSE(c.disjunction_free);
  EXPECT_TRUE(c.covering);
  EXPECT_EQ(c.num_types, 5);
}

// --- SelectFastPath routing ---------------------------------------------

TEST(ClassifyRoute, ChainWinsOverVertical) {
  FragmentProfile p = ClassifyNode(N("a and <down/down*[b]>"));
  ASSERT_TRUE(p.downward_chain);
  ASSERT_TRUE(p.vertical_conjunctive);
  EXPECT_EQ(SelectFastPath(p, nullptr), FastPathRoute::kDownwardChain);
  // Chains need no schema preconditions: even a duplicate-ful, disjunctive
  // schema routes.
  SchemaClass bad = ClassifySchema(E("A -> a := B | (B, B)\nB -> b := epsilon"));
  ASSERT_FALSE(bad.duplicate_free);
  EXPECT_EQ(SelectFastPath(p, &bad), FastPathRoute::kDownwardChain);
}

TEST(ClassifyRoute, VerticalNeedsLinearSchemaOrNone) {
  FragmentProfile p = ClassifyNode(N("<down[a]/up>"));
  ASSERT_FALSE(p.downward_chain);
  ASSERT_TRUE(p.vertical_conjunctive);
  EXPECT_EQ(SelectFastPath(p, nullptr), FastPathRoute::kVerticalConjunctive);

  SchemaClass good = ClassifySchema(E("A -> a := B, C\nB -> b := epsilon\nC -> c := epsilon"));
  EXPECT_EQ(SelectFastPath(p, &good), FastPathRoute::kVerticalConjunctive);

  SchemaClass disj = ClassifySchema(E("A -> a := B | C\nB -> b := epsilon\nC -> c := epsilon"));
  EXPECT_EQ(SelectFastPath(p, &disj), FastPathRoute::kNone);

  SchemaClass dup = ClassifySchema(E("A -> a := B, B\nB -> b := epsilon"));
  EXPECT_EQ(SelectFastPath(p, &dup), FastPathRoute::kNone);
}

TEST(ClassifyRoute, OutOfFragmentNeverRoutes) {
  for (const char* s : {"not(a)", "a or b", "<right>", "eq(down, down)",
                        "<down & down>"}) {
    EXPECT_EQ(SelectFastPath(ClassifyNode(N(s)), nullptr), FastPathRoute::kNone) << s;
  }
}

TEST(ClassifyRoute, RouteNames) {
  EXPECT_STREQ(FastPathRouteName(FastPathRoute::kNone), "none");
  EXPECT_STREQ(FastPathRouteName(FastPathRoute::kDownwardChain), "downward-chain");
  EXPECT_STREQ(FastPathRouteName(FastPathRoute::kVerticalConjunctive),
               "vertical-conjunctive");
}

// --- Engine stamps: routed queries vs forced fallbacks ------------------

TEST(ClassifyDispatch, RoutedQueriesCarryFastpathStamp) {
  Solver solver;
  EXPECT_EQ(solver.NodeSatisfiable(N("a and <down[b]>")).engine, "fastpath-chain");
  EXPECT_EQ(solver.NodeSatisfiable(N("<down[a]/up>")).engine, "fastpath-vertical");

  Edtd lin = E("A -> a := B, C\nB -> b := epsilon\nC -> c := epsilon");
  EXPECT_EQ(solver.NodeSatisfiable(N("a and <down[b]>"), lin).engine,
            "fastpath-chain+edtd");
  EXPECT_EQ(solver.NodeSatisfiable(N("<down[b]/up[a]>"), lin).engine,
            "fastpath-vertical+edtd");
}

TEST(ClassifyDispatch, FallbacksNeverCarryFastpathStamp) {
  Solver solver;
  for (const char* s : {"not(<down[a]>)", "a or b", "eq(down, down*)"}) {
    SatResult r = solver.NodeSatisfiable(N(s));
    EXPECT_EQ(r.engine.rfind("fastpath-", 0), std::string::npos) << s << ": " << r.engine;
  }
  // With fast paths off even in-fragment queries use the full engines.
  SolverOptions off;
  off.fast_paths = false;
  SatResult r = Solver(off).NodeSatisfiable(N("a and <down[b]>"));
  EXPECT_EQ(r.engine.rfind("fastpath-", 0), std::string::npos) << r.engine;
  EXPECT_EQ(r.status, SolveStatus::kSat);
}

TEST(ClassifyDispatch, MisusedFastPathRefusesLoudly) {
  // Calling a PTIME procedure outside its fragment (bypassing the
  // classifier gate) must return kResourceLimit with a tagged stamp, never
  // a verdict.
  SatResult chain = DownwardChainSatisfiable(N("not(a)"), nullptr);
  EXPECT_EQ(chain.status, SolveStatus::kResourceLimit);
  EXPECT_EQ(chain.engine, "fastpath-chain:out-of-fragment");

  SatResult vert = VerticalConjunctiveSatisfiable(N("a or b"), nullptr);
  EXPECT_EQ(vert.status, SolveStatus::kResourceLimit);
  EXPECT_EQ(vert.engine, "fastpath-vertical:out-of-fragment");
}

}  // namespace
}  // namespace xpc
