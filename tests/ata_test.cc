#include "xpc/ata/ata.h"

#include <gtest/gtest.h>

#include "xpc/ata/membership.h"
#include "xpc/eval/evaluator.h"
#include "xpc/eval/loop_evaluator.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/parser.h"

namespace xpc {
namespace {

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

LExprPtr NF(const std::string& s) {
  LExprPtr e = ToLoopNormalForm(N(s));
  EXPECT_TRUE(e) << s;
  return e;
}

TEST(Ata, StateSpaceShape) {
  // cl(φ′) contains loop(π_{q,q'}) for all state pairs, both signs, plus
  // subformula states: the size is polynomial in |φ| (Section 3.3).
  LExprPtr e = NF("p and <down[q]>");
  Ata ata(e);
  int loop_states = 0;
  for (int s = 0; s < ata.num_states(); ++s) {
    if (ata.state(s).automaton != nullptr) ++loop_states;
  }
  int expected = 0;
  for (const PathAutoPtr& a : ata.automata()) {
    expected += 2 * a->num_states * a->num_states;
  }
  EXPECT_EQ(loop_states, expected);
  EXPECT_EQ(ata.Parity(ata.initial_state()), 1);
}

TEST(Ata, ParityAssignment) {
  Ata ata(NF("p"));
  for (int s = 0; s < ata.num_states(); ++s) {
    const Ata::State& st = ata.state(s);
    int expected = (st.automaton != nullptr && !st.negated) ? 1 : 2;
    EXPECT_EQ(ata.Parity(s), expected);
  }
}

// Lemma 12: T ∈ L(A_φ) iff ⟦φ⟧ ≠ ∅ — differential test against the
// reference evaluator on hand-picked and random trees.
TEST(Ata, MembershipMatchesEvaluatorHandPicked) {
  struct Case {
    const char* tree;
    const char* phi;
  };
  const Case cases[] = {
      {"a", "a"},
      {"a", "b"},
      {"a(b)", "<down[b]>"},
      {"a(b)", "<down[a]>"},
      {"a(b,c)", "b and <right[c]>"},
      {"a(b(c),d)", "<down/down>"},
      {"a(b(c),d)", "loop(down/down/up/up)"},
      {"a(b,b,b)", "every(down, b)"},
      {"a(b,c,b)", "every(down, b)"},
      {"p(q(p(q)))", "<down*[q and not(<down>)]>"},
      {"a(b(c),d(e))", "eq(down/down, down[b]/down[c])"},
  };
  for (const Case& c : cases) {
    XmlTree t = ParseTree(c.tree).value();
    NodePtr phi = N(c.phi);
    Ata ata(NF(c.phi));
    Evaluator ev(t);
    EXPECT_EQ(AtaAccepts(ata, t), ev.SatisfiedSomewhere(phi)) << c.tree << " | " << c.phi;
  }
}

class AtaRandom : public ::testing::TestWithParam<int> {};

TEST_P(AtaRandom, MembershipMatchesEvaluator) {
  TreeGenerator gen(GetParam() * 1237 + 7);
  const char* formulas[] = {
      "<down[a]>",
      "every(down*, a or b)",
      "loop((down | right)*[b]/(up | left)*)",
      "not(<up>) and <down/right>",
      "eq(down*, right*)",
  };
  for (int i = 0; i < 10; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(9));
    opt.alphabet = {"a", "b"};
    XmlTree t = gen.Generate(opt);
    Evaluator ev(t);
    for (const char* f : formulas) {
      Ata ata(NF(f));
      EXPECT_EQ(AtaAccepts(ata, t), ev.SatisfiedSomewhere(N(f)))
          << f << " on " << TreeToText(t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtaRandom, ::testing::Range(0, 4));

// Lemma 12 refined: the winning positions of subformula states coincide
// with the truth of those subformulas (checked through the LOOPS
// evaluator, the third independent semantics pipeline).
TEST(Ata, WinningPositionsMatchLoopEvaluator) {
  XmlTree t = ParseTree("r(a(b,c),a(c))").value();
  LExprPtr e = NF("<down[a]/down[c]> and not(<left>)");
  Ata ata(e);
  LoopEvaluator loops(t);
  auto winning = AtaWinningPositions(ata, t);
  // Compare every positive loop state of every automaton.
  for (const PathAutoPtr& a : ata.automata()) {
    const std::vector<StateRel>& rel = loops.LoopRelations(a);
    for (int q = 0; q < a->num_states; ++q) {
      for (int r = 0; r < a->num_states; ++r) {
        int pos_state = ata.LoopStateOf(a.get(), q, r, false);
        int neg_state = ata.LoopStateOf(a.get(), q, r, true);
        for (NodeId n = 0; n < t.size(); ++n) {
          EXPECT_EQ(winning[pos_state][n], rel[n].Get(q, r))
              << "loop state (" << q << "," << r << ") at node " << n;
          EXPECT_EQ(winning[neg_state][n], !rel[n].Get(q, r))
              << "¬loop state (" << q << "," << r << ") at node " << n;
        }
      }
    }
  }
}

TEST(Ata, SizeIsPolynomial) {
  // |Q_{A_φ}| grows linearly for chain formulas (all components polynomial
  // in |φ| — Section 3.3).
  std::vector<int> sizes;
  for (int n = 1; n <= 5; ++n) {
    std::string phi = "<down";
    for (int i = 0; i < n; ++i) phi += "/down[a]";
    phi += ">";
    sizes.push_back(Ata(NF(phi)).num_states());
  }
  // Quadratic at worst in this family (loop states are pairs).
  EXPECT_LT(sizes[4], sizes[0] * 30);
}

}  // namespace
}  // namespace xpc
