#include "xpc/translate/intersect_product.h"

#include <gtest/gtest.h>

#include "xpc/eval/evaluator.h"
#include "xpc/eval/loop_evaluator.h"
#include "xpc/sat/bounded_sat.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

// The product translation agrees with the direct evaluator on concrete
// trees: differential test of Lemma 15 / Lemma 16.
TEST(IntersectProduct, AgreesWithEvaluatorOnRandomTrees) {
  const char* formulas[] = {
      "<down* & down/down>",
      "<(down[a] & down[b])>",
      "<down*[a] & down*/down>",
      "eq(down* & down/down/down, down & down)",  // ∩ inside ≈.
      "<(up* & up)/down>",
      "<(right* & right/right)[b]>",
      "<down/(down & down[a])/down>",
      "<(down & down[a]) | (right & right[b])>",
      "<((down | right) & (down | left))*[c]>",   // ∩ under *.
      "<(down* & down*) & down>",
  };
  TreeGenerator gen(321);
  for (int i = 0; i < 25; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(12));
    opt.alphabet = {"a", "b", "c"};
    XmlTree t = gen.Generate(opt);
    Evaluator direct(t);
    LoopEvaluator loops(t);
    for (const char* f : formulas) {
      NodePtr phi = N(f);
      LExprPtr translated = IntersectToLoopNormalForm(phi);
      ASSERT_TRUE(translated) << f;
      NodeSet expected = direct.EvalNode(phi);
      const std::vector<bool>& actual = loops.EvalAll(translated);
      for (NodeId v = 0; v < t.size(); ++v) {
        ASSERT_EQ(expected.Contains(v), actual[v])
            << f << " at node " << v << " of " << TreeToText(t);
      }
    }
  }
}

TEST(IntersectProduct, RejectsComplementAndFor) {
  EXPECT_EQ(IntersectToLoopNormalForm(N("<down - up>")), nullptr);
  EXPECT_EQ(IntersectToLoopNormalForm(N("<for $i in down return .[is $i]>")), nullptr);
  EXPECT_NE(IntersectToLoopNormalForm(N("<down & up>")), nullptr);
}

// End-to-end: satisfiability of CoreXPath(*, ∩) formulas through the
// product + loop-sat pipeline, with witnesses verified by the evaluator.
TEST(IntersectProduct, SatisfiabilityPipeline) {
  struct Case {
    const char* formula;
    bool satisfiable;
  };
  const Case cases[] = {
      {"<down* & down/down>", true},
      {"<down & down/down>", false},          // A child cannot be a grandchild.
      {"<down[a] & down[b]>", false},         // Single-labeled targets.
      {"<down*[a] & down*[a]/down>", true},
      {"<(down & down)[a]> and every(down, not(a))", false},
      {"eq(down & down[a], down[b])", false},
      {"<(up & up[r])/down[c]>", true},
      {"loop((down & down[a])/up)", true},
  };
  for (const Case& c : cases) {
    LExprPtr e = IntersectToLoopNormalForm(N(c.formula));
    ASSERT_TRUE(e) << c.formula;
    SatResult r = LoopSatisfiable(e);
    ASSERT_NE(r.status, SolveStatus::kResourceLimit) << c.formula;
    EXPECT_EQ(r.status == SolveStatus::kSat, c.satisfiable) << c.formula;
    if (r.status == SolveStatus::kSat) {
      Evaluator ev(*r.witness);
      EXPECT_TRUE(ev.SatisfiedSomewhere(N(c.formula)))
          << c.formula << " witness " << TreeToText(*r.witness);
    }
  }
}

// Lemma 15 size bounds: |π∩|_S = |π₁|_S · |π₂|_S.
TEST(IntersectProduct, ProductStateCount) {
  PathAutoPtr a = IntersectPathToAutomaton(P("down/down"));
  PathAutoPtr b = IntersectPathToAutomaton(P("down*"));
  ASSERT_TRUE(a && b);
  PathAutoPtr prod = ProductAutomaton(a, b);
  EXPECT_EQ(prod->num_states, a->num_states * b->num_states);
}

// Lemma 16 vs Lemma 17: the DAG ("let"-style) size of the translation is
// exponential in the unbounded case but polynomial for bounded ∩-depth.
TEST(IntersectProduct, DagSizeGrowth) {
  // Bounded depth 1: chains (a₁ ∩ a₂)/(a₃ ∩ a₄)/… grow polynomially.
  std::vector<int64_t> bounded_sizes;
  for (int n = 1; n <= 4; ++n) {
    std::string s = "<";
    for (int i = 0; i < n; ++i) s += (i ? "/" : "") + std::string("(down & down[a])");
    s += ">";
    NodePtr phi = N(s);
    EXPECT_EQ(IntersectionDepth(phi), 1);
    bounded_sizes.push_back(DagSizeOf(IntersectToLoopNormalForm(phi)));
  }
  // Roughly linear growth: size(n) ≤ size(1) · n · c.
  EXPECT_LE(bounded_sizes[3], bounded_sizes[0] * 4 * 3);

  // Nested depth n: ((a ∩ a) ∩ a) ∩ … grows faster (state products).
  std::vector<int64_t> nested_sizes;
  for (int n = 1; n <= 4; ++n) {
    std::string s = "down & down[a]";
    for (int i = 1; i < n; ++i) s = "(" + s + ") & (down & down[a])";
    nested_sizes.push_back(DagSizeOf(IntersectToLoopNormalForm(N("<" + s + ">"))));
  }
  // Superlinear: each nesting multiplies the state space.
  EXPECT_GT(nested_sizes[3], 8 * nested_sizes[0]);
  EXPECT_GT(nested_sizes[3], 2 * nested_sizes[2]);
}

}  // namespace
}  // namespace xpc
