#include "xpc/tree/xml_tree.h"

#include <gtest/gtest.h>

#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"

namespace xpc {
namespace {

TEST(XmlTree, SingleRoot) {
  XmlTree t("a");
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(0), kNoNode);
  EXPECT_EQ(t.first_child(0), kNoNode);
  EXPECT_EQ(t.label(0), "a");
  EXPECT_TRUE(t.IsSingleLabeled());
  EXPECT_EQ(t.Height(), 0);
}

TEST(XmlTree, ChildOrder) {
  XmlTree t("r");
  NodeId a = t.AddChild(0, "a");
  NodeId b = t.AddChild(0, "b");
  NodeId c = t.AddChild(0, "c");
  EXPECT_EQ(t.first_child(0), a);
  EXPECT_EQ(t.last_child(0), c);
  EXPECT_EQ(t.next_sibling(a), b);
  EXPECT_EQ(t.next_sibling(b), c);
  EXPECT_EQ(t.next_sibling(c), kNoNode);
  EXPECT_EQ(t.prev_sibling(c), b);
  EXPECT_EQ(t.prev_sibling(a), kNoNode);
  EXPECT_EQ(t.Children(0), (std::vector<NodeId>{a, b, c}));
}

TEST(XmlTree, DepthHeightAncestor) {
  XmlTree t("r");
  NodeId a = t.AddChild(0, "a");
  NodeId b = t.AddChild(a, "b");
  NodeId c = t.AddChild(b, "c");
  EXPECT_EQ(t.Depth(c), 3);
  EXPECT_EQ(t.Height(), 3);
  EXPECT_TRUE(t.IsAncestorOrSelf(a, c));
  EXPECT_TRUE(t.IsAncestorOrSelf(c, c));
  EXPECT_FALSE(t.IsAncestorOrSelf(c, a));
}

TEST(XmlTree, MultiLabels) {
  XmlTree t(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(t.HasLabel(0, "a"));
  EXPECT_TRUE(t.HasLabel(0, "b"));
  EXPECT_FALSE(t.HasLabel(0, "c"));
  EXPECT_FALSE(t.IsSingleLabeled());
  EXPECT_EQ(t.LabelSet(), (std::vector<std::string>{"a", "b"}));
}

TEST(XmlTree, FcnsView) {
  XmlTree t("r");
  NodeId a = t.AddChild(0, "a");
  NodeId b = t.AddChild(0, "b");
  NodeId c = t.AddChild(a, "c");
  EXPECT_EQ(t.FcnsParent(0), kNoNode);
  EXPECT_EQ(t.FcnsParentEdge(0), XmlTree::FcnsEdge::kNone);
  EXPECT_EQ(t.FcnsParent(a), 0);
  EXPECT_EQ(t.FcnsParentEdge(a), XmlTree::FcnsEdge::kFirstChild);
  EXPECT_EQ(t.FcnsParent(b), a);
  EXPECT_EQ(t.FcnsParentEdge(b), XmlTree::FcnsEdge::kNextSibling);
  EXPECT_EQ(t.FcnsParent(c), a);
  EXPECT_EQ(t.FcnsParentEdge(c), XmlTree::FcnsEdge::kFirstChild);
}

TEST(TreeText, RoundTrip) {
  const std::string text = "book(chapter(section,section(image)),chapter)";
  auto r = ParseTree(text);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().size(), 6);
  EXPECT_EQ(TreeToText(r.value()), text);
}

TEST(TreeText, MultiLabelRoundTrip) {
  const std::string text = "r(a+c0,b+c0+c1)";
  auto r = ParseTree(text);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().HasLabel(1, "c0"));
  EXPECT_TRUE(r.value().HasLabel(2, "c1"));
  EXPECT_EQ(TreeToText(r.value()), text);
}

TEST(TreeText, Whitespace) {
  auto r = ParseTree(" a ( b , c ) ");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().size(), 3);
}

TEST(TreeText, Errors) {
  EXPECT_FALSE(ParseTree("").ok());
  EXPECT_FALSE(ParseTree("a(b").ok());
  EXPECT_FALSE(ParseTree("a(b,)").ok());
  EXPECT_FALSE(ParseTree("a)b").ok());
  EXPECT_FALSE(ParseTree("a(b))").ok());
}

TEST(TreeText, XmlOutput) {
  auto r = ParseTree("a(b)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(TreeToXml(r.value()), "<a>\n  <b/>\n</a>\n");
}

TEST(TreeGenerator, SizeAndDeterminism) {
  TreeGenerator g1(42), g2(42);
  TreeGenOptions opt;
  opt.num_nodes = 25;
  XmlTree t1 = g1.Generate(opt);
  XmlTree t2 = g2.Generate(opt);
  EXPECT_EQ(t1.size(), 25);
  EXPECT_EQ(TreeToText(t1), TreeToText(t2));
}

TEST(TreeGenerator, Chain) {
  TreeGenerator g(7);
  XmlTree t = g.GenerateChain(9, {"p", "q"});
  EXPECT_EQ(t.size(), 10);
  EXPECT_EQ(t.Height(), 9);
  for (NodeId n = 0; n < t.size(); ++n) {
    EXPECT_LE(t.Children(n).size(), 1u);
  }
}

TEST(TreeGenerator, MultiLabelOption) {
  TreeGenerator g(3);
  TreeGenOptions opt;
  opt.num_nodes = 40;
  opt.max_extra_labels = 2;
  XmlTree t = g.Generate(opt);
  bool saw_multi = false;
  for (NodeId n = 0; n < t.size(); ++n) saw_multi = saw_multi || t.labels(n).size() > 1;
  EXPECT_TRUE(saw_multi);
}

TEST(EnumerateTrees, CatalanCounts) {
  // Shapes with n nodes = Catalan(n-1): 1, 1, 2, 5, 14.
  EXPECT_EQ(EnumerateShapes(1, "a").size(), 1u);
  EXPECT_EQ(EnumerateShapes(2, "a").size(), 1u);
  EXPECT_EQ(EnumerateShapes(3, "a").size(), 2u);
  EXPECT_EQ(EnumerateShapes(4, "a").size(), 5u);
  EXPECT_EQ(EnumerateShapes(5, "a").size(), 14u);
}

TEST(EnumerateTrees, LabeledCount) {
  // 2 shapes of size 3 × 2^3 labelings = 16.
  auto all = EnumerateTrees(3, {"a", "b"});
  EXPECT_EQ(all.size(), 16u);
  // All distinct.
  std::set<std::string> texts;
  for (const auto& t : all) texts.insert(TreeToText(t));
  EXPECT_EQ(texts.size(), 16u);
}

}  // namespace
}  // namespace xpc
