#include "xpc/common/stats.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "xpc/automata/dfa.h"
#include "xpc/automata/nfa.h"
#include "xpc/common/arena.h"
#include "xpc/core/session.h"
#include "xpc/core/solver.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/sat/downward_sat.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/xpath/parser.h"

namespace xpc {
namespace {

// Direct Stats methods always work; the free hooks (StatsAdd / StatsGaugeMax
// / StatsTimer) compile to no-ops under -DXPC_STATS=OFF. Tests that observe
// hook-recorded values scale their expectations by this.
constexpr bool kHooksCompiledIn = XPC_STATS_ENABLED != 0;

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

// --- Registry ----------------------------------------------------------

TEST(StatsRegistry, NamesRoundTripAndAreUnique) {
  std::vector<std::string> seen;
  for (int i = 0; i < kNumMetrics; ++i) {
    Metric m = static_cast<Metric>(i);
    const MetricInfo& info = MetricInfoOf(m);
    ASSERT_NE(info.name, nullptr);
    for (const std::string& prior : seen) EXPECT_NE(prior, info.name);
    seen.push_back(info.name);

    Metric back;
    ASSERT_TRUE(MetricFromName(info.name, &back)) << info.name;
    EXPECT_EQ(back, m);
  }
  Metric ignored;
  EXPECT_FALSE(MetricFromName("no.such.metric", &ignored));
}

// --- Collector semantics ----------------------------------------------

TEST(Stats, CounterGaugeTimerBasics) {
  Stats s;
  s.Add(Metric::kSatLoopItems, 3);
  s.Add(Metric::kSatLoopItems);
  s.GaugeMax(Metric::kSatPeakExploredStates, 10);
  s.GaugeMax(Metric::kSatPeakExploredStates, 7);  // Lower: must not shrink.
  s.AddTimer(Metric::kSatLoop, 250);
  s.AddTimer(Metric::kSatLoop, 750);

  StatsSnapshot snap = s.Snapshot();
  EXPECT_EQ(snap.value(Metric::kSatLoopItems), 4);
  EXPECT_EQ(snap.value(Metric::kSatPeakExploredStates), 10);
  EXPECT_EQ(snap.value(Metric::kSatLoop), 1000);
  EXPECT_EQ(snap.timer_calls(Metric::kSatLoop), 2);
  EXPECT_FALSE(snap.Empty());

  s.Reset();
  EXPECT_TRUE(s.Snapshot().Empty());
}

TEST(Stats, ConcurrentUpdatesLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  Stats shared;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, t] {
      // Each thread reports through the hooks against the same collector,
      // exactly as ContainsBatch workers do.
      ScopedStatsSink sink(&shared);
      for (int i = 0; i < kIters; ++i) {
        StatsAdd(Metric::kSatLoopItems);
        StatsGaugeMax(Metric::kSatPeakExploredStates, t * kIters + i);
        shared.AddTimer(Metric::kSatLoop, 1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  StatsSnapshot snap = shared.Snapshot();
  EXPECT_EQ(snap.value(Metric::kSatLoopItems), kHooksCompiledIn ? kThreads * kIters : 0);
  EXPECT_EQ(snap.value(Metric::kSatPeakExploredStates),
            kHooksCompiledIn ? kThreads * kIters - 1 : 0);
  // AddTimer went through the collector directly: never compiled out.
  EXPECT_EQ(snap.value(Metric::kSatLoop), kThreads * kIters);
  EXPECT_EQ(snap.timer_calls(Metric::kSatLoop), kThreads * kIters);
}

TEST(Stats, NestedSinksFoldIntoParent) {
  Stats outer;
  {
    ScopedStatsSink outer_sink(&outer);
    StatsAdd(Metric::kAtaStates, 5);
    Stats inner;
    {
      ScopedStatsSink inner_sink(&inner);
      StatsAdd(Metric::kAtaStates, 7);
      StatsGaugeMax(Metric::kAtaPeakStates, 7);
    }
    // The nested scope recorded into `inner` only...
    EXPECT_EQ(inner.Snapshot().value(Metric::kAtaStates), kHooksCompiledIn ? 7 : 0);
  }
  // ...but its deltas were folded into the outer collector on exit:
  // counters sum, gauges take the max.
  StatsSnapshot snap = outer.Snapshot();
  EXPECT_EQ(snap.value(Metric::kAtaStates), kHooksCompiledIn ? 12 : 0);
  EXPECT_EQ(snap.value(Metric::kAtaPeakStates), kHooksCompiledIn ? 7 : 0);
}

TEST(Stats, HooksAreNoOpsWithoutASink) {
  ASSERT_EQ(Stats::Current(), nullptr);
  StatsAdd(Metric::kSatLoopItems, 100);  // Must not crash or leak anywhere.
  StatsGaugeMax(Metric::kSatPeakExploredStates, 100);
  { StatsTimer timer(Metric::kSatLoop); }
}

TEST(StatsSnapshot, MergeFromSumsCountersAndMaxesGauges) {
  Stats a, b;
  a.Add(Metric::kSatLoopItems, 2);
  a.GaugeMax(Metric::kSatPeakExploredStates, 9);
  a.AddTimer(Metric::kSatLoop, 100);
  b.Add(Metric::kSatLoopItems, 3);
  b.GaugeMax(Metric::kSatPeakExploredStates, 4);
  b.AddTimer(Metric::kSatLoop, 50);

  StatsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.value(Metric::kSatLoopItems), 5);
  EXPECT_EQ(merged.value(Metric::kSatPeakExploredStates), 9);
  EXPECT_EQ(merged.value(Metric::kSatLoop), 150);
  EXPECT_EQ(merged.timer_calls(Metric::kSatLoop), 2);
}

TEST(StatsSnapshot, JsonContainsEveryRegisteredMetric) {
  Stats s;
  s.GaugeMax(Metric::kAutomataPeakBlowupPct, 350);
  std::string json = s.Snapshot().ToJson();
  for (int i = 0; i < kNumMetrics; ++i) {
    const MetricInfo& info = MetricInfoOf(static_cast<Metric>(i));
    EXPECT_NE(json.find(std::string("\"") + info.name + "\""), std::string::npos)
        << info.name;
  }
  EXPECT_NE(json.find("\"determinization_blowup\": 3.5"), std::string::npos) << json;
}

// The automata-substrate counters added with the indexed-NFA overhaul
// (closure cache hits/misses, product pairs explored, Hopcroft splits)
// report through the same hooks: driven here by a small ε-NFA whose minimal
// DFA needs a refinement split, and compiled out with XPC_STATS=OFF like
// every other metric (the OFF build runs this test expecting all zeros).
TEST(Stats, AutomataSubstrateCountersReport) {
  Stats s;
  {
    ScopedStatsSink sink(&s);
    // Words over {a, b} of length ≥ 2: the minimal DFA has 3 states, so
    // Hopcroft must split the non-accepting block at least once. Acceptance
    // goes through an ε-edge so the closure memo actually materializes.
    Nfa nfa(2, 4);
    nfa.SetInitial(0);
    for (int a = 0; a < 2; ++a) {
      nfa.AddTransition(0, a, 1);
      nfa.AddTransition(1, a, 2);
      nfa.AddTransition(2, a, 2);
    }
    nfa.AddTransition(2, Nfa::kEpsilon, 3);
    nfa.SetAccepting(3);
    (void)nfa.EpsilonClosure(0);
    Dfa dfa = Dfa::Determinize(nfa);
    Dfa min = dfa.Minimize();
    EXPECT_FALSE(Dfa::IsEmptyProduct(dfa, min));
    EXPECT_TRUE(dfa.EquivalentTo(min));
  }
  StatsSnapshot snap = s.Snapshot();
  if (kHooksCompiledIn) {
    EXPECT_GT(snap.value(Metric::kAutomataClosureCacheMisses), 0);
    EXPECT_GT(snap.value(Metric::kAutomataClosureCacheHits), 0);
    EXPECT_GT(snap.value(Metric::kAutomataProductPairsExplored), 0);
    EXPECT_GT(snap.value(Metric::kAutomataHopcroftSplits), 0);
  } else {
    EXPECT_EQ(snap.value(Metric::kAutomataClosureCacheMisses), 0);
    EXPECT_EQ(snap.value(Metric::kAutomataClosureCacheHits), 0);
    EXPECT_EQ(snap.value(Metric::kAutomataProductPairsExplored), 0);
    EXPECT_EQ(snap.value(Metric::kAutomataHopcroftSplits), 0);
  }
}

TEST(Stats, SatEngineCountersReport) {
  Stats s;
  {
    ScopedStatsSink sink(&s);
    // A parallel downward run: each worklist generation counts one pop per
    // dirty type, interned summaries invalidate their dependents, and with
    // sat_threads = 2 over a 3-type free schema at least one round fans
    // out (which must not change the verdict — asserted at length by the
    // SatReference suites).
    DownwardSatOptions opts;
    opts.sat_threads = 2;
    SatResult down = DownwardSatisfiable(N("<down*[a and <down[b]>]>"), opts);
    EXPECT_EQ(down.status, SolveStatus::kSat);
    // A loop-sat run: every distinct state relation entering the interning
    // tables counts, and pool growth pops its worklist.
    SatResult loop = LoopSatisfiable(ToLoopNormalForm(N("eq(down*[a], right*[a])")));
    EXPECT_EQ(loop.status, SolveStatus::kSat);
  }
  StatsSnapshot snap = s.Snapshot();
  if (kHooksCompiledIn) {
    EXPECT_GT(snap.value(Metric::kSatWorklistPops), 0);
    EXPECT_GT(snap.value(Metric::kSatDepsInvalidated), 0);
    EXPECT_GT(snap.value(Metric::kSatParallelRounds), 0);
    EXPECT_GT(snap.value(Metric::kStatRelInterned), 0);
  } else {
    EXPECT_EQ(snap.value(Metric::kSatWorklistPops), 0);
    EXPECT_EQ(snap.value(Metric::kSatDepsInvalidated), 0);
    EXPECT_EQ(snap.value(Metric::kSatParallelRounds), 0);
    EXPECT_EQ(snap.value(Metric::kStatRelInterned), 0);
  }
}

// --- Runtime kill switch ----------------------------------------------

TEST(Stats, DisabledHooksRecordNothing) {
  Stats s;
  ScopedStatsSink sink(&s);
  Stats::SetEnabled(false);
  StatsAdd(Metric::kSatLoopItems, 5);
  StatsGaugeMax(Metric::kSatPeakExploredStates, 5);
  { StatsTimer timer(Metric::kSatLoop); }
  Stats::SetEnabled(true);
  EXPECT_TRUE(s.Snapshot().Empty());
}

// Telemetry must never influence an answer: the same queries decided with
// stats on and off give identical verdicts, and with stats off the attached
// snapshot is deterministically empty. (The XPC_STATS=OFF compile-out path
// is covered by building the whole suite with -DXPC_STATS=OFF.)
TEST(Stats, VerdictsIdenticalWithStatsOnAndOff) {
  const std::pair<const char*, const char*> kQueries[] = {
      {"down/down", "down/down*"},
      {"down*[Image]", "down*"},
      {"down[a]/up[b]", "down[a and b]/up"},
  };
  const char* kNodes[] = {"a and not(a)", "<down*[Image]> and <down[Section]>"};

  for (bool enabled : {true, false}) {
    Stats::SetEnabled(enabled);
    Solver solver;
    for (const auto& [alpha, beta] : kQueries) {
      ContainmentResult r = solver.Contains(P(alpha), P(beta));
      Stats::SetEnabled(true);
      Solver reference;
      ContainmentResult want = reference.Contains(P(alpha), P(beta));
      Stats::SetEnabled(enabled);
      EXPECT_EQ(r.verdict, want.verdict) << alpha << " vs " << beta;
      EXPECT_EQ(r.engine, want.engine) << alpha << " vs " << beta;
      if (!enabled) {
        EXPECT_TRUE(r.stats.Empty()) << alpha << " vs " << beta;
      }
    }
    for (const char* phi : kNodes) {
      SatResult r = Solver().NodeSatisfiable(N(phi));
      if (!enabled) {
        EXPECT_TRUE(r.stats.Empty()) << phi;
      }
    }
  }
  Stats::SetEnabled(true);
}

// --- Result snapshots ---------------------------------------------------

TEST(Stats, SolverResultsCarryCostProfile) {
  Solver solver;
  ContainmentResult r = solver.Contains(P("down*[Image]"), P("down*"));
  SatResult s = solver.NodeSatisfiable(N("<down*[Image]>"));
  if (!kHooksCompiledIn) {
    // Compiled out: snapshots are deterministically all-zero.
    EXPECT_TRUE(r.stats.Empty());
    EXPECT_TRUE(s.stats.Empty());
    return;
  }
  EXPECT_FALSE(r.stats.Empty());
  // The facade timer brackets every solve.
  EXPECT_GE(r.stats.timer_calls(Metric::kSolverSolve), 1);
  EXPECT_FALSE(s.stats.Empty());
  EXPECT_GE(s.stats.timer_calls(Metric::kSolverSolve), 1);
}

// Memory-layout accounting (PR 8): with the data-oriented layout on, an
// engine run reports the arena it worked out of (bytes reserved as a gauge,
// one reset per arena retired) and the small bitsets it placed inline; with
// XPC_ARENA=0 no arena is installed and every Bits owns a heap block, so
// all three metrics must stay zero.
TEST(Stats, LayoutMetricsAccountArenaAndInlineBits) {
  struct LayoutGuard {
    bool entry = ArenaEnabled();
    ~LayoutGuard() { SetArenaEnabled(entry); }
  } guard;
  NodePtr phi = N("<down*[a and <down[b]>]>");

  StatsSnapshot legs[2];
  for (int leg = 0; leg < 2; ++leg) {
    SetArenaEnabled(leg == 0);
    Stats collector;
    {
      ScopedStatsSink sink(&collector);
      SatResult r = DownwardSatisfiable(phi);
      ASSERT_EQ(r.status, SolveStatus::kSat);
    }
    legs[leg] = collector.Snapshot();
  }

  if (!kHooksCompiledIn) {
    EXPECT_EQ(legs[0].value(Metric::kArenaResets), 0);
    return;
  }
  EXPECT_GE(legs[0].value(Metric::kArenaResets), 1);
  EXPECT_GT(legs[0].value(Metric::kArenaBytesReserved), 0);
  EXPECT_GE(legs[0].value(Metric::kBitsInlineHits), 1);

  EXPECT_EQ(legs[1].value(Metric::kArenaResets), 0);
  EXPECT_EQ(legs[1].value(Metric::kArenaBytesReserved), 0);
  EXPECT_EQ(legs[1].value(Metric::kBitsInlineHits), 0);
}

// --- Session integration ------------------------------------------------

// The unified telemetry (session.* metrics) must agree exactly with the
// Session's pre-existing internal accounting (SessionStats).
TEST(Stats, SessionTelemetryMatchesInternalAccounting) {
  Session session;
  PathPtr a = P("down*[Image]");
  PathPtr b = P("down*");

  session.Contains(a, b);             // miss
  session.Contains(a, b);             // hit
  session.Contains(P("down*[Image]"), P("down*"));  // hit via interning
  session.NodeSatisfiable(N("<down[a]>"));          // miss
  session.NodeSatisfiable(N("<down[a]>"));          // hit

  SessionStats internal = session.stats();
  StatsSnapshot unified = session.telemetry();

  EXPECT_EQ(unified.value(Metric::kSessionContainmentHits), internal.containment.hits);
  EXPECT_EQ(unified.value(Metric::kSessionContainmentMisses),
            internal.containment.misses);
  EXPECT_EQ(unified.value(Metric::kSessionContainmentEvictions),
            internal.containment.evictions);
  EXPECT_EQ(unified.value(Metric::kSessionSatHits), internal.sat.hits);
  EXPECT_EQ(unified.value(Metric::kSessionSatMisses), internal.sat.misses);
  EXPECT_EQ(unified.value(Metric::kSessionAutomataHits), internal.automata.hits);
  EXPECT_EQ(unified.value(Metric::kSessionAutomataMisses), internal.automata.misses);
  EXPECT_EQ(unified.value(Metric::kSessionDfaHits), internal.dfa.hits);
  EXPECT_EQ(unified.value(Metric::kSessionDfaMisses), internal.dfa.misses);

  // Sanity on the absolute numbers for this exact workload.
  EXPECT_EQ(internal.containment.hits, 2);
  EXPECT_EQ(internal.containment.misses, 1);
  EXPECT_EQ(internal.sat.hits, 1);
  EXPECT_EQ(internal.sat.misses, 1);

  // The unified view also folds in engine work from the uncached solves
  // (hook-recorded, so only when compiled in).
  if (kHooksCompiledIn) {
    EXPECT_GE(unified.timer_calls(Metric::kSolverSolve), 2);
  }

  session.ResetStats();
  EXPECT_TRUE(session.telemetry().Empty());
}

TEST(Stats, SessionBatchTelemetryCountsQueriesAndDedup) {
  Session session;
  PathPtr a = P("down/down");
  PathPtr b = P("down/down*");
  std::vector<std::pair<PathPtr, PathPtr>> queries = {{a, b}, {a, b}, {a, b}};
  session.ContainsBatch(queries);

  StatsSnapshot unified = session.telemetry();
  SessionStats internal = session.stats();
  EXPECT_EQ(unified.value(Metric::kSessionBatchQueries), internal.batch_queries);
  EXPECT_EQ(unified.value(Metric::kSessionBatchDeduped), internal.batch_deduped);
  EXPECT_EQ(internal.batch_queries, 3);
  EXPECT_EQ(internal.batch_deduped, 2);
}

}  // namespace
}  // namespace xpc
