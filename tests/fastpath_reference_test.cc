// Differential battery for the PTIME fast paths (src/xpc/classify/).
//
// The dispatcher's claim (SolverOptions::fast_paths) is that routing a
// classified-tractable query to a fast path changes the engine stamp and
// nothing else: same verdict as the full engines, a genuine witness on
// kSat, and — unlike the full engines — *no* resource-limit answers on the
// fast path's own fragment. This file checks that claim on hundreds of
// seeded in-fragment instances per tractable fragment:
//
//   * chain suites generate downward-chain queries BY CONSTRUCTION (a local
//     generator that only emits label conjunctions around at most one
//     ↓ / ↓* / self spine), so the classifier must route every single case;
//   * vertical suites draw from the fuzz generator's VerticalConjunctive
//     preset (which can step just outside the fragment, e.g. ↑ under ↓*)
//     and require a high routed quota, checking the fallback stamp on the
//     rest;
//   * the full-engine leg runs the same facade with fast_paths = false.
//     Schema-relativized comparisons cap the full pipeline's budgets and
//     skip resource-limited references (the Prop-6 encoding can explode on
//     adversarial schemas — that incompleteness is exactly why the fast
//     paths exist), with a quota asserting the comparison is not hollow.
//
// Every failure message carries the case seed; re-run one case with
//   XPC_FP_SEED=<seed> XPC_FP_CASES=1 ./xpc_fastpath_tests

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "xpc/classify/profile.h"
#include "xpc/core/solver.h"
#include "xpc/edtd/conformance.h"
#include "xpc/edtd/edtd.h"
#include "xpc/edtd/encode.h"
#include "xpc/eval/evaluator.h"
#include "xpc/fuzz/generator.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/sat/downward_sat.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/translate/intersect_product.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

constexpr uint64_t kDefaultBaseSeed = 0xfa57ba77ULL;

uint64_t BaseSeed() {
  if (const char* env = std::getenv("XPC_FP_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefaultBaseSeed;
}

int Cases(int dflt) {
  if (const char* env = std::getenv("XPC_FP_CASES")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return dflt;
}

bool FastStamped(const SatResult& r) { return r.engine.rfind("fastpath-", 0) == 0; }

/// Facade with the fast paths on. Witness verification is off so the
/// asserts below validate witnesses themselves (a bad witness must fail the
/// test, not be silently demoted to kResourceLimit).
SolverOptions FastOn() {
  SolverOptions o;
  o.verify_witnesses = false;
  return o;
}

/// Facade with the fast paths off and capped full-pipeline budgets: the
/// reference leg must terminate promptly even on schemas where the Prop-6
/// encoding blows up (it returns kResourceLimit there, which the suites
/// skip under a quota).
SolverOptions FastOff() {
  SolverOptions o;
  o.fast_paths = false;
  o.verify_witnesses = false;
  o.loop.max_items = 4000;
  o.loop.max_pool = 1000;
  o.downward.max_inst_paths = 8000;
  o.downward.max_summaries = 20000;
  o.downward.max_atoms = 20000;
  return o;
}

/// Downward-chain queries by construction: a conjunction of up to two
/// labels and at most one ⟨spine⟩, where the spine is 1–4 ↓ / ↓* / self
/// steps with label-conjunction qualifiers. Everything this emits is in
/// fast path A's fragment, so the classifier must route 100% of it. Label
/// conjunctions repeat draws from a 3-letter alphabet, so conflicting
/// demands (→ unsat) arise naturally.
class ChainGen {
 public:
  explicit ChainGen(uint64_t seed) : rng_(seed) {}

  NodePtr Gen() {
    NodePtr n = rng_.NextBelow(3) == 0 ? LabelConj() : nullptr;
    if (rng_.NextBelow(4) != 0) {
      NodePtr some = Some(GenSpine());
      n = n ? And(n, some) : some;
    }
    return n ? n : True();
  }

 private:
  PathPtr GenSpine() {
    PathPtr p = GenStep();
    const int extra = static_cast<int>(rng_.NextBelow(4));
    for (int i = 0; i < extra; ++i) p = Seq(p, GenStep());
    return p;
  }

  PathPtr GenStep() {
    PathPtr step;
    switch (rng_.NextBelow(5)) {
      case 0:
      case 1: step = Ax(Axis::kChild); break;
      case 2:
      case 3: step = AxStar(Axis::kChild); break;
      default: step = Self(); break;
    }
    if (rng_.NextBelow(2) == 0) step = Filter(step, LabelConj());
    return step;
  }

  NodePtr LabelConj() {
    NodePtr n = Label(RandLabel());
    if (rng_.NextBelow(4) == 0) n = And(n, Label(RandLabel()));
    return n;
  }

  std::string RandLabel() {
    switch (rng_.NextBelow(3)) {
      case 0: return "a";
      case 1: return "b";
      default: return "c";
    }
  }

  TreeGenerator rng_;
};

/// Asserts the fast leg's half of the contract on a routed query: stamped,
/// decisive (fast paths are complete on their fragments), and carrying a
/// genuine — and conforming, when a schema is given — witness on kSat.
void CheckFastLeg(const NodePtr& phi, const SatResult& fast, const Edtd* edtd) {
  ASSERT_TRUE(FastStamped(fast)) << "routed query ran " << fast.engine;
  ASSERT_NE(fast.status, SolveStatus::kResourceLimit)
      << fast.engine << " gave up on its own fragment";
  if (fast.status == SolveStatus::kSat) {
    ASSERT_TRUE(fast.witness.has_value()) << fast.engine << " kSat without witness";
    Evaluator ev(*fast.witness);
    ASSERT_TRUE(ev.SatisfiedSomewhere(phi))
        << fast.engine << " witness does not satisfy the formula: "
        << TreeToText(*fast.witness);
    if (edtd != nullptr) {
      ASSERT_TRUE(Conforms(*fast.witness, *edtd))
          << fast.engine << " witness does not conform: " << TreeToText(*fast.witness);
    }
  }
}

// ======================================================================
// Fast path A: downward chains.
// ======================================================================

TEST(FastPathReference, ChainFreeSchemaMatchesFullEngine) {
  const uint64_t base_seed = BaseSeed();
  const int cases = Cases(500);
  std::printf("[fastpath-reference] chain/free: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  int sat = 0, unsat = 0;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    ChainGen gen(seed);
    NodePtr phi = gen.Gen();
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));

    // By construction in the fragment — the classifier must agree.
    FragmentProfile profile = ClassifyNode(phi);
    ASSERT_TRUE(profile.downward_chain) << profile.Summary();
    ASSERT_EQ(SelectFastPath(profile, nullptr), FastPathRoute::kDownwardChain);

    SatResult fast = Solver(FastOn()).NodeSatisfiable(phi);
    ASSERT_EQ(fast.engine, "fastpath-chain");
    CheckFastLeg(phi, fast, nullptr);
    if (HasFatalFailure()) return;

    SatResult full = Solver(FastOff()).NodeSatisfiable(phi);
    ASSERT_FALSE(FastStamped(full)) << "fast_paths=false still routed: " << full.engine;
    ASSERT_NE(full.status, SolveStatus::kResourceLimit)
        << "full engine " << full.engine << " indecisive on a schema-free chain";
    ASSERT_EQ(fast.status, full.status)
        << fast.engine << " vs " << full.engine << " (fast paths off)";
    (fast.status == SolveStatus::kSat ? sat : unsat)++;
  }
  std::printf("[fastpath-reference] chain/free: %d sat, %d unsat\n", sat, unsat);
  // Both verdicts must be exercised, or the agreement check is hollow.
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
}

TEST(FastPathReference, ChainArbitraryEdtdsMatchFullEngine) {
  const uint64_t base_seed = BaseSeed() ^ 0xc4a10000ULL;
  const int cases = Cases(500);
  std::printf("[fastpath-reference] chain/edtd: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  int sat = 0, unsat = 0, compared = 0;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    ChainGen gen(seed);
    NodePtr phi = gen.Gen();
    // Fast path A promises correctness on ANY schema: draw unconstrained
    // EDTDs (duplicates, disjunctions, unrealizable types included).
    FuzzGen schema_gen(seed * 2 + 1);
    Edtd edtd = schema_gen.GenEdtd(EdtdGenOptions{});
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));

    FragmentProfile profile = ClassifyNode(phi);
    SchemaClass schema = ClassifySchema(edtd);
    ASSERT_EQ(SelectFastPath(profile, &schema), FastPathRoute::kDownwardChain)
        << profile.Summary() << " / " << schema.Summary();

    SatResult fast = Solver(FastOn()).NodeSatisfiable(phi, edtd);
    ASSERT_EQ(fast.engine, "fastpath-chain+edtd");
    CheckFastLeg(phi, fast, &edtd);
    if (HasFatalFailure()) return;
    (fast.status == SolveStatus::kSat ? sat : unsat)++;

    // Chains are downward, so the capped reference is the native-EDTD
    // downward engine via the facade; skip the rare starvations.
    SatResult full = Solver(FastOff()).NodeSatisfiable(phi, edtd);
    ASSERT_FALSE(FastStamped(full)) << full.engine;
    if (full.status == SolveStatus::kResourceLimit) continue;
    ++compared;
    ASSERT_EQ(fast.status, full.status)
        << fast.engine << " vs " << full.engine << " (fast paths off)";
  }
  std::printf("[fastpath-reference] chain/edtd: %d sat, %d unsat, %d compared\n",
              sat, unsat, compared);
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
  EXPECT_GE(compared, cases / 2) << "too many indecisive references";
}

// ======================================================================
// Fast path B: vertical conjunctive queries.
// ======================================================================

TEST(FastPathReference, VerticalFreeSchemaMatchesFullEngine) {
  const uint64_t base_seed = BaseSeed() ^ 0x3e700000ULL;
  const int cases = Cases(700);
  std::printf("[fastpath-reference] vertical/free: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  int routed = 0, fell_back = 0, sat = 0, unsat = 0, compared = 0;
  ExprGenOptions o = ExprGenOptions::VerticalConjunctive();
  o.max_ops = 6;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    FuzzGen gen(seed);
    NodePtr phi = gen.GenNode(o);
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));

    FragmentProfile profile = ClassifyNode(phi);
    FastPathRoute route = SelectFastPath(profile, nullptr);
    SatResult fast = Solver(FastOn()).NodeSatisfiable(phi);
    if (route == FastPathRoute::kNone) {
      // The preset can step just outside the fragment (↑ under ↓*); those
      // cases pin the other half of the stamp contract.
      ++fell_back;
      ASSERT_FALSE(FastStamped(fast)) << "unrouted query ran " << fast.engine;
      continue;
    }
    ++routed;
    CheckFastLeg(phi, fast, nullptr);
    if (HasFatalFailure()) return;
    (fast.status == SolveStatus::kSat ? sat : unsat)++;

    SatResult full = Solver(FastOff()).NodeSatisfiable(phi);
    ASSERT_FALSE(FastStamped(full)) << full.engine;
    if (full.status == SolveStatus::kResourceLimit) continue;
    ++compared;
    ASSERT_EQ(fast.status, full.status)
        << fast.engine << " vs " << full.engine << " (fast paths off)";
  }
  std::printf("[fastpath-reference] vertical/free: %d routed (%d sat, %d unsat, "
              "%d compared), %d fallbacks\n",
              routed, sat, unsat, compared, fell_back);
  EXPECT_GE(routed, (cases * 5) / 7) << "generator routed-rate regressed";
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
  EXPECT_GE(compared, routed / 2) << "too many indecisive references";
}

TEST(FastPathReference, VerticalLinearEdtdsMatchFullEngine) {
  const uint64_t base_seed = BaseSeed() ^ 0x3e7d0000ULL;
  const int cases = Cases(700);
  std::printf("[fastpath-reference] vertical/edtd: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  int routed = 0, fell_back = 0, sat = 0, unsat = 0, compared = 0;
  ExprGenOptions o = ExprGenOptions::VerticalConjunctive();
  o.max_ops = 6;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    FuzzGen gen(seed);
    NodePtr phi = gen.GenNode(o);
    // Fast path B's precondition: duplicate-free, disjunction-free content.
    EdtdGenOptions eo;
    eo.linear_content = true;
    Edtd edtd = gen.GenEdtd(eo);
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));

    FragmentProfile profile = ClassifyNode(phi);
    SchemaClass schema = ClassifySchema(edtd);
    ASSERT_TRUE(schema.duplicate_free && schema.disjunction_free)
        << "linear_content emitted " << schema.Summary();
    FastPathRoute route = SelectFastPath(profile, &schema);
    if (route == FastPathRoute::kNone) {
      // Only the stamp is under test on a fallback, so starve the full
      // pipeline's budgets: at default ones the Prop-6 encoding can run for
      // minutes on schema-relativized ↑-under-↓* draws.
      ++fell_back;
      SolverOptions starved = FastOn();
      starved.loop.max_items = 50;
      starved.loop.max_pool = 50;
      SatResult fast = Solver(starved).NodeSatisfiable(phi, edtd);
      ASSERT_FALSE(FastStamped(fast)) << "unrouted query ran " << fast.engine;
      continue;
    }
    ++routed;
    SatResult fast = Solver(FastOn()).NodeSatisfiable(phi, edtd);
    ASSERT_NE(fast.engine.find("+edtd"), std::string::npos) << fast.engine;
    CheckFastLeg(phi, fast, &edtd);
    if (HasFatalFailure()) return;
    (fast.status == SolveStatus::kSat ? sat : unsat)++;

    // Reference leg. Downward star-free queries get the native-EDTD
    // downward engine; the rest go through the Prop-6 encoding into
    // loop-sat, guarded by DAG size (the encoding can explode — skip).
    SatResult full;
    full.status = SolveStatus::kResourceLimit;
    std::string full_name = "(skipped)";
    if (profile.fragment.IsDownward() && !profile.fragment.uses_star) {
      DownwardSatOptions d;
      d.max_inst_paths = 8000;
      d.max_summaries = 20000;
      d.max_atoms = 20000;
      full = DownwardSatisfiableWithEdtd(phi, edtd, d);
      full_name = "downward-sat+edtd";
    } else {
      NodePtr encoded = EncodeEdtdSatisfiability(phi, edtd);
      LExprPtr e = ToLoopNormalForm(encoded);
      if (e != nullptr && DagSizeOf(e) <= 400) {
        LoopSatOptions lo;
        lo.max_items = 4000;
        lo.max_pool = 1000;
        full = LoopSatisfiable(e, lo);
        full_name = "loop-sat+edtd-encoding";
      }
    }
    if (full.status == SolveStatus::kResourceLimit) continue;
    ++compared;
    ASSERT_EQ(fast.status, full.status) << fast.engine << " vs " << full_name;
  }
  std::printf("[fastpath-reference] vertical/edtd: %d routed (%d sat, %d unsat, "
              "%d compared), %d fallbacks\n",
              routed, sat, unsat, compared, fell_back);
  EXPECT_GE(routed, (cases * 5) / 7) << "generator routed-rate regressed";
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
  EXPECT_GE(compared, routed / 3) << "too many indecisive references";
}

// ======================================================================
// Forced fallbacks: out-of-fragment queries must never reach a fast path.
// ======================================================================

TEST(FastPathReference, OutOfFragmentQueriesNeverReachAFastPath) {
  const uint64_t base_seed = BaseSeed() ^ 0xfa110000ULL;
  const int cases = Cases(300);
  std::printf("[fastpath-reference] fallback: base seed 0x%llx, %d cases\n",
              static_cast<unsigned long long>(base_seed), cases);
  ExprGenOptions o = ExprGenOptions::RegularFriendly();
  o.max_ops = 5;
  for (int i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    FuzzGen gen(seed);
    NodePtr phi = gen.GenNode(o);
    // Push any in-fragment draw out of it; ¬ alone disqualifies both paths.
    if (SelectFastPath(ClassifyNode(phi), nullptr) != FastPathRoute::kNone) {
      phi = Not(phi);
    }
    SCOPED_TRACE("case " + std::to_string(i) + " seed " + std::to_string(seed) +
                 ": " + ToString(phi));
    FragmentProfile profile = ClassifyNode(phi);
    ASSERT_EQ(SelectFastPath(profile, nullptr), FastPathRoute::kNone)
        << profile.Summary();
    ASSERT_FALSE(profile.downward_chain);
    ASSERT_FALSE(profile.vertical_conjunctive);

    SatResult r = Solver(FastOff()).NodeSatisfiable(phi);
    ASSERT_FALSE(FastStamped(r)) << r.engine;
    // fast_paths=true must classify, decline, and fall through identically.
    SatResult with_classifier = Solver(FastOn()).NodeSatisfiable(phi);
    ASSERT_FALSE(FastStamped(with_classifier)) << with_classifier.engine;
    ASSERT_EQ(with_classifier.status, r.status);
  }
}

}  // namespace
}  // namespace xpc
