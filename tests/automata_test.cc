#include <gtest/gtest.h>

#include "xpc/automata/dfa.h"
#include "xpc/automata/nfa.h"
#include "xpc/automata/regex.h"

namespace xpc {
namespace {

RegexPtr Rx(const std::string& s) {
  auto r = ParseRegex(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

TEST(Regex, ParsePrintRoundTrip) {
  const char* cases[] = {
      "a",       "a b",          "a | b",     "(a | b)* c",
      "a+",      "a?",           "epsilon",   "Chapter+",
      "(Section | Paragraph | Image)+",       "a, b, c",
  };
  for (const char* c : cases) {
    RegexPtr r = Rx(c);
    ASSERT_TRUE(r) << c;
    RegexPtr again = Rx(RegexToString(r));
    EXPECT_EQ(RegexToString(r), RegexToString(again)) << c;
  }
}

TEST(Regex, ParseErrors) {
  EXPECT_FALSE(ParseRegex("").ok());
  EXPECT_FALSE(ParseRegex("(a").ok());
  EXPECT_FALSE(ParseRegex("a |").ok());
  EXPECT_FALSE(ParseRegex("*a").ok());
}

TEST(Regex, SymbolsAndSize) {
  RegexPtr r = Rx("(a | b)* a c");
  EXPECT_EQ(RegexSymbols(r), (std::vector<std::string>{"a", "b", "c"}));
  // Union(a,b)=3, star=4, concat a: +1+1=6, concat c: +1+1=8.
  EXPECT_EQ(RegexSize(r), 8);
}

std::vector<int> W(std::initializer_list<int> w) { return std::vector<int>(w); }

TEST(Nfa, CompiledRegexAcceptance) {
  std::vector<std::string> sigma = {"a", "b", "c"};
  Nfa nfa = CompileRegex(Rx("(a | b)* c"), sigma);
  EXPECT_TRUE(nfa.Accepts(W({2})));
  EXPECT_TRUE(nfa.Accepts(W({0, 1, 0, 2})));
  EXPECT_FALSE(nfa.Accepts(W({})));
  EXPECT_FALSE(nfa.Accepts(W({2, 2})));
  EXPECT_FALSE(nfa.Accepts(W({0})));
}

TEST(Nfa, EpsilonAndEmpty) {
  std::vector<std::string> sigma = {"a"};
  Nfa eps = CompileRegex(Rx("epsilon"), sigma);
  EXPECT_TRUE(eps.Accepts(W({})));
  EXPECT_FALSE(eps.Accepts(W({0})));
  Nfa empty = CompileRegex(Rx("empty"), sigma);
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(eps.IsEmpty());
}

TEST(Nfa, ShortestWord) {
  std::vector<std::string> sigma = {"a", "b"};
  Nfa nfa = CompileRegex(Rx("a a b | a b"), sigma);
  auto [found, word] = nfa.ShortestWord();
  ASSERT_TRUE(found);
  EXPECT_TRUE(nfa.Accepts(word));
}

TEST(Nfa, ShortestWordIsMinimalAcrossEpsilonBranches) {
  // Regression: BFS ordered by transition insertion used to return "aa"
  // (found via the branch inserted first) even though the ε-branch accepts
  // the shorter "b". A true 0-1 BFS must report a length-1 word.
  Nfa nfa(2, 4);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 0, 1);             // 0 -a-> 1
  nfa.AddTransition(1, 0, 2);             // 1 -a-> 2 (accepting)
  nfa.AddTransition(0, Nfa::kEpsilon, 3); // 0 -ε-> 3
  nfa.AddTransition(3, 1, 2);             // 3 -b-> 2
  nfa.SetAccepting(2);
  auto [found, word] = nfa.ShortestWord();
  ASSERT_TRUE(found);
  ASSERT_EQ(word.size(), 1u);
  EXPECT_EQ(word, std::vector<int>({1}));
  EXPECT_TRUE(nfa.Accepts(word));
}

TEST(Nfa, RemoveEpsilons) {
  std::vector<std::string> sigma = {"a", "b"};
  Nfa nfa = CompileRegex(Rx("(a b)* | b?"), sigma);
  Nfa clean = nfa.RemoveEpsilons();
  for (const auto& t : clean.transitions()) {
    EXPECT_NE(t.symbol, Nfa::kEpsilon);
  }
  const std::vector<std::vector<int>> words = {{},     {0, 1}, {0, 1, 0, 1}, {1},
                                               {0},    {1, 1}, {0, 1, 0}};
  for (const auto& w : words) {
    EXPECT_EQ(nfa.Accepts(w), clean.Accepts(w));
  }
}

TEST(Dfa, DeterminizeMatchesNfa) {
  std::vector<std::string> sigma = {"a", "b"};
  Nfa nfa = CompileRegex(Rx("(a | b)* a b"), sigma);
  Dfa dfa = Dfa::Determinize(nfa);
  // Exhaustive check over all words of length <= 6.
  for (int len = 0; len <= 6; ++len) {
    for (int code = 0; code < (1 << len); ++code) {
      std::vector<int> w;
      for (int i = 0; i < len; ++i) w.push_back((code >> i) & 1);
      EXPECT_EQ(nfa.Accepts(w), dfa.Accepts(w)) << "len " << len << " code " << code;
    }
  }
}

TEST(Dfa, MinimizeCanonical) {
  std::vector<std::string> sigma = {"a", "b"};
  // "(a|b)* a (a|b)": words whose second-to-last symbol is 'a' → minimal DFA
  // has 4 states.
  Nfa nfa = CompileRegex(Rx("(a | b)* a (a | b)"), sigma);
  Dfa min = Dfa::Determinize(nfa).Minimize();
  EXPECT_EQ(min.num_states(), 4);
  EXPECT_TRUE(min.EquivalentTo(Dfa::Determinize(nfa)));
}

TEST(Dfa, ComplementAndProducts) {
  std::vector<std::string> sigma = {"a", "b"};
  Dfa d1 = Dfa::Determinize(CompileRegex(Rx("a (a | b)*"), sigma));
  Dfa d2 = Dfa::Determinize(CompileRegex(Rx("(a | b)* b"), sigma));
  Dfa both = d1.IntersectWith(d2);
  EXPECT_TRUE(both.Accepts(W({0, 1})));
  EXPECT_FALSE(both.Accepts(W({0})));
  EXPECT_FALSE(both.Accepts(W({1, 1})));
  Dfa either = d1.UnionWith(d2);
  EXPECT_TRUE(either.Accepts(W({1, 1})));
  EXPECT_FALSE(either.Accepts(W({})));
  Dfa neither = either.Complement();
  EXPECT_TRUE(neither.Accepts(W({})));
  EXPECT_FALSE(neither.Accepts(W({0})));
  // Double complement is the identity.
  EXPECT_TRUE(neither.Complement().EquivalentTo(either));
}

TEST(Dfa, EmptinessAndEquivalence) {
  std::vector<std::string> sigma = {"a"};
  Dfa all = Dfa::Determinize(CompileRegex(Rx("a*"), sigma));
  Dfa none = all.Complement();
  EXPECT_TRUE(none.IsEmpty());
  EXPECT_FALSE(all.IsEmpty());
  Dfa aplus = Dfa::Determinize(CompileRegex(Rx("a a* | epsilon"), sigma));
  EXPECT_TRUE(aplus.EquivalentTo(all));
}

}  // namespace
}  // namespace xpc
