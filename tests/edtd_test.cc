#include "xpc/edtd/edtd.h"

#include <gtest/gtest.h>

#include "xpc/edtd/conformance.h"
#include "xpc/edtd/encode.h"
#include "xpc/eval/evaluator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

// The book EDTD from Section 2.2.
const char* kBookEdtd = R"(
  Book := Chapter+
  Chapter := Section+
  Section := (Section | Paragraph | Image)+
  Paragraph := epsilon
  Image := epsilon
)";

// The sections-nested-at-most-3 EDTD from Section 2.1 (not a plain DTD).
const char* kSectionsEdtd = R"(
  s1 -> s := s2?
  s2 -> s := s3?
  s3 -> s := epsilon
)";

Edtd MustEdtd(const std::string& text) {
  auto r = Edtd::Parse(text);
  EXPECT_TRUE(r.ok()) << r.error();
  return r.value();
}

XmlTree MustTree(const std::string& s) {
  auto r = ParseTree(s);
  EXPECT_TRUE(r.ok()) << r.error();
  return r.value();
}

TEST(Edtd, ParseBasics) {
  Edtd book = MustEdtd(kBookEdtd);
  EXPECT_EQ(book.root_type(), "Book");
  EXPECT_EQ(book.types().size(), 5u);
  EXPECT_TRUE(book.IsPlainDtd());
  EXPECT_GT(book.Size(), 0);

  Edtd sections = MustEdtd(kSectionsEdtd);
  EXPECT_FALSE(sections.IsPlainDtd());
  EXPECT_EQ(sections.Mu("s2"), "s");
}

TEST(Edtd, ParseErrors) {
  EXPECT_FALSE(Edtd::Parse("").ok());
  EXPECT_FALSE(Edtd::Parse("a = b").ok());
  EXPECT_FALSE(Edtd::Parse("a := undefined_label").ok());
  EXPECT_FALSE(Edtd::Parse("a := (b").ok());
}

TEST(Conformance, BookPositive) {
  Edtd book = MustEdtd(kBookEdtd);
  XmlTree t = MustTree(
      "Book(Chapter(Section(Paragraph,Image)),Chapter(Section(Section(Image))))");
  EXPECT_TRUE(Conforms(t, book));
  auto typing = WitnessTyping(t, book);
  ASSERT_EQ(typing.size(), static_cast<size_t>(t.size()));
  EXPECT_EQ(typing[0], "Book");
  EXPECT_EQ(typing[1], "Chapter");
}

TEST(Conformance, BookNegative) {
  Edtd book = MustEdtd(kBookEdtd);
  // Chapter directly under Book must contain sections, not images.
  EXPECT_FALSE(Conforms(MustTree("Book(Chapter(Image))"), book));
  // Root must be Book.
  EXPECT_FALSE(Conforms(MustTree("Chapter(Section(Image))"), book));
  // Sections cannot be empty.
  EXPECT_FALSE(Conforms(MustTree("Book(Chapter(Section))"), book));
  EXPECT_TRUE(WitnessTyping(MustTree("Book(Chapter(Image))"), book).empty());
}

TEST(Conformance, ExtendedDtdDepthLimit) {
  Edtd sections = MustEdtd(kSectionsEdtd);
  EXPECT_TRUE(Conforms(MustTree("s"), sections));
  EXPECT_TRUE(Conforms(MustTree("s(s)"), sections));
  EXPECT_TRUE(Conforms(MustTree("s(s(s))"), sections));
  // Depth 4 nesting is rejected — inexpressible by any plain DTD.
  EXPECT_FALSE(Conforms(MustTree("s(s(s(s)))"), sections));
}

TEST(Conformance, MultiLabeledNeverConforms) {
  Edtd book = MustEdtd(kBookEdtd);
  EXPECT_FALSE(Conforms(MustTree("Book+Chapter"), book));
}

TEST(Conformance, SampleConformingTree) {
  Edtd book = MustEdtd(kBookEdtd);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto [ok, tree] = SampleConformingTree(book, 40, seed);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(Conforms(tree, book)) << TreeToText(tree);
  }
}

TEST(Conformance, SampleDetectsDeadTypes) {
  // 'a' requires a 'b' child forever: no finite tree conforms.
  Edtd dead = MustEdtd("a := b\nb := b");
  auto [ok, tree] = SampleConformingTree(dead, 30, 1);
  EXPECT_FALSE(ok);
}

TEST(Encode, GuardAxes) {
  auto phi = ParseNode("<down[p]> and not(<up>)").value();
  NodePtr guarded = GuardAxes(phi, Label("s"));
  EXPECT_EQ(ToString(guarded), "<down[not(s)][p]> and not(<up[not(s)]>)");
  auto path = ParsePath("down*").value();
  EXPECT_EQ(ToString(GuardAxes(path, Label("s"))), "(down[not(s)])*");
}

TEST(Encode, NonRestrictiveEdtd) {
  Edtd relax = NonRestrictiveEdtd({"a", "b"}, "root_s");
  EXPECT_EQ(relax.root_type(), "root_s");
  // Root has exactly one child; any {a,b}-tree below.
  EXPECT_TRUE(Conforms(MustTree("root_s(a(b,a))"), relax));
  EXPECT_TRUE(Conforms(MustTree("root_s(b)"), relax));
  EXPECT_FALSE(Conforms(MustTree("root_s"), relax));
  EXPECT_FALSE(Conforms(MustTree("root_s(a,b)"), relax));
  EXPECT_FALSE(Conforms(MustTree("a(b)"), relax));
}

// Proposition 6 round-trip on concrete trees: the encoded formula is
// satisfied at the root of a decorated witness tree iff the original formula
// is satisfiable in some conforming tree. We verify the two directions on
// hand-built instances by model checking with the ground-truth evaluator.
TEST(Encode, EdtdSatisfiabilityEncoding) {
  Edtd sections = MustEdtd(kSectionsEdtd);
  // φ = ⟨↓[s]⟩ — "some child is a section" — satisfiable w.r.t. the EDTD.
  NodePtr phi = ParseNode("<down[s]>").value();
  NodePtr encoded = EncodeEdtdSatisfiability(phi, sections);

  // Build the witness tree for s(s): typing s1(s2); state components follow
  // the ε-free content NFAs. We search the small space of decorations
  // instead of hand-computing states.
  bool found = false;
  const int total_states = [&] {
    int total = 0;
    for (int i = 0; i < 3; ++i) total += sections.ContentNfa(i).RemoveEpsilons().num_states();
    return total;
  }();
  for (int g_root = 0; g_root < total_states && !found; ++g_root) {
    for (int g_child = 0; g_child < total_states && !found; ++g_child) {
      XmlTree t(WitnessLabel("s1", g_root));
      t.AddChild(0, WitnessLabel("s2", g_child));
      Evaluator ev(t);
      found = ev.EvalNode(encoded).Contains(t.root());
    }
  }
  EXPECT_TRUE(found) << "no decoration of s1(s2) satisfies the encoding";

  // A wrong typing (root type s2) must never satisfy the encoding.
  for (int g_root = 0; g_root < total_states; ++g_root) {
    for (int g_child = 0; g_child < total_states; ++g_child) {
      XmlTree t(WitnessLabel("s2", g_root));
      t.AddChild(0, WitnessLabel("s3", g_child));
      Evaluator ev(t);
      EXPECT_FALSE(ev.EvalNode(encoded).Contains(t.root()));
    }
  }
}

}  // namespace
}  // namespace xpc
