#include "xpc/core/solver.h"

#include <tuple>

#include <gtest/gtest.h>

#include "xpc/eval/evaluator.h"
#include "xpc/reduction/reductions.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

Edtd BookEdtd() {
  return Edtd::Parse(R"(
    Book := Chapter+
    Chapter := Section+
    Section := (Section | Paragraph | Image)+
    Paragraph := epsilon
    Image := epsilon
  )").value();
}

TEST(Reductions, DecorationRoundTrip) {
  XmlTree t = ParseTree("a__d0(b__d1,x__d0)").value();
  XmlTree stripped = StripDecoration(t);
  EXPECT_EQ(TreeToText(stripped), "a(b,x)");
  XmlTree t2 = ParseTree("s(a__d0(b__d1))").value();
  EXPECT_EQ(TreeToText(StripDecoration(t2, "s")), "a(b)");
}

TEST(Reductions, ContainmentFormulaShape) {
  NodePtr psi = ContainmentToUnsat(P("down"), P("down*"));
  // ψ = ⟨ᾱ[1]⟩ ∧ ¬⟨β̄[1]⟩.
  ASSERT_EQ(psi->kind, NodeKind::kAnd);
  EXPECT_EQ(psi->child1->kind, NodeKind::kSome);
  EXPECT_EQ(psi->child2->kind, NodeKind::kNot);
}

struct ContainCase {
  const char* alpha;
  const char* beta;
  ContainmentVerdict expected;
};

class SolverContainment : public ::testing::TestWithParam<ContainCase> {};

TEST_P(SolverContainment, Decides) {
  const ContainCase& c = GetParam();
  Solver solver;
  ContainmentResult r = solver.Contains(P(c.alpha), P(c.beta));
  EXPECT_EQ(r.verdict, c.expected)
      << c.alpha << " vs " << c.beta << " engine=" << r.engine
      << (r.counterexample ? " cx=" + TreeToText(*r.counterexample) : "");
  // Every dispatch path must stamp the deciding engine.
  EXPECT_FALSE(r.engine.empty()) << c.alpha << " vs " << c.beta;
  if (r.verdict == ContainmentVerdict::kNotContained) {
    ASSERT_TRUE(r.counterexample.has_value());
    Evaluator ev(*r.counterexample);
    Relation a = ev.EvalPath(P(c.alpha));
    a.SubtractWith(ev.EvalPath(P(c.beta)));
    EXPECT_FALSE(a.Empty()) << TreeToText(*r.counterexample);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SolverContainment,
    ::testing::Values(
        // Basic downward containments.
        ContainCase{"down", "down*", ContainmentVerdict::kContained},
        ContainCase{"down*", "down", ContainmentVerdict::kNotContained},
        ContainCase{"down[a]", "down", ContainmentVerdict::kContained},
        ContainCase{"down", "down[a]", ContainmentVerdict::kNotContained},
        // Filters and booleans.
        ContainCase{"down[a and b]", "down[a]", ContainmentVerdict::kContained},
        ContainCase{"down[a or b]", "down[a]", ContainmentVerdict::kNotContained},
        ContainCase{"down[not(not(a))]", "down[a]", ContainmentVerdict::kContained},
        // Upward/sideways.
        ContainCase{"up/down", "up/down | .", ContainmentVerdict::kContained},
        ContainCase{"right/left", ".", ContainmentVerdict::kContained},
        ContainCase{".", "right/left", ContainmentVerdict::kNotContained},
        ContainCase{"up*/down*", "down*/up*", ContainmentVerdict::kNotContained},
        // ∩ (2-EXPTIME pipeline).
        ContainCase{"down & down/down", "down[a]", ContainmentVerdict::kContained},
        ContainCase{"down* & down/down", "down/down", ContainmentVerdict::kContained},
        ContainCase{"down/down", "down* & down*/down", ContainmentVerdict::kContained},
        // ≈ in filters.
        ContainCase{"down[eq(down, down[a])]", "down[<down[a]>]",
                    ContainmentVerdict::kContained},
        ContainCase{"down[<down[a]>]", "down[eq(down, down[a])]",
                    ContainmentVerdict::kContained},
        // Transitive closure.
        ContainCase{"(down/down)*", "down*", ContainmentVerdict::kContained},
        ContainCase{"down*", "(down/down)*", ContainmentVerdict::kNotContained},
        ContainCase{"(down[a])*/down[b]", "down*[a or b]", ContainmentVerdict::kContained},
        // Equal expressions.
        ContainCase{"down | .", ". | down", ContainmentVerdict::kContained}));

TEST(Solver, EquivalenceQueries) {
  Solver solver;
  EXPECT_EQ(solver.Equivalent(P("down | down/down"), P("down/down | down")).verdict,
            ContainmentVerdict::kContained);
  EXPECT_EQ(solver.Equivalent(P("down*"), P(". | down/down*")).verdict,
            ContainmentVerdict::kContained);
  EXPECT_EQ(solver.Equivalent(P("down*"), P("down+")).verdict,
            ContainmentVerdict::kNotContained);
  // α ∩ β ≡ α − (α − β) (Section 7): the − side has no elementary
  // decision procedure, so the solver can only report kUnknown here (the
  // semantic identity itself is property-tested in the Figure 1 bench).
  EXPECT_EQ(solver.Equivalent(P("down* & down/down"),
                              P("down* - (down* - down/down)")).verdict,
            ContainmentVerdict::kUnknown);
}

TEST(Solver, ForLoopIntersectionIdentity) {
  // for $i in α return β[. is $i] ≡ α ∩ β (Section 2.2) — via bounded
  // search both directions must fail to find a counterexample... the
  // bounded engine cannot *prove* containment, so expect kUnknown, and
  // sanity-check non-containment detection on a falsified variant.
  Solver solver;
  ContainmentResult r = solver.Contains(
      P("for $i in down* return (down/down)[is $i]"), P("down* & down/down"));
  EXPECT_EQ(r.verdict, ContainmentVerdict::kUnknown);  // Bounded: can't prove.
  ContainmentResult r2 = solver.Contains(
      P("for $i in down* return (down/down)[is $i]"), P("down"));
  EXPECT_EQ(r2.verdict, ContainmentVerdict::kNotContained);  // Finds witness.
}

TEST(Solver, ComplementContainment) {
  Solver solver;
  // down+ − down ⊆ down/down+: counterexample-free, but bounded engine
  // cannot prove it → kUnknown. Non-containment IS decidable by search:
  ContainmentResult r = solver.Contains(P("down+ - down/down+"), P("down/down"));
  EXPECT_EQ(r.verdict, ContainmentVerdict::kNotContained);
  ASSERT_TRUE(r.counterexample.has_value());
}

TEST(Solver, WithEdtd) {
  Solver solver;
  Edtd book = BookEdtd();
  // Under the book schema, an image below a chapter is below one of its
  // sections.
  ContainmentResult r1 = solver.Contains(P("down[Chapter]/down*[Image]"),
                                         P("down[Chapter]/down[Section]/down*[Image]"), book);
  EXPECT_EQ(r1.verdict, ContainmentVerdict::kContained) << r1.engine;
  // Without the schema this fails (an Image child directly under Chapter).
  ContainmentResult r2 = solver.Contains(P("down[Chapter]/down*[Image]"),
                                         P("down[Chapter]/down[Section]/down*[Image]"));
  EXPECT_EQ(r2.verdict, ContainmentVerdict::kNotContained);

  // Sections may nest, so "Section child of Section" is nonempty — not
  // contained in the empty path.
  ContainmentResult r3 =
      solver.Contains(P("down*[Section]/down[Section]"), P("down[false]"), book);
  EXPECT_EQ(r3.verdict, ContainmentVerdict::kNotContained) << r3.engine;
  // But "Paragraph with a child" is empty under the schema.
  ContainmentResult r4 = solver.Contains(P("down*[Paragraph]/down"), P("down[false]"), book);
  EXPECT_EQ(r4.verdict, ContainmentVerdict::kContained) << r4.engine;
}

TEST(Solver, SatisfiabilityDispatch) {
  Solver solver;
  // Downward engine for ↓-only ∩ inputs.
  SatResult r1 = solver.NodeSatisfiable(N("<down & down/down>"));
  EXPECT_EQ(r1.status, SolveStatus::kUnsat);
  EXPECT_EQ(r1.engine, "downward-sat");
  // Loop engine for ≈/star inputs.
  SatResult r2 = solver.NodeSatisfiable(N("eq(up/down, .)"));
  EXPECT_EQ(r2.status, SolveStatus::kSat);
  EXPECT_EQ(r2.engine, "loop-sat");
  // Bounded engine for for-loops.
  SatResult r3 = solver.NodeSatisfiable(N("<for $i in down return down[is $i]>"));
  EXPECT_EQ(r3.status, SolveStatus::kSat);
  EXPECT_EQ(r3.engine, "bounded-sat");
  // ⟨for $i in ↓ return .[. is $i]⟩ needs a node that is its own child:
  // unsatisfiable, but the bounded engine cannot prove that.
  SatResult r4 = solver.NodeSatisfiable(N("<for $i in down return .[is $i]>"));
  EXPECT_EQ(r4.status, SolveStatus::kResourceLimit);
}

// ContainmentResult::engine / SatResult::engine must be stamped on every
// dispatch path: all engines, EDTD and non-EDTD, both verdict directions,
// equivalence queries and the nonelementary fall-backs.
TEST(Solver, EngineAlwaysStamped) {
  Solver solver;
  Edtd book = Edtd::Parse(R"(
    Book := Chapter+
    Chapter := Section+
    Section := (Section | Paragraph | Image)+
    Paragraph := epsilon
    Image := epsilon
  )").value();

  // The bool gates the EDTD-relativized run: queries with upward axes go
  // through the Prop. 6 witness-tree encoding, whose output formula is
  // megabytes even for the Book DTD — loop-sat on it far exceeds test
  // budgets, so those pairs exercise the unrelativized path only.
  const std::tuple<const char*, const char*, bool> pairs[] = {
      {"down", "down*", true},                  // downward engine, contained
      {"down*", "down", true},                  // downward engine, counterexample
      {"down[eq(down, .)]", "down", true},      // loop-sat (≈)
      {"up/down", "up/down | .", false},        // loop-sat (upward axes)
      {"down & down/down", "down", true},       // ∩ product pipeline / downward
      {"up* & down*", ".", false},              // non-downward ∩
      {"down+ - down", "down", true},           // bounded search (−)
      {"for $i in down return down[is $i]", "down*", true},  // bounded search (for)
  };
  for (const auto& [a, b, with_edtd] : pairs) {
    ContainmentResult r = solver.Contains(P(a), P(b));
    EXPECT_FALSE(r.engine.empty()) << a << " vs " << b;
    if (with_edtd) {
      ContainmentResult re = solver.Contains(P(a), P(b), book);
      EXPECT_FALSE(re.engine.empty()) << a << " vs " << b << " (edtd)";
    }
  }
  EXPECT_FALSE(solver.Equivalent(P("down*"), P(". | down/down*")).engine.empty());
  EXPECT_FALSE(solver.Equivalent(P("down*"), P("down+")).engine.empty());

  const std::tuple<const char*, bool> formulas[] = {
      {"<down & down/down>", true},                  // downward-sat
      {"eq(up/down, .)", false},                     // loop-sat (up axis: see above)
      {"<for $i in down return down[is $i]>", true}, // bounded-sat
      {"<down - down[a]>", true},                    // bounded-sat (−)
  };
  for (const auto& [f, with_edtd] : formulas) {
    EXPECT_FALSE(solver.NodeSatisfiable(N(f)).engine.empty()) << f;
    if (with_edtd) {
      EXPECT_FALSE(solver.NodeSatisfiable(N(f), book).engine.empty()) << f << " (edtd)";
    }
  }
  EXPECT_FALSE(solver.PathSatisfiable(P("down[a and not(a)]")).engine.empty());
}

TEST(Solver, PathSatisfiability) {
  Solver solver;
  EXPECT_EQ(solver.PathSatisfiable(P("down/up/down")).status, SolveStatus::kSat);
  EXPECT_EQ(solver.PathSatisfiable(P("down[a and not(a)]")).status, SolveStatus::kUnsat);
  Edtd book = BookEdtd();
  EXPECT_EQ(solver.PathSatisfiable(P("down[Book]"), book).status, SolveStatus::kUnsat);
  EXPECT_EQ(solver.PathSatisfiable(P("down[Chapter]"), book).status, SolveStatus::kSat);
}

// Random cross-validation: solver verdicts are consistent with evaluation
// on random trees (soundness spot check: if contained, no random tree may
// violate it).
TEST(Solver, RandomConsistency) {
  const char* pairs[][2] = {
      {"down[a]/down", "down/down"},
      {"down/right", "down"},
      {"up/down*", "up/down* | ."},
      {"down*[a]", "down*"},
      {"down* & down", "down"},
  };
  Solver solver;
  TreeGenerator gen(5150);
  for (auto& pr : pairs) {
    ContainmentResult r = solver.Contains(P(pr[0]), P(pr[1]));
    ASSERT_NE(r.verdict, ContainmentVerdict::kUnknown) << pr[0] << " vs " << pr[1];
    if (r.verdict == ContainmentVerdict::kContained) {
      for (int i = 0; i < 30; ++i) {
        TreeGenOptions opt;
        opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(12));
        opt.alphabet = {"a", "b"};
        XmlTree t = gen.Generate(opt);
        Evaluator ev(t);
        EXPECT_TRUE(ev.ContainedIn(P(pr[0]), P(pr[1])))
            << pr[0] << " ⊈ " << pr[1] << " on " << TreeToText(t);
      }
    }
  }
}

}  // namespace
}  // namespace xpc
