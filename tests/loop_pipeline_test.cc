// Differential tests of the two independent semantics pipelines:
//   (A) the direct denotational Evaluator (Table II), and
//   (B) normal form (Section 3.1) + LOOPS fixpoint evaluation (Lemma 11).
// Agreement of (A) and (B) on random expressions × random trees validates
// both the translation and the excursion-summary machinery that the
// satisfiability engine is built on.

#include <gtest/gtest.h>

#include "xpc/eval/evaluator.h"
#include "xpc/eval/loop_evaluator.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/pathauto/path_automaton.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

XmlTree MustTree(const std::string& s) { return ParseTree(s).value(); }
NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

void ExpectPipelinesAgree(const XmlTree& tree, const NodePtr& phi) {
  Evaluator direct(tree);
  LoopEvaluator loops(tree);
  LExprPtr translated = ToLoopNormalForm(phi);
  ASSERT_TRUE(translated) << ToString(phi);
  NodeSet expected = direct.EvalNode(phi);
  const std::vector<bool>& actual = loops.EvalAll(translated);
  for (NodeId v = 0; v < tree.size(); ++v) {
    EXPECT_EQ(expected.Contains(v), actual[v])
        << ToString(phi) << " at node " << v << " of " << TreeToText(tree);
  }
}

TEST(LoopPipeline, RejectsNonRegularOperators) {
  EXPECT_EQ(ToLoopNormalForm(N("<down & up>")), nullptr);
  EXPECT_EQ(ToLoopNormalForm(N("<down - up>")), nullptr);
  EXPECT_EQ(ToLoopNormalForm(N("<for $i in down return .[is $i]>")), nullptr);
  EXPECT_NE(ToLoopNormalForm(N("eq(down, up)")), nullptr);
}

TEST(LoopPipeline, HandPickedFormulas) {
  XmlTree t = MustTree("r(a(b,c(a)),b(c))");
  const char* formulas[] = {
      "a",
      "true",
      "<down>",
      "<up>",
      "<right>",
      "<left>",
      "<down*[c]>",
      "<up*[r]>",
      "not(<down[a]>)",
      "<down[b]/right[c]>",
      "eq(down, down[a])",
      "eq(down*, .)",
      "loop(down/up)",
      "loop(right/left)",
      "<(down[a] | right)*[c]>",
      "every(down*, a or b or c or r)",
      "<down*[b and not(<right>)]>",
      "<up/up[r]>",
      "<left/left>",
  };
  for (const char* f : formulas) ExpectPipelinesAgree(t, N(f));
}

TEST(LoopPipeline, ChainTrees) {
  // Unary chains exercise the ↓ = ↓₁/→* compilation with no siblings.
  XmlTree t = MustTree("p(q(p(q(p))))");
  const char* formulas[] = {
      "<down[q]/down[p]>", "every(down*, p or q)", "eq(down/down, down*[p]/down[q])",
      "not(<up*[q and not(<up>)]>)",
  };
  for (const char* f : formulas) ExpectPipelinesAgree(t, N(f));
}

TEST(LoopPipeline, WideTrees) {
  // Wide trees exercise the sibling moves.
  XmlTree t = MustTree("r(a,b,a,b,a,b,c)");
  const char* formulas[] = {
      "<right[b]/right[a]>",
      "<left*[a and not(<left>)]>",
      "eq(right/right, right*[a]/right[b])",
      "every(down, <right*> or c)",
      "b and not(<right>)",
  };
  for (const char* f : formulas) ExpectPipelinesAgree(t, N(f));
}

// Random structural property sweep.
class LoopPipelineRandom : public ::testing::TestWithParam<int> {};

TEST_P(LoopPipelineRandom, AgreesOnRandomTrees) {
  const int seed = GetParam();
  TreeGenerator gen(seed * 7919 + 13);
  const char* formulas[] = {
      "<down[a]>",
      "eq(up*/down*, down[a]/right*)",
      "every(down*, a or b)",
      "not(eq(down*, down*[b]))",
      "<(down[a])*[b]>",
      "loop((down | right)*[a]/(up | left)*)",
      "<down*/up*/right>",
      "a and eq(left*, right*)",
      "<(down/right)*>",
      "every((down | right)*, <down> or <right> or true)",
  };
  for (int i = 0; i < 12; ++i) {
    TreeGenOptions opt;
    opt.num_nodes = 1 + static_cast<int>(gen.NextBelow(14));
    opt.alphabet = {"a", "b"};
    XmlTree t = gen.Generate(opt);
    for (const char* f : formulas) ExpectPipelinesAgree(t, N(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopPipelineRandom, ::testing::Range(0, 8));

TEST(LoopPipeline, SomewhereInTree) {
  XmlTree t = MustTree("r(a(b),c)");
  LoopEvaluator loops(t);
  LExprPtr phi = ToLoopNormalForm(N("b and <up[a]>"));
  ASSERT_TRUE(phi);
  EXPECT_TRUE(loops.AtRoot(SomewhereInTree(phi)));
  LExprPtr absent = ToLoopNormalForm(N("c and <up[a]>"));
  EXPECT_FALSE(loops.AtRoot(SomewhereInTree(absent)));
  EXPECT_TRUE(loops.AtRoot(EverywhereInTree(ToLoopNormalForm(N("r or a or b or c")))));
  EXPECT_FALSE(loops.AtRoot(EverywhereInTree(ToLoopNormalForm(N("a or b or c")))));
}

TEST(LoopPipeline, SizesAreLinear) {
  // |translated| is linear in |φ| (Section 3.1 "linear time translation").
  for (int n = 1; n <= 6; ++n) {
    std::string phi = "<down";
    for (int i = 0; i < n; ++i) phi += "/down[a]";
    phi += ">";
    LExprPtr e = ToLoopNormalForm(N(phi));
    ASSERT_TRUE(e);
    EXPECT_LE(SizeOf(e), 40 * (n + 1)) << phi;
  }
}

}  // namespace
}  // namespace xpc
