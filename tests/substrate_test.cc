// Edge-case unit tests for the low-level substrates: Bits, StateRel,
// Relation, and a randomized parser/printer round-trip sweep.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "xpc/common/arena.h"
#include "xpc/common/bits.h"
#include "xpc/eval/relation.h"
#include "xpc/pathauto/state_relation.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {
namespace {

TEST(Bits, WordBoundaries) {
  Bits b(130);  // Crosses two 64-bit word boundaries.
  EXPECT_TRUE(b.None());
  for (int i : {0, 63, 64, 127, 128, 129}) b.Set(i);
  EXPECT_EQ(b.Count(), 6);
  for (int i : {0, 63, 64, 127, 128, 129}) EXPECT_TRUE(b.Get(i));
  EXPECT_FALSE(b.Get(1));
  EXPECT_FALSE(b.Get(126));
  b.Reset(64);
  EXPECT_FALSE(b.Get(64));
  EXPECT_EQ(b.Count(), 5);
}

TEST(Bits, SetOperations) {
  Bits a(70), b(70);
  a.Set(3);
  a.Set(69);
  b.Set(3);
  b.Set(42);
  Bits u = a;
  EXPECT_TRUE(u.UnionWith(b));
  EXPECT_FALSE(u.UnionWith(b));  // Second union changes nothing.
  EXPECT_EQ(u.Count(), 3);
  Bits i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1);
  EXPECT_TRUE(i.Get(3));
  Bits d = a;
  d.SubtractWith(b);
  EXPECT_EQ(d.Count(), 1);
  EXPECT_TRUE(d.Get(69));
  EXPECT_TRUE(i.SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(b));
}

// Contract: every binary Bits kernel demands equally-sized operands — the
// word loops read exactly `nwords_` words from both sides, so a mismatch
// is memory-unsafe, and the kernels assert it in debug builds rather than
// branch in release hot loops. The death checks only bite where asserts
// are compiled in (the Debug/sanitizer CI legs); release builds skip.
TEST(BitsDeathTest, BinaryOpsRejectSizeMismatch) {
#ifdef NDEBUG
  GTEST_SKIP() << "NDEBUG build: size asserts compiled out";
#else
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Bits a(70), b(130);
  b.Set(100);
  EXPECT_DEATH((void)a.UnionWith(b), "size_ == other.size_");
  EXPECT_DEATH((void)a.UnionWithIntersects(b), "size_ == other.size_");
  EXPECT_DEATH((void)a.SubtractWithAny(b), "size_ == other.size_");
  EXPECT_DEATH((void)a.Intersects(b), "size_ == other.size_");
  EXPECT_DEATH((void)a.SubsetOf(b), "size_ == other.size_");
  EXPECT_DEATH(a.IntersectWith(b), "size_ == other.size_");
  EXPECT_DEATH(a.SubtractWith(b), "size_ == other.size_");
#endif
}

// Alignment invariant of DESIGN.md §2.10: word blocks wide enough to reach
// the dispatched kernels (more than one 64-byte cache line) start on a
// cache line, so the vector loads never split lines. Narrower requests
// stay on the cheap 8-byte bump path with no padding — cache density of
// the small Hintikka sets beats an alignment guarantee their inlined
// sweeps never exploit.
TEST(Arena, DispatchWidthBlocksAreCacheLineAligned) {
  Arena arena;
  for (size_t n : {9u, 16u, 31u, 128u}) {
    // Deliberately knock the bump pointer off alignment first.
    arena.Alloc(8);
    uint64_t* w = arena.AllocWords(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(w) % Arena::kWordBlockAlign, 0u)
        << "n=" << n;
    // AllocAligned must also hold across a block refill boundary.
    void* big = arena.AllocAligned(size_t{1} << 18, Arena::kWordBlockAlign);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % Arena::kWordBlockAlign, 0u);
  }
}

TEST(Arena, NarrowWordBlocksStayDense) {
  // Sub-cache-line blocks must pack back to back: padding them would double
  // the footprint of the 3-8 word bitsets that dominate the sat engines.
  Arena arena;
  uint64_t* a = arena.AllocWords(3);
  uint64_t* b = arena.AllocWords(3);
  EXPECT_EQ(b, a + 3);
}

TEST(Bits, HeapBlocksAreCacheLineAligned) {
  // With the arena leg off, dispatched-width Bits fall back to aligned heap
  // blocks; the kernels' alignment expectations must hold there too.
  const bool prev = ArenaEnabled();
  SetArenaEnabled(false);
  for (int size : {577, 992, 4096}) {
    Bits b(size);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b.cwords()) % Arena::kWordBlockAlign,
              0u)
        << "size=" << size;
  }
  SetArenaEnabled(prev);
}

TEST(Bits, ForEachOrderAndHash) {
  Bits a(100);
  a.Set(5);
  a.Set(64);
  a.Set(99);
  std::vector<int> seen;
  a.ForEach([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{5, 64, 99}));
  Bits b(100);
  b.Set(5);
  b.Set(64);
  b.Set(99);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_TRUE(a == b);
  b.Reset(5);
  EXPECT_FALSE(a == b);
}

TEST(StateRel, ComposeAndClosure) {
  StateRel r(4);
  r.Set(0, 1);
  r.Set(1, 2);
  r.Set(2, 3);
  StateRel two = r.Compose(r);
  EXPECT_TRUE(two.Get(0, 2));
  EXPECT_TRUE(two.Get(1, 3));
  EXPECT_FALSE(two.Get(0, 1));
  StateRel closed = r;
  closed.CloseReflexiveTransitive();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(closed.Get(i, i));
  EXPECT_TRUE(closed.Get(0, 3));
  EXPECT_FALSE(closed.Get(3, 0));
}

TEST(StateRel, ClosureWithCycle) {
  StateRel r(3);
  r.Set(0, 1);
  r.Set(1, 0);
  r.CloseReflexiveTransitive();
  EXPECT_TRUE(r.Get(0, 0));
  EXPECT_TRUE(r.Get(0, 1));
  EXPECT_TRUE(r.Get(1, 0));
  EXPECT_FALSE(r.Get(0, 2));
  EXPECT_TRUE(r.Get(2, 2));
}

TEST(Relation, TransposeInvolution) {
  TreeGenerator gen(12);
  TreeGenOptions opt;
  opt.num_nodes = 15;
  XmlTree t = gen.Generate(opt);
  Relation child = Relation::OfAxis(t, Axis::kChild);
  EXPECT_TRUE(child.Transpose().Transpose() == child);
  // parent = transpose(child); left = transpose(right).
  EXPECT_TRUE(Relation::OfAxis(t, Axis::kParent) == child.Transpose());
  EXPECT_TRUE(Relation::OfAxis(t, Axis::kLeft) ==
              Relation::OfAxis(t, Axis::kRight).Transpose());
}

TEST(Relation, ClosureOfFunctionalAxes) {
  TreeGenerator gen(77);
  TreeGenOptions opt;
  opt.num_nodes = 20;
  XmlTree t = gen.Generate(opt);
  // ↓* ∘ ↑* = ancestors-of-common... at least: (n, n) always present and
  // the relation contains the universal pairs through the root.
  Relation down_star = Relation::OfAxis(t, Axis::kChild).ReflexiveTransitiveClosure();
  Relation up_star = Relation::OfAxis(t, Axis::kParent).ReflexiveTransitiveClosure();
  Relation universal = up_star.Compose(down_star);
  EXPECT_EQ(universal.Count(), t.size() * t.size());  // Trees are connected.
  // Identity ⊆ closure.
  for (NodeId n = 0; n < t.size(); ++n) EXPECT_TRUE(down_star.Contains(n, n));
}

// Randomized expression generator for parser/printer fuzzing.
PathPtr RandomPath(TreeGenerator& gen, int depth);

NodePtr RandomNode(TreeGenerator& gen, int depth) {
  if (depth <= 0) {
    switch (gen.NextBelow(3)) {
      case 0: return Label("a");
      case 1: return Label("b");
      default: return True();
    }
  }
  switch (gen.NextBelow(6)) {
    case 0: return Not(RandomNode(gen, depth - 1));
    case 1: return And(RandomNode(gen, depth - 1), RandomNode(gen, depth - 1));
    case 2: return Or(RandomNode(gen, depth - 1), RandomNode(gen, depth - 1));
    case 3: return Some(RandomPath(gen, depth - 1));
    case 4: return PathEq(RandomPath(gen, depth - 1), RandomPath(gen, depth - 1));
    default: return Label("c");
  }
}

PathPtr RandomPath(TreeGenerator& gen, int depth) {
  if (depth <= 0) {
    switch (gen.NextBelow(4)) {
      case 0: return Ax(static_cast<Axis>(gen.NextBelow(4)));
      case 1: return AxStar(static_cast<Axis>(gen.NextBelow(4)));
      case 2: return Self();
      default: return Ax(Axis::kChild);
    }
  }
  switch (gen.NextBelow(7)) {
    case 0: return Seq(RandomPath(gen, depth - 1), RandomPath(gen, depth - 1));
    case 1: return Union(RandomPath(gen, depth - 1), RandomPath(gen, depth - 1));
    case 2: return Filter(RandomPath(gen, depth - 1), RandomNode(gen, depth - 1));
    case 3: return Star(RandomPath(gen, depth - 1));
    case 4: return Intersect(RandomPath(gen, depth - 1), RandomPath(gen, depth - 1));
    case 5: return Complement(RandomPath(gen, depth - 1), RandomPath(gen, depth - 1));
    default: return For("v" + std::to_string(gen.NextBelow(3)),
                        RandomPath(gen, depth - 1),
                        Filter(RandomPath(gen, depth - 1),
                               IsVar("v" + std::to_string(gen.NextBelow(3)))));
  }
}

// Env-gate resolution must be observable: a mistyped XPC_ARENA used to
// latch the default silently. `internal::ArenaEnabledSlow()` re-reads the
// environment on every call, so the test drives resolution directly.
TEST(ArenaGate, ResolutionRecordsEnvOutcome) {
  const char* prev_env = std::getenv("XPC_ARENA");
  const std::string saved = prev_env != nullptr ? prev_env : "";
  const bool had_env = prev_env != nullptr;
  const bool prev_latch = ArenaEnabled();

  ::setenv("XPC_ARENA", "yes-please", 1);
  internal::ArenaEnabledSlow();
  ArenaGateStatus status = ArenaGateState();
  EXPECT_TRUE(status.from_env);
  EXPECT_FALSE(status.recognized);
  EXPECT_EQ(status.resolved, 1);  // Unrecognized keeps the arena leg on.
  EXPECT_TRUE(ArenaEnabled());

  ::setenv("XPC_ARENA", "0", 1);
  internal::ArenaEnabledSlow();
  status = ArenaGateState();
  EXPECT_TRUE(status.from_env);
  EXPECT_TRUE(status.recognized);
  EXPECT_EQ(status.resolved, 0);
  EXPECT_FALSE(ArenaEnabled());

  ::setenv("XPC_ARENA", "1", 1);
  internal::ArenaEnabledSlow();
  status = ArenaGateState();
  EXPECT_TRUE(status.recognized);
  EXPECT_EQ(status.resolved, 1);
  EXPECT_TRUE(ArenaEnabled());

  if (had_env) {
    ::setenv("XPC_ARENA", saved.c_str(), 1);
  } else {
    ::unsetenv("XPC_ARENA");
  }
  SetArenaEnabled(prev_latch);
}

// ArenaGateState() is a pure observer: reading the gate (as
// Session::telemetry() does mid-run) must never overwrite a programmatic
// SetArenaEnabled() — the differential tests flip the latch directly.
TEST(ArenaGate, StateDoesNotClobberProgrammaticLatch) {
  const bool prev_latch = ArenaEnabled();
  SetArenaEnabled(false);
  (void)ArenaGateState();
  EXPECT_FALSE(ArenaEnabled());
  SetArenaEnabled(true);
  (void)ArenaGateState();
  EXPECT_TRUE(ArenaEnabled());
  SetArenaEnabled(prev_latch);
}

TEST(ParserFuzz, PrintParseFixpoint) {
  TreeGenerator gen(31415);
  for (int i = 0; i < 300; ++i) {
    PathPtr p = RandomPath(gen, 1 + static_cast<int>(gen.NextBelow(4)));
    std::string text = ToString(p);
    auto reparsed = ParsePath(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.error();
    EXPECT_EQ(ToString(reparsed.value()), text);
  }
  for (int i = 0; i < 300; ++i) {
    NodePtr n = RandomNode(gen, 1 + static_cast<int>(gen.NextBelow(4)));
    std::string text = ToString(n);
    auto reparsed = ParseNode(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.error();
    EXPECT_EQ(ToString(reparsed.value()), text);
  }
}

}  // namespace
}  // namespace xpc
