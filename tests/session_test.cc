#include "xpc/core/session.h"

#include <gtest/gtest.h>

#include <vector>

#include "xpc/xpath/build.h"
#include "xpc/xpath/interner.h"
#include "xpc/xpath/parser.h"

namespace xpc {
namespace {

PathPtr P(const std::string& s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

NodePtr N(const std::string& s) {
  auto r = ParseNode(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.value();
}

Edtd BookEdtd() {
  return Edtd::Parse(R"(
    Book := Chapter+
    Chapter := Section+
    Section := (Section | Paragraph | Image)+
    Paragraph := epsilon
    Image := epsilon
  )").value();
}

// --- Interner ----------------------------------------------------------

TEST(Interner, StructurallyEqualExpressionsInternToOneNode) {
  ExprInterner interner;
  // Two independent parses of the same text share no pointers...
  PathPtr a = P("down*[Image and not(<down[Section]>)]/up");
  PathPtr b = P("down*[Image and not(<down[Section]>)]/up");
  ASSERT_NE(a.get(), b.get());
  // ...but intern to the same canonical node with the same fingerprint.
  EXPECT_EQ(interner.Intern(a).get(), interner.Intern(b).get());
  EXPECT_EQ(interner.Fingerprint(a), interner.Fingerprint(b));
  EXPECT_NE(interner.Fingerprint(a), 0u);

  // Different structures stay distinct.
  PathPtr c = P("down*[Image]/up");
  EXPECT_NE(interner.Intern(a).get(), interner.Intern(c).get());
  EXPECT_NE(interner.Fingerprint(a), interner.Fingerprint(c));
}

TEST(Interner, SharedSubtermsInternOnce) {
  ExprInterner interner;
  // down[a] occurs in both; the interner must count it once.
  interner.Intern(P("down[a]/down[a]"));
  size_t paths_after_first = interner.num_paths();
  // Interning the same expression again adds nothing.
  interner.Intern(P("down[a]/down[a]"));
  EXPECT_EQ(interner.num_paths(), paths_after_first);
  // A superexpression of an interned expression reuses its canonical parts.
  size_t before = interner.num_paths();
  interner.Intern(P("down[a]/down[a]/down[a]"));
  EXPECT_GT(interner.num_paths(), before);
}

TEST(Interner, NodeExpressions) {
  ExprInterner interner;
  NodePtr a = N("a and <down[b]>");
  NodePtr b = N("a and <down[b]>");
  ASSERT_NE(a.get(), b.get());
  EXPECT_EQ(interner.Intern(a).get(), interner.Intern(b).get());
  EXPECT_EQ(interner.Fingerprint(a), interner.Fingerprint(b));
  EXPECT_NE(interner.Fingerprint(N("a and <down[b]>")), interner.Fingerprint(N("a or <down[b]>")));
}

TEST(Interner, CanonicalNodesPointAtCanonicalChildren) {
  ExprInterner interner;
  PathPtr shared = interner.Intern(P("down[a]"));
  PathPtr seq = interner.Intern(P("down[a]/up"));
  ASSERT_EQ(seq->kind, PathKind::kSeq);
  EXPECT_EQ(seq->left.get(), shared.get());
}

// --- Verdict caches ----------------------------------------------------

TEST(Session, ContainmentCacheHitsOnRepeatAndOnEqualStructure) {
  Session session;
  ContainmentResult r1 = session.Contains(P("down"), P("down*"));
  EXPECT_EQ(r1.verdict, ContainmentVerdict::kContained);
  // Same pointers, then fresh structurally-equal parses: both must hit.
  ContainmentResult r2 = session.Contains(P("down"), P("down*"));
  EXPECT_EQ(r2.verdict, r1.verdict);
  EXPECT_EQ(r2.engine, r1.engine);
  SessionStats s = session.stats();
  EXPECT_EQ(s.containment.misses, 1);
  EXPECT_EQ(s.containment.hits, 1);
  EXPECT_EQ(s.engines.size(), 1u);  // Only the miss ran an engine.
}

TEST(Session, ContainmentOrderMatters) {
  Session session;
  EXPECT_EQ(session.Contains(P("down"), P("down*")).verdict, ContainmentVerdict::kContained);
  EXPECT_EQ(session.Contains(P("down*"), P("down")).verdict, ContainmentVerdict::kNotContained);
  SessionStats s = session.stats();
  EXPECT_EQ(s.containment.misses, 2);  // (α,β) and (β,α) are distinct keys.
}

TEST(Session, SatCacheSharedWithPathSatisfiability) {
  Session session;
  EXPECT_EQ(session.NodeSatisfiable(N("<down[a and not(a)]>")).status, SolveStatus::kUnsat);
  // PathSatisfiable goes through the Prop. 4 reduction α ⇝ ⟨α⟩ and must hit
  // the node-satisfiability entry.
  EXPECT_EQ(session.PathSatisfiable(P("down[a and not(a)]")).status, SolveStatus::kUnsat);
  SessionStats s = session.stats();
  EXPECT_EQ(s.sat.misses, 1);
  EXPECT_EQ(s.sat.hits, 1);
}

TEST(Session, LruEvictionIsBoundedAndCounted) {
  SessionOptions options;
  options.verdict_cache_capacity = 2;
  Session session(options);
  session.Contains(P("down"), P("down*"));    // Entry 1.
  session.Contains(P("up"), P("up*"));        // Entry 2.
  session.Contains(P("right"), P("right*"));  // Evicts entry 1.
  SessionStats s = session.stats();
  EXPECT_EQ(s.containment.evictions, 1);
  // The evicted entry misses again; the still-resident one hits.
  session.Contains(P("down"), P("down*"));
  session.Contains(P("right"), P("right*"));
  s = session.stats();
  EXPECT_EQ(s.containment.misses, 4);
  EXPECT_EQ(s.containment.hits, 1);
}

// --- Invalidation ------------------------------------------------------

TEST(Session, OptionChangeInvalidatesVerdicts) {
  Session session;
  session.Contains(P("down"), P("down*"));
  // Re-setting identical options must NOT clear anything.
  session.SetSolverOptions(session.solver_options());
  session.Contains(P("down"), P("down*"));
  SessionStats s = session.stats();
  EXPECT_EQ(s.containment.hits, 1);
  EXPECT_EQ(s.invalidations, 0);

  SolverOptions changed = session.solver_options();
  changed.prefer_downward_engine = !changed.prefer_downward_engine;
  session.SetSolverOptions(changed);
  session.Contains(P("down"), P("down*"));
  s = session.stats();
  EXPECT_EQ(s.invalidations, 1);
  EXPECT_EQ(s.containment.misses, 2);  // Cold again after the change.
}

TEST(Session, EdtdChangeInvalidatesAndChangesVerdicts) {
  Session session;
  PathPtr alpha = P("down[Chapter]/down*[Image]");
  PathPtr beta = P("down[Chapter]/down[Section]/down*[Image]");
  // Unrestricted trees: not contained.
  EXPECT_EQ(session.Contains(alpha, beta).verdict, ContainmentVerdict::kNotContained);
  // Under the book schema the same query IS contained — the stale verdict
  // must not survive the schema change.
  session.SetEdtd(BookEdtd());
  EXPECT_EQ(session.Contains(alpha, beta).verdict, ContainmentVerdict::kContained);
  // Re-setting the same schema keeps the cache warm.
  session.SetEdtd(BookEdtd());
  EXPECT_EQ(session.Contains(alpha, beta).verdict, ContainmentVerdict::kContained);
  SessionStats s = session.stats();
  EXPECT_EQ(s.invalidations, 1);
  EXPECT_EQ(s.containment.hits, 1);
  // Dropping the schema invalidates again.
  session.ClearEdtd();
  EXPECT_EQ(session.Contains(alpha, beta).verdict, ContainmentVerdict::kNotContained);
  EXPECT_EQ(session.stats().invalidations, 2);
}

// --- Batch API ---------------------------------------------------------

TEST(Session, BatchMatchesSequentialAndDeduplicates) {
  std::vector<std::pair<PathPtr, PathPtr>> queries;
  const char* pairs[][2] = {
      {"down", "down*"},
      {"down*", "down"},
      {"down[a and b]", "down[a]"},
      {"down", "down*"},  // Duplicate of query 0.
      {"right/left", "."},
      {".", "right/left"},
      {"down[a or b]", "down[a]"},
      {"down", "down*"},  // Duplicate again.
      {"up/down", "up/down | ."},
      {"(down/down)*", "down*"},
  };
  for (auto& pr : pairs) queries.emplace_back(P(pr[0]), P(pr[1]));

  SessionOptions options;
  options.batch_threads = 4;
  Session batch_session(options);
  std::vector<ContainmentResult> batch = batch_session.ContainsBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());

  Session seq_session;
  for (size_t i = 0; i < queries.size(); ++i) {
    ContainmentResult expected = seq_session.Contains(queries[i].first, queries[i].second);
    EXPECT_EQ(batch[i].verdict, expected.verdict) << "query " << i;
    EXPECT_FALSE(batch[i].engine.empty()) << "query " << i;
  }

  SessionStats s = batch_session.stats();
  EXPECT_EQ(s.batch_queries, 10);
  EXPECT_EQ(s.batch_deduped, 2);       // The two repeats of query 0.
  EXPECT_EQ(s.containment.misses, 8);  // Eight distinct pairs solved once.

  // A second identical batch is answered entirely from cache.
  std::vector<ContainmentResult> again = batch_session.ContainsBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(again[i].verdict, batch[i].verdict) << "query " << i;
  }
  s = batch_session.stats();
  EXPECT_EQ(s.containment.misses, 8);  // No new engine runs.
  EXPECT_EQ(s.containment.hits, 8);
}

TEST(Session, SingleThreadedBatchWorks) {
  SessionOptions options;
  options.batch_threads = 1;
  Session session(options);
  std::vector<std::pair<PathPtr, PathPtr>> queries = {
      {P("down"), P("down*")},
      {P("down*"), P("down")},
  };
  std::vector<ContainmentResult> r = session.ContainsBatch(queries);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].verdict, ContainmentVerdict::kContained);
  EXPECT_EQ(r[1].verdict, ContainmentVerdict::kNotContained);
}

// --- Artifact caches ---------------------------------------------------

TEST(Session, PathAutomatonCompiledOncePerStructure) {
  Session session;
  PathAutoPtr a = session.CompiledPathAutomaton(P("down*[a]/up"));
  ASSERT_NE(a, nullptr);
  PathAutoPtr b = session.CompiledPathAutomaton(P("down*[a]/up"));
  EXPECT_EQ(a.get(), b.get());  // Same compiled artifact, not a recompile.
  SessionStats s = session.stats();
  EXPECT_EQ(s.automata.misses, 1);
  EXPECT_EQ(s.automata.hits, 1);
  // Unsupported operators (∩) yield nullptr — also cached.
  EXPECT_EQ(session.CompiledPathAutomaton(P("down & down/down")), nullptr);
  EXPECT_EQ(session.CompiledPathAutomaton(P("down & down/down")), nullptr);
  s = session.stats();
  EXPECT_EQ(s.automata.misses, 2);
  EXPECT_EQ(s.automata.hits, 2);
}

TEST(Session, ContentModelDfaMemoized) {
  Session session;
  EXPECT_EQ(session.ContentModelDfa("Book"), nullptr);  // No EDTD yet.
  Edtd book = BookEdtd();
  session.SetEdtd(book);
  auto dfa = session.ContentModelDfa("Book");
  ASSERT_NE(dfa, nullptr);
  // Book := Chapter+ over the abstract alphabet in definition order.
  int chapter = book.TypeIndex("Chapter");
  int image = book.TypeIndex("Image");
  EXPECT_TRUE(dfa->Accepts({chapter}));
  EXPECT_TRUE(dfa->Accepts({chapter, chapter}));
  EXPECT_FALSE(dfa->Accepts({}));
  EXPECT_FALSE(dfa->Accepts({image}));
  EXPECT_EQ(session.ContentModelDfa("Book").get(), dfa.get());
  EXPECT_EQ(session.ContentModelDfa("NoSuchType"), nullptr);
  SessionStats s = session.stats();
  EXPECT_EQ(s.dfa.misses, 1);
  EXPECT_EQ(s.dfa.hits, 1);
}

// --- Misc --------------------------------------------------------------

TEST(Session, EquivalentUsesTwoCacheEntries) {
  Session session;
  EXPECT_EQ(session.Equivalent(P("down | down/down"), P("down/down | down")).verdict,
            ContainmentVerdict::kContained);
  // The reverse direction was cached by the first call.
  EXPECT_EQ(session.Equivalent(P("down/down | down"), P("down | down/down")).verdict,
            ContainmentVerdict::kContained);
  SessionStats s = session.stats();
  EXPECT_EQ(s.containment.misses, 2);
  EXPECT_EQ(s.containment.hits, 2);
}

TEST(Session, StatsToStringMentionsEveryBlock) {
  Session session;
  session.Contains(P("down"), P("down*"));
  std::string text = session.stats().ToString();
  EXPECT_NE(text.find("containment"), std::string::npos);
  EXPECT_NE(text.find("hit rate"), std::string::npos);
  EXPECT_NE(text.find("engine time"), std::string::npos);
}

TEST(LruCacheUnit, BasicSemantics) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_NE(cache.Get(1), nullptr);  // Bump 1; 2 becomes LRU.
  cache.Put(3, 30);                  // Evicts 2.
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1);
  cache.Put(1, 11);  // Overwrite does not evict.
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace xpc
