#include "xpc/eval/relation.h"

namespace xpc {

std::vector<NodeId> NodeSet::ToVector() const {
  std::vector<NodeId> out;
  bits_.ForEach([&](int i) { out.push_back(i); });
  return out;
}

Relation Relation::Identity(int num_nodes) {
  Relation r(num_nodes);
  for (int i = 0; i < num_nodes; ++i) r.Insert(i, i);
  return r;
}

Relation Relation::OfAxis(const XmlTree& tree, Axis axis) {
  Relation r(tree.size());
  for (NodeId n = 0; n < tree.size(); ++n) {
    switch (axis) {
      case Axis::kChild:
        for (NodeId c = tree.first_child(n); c != kNoNode; c = tree.next_sibling(c)) {
          r.Insert(n, c);
        }
        break;
      case Axis::kParent:
        if (tree.parent(n) != kNoNode) r.Insert(n, tree.parent(n));
        break;
      case Axis::kRight:
        if (tree.next_sibling(n) != kNoNode) r.Insert(n, tree.next_sibling(n));
        break;
      case Axis::kLeft:
        if (tree.prev_sibling(n) != kNoNode) r.Insert(n, tree.prev_sibling(n));
        break;
    }
  }
  return r;
}

Relation Relation::Universal(int num_nodes) {
  Relation r(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = 0; j < num_nodes; ++j) r.Insert(i, j);
  }
  return r;
}

bool Relation::Empty() const {
  for (const Bits& row : rows_) {
    if (!row.None()) return false;
  }
  return true;
}

int Relation::Count() const {
  int c = 0;
  for (const Bits& row : rows_) c += row.Count();
  return c;
}

void Relation::UnionWith(const Relation& o) {
  for (int i = 0; i < n_; ++i) rows_[i].UnionWith(o.rows_[i]);
}

void Relation::IntersectWith(const Relation& o) {
  for (int i = 0; i < n_; ++i) rows_[i].IntersectWith(o.rows_[i]);
}

void Relation::SubtractWith(const Relation& o) {
  for (int i = 0; i < n_; ++i) rows_[i].SubtractWith(o.rows_[i]);
}

bool Relation::SubtractWithAny(const Relation& o) {
  bool any = false;
  for (int i = 0; i < n_; ++i) any |= rows_[i].SubtractWithAny(o.rows_[i]);
  return any;
}

Relation Relation::Compose(const Relation& other) const {
  Relation out(n_);
  for (int i = 0; i < n_; ++i) {
    rows_[i].ForEach([&](int j) { out.rows_[i].UnionWith(other.rows_[j]); });
  }
  return out;
}

Relation Relation::Transpose() const {
  Relation out(n_);
  for (int i = 0; i < n_; ++i) {
    rows_[i].ForEach([&](int j) { out.rows_[j].Set(i); });
  }
  return out;
}

Relation Relation::ReflexiveTransitiveClosure() const {
  // Per-source BFS over the successor rows.
  Relation out(n_);
  std::vector<int> stack;
  for (int s = 0; s < n_; ++s) {
    Bits& reach = const_cast<Bits&>(out.rows_[s]);
    stack.clear();
    reach.Set(s);
    stack.push_back(s);
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      rows_[v].ForEach([&](int w) {
        if (!reach.Get(w)) {
          reach.Set(w);
          stack.push_back(w);
        }
      });
    }
  }
  return out;
}

Relation Relation::FilterTargets(const NodeSet& targets) const {
  Relation out = *this;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (out.rows_[i].Get(j) && !targets.Contains(j)) out.rows_[i].Reset(j);
    }
  }
  return out;
}

NodeSet Relation::Domain() const {
  NodeSet s(n_);
  for (int i = 0; i < n_; ++i) {
    if (!rows_[i].None()) s.Insert(i);
  }
  return s;
}

NodeSet Relation::Loop() const {
  NodeSet s(n_);
  for (int i = 0; i < n_; ++i) {
    if (rows_[i].Get(i)) s.Insert(i);
  }
  return s;
}

std::vector<std::pair<NodeId, NodeId>> Relation::ToPairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (int i = 0; i < n_; ++i) {
    rows_[i].ForEach([&](int j) { out.emplace_back(i, j); });
  }
  return out;
}

}  // namespace xpc
