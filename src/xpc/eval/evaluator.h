#ifndef XPC_EVAL_EVALUATOR_H_
#define XPC_EVAL_EVALUATOR_H_

#include <map>
#include <string>

#include "xpc/eval/relation.h"
#include "xpc/tree/xml_tree.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// A variable assignment g: the environment for for-loop variables
/// (Section 7). Maps variable names to nodes.
using VarEnv = std::map<std::string, NodeId>;

/// The ground-truth denotational evaluator: implements ⟦·⟧_PExpr and
/// ⟦·⟧_NExpr exactly as defined in Table II and Sections 2.2 / 7, for the
/// *full* language CoreXPath(≈, ∩, −, for, *), on concrete (possibly
/// multi-labeled) trees.
///
/// This evaluator is the semantic reference against which every decision
/// procedure, translation, and automaton in the library is validated.
class Evaluator {
 public:
  explicit Evaluator(const XmlTree& tree) : tree_(tree) {}

  /// ⟦α⟧_PExpr^{T,g}.
  Relation EvalPath(const PathPtr& path, const VarEnv& env = {}) const;

  /// ⟦φ⟧_NExpr^{T,g}.
  NodeSet EvalNode(const NodePtr& node, const VarEnv& env = {}) const;

  /// Convenience: does some node satisfy φ?
  bool SatisfiedSomewhere(const NodePtr& node) const;

  /// Convenience: ⟦α⟧ ⊆ ⟦β⟧ on this tree?
  bool ContainedIn(const PathPtr& alpha, const PathPtr& beta) const;

 private:
  const XmlTree& tree_;
};

}  // namespace xpc

#endif  // XPC_EVAL_EVALUATOR_H_
