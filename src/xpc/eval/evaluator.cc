#include "xpc/eval/evaluator.h"

namespace xpc {

Relation Evaluator::EvalPath(const PathPtr& path, const VarEnv& env) const {
  const int n = tree_.size();
  switch (path->kind) {
    case PathKind::kAxis:
      return Relation::OfAxis(tree_, path->axis);
    case PathKind::kAxisStar:
      return Relation::OfAxis(tree_, path->axis).ReflexiveTransitiveClosure();
    case PathKind::kSelf:
      return Relation::Identity(n);
    case PathKind::kSeq:
      return EvalPath(path->left, env).Compose(EvalPath(path->right, env));
    case PathKind::kUnion: {
      Relation r = EvalPath(path->left, env);
      r.UnionWith(EvalPath(path->right, env));
      return r;
    }
    case PathKind::kFilter:
      return EvalPath(path->left, env).FilterTargets(EvalNode(path->filter, env));
    case PathKind::kStar:
      return EvalPath(path->left, env).ReflexiveTransitiveClosure();
    case PathKind::kIntersect: {
      Relation r = EvalPath(path->left, env);
      r.IntersectWith(EvalPath(path->right, env));
      return r;
    }
    case PathKind::kComplement: {
      Relation r = EvalPath(path->left, env);
      r.SubtractWith(EvalPath(path->right, env));
      return r;
    }
    case PathKind::kFor: {
      // ⟦for $i in α return β⟧ = {(n, m) | ∃k. (n, k) ∈ ⟦α⟧_g and
      //                                       (n, m) ∈ ⟦β⟧_{g[i ↦ k]}}.
      const Relation in = EvalPath(path->left, env);
      Relation out(n);
      VarEnv extended = env;
      for (NodeId k = 0; k < n; ++k) {
        // Sources that can bind $i to k.
        bool any_source = false;
        for (NodeId src = 0; src < n; ++src) {
          if (in.Contains(src, k)) {
            any_source = true;
            break;
          }
        }
        if (!any_source) continue;
        extended[path->var] = k;
        const Relation body = EvalPath(path->right, extended);
        for (NodeId src = 0; src < n; ++src) {
          if (!in.Contains(src, k)) continue;
          for (NodeId dst = 0; dst < n; ++dst) {
            if (body.Contains(src, dst)) out.Insert(src, dst);
          }
        }
      }
      return out;
    }
  }
  return Relation(n);
}

NodeSet Evaluator::EvalNode(const NodePtr& node, const VarEnv& env) const {
  const int n = tree_.size();
  switch (node->kind) {
    case NodeKind::kLabel: {
      NodeSet s(n);
      for (NodeId i = 0; i < n; ++i) {
        if (tree_.HasLabel(i, node->label)) s.Insert(i);
      }
      return s;
    }
    case NodeKind::kTrue: {
      NodeSet s(n);
      for (NodeId i = 0; i < n; ++i) s.Insert(i);
      return s;
    }
    case NodeKind::kSome:
      return EvalPath(node->path, env).Domain();
    case NodeKind::kNot: {
      NodeSet s = EvalNode(node->child1, env);
      s.Complement();
      return s;
    }
    case NodeKind::kAnd: {
      NodeSet s = EvalNode(node->child1, env);
      s.IntersectWith(EvalNode(node->child2, env));
      return s;
    }
    case NodeKind::kOr: {
      NodeSet s = EvalNode(node->child1, env);
      s.UnionWith(EvalNode(node->child2, env));
      return s;
    }
    case NodeKind::kPathEq: {
      // ⟦α ≈ β⟧ = {n | ∃m. (n, m) ∈ ⟦α⟧ ∩ ⟦β⟧}.
      Relation r = EvalPath(node->path, env);
      r.IntersectWith(EvalPath(node->path2, env));
      return r.Domain();
    }
    case NodeKind::kIsVar: {
      NodeSet s(n);
      auto it = env.find(node->var);
      if (it != env.end()) s.Insert(it->second);
      return s;
    }
  }
  return NodeSet(n);
}

bool Evaluator::SatisfiedSomewhere(const NodePtr& node) const {
  return !EvalNode(node).Empty();
}

bool Evaluator::ContainedIn(const PathPtr& alpha, const PathPtr& beta) const {
  Relation a = EvalPath(alpha);
  const Relation b = EvalPath(beta);
  return !a.SubtractWithAny(b);
}

}  // namespace xpc
