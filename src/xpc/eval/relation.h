#ifndef XPC_EVAL_RELATION_H_
#define XPC_EVAL_RELATION_H_

#include <utility>
#include <vector>

#include "xpc/common/bits.h"
#include "xpc/tree/xml_tree.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// A set of nodes of an `XmlTree`, as produced by node expressions.
class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(int num_nodes) : bits_(num_nodes) {}

  int size() const { return bits_.size(); }
  bool Contains(NodeId n) const { return bits_.Get(n); }
  void Insert(NodeId n) { bits_.Set(n); }
  void Remove(NodeId n) { bits_.Reset(n); }
  bool Empty() const { return bits_.None(); }
  int Count() const { return bits_.Count(); }

  void UnionWith(const NodeSet& o) { bits_.UnionWith(o.bits_); }
  void IntersectWith(const NodeSet& o) { bits_.IntersectWith(o.bits_); }
  /// Complements relative to the full node set.
  void Complement() {
    for (int i = 0; i < bits_.size(); ++i) bits_.Assign(i, !bits_.Get(i));
  }

  /// Nodes in the set, ascending.
  std::vector<NodeId> ToVector() const;

  friend bool operator==(const NodeSet& a, const NodeSet& b) { return a.bits_ == b.bits_; }

 private:
  Bits bits_;
};

/// A binary relation on the nodes of an `XmlTree`, as produced by path
/// expressions (⟦α⟧_PExpr of Table II). Stored as one bit row per source
/// node.
class Relation {
 public:
  Relation() = default;
  explicit Relation(int num_nodes) : n_(num_nodes), rows_(num_nodes, Bits(num_nodes)) {}

  /// The identity relation ⟦.⟧.
  static Relation Identity(int num_nodes);

  /// The relation R_τ of an atomic axis on `tree`.
  static Relation OfAxis(const XmlTree& tree, Axis axis);

  /// The universal relation N × N.
  static Relation Universal(int num_nodes);

  int num_nodes() const { return n_; }
  bool Contains(NodeId a, NodeId b) const { return rows_[a].Get(b); }
  void Insert(NodeId a, NodeId b) { rows_[a].Set(b); }
  bool Empty() const;
  int Count() const;

  void UnionWith(const Relation& o);
  void IntersectWith(const Relation& o);
  void SubtractWith(const Relation& o);
  /// Fused subtract-and-test: subtracts `o` and reports whether any pair
  /// survived, in one pass over the rows (Bits::SubtractWithAny per row)
  /// instead of SubtractWith + Empty.
  bool SubtractWithAny(const Relation& o);

  /// Relational composition this ∘ other (⟦α/β⟧).
  Relation Compose(const Relation& other) const;

  /// The converse relation.
  Relation Transpose() const;

  /// Reflexive-transitive closure (⟦α*⟧).
  Relation ReflexiveTransitiveClosure() const;

  /// Restricts targets to `targets` (⟦α[φ]⟧).
  Relation FilterTargets(const NodeSet& targets) const;

  /// {n | ∃m. (n,m) ∈ R} — the domain, used for ⟨α⟩.
  NodeSet Domain() const;

  /// {n | (n,n) ∈ R} — used for loop(α) / α ≈ ..
  NodeSet Loop() const;

  /// All pairs, lexicographically.
  std::vector<std::pair<NodeId, NodeId>> ToPairs() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.n_ == b.n_ && a.rows_ == b.rows_;
  }

 private:
  int n_ = 0;
  std::vector<Bits> rows_;
};

}  // namespace xpc

#endif  // XPC_EVAL_RELATION_H_
