#include "xpc/eval/loop_evaluator.h"

#include <cassert>

namespace xpc {

namespace {

// Move matrices S_m for one automaton: S_m(q, q') iff (q, m, q') ∈ Δ.
struct MoveMatrices {
  StateRel down1, up1, right, left;
};

MoveMatrices BuildMoveMatrices(const PathAutomaton& a) {
  MoveMatrices m{StateRel(a.num_states), StateRel(a.num_states), StateRel(a.num_states),
                 StateRel(a.num_states)};
  for (const PathAutomaton::Transition& t : a.transitions) {
    switch (t.move) {
      case Move::kDown1: m.down1.Set(t.from, t.to); break;
      case Move::kUp1: m.up1.Set(t.from, t.to); break;
      case Move::kRight: m.right.Set(t.from, t.to); break;
      case Move::kLeft: m.left.Set(t.from, t.to); break;
      case Move::kTest: break;
    }
  }
  return m;
}

}  // namespace

LoopEvaluator::LoopEvaluator(const XmlTree& tree) : tree_(tree) {}

const LoopEvaluator::AutomatonData& LoopEvaluator::DataFor(const PathAutoPtr& automaton) {
  auto it = automata_.find(automaton.get());
  if (it != automata_.end()) return it->second;

  const PathAutomaton& a = *automaton;
  const int nq = a.num_states;
  const int nn = tree_.size();
  MoveMatrices moves = BuildMoveMatrices(a);

  // Evaluate all tests first (strictly smaller expressions — terminates).
  // test_true[i][v]: test of transition i true at node v.
  std::vector<const std::vector<bool>*> test_true(a.transitions.size(), nullptr);
  for (size_t i = 0; i < a.transitions.size(); ++i) {
    if (a.transitions[i].move == Move::kTest) {
      test_true[i] = &EvalAll(a.transitions[i].test);
    }
  }

  // T_v: test-step generators at node v.
  auto test_rel = [&](NodeId v) {
    StateRel t(nq);
    for (size_t i = 0; i < a.transitions.size(); ++i) {
      if (test_true[i] != nullptr && (*test_true[i])[v]) {
        t.Set(a.transitions[i].from, a.transitions[i].to);
      }
    }
    return t;
  };

  // Bottom-up: D(v). Children always have larger NodeIds than parents.
  std::vector<StateRel> below(nn);
  for (NodeId v = nn - 1; v >= 0; --v) {
    StateRel d = test_rel(v);
    if (tree_.first_child(v) != kNoNode) {
      d.UnionWith(moves.down1.Compose(below[tree_.first_child(v)]).Compose(moves.up1));
    }
    if (tree_.next_sibling(v) != kNoNode) {
      d.UnionWith(moves.right.Compose(below[tree_.next_sibling(v)]).Compose(moves.left));
    }
    d.CloseReflexiveTransitive();
    below[v] = std::move(d);
  }

  // Top-down: U(v), then L(v) = closure(D ∪ U).
  AutomatonData data;
  data.loops.assign(nn, StateRel(nq));
  std::vector<StateRel> above(nn, StateRel(nq));
  for (NodeId v = 0; v < nn; ++v) {
    if (v != tree_.root()) {
      const NodeId p = tree_.FcnsParent(v);
      const bool via_first_child = tree_.FcnsParentEdge(v) == XmlTree::FcnsEdge::kFirstChild;
      // M: walks p ⇝ p avoiding the subtree of v: tests at p, excursions
      // into p's *other* FCNS child, and p's own up-excursions.
      StateRel m = test_rel(p);
      if (via_first_child) {
        if (tree_.next_sibling(p) != kNoNode) {
          m.UnionWith(moves.right.Compose(below[tree_.next_sibling(p)]).Compose(moves.left));
        }
      } else {
        if (tree_.first_child(p) != kNoNode) {
          m.UnionWith(moves.down1.Compose(below[tree_.first_child(p)]).Compose(moves.up1));
        }
      }
      m.UnionWith(above[p]);
      m.CloseReflexiveTransitive();
      above[v] = via_first_child ? moves.up1.Compose(m).Compose(moves.down1)
                                 : moves.left.Compose(m).Compose(moves.right);
    }
    StateRel l = below[v];
    l.UnionWith(above[v]);
    l.CloseReflexiveTransitive();
    data.loops[v] = std::move(l);
  }

  pinned_autos_.push_back(automaton);
  return automata_.emplace(automaton.get(), std::move(data)).first->second;
}

const std::vector<StateRel>& LoopEvaluator::LoopRelations(const PathAutoPtr& automaton) {
  return DataFor(automaton).loops;
}

const std::vector<bool>& LoopEvaluator::EvalAll(const LExprPtr& expr) {
  auto it = memo_.find(expr.get());
  if (it != memo_.end()) return it->second;

  const int nn = tree_.size();
  std::vector<bool> result(nn, false);
  switch (expr->kind) {
    case LExpr::Kind::kLabel:
      for (NodeId v = 0; v < nn; ++v) result[v] = tree_.HasLabel(v, expr->label);
      break;
    case LExpr::Kind::kTrue:
      result.assign(nn, true);
      break;
    case LExpr::Kind::kNot: {
      const std::vector<bool>& a = EvalAll(expr->a);
      for (NodeId v = 0; v < nn; ++v) result[v] = !a[v];
      break;
    }
    case LExpr::Kind::kAnd: {
      const std::vector<bool>& a = EvalAll(expr->a);
      const std::vector<bool>& b = EvalAll(expr->b);
      for (NodeId v = 0; v < nn; ++v) result[v] = a[v] && b[v];
      break;
    }
    case LExpr::Kind::kOr: {
      const std::vector<bool>& a = EvalAll(expr->a);
      const std::vector<bool>& b = EvalAll(expr->b);
      for (NodeId v = 0; v < nn; ++v) result[v] = a[v] || b[v];
      break;
    }
    case LExpr::Kind::kLoop: {
      const AutomatonData& data = DataFor(expr->automaton);
      for (NodeId v = 0; v < nn; ++v) {
        result[v] = data.loops[v].Get(expr->q_from, expr->q_to);
      }
      break;
    }
  }
  pinned_exprs_.push_back(expr);
  return memo_.emplace(expr.get(), std::move(result)).first->second;
}

bool LoopEvaluator::EvalAt(const LExprPtr& expr, NodeId node) { return EvalAll(expr)[node]; }

bool LoopEvaluator::AtRoot(const LExprPtr& expr) { return EvalAt(expr, tree_.root()); }

}  // namespace xpc
