#ifndef XPC_EVAL_LOOP_EVALUATOR_H_
#define XPC_EVAL_LOOP_EVALUATOR_H_

#include <map>
#include <vector>

#include "xpc/pathauto/lexpr.h"
#include "xpc/pathauto/state_relation.h"
#include "xpc/tree/xml_tree.h"

namespace xpc {

/// Evaluates CoreXPath_NFA(*, loop) node expressions on a concrete tree via
/// the LOOPS fixpoint of Lemma 11, organized as below/above excursion
/// summaries on the FCNS view:
///
///   D(v) — walks v ⇝ v inside the FCNS subtree of v (bottom-up pass),
///   U(v) — walks v ⇝ v leaving v upward first (top-down pass),
///   L(v) = closure(D(v) ∪ U(v)),  and  v ⊨ loop(π_{q,q'}) iff L(v)(q, q').
///
/// Tests inside automata are evaluated recursively (they are strictly
/// smaller expressions), so the computation is stratified exactly as in the
/// paper's cl(φ′) construction. Results are memoized per automaton and per
/// subexpression; the evaluator is therefore cheap to reuse for many
/// queries against the same tree.
///
/// This class is the second, independent semantics pipeline of the library
/// (normal form + LOOPS), differentially tested against `Evaluator`.
class LoopEvaluator {
 public:
  explicit LoopEvaluator(const XmlTree& tree);

  /// Truth value of `expr` at every node.
  const std::vector<bool>& EvalAll(const LExprPtr& expr);

  /// Truth at one node / at the root.
  bool EvalAt(const LExprPtr& expr, NodeId node);
  bool AtRoot(const LExprPtr& expr);

  /// The full loop relation L(v) for every node of `automaton` (computing
  /// and caching it if needed). Exposed for tests and the 2ATA module.
  const std::vector<StateRel>& LoopRelations(const PathAutoPtr& automaton);

 private:
  struct AutomatonData {
    std::vector<StateRel> loops;  // L(v), indexed by NodeId.
  };

  const AutomatonData& DataFor(const PathAutoPtr& automaton);

  const XmlTree& tree_;
  std::map<const PathAutomaton*, AutomatonData> automata_;
  std::map<const LExpr*, std::vector<bool>> memo_;
  // Keep LExpr/automaton pointers alive while memoized.
  std::vector<LExprPtr> pinned_exprs_;
  std::vector<PathAutoPtr> pinned_autos_;
};

}  // namespace xpc

#endif  // XPC_EVAL_LOOP_EVALUATOR_H_
