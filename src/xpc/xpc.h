#ifndef XPC_XPC_H_
#define XPC_XPC_H_

/// \file
/// Umbrella header for the xpc library — a from-scratch implementation of
/// the decision procedures, translations and constructions of
///
///   B. ten Cate and C. Lutz, "The Complexity of Query Containment in
///   Expressive Fragments of XPath 2.0", PODS 2007 / J. ACM 56(6), 2009.
///
/// Typical use:
///
///   #include "xpc/xpc.h"
///
///   xpc::Solver solver;
///   auto alpha = xpc::ParsePath("down*[Image]").value();
///   auto beta = xpc::ParsePath("down*").value();
///   auto result = solver.Contains(alpha, beta);
///   // result.verdict == xpc::ContainmentVerdict::kContained
///
/// See README.md for the language syntax and the per-module documentation
/// in the individual headers for the paper-to-code map.

#include "xpc/classify/fastpath.h"    // PTIME fast-path procedures.
#include "xpc/classify/profile.h"     // Tractable-fragment classifier.
#include "xpc/common/stats.h"         // Solver telemetry (counters/timers).
#include "xpc/core/session.h"         // Memoizing session layer (batch API).
#include "xpc/core/solver.h"          // Containment / satisfiability facade.
#include "xpc/edtd/conformance.h"     // (E)DTD validation.
#include "xpc/edtd/edtd.h"            // Schemas (Definition 2).
#include "xpc/eval/evaluator.h"       // Reference semantics (Table II).
#include "xpc/reduction/reductions.h" // Proposition 4 reductions.
#include "xpc/stream/bundle_optimizer.h" // Pre-deployment bundle shrinking.
#include "xpc/stream/stream_compile.h"   // k queries -> one shared automaton.
#include "xpc/stream/stream_event.h"     // SAX-style event model.
#include "xpc/stream/stream_matcher.h"   // Single-pass streaming matcher.
#include "xpc/tree/tree_text.h"       // Tree (de)serialization.
#include "xpc/tree/xml_tree.h"        // XML trees (Definition 1).
#include "xpc/xpath/build.h"          // Programmatic expression builders.
#include "xpc/xpath/fragment.h"       // Language-fragment detection.
#include "xpc/xpath/metrics.h"        // Size / intersection-depth measures.
#include "xpc/xpath/parser.h"         // Concrete syntax.
#include "xpc/xpath/printer.h"

#endif  // XPC_XPC_H_
