#ifndef XPC_EDTD_CONFORMANCE_H_
#define XPC_EDTD_CONFORMANCE_H_

#include <string>
#include <vector>

#include "xpc/edtd/edtd.h"
#include "xpc/tree/xml_tree.h"

namespace xpc {

/// Checks whether `tree` conforms to `edtd` in the sense of Definition 2:
/// some typing L' : N → Δ maps the root to the root type, makes every
/// node's children word match its content model, and satisfies
/// L(n) = μ(L'(n)). Only single-labeled trees can conform.
bool Conforms(const XmlTree& tree, const Edtd& edtd);

/// Like `Conforms`, but returns the witness typing (abstract label per
/// node, indexed by NodeId). Empty vector if the tree does not conform.
std::vector<std::string> WitnessTyping(const XmlTree& tree, const Edtd& edtd);

/// Generates some tree conforming to `edtd` (useful for tests/examples):
/// expands content models breadth-first, preferring shortest words, and
/// aborts (returns single-root fallback of the root's μ) if expansion cannot
/// terminate within `max_nodes`. Returns (ok, tree).
std::pair<bool, XmlTree> SampleConformingTree(const Edtd& edtd, int max_nodes,
                                              uint64_t seed = 0);

}  // namespace xpc

#endif  // XPC_EDTD_CONFORMANCE_H_
