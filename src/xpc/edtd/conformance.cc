#include "xpc/edtd/conformance.h"

#include <cassert>
#include <algorithm>
#include <deque>

#include "xpc/tree/tree_generator.h"

namespace xpc {

namespace {

// Computes, bottom-up, the set of admissible abstract types per node.
// possible[n] has one bit per abstract label index.
std::vector<Bits> PossibleTypes(const XmlTree& tree, const Edtd& edtd) {
  const int num_types = static_cast<int>(edtd.types().size());
  std::vector<Bits> possible(tree.size(), Bits(num_types));
  // Process nodes in reverse creation order: children always have larger ids
  // than parents, so reverse order is bottom-up.
  for (NodeId n = tree.size() - 1; n >= 0; --n) {
    std::vector<NodeId> children = tree.Children(n);
    for (int t = 0; t < num_types; ++t) {
      const Edtd::TypeDef& def = edtd.types()[t];
      if (!(tree.labels(n).size() == 1 && tree.label(n) == def.concrete_label)) continue;
      // Does some word t_1 ... t_k with t_i ∈ possible[child_i] lie in
      // L(P(t))? Run the content NFA over "symbol sets".
      const Nfa& nfa = edtd.ContentNfa(t);
      Bits states = nfa.InitialSet();
      for (NodeId c : children) {
        Bits next(nfa.num_states());
        possible[c].ForEach([&](int ct) { next.UnionWith(nfa.Step(states, ct)); });
        states = next;
        if (states.None()) break;
      }
      if (nfa.AnyAccepting(states)) possible[n].Set(t);
    }
  }
  return possible;
}

// Recursively assigns witness types given the `possible` table.
void AssignTypes(const XmlTree& tree, const Edtd& edtd, const std::vector<Bits>& possible,
                 NodeId n, int type, std::vector<std::string>* out) {
  (*out)[n] = edtd.types()[type].abstract_label;
  std::vector<NodeId> children = tree.Children(n);
  if (children.empty()) return;
  const Nfa& nfa = edtd.ContentNfa(type);
  const int k = static_cast<int>(children.size());
  // Forward state sets.
  std::vector<Bits> fwd(k + 1, Bits(nfa.num_states()));
  fwd[0] = nfa.InitialSet();
  for (int i = 0; i < k; ++i) {
    Bits next(nfa.num_states());
    possible[children[i]].ForEach(
        [&](int ct) { next.UnionWith(nfa.Step(fwd[i], ct)); });
    fwd[i + 1] = next;
  }
  // Backward: pick, right to left, a type and reachable target per child.
  Bits goal(nfa.num_states());
  for (int s : nfa.accepting()) goal.Set(s);
  std::vector<int> chosen(k, -1);
  for (int i = k - 1; i >= 0; --i) {
    bool found = false;
    possible[children[i]].ForEach([&](int ct) {
      if (found) return;
      Bits stepped = nfa.Step(fwd[i], ct);
      stepped.IntersectWith(goal);
      if (!stepped.None()) {
        chosen[i] = ct;
        // New goal: states from which `stepped` ... we need predecessor
        // states in fwd[i] that reach `stepped` via ct — recompute goal as
        // the set of states q in fwd[i] with Step({q}, ct) ∩ stepped ≠ ∅.
        Bits new_goal(nfa.num_states());
        fwd[i].ForEach([&](int q) {
          Bits stepq = nfa.Step(nfa.EpsilonClosure(q), ct);
          if (stepq.Intersects(stepped)) new_goal.Set(q);
        });
        goal = new_goal;
        found = true;
      }
    });
    assert(found && "witness reconstruction failed despite possible-type bit");
  }
  for (int i = 0; i < k; ++i) {
    AssignTypes(tree, edtd, possible, children[i], chosen[i], out);
  }
}

}  // namespace

bool Conforms(const XmlTree& tree, const Edtd& edtd) {
  if (!tree.IsSingleLabeled()) return false;
  std::vector<Bits> possible = PossibleTypes(tree, edtd);
  int root_type = edtd.TypeIndex(edtd.root_type());
  return possible[tree.root()].Get(root_type);
}

std::vector<std::string> WitnessTyping(const XmlTree& tree, const Edtd& edtd) {
  if (!tree.IsSingleLabeled()) return {};
  std::vector<Bits> possible = PossibleTypes(tree, edtd);
  int root_type = edtd.TypeIndex(edtd.root_type());
  if (!possible[tree.root()].Get(root_type)) return {};
  std::vector<std::string> out(tree.size());
  AssignTypes(tree, edtd, possible, tree.root(), root_type, &out);
  return out;
}

namespace {

constexpr int64_t kInfCost = int64_t{1} << 50;

// Cheapest accepted word of `nfa` where symbol i costs `cost[i]`:
// Bellman-Ford over NFA states (ε edges cost 0). Returns (total, word);
// total == kInfCost if no finite-cost word exists.
std::pair<int64_t, std::vector<int>> CheapestWord(const Nfa& nfa,
                                                  const std::vector<int64_t>& cost) {
  const int n = nfa.num_states();
  std::vector<int64_t> dist(n, kInfCost);
  std::vector<int> from(n, -1), via(n, Nfa::kEpsilon);
  for (int s : nfa.initial()) dist[s] = 0;
  for (int round = 0; round <= n; ++round) {
    bool changed = false;
    for (const Nfa::Transition& t : nfa.transitions()) {
      int64_t w = t.symbol == Nfa::kEpsilon ? 0 : cost[t.symbol];
      if (dist[t.from] >= kInfCost || w >= kInfCost) continue;
      if (dist[t.from] + w < dist[t.to]) {
        dist[t.to] = dist[t.from] + w;
        from[t.to] = t.from;
        via[t.to] = t.symbol;
        changed = true;
      }
    }
    if (!changed) break;
  }
  int best = -1;
  for (int s : nfa.accepting()) {
    if (dist[s] < kInfCost && (best < 0 || dist[s] < dist[best])) best = s;
  }
  if (best < 0) return {kInfCost, {}};
  std::vector<int> word;
  for (int s = best; from[s] != -1 || via[s] != Nfa::kEpsilon;) {
    if (via[s] != Nfa::kEpsilon) word.push_back(via[s]);
    int prev = from[s];
    if (prev < 0) break;
    s = prev;
  }
  std::reverse(word.begin(), word.end());
  return {dist[best], word};
}

// Minimum number of nodes in a complete expansion of each type (least
// fixpoint; kInfCost for dead types whose content language forces infinite
// trees).
std::vector<int64_t> MinCompletionCost(const Edtd& edtd) {
  const int n = static_cast<int>(edtd.types().size());
  std::vector<int64_t> cost(n, kInfCost);
  for (int round = 0; round <= n; ++round) {
    bool changed = false;
    for (int t = 0; t < n; ++t) {
      auto [total, word] = CheapestWord(edtd.ContentNfa(t), cost);
      int64_t candidate = total >= kInfCost ? kInfCost : total + 1;
      if (candidate < cost[t]) {
        cost[t] = candidate;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return cost;
}

}  // namespace

std::pair<bool, XmlTree> SampleConformingTree(const Edtd& edtd, int max_nodes, uint64_t seed) {
  TreeGenerator rng(seed ^ 0x5eedULL);
  int root_index = edtd.TypeIndex(edtd.root_type());
  std::vector<int64_t> completion = MinCompletionCost(edtd);
  XmlTree tree(edtd.types()[root_index].concrete_label);
  if (completion[root_index] >= kInfCost) return {false, tree};

  // Work queue of (node, type index) to expand.
  std::deque<std::pair<NodeId, int>> queue;
  queue.emplace_back(tree.root(), root_index);
  while (!queue.empty()) {
    auto [node, type] = queue.front();
    queue.pop_front();
    const Nfa& nfa = edtd.ContentNfa(type);

    std::vector<int> word;
    bool budget_left = tree.size() < max_nodes;
    if (budget_left) {
      // Random accepted word: random walk of bounded length, retrying a few
      // times; falls back to the shortest word.
      for (int attempt = 0; attempt < 4 && word.empty(); ++attempt) {
        Bits states = nfa.InitialSet();
        std::vector<int> candidate;
        for (int step = 0; step < 4; ++step) {
          if (nfa.AnyAccepting(states) && rng.NextBelow(2) == 0) break;
          // Pick a random viable symbol.
          std::vector<int> viable;
          for (int a = 0; a < nfa.alphabet_size(); ++a) {
            if (!nfa.Step(states, a).None()) viable.push_back(a);
          }
          if (viable.empty()) break;
          int symbol = viable[rng.NextBelow(viable.size())];
          states = nfa.Step(states, symbol);
          candidate.push_back(symbol);
        }
        if (nfa.AnyAccepting(states)) word = candidate;
      }
    }
    if (word.empty()) {
      // Cheapest completion: guarantees termination with minimal extra
      // nodes even when every content model forces at least one child.
      auto [total, cheapest] = CheapestWord(nfa, completion);
      if (total >= kInfCost) return {false, tree};  // Dead type.
      word = cheapest;
    } else {
      // Reject random words whose mandatory completion cannot fit.
      int64_t mandatory = 0;
      for (int s : word) mandatory += completion[s];
      if (mandatory >= kInfCost) {
        auto [total, cheapest] = CheapestWord(nfa, completion);
        if (total >= kInfCost) return {false, tree};
        word = cheapest;
      }
    }
    for (int child_type : word) {
      NodeId child = tree.AddChild(node, edtd.types()[child_type].concrete_label);
      queue.emplace_back(child, child_type);
    }
  }
  return {true, tree};
}

}  // namespace xpc
