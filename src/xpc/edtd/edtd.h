#ifndef XPC_EDTD_EDTD_H_
#define XPC_EDTD_EDTD_H_

#include <map>
#include <string>
#include <vector>

#include "xpc/automata/regex.h"
#include "xpc/common/result.h"

namespace xpc {

/// An extended document type definition (Definition 2): a tuple
/// (Δ, P, r, μ) with abstract labels Δ, a content-model regular expression
/// P(t) over Δ for each t ∈ Δ, a root type r, and a mapping μ: Δ → Σ to
/// concrete labels.
///
/// Ordinary DTDs are the special case Δ = Σ with μ the identity
/// (`IsPlainDtd()`).
class Edtd {
 public:
  /// One abstract label with its content model and concrete image.
  struct TypeDef {
    std::string abstract_label;  ///< t ∈ Δ.
    RegexPtr content;            ///< P(t), over abstract labels.
    std::string concrete_label;  ///< μ(t) ∈ Σ.
  };

  Edtd(std::vector<TypeDef> types, std::string root_type);

  /// Builds an EDTD from text lines of the form
  ///     `abstract [-> concrete] := regex`
  /// one per abstract label; the first line's label is the root type.
  /// Example (the book EDTD of Section 2.2):
  ///     Book := Chapter+
  ///     Chapter := Section+
  ///     Section := (Section | Paragraph | Image)+
  ///     Paragraph := epsilon
  ///     Image := epsilon
  static Result<Edtd> Parse(const std::string& text);

  const std::vector<TypeDef>& types() const { return types_; }
  const std::string& root_type() const { return root_type_; }

  /// Index of abstract label `t` in `types()`, or -1.
  int TypeIndex(const std::string& t) const;

  /// μ(t); `t` must exist.
  const std::string& Mu(const std::string& t) const;

  /// True if Δ = Σ and μ = id.
  bool IsPlainDtd() const;

  /// Sum of the content-model regex sizes (the paper's EDTD size measure).
  int Size() const;

  /// All abstract labels, in definition order.
  std::vector<std::string> AbstractLabels() const;

  /// All concrete labels in the image of μ, deduplicated.
  std::vector<std::string> ConcreteLabels() const;

  /// NFA for P(t) over the abstract-label alphabet (definition order).
  /// Compiled once and cached.
  const Nfa& ContentNfa(int type_index) const;

  /// The maximum number of states of any content NFA (|D| in Fig. 2).
  int MaxContentNfaStates() const;

  // --- Schema-class predicates (tractable-fragment classifier) ----------
  //
  // The classes of Ishihara et al. / Neven–Schwentick under which XPath
  // satisfiability drops to PTIME. All three are computed once and cached
  // (like the content NFAs, the lazy build under `const` is not
  // synchronized — query once before sharing across threads).

  /// True if every content model mentions each abstract label at most once
  /// (the *duplicate-free* DTDs of Ishihara et al.).
  bool HasDuplicateFreeContent() const;

  /// True if no content model contains a union — neither `|` nor `?`
  /// (which desugars to `ε | …`). Disjunction-free content models have a
  /// unique ⊆-maximal symbol set among their words.
  bool HasDisjunctionFreeContent() const;

  /// True if every type is realizable (generates some finite tree) and
  /// occurs in a tree generated from the root type — a *covering* schema:
  /// no dead types, so syntactic occurrence implies semantic relevance.
  bool IsCovering() const;

 private:
  std::vector<TypeDef> types_;
  std::string root_type_;
  std::vector<std::string> abstract_alphabet_;
  mutable std::vector<Nfa> content_nfas_;  // Lazily built, index-aligned.
  mutable std::vector<bool> content_built_;
  // Cached predicate verdicts: -1 unknown, else 0/1.
  mutable int duplicate_free_ = -1;
  mutable int disjunction_free_ = -1;
  mutable int covering_ = -1;
};

/// Serializes an EDTD in the `Parse` text format, one `abstract -> concrete
/// := regex` line per type with the root type's line first, so
/// `Edtd::Parse(EdtdToText(e))` reconstructs `e` (up to type order when the
/// root is not the first definition). Used by the fuzz corpus to make
/// schema-relative failures replayable.
std::string EdtdToText(const Edtd& edtd);

}  // namespace xpc

#endif  // XPC_EDTD_EDTD_H_
