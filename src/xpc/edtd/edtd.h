#ifndef XPC_EDTD_EDTD_H_
#define XPC_EDTD_EDTD_H_

#include <map>
#include <string>
#include <vector>

#include "xpc/automata/regex.h"
#include "xpc/common/result.h"

namespace xpc {

/// An extended document type definition (Definition 2): a tuple
/// (Δ, P, r, μ) with abstract labels Δ, a content-model regular expression
/// P(t) over Δ for each t ∈ Δ, a root type r, and a mapping μ: Δ → Σ to
/// concrete labels.
///
/// Ordinary DTDs are the special case Δ = Σ with μ the identity
/// (`IsPlainDtd()`).
class Edtd {
 public:
  /// One abstract label with its content model and concrete image.
  struct TypeDef {
    std::string abstract_label;  ///< t ∈ Δ.
    RegexPtr content;            ///< P(t), over abstract labels.
    std::string concrete_label;  ///< μ(t) ∈ Σ.
  };

  Edtd(std::vector<TypeDef> types, std::string root_type);

  /// Builds an EDTD from text lines of the form
  ///     `abstract [-> concrete] := regex`
  /// one per abstract label; the first line's label is the root type.
  /// Example (the book EDTD of Section 2.2):
  ///     Book := Chapter+
  ///     Chapter := Section+
  ///     Section := (Section | Paragraph | Image)+
  ///     Paragraph := epsilon
  ///     Image := epsilon
  static Result<Edtd> Parse(const std::string& text);

  const std::vector<TypeDef>& types() const { return types_; }
  const std::string& root_type() const { return root_type_; }

  /// Index of abstract label `t` in `types()`, or -1.
  int TypeIndex(const std::string& t) const;

  /// μ(t); `t` must exist.
  const std::string& Mu(const std::string& t) const;

  /// True if Δ = Σ and μ = id.
  bool IsPlainDtd() const;

  /// Sum of the content-model regex sizes (the paper's EDTD size measure).
  int Size() const;

  /// All abstract labels, in definition order.
  std::vector<std::string> AbstractLabels() const;

  /// All concrete labels in the image of μ, deduplicated.
  std::vector<std::string> ConcreteLabels() const;

  /// NFA for P(t) over the abstract-label alphabet (definition order).
  /// Compiled once and cached.
  const Nfa& ContentNfa(int type_index) const;

  /// The maximum number of states of any content NFA (|D| in Fig. 2).
  int MaxContentNfaStates() const;

 private:
  std::vector<TypeDef> types_;
  std::string root_type_;
  std::vector<std::string> abstract_alphabet_;
  mutable std::vector<Nfa> content_nfas_;  // Lazily built, index-aligned.
  mutable std::vector<bool> content_built_;
};

}  // namespace xpc

#endif  // XPC_EDTD_EDTD_H_
