#include "xpc/edtd/edtd.h"

#include <cassert>
#include <set>
#include <sstream>

namespace xpc {

Edtd::Edtd(std::vector<TypeDef> types, std::string root_type)
    : types_(std::move(types)), root_type_(std::move(root_type)) {
  for (const TypeDef& t : types_) abstract_alphabet_.push_back(t.abstract_label);
  content_nfas_.reserve(types_.size());
  content_built_.assign(types_.size(), false);
  for (size_t i = 0; i < types_.size(); ++i) {
    content_nfas_.push_back(Nfa(static_cast<int>(types_.size()), 0));
  }
  assert(TypeIndex(root_type_) >= 0);
}

Result<Edtd> Edtd::Parse(const std::string& text) {
  std::vector<TypeDef> types;
  std::string root;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Strip comments and whitespace-only lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    bool blank = true;
    for (char c : line) blank = blank && std::isspace(static_cast<unsigned char>(c));
    if (blank) continue;

    size_t assign = line.find(":=");
    if (assign == std::string::npos) {
      return Result<Edtd>::Error("EDTD: missing ':=' in line: " + line);
    }
    std::string head = line.substr(0, assign);
    std::string body = line.substr(assign + 2);

    // head = abstract [-> concrete]
    std::string abstract_label, concrete_label;
    size_t arrow = head.find("->");
    if (arrow != std::string::npos) {
      abstract_label = head.substr(0, arrow);
      concrete_label = head.substr(arrow + 2);
    } else {
      abstract_label = head;
    }
    auto trim = [](std::string s) {
      size_t b = s.find_first_not_of(" \t");
      size_t e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    abstract_label = trim(abstract_label);
    concrete_label = trim(concrete_label);
    if (abstract_label.empty()) {
      return Result<Edtd>::Error("EDTD: empty abstract label in line: " + line);
    }
    if (concrete_label.empty()) concrete_label = abstract_label;

    auto regex = ParseRegex(body);
    if (!regex.ok()) {
      return Result<Edtd>::Error("EDTD: " + regex.error() + " in line: " + line);
    }
    if (root.empty()) root = abstract_label;
    types.push_back({abstract_label, regex.value(), concrete_label});
  }
  if (types.empty()) return Result<Edtd>::Error("EDTD: no type definitions");

  // Every symbol used in a content model must be defined.
  Edtd edtd(std::move(types), root);
  for (const TypeDef& t : edtd.types()) {
    for (const std::string& sym : RegexSymbols(t.content)) {
      if (edtd.TypeIndex(sym) < 0) {
        return Result<Edtd>::Error("EDTD: undefined abstract label '" + sym +
                                   "' in content model of '" + t.abstract_label + "'");
      }
    }
  }
  return edtd;
}

int Edtd::TypeIndex(const std::string& t) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].abstract_label == t) return static_cast<int>(i);
  }
  return -1;
}

const std::string& Edtd::Mu(const std::string& t) const {
  int idx = TypeIndex(t);
  assert(idx >= 0);
  return types_[idx].concrete_label;
}

bool Edtd::IsPlainDtd() const {
  for (const TypeDef& t : types_) {
    if (t.abstract_label != t.concrete_label) return false;
  }
  return true;
}

int Edtd::Size() const {
  int size = 0;
  for (const TypeDef& t : types_) size += RegexSize(t.content);
  return size;
}

std::vector<std::string> Edtd::AbstractLabels() const { return abstract_alphabet_; }

std::vector<std::string> Edtd::ConcreteLabels() const {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const TypeDef& t : types_) {
    if (seen.insert(t.concrete_label).second) out.push_back(t.concrete_label);
  }
  return out;
}

const Nfa& Edtd::ContentNfa(int type_index) const {
  assert(type_index >= 0 && type_index < static_cast<int>(types_.size()));
  if (!content_built_[type_index]) {
    content_nfas_[type_index] = CompileRegex(types_[type_index].content, abstract_alphabet_);
    // Pre-build the CSR index + ε-closure memo while still single-threaded,
    // so published content NFAs are read-only afterwards.
    content_nfas_[type_index].EnsureIndexed();
    content_built_[type_index] = true;
  }
  return content_nfas_[type_index];
}

int Edtd::MaxContentNfaStates() const {
  int m = 0;
  for (size_t i = 0; i < types_.size(); ++i) {
    m = std::max(m, ContentNfa(static_cast<int>(i)).num_states());
  }
  return m;
}

namespace {

bool DisjunctionFree(const RegexPtr& r) {
  if (r == nullptr) return true;
  switch (r->kind) {
    case Regex::Kind::kEpsilon:
    case Regex::Kind::kEmpty:
    case Regex::Kind::kSymbol:
      return true;
    case Regex::Kind::kUnion:
      return false;
    case Regex::Kind::kConcat:
      return DisjunctionFree(r->left) && DisjunctionFree(r->right);
    case Regex::Kind::kStar:
      return DisjunctionFree(r->left);
  }
  return true;
}

}  // namespace

bool Edtd::HasDuplicateFreeContent() const {
  if (duplicate_free_ < 0) {
    bool ok = true;
    for (const TypeDef& t : types_) {
      // Count symbol occurrences with an explicit walk (RegexSymbols dedups).
      std::vector<RegexPtr> stack = {t.content};
      std::map<std::string, int> occurrences;
      while (!stack.empty() && ok) {
        RegexPtr r = stack.back();
        stack.pop_back();
        if (r == nullptr) continue;
        if (r->kind == Regex::Kind::kSymbol) {
          if (++occurrences[r->symbol] > 1) ok = false;
        }
        stack.push_back(r->left);
        stack.push_back(r->right);
      }
      if (!ok) break;
    }
    duplicate_free_ = ok ? 1 : 0;
  }
  return duplicate_free_ == 1;
}

bool Edtd::HasDisjunctionFreeContent() const {
  if (disjunction_free_ < 0) {
    bool ok = true;
    for (const TypeDef& t : types_) ok = ok && DisjunctionFree(t.content);
    disjunction_free_ = ok ? 1 : 0;
  }
  return disjunction_free_ == 1;
}

bool Edtd::IsCovering() const {
  if (covering_ >= 0) return covering_ == 1;
  const int n = static_cast<int>(types_.size());
  // Realizability: t is realizable iff its content model accepts some word
  // over the already-realizable alphabet (least fixpoint, Fig. 2 style).
  Bits realizable(n);
  auto accepts_over = [&](const Nfa& nfa, const Bits& mask) {
    Bits reached = nfa.InitialSet();
    bool grew = true;
    while (grew) {
      grew = false;
      mask.ForEach([&](int s) { grew = reached.UnionWith(nfa.Step(reached, s)) || grew; });
    }
    return nfa.AnyAccepting(reached);
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (int t = 0; t < n; ++t) {
      if (!realizable.Get(t) && accepts_over(ContentNfa(t), realizable)) {
        realizable.Set(t);
        changed = true;
      }
    }
  }
  // Reachability from the root over *available* children: u is available
  // below t iff some word of L(P(t)) over the realizable alphabet uses u.
  const int root = TypeIndex(root_type_);
  Bits reachable(n);
  if (root >= 0 && realizable.Get(root)) {
    std::vector<int> worklist = {root};
    reachable.Set(root);
    while (!worklist.empty()) {
      int t = worklist.back();
      worklist.pop_back();
      const Nfa& nfa = ContentNfa(t);
      Bits forward = nfa.InitialSet();
      bool grew = true;
      while (grew) {
        grew = false;
        realizable.ForEach(
            [&](int s) { grew = forward.UnionWith(nfa.Step(forward, s)) || grew; });
      }
      // Backward sweep: states from which an accepting state is reachable
      // over realizable symbols (or ε).
      Bits backward(nfa.num_states());
      for (int q : nfa.accepting()) backward.Set(q);
      grew = true;
      while (grew) {
        grew = false;
        for (const Nfa::Transition& tr : nfa.transitions()) {
          bool usable = tr.symbol == Nfa::kEpsilon || realizable.Get(tr.symbol);
          if (usable && backward.Get(tr.to) && !backward.Get(tr.from)) {
            backward.Set(tr.from);
            grew = true;
          }
        }
      }
      for (const Nfa::Transition& tr : nfa.transitions()) {
        if (tr.symbol == Nfa::kEpsilon || !realizable.Get(tr.symbol)) continue;
        if (!forward.Get(tr.from) || !backward.Get(tr.to)) continue;
        if (!reachable.Get(tr.symbol)) {
          reachable.Set(tr.symbol);
          worklist.push_back(tr.symbol);
        }
      }
    }
  }
  covering_ = (realizable.Count() == n && reachable.Count() == n) ? 1 : 0;
  return covering_ == 1;
}

std::string EdtdToText(const Edtd& edtd) {
  std::ostringstream os;
  // `Parse` takes the first line's label as the root type.
  const int root = edtd.TypeIndex(edtd.root_type());
  auto emit = [&](const Edtd::TypeDef& t) {
    os << t.abstract_label << " -> " << t.concrete_label << " := "
       << RegexToString(t.content) << "\n";
  };
  emit(edtd.types()[root]);
  for (int i = 0; i < static_cast<int>(edtd.types().size()); ++i) {
    if (i != root) emit(edtd.types()[i]);
  }
  return os.str();
}

}  // namespace xpc
