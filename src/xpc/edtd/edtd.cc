#include "xpc/edtd/edtd.h"

#include <cassert>
#include <set>
#include <sstream>

namespace xpc {

Edtd::Edtd(std::vector<TypeDef> types, std::string root_type)
    : types_(std::move(types)), root_type_(std::move(root_type)) {
  for (const TypeDef& t : types_) abstract_alphabet_.push_back(t.abstract_label);
  content_nfas_.reserve(types_.size());
  content_built_.assign(types_.size(), false);
  for (size_t i = 0; i < types_.size(); ++i) {
    content_nfas_.push_back(Nfa(static_cast<int>(types_.size()), 0));
  }
  assert(TypeIndex(root_type_) >= 0);
}

Result<Edtd> Edtd::Parse(const std::string& text) {
  std::vector<TypeDef> types;
  std::string root;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Strip comments and whitespace-only lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    bool blank = true;
    for (char c : line) blank = blank && std::isspace(static_cast<unsigned char>(c));
    if (blank) continue;

    size_t assign = line.find(":=");
    if (assign == std::string::npos) {
      return Result<Edtd>::Error("EDTD: missing ':=' in line: " + line);
    }
    std::string head = line.substr(0, assign);
    std::string body = line.substr(assign + 2);

    // head = abstract [-> concrete]
    std::string abstract_label, concrete_label;
    size_t arrow = head.find("->");
    if (arrow != std::string::npos) {
      abstract_label = head.substr(0, arrow);
      concrete_label = head.substr(arrow + 2);
    } else {
      abstract_label = head;
    }
    auto trim = [](std::string s) {
      size_t b = s.find_first_not_of(" \t");
      size_t e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    abstract_label = trim(abstract_label);
    concrete_label = trim(concrete_label);
    if (abstract_label.empty()) {
      return Result<Edtd>::Error("EDTD: empty abstract label in line: " + line);
    }
    if (concrete_label.empty()) concrete_label = abstract_label;

    auto regex = ParseRegex(body);
    if (!regex.ok()) {
      return Result<Edtd>::Error("EDTD: " + regex.error() + " in line: " + line);
    }
    if (root.empty()) root = abstract_label;
    types.push_back({abstract_label, regex.value(), concrete_label});
  }
  if (types.empty()) return Result<Edtd>::Error("EDTD: no type definitions");

  // Every symbol used in a content model must be defined.
  Edtd edtd(std::move(types), root);
  for (const TypeDef& t : edtd.types()) {
    for (const std::string& sym : RegexSymbols(t.content)) {
      if (edtd.TypeIndex(sym) < 0) {
        return Result<Edtd>::Error("EDTD: undefined abstract label '" + sym +
                                   "' in content model of '" + t.abstract_label + "'");
      }
    }
  }
  return edtd;
}

int Edtd::TypeIndex(const std::string& t) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].abstract_label == t) return static_cast<int>(i);
  }
  return -1;
}

const std::string& Edtd::Mu(const std::string& t) const {
  int idx = TypeIndex(t);
  assert(idx >= 0);
  return types_[idx].concrete_label;
}

bool Edtd::IsPlainDtd() const {
  for (const TypeDef& t : types_) {
    if (t.abstract_label != t.concrete_label) return false;
  }
  return true;
}

int Edtd::Size() const {
  int size = 0;
  for (const TypeDef& t : types_) size += RegexSize(t.content);
  return size;
}

std::vector<std::string> Edtd::AbstractLabels() const { return abstract_alphabet_; }

std::vector<std::string> Edtd::ConcreteLabels() const {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const TypeDef& t : types_) {
    if (seen.insert(t.concrete_label).second) out.push_back(t.concrete_label);
  }
  return out;
}

const Nfa& Edtd::ContentNfa(int type_index) const {
  assert(type_index >= 0 && type_index < static_cast<int>(types_.size()));
  if (!content_built_[type_index]) {
    content_nfas_[type_index] = CompileRegex(types_[type_index].content, abstract_alphabet_);
    // Pre-build the CSR index + ε-closure memo while still single-threaded,
    // so published content NFAs are read-only afterwards.
    content_nfas_[type_index].EnsureIndexed();
    content_built_[type_index] = true;
  }
  return content_nfas_[type_index];
}

int Edtd::MaxContentNfaStates() const {
  int m = 0;
  for (size_t i = 0; i < types_.size(); ++i) {
    m = std::max(m, ContentNfa(static_cast<int>(i)).num_states());
  }
  return m;
}

}  // namespace xpc
