#include "xpc/edtd/encode.h"

#include <cassert>
#include <map>
#include <vector>

#include "xpc/common/stats.h"
#include "xpc/schemaindex/schema_index.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/transform.h"

namespace xpc {

NodePtr GuardAxes(const NodePtr& node, const NodePtr& excluded) {
  switch (node->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return node;
    case NodeKind::kSome:
      return Some(GuardAxes(node->path, excluded));
    case NodeKind::kNot:
      return Not(GuardAxes(node->child1, excluded));
    case NodeKind::kAnd:
      return And(GuardAxes(node->child1, excluded), GuardAxes(node->child2, excluded));
    case NodeKind::kOr:
      return Or(GuardAxes(node->child1, excluded), GuardAxes(node->child2, excluded));
    case NodeKind::kPathEq:
      return PathEq(GuardAxes(node->path, excluded), GuardAxes(node->path2, excluded));
  }
  return node;
}

PathPtr GuardAxes(const PathPtr& path, const NodePtr& excluded) {
  switch (path->kind) {
    case PathKind::kAxis:
      return Filter(Ax(path->axis), Not(excluded));
    case PathKind::kAxisStar:
      return Star(Filter(Ax(path->axis), Not(excluded)));
    case PathKind::kSelf:
      return path;
    case PathKind::kSeq:
      return Seq(GuardAxes(path->left, excluded), GuardAxes(path->right, excluded));
    case PathKind::kUnion:
      return Union(GuardAxes(path->left, excluded), GuardAxes(path->right, excluded));
    case PathKind::kFilter:
      return Filter(GuardAxes(path->left, excluded), GuardAxes(path->filter, excluded));
    case PathKind::kStar:
      return Star(GuardAxes(path->left, excluded));
    case PathKind::kIntersect:
      return Intersect(GuardAxes(path->left, excluded), GuardAxes(path->right, excluded));
    case PathKind::kComplement:
      return Complement(GuardAxes(path->left, excluded), GuardAxes(path->right, excluded));
    case PathKind::kFor:
      return For(path->var, GuardAxes(path->left, excluded), GuardAxes(path->right, excluded));
  }
  return path;
}

Edtd NonRestrictiveEdtd(const std::set<std::string>& labels, const std::string& fresh_root) {
  assert(labels.find(fresh_root) == labels.end());
  // P(s) = p1 + ... + pn;  P(pi) = (p1 + ... + pn)*.
  RegexPtr any;
  for (const std::string& l : labels) {
    RegexPtr sym = RxSymbol(l);
    any = any ? RxUnion(any, sym) : sym;
  }
  assert(any != nullptr && "label set must be nonempty");
  std::vector<Edtd::TypeDef> types;
  types.push_back({fresh_root, any, fresh_root});
  for (const std::string& l : labels) {
    types.push_back({l, RxStar(any), l});
  }
  return Edtd(std::move(types), fresh_root);
}

std::string WitnessLabel(const std::string& abstract_label, int state) {
  return abstract_label + "__" + std::to_string(state);
}

EncodeSkeleton BuildEncodeSkeleton(const Edtd& edtd, const std::vector<Nfa>& automata,
                                   const std::vector<int>& offset, int total_states) {
  const int num_types = static_cast<int>(edtd.types().size());

  // lbl(t, g): the witness label for abstract type index t and global state
  // g. Only pairs where g is *some* automaton's state are used; the Δ and
  // state components are independent per the paper's Γ = Δ × ∪Q.
  auto lbl = [&](int t, int g) {
    return Label(WitnessLabel(edtd.types()[t].abstract_label, g));
  };

  // anyType[t] = ⋁_g lbl(t, g).
  std::vector<NodePtr> any_type(num_types);
  std::vector<NodePtr> all_pairs;
  for (int t = 0; t < num_types; ++t) {
    std::vector<NodePtr> disj;
    for (int g = 0; g < total_states; ++g) {
      disj.push_back(lbl(t, g));
      all_pairs.push_back(lbl(t, g));
    }
    any_type[t] = OrAll(std::move(disj));
  }

  std::vector<NodePtr> conjuncts;
  const PathPtr descendants = AxStar(Axis::kChild);

  // Every node carries a witness label.
  conjuncts.push_back(Every(descendants, OrAll(all_pairs)));

  // (1) The root has the root type (any state component).
  conjuncts.push_back(any_type[edtd.TypeIndex(edtd.root_type())]);

  // (3) Leaves: A_{L¹(n)} accepts ε.
  {
    std::vector<NodePtr> ok;
    for (int t = 0; t < num_types; ++t) {
      const Nfa& a = automata[t];
      Bits init = a.InitialSet();
      if (a.AnyAccepting(init)) ok.push_back(any_type[t]);
    }
    conjuncts.push_back(Every(Filter(descendants, Not(Some(Ax(Axis::kChild)))), OrAll(ok)));
  }

  // (2) per parent type p': runs start initial, respect δ, end final.
  for (int pt = 0; pt < num_types; ++pt) {
    const Nfa& a = automata[pt];
    const PathPtr at_parent = Filter(descendants, any_type[pt]);

    // First children carry an initial state of A_{p'}.
    {
      std::vector<NodePtr> ok;
      Bits init = a.InitialSet();
      init.ForEach([&](int q) {
        for (int t = 0; t < num_types; ++t) ok.push_back(lbl(t, offset[pt] + q));
      });
      PathPtr first_child = Filter(Ax(Axis::kChild), Not(Some(Ax(Axis::kLeft))));
      conjuncts.push_back(Every(Seq(at_parent, first_child), OrAll(ok)));
    }

    // Transitions: a child labeled (p, q) with a next sibling forces the
    // sibling's state into δ(q, p) (the displayed conjunct of Prop. 6).
    for (int q = 0; q < a.num_states(); ++q) {
      for (int p = 0; p < num_types; ++p) {
        std::vector<NodePtr> ok;
        for (const Nfa::Transition& tr : a.transitions()) {
          if (tr.from != q || tr.symbol != p) continue;
          for (int t2 = 0; t2 < num_types; ++t2) ok.push_back(lbl(t2, offset[pt] + tr.to));
        }
        PathPtr here = Seq(at_parent, Filter(Ax(Axis::kChild), lbl(p, offset[pt] + q)));
        conjuncts.push_back(Every(Seq(here, Ax(Axis::kRight)), OrAll(ok)));
      }
    }

    // Last children: δ(q, p) must contain a final state.
    {
      std::vector<NodePtr> ok;
      for (int q = 0; q < a.num_states(); ++q) {
        for (int p = 0; p < num_types; ++p) {
          bool final_reachable = false;
          for (const Nfa::Transition& tr : a.transitions()) {
            if (tr.from != q || tr.symbol != p) continue;
            for (int f : a.accepting()) final_reachable = final_reachable || f == tr.to;
          }
          if (final_reachable) ok.push_back(lbl(p, offset[pt] + q));
        }
      }
      PathPtr last_child = Filter(Ax(Axis::kChild), Not(Some(Ax(Axis::kRight))));
      conjuncts.push_back(Every(Seq(at_parent, last_child), OrAll(ok)));
    }
  }

  // φ' substitution: each concrete label p becomes ⋁ {lbl(t, g) : μ(t) = p}.
  std::map<std::string, NodePtr> subst;
  for (const std::string& concrete : edtd.ConcreteLabels()) {
    std::vector<NodePtr> disj;
    for (int t = 0; t < num_types; ++t) {
      if (edtd.types()[t].concrete_label == concrete) disj.push_back(any_type[t]);
    }
    subst[concrete] = OrAll(std::move(disj));
  }

  // The skeleton closes with ¬⟨↑⟩; the query-dependent ⟨↓*[φ']⟩ conjunct is
  // appended by EncodeEdtdSatisfiability.
  conjuncts.push_back(Not(Some(Ax(Axis::kParent))));
  return EncodeSkeleton{std::move(conjuncts), std::move(subst)};
}

NodePtr EncodeEdtdSatisfiability(const NodePtr& phi, const Edtd& edtd) {
  StatsTimer timer(Metric::kTranslateEdtdEncode);

  // Warm path: a registered SchemaIndex already holds the schema-only
  // skeleton (conjunct list + substitution); only the query-dependent
  // conjunct remains. Cold path: derive the ε-free automata and the
  // skeleton locally. Both paths produce structurally identical formulas —
  // BuildEncodeSkeleton is the single source of the conjunct order.
  std::vector<NodePtr> conjuncts;
  NodePtr phi_prime;
  if (std::shared_ptr<const SchemaIndex> index = SchemaIndex::Lookup(edtd)) {
    const EncodeSkeleton& skeleton = index->encode_skeleton();
    conjuncts = skeleton.conjuncts;
    phi_prime = ReplaceLabels(phi, skeleton.subst);
  } else {
    const int num_types = static_cast<int>(edtd.types().size());

    // ε-free content automata and global state numbering. Global state id
    // of automaton i's state q is offset[i] + q; state components of
    // witness labels are global ids so that states of distinct automata are
    // disjoint (as the paper assumes).
    std::vector<Nfa> automata;
    std::vector<int> offset(num_types, 0);
    int total_states = 0;
    for (int i = 0; i < num_types; ++i) {
      automata.push_back(edtd.ContentNfa(i).RemoveEpsilons());
      offset[i] = total_states;
      total_states += automata[i].num_states();
    }
    EncodeSkeleton skeleton = BuildEncodeSkeleton(edtd, automata, offset, total_states);
    conjuncts = std::move(skeleton.conjuncts);
    phi_prime = ReplaceLabels(phi, skeleton.subst);
  }

  // ψ ∧ ¬⟨↑⟩ ∧ ⟨↓*[φ']⟩ — evaluated at the root.
  conjuncts.push_back(Some(Filter(AxStar(Axis::kChild), phi_prime)));
  return AndAll(std::move(conjuncts));
}

namespace {

std::string StripWitnessLabel(const std::string& label, const Edtd& edtd) {
  size_t sep = label.rfind("__");
  if (sep == std::string::npos) return label;
  std::string abstract_label = label.substr(0, sep);
  int idx = edtd.TypeIndex(abstract_label);
  if (idx < 0) return label;
  return edtd.types()[idx].concrete_label;
}

void StripSubtree(const XmlTree& src, NodeId from, const Edtd& edtd, XmlTree* dst,
                  NodeId to) {
  for (NodeId c = src.first_child(from); c != kNoNode; c = src.next_sibling(c)) {
    std::vector<std::string> labels;
    for (const std::string& l : src.labels(c)) {
      labels.push_back(StripWitnessLabel(l, edtd));
    }
    NodeId copied = dst->AddChild(to, std::move(labels));
    StripSubtree(src, c, edtd, dst, copied);
  }
}

}  // namespace

XmlTree StripWitnessLabels(const XmlTree& tree, const Edtd& edtd) {
  std::vector<std::string> labels;
  for (const std::string& l : tree.labels(tree.root())) {
    labels.push_back(StripWitnessLabel(l, edtd));
  }
  XmlTree out(std::move(labels));
  StripSubtree(tree, tree.root(), edtd, &out, out.root());
  return out;
}

}  // namespace xpc
