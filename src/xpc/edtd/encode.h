#ifndef XPC_EDTD_ENCODE_H_
#define XPC_EDTD_ENCODE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "xpc/automata/nfa.h"
#include "xpc/edtd/edtd.h"
#include "xpc/tree/xml_tree.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Replaces every axis occurrence τ (and τ*) in the expression with
/// τ[¬excluded] (respectively (τ[¬excluded])*), making the expression blind
/// to nodes labeled `excluded`. This is the axis-guarding step shared by
/// Propositions 4, 5 and the let-elimination of Lemma 18.
NodePtr GuardAxes(const NodePtr& node, const NodePtr& excluded);
PathPtr GuardAxes(const PathPtr& path, const NodePtr& excluded);

/// Proposition 5: the "as nonrestrictive as possible" EDTD over the label
/// set `labels` plus a fresh root label `fresh_root`: the root is labeled
/// `fresh_root` and has exactly one child; below it, any tree over `labels`.
Edtd NonRestrictiveEdtd(const std::set<std::string>& labels, const std::string& fresh_root);

/// Proposition 6: reduces node satisfiability w.r.t. an EDTD to plain node
/// satisfiability. Returns ψ ∧ ¬⟨↑⟩ ∧ ⟨↓*[φ']⟩ over *witness-tree* labels of
/// the form `t__q` (abstract label t, content-NFA state q): the formula is
/// satisfiable iff φ is satisfiable w.r.t. `edtd`.
///
/// The encoding is the paper's: condition (1) fixes the root type, (2) makes
/// every run start initial / respect transitions / end final, (3) constrains
/// leaves; φ' replaces each label p by the disjunction of all witness labels
/// t__q with μ(t) = p. Content NFAs are ε-eliminated first so that the
/// transition constraints are local.
NodePtr EncodeEdtdSatisfiability(const NodePtr& phi, const Edtd& edtd);

/// The schema-only half of the Proposition 6 encoding: the conjunct list ψ
/// up to and including ¬⟨↑⟩ (everything except the final ⟨↓*[φ']⟩) plus the
/// concrete-label substitution that produces φ'. A pure function of the
/// EDTD, so `SchemaIndex` precomputes one per schema; AST nodes are
/// immutable, so sharing the conjuncts across queries and threads is safe.
struct EncodeSkeleton {
  std::vector<NodePtr> conjuncts;
  std::map<std::string, NodePtr> subst;
};

/// Builds the skeleton from ε-free content automata with the global state
/// numbering `offset` (state q of automaton t has id offset[t] + q) and
/// `total_states` ids overall. `EncodeEdtdSatisfiability` composes its
/// result from exactly this skeleton, so cold and index-served encodings
/// are structurally identical.
EncodeSkeleton BuildEncodeSkeleton(const Edtd& edtd, const std::vector<Nfa>& automata,
                                   const std::vector<int>& offset, int total_states);

/// The witness label `t__q`.
std::string WitnessLabel(const std::string& abstract_label, int state);

/// Maps a tree over witness labels `t__q` back to concrete labels μ(t)
/// (labels that do not parse as witness labels of `edtd` are kept).
XmlTree StripWitnessLabels(const XmlTree& tree, const Edtd& edtd);

}  // namespace xpc

#endif  // XPC_EDTD_ENCODE_H_
