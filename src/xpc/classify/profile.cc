#include "xpc/classify/profile.h"

#include <sstream>

#include "xpc/classify/fastpath.h"
#include "xpc/xpath/build.h"

namespace xpc {

namespace {

struct ProfileWalk {
  FragmentProfile* p;

  void MarkAxis(Axis axis) {
    switch (axis) {
      case Axis::kChild: p->fragment.uses_child = true; break;
      case Axis::kParent: p->fragment.uses_parent = true; break;
      case Axis::kRight: p->fragment.uses_right = true; break;
      case Axis::kLeft: p->fragment.uses_left = true; break;
    }
  }

  void Visit(const NodePtr& node, int qualifier_depth) {
    ++p->ops;
    switch (node->kind) {
      case NodeKind::kLabel:
      case NodeKind::kTrue:
        break;
      case NodeKind::kIsVar:
        p->uses_variables = true;
        break;
      case NodeKind::kSome:
        Visit(node->path, qualifier_depth);
        break;
      case NodeKind::kNot:
        p->uses_negation = true;
        Visit(node->child1, qualifier_depth);
        break;
      case NodeKind::kOr:
        p->uses_disjunction = true;
        [[fallthrough]];
      case NodeKind::kAnd:
        Visit(node->child1, qualifier_depth);
        Visit(node->child2, qualifier_depth);
        break;
      case NodeKind::kPathEq:
        p->fragment.uses_path_eq = true;
        Visit(node->path, qualifier_depth);
        Visit(node->path2, qualifier_depth);
        break;
    }
  }

  void Visit(const PathPtr& path, int qualifier_depth) {
    ++p->ops;
    switch (path->kind) {
      case PathKind::kAxis:
      case PathKind::kAxisStar:
        MarkAxis(path->axis);
        break;
      case PathKind::kSelf:
        break;
      case PathKind::kUnion:
        p->uses_disjunction = true;
        [[fallthrough]];
      case PathKind::kSeq:
        Visit(path->left, qualifier_depth);
        Visit(path->right, qualifier_depth);
        break;
      case PathKind::kFilter:
        p->uses_qualifier = true;
        if (qualifier_depth + 1 > p->qualifier_depth) {
          p->qualifier_depth = qualifier_depth + 1;
        }
        Visit(path->left, qualifier_depth);
        Visit(path->filter, qualifier_depth + 1);
        break;
      case PathKind::kStar:
        p->fragment.uses_star = true;
        Visit(path->left, qualifier_depth);
        break;
      case PathKind::kIntersect:
        p->fragment.uses_intersect = true;
        Visit(path->left, qualifier_depth);
        Visit(path->right, qualifier_depth);
        break;
      case PathKind::kComplement:
        p->fragment.uses_complement = true;
        Visit(path->left, qualifier_depth);
        Visit(path->right, qualifier_depth);
        break;
      case PathKind::kFor:
        p->fragment.uses_for = true;
        p->uses_variables = true;
        Visit(path->left, qualifier_depth);
        Visit(path->right, qualifier_depth);
        break;
    }
  }
};

/// The fast-path shape gates only apply to positive, union-free vertical
/// queries; skip the (linear but avoidable) second walk otherwise.
bool FastPathPlausible(const FragmentProfile& p) {
  return !p.uses_disjunction && !p.uses_negation && !p.uses_variables &&
         !p.fragment.uses_path_eq && !p.fragment.uses_intersect &&
         !p.fragment.uses_complement && !p.fragment.uses_for &&
         !p.fragment.uses_star && p.fragment.IsVertical();
}

}  // namespace

FragmentProfile ClassifyNode(const NodePtr& phi) {
  FragmentProfile p;
  ProfileWalk{&p}.Visit(phi, 0);
  if (FastPathPlausible(p)) {
    p.downward_chain = p.fragment.IsDownward() && InDownwardChainFragment(phi);
    p.vertical_conjunctive = InVerticalConjunctiveFragment(phi);
  }
  return p;
}

FragmentProfile ClassifyPath(const PathPtr& alpha) {
  // Path satisfiability is ⟨α⟩-satisfiability; profile the same form the
  // solver dispatches (reduction/reductions.h PathSatToNodeSat).
  return ClassifyNode(Some(alpha));
}

std::string FragmentProfile::Summary() const {
  std::ostringstream os;
  os << fragment.Name();
  std::string tags;
  auto add = [&tags](const std::string& s) {
    if (!tags.empty()) tags += ", ";
    tags += s;
  };
  if (downward_chain) add("chain");
  if (vertical_conjunctive) add("vertical");
  if (uses_disjunction) add("or");
  if (uses_negation) add("not");
  if (uses_variables) add("vars");
  if (uses_qualifier) add("q=" + std::to_string(qualifier_depth));
  if (!tags.empty()) os << " [" << tags << "]";
  return os.str();
}

SchemaClass ClassifySchema(const Edtd& edtd) {
  SchemaClass c;
  c.duplicate_free = edtd.HasDuplicateFreeContent();
  c.disjunction_free = edtd.HasDisjunctionFreeContent();
  c.covering = edtd.IsCovering();
  c.num_types = static_cast<int>(edtd.types().size());
  return c;
}

std::string SchemaClass::Summary() const {
  std::ostringstream os;
  os << num_types << " types";
  if (duplicate_free) os << ", duplicate-free";
  if (disjunction_free) os << ", disjunction-free";
  if (covering) os << ", covering";
  return os.str();
}

const char* FastPathRouteName(FastPathRoute route) {
  switch (route) {
    case FastPathRoute::kNone: return "none";
    case FastPathRoute::kDownwardChain: return "downward-chain";
    case FastPathRoute::kVerticalConjunctive: return "vertical-conjunctive";
  }
  return "?";
}

FastPathRoute SelectFastPath(const FragmentProfile& profile, const SchemaClass* schema) {
  if (profile.downward_chain) return FastPathRoute::kDownwardChain;
  if (profile.vertical_conjunctive &&
      (schema == nullptr || (schema->duplicate_free && schema->disjunction_free))) {
    return FastPathRoute::kVerticalConjunctive;
  }
  return FastPathRoute::kNone;
}

}  // namespace xpc
