#ifndef XPC_CLASSIFY_FASTPATH_H_
#define XPC_CLASSIFY_FASTPATH_H_

#include "xpc/classify/profile.h"
#include "xpc/edtd/edtd.h"
#include "xpc/sat/engine.h"
#include "xpc/xpath/ast.h"

namespace xpc {

// Two PTIME satisfiability procedures for the tractable fragments the
// classifier recognizes (see DESIGN.md §2.7). Both are *complete* on their
// fragments — they always answer kSat or kUnsat, never kResourceLimit —
// and both attach a witness tree on kSat (conforming when a schema is
// given), so the solver's witness verification applies unchanged.

/// Exact membership test for fast-path A's fragment: φ is a conjunction of
/// label tests and at most one ⟨α⟩ where α is a sequence of ↓ / ↓* / self
/// steps whose qualifiers are label conjunctions. One AST walk.
bool InDownwardChainFragment(const NodePtr& phi);

/// Exact membership test for fast-path B's fragment: φ is built from
/// labels, ⊤, ∧ and ⟨α⟩ where α uses only ↓, ↑, ↓*, self, /, and
/// qualifiers recursively in the fragment — with the restriction that no ↑
/// is applied at a node introduced by a ↓* step (its structural parent is
/// not determined by the walk). One AST walk.
bool InVerticalConjunctiveFragment(const NodePtr& phi);

/// Fast path A — linear-time emptiness for downward chain queries, by
/// direct product of the chain with the schema's content automata:
/// propagate the set of types reachable at each chain position (child
/// steps go through the "available child" relation, ↓* through its
/// closure). Schema-free queries use the free single-labeled schema, where
/// the check degenerates to per-step label consistency. Works for ANY
/// schema because a chain places at most one demand per node.
SatResult DownwardChainSatisfiable(const NodePtr& phi, const Edtd* edtd);

/// Fast path B — polynomial satisfiability for parent-axis / qualifier
/// queries under duplicate-free, disjunction-free schemas. Normalizes φ to
/// a frame tree (one frame per distinct node the query demands; ↑ after ↓
/// returns to the same frame, sibling ↑-demands merge level-wise), then
/// decides typability bottom-up: a frame fits type t iff its labels match
/// μ(t) and each demanded child fits some available child type of t. Joint
/// child demands are satisfiable iff each is individually available — the
/// defining property of disjunction-free content models, whose words have
/// a unique maximal symbol set.
SatResult VerticalConjunctiveSatisfiable(const NodePtr& phi, const Edtd* edtd);

}  // namespace xpc

#endif  // XPC_CLASSIFY_FASTPATH_H_
