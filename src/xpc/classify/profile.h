#ifndef XPC_CLASSIFY_PROFILE_H_
#define XPC_CLASSIFY_PROFILE_H_

#include <string>

#include "xpc/edtd/edtd.h"
#include "xpc/xpath/ast.h"
#include "xpc/xpath/fragment.h"

namespace xpc {

/// The classifier's view of a query: the Table I lattice coordinates plus
/// the finer-grained features that decide PTIME membership in the related
/// work (Ishihara et al., Neven–Schwentick) — disjunction, negation,
/// qualifier nesting, variables — and the two concrete tractable shapes the
/// solver can fast-path (see classify/fastpath.h).
struct FragmentProfile {
  /// Axes + extension operators (shared with the engine dispatch).
  Fragment fragment;

  bool uses_disjunction = false;  ///< φ ∨ ψ or α ∪ β anywhere.
  bool uses_negation = false;     ///< ¬φ anywhere (includes ⊥ = ¬⊤).
  bool uses_qualifier = false;    ///< α[φ] anywhere.
  bool uses_variables = false;    ///< for-loops or ". is $x" tests.
  int qualifier_depth = 0;        ///< Max nesting depth of [ ] qualifiers.
  int ops = 0;                    ///< AST operator count (size measure).

  /// The query normalizes to a single downward spine of ↓ / ↓* steps with
  /// label-conjunction tests — fast-path A territory (any schema).
  bool downward_chain = false;

  /// The query is a positive ∧ / ⟨⟩ combination of ↓, ↑ steps and label
  /// tests — fast-path B territory (duplicate- and disjunction-free
  /// schemas, or schema-free queries).
  bool vertical_conjunctive = false;

  /// Human-readable one-liner, e.g. "CoreXPath_{v} [chain, vertical, q=1]".
  std::string Summary() const;
};

/// Profiles a node / path expression in one AST walk (plus the fast-path
/// shape gates, which bail out on the first out-of-fragment operator).
FragmentProfile ClassifyNode(const NodePtr& phi);
FragmentProfile ClassifyPath(const PathPtr& alpha);

/// The classifier's view of a schema: the content-model classes under
/// which satisfiability is tractable. All predicates are cached on the
/// `Edtd`, so per-dispatch classification is cheap after the first query.
struct SchemaClass {
  bool duplicate_free = false;    ///< Each symbol at most once per model.
  bool disjunction_free = false;  ///< No `|` / `?` in any content model.
  bool covering = false;          ///< All types realizable and reachable.
  int num_types = 0;

  std::string Summary() const;
};

SchemaClass ClassifySchema(const Edtd& edtd);

/// Which PTIME procedure (if any) the dispatcher should route to.
enum class FastPathRoute {
  kNone,                 ///< Out of fragment — fall through to full engines.
  kDownwardChain,        ///< Linear emptiness via content-automata product.
  kVerticalConjunctive,  ///< Polynomial frame-tree typability check.
};

const char* FastPathRouteName(FastPathRoute route);

/// Route selection: downward chains win whenever applicable (they are the
/// cheaper procedure and need no schema preconditions); the vertical
/// procedure requires a duplicate-free and disjunction-free schema (or no
/// schema at all). `schema` may be null for schema-free queries.
FastPathRoute SelectFastPath(const FragmentProfile& profile, const SchemaClass* schema);

}  // namespace xpc

#endif  // XPC_CLASSIFY_PROFILE_H_
