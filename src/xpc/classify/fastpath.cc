#include "xpc/classify/fastpath.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "xpc/common/bits.h"
#include "xpc/schemaindex/schema_index.h"

namespace xpc {

namespace {

// ====================== Shape normalization ==============================

// --- Fast path A: downward chains ----------------------------------------

struct ChainStep {
  bool star = false;                // ↓* (descendant-or-self) vs ↓.
  std::vector<std::string> labels;  // Required labels at the target node.
};

struct Chain {
  std::vector<std::string> top;  // Required labels at the context node.
  std::vector<ChainStep> steps;
};

// Collects a label conjunction into `out`; fails on any other operator.
bool CollectLabels(const NodePtr& phi, std::vector<std::string>* out) {
  switch (phi->kind) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kLabel:
      out->push_back(phi->label);
      return true;
    case NodeKind::kAnd:
      return CollectLabels(phi->child1, out) && CollectLabels(phi->child2, out);
    default:
      return false;
  }
}

// Appends the steps of `path` to `chain`; qualifier labels attach to the
// last materialized position (the context node for a leading qualifier).
bool AppendChainPath(const PathPtr& path, Chain* chain) {
  switch (path->kind) {
    case PathKind::kSelf:
      return true;
    case PathKind::kSeq:
      return AppendChainPath(path->left, chain) && AppendChainPath(path->right, chain);
    case PathKind::kAxis:
      if (path->axis != Axis::kChild) return false;
      chain->steps.push_back({false, {}});
      return true;
    case PathKind::kAxisStar:
      if (path->axis != Axis::kChild) return false;
      chain->steps.push_back({true, {}});
      return true;
    case PathKind::kFilter: {
      if (!AppendChainPath(path->left, chain)) return false;
      std::vector<std::string>* at =
          chain->steps.empty() ? &chain->top : &chain->steps.back().labels;
      return CollectLabels(path->filter, at);
    }
    default:
      return false;
  }
}

// φ = label conjunction ∧ at most one ⟨chain⟩.
std::optional<Chain> ParseChain(const NodePtr& phi) {
  Chain chain;
  PathPtr some_path;
  std::vector<NodePtr> stack = {phi};
  while (!stack.empty()) {
    NodePtr n = stack.back();
    stack.pop_back();
    switch (n->kind) {
      case NodeKind::kTrue:
        break;
      case NodeKind::kLabel:
        chain.top.push_back(n->label);
        break;
      case NodeKind::kAnd:
        stack.push_back(n->child1);
        stack.push_back(n->child2);
        break;
      case NodeKind::kSome:
        if (some_path != nullptr) return std::nullopt;  // Two spines: branching.
        some_path = n->path;
        break;
      default:
        return std::nullopt;
    }
  }
  if (some_path != nullptr && !AppendChainPath(some_path, &chain)) return std::nullopt;
  return chain;
}

// --- Fast path B: frame trees --------------------------------------------

// One frame per distinct tree node the query demands. The normalization
// resolves the classic ↑-soundness traps syntactically: walking ↓ then ↑
// returns to the *same* frame (a structural parent pointer, not a fresh
// existential), and all ↑-demands from one frame merge level-wise into a
// single ancestor chain (a node has one parent).
struct Frame {
  std::vector<std::string> labels;
  std::vector<int> kids_child;  // Frames demanded via a ↓ edge.
  std::vector<int> kids_desc;   // Frames demanded via a ↓* edge (desc-or-self).
  int parent = -1;              // Structural parent frame, -1 if none known.
  bool via_desc = false;        // Introduced by ↓*: parent unresolvable.
};

struct FrameTree {
  std::vector<Frame> frames;
  int top = 0;  // Ancestor-most frame with a resolved position.
};

class FrameBuilder {
 public:
  bool Build(const NodePtr& phi, FrameTree* out) {
    frames_.clear();
    frames_.push_back(Frame{});
    top_ = 0;
    if (!AddNode(0, phi)) return false;
    out->frames = std::move(frames_);
    out->top = top_;
    return true;
  }

 private:
  bool AddNode(int f, const NodePtr& phi) {
    switch (phi->kind) {
      case NodeKind::kTrue:
        return true;
      case NodeKind::kLabel:
        frames_[f].labels.push_back(phi->label);
        return true;
      case NodeKind::kAnd:
        return AddNode(f, phi->child1) && AddNode(f, phi->child2);
      case NodeKind::kSome: {
        int end;
        return AddPath(f, phi->path, &end);
      }
      default:
        return false;
    }
  }

  bool AddPath(int f, const PathPtr& path, int* end) {
    switch (path->kind) {
      case PathKind::kSelf:
        *end = f;
        return true;
      case PathKind::kSeq: {
        int mid;
        return AddPath(f, path->left, &mid) && AddPath(mid, path->right, end);
      }
      case PathKind::kFilter:
        return AddPath(f, path->left, end) && AddNode(*end, path->filter);
      case PathKind::kAxis:
        if (path->axis == Axis::kChild) {
          int c = NewFrame();
          frames_[c].parent = f;
          frames_[f].kids_child.push_back(c);
          *end = c;
          return true;
        }
        if (path->axis == Axis::kParent) return EnsureParent(f, end);
        return false;
      case PathKind::kAxisStar: {
        if (path->axis != Axis::kChild) return false;
        int c = NewFrame();
        frames_[c].via_desc = true;
        frames_[f].kids_desc.push_back(c);
        *end = c;
        return true;
      }
      default:
        return false;
    }
  }

  bool EnsureParent(int f, int* end) {
    if (frames_[f].parent >= 0) {
      *end = frames_[f].parent;
      return true;
    }
    // ↑ at a ↓*-introduced frame: its structural parent is some unnamed
    // node of the descendant path — out of fragment.
    if (frames_[f].via_desc) return false;
    int p = NewFrame();
    frames_[p].kids_child.push_back(f);
    frames_[f].parent = p;
    top_ = p;  // f was the previous top (the only parentless non-desc frame).
    *end = p;
    return true;
  }

  int NewFrame() {
    frames_.push_back(Frame{});
    return static_cast<int>(frames_.size()) - 1;
  }

  std::vector<Frame> frames_;
  int top_ = 0;
};

// ====================== Schema analysis ==================================

// The PTIME skeleton both procedures share — the type-reachability closure
// (schemaindex/schema_index.h) plus the EDTD handle the witness builders
// need. Served from a registered `SchemaIndex` when the schema is warm;
// recomputed per query otherwise. Both sources run the same
// `ComputeTypeReachability`, so verdicts, witnesses, and the `explored`
// work measure are identical on either path.
struct SchemaAnalysis : TypeReachability {
  const Edtd* edtd = nullptr;

  const std::string& Mu(int t) const { return edtd->types()[t].concrete_label; }
};

SchemaAnalysis AnalyzeSchema(const Edtd& edtd) {
  SchemaAnalysis a;
  if (std::shared_ptr<const SchemaIndex> index = SchemaIndex::Lookup(edtd)) {
    static_cast<TypeReachability&>(a) = index->reachability();
  } else {
    static_cast<TypeReachability&>(a) = ComputeTypeReachability(edtd);
  }
  a.edtd = &edtd;
  return a;
}

// ====================== Word search helpers ==============================

// Some word of L(nfa) over `alphabet` containing symbol `must` (pass -1
// for no containment requirement). Plain BFS over (state, seen) pairs with
// parent pointers; content NFAs are small, so O(states · transitions) is
// fine. Returns (found, word).
std::pair<bool, std::vector<int>> FindWord(const Nfa& nfa, const Bits& alphabet, int must) {
  const int n = nfa.num_states();
  auto id = [](int q, int seen) { return q * 2 + seen; };
  std::vector<int> prev(2 * n, -2), prev_sym(2 * n, -2);
  std::deque<int> queue;
  const int seen0 = must < 0 ? 1 : 0;
  nfa.InitialSet().ForEach([&](int q) {
    if (prev[id(q, seen0)] == -2) {
      prev[id(q, seen0)] = -1;
      queue.push_back(id(q, seen0));
    }
  });
  int goal = -1;
  Bits accepting(n);
  for (int q : nfa.accepting()) accepting.Set(q);
  while (!queue.empty() && goal < 0) {
    int cur = queue.front();
    queue.pop_front();
    int q = cur / 2, seen = cur & 1;
    if (seen == 1 && accepting.Get(q)) {
      goal = cur;
      break;
    }
    for (const Nfa::Transition& tr : nfa.transitions()) {
      if (tr.from != q) continue;
      int next_seen = seen;
      if (tr.symbol != Nfa::kEpsilon) {
        if (!alphabet.Get(tr.symbol)) continue;
        if (tr.symbol == must) next_seen = 1;
      }
      int nid = id(tr.to, next_seen);
      if (prev[nid] == -2) {
        prev[nid] = cur;
        prev_sym[nid] = tr.symbol;
        queue.push_back(nid);
      }
    }
  }
  if (goal < 0) return {false, {}};
  std::vector<int> word;
  for (int cur = goal; prev[cur] != -1; cur = prev[cur]) {
    if (prev_sym[cur] != Nfa::kEpsilon) word.push_back(prev_sym[cur]);
  }
  std::reverse(word.begin(), word.end());
  return {true, word};
}

// A word of L(r) (over realizable types) containing every type available
// under r — the "pump every star once" word. For disjunction-free content
// models such a ⊆-maximal word exists; kUnion only appears here if the
// route gate is bypassed, in which case we pick the first feasible branch.
std::pair<bool, std::vector<int>> PumpOnce(const RegexPtr& r, const SchemaAnalysis& a) {
  switch (r->kind) {
    case Regex::Kind::kEpsilon:
      return {true, {}};
    case Regex::Kind::kEmpty:
      return {false, {}};
    case Regex::Kind::kSymbol: {
      int t = a.edtd->TypeIndex(r->symbol);
      if (t < 0 || !a.realizable.Get(t)) return {false, {}};
      return {true, {t}};
    }
    case Regex::Kind::kConcat: {
      auto left = PumpOnce(r->left, a);
      auto right = PumpOnce(r->right, a);
      if (!left.first || !right.first) return {false, {}};
      left.second.insert(left.second.end(), right.second.begin(), right.second.end());
      return left;
    }
    case Regex::Kind::kStar: {
      auto inner = PumpOnce(r->left, a);
      if (!inner.first) return {true, {}};  // Pump zero times.
      return inner;
    }
    case Regex::Kind::kUnion: {
      auto left = PumpOnce(r->left, a);
      return left.first ? left : PumpOnce(r->right, a);
    }
  }
  return {false, {}};
}

// Shortest avail-edge path `from → … → to` (exclusive of `from`, inclusive
// of `to`; empty when from == to). Exists whenever to ∈ down(from).
std::vector<int> AvailPath(const SchemaAnalysis& a, int from, int to) {
  if (from == to) return {};
  std::vector<int> parent(a.n, -2);
  std::deque<int> queue = {from};
  parent[from] = -1;
  while (!queue.empty()) {
    int t = queue.front();
    queue.pop_front();
    bool done = false;
    a.avail[t].ForEach([&](int u) {
      if (done || parent[u] != -2) return;
      parent[u] = t;
      if (u == to) {
        done = true;
        return;
      }
      queue.push_back(u);
    });
    if (done) break;
  }
  std::vector<int> path;
  for (int t = to; t != from; t = parent[t]) path.push_back(t);
  std::reverse(path.begin(), path.end());
  return path;
}

// The avail-edge chain from the root type to `t` (inclusive of both).
std::vector<int> RootChain(const SchemaAnalysis& a, int t) {
  std::vector<int> chain;
  for (int cur = t; cur != -1; cur = cur == a.root ? -1 : a.reach_parent[cur]) {
    chain.push_back(cur);
    if (cur == a.root) break;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

// ====================== Witness construction =============================

// Appends a minimal conforming expansion below `node` of type `t`: the
// children are a word over strictly-lower realizability rounds, so the
// recursion terminates on arbitrarily recursive schemas.
void FillBelow(XmlTree* tree, NodeId node, int t, const SchemaAnalysis& a) {
  Bits lower(a.n);
  for (int u = 0; u < a.n; ++u) {
    if (a.realize_round[u] >= 0 && a.realize_round[u] < a.realize_round[t]) lower.Set(u);
  }
  auto [ok, word] = FindWord(a.edtd->ContentNfa(t), lower, -1);
  if (!ok) return;  // Unreachable by the fixpoint's round invariant.
  for (int u : word) FillBelow(tree, tree->AddChild(node, a.Mu(u)), u, a);
}

// Adds one avail edge below `node` (type `from`): children are a word of
// L(P(from)) containing `to`; the first `to`-position is returned *empty*
// (the caller populates it), every other child is filled minimally.
NodeId DescendEdge(XmlTree* tree, NodeId node, int from, int to, const SchemaAnalysis& a) {
  auto [ok, word] = FindWord(a.edtd->ContentNfa(from), a.realizable, to);
  if (!ok) return kNoNode;  // Unreachable: to ∈ avail(from) by construction.
  NodeId next = kNoNode;
  for (int u : word) {
    NodeId c = tree->AddChild(node, a.Mu(u));
    if (u == to && next == kNoNode) {
      next = c;
    } else {
      FillBelow(tree, c, u, a);
    }
  }
  return next;
}

// ====================== Fast path A ======================================

int DistinctCount(std::vector<std::string> labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return static_cast<int>(labels.size());
}

SatResult ChainSatFree(const Chain& chain) {
  SatResult r;
  r.engine = "fastpath-chain";
  r.explored_states = static_cast<int64_t>(chain.steps.size()) + 1;
  // Conforming trees of the free schema are single-labeled, so a chain is
  // satisfiable iff no position demands two distinct labels.
  if (DistinctCount(chain.top) > 1) {
    r.status = SolveStatus::kUnsat;
    return r;
  }
  for (const ChainStep& step : chain.steps) {
    if (DistinctCount(step.labels) > 1) {
      r.status = SolveStatus::kUnsat;
      return r;
    }
  }
  r.status = SolveStatus::kSat;
  XmlTree tree(chain.top.empty() ? "a" : chain.top[0]);
  NodeId node = tree.root();
  for (const ChainStep& step : chain.steps) {
    if (step.star && step.labels.empty()) continue;  // ↓* matched as self.
    node = tree.AddChild(node, step.labels.empty() ? "a" : step.labels[0]);
  }
  r.witness = std::move(tree);
  return r;
}

SatResult ChainSatEdtd(const Chain& chain, const Edtd& edtd) {
  SatResult r;
  r.engine = "fastpath-chain+edtd";
  SchemaAnalysis a = AnalyzeSchema(edtd);
  r.explored_states = a.explored;
  if (a.root < 0 || !a.realizable.Get(a.root)) {
    r.status = SolveStatus::kUnsat;  // No conforming tree at all.
    return r;
  }

  auto mask_for = [&](const std::vector<std::string>& labels) {
    Bits m(a.n);
    for (int t = 0; t < a.n; ++t) {
      bool ok = true;
      for (const std::string& l : labels) ok = ok && a.Mu(t) == l;
      if (ok) m.Set(t);
    }
    return m;
  };

  // Propagate the set of schema types reachable at each chain position.
  std::vector<Bits> layers;
  Bits s = a.reachable;
  s.IntersectWith(mask_for(chain.top));
  layers.push_back(s);
  for (const ChainStep& step : chain.steps) {
    Bits next(a.n);
    if (step.star) next = s;  // Desc-or-self includes staying put.
    s.ForEach([&](int t) { next.UnionWith(step.star ? a.down[t] : a.avail[t]); });
    next.IntersectWith(mask_for(step.labels));
    layers.push_back(next);
    s = next;
    r.explored_states += s.Count();
  }
  if (layers.back().None() || layers.front().None()) {
    r.status = SolveStatus::kUnsat;
    return r;
  }
  r.status = SolveStatus::kSat;

  // Witness: choose one type per position back to front, expand ↓* hops
  // into explicit avail chains, prepend the root chain, materialize.
  const int k = static_cast<int>(layers.size()) - 1;
  std::vector<int> pos(layers.size(), -1);
  layers[k].ForEach([&](int t) {
    if (pos[k] < 0) pos[k] = t;
  });
  for (int i = k; i > 0; --i) {
    const ChainStep& step = chain.steps[i - 1];
    layers[i - 1].ForEach([&](int t) {
      if (pos[i - 1] >= 0) return;
      bool edge = step.star ? (t == pos[i] || a.down[t].Get(pos[i])) : a.avail[t].Get(pos[i]);
      if (edge) pos[i - 1] = t;
    });
  }
  std::vector<int> spine = RootChain(a, pos[0]);
  for (int i = 1; i <= k; ++i) {
    if (chain.steps[i - 1].star) {
      for (int t : AvailPath(a, pos[i - 1], pos[i])) spine.push_back(t);
    } else {
      spine.push_back(pos[i]);
    }
  }
  XmlTree tree(a.Mu(spine[0]));
  NodeId node = tree.root();
  for (size_t i = 0; i + 1 < spine.size(); ++i) {
    node = DescendEdge(&tree, node, spine[i], spine[i + 1], a);
  }
  FillBelow(&tree, node, spine.back(), a);
  r.witness = std::move(tree);
  return r;
}

// ====================== Fast path B ======================================

SatResult VerticalSatFree(const FrameTree& ft) {
  SatResult r;
  r.engine = "fastpath-vertical";
  r.explored_states = static_cast<int64_t>(ft.frames.size());
  for (const Frame& f : ft.frames) {
    if (DistinctCount(f.labels) > 1) {
      r.status = SolveStatus::kUnsat;
      return r;
    }
  }
  // Positive vertical demands over the free schema: materialize the frame
  // tree literally (↓*-demands as plain children — a child is a strict
  // descendant).
  r.status = SolveStatus::kSat;
  auto label_of = [&](int f) {
    return ft.frames[f].labels.empty() ? std::string("a") : ft.frames[f].labels[0];
  };
  XmlTree tree(label_of(ft.top));
  std::function<void(int, NodeId)> emit = [&](int f, NodeId node) {
    for (int c : ft.frames[f].kids_child) emit(c, tree.AddChild(node, label_of(c)));
    for (int d : ft.frames[f].kids_desc) emit(d, tree.AddChild(node, label_of(d)));
  };
  emit(ft.top, tree.root());
  r.witness = std::move(tree);
  return r;
}

SatResult VerticalSatEdtd(const FrameTree& ft, const Edtd& edtd) {
  SatResult r;
  r.engine = "fastpath-vertical+edtd";
  SchemaAnalysis a = AnalyzeSchema(edtd);
  r.explored_states = a.explored;
  if (a.root < 0 || !a.realizable.Get(a.root)) {
    r.status = SolveStatus::kUnsat;
    return r;
  }

  // Bottom-up typability: frame f fits type t iff the labels match μ(t),
  // every ↓-kid fits some available child type, and every ↓*-kid fits here
  // or at some type available strictly below. Joint demands reduce to
  // individual availability because the content models on this route are
  // disjunction-free (a single word realizes all available types at once).
  const int nf = static_cast<int>(ft.frames.size());
  std::vector<std::vector<char>> memo(nf, std::vector<char>(a.n, 0));
  std::function<bool(int, int)> typable = [&](int f, int t) -> bool {
    char& m = memo[f][t];
    if (m != 0) return m == 1;
    ++r.explored_states;
    bool ok = a.realizable.Get(t);
    for (const std::string& l : ft.frames[f].labels) ok = ok && a.Mu(t) == l;
    for (int c : ft.frames[f].kids_child) {
      if (!ok) break;
      bool found = false;
      a.avail[t].ForEach([&](int u) { found = found || typable(c, u); });
      ok = found;
    }
    for (int d : ft.frames[f].kids_desc) {
      if (!ok) break;
      bool found = typable(d, t);
      if (!found) a.down[t].ForEach([&](int u) { found = found || typable(d, u); });
      ok = found;
    }
    m = ok ? 1 : 2;
    return ok;
  };

  int chosen = -1;
  a.reachable.ForEach([&](int t) {
    if (chosen < 0 && typable(ft.top, t)) chosen = t;
  });
  if (chosen < 0) {
    r.status = SolveStatus::kUnsat;
    return r;
  }
  r.status = SolveStatus::kSat;

  // Witness: place the top frame at `chosen` below a root chain, then
  // recursively realize demands. Same-typed sibling demands merge onto one
  // child (conjunctive frames compose); ↓*-demands co-locate when typable
  // here, otherwise descend along a shortest avail chain.
  struct ChainDemand {
    std::vector<int> path;  // Remaining types strictly below, ending at host.
    int frame;
  };
  XmlTree tree(a.Mu(a.root));
  std::function<void(NodeId, int, std::vector<int>, std::vector<ChainDemand>)> build =
      [&](NodeId node, int t, std::vector<int> here, std::vector<ChainDemand> chains) {
        struct Demand {
          std::vector<int> frames;
          std::vector<ChainDemand> chains;
        };
        std::map<int, Demand> child_demands;
        for (ChainDemand& ch : chains) {
          if (ch.path.empty()) {
            here.push_back(ch.frame);
          } else {
            int u = ch.path.front();
            ch.path.erase(ch.path.begin());
            child_demands[u].chains.push_back(std::move(ch));
          }
        }
        for (size_t i = 0; i < here.size(); ++i) {
          const Frame& fr = ft.frames[here[i]];
          for (int c : fr.kids_child) {
            int u = -1;
            a.avail[t].ForEach([&](int v) {
              if (u < 0 && typable(c, v)) u = v;
            });
            child_demands[u].frames.push_back(c);
          }
          for (int d : fr.kids_desc) {
            if (typable(d, t)) {
              here.push_back(d);  // Desc-or-self satisfied at this node.
              continue;
            }
            int u = -1;
            a.down[t].ForEach([&](int v) {
              if (u < 0 && typable(d, v)) u = v;
            });
            std::vector<int> path = AvailPath(a, t, u);
            int first = path.front();
            path.erase(path.begin());
            child_demands[first].chains.push_back({std::move(path), d});
          }
        }
        auto [ok, word] = PumpOnce(edtd.types()[t].content, a);
        if (!ok) return;  // Unreachable: t is realizable.
        std::set<int> used;
        for (int u : word) {
          NodeId c = tree.AddChild(node, a.Mu(u));
          auto it = child_demands.find(u);
          if (it != child_demands.end() && used.insert(u).second) {
            build(c, u, std::move(it->second.frames), std::move(it->second.chains));
          } else {
            FillBelow(&tree, c, u, a);
          }
        }
      };

  std::vector<int> spine = RootChain(a, chosen);
  NodeId node = tree.root();
  for (size_t i = 0; i + 1 < spine.size(); ++i) {
    node = DescendEdge(&tree, node, spine[i], spine[i + 1], a);
  }
  build(node, chosen, {ft.top}, {});
  r.witness = std::move(tree);
  return r;
}

}  // namespace

// ====================== Public interface =================================

bool InDownwardChainFragment(const NodePtr& phi) { return ParseChain(phi).has_value(); }

bool InVerticalConjunctiveFragment(const NodePtr& phi) {
  FrameTree ft;
  return FrameBuilder().Build(phi, &ft);
}

SatResult DownwardChainSatisfiable(const NodePtr& phi, const Edtd* edtd) {
  std::optional<Chain> chain = ParseChain(phi);
  if (!chain.has_value()) {
    SatResult r;
    r.engine = "fastpath-chain:out-of-fragment";
    return r;  // kResourceLimit: caller bypassed the classifier gate.
  }
  return edtd != nullptr ? ChainSatEdtd(*chain, *edtd) : ChainSatFree(*chain);
}

SatResult VerticalConjunctiveSatisfiable(const NodePtr& phi, const Edtd* edtd) {
  FrameTree ft;
  if (!FrameBuilder().Build(phi, &ft)) {
    SatResult r;
    r.engine = "fastpath-vertical:out-of-fragment";
    return r;  // kResourceLimit: caller bypassed the classifier gate.
  }
  return edtd != nullptr ? VerticalSatEdtd(ft, *edtd) : VerticalSatFree(ft);
}

}  // namespace xpc
