#ifndef XPC_STREAM_STREAM_COMPILE_H_
#define XPC_STREAM_STREAM_COMPILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "xpc/automata/nfa.h"
#include "xpc/common/bits.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Compiling k registered queries into ONE shared automaton over root-path
/// label words (DESIGN.md §2.11).
///
/// The streamable fragment is the downward, label-boolean slice of
/// CoreXPath: `down`, `down*`, `.`, composition, union, `*`, and filters
/// that are boolean combinations of label tests. For a query α in this
/// fragment, whether (root, n) ∈ ⟦α⟧ depends only on the label word
/// label(root)·…·label(n) of the root-to-n path, so a bundle of queries
/// becomes one word-NFA interleaving every query's states: a SAX pass
/// maintains the reachable state set per open element and reads off, per
/// query, whether its accepting mask is hit.

/// The bundle alphabet: every label mentioned by some registered query gets
/// a symbol in [1, size); symbol 0 is ⊥, "any label the bundle never
/// mentions". Mapping unseen labels to one shared symbol keeps the
/// automaton's transition tables dense and document-vocabulary independent.
struct StreamAlphabet {
  std::vector<std::string> labels;  ///< labels[i] is the label of symbol i+1.
  std::unordered_map<std::string, int> symbol_of;

  int size() const { return static_cast<int>(labels.size()) + 1; }

  /// Symbol of a document label (0 = ⊥ for labels no query mentions).
  int SymbolOf(const std::string& label) const {
    auto it = symbol_of.find(label);
    return it == symbol_of.end() ? 0 : it->second;
  }
};

/// One compile unit: a representative path plus the ids of every registered
/// query it answers for (itself, structural/semantic duplicates folded onto
/// it by the BundleOptimizer).
struct BundleQuery {
  PathPtr path;
  std::vector<int32_t> owner_ids;
};

/// The shared automaton. Immutable once built; share freely across matcher
/// instances and threads (the NFA index is pre-built).
struct CompiledBundle {
  StreamAlphabet alphabet;
  Nfa nfa;  ///< ε-free; alphabet.size() symbols; CSR index pre-built.
  Bits final_mask;  ///< States accepting for at least one query.
  /// owners[s]: sorted query ids that accept at state s (empty off-mask).
  std::vector<std::vector<int32_t>> owners;
  int num_queries = 0;  ///< Total registered ids (bound for owner ids).

  CompiledBundle() : nfa(1, 0) {}

  /// Per-query accepting mask over the shared state space, assembled from
  /// `owners` on demand (the matcher's per-set query masks are the packed
  /// representation used on the hot path; this is the per-query view the
  /// reference legs and tests consume).
  Bits QueryFinalMask(int query_id) const;
};

/// Returns "" when `path` lies in the streamable fragment, otherwise a
/// human-readable reason naming the first offending construct (upward or
/// sibling axes, ∩, −, for-loops, ⟨α⟩ / ≈ / "is $var" filters).
std::string StreamableReason(const PathPtr& path);
inline bool IsStreamable(const PathPtr& path) { return StreamableReason(path).empty(); }

/// Compiles representative queries into one shared automaton. Every path
/// must be streamable (`StreamableReason` == ""); `num_queries` bounds the
/// owner ids appearing in `queries`. Deterministic: the automaton depends
/// only on the argument list (labels are interned in first-mention order).
CompiledBundle CompileBundle(const std::vector<BundleQuery>& queries, int num_queries);

/// Convenience: compile a single query as its own bundle (the per-query
/// reference leg of the differential tests and `bench_stream`).
CompiledBundle CompileSingle(const PathPtr& query);

}  // namespace xpc

#endif  // XPC_STREAM_STREAM_COMPILE_H_
