#include "xpc/stream/bundle_optimizer.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "xpc/common/stats.h"
#include "xpc/schemaindex/schema_index.h"
#include "xpc/stream/stream_compile.h"

namespace xpc {

namespace {

/// Root-relative satisfiability of one streamable query, decided on its own
/// compiled automaton rather than by an engine probe. The streaming matcher
/// only fires matches whose source is the document root, and in the
/// streamable fragment (root, n) ∈ ⟦α⟧ depends only on the root-to-n label
/// word — so root-sat is exactly word-reachability of a final state.
/// (Relativizing the *engine* probes instead, via `.[¬⟨up⟩]/α`, leaves the
/// downward fragment and lands in the exponential general pipeline; this
/// check is PTIME and complete for the fragment.)
///
/// Without a schema every label word labels some root path (a unary tree),
/// so plain NFA reachability decides it.
bool RootFeasible(const CompiledBundle& single) {
  const Nfa& nfa = single.nfa;
  Bits seen(nfa.num_states());
  Bits frontier = nfa.InitialSet();
  while (true) {
    Bits next(nfa.num_states());
    for (int sym = 0; sym < single.alphabet.size(); ++sym) {
      next.UnionWith(nfa.Step(frontier, sym));
    }
    if (next.Intersects(single.final_mask)) return true;
    if (!seen.UnionWith(next)) return false;  // Fixpoint, no final reached.
    frontier = std::move(next);
  }
}

/// Schema-relative variant: product BFS of the query automaton with the
/// EDTD type graph (root type, avail edges), both restricted to
/// reachable∧realizable types via the SchemaIndex closure. Non-empty iff
/// some conforming document has a root path whose label word the query
/// accepts.
bool RootFeasibleUnderEdtd(const CompiledBundle& single, const Edtd& edtd,
                           const TypeReachability& reach) {
  const Nfa& nfa = single.nfa;
  if (reach.root < 0 || !reach.reachable.Get(reach.root)) return false;
  std::vector<int> sym(reach.n);
  for (int t = 0; t < reach.n; ++t) {
    sym[t] = single.alphabet.SymbolOf(edtd.types()[t].concrete_label);
  }
  std::vector<Bits> at(reach.n, Bits(nfa.num_states()));
  std::vector<int> worklist;
  at[reach.root] = nfa.Step(nfa.InitialSet(), sym[reach.root]);
  if (at[reach.root].Intersects(single.final_mask)) return true;
  worklist.push_back(reach.root);
  while (!worklist.empty()) {
    int t = worklist.back();
    worklist.pop_back();
    bool hit = false;
    reach.avail[t].ForEach([&](int u) {
      if (hit || !reach.reachable.Get(u)) return;
      Bits next = nfa.Step(at[t], sym[u]);
      if (next.Intersects(single.final_mask)) {
        hit = true;
        return;
      }
      if (at[u].UnionWith(next)) worklist.push_back(u);
    });
    if (hit) return true;
  }
  return false;
}

void CollectLabels(const NodePtr& n, std::set<std::string>* out) {
  switch (n->kind) {
    case NodeKind::kLabel:
      out->insert(n->label);
      return;
    case NodeKind::kNot:
      CollectLabels(n->child1, out);
      return;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      CollectLabels(n->child1, out);
      CollectLabels(n->child2, out);
      return;
    default:
      return;
  }
}

void CollectLabels(const PathPtr& p, std::set<std::string>* out) {
  switch (p->kind) {
    case PathKind::kSeq:
    case PathKind::kUnion:
      CollectLabels(p->left, out);
      CollectLabels(p->right, out);
      return;
    case PathKind::kFilter:
      CollectLabels(p->left, out);
      CollectLabels(p->filter, out);
      return;
    case PathKind::kStar:
      CollectLabels(p->left, out);
      return;
    default:
      return;
  }
}

/// Streamable queries without general transitive closure α* (the ↓/↓*-only
/// slice) sit inside CoreXPath↓(∩), where the engines decide containment
/// through the fast downward pipeline. A kStar anywhere routes the probe to
/// the general EXPTIME engines — unaffordable mid-optimization — so such
/// queries are exempt from semantic probing (structural dedupe and the
/// automaton-based unsat check still apply).
bool ProbeFriendly(const PathPtr& p) {
  switch (p->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return true;
    case PathKind::kSeq:
    case PathKind::kUnion:
      return ProbeFriendly(p->left) && ProbeFriendly(p->right);
    case PathKind::kFilter:
      return ProbeFriendly(p->left);  // Streamable filters are label booleans.
    default:
      return false;  // kStar (and anything else) stays unprobed.
  }
}

struct Rep {
  PathPtr path;  ///< Canonical query (what CompileBundle consumes).
  int32_t id;
  std::set<std::string> labels;
  bool probe_ok;  ///< Eligible as a semantic-probe operand.
};

}  // namespace

BundleOptimizer::BundleOptimizer(Session* session, BundleOptions options)
    : session_(session), options_(options) {}

OptimizedBundle BundleOptimizer::Optimize(const std::vector<PathPtr>& queries) {
  OptimizedBundle out;
  out.num_queries = static_cast<int>(queries.size());
  out.queries.resize(queries.size());

  // One schema closure serves every per-query root-feasibility check.
  const Edtd* edtd = session_->edtd();
  std::shared_ptr<const SchemaIndex> index;
  TypeReachability local_reach;
  const TypeReachability* reach = nullptr;
  if (options_.reject_unsat && edtd != nullptr) {
    index = SchemaIndex::Acquire(*edtd);
    if (index != nullptr) {
      reach = &index->reachability();
    } else {
      local_reach = ComputeTypeReachability(*edtd);
      reach = &local_reach;
    }
  }

  std::unordered_map<const PathExpr*, int32_t> by_identity;  // Canonical AST → rep id.
  std::map<std::string, std::vector<int32_t>> buckets;  // Label signature → rep ids.
  std::vector<Rep> reps;                                // Indexed by rep order.
  std::unordered_map<int32_t, int32_t> rep_index;       // Query id → index in reps.
  std::unordered_map<int32_t, std::vector<int32_t>> aliases;  // Rep id → alias ids.

  for (int32_t i = 0; i < static_cast<int32_t>(queries.size()); ++i) {
    BundleQueryInfo& info = out.queries[i];
    std::string reason = StreamableReason(queries[i]);
    if (!reason.empty()) {
      info.disposition = BundleQueryInfo::Disposition::kRejected;
      info.reason = reason;
      ++out.num_rejected;
      continue;
    }
    PathPtr canonical = session_->Intern(queries[i]);

    // Unsat rejection: a query that can never fire from the document root
    // is dead weight in the automaton. Decided exactly (for this fragment)
    // on the query's own compiled automaton — see RootFeasible*.
    if (options_.reject_unsat) {
      CompiledBundle single = CompileSingle(canonical);
      bool feasible = edtd != nullptr
                          ? RootFeasibleUnderEdtd(single, *edtd, *reach)
                          : RootFeasible(single);
      if (!feasible) {
        info.disposition = BundleQueryInfo::Disposition::kUnsat;
        info.reason = edtd != nullptr
                          ? "matches no conforming document from the root"
                          : "matches no document from the root";
        ++out.num_unsat;
        StatsAdd(Metric::kStreamQueriesUnsat);
        continue;
      }
    }

    const bool probe_ok = ProbeFriendly(canonical);
    std::set<std::string> labels;
    CollectLabels(canonical, &labels);
    std::string signature;
    for (const std::string& l : labels) {
      signature += l;
      signature += '\0';
    }

    if (options_.dedupe) {
      // Structural: the session interner gives canonical identity for free.
      auto it = by_identity.find(canonical.get());
      if (it != by_identity.end()) {
        info.disposition = BundleQueryInfo::Disposition::kAliased;
        info.target = it->second;
        aliases[it->second].push_back(i);
        ++out.num_aliased;
        StatsAdd(Metric::kStreamQueriesDeduped);
        continue;
      }
      // Semantic: probe same-signature representatives (equivalent queries
      // mention equal label sets in all but contrived cases; the bucket is
      // a sound-but-incomplete prefilter that bounds engine calls). The
      // probe quantifies over all context nodes — stronger than the
      // root-relative fact streaming needs, so a kContained verdict is
      // sound; root-only coincidences are merely missed.
      bool aliased = false;
      int probes = 0;
      for (int32_t rep_id : buckets[signature]) {
        if (!probe_ok) break;
        if (probes++ >= options_.max_candidates) break;
        const Rep& rep = reps[rep_index[rep_id]];
        if (!rep.probe_ok) continue;
        ContainmentResult eq = session_->Equivalent(canonical, rep.path);
        if (eq.verdict == ContainmentVerdict::kContained) {
          info.disposition = BundleQueryInfo::Disposition::kAliased;
          info.target = rep_id;
          aliases[rep_id].push_back(i);
          ++out.num_aliased;
          StatsAdd(Metric::kStreamQueriesDeduped);
          aliased = true;
          break;
        }
      }
      if (aliased) continue;
    }

    if (options_.prune_subsumed) {
      // q is covered by rep when ⟦q⟧ ⊆ ⟦rep⟧. A subsumer must mention no
      // label q does not (necessary for coverage in the positive fragment,
      // and it keeps the probe fan-out tiny: label-free queries like
      // `down*` are everyone's candidate).
      bool subsumed = false;
      int probes = 0;
      for (const Rep& rep : reps) {
        if (!probe_ok) break;
        if (rep.id == i || !rep.probe_ok) continue;
        if (!std::includes(labels.begin(), labels.end(), rep.labels.begin(),
                           rep.labels.end())) {
          continue;
        }
        if (probes++ >= options_.max_candidates) break;
        ContainmentResult c = session_->Contains(canonical, rep.path);
        if (c.verdict == ContainmentVerdict::kContained) {
          info.disposition = BundleQueryInfo::Disposition::kSubsumed;
          info.target = rep.id;
          ++out.num_subsumed;
          StatsAdd(Metric::kStreamQueriesSubsumed);
          subsumed = true;
          break;
        }
      }
      if (subsumed) continue;
    }

    info.disposition = BundleQueryInfo::Disposition::kActive;
    by_identity.emplace(canonical.get(), i);
    rep_index[i] = static_cast<int32_t>(reps.size());
    buckets[signature].push_back(i);
    reps.push_back(Rep{canonical, i, std::move(labels), probe_ok});
    ++out.num_active;
  }

  out.compile_set.reserve(reps.size());
  for (const Rep& rep : reps) {
    BundleQuery bq;
    bq.path = rep.path;
    bq.owner_ids.push_back(rep.id);
    auto it = aliases.find(rep.id);
    if (it != aliases.end()) {
      bq.owner_ids.insert(bq.owner_ids.end(), it->second.begin(), it->second.end());
    }
    std::sort(bq.owner_ids.begin(), bq.owner_ids.end());
    out.compile_set.push_back(std::move(bq));
  }
  return out;
}

}  // namespace xpc
