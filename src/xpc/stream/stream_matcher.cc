#include "xpc/stream/stream_matcher.h"

#include <algorithm>
#include <utility>

#include "xpc/common/stats.h"

namespace xpc {

StreamMatcher::StreamMatcher(const CompiledBundle* bundle) : bundle_(bundle) {
  initial_id_ = Intern(bundle_->nfa.InitialSet());
  stack_.reserve(64);
  stack_.push_back(initial_id_);
}

void StreamMatcher::BeginDocument() {
  if (events_ != 0) {
    StatsAdd(Metric::kStreamEvents, events_);
    StatsAdd(Metric::kStreamMatches, matches_);
    total_events_ += events_;
    total_matches_ += matches_;
    events_ = 0;
    matches_ = 0;
  }
  stack_.clear();
  stack_.push_back(initial_id_);
  next_ordinal_ = 0;
  balanced_ = true;
  arena_.Reset();
}

int32_t StreamMatcher::Intern(const Bits& set) {
  auto it = intern_.find(set);
  if (it != intern_.end()) return it->second;
  // Interned state is long-lived: copy the (possibly arena-backed) set and
  // build its metadata heap-side.
  ScopedArenaPause pause;
  DState d;
  d.set = set;
  d.query_mask = Bits(bundle_->num_queries);
  Bits hits = set;
  hits.IntersectWith(bundle_->final_mask);
  hits.ForEach([&](int s) {
    for (int32_t q : bundle_->owners[s]) {
      if (!d.query_mask.Get(q)) {
        d.query_mask.Set(q);
        d.matched.push_back(q);
      }
    }
  });
  std::sort(d.matched.begin(), d.matched.end());
  d.next.assign(bundle_->alphabet.size(), -1);
  int32_t id = static_cast<int32_t>(states_.size());
  states_.push_back(std::move(d));
  intern_.emplace(states_.back().set, id);
  StatsGaugeMax(Metric::kStreamDfaStates, static_cast<int64_t>(states_.size()));
  return id;
}

int32_t StreamMatcher::Transition(int32_t from, int symbol) {
  int32_t cached = states_[from].next[symbol];
  if (cached >= 0) return cached;
  StatsAdd(Metric::kStreamDfaMisses);
  // Miss path: step the NFA set through the CSR index. The transient result
  // lives in the per-document arena; Intern copies it out if it is new.
  int32_t to;
  {
    ScopedArenaInstall install(&arena_);
    Bits stepped = bundle_->nfa.Step(states_[from].set, symbol);
    to = Intern(stepped);
  }
  states_[from].next[symbol] = to;
  return to;
}

int64_t StreamMatcher::StartSymbol(int symbol) {
  ++events_;
  int32_t id = Transition(stack_.back(), symbol);
  stack_.push_back(id);
  int64_t ordinal = next_ordinal_++;
  const DState& d = states_[id];
  if (!d.matched.empty()) {
    matches_ += static_cast<int64_t>(d.matched.size());
    if (callback_) {
      for (int32_t q : d.matched) callback_(q, ordinal);
    }
  }
  return ordinal;
}

void StreamMatcher::EndElement() {
  ++events_;
  if (stack_.size() <= 1) {
    balanced_ = false;  // Underflow: more ends than starts. Recover.
    return;
  }
  stack_.pop_back();
}

void StreamMatcher::Text() { ++events_; }

bool StreamMatcher::EndDocument() {
  bool ok = balanced_ && stack_.size() == 1;
  StatsAdd(Metric::kStreamEvents, events_);
  StatsAdd(Metric::kStreamMatches, matches_);
  total_events_ += events_;
  total_matches_ += matches_;
  events_ = 0;
  matches_ = 0;
  stack_.clear();
  stack_.push_back(initial_id_);
  next_ordinal_ = 0;
  balanced_ = true;
  arena_.Reset();
  return ok;
}

std::vector<std::pair<int32_t, int64_t>> StreamMatcher::MatchStream(
    const std::vector<StreamEvent>& events) {
  std::vector<std::pair<int32_t, int64_t>> out;
  Callback saved = std::move(callback_);
  callback_ = [&out](int32_t q, int64_t n) { out.push_back({q, n}); };
  BeginDocument();
  for (const StreamEvent& e : events) {
    switch (e.kind) {
      case StreamEventKind::kStartElement:
        StartElement(e.label);
        break;
      case StreamEventKind::kEndElement:
        EndElement();
        break;
      case StreamEventKind::kText:
        Text();
        break;
    }
  }
  EndDocument();
  callback_ = std::move(saved);
  return out;
}

const Bits& StreamMatcher::CurrentMatches() const {
  return states_[stack_.back()].query_mask;
}

}  // namespace xpc
