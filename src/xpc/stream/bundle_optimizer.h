#ifndef XPC_STREAM_BUNDLE_OPTIMIZER_H_
#define XPC_STREAM_BUNDLE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "xpc/core/session.h"
#include "xpc/stream/stream_compile.h"

namespace xpc {

/// Pre-deployment bundle optimization (DESIGN.md §2.11): before k queries
/// reach the shared automaton, the containment engines shrink the bundle.
///
///   dedupe      — structurally equal queries (session interner identity)
///                 and, within cheap signature buckets, semantically
///                 equivalent ones collapse onto one representative. An
///                 aliased query still fires on every one of its matches.
///   subsumption — OPT-IN: a query whose matches are provably a subset of
///                 an already-registered query's (Contains verdict
///                 kContained) is dropped and NEVER fires; its subsumer
///                 covers every node it would have matched. Sound for
///                 union/topic routing ("is any query interested?"), wrong
///                 for per-query delivery — hence off by default.
///   unsat       — queries that can never fire from the document root are
///                 dropped. Decided exactly for the streamable fragment by
///                 a PTIME product of the query's own compiled automaton
///                 with the SchemaIndex type-reachability closure of the
///                 session's ambient EDTD (plain automaton emptiness when
///                 no EDTD is bound) — root-relative, unlike the engines'
///                 any-context-node satisfiability.
///
/// Verdict caution is one-sided: only definite engine answers (kContained)
/// remove anything; kUnknown / resource-limit keeps the query. The
/// containment probes quantify over every context node — stronger than the
/// root-relative fact streaming needs — so their verdicts stay sound.
struct BundleOptions {
  bool dedupe = true;
  bool prune_subsumed = false;
  bool reject_unsat = true;
  /// Per-query cap on containment probes in the dedupe / subsumption
  /// passes, so a 10k-query bundle stays O(k · cap) engine calls.
  int max_candidates = 64;
};

/// What became of one registered query.
struct BundleQueryInfo {
  enum class Disposition {
    kActive,      ///< Compiled as a representative.
    kAliased,     ///< Equivalent to `target`; fires via its states.
    kSubsumed,    ///< Contained in `target`; dropped, never fires.
    kUnsat,       ///< Unsatisfiable; dropped, never fires.
    kRejected,    ///< Outside the streamable fragment; see `reason`.
  };
  Disposition disposition = Disposition::kActive;
  int32_t target = -1;  ///< Representative query id (kAliased / kSubsumed).
  std::string reason;   ///< Human-readable detail (kRejected / kUnsat).
};

struct OptimizedBundle {
  std::vector<BundleQueryInfo> queries;   ///< Indexed by registered query id.
  std::vector<BundleQuery> compile_set;   ///< Input for CompileBundle.
  int num_queries = 0;                    ///< Total registered ids.
  int num_active = 0;
  int num_aliased = 0;
  int num_subsumed = 0;
  int num_unsat = 0;
  int num_rejected = 0;
};

class BundleOptimizer {
 public:
  /// `session` supplies the interner, containment engines and ambient EDTD;
  /// must outlive the optimizer. Bind an EDTD (`Session::SetEdtd`) before
  /// optimizing to get schema-relative unsat rejection.
  explicit BundleOptimizer(Session* session, BundleOptions options = {});

  /// Classifies every query and assembles the compile set. Deterministic
  /// for a fixed session configuration: probes run in registration order.
  OptimizedBundle Optimize(const std::vector<PathPtr>& queries);

 private:
  Session* session_;
  BundleOptions options_;
};

}  // namespace xpc

#endif  // XPC_STREAM_BUNDLE_OPTIMIZER_H_
