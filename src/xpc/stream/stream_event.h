#ifndef XPC_STREAM_STREAM_EVENT_H_
#define XPC_STREAM_STREAM_EVENT_H_

#include <string>
#include <vector>

#include "xpc/tree/xml_tree.h"

namespace xpc {

/// SAX-style document events (DESIGN.md §2.11). A well-formed stream is a
/// balanced sequence: one StartElement per node in document order, the
/// matching EndElement when its subtree closes, and any number of Text
/// events between them. Text carries no structure the streamable fragment
/// can observe, so the matcher counts it but never changes state on it.
enum class StreamEventKind {
  kStartElement,  ///< Opens a node; `label` is its element label.
  kEndElement,    ///< Closes the most recently opened node.
  kText,          ///< Character data; ignored by matching.
};

struct StreamEvent {
  StreamEventKind kind = StreamEventKind::kStartElement;
  std::string label;  ///< Element label; empty for kEndElement / kText.
};

/// Serializes a tree into its SAX event stream (preorder; 2·|nodes| events,
/// plus one Text event per leaf when `text_at_leaves` is set — handy for
/// exercising the Text no-op path in tests and benches). StartElement
/// ordinals assigned by a matcher replaying this stream equal the tree's
/// preorder node ranks, which is what lets per-node match sets be compared
/// against `Evaluator::EvalPath` results directly.
inline std::vector<StreamEvent> EventsOf(const XmlTree& tree,
                                         bool text_at_leaves = false) {
  std::vector<StreamEvent> events;
  events.reserve(static_cast<size_t>(tree.size()) * 2);
  // Explicit stack: (node, closing?) pairs, children pushed in reverse so
  // the stream comes out in document order.
  std::vector<std::pair<NodeId, bool>> stack;
  stack.push_back({tree.root(), false});
  while (!stack.empty()) {
    auto [n, closing] = stack.back();
    stack.pop_back();
    if (closing) {
      events.push_back({StreamEventKind::kEndElement, ""});
      continue;
    }
    events.push_back({StreamEventKind::kStartElement, tree.label(n)});
    stack.push_back({n, true});
    if (tree.first_child(n) == kNoNode && text_at_leaves) {
      events.push_back({StreamEventKind::kText, ""});
    }
    std::vector<NodeId> kids;
    for (NodeId c = tree.first_child(n); c != kNoNode;
         c = tree.next_sibling(c)) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, false});
    }
  }
  return events;
}

}  // namespace xpc

#endif  // XPC_STREAM_STREAM_EVENT_H_
