#include "xpc/stream/stream_compile.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "xpc/common/arena.h"
#include "xpc/common/stats.h"

namespace xpc {

namespace {

// --- Streamable-fragment check -------------------------------------------

std::string NodeReason(const NodePtr& n) {
  switch (n->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
      return "";
    case NodeKind::kNot:
      return NodeReason(n->child1);
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::string r = NodeReason(n->child1);
      return r.empty() ? NodeReason(n->child2) : r;
    }
    case NodeKind::kSome:
      return "<path> filters are not streamable (label-boolean filters only)";
    case NodeKind::kPathEq:
      return "path-equality filters are not streamable";
    case NodeKind::kIsVar:
      return "\"is $var\" filters are not streamable";
  }
  return "unknown node kind";
}

std::string PathReason(const PathPtr& p) {
  switch (p->kind) {
    case PathKind::kSelf:
      return "";
    case PathKind::kAxis:
    case PathKind::kAxisStar:
      if (p->axis != Axis::kChild) {
        return std::string(AxisName(p->axis)) +
               " axis is not streamable (downward fragment only)";
      }
      return "";
    case PathKind::kSeq:
    case PathKind::kUnion: {
      std::string r = PathReason(p->left);
      return r.empty() ? PathReason(p->right) : r;
    }
    case PathKind::kFilter: {
      std::string r = PathReason(p->left);
      return r.empty() ? NodeReason(p->filter) : r;
    }
    case PathKind::kStar:
      return PathReason(p->left);
    case PathKind::kIntersect:
      return "path intersection is not streamable";
    case PathKind::kComplement:
      return "path complementation is not streamable";
    case PathKind::kFor:
      return "for-loops are not streamable";
  }
  return "unknown path kind";
}

// --- Alphabet collection -------------------------------------------------

void CollectNodeLabels(const NodePtr& n, StreamAlphabet* a) {
  switch (n->kind) {
    case NodeKind::kLabel:
      if (a->symbol_of.emplace(n->label, static_cast<int>(a->labels.size()) + 1).second) {
        a->labels.push_back(n->label);
      }
      return;
    case NodeKind::kNot:
      CollectNodeLabels(n->child1, a);
      return;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      CollectNodeLabels(n->child1, a);
      CollectNodeLabels(n->child2, a);
      return;
    default:
      return;
  }
}

void CollectPathLabels(const PathPtr& p, StreamAlphabet* a) {
  switch (p->kind) {
    case PathKind::kSeq:
    case PathKind::kUnion:
      CollectPathLabels(p->left, a);
      CollectPathLabels(p->right, a);
      return;
    case PathKind::kFilter:
      CollectPathLabels(p->left, a);
      CollectNodeLabels(p->filter, a);
      return;
    case PathKind::kStar:
      CollectPathLabels(p->left, a);
      return;
    default:
      return;
  }
}

// --- Glushkov-style fragment algebra -------------------------------------
//
// The position-automaton view: a state q carries a *label class* lab(q) ⊆
// Σ⊥ — being at q means the most recently consumed symbol was in lab(q).
// Edges are unlabeled; the lowering expands edge (p, q) into transitions
// (p, σ, q) for every σ ∈ lab(q). A fragment additionally records
//
//   starts  — (state, entry class E): an enclosing context may enter the
//             fragment at `state` when the *context node's* label (the
//             previously consumed symbol) lies in E;
//   finals  — states whose runs complete the fragment;
//   null    — label classes of context nodes the fragment accepts with the
//             empty relative word (".", "down*", filtered selves), absent
//             when the fragment always consumes at least one symbol.
//
// Self-tests refine the class of the state they apply to. Because a state's
// class can only be *narrowed*, refinement makes a linked copy: a fresh
// state with the narrowed class that mirrors every incoming edge and start
// entry of the original — past ones copied eagerly, future ones fanned out
// through a per-state copy registry (AddEdgeLinked / AddStartLinked), which
// is what keeps copies correct when an enclosing star or concat wires new
// edges into a state that was refined deep inside the operand.

struct Frag {
  std::vector<std::pair<int, Bits>> starts;
  std::vector<int> finals;
  bool has_null = false;
  Bits null;
};

class FragBuilder {
 public:
  explicit FragBuilder(int alphabet_size) : asize_(alphabet_size), all_(alphabet_size) {
    for (int i = 0; i < asize_; ++i) all_.Set(i);
    i0_ = NewState(Bits(asize_));  // Pre-document state; never re-entered.
  }

  int initial() const { return i0_; }
  const Bits& all() const { return all_; }
  int num_states() const { return static_cast<int>(lab_.size()); }
  const Bits& lab(int s) const { return lab_[s]; }
  const std::vector<std::vector<int>>& out() const { return out_; }
  const std::vector<std::vector<int>>& in() const { return in_; }

  int NewState(Bits lab) {
    lab_.push_back(std::move(lab));
    out_.emplace_back();
    in_.emplace_back();
    copies_.emplace_back();
    return static_cast<int>(lab_.size()) - 1;
  }

  /// Adds p→s and mirrors it onto every registered copy of s (recursively:
  /// copies may themselves have copies).
  void AddEdgeLinked(int p, int s) {
    AddRawEdge(p, s);
    for (int c : copies_[s]) AddEdgeLinked(p, c);
  }

  /// Appends (s, E) to a start list, mirrored onto the copies of s.
  void AddStartLinked(std::vector<std::pair<int, Bits>>* starts, int s, const Bits& e) {
    starts->push_back({s, e});
    for (int c : copies_[s]) AddStartLinked(starts, c, e);
  }

  /// A state equivalent to s but with its class narrowed to lab(s) ∩ c.
  /// Returns s itself when no narrowing is needed, -1 when the narrowed
  /// class is empty (the refinement is unsatisfiable), and otherwise a
  /// (deduplicated) linked copy that inherits s's incoming edges and its
  /// entries in `starts`.
  int RefinedCopy(std::vector<std::pair<int, Bits>>* starts, int s, const Bits& c) {
    if (lab_[s].SubsetOf(c)) return s;
    Bits narrowed = lab_[s];
    narrowed.IntersectWith(c);
    if (narrowed.None()) return -1;
    for (int prior : copies_[s]) {
      if (lab_[prior] == narrowed) return prior;
    }
    int sp = NewState(narrowed);
    for (int p : in_[s]) AddRawEdge(p, sp);
    copies_[s].push_back(sp);
    size_t n = starts->size();
    for (size_t i = 0; i < n; ++i) {
      if ((*starts)[i].first == s) starts->push_back({sp, (*starts)[i].second});
    }
    return sp;
  }

  // --- Combinators -----------------------------------------------------

  Frag Self(const Bits& klass) {
    Frag f;
    f.has_null = true;
    f.null = klass;
    return f;
  }

  Frag Down() {
    Frag f;
    int q = NewState(all_);
    f.starts.push_back({q, all_});
    f.finals.push_back(q);
    return f;
  }

  Frag DownStar() {
    Frag f;
    int q = NewState(all_);
    AddRawEdge(q, q);
    f.starts.push_back({q, all_});
    f.finals.push_back(q);
    f.has_null = true;
    f.null = all_;
    return f;
  }

  Frag Union(Frag a, Frag b) {
    Frag f;
    f.starts = std::move(a.starts);
    f.starts.insert(f.starts.end(), b.starts.begin(), b.starts.end());
    f.finals = std::move(a.finals);
    f.finals.insert(f.finals.end(), b.finals.begin(), b.finals.end());
    if (a.has_null || b.has_null) {
      f.has_null = true;
      f.null = a.has_null ? a.null : Bits(asize_);
      if (b.has_null) f.null.UnionWith(b.null);
    }
    return f;
  }

  Frag Concat(Frag a, Frag b) {
    Frag f;
    f.starts = a.starts;
    f.finals = b.finals;
    // Junction: finishing a (at final state fa, last symbol ∈ lab(fa)) may
    // enter b at (s, E) when lab(fa) meets E.
    for (int fa : a.finals) {
      for (auto& [s, e] : b.starts) {
        Junction(&f.starts, fa, s, e);
      }
    }
    // a accepts the empty word for context classes a.null: b's entries are
    // also entries of the whole, with their context narrowed by a.null.
    if (a.has_null) {
      for (auto& [s, e] : b.starts) {
        Bits narrowed = e;
        narrowed.IntersectWith(a.null);
        if (!narrowed.None()) AddStartLinked(&f.starts, s, narrowed);
      }
    }
    // b accepts the empty word for context classes b.null: finishing a at
    // fa with last symbol ∈ b.null finishes the whole.
    if (b.has_null) {
      for (int fa : a.finals) {
        int fp = RefinedCopy(&f.starts, fa, b.null);
        if (fp >= 0) f.finals.push_back(fp);
      }
    }
    if (a.has_null && b.has_null) {
      f.has_null = true;
      f.null = a.null;
      f.null.IntersectWith(b.null);
      if (f.null.None()) f.has_null = false;
    }
    return f;
  }

  Frag Star(Frag a) {
    Frag f;
    f.starts = a.starts;
    f.finals = a.finals;
    // Loop edges: every final may re-enter every start (within its entry
    // class). Iterate a snapshot — junctions can append inherited entries
    // to f.starts, and those copies already receive the loop edges through
    // the copy registry.
    std::vector<std::pair<int, Bits>> snapshot = f.starts;
    for (int fa : a.finals) {
      for (auto& [s, e] : snapshot) {
        Junction(&f.starts, fa, s, e);
      }
    }
    f.has_null = true;
    f.null = all_;  // Zero iterations: the context node itself.
    return f;
  }

  Frag Filter(Frag a, const Bits& klass) {
    Frag f;
    f.starts = a.starts;
    for (int fa : a.finals) {
      int fp = RefinedCopy(&f.starts, fa, klass);
      if (fp >= 0) f.finals.push_back(fp);
    }
    if (a.has_null) {
      f.null = a.null;
      f.null.IntersectWith(klass);
      f.has_null = !f.null.None();
    }
    return f;
  }

 private:
  void AddRawEdge(int p, int s) {
    out_[p].push_back(s);
    in_[s].push_back(p);
  }

  /// Wires final `fa` into entry (s, E): directly when lab(fa) ⊆ E, via a
  /// linked copy narrowed to E otherwise, not at all when they are
  /// disjoint.
  void Junction(std::vector<std::pair<int, Bits>>* starts, int fa, int s, const Bits& e) {
    if (!lab_[fa].Intersects(e)) return;
    int src = RefinedCopy(starts, fa, e);
    if (src >= 0) AddEdgeLinked(src, s);
  }

  int asize_;
  Bits all_;
  int i0_;
  std::vector<Bits> lab_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  std::vector<std::vector<int>> copies_;
};

Bits ClassOf(const NodePtr& n, const StreamAlphabet& alphabet, const Bits& all) {
  Bits klass(alphabet.size());
  switch (n->kind) {
    case NodeKind::kLabel: {
      int sym = alphabet.SymbolOf(n->label);
      if (sym > 0) klass.Set(sym);
      return klass;
    }
    case NodeKind::kTrue:
      return all;
    case NodeKind::kNot: {
      Bits inner = ClassOf(n->child1, alphabet, all);
      klass = all;
      klass.SubtractWith(inner);  // ¬a includes ⊥: unseen labels are not a.
      return klass;
    }
    case NodeKind::kAnd: {
      klass = ClassOf(n->child1, alphabet, all);
      klass.IntersectWith(ClassOf(n->child2, alphabet, all));
      return klass;
    }
    case NodeKind::kOr: {
      klass = ClassOf(n->child1, alphabet, all);
      klass.UnionWith(ClassOf(n->child2, alphabet, all));
      return klass;
    }
    default:
      return klass;  // Unreachable for streamable queries.
  }
}

Frag BuildFrag(FragBuilder* b, const PathPtr& p, const StreamAlphabet& alphabet) {
  switch (p->kind) {
    case PathKind::kSelf:
      return b->Self(b->all());
    case PathKind::kAxis:
      return b->Down();
    case PathKind::kAxisStar:
      return b->DownStar();
    case PathKind::kSeq:
      return b->Concat(BuildFrag(b, p->left, alphabet), BuildFrag(b, p->right, alphabet));
    case PathKind::kUnion:
      return b->Union(BuildFrag(b, p->left, alphabet), BuildFrag(b, p->right, alphabet));
    case PathKind::kFilter:
      return b->Filter(BuildFrag(b, p->left, alphabet),
                       ClassOf(p->filter, alphabet, b->all()));
    case PathKind::kStar:
      return b->Star(BuildFrag(b, p->left, alphabet));
    default:
      return Frag{};  // Unreachable: CompileBundle rejects earlier.
  }
}

}  // namespace

std::string StreamableReason(const PathPtr& path) { return PathReason(path); }

Bits CompiledBundle::QueryFinalMask(int query_id) const {
  Bits mask(nfa.num_states());
  final_mask.ForEach([&](int s) {
    const std::vector<int32_t>& o = owners[s];
    if (std::binary_search(o.begin(), o.end(), query_id)) mask.Set(s);
  });
  return mask;
}

CompiledBundle CompileBundle(const std::vector<BundleQuery>& queries, int num_queries) {
  StatsTimer timer(Metric::kStreamCompile);
  // The bundle is a long-lived artifact: shield its Bits from any installed
  // per-query arena.
  ScopedArenaPause pause;

  CompiledBundle bundle;
  bundle.num_queries = num_queries;
  for (const BundleQuery& q : queries) CollectPathLabels(q.path, &bundle.alphabet);
  const int asize = bundle.alphabet.size();

  FragBuilder builder(asize);
  const int i0 = builder.initial();
  std::unordered_map<Bits, int, BitsHash> gates;       // Entry class → gate state.
  std::unordered_map<Bits, int, BitsHash> root_accepts;  // Null class → state.
  std::unordered_map<int, std::vector<int32_t>> owners_of;

  for (const BundleQuery& q : queries) {
    Frag frag = BuildFrag(&builder, q.path, bundle.alphabet);
    // Zero-step acceptance: the root itself matches when its label lies in
    // the fragment's null class.
    if (frag.has_null && !frag.null.None()) {
      auto [it, fresh] = root_accepts.emplace(frag.null, -1);
      if (fresh) {
        it->second = builder.NewState(frag.null);
        builder.AddEdgeLinked(i0, it->second);
      }
      std::vector<int32_t>& o = owners_of[it->second];
      o.insert(o.end(), q.owner_ids.begin(), q.owner_ids.end());
    }
    // Entries: the context node of a top-level query is the root, so each
    // entry class becomes a gate state consuming the root's label. Gates
    // are shared across queries (most entries are unconstrained).
    for (auto& [s, e] : frag.starts) {
      if (e.None()) continue;
      auto [it, fresh] = gates.emplace(e, -1);
      if (fresh) {
        it->second = builder.NewState(e);
        builder.AddEdgeLinked(i0, it->second);
      }
      builder.AddEdgeLinked(it->second, s);
    }
    for (int fstate : frag.finals) {
      std::vector<int32_t>& o = owners_of[fstate];
      o.insert(o.end(), q.owner_ids.begin(), q.owner_ids.end());
    }
  }

  // --- Trim and lower ----------------------------------------------------
  const int n = builder.num_states();
  std::vector<char> fwd(n, 0), bwd(n, 0);
  std::vector<int> work;
  fwd[i0] = 1;
  work.push_back(i0);
  while (!work.empty()) {
    int s = work.back();
    work.pop_back();
    for (int t : builder.out()[s]) {
      if (!fwd[t]) {
        fwd[t] = 1;
        work.push_back(t);
      }
    }
  }
  for (const auto& [s, o] : owners_of) {
    if (!bwd[s]) {
      bwd[s] = 1;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    int s = work.back();
    work.pop_back();
    for (int t : builder.in()[s]) {
      if (!bwd[t]) {
        bwd[t] = 1;
        work.push_back(t);
      }
    }
  }

  std::vector<int> remap(n, -1);
  int kept = 0;
  for (int s = 0; s < n; ++s) {
    if (s == i0 || (fwd[s] && bwd[s])) remap[s] = kept++;
  }

  Nfa nfa(asize, kept);
  nfa.SetInitial(remap[i0]);
  bundle.final_mask = Bits(kept);
  bundle.owners.assign(kept, {});
  for (int s = 0; s < n; ++s) {
    if (remap[s] < 0) continue;
    std::vector<int> targets = builder.out()[s];
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (int t : targets) {
      if (remap[t] < 0) continue;
      builder.lab(t).ForEach([&](int sym) { nfa.AddTransition(remap[s], sym, remap[t]); });
    }
  }
  for (const auto& [s, o] : owners_of) {
    if (remap[s] < 0) continue;
    nfa.SetAccepting(remap[s]);
    bundle.final_mask.Set(remap[s]);
    std::vector<int32_t> sorted = o;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    bundle.owners[remap[s]] = std::move(sorted);
  }
  nfa.EnsureIndexed();
  bundle.nfa = std::move(nfa);
  StatsAdd(Metric::kStreamQueriesRegistered, static_cast<int64_t>(queries.size()));
  return bundle;
}

CompiledBundle CompileSingle(const PathPtr& query) {
  return CompileBundle({BundleQuery{query, {0}}}, 1);
}

}  // namespace xpc
