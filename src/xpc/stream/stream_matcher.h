#ifndef XPC_STREAM_STREAM_MATCHER_H_
#define XPC_STREAM_STREAM_MATCHER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "xpc/common/arena.h"
#include "xpc/common/bits.h"
#include "xpc/stream/stream_compile.h"
#include "xpc/stream/stream_event.h"

namespace xpc {

/// Single-pass multi-query evaluation of a compiled bundle over a SAX event
/// stream (DESIGN.md §2.11).
///
/// The matcher keeps a stack of *interned* NFA state sets, one per open
/// element: push the stepped set on StartElement, pop on EndElement. Each
/// distinct set is interned once into a dense id with (a) a lazily filled
/// per-symbol transition row — the shared subset-construction cache, so a
/// StartElement whose (set, symbol) pair has been seen before is one array
/// load — and (b) a precomputed query-match mask over the bundle's
/// registered query ids, packed into `Bits` so match fan-out is a word
/// sweep. Amortized cost per event is O(1) per active state: every
/// miss-path subset computation is memoized against the automaton, which is
/// shared state that keeps paying off across documents.
///
/// Not thread-safe; create one matcher per thread over the same (immutable)
/// `CompiledBundle`. Determinism: match callbacks fire in (document
/// position, query id) order, independent of prior cache state.
class StreamMatcher {
 public:
  /// Fired on StartElement for every query matching the opened node.
  /// `node_ordinal` is the node's preorder rank (root = 0).
  using Callback = std::function<void(int32_t query_id, int64_t node_ordinal)>;

  /// `bundle` must outlive the matcher.
  explicit StreamMatcher(const CompiledBundle* bundle);

  void SetCallback(Callback callback) { callback_ = std::move(callback); }

  /// Starts a new document: clears the element stack and node ordinals and
  /// recycles the per-document arena. The subset cache is retained — warm
  /// transitions survive across documents by design.
  void BeginDocument();

  /// Consumes one event. StartElement returns the opened node's ordinal.
  int64_t StartElement(const std::string& label) {
    return StartSymbol(bundle_->alphabet.SymbolOf(label));
  }
  int64_t StartSymbol(int symbol);
  void EndElement();
  void Text();

  /// Closes the document; checks balance. Returns false (and recovers) if
  /// EndElement calls did not balance StartElement calls.
  bool EndDocument();

  /// Convenience: replay a pre-serialized stream, collecting (query,
  /// ordinal) match pairs in firing order.
  std::vector<std::pair<int32_t, int64_t>> MatchStream(const std::vector<StreamEvent>& events);

  /// Query-match mask (over registered query ids) of the most recently
  /// opened element. Valid until the next event.
  const Bits& CurrentMatches() const;

  /// Lifetime totals across every document this matcher has consumed.
  int64_t events() const { return total_events_ + events_; }
  int64_t matches() const { return total_matches_ + matches_; }
  /// Distinct interned state sets — the subset cache size.
  int dfa_states() const { return static_cast<int>(states_.size()); }

 private:
  struct DState {
    Bits set;                   ///< Interned NFA state set.
    Bits query_mask;            ///< Queries accepting in `set`.
    std::vector<int32_t> next;  ///< Per-symbol successor id; -1 = unfilled.
    std::vector<int32_t> matched;  ///< Set bits of query_mask, sorted.
  };

  int32_t Intern(const Bits& set);
  int32_t Transition(int32_t from, int symbol);

  const CompiledBundle* bundle_;
  Callback callback_;
  // Transient Bits produced on the subset-cache miss path (NFA stepping)
  // come from this arena; interned copies are heap-side (made under
  // ScopedArenaPause). BeginDocument resets it, so steady-state documents
  // run without touching the system allocator.
  Arena arena_;
  std::unordered_map<Bits, int32_t, BitsHash> intern_;
  std::vector<DState> states_;
  std::vector<int32_t> stack_;  ///< Interned set id per open element.
  int32_t initial_id_ = -1;
  int64_t next_ordinal_ = 0;
  int64_t events_ = 0;   ///< Current document; flushed to Stats per document.
  int64_t matches_ = 0;
  int64_t total_events_ = 0;
  int64_t total_matches_ = 0;
  bool balanced_ = true;
};

}  // namespace xpc

#endif  // XPC_STREAM_STREAM_MATCHER_H_
