#include "xpc/translate/starfree.h"

#include <cctype>
#include <sstream>

#include "xpc/automata/regex.h"
#include "xpc/common/stats.h"
#include "xpc/xpath/build.h"

namespace xpc {

namespace {
StarFreePtr Make(StarFree::Kind kind) {
  auto r = std::make_shared<StarFree>();
  r->kind = kind;
  return r;
}
}  // namespace

StarFreePtr SfSymbol(const std::string& symbol) {
  auto r = Make(StarFree::Kind::kSymbol);
  std::const_pointer_cast<StarFree>(r)->symbol = symbol;
  return r;
}

StarFreePtr SfConcat(StarFreePtr a, StarFreePtr b) {
  auto r = Make(StarFree::Kind::kConcat);
  auto m = std::const_pointer_cast<StarFree>(r);
  m->left = std::move(a);
  m->right = std::move(b);
  return r;
}

StarFreePtr SfUnion(StarFreePtr a, StarFreePtr b) {
  auto r = Make(StarFree::Kind::kUnion);
  auto m = std::const_pointer_cast<StarFree>(r);
  m->left = std::move(a);
  m->right = std::move(b);
  return r;
}

StarFreePtr SfComplement(StarFreePtr a) {
  auto r = Make(StarFree::Kind::kComplement);
  std::const_pointer_cast<StarFree>(r)->left = std::move(a);
  return r;
}

namespace {

class SfParser {
 public:
  explicit SfParser(const std::string& text) : text_(text) {}

  Result<StarFreePtr> Parse() {
    StarFreePtr r = ParseUnion();
    if (!r) return Result<StarFreePtr>::Error(error_);
    Skip();
    if (pos_ != text_.size()) {
      return Result<StarFreePtr>::Error("star-free: trailing input at offset " +
                                        std::to_string(pos_));
    }
    return r;
  }

 private:
  void Skip() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool AtAtom() {
    Skip();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '(' || c == '-';
  }

  StarFreePtr ParseUnion() {
    StarFreePtr r = ParseConcat();
    if (!r) return nullptr;
    Skip();
    while (pos_ < text_.size() && text_[pos_] == '|') {
      ++pos_;
      StarFreePtr rhs = ParseConcat();
      if (!rhs) return nullptr;
      r = SfUnion(r, rhs);
      Skip();
    }
    return r;
  }

  StarFreePtr ParseConcat() {
    StarFreePtr r = ParseAtom();
    if (!r) return nullptr;
    while (AtAtom()) {
      StarFreePtr rhs = ParseAtom();
      if (!rhs) return nullptr;
      r = SfConcat(r, rhs);
    }
    return r;
  }

  StarFreePtr ParseAtom() {
    Skip();
    if (pos_ >= text_.size()) {
      error_ = "star-free: unexpected end of input";
      return nullptr;
    }
    char c = text_[pos_];
    if (c == '-') {
      ++pos_;
      StarFreePtr inner = ParseAtom();
      if (!inner) return nullptr;
      return SfComplement(inner);
    }
    if (c == '(') {
      ++pos_;
      StarFreePtr r = ParseUnion();
      if (!r) return nullptr;
      Skip();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        error_ = "star-free: expected ')'";
        return nullptr;
      }
      ++pos_;
      return r;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      return SfSymbol(text_.substr(start, pos_ - start));
    }
    error_ = std::string("star-free: unexpected character '") + c + "'";
    return nullptr;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_ = "star-free: parse error";
};

void SfPrint(const StarFreePtr& r, int prec, std::ostringstream* os) {
  switch (r->kind) {
    case StarFree::Kind::kSymbol:
      *os << r->symbol;
      break;
    case StarFree::Kind::kUnion:
      if (prec > 0) *os << '(';
      SfPrint(r->left, 0, os);
      *os << " | ";
      SfPrint(r->right, 0, os);
      if (prec > 0) *os << ')';
      break;
    case StarFree::Kind::kConcat:
      if (prec > 1) *os << '(';
      SfPrint(r->left, 1, os);
      *os << ' ';
      SfPrint(r->right, 1, os);
      if (prec > 1) *os << ')';
      break;
    case StarFree::Kind::kComplement:
      *os << "-(";
      SfPrint(r->left, 0, os);
      *os << ')';
      break;
  }
}

void SfSymbols(const StarFreePtr& r, std::vector<std::string>* out) {
  switch (r->kind) {
    case StarFree::Kind::kSymbol:
      if (SymbolIndex(*out, r->symbol) < 0) out->push_back(r->symbol);
      return;
    case StarFree::Kind::kUnion:
    case StarFree::Kind::kConcat:
      SfSymbols(r->left, out);
      SfSymbols(r->right, out);
      return;
    case StarFree::Kind::kComplement:
      SfSymbols(r->left, out);
      return;
  }
}

}  // namespace

Result<StarFreePtr> ParseStarFree(const std::string& text) {
  SfParser parser(text);
  return parser.Parse();
}

std::string StarFreeToString(const StarFreePtr& r) {
  std::ostringstream os;
  SfPrint(r, 0, &os);
  return os.str();
}

std::vector<std::string> StarFreeSymbols(const StarFreePtr& r) {
  std::vector<std::string> out;
  SfSymbols(r, &out);
  return out;
}

int ComplementDepth(const StarFreePtr& r) {
  switch (r->kind) {
    case StarFree::Kind::kSymbol:
      return 0;
    case StarFree::Kind::kUnion:
    case StarFree::Kind::kConcat:
      return std::max(ComplementDepth(r->left), ComplementDepth(r->right));
    case StarFree::Kind::kComplement:
      return 1 + ComplementDepth(r->left);
  }
  return 0;
}

Dfa StarFreeToDfa(const StarFreePtr& r, const std::vector<std::string>& symbols) {
  StatsTimer timer(Metric::kTranslateStarfree);
  const int k = static_cast<int>(symbols.size());
  switch (r->kind) {
    case StarFree::Kind::kSymbol: {
      int idx = SymbolIndex(symbols, r->symbol);
      return Dfa::Determinize(Nfa::SingleSymbol(k, idx)).Minimize();
    }
    case StarFree::Kind::kConcat: {
      Nfa concat = Nfa::ConcatOf(StarFreeToDfa(r->left, symbols).ToNfa(),
                                 StarFreeToDfa(r->right, symbols).ToNfa());
      return Dfa::Determinize(concat).Minimize();
    }
    case StarFree::Kind::kUnion: {
      Dfa l = StarFreeToDfa(r->left, symbols);
      Dfa rr = StarFreeToDfa(r->right, symbols);
      return l.UnionWith(rr).Minimize();
    }
    case StarFree::Kind::kComplement: {
      // Complement relative to Σ⁺: star-free languages here are ε-free —
      // this is the reading under which the Theorem 30 translation tr is
      // faithful (tr(−r) = ↓⁺ − tr(r) ranges over proper descendants, i.e.
      // nonempty label words, only).
      Nfa sigma_plus_nfa = Nfa::PlusOf([k] {
        Nfa any(k, 2);
        any.SetInitial(0);
        any.SetAccepting(1);
        for (int a = 0; a < k; ++a) any.AddTransition(0, a, 1);
        return any;
      }());
      Dfa sigma_plus = Dfa::Determinize(sigma_plus_nfa);
      return StarFreeToDfa(r->left, symbols).Complement().IntersectWith(sigma_plus).Minimize();
    }
  }
  return Dfa(k, 1);
}

bool StarFreeEmpty(const StarFreePtr& r) {
  return StarFreeToDfa(r, StarFreeSymbols(r)).IsEmpty();
}

namespace {

// α ∩ β via complementation: α − (α − β).
PathPtr CxIntersect(PathPtr a, PathPtr b) {
  return Complement(a, Complement(a, std::move(b)));
}

// α ∪ β via complementation relative to ↓* (the downward universe of F).
PathPtr CxUnion(PathPtr a, PathPtr b) {
  PathPtr u = AxStar(Axis::kChild);
  return Complement(u, CxIntersect(Complement(u, std::move(a)), Complement(u, std::move(b))));
}

}  // namespace

PathPtr StarFreeToPath(const StarFreePtr& r, bool pure_f) {
  switch (r->kind) {
    case StarFree::Kind::kSymbol:
      return Filter(Ax(Axis::kChild), Label(r->symbol));
    case StarFree::Kind::kConcat:
      return Seq(StarFreeToPath(r->left, pure_f), StarFreeToPath(r->right, pure_f));
    case StarFree::Kind::kUnion: {
      PathPtr l = StarFreeToPath(r->left, pure_f);
      PathPtr rr = StarFreeToPath(r->right, pure_f);
      return pure_f ? CxUnion(std::move(l), std::move(rr)) : Union(std::move(l), std::move(rr));
    }
    case StarFree::Kind::kComplement:
      // tr(−r) = ↓⁺ − tr(r).
      return Complement(AxPlus(Axis::kChild), StarFreeToPath(r->left, pure_f));
  }
  return Self();
}

PathPtr EmptyPath() { return Complement(AxStar(Axis::kChild), AxStar(Axis::kChild)); }

}  // namespace xpc
