#ifndef XPC_TRANSLATE_LET_ELIM_H_
#define XPC_TRANSLATE_LET_ELIM_H_

#include "xpc/pathauto/lexpr.h"

namespace xpc {

/// The let-elimination of Lemma 18, adapted to the LExpr representation.
///
/// In this library, the `let` environments of CoreXPath_NFA(*, loop, let)
/// are realized as *shared sub-automata*: a test loop((π₁)_{q,r}) appearing
/// in many transitions of a product automaton is one shared object, so the
/// DAG size plays the role of the paper's let-expression size. This
/// transformation eliminates that sharing while preserving satisfiability
/// and polynomial size, exactly as Lemma 18 does:
///
///  - every loop atom that occurs as a test is bound to a fresh *marker
///    label*; markers are materialized as extra (leaf, rightmost) children;
///  - tests are replaced by "has a marker child" probes and all moves of
///    the host automata are guarded by [¬marker], making them blind to the
///    new nodes;
///  - global axioms state, at every non-marker node, the equivalence of
///    each marker probe with the (transformed) definition, that markers are
///    leaves, and that markers have no non-marker right siblings (the
///    conditions of Lemma 18; the equivalence is restricted to non-marker
///    nodes, which the paper's construction implicitly assumes).
///
/// The result is an LExpr with loop-test nesting depth ≤ 3 regardless of
/// the input's nesting, and size polynomial in the input's DAG size.
struct LetElimResult {
  /// One marker binding: marker i abbreviates loop(π_{q_from,q_to}).
  struct Binding {
    const PathAutomaton* automaton;
    int q_from;
    int q_to;
  };

  LExprPtr formula;               ///< Equi-satisfiable with the input.
  int num_markers = 0;            ///< Number of marker labels introduced.
  std::vector<Binding> bindings;  ///< Indexed by marker number.
};

LetElimResult EliminateLets(const LExprPtr& phi);

/// The marker label for binding index i.
std::string MarkerLabel(int index);

}  // namespace xpc

#endif  // XPC_TRANSLATE_LET_ELIM_H_
