#ifndef XPC_TRANSLATE_FOR_ELIM_H_
#define XPC_TRANSLATE_FOR_ELIM_H_

#include <string>

#include "xpc/xpath/ast.h"

namespace xpc {

/// The expressibility translations between the top layers of the Figure 1
/// hierarchy (Sections 2.2 and 7).

/// Theorem 31: path complementation via a single-variable for-loop (for
/// downward α, β):
///     α − β ≡ for $i in α return .[¬⟨β[. is $i]⟩] / ↓*[. is $i]
/// If `var` already occurs in β it would be captured by the introduced
/// binder, so underscores are appended until the name is fresh.
PathPtr ComplementToFor(const PathPtr& alpha, const PathPtr& beta, const std::string& var);

/// Section 2.2: path intersection via a for-loop:
///     α ∩ β ≡ for $i in α return β[. is $i]
/// `var` is freshened against β like in ComplementToFor.
PathPtr IntersectToFor(const PathPtr& alpha, const PathPtr& beta, const std::string& var);

/// Section 7 (proof of Theorem 30): intersection via complementation,
///     α ∩ β ≡ α − (α − β)
PathPtr IntersectToComplement(const PathPtr& alpha, const PathPtr& beta);

/// Section 2.2: union via complementation (relative to the universal path
/// U = ↑*/↓*):
///     α ∪ β ≡ U − ((U − α) ∩ (U − β))
PathPtr UnionToComplement(const PathPtr& alpha, const PathPtr& beta);

/// Section 2.2: path equality as intersection: α ≈ β ≡ ⟨α ∩ β⟩.
NodePtr PathEqToIntersect(const PathPtr& alpha, const PathPtr& beta);

/// Rewrites every ∩ in the expression into a for-loop (fresh variables
/// $f0, $f1, ... skipping any name the input already mentions), every ≈ into
/// ⟨∩⟩ first. Demonstrates CoreXPath(for) ⊇ CoreXPath(∩); used by the
/// Figure 1 hierarchy bench.
PathPtr RewriteIntersectToFor(const PathPtr& path);
NodePtr RewriteIntersectToFor(const NodePtr& node);

/// Rewrites every − into a for-loop (Theorem 31; sound for downward
/// operands — the caller is responsible for the fragment check).
PathPtr RewriteComplementToFor(const PathPtr& path);
NodePtr RewriteComplementToFor(const NodePtr& node);

}  // namespace xpc

#endif  // XPC_TRANSLATE_FOR_ELIM_H_
