#ifndef XPC_TRANSLATE_STARFREE_H_
#define XPC_TRANSLATE_STARFREE_H_

#include <memory>
#include <string>
#include <vector>

#include "xpc/automata/dfa.h"
#include "xpc/common/result.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Star-free regular expressions (Section 7, Theorem 30):
///     r, s ::= a | (r s) | (r ∪ s) | −r
/// Their nonemptiness problem is nonelementary [Stockmeyer 1974]; the
/// reduction tr(·) embeds it into containment for the fragment F of
/// CoreXPath(−).
struct StarFree;
using StarFreePtr = std::shared_ptr<const StarFree>;

struct StarFree {
  enum class Kind { kSymbol, kConcat, kUnion, kComplement };
  Kind kind;
  std::string symbol;
  StarFreePtr left, right;  // kComplement uses left only.
};

StarFreePtr SfSymbol(const std::string& symbol);
StarFreePtr SfConcat(StarFreePtr a, StarFreePtr b);
StarFreePtr SfUnion(StarFreePtr a, StarFreePtr b);
StarFreePtr SfComplement(StarFreePtr a);

/// Parses `a b | -(a)` style concrete syntax (juxtaposition = concat, `-`
/// prefix = complement, `|` = union, parentheses allowed).
Result<StarFreePtr> ParseStarFree(const std::string& text);
std::string StarFreeToString(const StarFreePtr& r);

/// Symbols occurring in the expression, in first-occurrence order.
std::vector<std::string> StarFreeSymbols(const StarFreePtr& r);

/// Number of complementation operators (the height of the tower).
int ComplementDepth(const StarFreePtr& r);

/// Decides L(r) over the alphabet `symbols` by the iterated
/// determinize-complement construction — the source of the nonelementary
/// lower bound: each complementation may exponentiate the DFA. Returns the
/// final (minimized) DFA.
Dfa StarFreeToDfa(const StarFreePtr& r, const std::vector<std::string>& symbols);

/// L(r) = ∅ over the alphabet of r's own symbols?
bool StarFreeEmpty(const StarFreePtr& r);

/// The Theorem 30 translation tr(·) into the fragment F of CoreXPath(−):
///     tr(a) = ↓[a],  tr(rs) = tr(r)/tr(s),  tr(r∪s) = tr(r) ∪ tr(s),
///     tr(−r) = ↓⁺ − tr(r).
/// `pure_f` replaces the primitive ∪ by its complementation encoding
/// α ∪ β ≡ ↓* − ((↓* − α) ∩ (↓* − β)), ∩ ≡ α − (α − β) — F lacks ∪ — at
/// exponential cost ("of no importance since our intention is only to show
/// nonelementarity").
PathPtr StarFreeToPath(const StarFreePtr& r, bool pure_f = false);

/// Theorem 30's containment instance: L(r) ≠ ∅ iff tr(r) ⊄ ↓* − ↓*
/// (equivalently: tr(r) is satisfiable — ↓* − ↓* is the empty path).
PathPtr EmptyPath();

}  // namespace xpc

#endif  // XPC_TRANSLATE_STARFREE_H_
