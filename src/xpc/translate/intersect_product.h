#ifndef XPC_TRANSLATE_INTERSECT_PRODUCT_H_
#define XPC_TRANSLATE_INTERSECT_PRODUCT_H_

#include "xpc/pathauto/lexpr.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// The product construction of Lemma 15: an automaton equivalent to
/// π₁ ∩ π₂. States are pairs ⟨q, q'⟩; moves synchronize; in addition either
/// component may take a *loop excursion* loop((πᵢ)_{q,r}) while the other
/// stays — this is sound because the two traces witnessing (n, m) ∈
/// ⟦π₁⟧ ∩ ⟦π₂⟧ both travel along the unique simple path from n to m, and
/// their divergences are loops that return to the divergence point.
///
/// Where the paper binds the excursion tests to fresh labels in a `let`
/// environment (the test loop((πᵢ)_{q,r}) appears once per state pair, so
/// environments keep the translation single exponential — Lemma 16), this
/// implementation shares the sub-automata πᵢ by pointer: the LExpr DAG *is*
/// the environment. `SizeOf` measures the paper's fully-expanded expression
/// size; `DagSizeOf` measures the shared (let-style) size. The explicit
/// marker-based let-elimination of Lemma 18 lives in let_elim.h.
PathAutoPtr ProductAutomaton(const PathAutoPtr& a, const PathAutoPtr& b);

/// Translates a CoreXPath(*, ∩) path expression to a path automaton
/// (Lemma 16 (2)). Returns nullptr on − / for.
PathAutoPtr IntersectPathToAutomaton(const PathPtr& path);

/// Translates a CoreXPath(*, ∩) node expression to CoreXPath_NFA(*, loop)
/// (Lemma 16 (1)). Returns nullptr on − / for / ". is $i".
LExprPtr IntersectToLoopNormalForm(const NodePtr& node);

/// DAG ("let"-style) size: each shared automaton is counted once. This is
/// the size notion for which Lemma 16 proves the 2^{O(|α|)} bound and
/// Lemma 17 the |α|^{2^{O(k)}} bound at intersection depth ≤ k.
int64_t DagSizeOf(const LExprPtr& expr);

}  // namespace xpc

#endif  // XPC_TRANSLATE_INTERSECT_PRODUCT_H_
