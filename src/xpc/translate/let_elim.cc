#include "xpc/translate/let_elim.h"

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "xpc/common/stats.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/pathauto/path_automaton.h"

namespace xpc {

std::string MarkerLabel(int index) { return "mk_" + std::to_string(index); }

namespace {

using LoopAtom = std::tuple<const PathAutomaton*, int, int>;

// Collects every loop atom occurring *inside a test* of some automaton
// (those are the paper's let-bound abbreviations).
void CollectTestAtoms(const LExprPtr& e, bool inside_test,
                      std::set<const PathAutomaton*>* seen, std::set<LoopAtom>* atoms) {
  switch (e->kind) {
    case LExpr::Kind::kLabel:
    case LExpr::Kind::kTrue:
      return;
    case LExpr::Kind::kNot:
      CollectTestAtoms(e->a, inside_test, seen, atoms);
      return;
    case LExpr::Kind::kAnd:
    case LExpr::Kind::kOr:
      CollectTestAtoms(e->a, inside_test, seen, atoms);
      CollectTestAtoms(e->b, inside_test, seen, atoms);
      return;
    case LExpr::Kind::kLoop: {
      if (inside_test) atoms->insert({e->automaton.get(), e->q_from, e->q_to});
      if (seen->insert(e->automaton.get()).second) {
        for (const PathAutomaton::Transition& t : e->automaton->transitions) {
          if (t.move == Move::kTest) CollectTestAtoms(t.test, /*inside_test=*/true, seen, atoms);
        }
      }
      return;
    }
  }
}

// The marker-probe automaton: loop(↓₁ / →* / .[p] / ←* / ↑₁) — true at a
// node iff it has a child labeled p (markers are rightmost, so the walk
// across siblings reaches them).
PathAutoPtr ProbeAutomaton(const std::string& marker) {
  auto a = std::make_shared<PathAutomaton>();
  int s0 = a->AddState();
  int s1 = a->AddState();
  int s2 = a->AddState();
  int s3 = a->AddState();
  a->q_init = s0;
  a->q_final = s3;
  a->AddMove(s0, Move::kDown1, s1);
  a->AddMove(s1, Move::kRight, s1);
  a->AddTest(s1, LLabel(marker), s2);
  a->AddMove(s2, Move::kLeft, s2);
  a->AddMove(s2, Move::kUp1, s3);
  return a;
}

class LetEliminator {
 public:
  explicit LetEliminator(const LExprPtr& phi) : phi_(phi) {
    std::set<const PathAutomaton*> seen;
    std::set<LoopAtom> atoms;
    CollectTestAtoms(phi, /*inside_test=*/false, &seen, &atoms);
    for (const LoopAtom& atom : atoms) {
      int idx = static_cast<int>(markers_.size());
      markers_.emplace(atom, idx);
    }
    std::vector<LExprPtr> marker_labels;
    for (size_t i = 0; i < markers_.size(); ++i) {
      marker_labels.push_back(LLabel(MarkerLabel(static_cast<int>(i))));
      probes_.push_back(LLoop(ProbeAutomaton(MarkerLabel(static_cast<int>(i)))));
    }
    any_marker_ = LOrAll(marker_labels);
  }

  LetElimResult Run() {
    // Transform the top-level formula (loop atoms may reference transformed
    // automata directly — only atoms nested in tests need markers).
    LExprPtr phi_star = TransformTopLevel(phi_);

    std::vector<LExprPtr> conjuncts;
    conjuncts.push_back(phi_star);

    // Definition axioms: at every non-marker node,
    // probe(p_m) ⇔ loop(π*_{q,r}).
    for (const auto& [atom, idx] : markers_) {
      auto [automaton, q, r] = atom;
      LExprPtr definition = LLoop(TransformedAutomaton(automaton), q, r);
      LExprPtr probe = probes_[idx];
      LExprPtr equivalence =
          LAnd(LOr(LNot(probe), definition), LOr(probe, LNot(definition)));
      conjuncts.push_back(GloballyInTree(LOr(any_marker_, equivalence)));
    }

    // Markers are leaves: ¬(marker ∧ loop(↓₁/↑₁)). The loop endpoints must
    // be distinct states — loop(π_{q,q}) is trivially true.
    {
      auto child_probe = std::make_shared<PathAutomaton>();
      int s0 = child_probe->AddState();
      int s1 = child_probe->AddState();
      int s2 = child_probe->AddState();
      child_probe->q_init = s0;
      child_probe->q_final = s2;
      child_probe->AddMove(s0, Move::kDown1, s1);
      child_probe->AddMove(s1, Move::kUp1, s2);
      conjuncts.push_back(
          GloballyInTree(LOr(LNot(any_marker_), LNot(LLoop(child_probe)))));
    }
    // Markers have no non-marker right sibling: ¬(marker ∧ loop(→[¬mk]←)).
    {
      auto right_probe = std::make_shared<PathAutomaton>();
      int s0 = right_probe->AddState();
      int s1 = right_probe->AddState();
      int s2 = right_probe->AddState();
      int s3 = right_probe->AddState();
      right_probe->q_init = s0;
      right_probe->q_final = s3;
      right_probe->AddMove(s0, Move::kRight, s1);
      right_probe->AddTest(s1, LNot(any_marker_), s2);
      right_probe->AddMove(s2, Move::kLeft, s3);
      conjuncts.push_back(
          GloballyInTree(LOr(LNot(any_marker_), LNot(LLoop(right_probe)))));
    }

    LetElimResult result;
    result.formula = LAndAll(std::move(conjuncts));
    result.num_markers = static_cast<int>(markers_.size());
    result.bindings.resize(markers_.size());
    for (const auto& [atom, idx] : markers_) {
      auto [automaton, q, r] = atom;
      result.bindings[idx] = {automaton, q, r};
    }
    return result;
  }

 private:
  // π → π*: moves guarded by [¬anyMarker]; tests flattened to marker
  // probes.
  PathAutoPtr TransformedAutomaton(const PathAutomaton* a) {
    auto it = transformed_.find(a);
    if (it != transformed_.end()) return it->second;
    auto out = std::make_shared<PathAutomaton>();
    out->num_states = a->num_states;
    out->q_init = a->q_init;
    out->q_final = a->q_final;
    for (const PathAutomaton::Transition& t : a->transitions) {
      if (t.move == Move::kTest) {
        out->AddTest(t.from, FlattenTest(t.test), t.to);
      } else {
        int mid = out->AddState();
        out->AddMove(t.from, t.move, mid);
        out->AddTest(mid, LNot(any_marker_), t.to);
      }
    }
    transformed_.emplace(a, out);
    return out;
  }

  // Inside tests: loop atoms become marker probes.
  LExprPtr FlattenTest(const LExprPtr& e) {
    switch (e->kind) {
      case LExpr::Kind::kLabel:
      case LExpr::Kind::kTrue:
        return e;
      case LExpr::Kind::kNot:
        return LNot(FlattenTest(e->a));
      case LExpr::Kind::kAnd:
        return LAnd(FlattenTest(e->a), FlattenTest(e->b));
      case LExpr::Kind::kOr:
        return LOr(FlattenTest(e->a), FlattenTest(e->b));
      case LExpr::Kind::kLoop: {
        int idx = markers_.at({e->automaton.get(), e->q_from, e->q_to});
        return probes_[idx];
      }
    }
    return e;
  }

  // At the top level: loop atoms reference the transformed automata
  // directly (no marker indirection needed).
  LExprPtr TransformTopLevel(const LExprPtr& e) {
    switch (e->kind) {
      case LExpr::Kind::kLabel:
      case LExpr::Kind::kTrue:
        return e;
      case LExpr::Kind::kNot:
        return LNot(TransformTopLevel(e->a));
      case LExpr::Kind::kAnd:
        return LAnd(TransformTopLevel(e->a), TransformTopLevel(e->b));
      case LExpr::Kind::kOr:
        return LOr(TransformTopLevel(e->a), TransformTopLevel(e->b));
      case LExpr::Kind::kLoop:
        return LLoop(TransformedAutomaton(e->automaton.get()), e->q_from, e->q_to);
    }
    return e;
  }

  LExprPtr phi_;
  std::map<LoopAtom, int> markers_;
  std::vector<LExprPtr> probes_;
  LExprPtr any_marker_;
  std::map<const PathAutomaton*, PathAutoPtr> transformed_;
};

}  // namespace

LetElimResult EliminateLets(const LExprPtr& phi) {
  StatsTimer timer(Metric::kTranslateLetElim);
  LetEliminator eliminator(phi);
  return eliminator.Run();
}

}  // namespace xpc
