#include "xpc/translate/intersect_product.h"

#include <cstdlib>
#include <map>
#include <set>

#include "xpc/common/stats.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/pathauto/path_automaton.h"

namespace xpc {

PathAutoPtr ProductAutomaton(const PathAutoPtr& a, const PathAutoPtr& b) {
  const int nb = b->num_states;
  auto pair_id = [nb](int qa, int qb) { return qa * nb + qb; };

  auto out = std::make_shared<PathAutomaton>();
  out->num_states = a->num_states * nb;
  out->q_init = pair_id(a->q_init, b->q_init);
  out->q_final = pair_id(a->q_final, b->q_final);

  // Synchronized moves.
  for (const PathAutomaton::Transition& ta : a->transitions) {
    if (ta.move == Move::kTest) continue;
    for (const PathAutomaton::Transition& tb : b->transitions) {
      if (tb.move != ta.move) continue;
      out->AddMove(pair_id(ta.from, tb.from), ta.move, pair_id(ta.to, tb.to));
    }
  }

  // Loop excursions of the left component: ⟨q,q'⟩ —[loop(a_{q,r})]→ ⟨r,q'⟩.
  for (int q = 0; q < a->num_states; ++q) {
    for (int r = 0; r < a->num_states; ++r) {
      LExprPtr test = LLoop(a, q, r);
      for (int qb = 0; qb < nb; ++qb) {
        out->AddTest(pair_id(q, qb), test, pair_id(r, qb));
      }
    }
  }
  // Loop excursions of the right component.
  for (int q = 0; q < nb; ++q) {
    for (int r = 0; r < nb; ++r) {
      LExprPtr test = LLoop(b, q, r);
      for (int qa = 0; qa < a->num_states; ++qa) {
        out->AddTest(pair_id(qa, q), test, pair_id(qa, r));
      }
    }
  }
  return out;
}

namespace {

// As in normal_form.cc, but with ∩ handled by the product.
PathAutoPtr Translate(const PathPtr& path);

LExprPtr TranslateNode(const NodePtr& node) {
  switch (node->kind) {
    case NodeKind::kLabel:
      return LLabel(node->label);
    case NodeKind::kTrue:
      return LTrue();
    case NodeKind::kNot: {
      LExprPtr a = TranslateNode(node->child1);
      return a ? LNot(a) : nullptr;
    }
    case NodeKind::kAnd: {
      LExprPtr a = TranslateNode(node->child1);
      LExprPtr b = TranslateNode(node->child2);
      return a && b ? LAnd(a, b) : nullptr;
    }
    case NodeKind::kOr: {
      LExprPtr a = TranslateNode(node->child1);
      LExprPtr b = TranslateNode(node->child2);
      return a && b ? LOr(a, b) : nullptr;
    }
    case NodeKind::kSome: {
      PathAutoPtr a = Translate(node->path);
      if (!a) return nullptr;
      return LLoop(std::make_shared<PathAutomaton>(PaWithFinalSelfLoops(*a)));
    }
    case NodeKind::kPathEq: {
      PathAutoPtr l = Translate(node->path);
      PathAutoPtr r = Translate(node->path2);
      if (!l || !r) return nullptr;
      return LLoop(std::make_shared<PathAutomaton>(PaConcat(*l, PaConverse(*r))));
    }
    case NodeKind::kIsVar:
      return nullptr;
  }
  return nullptr;
}

PathAutoPtr Translate(const PathPtr& path) {
  switch (path->kind) {
    case PathKind::kIntersect: {
      PathAutoPtr l = Translate(path->left);
      PathAutoPtr r = Translate(path->right);
      if (!l || !r) return nullptr;
      return ProductAutomaton(l, r);
    }
    case PathKind::kFilter: {
      PathAutoPtr l = Translate(path->left);
      LExprPtr test = TranslateNode(path->filter);
      if (!l || !test) return nullptr;
      return std::make_shared<PathAutomaton>(PaConcat(*l, PaTest(std::move(test))));
    }
    case PathKind::kSeq: {
      PathAutoPtr l = Translate(path->left);
      PathAutoPtr r = Translate(path->right);
      if (!l || !r) return nullptr;
      return std::make_shared<PathAutomaton>(PaConcat(*l, *r));
    }
    case PathKind::kUnion: {
      PathAutoPtr l = Translate(path->left);
      PathAutoPtr r = Translate(path->right);
      if (!l || !r) return nullptr;
      return std::make_shared<PathAutomaton>(PaUnion(*l, *r));
    }
    case PathKind::kStar: {
      PathAutoPtr l = Translate(path->left);
      if (!l) return nullptr;
      return std::make_shared<PathAutomaton>(PaStar(*l));
    }
    case PathKind::kComplement:
    case PathKind::kFor:
      return nullptr;
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf: {
      // ∩-free atoms: reuse the Section 3.1 translation.
      auto [ok, a] = PathToAutomaton(path);
      if (!ok) return nullptr;
      return std::make_shared<PathAutomaton>(std::move(a));
    }
  }
  std::abort();  // Exhaustive switch; an out-of-range kind is memory corruption.
}

struct DagSeen {
  std::set<const PathAutomaton*> automata;
  std::set<const LExpr*> exprs;
};

void DagSize(const LExprPtr& e, DagSeen* seen, int64_t* total);

void DagSizeAutomaton(const PathAutoPtr& a, DagSeen* seen, int64_t* total) {
  if (!seen->automata.insert(a.get()).second) return;
  *total += a->num_states;
  for (const PathAutomaton::Transition& t : a->transitions) {
    *total += 1;
    if (t.move == Move::kTest) DagSize(t.test, seen, total);
  }
}

void DagSize(const LExprPtr& e, DagSeen* seen, int64_t* total) {
  // Each shared LExpr node counts once — sharing is the "let".
  if (!seen->exprs.insert(e.get()).second) return;
  *total += 1;
  switch (e->kind) {
    case LExpr::Kind::kLabel:
    case LExpr::Kind::kTrue:
      return;
    case LExpr::Kind::kNot:
      DagSize(e->a, seen, total);
      return;
    case LExpr::Kind::kAnd:
    case LExpr::Kind::kOr:
      DagSize(e->a, seen, total);
      DagSize(e->b, seen, total);
      return;
    case LExpr::Kind::kLoop:
      DagSizeAutomaton(e->automaton, seen, total);
      return;
  }
}

}  // namespace

PathAutoPtr IntersectPathToAutomaton(const PathPtr& path) { return Translate(path); }

LExprPtr IntersectToLoopNormalForm(const NodePtr& node) {
  StatsTimer timer(Metric::kTranslateIntersectProduct);
  return TranslateNode(node);
}

int64_t DagSizeOf(const LExprPtr& expr) {
  DagSeen seen;
  int64_t total = 0;
  DagSize(expr, &seen, &total);
  return total;
}

}  // namespace xpc
