#include "xpc/translate/for_elim.h"

#include <cstdlib>
#include <set>
#include <utility>

#include "xpc/common/stats.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/metrics.h"

namespace xpc {

namespace {

// The binder introduced by these translations scopes over β, so a requested
// name that already occurs in β would capture β's occurrences of it and
// silently change the meaning of the output (found by the forelim fuzz
// oracles; see tests/fuzz_corpus/). Occurrences bound inside β could not
// actually collide, but renaming whenever the name merely occurs keeps the
// check cheap and obviously sound.
std::string AvoidCapture(std::string var, const PathPtr& beta) {
  const std::set<std::string> used = Variables(beta);
  while (used.count(var)) var += '_';
  return var;
}

}  // namespace

PathPtr ComplementToFor(const PathPtr& alpha, const PathPtr& beta, const std::string& var) {
  // for $i in α return .[¬⟨β[. is $i]⟩] / ↓*[. is $i].
  const std::string v = AvoidCapture(var, beta);
  NodePtr not_beta_hits_v = Not(Some(Filter(beta, IsVar(v))));
  PathPtr body = Seq(Test(not_beta_hits_v), Filter(AxStar(Axis::kChild), IsVar(v)));
  return For(v, alpha, body);
}

PathPtr IntersectToFor(const PathPtr& alpha, const PathPtr& beta, const std::string& var) {
  const std::string v = AvoidCapture(var, beta);
  return For(v, alpha, Filter(beta, IsVar(v)));
}

PathPtr IntersectToComplement(const PathPtr& alpha, const PathPtr& beta) {
  return Complement(alpha, Complement(alpha, beta));
}

PathPtr UnionToComplement(const PathPtr& alpha, const PathPtr& beta) {
  PathPtr u = Seq(AxStar(Axis::kParent), AxStar(Axis::kChild));
  return Complement(u, IntersectToComplement(Complement(u, alpha), Complement(u, beta)));
}

NodePtr PathEqToIntersect(const PathPtr& alpha, const PathPtr& beta) {
  return Some(Intersect(alpha, beta));
}

namespace {

// Rewriters share a fresh-variable counter through this context. `used` holds
// every variable name occurring anywhere in the input expression (binders and
// references alike), so Fresh() can never collide with a user variable —
// without this, an input mentioning $f0 would have its occurrences captured
// by the first generated binder.
struct RewriteCtx {
  int next_var = 0;
  std::set<std::string> used;
  std::string Fresh() {
    for (;;) {
      std::string candidate = "f" + std::to_string(next_var++);
      if (!used.count(candidate)) return candidate;
    }
  }
};

PathPtr RewriteCapPath(const PathPtr& p, RewriteCtx* ctx);

NodePtr RewriteCapNode(const NodePtr& n, RewriteCtx* ctx) {
  switch (n->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return n;
    case NodeKind::kSome:
      return Some(RewriteCapPath(n->path, ctx));
    case NodeKind::kNot:
      return Not(RewriteCapNode(n->child1, ctx));
    case NodeKind::kAnd:
      return And(RewriteCapNode(n->child1, ctx), RewriteCapNode(n->child2, ctx));
    case NodeKind::kOr:
      return Or(RewriteCapNode(n->child1, ctx), RewriteCapNode(n->child2, ctx));
    case NodeKind::kPathEq:
      // α ≈ β ⇝ ⟨α ∩ β⟩ ⇝ ⟨for ...⟩.
      return Some(RewriteCapPath(Intersect(n->path, n->path2), ctx));
  }
  // The switch is exhaustive (-Wswitch-enum); an out-of-range kind is memory
  // corruption, not a new enumerator, so fail hard rather than pass the node
  // through unrewritten.
  std::abort();
}

PathPtr RewriteCapPath(const PathPtr& p, RewriteCtx* ctx) {
  switch (p->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return p;
    case PathKind::kSeq:
      return Seq(RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx));
    case PathKind::kUnion:
      return Union(RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx));
    case PathKind::kFilter:
      return Filter(RewriteCapPath(p->left, ctx), RewriteCapNode(p->filter, ctx));
    case PathKind::kStar:
      return Star(RewriteCapPath(p->left, ctx));
    case PathKind::kIntersect:
      return IntersectToFor(RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx),
                            ctx->Fresh());
    case PathKind::kComplement:
      return Complement(RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx));
    case PathKind::kFor:
      return For(p->var, RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx));
  }
  std::abort();  // Exhaustive switch; see RewriteCapNode.
}

PathPtr RewriteMinusPath(const PathPtr& p, RewriteCtx* ctx);

NodePtr RewriteMinusNode(const NodePtr& n, RewriteCtx* ctx) {
  switch (n->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return n;
    case NodeKind::kSome:
      return Some(RewriteMinusPath(n->path, ctx));
    case NodeKind::kNot:
      return Not(RewriteMinusNode(n->child1, ctx));
    case NodeKind::kAnd:
      return And(RewriteMinusNode(n->child1, ctx), RewriteMinusNode(n->child2, ctx));
    case NodeKind::kOr:
      return Or(RewriteMinusNode(n->child1, ctx), RewriteMinusNode(n->child2, ctx));
    case NodeKind::kPathEq:
      return PathEq(RewriteMinusPath(n->path, ctx), RewriteMinusPath(n->path2, ctx));
  }
  std::abort();  // Exhaustive switch; see RewriteCapNode.
}

PathPtr RewriteMinusPath(const PathPtr& p, RewriteCtx* ctx) {
  switch (p->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return p;
    case PathKind::kSeq:
      return Seq(RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx));
    case PathKind::kUnion:
      return Union(RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx));
    case PathKind::kFilter:
      return Filter(RewriteMinusPath(p->left, ctx), RewriteMinusNode(p->filter, ctx));
    case PathKind::kStar:
      return Star(RewriteMinusPath(p->left, ctx));
    case PathKind::kIntersect:
      return Intersect(RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx));
    case PathKind::kComplement:
      return ComplementToFor(RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx),
                             ctx->Fresh());
    case PathKind::kFor:
      return For(p->var, RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx));
  }
  std::abort();  // Exhaustive switch; see RewriteCapNode.
}

}  // namespace

PathPtr RewriteIntersectToFor(const PathPtr& path) {
  StatsTimer timer(Metric::kTranslateForElim);
  RewriteCtx ctx;
  ctx.used = Variables(path);
  return RewriteCapPath(path, &ctx);
}

NodePtr RewriteIntersectToFor(const NodePtr& node) {
  StatsTimer timer(Metric::kTranslateForElim);
  RewriteCtx ctx;
  ctx.used = Variables(node);
  return RewriteCapNode(node, &ctx);
}

PathPtr RewriteComplementToFor(const PathPtr& path) {
  StatsTimer timer(Metric::kTranslateForElim);
  RewriteCtx ctx;
  ctx.used = Variables(path);
  return RewriteMinusPath(path, &ctx);
}

NodePtr RewriteComplementToFor(const NodePtr& node) {
  StatsTimer timer(Metric::kTranslateForElim);
  RewriteCtx ctx;
  ctx.used = Variables(node);
  return RewriteMinusNode(node, &ctx);
}

}  // namespace xpc
