#include "xpc/translate/for_elim.h"


#include "xpc/common/stats.h"
#include "xpc/xpath/build.h"

namespace xpc {

PathPtr ComplementToFor(const PathPtr& alpha, const PathPtr& beta, const std::string& var) {
  // for $i in α return .[¬⟨β[. is $i]⟩] / ↓*[. is $i].
  NodePtr not_beta_hits_i = Not(Some(Filter(beta, IsVar(var))));
  PathPtr body = Seq(Test(not_beta_hits_i), Filter(AxStar(Axis::kChild), IsVar(var)));
  return For(var, alpha, body);
}

PathPtr IntersectToFor(const PathPtr& alpha, const PathPtr& beta, const std::string& var) {
  return For(var, alpha, Filter(beta, IsVar(var)));
}

PathPtr IntersectToComplement(const PathPtr& alpha, const PathPtr& beta) {
  return Complement(alpha, Complement(alpha, beta));
}

PathPtr UnionToComplement(const PathPtr& alpha, const PathPtr& beta) {
  PathPtr u = Seq(AxStar(Axis::kParent), AxStar(Axis::kChild));
  return Complement(u, IntersectToComplement(Complement(u, alpha), Complement(u, beta)));
}

NodePtr PathEqToIntersect(const PathPtr& alpha, const PathPtr& beta) {
  return Some(Intersect(alpha, beta));
}

namespace {

// Rewriters share a fresh-variable counter through this context.
struct RewriteCtx {
  int next_var = 0;
  std::string Fresh() { return "f" + std::to_string(next_var++); }
};

PathPtr RewriteCapPath(const PathPtr& p, RewriteCtx* ctx);

NodePtr RewriteCapNode(const NodePtr& n, RewriteCtx* ctx) {
  switch (n->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return n;
    case NodeKind::kSome:
      return Some(RewriteCapPath(n->path, ctx));
    case NodeKind::kNot:
      return Not(RewriteCapNode(n->child1, ctx));
    case NodeKind::kAnd:
      return And(RewriteCapNode(n->child1, ctx), RewriteCapNode(n->child2, ctx));
    case NodeKind::kOr:
      return Or(RewriteCapNode(n->child1, ctx), RewriteCapNode(n->child2, ctx));
    case NodeKind::kPathEq:
      // α ≈ β ⇝ ⟨α ∩ β⟩ ⇝ ⟨for ...⟩.
      return Some(RewriteCapPath(Intersect(n->path, n->path2), ctx));
  }
  return n;
}

PathPtr RewriteCapPath(const PathPtr& p, RewriteCtx* ctx) {
  switch (p->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return p;
    case PathKind::kSeq:
      return Seq(RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx));
    case PathKind::kUnion:
      return Union(RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx));
    case PathKind::kFilter:
      return Filter(RewriteCapPath(p->left, ctx), RewriteCapNode(p->filter, ctx));
    case PathKind::kStar:
      return Star(RewriteCapPath(p->left, ctx));
    case PathKind::kIntersect:
      return IntersectToFor(RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx),
                            ctx->Fresh());
    case PathKind::kComplement:
      return Complement(RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx));
    case PathKind::kFor:
      return For(p->var, RewriteCapPath(p->left, ctx), RewriteCapPath(p->right, ctx));
  }
  return p;
}

PathPtr RewriteMinusPath(const PathPtr& p, RewriteCtx* ctx);

NodePtr RewriteMinusNode(const NodePtr& n, RewriteCtx* ctx) {
  switch (n->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return n;
    case NodeKind::kSome:
      return Some(RewriteMinusPath(n->path, ctx));
    case NodeKind::kNot:
      return Not(RewriteMinusNode(n->child1, ctx));
    case NodeKind::kAnd:
      return And(RewriteMinusNode(n->child1, ctx), RewriteMinusNode(n->child2, ctx));
    case NodeKind::kOr:
      return Or(RewriteMinusNode(n->child1, ctx), RewriteMinusNode(n->child2, ctx));
    case NodeKind::kPathEq:
      return PathEq(RewriteMinusPath(n->path, ctx), RewriteMinusPath(n->path2, ctx));
  }
  return n;
}

PathPtr RewriteMinusPath(const PathPtr& p, RewriteCtx* ctx) {
  switch (p->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return p;
    case PathKind::kSeq:
      return Seq(RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx));
    case PathKind::kUnion:
      return Union(RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx));
    case PathKind::kFilter:
      return Filter(RewriteMinusPath(p->left, ctx), RewriteMinusNode(p->filter, ctx));
    case PathKind::kStar:
      return Star(RewriteMinusPath(p->left, ctx));
    case PathKind::kIntersect:
      return Intersect(RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx));
    case PathKind::kComplement:
      return ComplementToFor(RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx),
                             ctx->Fresh());
    case PathKind::kFor:
      return For(p->var, RewriteMinusPath(p->left, ctx), RewriteMinusPath(p->right, ctx));
  }
  return p;
}

}  // namespace

PathPtr RewriteIntersectToFor(const PathPtr& path) {
  StatsTimer timer(Metric::kTranslateForElim);
  RewriteCtx ctx;
  return RewriteCapPath(path, &ctx);
}

NodePtr RewriteIntersectToFor(const NodePtr& node) {
  StatsTimer timer(Metric::kTranslateForElim);
  RewriteCtx ctx;
  return RewriteCapNode(node, &ctx);
}

PathPtr RewriteComplementToFor(const PathPtr& path) {
  StatsTimer timer(Metric::kTranslateForElim);
  RewriteCtx ctx;
  return RewriteMinusPath(path, &ctx);
}

NodePtr RewriteComplementToFor(const NodePtr& node) {
  StatsTimer timer(Metric::kTranslateForElim);
  RewriteCtx ctx;
  return RewriteMinusNode(node, &ctx);
}

}  // namespace xpc
