#ifndef XPC_CORE_SESSION_H_
#define XPC_CORE_SESSION_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "xpc/automata/dfa.h"
#include "xpc/common/stats.h"
#include "xpc/core/solver.h"
#include "xpc/edtd/edtd.h"
#include "xpc/pathauto/lexpr.h"
#include "xpc/schemaindex/schema_index.h"
#include "xpc/xpath/interner.h"

namespace xpc {

/// A bounded least-recently-used map. `Get` bumps recency and returns a
/// pointer that stays valid until the next mutating call; `Put` evicts the
/// oldest entries beyond `capacity`. Not thread-safe (callers lock).
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  const V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  void Put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }
  int64_t evictions() const { return evictions_; }

  void Clear() {
    order_.clear();
    index_.clear();
  }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // Front = most recently used.
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash> index_;
  int64_t evictions_ = 0;
};

/// Stable fingerprint of everything a cached verdict depends on besides the
/// expressions themselves: the engine resource limits and dispatch flags.
uint64_t FingerprintOptions(const SolverOptions& options);

/// Stable fingerprint of an EDTD (root type, abstract/concrete labels and
/// content-model regexes, in definition order).
uint64_t FingerprintEdtd(const Edtd& edtd);

/// Configuration of a `Session`.
struct SessionOptions {
  SolverOptions solver;
  /// LRU bound on each verdict cache (containment / satisfiability).
  size_t verdict_cache_capacity = 4096;
  /// LRU bound on each compiled-artifact cache (path automata, DFAs).
  size_t artifact_cache_capacity = 1024;
  /// Worker threads for `ContainsBatch`; 0 = min(hardware_concurrency, 8).
  int batch_threads = 0;
  /// Ahead-of-time schema index built (or fetched from the registry) by
  /// `SetEdtd`. `build_threads` controls the per-type build fan-out.
  SchemaIndexOptions schema_index;
};

/// Observability counters for a `Session`. All counters are cumulative since
/// construction or the last `ResetStats`.
struct SessionStats {
  struct Cache {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    double HitRate() const {
      return hits + misses == 0 ? 0.0 : static_cast<double>(hits) / (hits + misses);
    }
  };
  Cache containment;  ///< Contains / Equivalent / ContainsBatch verdicts.
  Cache sat;          ///< NodeSatisfiable / PathSatisfiable verdicts.
  Cache automata;     ///< Compiled path automata.
  Cache dfa;          ///< Determinized content-model DFAs.

  int64_t interned_paths = 0;  ///< Distinct canonical path expressions.
  int64_t interned_nodes = 0;  ///< Distinct canonical node expressions.

  int64_t batch_queries = 0;  ///< Queries submitted through ContainsBatch.
  int64_t batch_deduped = 0;  ///< Of those, resolved by sharing within the batch.

  int64_t invalidations = 0;  ///< Cache clears due to options/EDTD changes.

  /// Wall time and call count per engine, keyed by `SatResult::engine` of
  /// the *uncached* solves (cache hits cost no engine time by design).
  struct EngineTime {
    int64_t calls = 0;
    int64_t micros = 0;
  };
  std::map<std::string, EngineTime> engines;

  int64_t TotalSolveMicros() const;
  std::string ToString() const;
};

/// A memoizing façade over `Solver` for query-heavy workloads.
///
/// The session (a) hash-conses every submitted expression through an
/// `ExprInterner`, so structurally equal queries share one canonical AST
/// with an O(1) identity and a stable 64-bit fingerprint; (b) memoizes
/// final `ContainmentResult` / `SatResult` verdicts and compiled engine
/// artifacts in LRU-bounded caches keyed on canonical identity; and (c)
/// answers batches of containment queries on a small thread pool,
/// deduplicating shared subproblems first.
///
/// Caching is legal because every verdict is a pure function of
/// (expression, SolverOptions, ambient EDTD): engines are deterministic,
/// including their seeded random phases. Changing the options or the EDTD
/// therefore invalidates the verdict caches (compiled path automata survive
/// both — they depend on the expression only; content-model DFAs survive
/// option changes but not EDTD changes).
///
/// All public methods are thread-safe; the caches are shared across
/// threads under one lock, which is released during actual engine runs.
class Session {
 public:
  explicit Session(SessionOptions options = {});

  // --- AST layer -------------------------------------------------------

  /// Canonical representative / structural fingerprint (see ExprInterner).
  PathPtr Intern(const PathPtr& path);
  NodePtr Intern(const NodePtr& node);
  uint64_t Fingerprint(const PathPtr& path);
  uint64_t Fingerprint(const NodePtr& node);

  // --- Configuration ---------------------------------------------------

  /// Replaces the solver options. Clears all verdict caches when the new
  /// options differ (by fingerprint) from the current ones.
  void SetSolverOptions(const SolverOptions& options);

  /// Sets / clears the ambient EDTD all queries are relativized to.
  /// Clears the verdict and content-DFA caches when it actually changes.
  void SetEdtd(const Edtd& edtd);
  void ClearEdtd();

  const SolverOptions& solver_options() const { return options_.solver; }
  bool has_edtd() const { return edtd_ != nullptr; }

  // --- Memoized queries ------------------------------------------------

  SatResult NodeSatisfiable(const NodePtr& phi);
  SatResult PathSatisfiable(const PathPtr& alpha);
  ContainmentResult Contains(const PathPtr& alpha, const PathPtr& beta);
  ContainmentResult Equivalent(const PathPtr& alpha, const PathPtr& beta);

  /// Decides many containment queries at once: structurally equal pairs are
  /// solved once, and the distinct uncached subproblems run on the worker
  /// pool. `results[i]` corresponds to `queries[i]`.
  std::vector<ContainmentResult> ContainsBatch(
      std::span<const std::pair<PathPtr, PathPtr>> queries);

  // --- Memoized artifacts ----------------------------------------------

  /// The Section 3.1 path automaton for `alpha`, compiled once per
  /// canonical expression. Returns nullptr for unsupported operators
  /// (∩, −, for — cf. PathToAutomaton).
  PathAutoPtr CompiledPathAutomaton(const PathPtr& alpha);

  /// The determinized content-model DFA of the ambient EDTD's type
  /// `abstract_label` (alphabet = definition-order abstract labels).
  /// Returns nullptr if no EDTD is set or the type is unknown.
  std::shared_ptr<const Dfa> ContentModelDfa(const std::string& abstract_label);

  // --- Observability ---------------------------------------------------

  /// Consistent snapshot of the counters.
  SessionStats stats() const;

  /// Unified telemetry view: the session's cache counters (the same numbers
  /// as `stats()`, on the `session.*` metrics) folded together with the
  /// engine telemetry of every uncached solve this session performed
  /// (per-phase timers, peak automaton sizes — see `StatsSnapshot`).
  StatsSnapshot telemetry() const;

  void ResetStats();
  /// Drops all cached verdicts and artifacts (the interner is kept).
  void ClearCaches();

 private:
  struct PairKey {
    const PathExpr* a;
    const PathExpr* b;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const;
  };

  ContainmentResult SolveContainment(const PathPtr& alpha, const PathPtr& beta,
                                     const Edtd* edtd) const;
  void RecordEngine(const std::string& engine, int64_t micros);

  SessionOptions options_;
  // Published EDTD snapshot: swapped atomically under the lock, captured by
  // queries before they release it, so in-flight solves keep a consistent
  // schema even across SetEdtd calls. Content NFAs are pre-built before
  // publication, making the pointee truly read-only.
  std::shared_ptr<const Edtd> edtd_;
  // Ahead-of-time index of the published EDTD (nullptr when no EDTD is set
  // or the index layer is disabled). Immutable; shared with the registry.
  std::shared_ptr<const SchemaIndex> schema_index_;
  uint64_t options_fp_;
  uint64_t edtd_fp_ = 0;

  mutable std::mutex mu_;
  ExprInterner interner_;
  Solver solver_;
  LruCache<PairKey, ContainmentResult, PairKeyHash> containment_cache_;
  LruCache<const NodeExpr*, SatResult> sat_cache_;
  LruCache<const PathExpr*, PathAutoPtr> automaton_cache_;
  LruCache<int, std::shared_ptr<const Dfa>> dfa_cache_;
  SessionStats stats_;
  /// The unified collector behind `telemetry()`: session cache counters
  /// plus the merged `StatsSnapshot` of every uncached solve.
  Stats telemetry_;
};

}  // namespace xpc

#endif  // XPC_CORE_SESSION_H_
