#ifndef XPC_CORE_SESSION_H_
#define XPC_CORE_SESSION_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "xpc/automata/dfa.h"
#include "xpc/common/stats.h"
#include "xpc/core/solver.h"
#include "xpc/edtd/edtd.h"
#include "xpc/pathauto/lexpr.h"
#include "xpc/schemaindex/schema_index.h"
#include "xpc/xpath/interner.h"

namespace xpc {

/// A bounded least-recently-used map. `Get` bumps recency and returns a
/// pointer that stays valid until the next mutating call; `Put` evicts the
/// oldest entries beyond `capacity`. Not thread-safe (callers lock).
///
/// Layout (DESIGN.md §2.9): entries live in one contiguous slot arena with
/// intrusive int32 recency links, indexed by an open-addressing
/// (hash, slot) probe table — no per-entry node allocations, so a hit
/// touches a probe line plus a handful of arena lines instead of chasing
/// map and list nodes. Eviction order is exact LRU, identical to the
/// node-based implementation it replaced.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  const V* Get(const K& key) {
    const int32_t slot = FindSlot(key, Hash{}(key));
    if (slot < 0) return nullptr;
    MoveToFront(slot);
    return &slots_[slot].value;
  }

  void Put(const K& key, V value) {
    const size_t hash = Hash{}(key);
    const int32_t slot = FindSlot(key, hash);
    if (slot >= 0) {
      slots_[slot].value = std::move(value);
      MoveToFront(slot);
      return;
    }
    int32_t s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
      slots_[s].key = key;
      slots_[s].value = std::move(value);
    } else {
      s = static_cast<int32_t>(slots_.size());
      slots_.push_back({key, std::move(value), -1, -1});
    }
    LinkFront(s);
    ++size_;
    IndexInsert(hash, s);
    while (size_ > capacity_) {
      const int32_t victim = tail_;
      IndexErase(slots_[victim].key);
      Unlink(victim);
      slots_[victim].key = K();
      slots_[victim].value = V();  // Release held resources eagerly.
      free_.push_back(victim);
      --size_;
      ++evictions_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  int64_t evictions() const { return evictions_; }

  void Clear() {
    slots_.clear();
    free_.clear();
    buckets_.clear();
    head_ = tail_ = -1;
    size_ = used_ = tombstones_ = 0;
  }

 private:
  struct Slot {
    K key;
    V value;
    int32_t prev;
    int32_t next;
  };
  struct Bucket {
    size_t hash = 0;
    int32_t slot = kEmpty;  // kEmpty, kTombstone, or a slot id.
  };
  static constexpr int32_t kEmpty = -1;
  static constexpr int32_t kTombstone = -2;

  int32_t FindSlot(const K& key, size_t hash) const {
    if (buckets_.empty()) return -1;
    const size_t mask = buckets_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const Bucket& b = buckets_[i];
      if (b.slot == kEmpty) return -1;
      if (b.slot >= 0 && b.hash == hash && slots_[b.slot].key == key) return b.slot;
    }
  }

  void IndexInsert(size_t hash, int32_t slot) {
    if ((used_ + tombstones_ + 1) * 4 > buckets_.size() * 3) Rehash();
    const size_t mask = buckets_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Bucket& b = buckets_[i];
      if (b.slot < 0) {  // Empty or tombstone: claim it.
        if (b.slot == kTombstone) --tombstones_;
        b = {hash, slot};
        ++used_;
        return;
      }
    }
  }

  void IndexErase(const K& key) {
    const size_t hash = Hash{}(key);
    const size_t mask = buckets_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Bucket& b = buckets_[i];
      if (b.slot == kEmpty) return;
      if (b.slot >= 0 && b.hash == hash && slots_[b.slot].key == key) {
        b.slot = kTombstone;
        --used_;
        ++tombstones_;
        return;
      }
    }
  }

  void Rehash() {
    size_t want = 16;
    while (want * 3 < (used_ + 1) * 8) want <<= 1;  // Rebuilt load <= 3/8.
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(want, Bucket{});
    tombstones_ = 0;
    used_ = 0;
    const size_t mask = buckets_.size() - 1;
    for (const Bucket& b : old) {
      if (b.slot < 0) continue;
      for (size_t i = b.hash & mask;; i = (i + 1) & mask) {
        if (buckets_[i].slot == kEmpty) {
          buckets_[i] = b;
          ++used_;
          break;
        }
      }
    }
  }

  void LinkFront(int32_t s) {
    slots_[s].prev = -1;
    slots_[s].next = head_;
    if (head_ >= 0) slots_[head_].prev = s;
    head_ = s;
    if (tail_ < 0) tail_ = s;
  }

  void Unlink(int32_t s) {
    const int32_t p = slots_[s].prev;
    const int32_t n = slots_[s].next;
    if (p >= 0) slots_[p].next = n; else head_ = n;
    if (n >= 0) slots_[n].prev = p; else tail_ = p;
  }

  void MoveToFront(int32_t s) {
    if (head_ == s) return;
    Unlink(s);
    LinkFront(s);
  }

  size_t capacity_;
  std::vector<Slot> slots_;      // Arena; `free_` holds recycled ids.
  std::vector<int32_t> free_;
  std::vector<Bucket> buckets_;  // Open-addressing index, power-of-2 sized.
  int32_t head_ = -1;            // Most recently used.
  int32_t tail_ = -1;            // Least recently used.
  size_t size_ = 0;
  size_t used_ = 0;
  size_t tombstones_ = 0;
  int64_t evictions_ = 0;
};

/// Slim satisfiability-cache entry: everything a repeat caller observes
/// except the per-solve cost profile. A cache hit performed no solve work,
/// so its `SatResult::stats` comes back empty instead of replaying the
/// original solve's snapshot (which was already merged into the session
/// telemetry once, at miss time). Dropping the ~1 KB snapshot also keeps
/// entries small enough that a hot cache of 10^5 verdicts stays
/// cache-resident — part of the data-oriented layout pass (DESIGN.md §2.9).
struct CachedSat {
  SolveStatus status = SolveStatus::kResourceLimit;
  int64_t explored_states = 0;
  std::string engine;
  std::optional<XmlTree> witness;
};

/// Stable fingerprint of everything a cached verdict depends on besides the
/// expressions themselves: the engine resource limits and dispatch flags.
uint64_t FingerprintOptions(const SolverOptions& options);

/// Stable fingerprint of an EDTD (root type, abstract/concrete labels and
/// content-model regexes, in definition order).
uint64_t FingerprintEdtd(const Edtd& edtd);

/// Configuration of a `Session`.
struct SessionOptions {
  SolverOptions solver;
  /// LRU bound on each verdict cache (containment / satisfiability).
  size_t verdict_cache_capacity = 4096;
  /// LRU bound on each compiled-artifact cache (path automata, DFAs).
  size_t artifact_cache_capacity = 1024;
  /// Worker threads for `ContainsBatch`; 0 = min(hardware_concurrency, 8).
  int batch_threads = 0;
  /// Ahead-of-time schema index built (or fetched from the registry) by
  /// `SetEdtd`. `build_threads` controls the per-type build fan-out.
  SchemaIndexOptions schema_index;
};

/// Observability counters for a `Session`. All counters are cumulative since
/// construction or the last `ResetStats`.
struct SessionStats {
  struct Cache {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    double HitRate() const {
      return hits + misses == 0 ? 0.0 : static_cast<double>(hits) / (hits + misses);
    }
  };
  Cache containment;  ///< Contains / Equivalent / ContainsBatch verdicts.
  Cache sat;          ///< NodeSatisfiable / PathSatisfiable verdicts.
  Cache automata;     ///< Compiled path automata.
  Cache dfa;          ///< Determinized content-model DFAs.

  int64_t interned_paths = 0;  ///< Distinct canonical path expressions.
  int64_t interned_nodes = 0;  ///< Distinct canonical node expressions.

  int64_t batch_queries = 0;  ///< Queries submitted through ContainsBatch.
  int64_t batch_deduped = 0;  ///< Of those, resolved by sharing within the batch.

  int64_t invalidations = 0;  ///< Cache clears due to options/EDTD changes.

  /// Wall time and call count per engine, keyed by `SatResult::engine` of
  /// the *uncached* solves (cache hits cost no engine time by design).
  struct EngineTime {
    int64_t calls = 0;
    int64_t micros = 0;
  };
  std::map<std::string, EngineTime> engines;

  int64_t TotalSolveMicros() const;
  std::string ToString() const;
};

/// A memoizing façade over `Solver` for query-heavy workloads.
///
/// The session (a) hash-conses every submitted expression through an
/// `ExprInterner`, so structurally equal queries share one canonical AST
/// with an O(1) identity and a stable 64-bit fingerprint; (b) memoizes
/// final `ContainmentResult` / `SatResult` verdicts and compiled engine
/// artifacts in LRU-bounded caches keyed on canonical identity; and (c)
/// answers batches of containment queries on a small thread pool,
/// deduplicating shared subproblems first.
///
/// Caching is legal because every verdict is a pure function of
/// (expression, SolverOptions, ambient EDTD): engines are deterministic,
/// including their seeded random phases. Changing the options or the EDTD
/// therefore invalidates the verdict caches (compiled path automata survive
/// both — they depend on the expression only; content-model DFAs survive
/// option changes but not EDTD changes).
///
/// All public methods are thread-safe; the caches are shared across
/// threads under one lock, which is released during actual engine runs.
class Session {
 public:
  explicit Session(SessionOptions options = {});

  // --- AST layer -------------------------------------------------------

  /// Canonical representative / structural fingerprint (see ExprInterner).
  PathPtr Intern(const PathPtr& path);
  NodePtr Intern(const NodePtr& node);
  uint64_t Fingerprint(const PathPtr& path);
  uint64_t Fingerprint(const NodePtr& node);

  // --- Configuration ---------------------------------------------------

  /// Replaces the solver options. Clears all verdict caches when the new
  /// options differ (by fingerprint) from the current ones.
  void SetSolverOptions(const SolverOptions& options);

  /// Sets / clears the ambient EDTD all queries are relativized to.
  /// Clears the verdict and content-DFA caches when it actually changes.
  void SetEdtd(const Edtd& edtd);
  void ClearEdtd();

  const SolverOptions& solver_options() const { return options_.solver; }
  bool has_edtd() const { return edtd_ != nullptr; }
  /// The ambient EDTD, or nullptr. Stable until the next SetEdtd/ClearEdtd.
  const Edtd* edtd() const { return edtd_.get(); }

  // --- Memoized queries ------------------------------------------------

  SatResult NodeSatisfiable(const NodePtr& phi);
  SatResult PathSatisfiable(const PathPtr& alpha);
  ContainmentResult Contains(const PathPtr& alpha, const PathPtr& beta);
  ContainmentResult Equivalent(const PathPtr& alpha, const PathPtr& beta);

  /// Decides many containment queries at once: structurally equal pairs are
  /// solved once, and the distinct uncached subproblems run on the worker
  /// pool. `results[i]` corresponds to `queries[i]`.
  std::vector<ContainmentResult> ContainsBatch(
      std::span<const std::pair<PathPtr, PathPtr>> queries);

  // --- Memoized artifacts ----------------------------------------------

  /// The Section 3.1 path automaton for `alpha`, compiled once per
  /// canonical expression. Returns nullptr for unsupported operators
  /// (∩, −, for — cf. PathToAutomaton).
  PathAutoPtr CompiledPathAutomaton(const PathPtr& alpha);

  /// The determinized content-model DFA of the ambient EDTD's type
  /// `abstract_label` (alphabet = definition-order abstract labels).
  /// Returns nullptr if no EDTD is set or the type is unknown.
  std::shared_ptr<const Dfa> ContentModelDfa(const std::string& abstract_label);

  // --- Observability ---------------------------------------------------

  /// Consistent snapshot of the counters.
  SessionStats stats() const;

  /// Unified telemetry view: the session's cache counters (the same numbers
  /// as `stats()`, on the `session.*` metrics) folded together with the
  /// engine telemetry of every uncached solve this session performed
  /// (per-phase timers, peak automaton sizes — see `StatsSnapshot`).
  StatsSnapshot telemetry() const;

  void ResetStats();
  /// Drops all cached verdicts and artifacts (the interner is kept).
  void ClearCaches();

 private:
  struct PairKey {
    const PathExpr* a;
    const PathExpr* b;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const;
  };

  ContainmentResult SolveContainment(const PathPtr& alpha, const PathPtr& beta,
                                     const Edtd* edtd) const;
  void RecordEngine(const std::string& engine, int64_t micros);

  SessionOptions options_;
  // Published EDTD snapshot: swapped atomically under the lock, captured by
  // queries before they release it, so in-flight solves keep a consistent
  // schema even across SetEdtd calls. Content NFAs are pre-built before
  // publication, making the pointee truly read-only.
  std::shared_ptr<const Edtd> edtd_;
  // Ahead-of-time index of the published EDTD (nullptr when no EDTD is set
  // or the index layer is disabled). Immutable; shared with the registry.
  std::shared_ptr<const SchemaIndex> schema_index_;
  uint64_t options_fp_;
  uint64_t edtd_fp_ = 0;

  mutable std::mutex mu_;
  ExprInterner interner_;
  Solver solver_;
  LruCache<PairKey, ContainmentResult, PairKeyHash> containment_cache_;
  LruCache<const NodeExpr*, CachedSat> sat_cache_;
  LruCache<const PathExpr*, PathAutoPtr> automaton_cache_;
  LruCache<int, std::shared_ptr<const Dfa>> dfa_cache_;
  SessionStats stats_;
  /// The unified collector behind `telemetry()`: session cache counters
  /// plus the merged `StatsSnapshot` of every uncached solve.
  Stats telemetry_;
};

}  // namespace xpc

#endif  // XPC_CORE_SESSION_H_
