#ifndef XPC_CORE_SOLVER_H_
#define XPC_CORE_SOLVER_H_

#include <optional>
#include <string>

#include "xpc/edtd/edtd.h"
#include "xpc/sat/bounded_sat.h"
#include "xpc/sat/downward_sat.h"
#include "xpc/sat/engine.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/xpath/ast.h"
#include "xpc/xpath/fragment.h"

namespace xpc {

/// Verdict of a containment query.
enum class ContainmentVerdict {
  kContained,     ///< ⟦α⟧ ⊆ ⟦β⟧ on all (conforming) trees.
  kNotContained,  ///< A counterexample tree exists (attached).
  kUnknown,       ///< Resource limits hit, or an undecidable-in-practice
                  ///< fragment (−, for) searched without success.
};

const char* ContainmentVerdictName(ContainmentVerdict verdict);

/// Result of a containment query. On kNotContained, `counterexample` is a
/// tree T with ⟦α⟧^T ⊄ ⟦β⟧^T (verified against the reference evaluator when
/// `SolverOptions::verify_witnesses` is set).
struct ContainmentResult {
  ContainmentVerdict verdict = ContainmentVerdict::kUnknown;
  std::optional<XmlTree> counterexample;
  std::string engine;
  int64_t explored_states = 0;
  /// Full telemetry of producing this verdict (see SatResult::stats). For
  /// `Equivalent` the two directions are folded together.
  StatsSnapshot stats;
};

/// Facade configuration.
struct SolverOptions {
  LoopSatOptions loop;
  DownwardSatOptions downward;
  BoundedSatOptions bounded;
  /// Re-check every witness / counterexample with the reference evaluator
  /// and drop to kUnknown if the check fails (defense in depth; the check
  /// has never failed in the test suite).
  bool verify_witnesses = true;
  /// Prefer the EXPSPACE downward engine for CoreXPath↓(∩) inputs (it is
  /// usually faster than the 2-EXPTIME product pipeline there).
  bool prefer_downward_engine = true;
  /// Route classified-tractable queries to the PTIME fast paths of
  /// src/xpc/classify/ before the full engines (off switch for A/B
  /// comparison; verdicts are identical either way — see
  /// tests/fastpath_reference_test.cc).
  bool fast_paths = true;
};

/// The user-facing decision-procedure facade. Dispatches to the cheapest
/// complete engine for the input's fragment (Table I):
///
///   CoreXPath(*, ≈)        → loop-sat (EXPTIME, Theorem 13)
///   CoreXPath(*, ∩)        → product translation + loop-sat (2-EXPTIME,
///                            Theorem 19)
///   CoreXPath↓(∩)          → downward engine (EXPSPACE, Theorem 24)
///   CoreXPath(−) / (for)   → bounded search (no elementary procedure
///                            exists: Theorems 30, 31) — may return
///                            kUnknown
///
/// EDTD-relativized queries use the Proposition 6 witness-tree encoding
/// (or the downward engine's native EDTD support), and containment reduces
/// to unsatisfiability via Proposition 4.
class Solver {
 public:
  explicit Solver(SolverOptions options = {}) : options_(std::move(options)) {}

  /// Node satisfiability: is there an XML tree with a node satisfying φ?
  SatResult NodeSatisfiable(const NodePtr& phi);

  /// Node satisfiability w.r.t. an EDTD.
  SatResult NodeSatisfiable(const NodePtr& phi, const Edtd& edtd);

  /// Path satisfiability: ⟦α⟧ ≠ ∅ for some tree?
  SatResult PathSatisfiable(const PathPtr& alpha);
  SatResult PathSatisfiable(const PathPtr& alpha, const Edtd& edtd);

  /// Path containment: ⟦α⟧ ⊆ ⟦β⟧ for all trees?
  ContainmentResult Contains(const PathPtr& alpha, const PathPtr& beta);

  /// Path containment w.r.t. an EDTD (all conforming trees).
  ContainmentResult Contains(const PathPtr& alpha, const PathPtr& beta, const Edtd& edtd);

  /// Path equivalence (two containment queries).
  ContainmentResult Equivalent(const PathPtr& alpha, const PathPtr& beta);

  const SolverOptions& options() const { return options_; }

 private:
  /// DispatchImpl with the engine-stamp guarantee: the returned
  /// `SatResult::engine` is never empty.
  SatResult Dispatch(const NodePtr& phi, const Edtd* edtd);
  SatResult DispatchImpl(const NodePtr& phi, const Edtd* edtd);
  ContainmentResult ToContainment(SatResult sat, const PathPtr& alpha, const PathPtr& beta,
                                  const std::string& super_root);

  SolverOptions options_;
};

}  // namespace xpc

#endif  // XPC_CORE_SOLVER_H_
