#include "xpc/core/session.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "xpc/automata/regex.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/reduction/reductions.h"

namespace xpc {

namespace {

uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t FpCombine(uint64_t seed, uint64_t v) {
  return MixU64(seed ^ (v + 0x165667b19e3779f9ULL));
}

uint64_t FpString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return MixU64(h);
}

int64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return static_cast<int>(hw < 8 ? hw : 8);
}

}  // namespace

uint64_t FingerprintOptions(const SolverOptions& options) {
  uint64_t h = MixU64(0x0507ULL);
  h = FpCombine(h, static_cast<uint64_t>(options.loop.max_items));
  h = FpCombine(h, static_cast<uint64_t>(options.loop.max_pool));
  h = FpCombine(h, options.loop.want_witness ? 1 : 2);
  h = FpCombine(h, static_cast<uint64_t>(options.downward.max_inst_paths));
  h = FpCombine(h, static_cast<uint64_t>(options.downward.max_summaries));
  h = FpCombine(h, static_cast<uint64_t>(options.downward.max_atoms));
  h = FpCombine(h, options.downward.want_witness ? 1 : 2);
  // downward.sat_threads is deliberately NOT fingerprinted: the worklist
  // fixpoint merges in fixed generation order, so verdicts and witnesses
  // are bit-identical for every thread count (asserted by the SatReference
  // suites) and cached results are shareable across thread settings.
  h = FpCombine(h, static_cast<uint64_t>(options.bounded.max_exhaustive_nodes));
  h = FpCombine(h, static_cast<uint64_t>(options.bounded.random_trees));
  h = FpCombine(h, static_cast<uint64_t>(options.bounded.max_random_nodes));
  h = FpCombine(h, options.bounded.seed);
  h = FpCombine(h, options.verify_witnesses ? 1 : 2);
  h = FpCombine(h, options.prefer_downward_engine ? 1 : 2);
  h = FpCombine(h, options.fast_paths ? 1 : 2);
  return h;
}

uint64_t FingerprintEdtd(const Edtd& edtd) {
  uint64_t h = MixU64(0xed7dULL);
  h = FpCombine(h, FpString(edtd.root_type()));
  for (const Edtd::TypeDef& t : edtd.types()) {
    h = FpCombine(h, FpString(t.abstract_label));
    h = FpCombine(h, FpString(t.concrete_label));
    h = FpCombine(h, FpString(RegexToString(t.content)));
  }
  return h;
}

int64_t SessionStats::TotalSolveMicros() const {
  int64_t total = 0;
  for (const auto& [name, t] : engines) total += t.micros;
  return total;
}

std::string SessionStats::ToString() const {
  std::ostringstream out;
  auto line = [&out](const char* name, const Cache& c) {
    out << "  " << name << ": " << c.hits << " hits / " << c.misses << " misses ("
        << static_cast<int>(c.HitRate() * 100.0 + 0.5) << "% hit rate), " << c.evictions
        << " evictions\n";
  };
  out << "session stats:\n";
  line("containment", containment);
  line("sat        ", sat);
  line("automata   ", automata);
  line("content-dfa", dfa);
  out << "  interned: " << interned_paths << " paths, " << interned_nodes << " nodes\n";
  out << "  batch: " << batch_queries << " queries, " << batch_deduped
      << " deduplicated in-batch\n";
  out << "  invalidations: " << invalidations << "\n";
  out << "  engine time (uncached solves):\n";
  for (const auto& [name, t] : engines) {
    out << "    " << name << ": " << t.calls << " calls, " << t.micros / 1000.0 << " ms\n";
  }
  return out.str();
}

size_t Session::PairKeyHash::operator()(const PairKey& k) const {
  return static_cast<size_t>(
      FpCombine(reinterpret_cast<uintptr_t>(k.a), reinterpret_cast<uintptr_t>(k.b)));
}

Session::Session(SessionOptions options)
    : options_(std::move(options)),
      options_fp_(FingerprintOptions(options_.solver)),
      solver_(options_.solver),
      containment_cache_(options_.verdict_cache_capacity),
      sat_cache_(options_.verdict_cache_capacity),
      automaton_cache_(options_.artifact_cache_capacity),
      dfa_cache_(options_.artifact_cache_capacity) {}

PathPtr Session::Intern(const PathPtr& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return interner_.Intern(path);
}

NodePtr Session::Intern(const NodePtr& node) {
  std::lock_guard<std::mutex> lock(mu_);
  return interner_.Intern(node);
}

uint64_t Session::Fingerprint(const PathPtr& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return interner_.Fingerprint(path);
}

uint64_t Session::Fingerprint(const NodePtr& node) {
  std::lock_guard<std::mutex> lock(mu_);
  return interner_.Fingerprint(node);
}

void Session::SetSolverOptions(const SolverOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t fp = FingerprintOptions(options);
  options_.solver = options;
  solver_ = Solver(options);
  if (fp == options_fp_) return;  // No observable change: caches stay valid.
  options_fp_ = fp;
  containment_cache_.Clear();
  sat_cache_.Clear();
  ++stats_.invalidations;
  telemetry_.Add(Metric::kSessionInvalidations);
}

void Session::SetEdtd(const Edtd& edtd) {
  // Pre-build every lazily-cached artifact — content NFAs (CSR indexes,
  // ε-closure memos) and the schema-class predicate verdicts — while the
  // copy is still private, so the published EDTD is never mutated from
  // worker threads.
  auto fresh = std::make_shared<Edtd>(edtd);
  for (size_t i = 0; i < fresh->types().size(); ++i) fresh->ContentNfa(static_cast<int>(i));
  fresh->HasDuplicateFreeContent();
  fresh->HasDisjunctionFreeContent();
  fresh->IsCovering();
  // Attach-time index build (outside the session lock: Acquire may fan out
  // worker threads). Returns the registry-resident index when this schema
  // is already warm.
  std::shared_ptr<const SchemaIndex> index =
      SchemaIndex::Acquire(*fresh, options_.schema_index);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t fp = FingerprintEdtd(edtd);
  if (edtd_ != nullptr && fp == edtd_fp_) return;
  edtd_ = std::move(fresh);
  schema_index_ = std::move(index);
  edtd_fp_ = fp;
  containment_cache_.Clear();
  sat_cache_.Clear();
  dfa_cache_.Clear();
  ++stats_.invalidations;
  telemetry_.Add(Metric::kSessionInvalidations);
}

void Session::ClearEdtd() {
  std::lock_guard<std::mutex> lock(mu_);
  if (edtd_ == nullptr) return;
  edtd_.reset();
  schema_index_.reset();
  edtd_fp_ = 0;
  containment_cache_.Clear();
  sat_cache_.Clear();
  dfa_cache_.Clear();
  ++stats_.invalidations;
  telemetry_.Add(Metric::kSessionInvalidations);
}

void Session::RecordEngine(const std::string& engine, int64_t micros) {
  SessionStats::EngineTime& t = stats_.engines[engine.empty() ? "<unstamped>" : engine];
  ++t.calls;
  t.micros += micros;
}

SatResult Session::NodeSatisfiable(const NodePtr& phi) {
  NodePtr canonical;
  std::shared_ptr<const Edtd> edtd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    canonical = interner_.Intern(phi);
    if (const CachedSat* cached = sat_cache_.Get(canonical.get())) {
      ++stats_.sat.hits;
      telemetry_.Add(Metric::kSessionSatHits);
      SatResult r;
      r.status = cached->status;
      r.explored_states = cached->explored_states;
      r.engine = cached->engine;
      r.witness = cached->witness;
      return r;
    }
    ++stats_.sat.misses;
    telemetry_.Add(Metric::kSessionSatMisses);
    edtd = edtd_;
  }
  Solver solver(options_.solver);
  auto t0 = std::chrono::steady_clock::now();
  SatResult result = edtd != nullptr ? solver.NodeSatisfiable(canonical, *edtd)
                                     : solver.NodeSatisfiable(canonical);
  int64_t micros = MicrosSince(t0);
  std::lock_guard<std::mutex> lock(mu_);
  RecordEngine(result.engine, micros);
  telemetry_.Merge(result.stats);
  sat_cache_.Put(canonical.get(),
                 {result.status, result.explored_states, result.engine, result.witness});
  return result;
}

SatResult Session::PathSatisfiable(const PathPtr& alpha) {
  // Shares the node-satisfiability cache through the Proposition 4
  // reduction α ⇝ ⟨α⟩.
  return NodeSatisfiable(PathSatToNodeSat(alpha));
}

ContainmentResult Session::SolveContainment(const PathPtr& alpha, const PathPtr& beta,
                                            const Edtd* edtd) const {
  Solver solver(options_.solver);
  return edtd != nullptr ? solver.Contains(alpha, beta, *edtd) : solver.Contains(alpha, beta);
}

ContainmentResult Session::Contains(const PathPtr& alpha, const PathPtr& beta) {
  PathPtr a, b;
  std::shared_ptr<const Edtd> edtd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    a = interner_.Intern(alpha);
    b = interner_.Intern(beta);
    if (const ContainmentResult* cached = containment_cache_.Get({a.get(), b.get()})) {
      ++stats_.containment.hits;
      telemetry_.Add(Metric::kSessionContainmentHits);
      return *cached;
    }
    ++stats_.containment.misses;
    telemetry_.Add(Metric::kSessionContainmentMisses);
    edtd = edtd_;
  }
  auto t0 = std::chrono::steady_clock::now();
  ContainmentResult result = SolveContainment(a, b, edtd.get());
  int64_t micros = MicrosSince(t0);
  std::lock_guard<std::mutex> lock(mu_);
  RecordEngine(result.engine, micros);
  telemetry_.Merge(result.stats);
  containment_cache_.Put({a.get(), b.get()}, result);
  return result;
}

ContainmentResult Session::Equivalent(const PathPtr& alpha, const PathPtr& beta) {
  // Two memoized containment queries, so each direction caches and reverses
  // of previously-seen queries hit.
  ContainmentResult forward = Contains(alpha, beta);
  if (forward.verdict != ContainmentVerdict::kContained) return forward;
  return Contains(beta, alpha);
}

std::vector<ContainmentResult> Session::ContainsBatch(
    std::span<const std::pair<PathPtr, PathPtr>> queries) {
  std::vector<ContainmentResult> results(queries.size());

  struct Job {
    PairKey key;
    PathPtr alpha;
    PathPtr beta;
    std::vector<size_t> positions;  // Indices in `queries` sharing this key.
    ContainmentResult result;
    int64_t micros = 0;
  };
  std::vector<Job> jobs;
  std::shared_ptr<const Edtd> edtd;

  {
    std::lock_guard<std::mutex> lock(mu_);
    edtd = edtd_;
    stats_.batch_queries += static_cast<int64_t>(queries.size());
    telemetry_.Add(Metric::kSessionBatchQueries, static_cast<int64_t>(queries.size()));
    std::unordered_map<PairKey, size_t, PairKeyHash> job_index;
    for (size_t i = 0; i < queries.size(); ++i) {
      PathPtr a = interner_.Intern(queries[i].first);
      PathPtr b = interner_.Intern(queries[i].second);
      PairKey key{a.get(), b.get()};
      auto it = job_index.find(key);
      if (it != job_index.end()) {
        // Shared subproblem within the batch: solved (or fetched) once.
        ++stats_.batch_deduped;
        telemetry_.Add(Metric::kSessionBatchDeduped);
        jobs[it->second].positions.push_back(i);
        continue;
      }
      if (const ContainmentResult* cached = containment_cache_.Get(key)) {
        ++stats_.containment.hits;
        telemetry_.Add(Metric::kSessionContainmentHits);
        results[i] = *cached;
        // Later duplicates of a cached pair copy from this position.
        job_index[key] = jobs.size();
        jobs.push_back(Job{key, nullptr, nullptr, {i}, *cached, 0});
        continue;
      }
      ++stats_.containment.misses;
      telemetry_.Add(Metric::kSessionContainmentMisses);
      job_index[key] = jobs.size();
      jobs.push_back(Job{key, std::move(a), std::move(b), {i}, {}, 0});
    }
  }

  // Solve the uncached unique subproblems on the worker pool. Each worker
  // owns a Solver; the shared EDTD is read-only (content NFAs pre-built in
  // SetEdtd).
  std::vector<size_t> pending;
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].alpha != nullptr) pending.push_back(j);
  }
  if (!pending.empty()) {
    int num_threads = ResolveThreads(options_.batch_threads);
    if (static_cast<size_t>(num_threads) > pending.size()) {
      num_threads = static_cast<int>(pending.size());
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
      for (size_t k = next.fetch_add(1); k < pending.size(); k = next.fetch_add(1)) {
        Job& job = jobs[pending[k]];
        auto t0 = std::chrono::steady_clock::now();
        job.result = SolveContainment(job.alpha, job.beta, edtd.get());
        job.micros = MicrosSince(t0);
      }
    };
    if (num_threads <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(num_threads);
      for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker);
      for (std::thread& t : threads) t.join();
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t j : pending) {
      Job& job = jobs[j];
      RecordEngine(job.result.engine, job.micros);
      telemetry_.Merge(job.result.stats);
      containment_cache_.Put(job.key, job.result);
    }
  }

  for (const Job& job : jobs) {
    for (size_t pos : job.positions) results[pos] = job.result;
  }
  return results;
}

PathAutoPtr Session::CompiledPathAutomaton(const PathPtr& alpha) {
  PathPtr canonical;
  {
    std::lock_guard<std::mutex> lock(mu_);
    canonical = interner_.Intern(alpha);
    if (const PathAutoPtr* cached = automaton_cache_.Get(canonical.get())) {
      ++stats_.automata.hits;
      telemetry_.Add(Metric::kSessionAutomataHits);
      return *cached;
    }
    ++stats_.automata.misses;
    telemetry_.Add(Metric::kSessionAutomataMisses);
  }
  auto [ok, automaton] = PathToAutomaton(canonical);
  PathAutoPtr compiled =
      ok ? std::make_shared<const PathAutomaton>(std::move(automaton)) : nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  automaton_cache_.Put(canonical.get(), compiled);
  return compiled;
}

std::shared_ptr<const Dfa> Session::ContentModelDfa(const std::string& abstract_label) {
  int type_index;
  RegexPtr content;
  std::vector<std::string> alphabet;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (edtd_ == nullptr) return nullptr;
    type_index = edtd_->TypeIndex(abstract_label);
    if (type_index < 0) return nullptr;
    if (const std::shared_ptr<const Dfa>* cached = dfa_cache_.Get(type_index)) {
      ++stats_.dfa.hits;
      telemetry_.Add(Metric::kSessionDfaHits);
      return *cached;
    }
    ++stats_.dfa.misses;
    telemetry_.Add(Metric::kSessionDfaMisses);
    if (schema_index_ != nullptr) {
      // Serve the pre-minimized DFA from the index through the cache, so
      // the usual miss-then-hit flow (and pointer identity on repeat
      // lookups) is preserved. The aliasing constructor keeps the whole
      // index alive for as long as the DFA pointer circulates.
      std::shared_ptr<const Dfa> dfa(schema_index_,
                                     &schema_index_->MinimalContentDfa(type_index));
      dfa_cache_.Put(type_index, dfa);
      return dfa;
    }
    content = edtd_->types()[type_index].content;
    alphabet = edtd_->AbstractLabels();
  }
  Nfa nfa = CompileRegex(content, alphabet);
  auto dfa = std::make_shared<const Dfa>(Dfa::Determinize(nfa));
  std::lock_guard<std::mutex> lock(mu_);
  dfa_cache_.Put(type_index, dfa);
  return dfa;
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionStats snapshot = stats_;
  snapshot.containment.evictions = containment_cache_.evictions();
  snapshot.sat.evictions = sat_cache_.evictions();
  snapshot.automata.evictions = automaton_cache_.evictions();
  snapshot.dfa.evictions = dfa_cache_.evictions();
  snapshot.interned_paths = static_cast<int64_t>(interner_.num_paths());
  snapshot.interned_nodes = static_cast<int64_t>(interner_.num_nodes());
  return snapshot;
}

StatsSnapshot Session::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot s = telemetry_.Snapshot();
  // Evictions are accounted inside the LRU caches; patch the totals into
  // the snapshot (nothing else writes these metrics).
  s.values[static_cast<int>(Metric::kSessionContainmentEvictions)] =
      containment_cache_.evictions();
  s.values[static_cast<int>(Metric::kSessionSatEvictions)] = sat_cache_.evictions();
  s.values[static_cast<int>(Metric::kSessionAutomataEvictions)] = automaton_cache_.evictions();
  s.values[static_cast<int>(Metric::kSessionDfaEvictions)] = dfa_cache_.evictions();
  // Gate state (XPC_ARENA / XPC_SIMD) is process-global, not session
  // activity: it is queryable via ArenaGateState()/SimdGateState() and
  // stamped into bench records by the harness. Keeping it out of the
  // session snapshot preserves the contract that a fresh or reset
  // session's telemetry is Empty().
  return s;
}

void Session::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = SessionStats();
  telemetry_.Reset();
}

void Session::ClearCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  containment_cache_.Clear();
  sat_cache_.Clear();
  automaton_cache_.Clear();
  dfa_cache_.Clear();
}

}  // namespace xpc
