#include "xpc/core/solver.h"

#include "xpc/classify/fastpath.h"
#include "xpc/classify/profile.h"
#include "xpc/edtd/conformance.h"
#include "xpc/edtd/encode.h"
#include "xpc/eval/evaluator.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/reduction/reductions.h"
#include "xpc/translate/intersect_product.h"
#include "xpc/xpath/build.h"

namespace xpc {

const char* ContainmentVerdictName(ContainmentVerdict verdict) {
  switch (verdict) {
    case ContainmentVerdict::kContained: return "contained";
    case ContainmentVerdict::kNotContained: return "not-contained";
    case ContainmentVerdict::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

// Checks a SAT witness against the reference evaluator; demotes to
// kResourceLimit on mismatch (should never happen — defense in depth).
SatResult VerifySat(SatResult r, const NodePtr& phi, bool verify) {
  if (!verify || r.status != SolveStatus::kSat || !r.witness.has_value()) return r;
  StatsTimer timer(Metric::kSolverVerifyWitness);
  Evaluator ev(*r.witness);
  if (!ev.SatisfiedSomewhere(phi)) {
    r.status = SolveStatus::kResourceLimit;
    r.engine += ":witness-verification-failed";
    r.witness.reset();
  }
  return r;
}

}  // namespace

SatResult Solver::Dispatch(const NodePtr& phi, const Edtd* edtd) {
  SatResult r = DispatchImpl(phi, edtd);
  // Every result is stamped with the engine that produced it; a missing
  // stamp would make ContainmentResult::engine empty downstream.
  if (r.engine.empty()) r.engine = "dispatch:unstamped";
  return r;
}

SatResult Solver::DispatchImpl(const NodePtr& phi, const Edtd* edtd) {
  Fragment f;
  if (options_.fast_paths) {
    // Classifier front end: route tractable shapes to the PTIME procedures
    // (complete on their fragments — they never fall through), count the
    // rest as fallbacks to the full engines below.
    FastPathRoute route;
    {
      StatsTimer timer(Metric::kClassifyProfile);
      FragmentProfile profile = ClassifyNode(phi);
      f = profile.fragment;
      if (edtd != nullptr) {
        SchemaClass schema = ClassifySchema(*edtd);
        route = SelectFastPath(profile, &schema);
      } else {
        route = SelectFastPath(profile, nullptr);
      }
    }
    switch (route) {
      case FastPathRoute::kDownwardChain:
        StatsAdd(Metric::kClassifyFastpathHits);
        return DownwardChainSatisfiable(phi, edtd);
      case FastPathRoute::kVerticalConjunctive:
        StatsAdd(Metric::kClassifyFastpathHits);
        return VerticalConjunctiveSatisfiable(phi, edtd);
      case FastPathRoute::kNone:
        StatsAdd(Metric::kClassifyFastpathFallbacks);
        break;
    }
  } else {
    f = DetectFragment(phi);
  }

  // Fragments with path complementation or iteration: no elementary
  // decision procedure exists (Theorems 30, 31); bounded search only.
  if (f.uses_complement || f.uses_for) {
    if (edtd != nullptr) {
      // Bounded search filtered by conformance.
      SatResult result;
      result.engine = "bounded-sat+edtd";
      BoundedSatOptions opt = options_.bounded;
      // Enumerate candidate conforming trees by sampling the schema and
      // model checking.
      for (int i = 0; i < opt.random_trees * (opt.max_random_nodes + 1); ++i) {
        auto [ok, tree] = SampleConformingTree(*edtd, opt.max_random_nodes, opt.seed + i);
        if (!ok) continue;
        ++result.explored_states;
        Evaluator ev(tree);
        if (ev.SatisfiedSomewhere(phi)) {
          result.status = SolveStatus::kSat;
          result.witness = std::move(tree);
          return result;
        }
      }
      result.status = SolveStatus::kResourceLimit;
      return result;
    }
    return BoundedSatisfiable(phi, options_.bounded);
  }

  // CoreXPath↓(∩): the EXPSPACE engine (native EDTD support).
  if (options_.prefer_downward_engine && f.IsDownward() && !f.uses_star) {
    SatResult r = edtd != nullptr ? DownwardSatisfiableWithEdtd(phi, *edtd, options_.downward)
                                  : DownwardSatisfiable(phi, options_.downward);
    if (r.status != SolveStatus::kResourceLimit) return r;
    // Fall through to the general pipeline on resource exhaustion.
  }

  // General pipeline: (Prop. 6 encoding if an EDTD is given) → product
  // translation for ∩ → CoreXPath_NFA(*, loop) → loop-sat.
  NodePtr target = phi;
  if (edtd != nullptr) target = EncodeEdtdSatisfiability(phi, *edtd);
  LExprPtr e = f.uses_intersect ? IntersectToLoopNormalForm(target) : ToLoopNormalForm(target);
  if (!e) {
    SatResult r;
    r.engine = "dispatch:no-translation";
    r.status = SolveStatus::kResourceLimit;
    return r;
  }
  SatResult r = LoopSatisfiable(e, options_.loop);
  if (edtd != nullptr) {
    r.engine += "+edtd-encoding";
    if (r.status == SolveStatus::kSat && r.witness.has_value()) {
      // The witness is a witness *tree* over decorated labels t__q; map it
      // back to concrete labels.
      XmlTree decoded = StripWitnessLabels(*r.witness, *edtd);
      r.witness = std::move(decoded);
    }
  }
  return r;
}

SatResult Solver::NodeSatisfiable(const NodePtr& phi) {
  Stats collector;
  SatResult r;
  {
    ScopedStatsSink sink(&collector);
    StatsTimer timer(Metric::kSolverSolve);
    r = VerifySat(Dispatch(phi, nullptr), phi, options_.verify_witnesses);
  }
  r.stats = collector.Snapshot();
  return r;
}

SatResult Solver::NodeSatisfiable(const NodePtr& phi, const Edtd& edtd) {
  Stats collector;
  SatResult r;
  {
    ScopedStatsSink sink(&collector);
    StatsTimer timer(Metric::kSolverSolve);
    r = VerifySat(Dispatch(phi, &edtd), phi, options_.verify_witnesses);
  }
  r.stats = collector.Snapshot();
  return r;
}

SatResult Solver::PathSatisfiable(const PathPtr& alpha) {
  return NodeSatisfiable(PathSatToNodeSat(alpha));
}

SatResult Solver::PathSatisfiable(const PathPtr& alpha, const Edtd& edtd) {
  return NodeSatisfiable(PathSatToNodeSat(alpha), edtd);
}

ContainmentResult Solver::ToContainment(SatResult sat, const PathPtr& alpha,
                                        const PathPtr& beta, const std::string& super_root) {
  ContainmentResult out;
  out.engine = sat.engine;
  out.explored_states = sat.explored_states;
  switch (sat.status) {
    case SolveStatus::kUnsat:
      out.verdict = ContainmentVerdict::kContained;
      return out;
    case SolveStatus::kResourceLimit:
      out.verdict = ContainmentVerdict::kUnknown;
      return out;
    case SolveStatus::kSat:
      break;
  }
  out.verdict = ContainmentVerdict::kNotContained;
  if (sat.witness.has_value()) {
    XmlTree counterexample = StripDecoration(*sat.witness, super_root);
    if (options_.verify_witnesses) {
      StatsTimer timer(Metric::kSolverVerifyWitness);
      Evaluator ev(counterexample);
      Relation a = ev.EvalPath(alpha);
      if (!a.SubtractWithAny(ev.EvalPath(beta))) {
        out.verdict = ContainmentVerdict::kUnknown;
        out.engine += ":counterexample-verification-failed";
        return out;
      }
    }
    out.counterexample = std::move(counterexample);
  }
  return out;
}

ContainmentResult Solver::Contains(const PathPtr& alpha, const PathPtr& beta) {
  Stats collector;
  ContainmentResult r;
  {
    ScopedStatsSink sink(&collector);
    StatsTimer timer(Metric::kSolverSolve);
    NodePtr psi = ContainmentToUnsat(alpha, beta);
    r = ToContainment(Dispatch(psi, nullptr), alpha, beta, "");
  }
  r.stats = collector.Snapshot();
  return r;
}

ContainmentResult Solver::Contains(const PathPtr& alpha, const PathPtr& beta,
                                   const Edtd& edtd) {
  Stats collector;
  ContainmentResult r;
  {
    ScopedStatsSink sink(&collector);
    StatsTimer timer(Metric::kSolverSolve);
    auto [psi, decorated] = ContainmentToUnsatWithEdtd(alpha, beta, edtd);
    r = ToContainment(Dispatch(psi, &decorated), alpha, beta, decorated.root_type());
  }
  r.stats = collector.Snapshot();
  return r;
}

ContainmentResult Solver::Equivalent(const PathPtr& alpha, const PathPtr& beta) {
  ContainmentResult forward = Contains(alpha, beta);
  if (forward.verdict != ContainmentVerdict::kContained) return forward;
  ContainmentResult backward = Contains(beta, alpha);
  backward.stats.MergeFrom(forward.stats);
  return backward;
}

}  // namespace xpc
