#ifndef XPC_COMMON_RESULT_H_
#define XPC_COMMON_RESULT_H_

#include <optional>
#include <string>
#include <utility>

namespace xpc {

/// A lightweight value-or-error carrier, used instead of exceptions for
/// operations that can fail on user input (parsers, validators).
///
/// The library follows the Google style guidance of not letting exceptions
/// escape public APIs; fallible entry points return `Result<T>`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result carrying a human-readable message.
  static Result Error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  /// True if the result holds a value.
  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The held value. Must only be called when `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// The error message. Empty when `ok()`.
  const std::string& error() const { return error_; }

 private:
  Result() = default;

  std::optional<T> value_;
  std::string error_;
};

}  // namespace xpc

#endif  // XPC_COMMON_RESULT_H_
