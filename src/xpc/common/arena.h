#ifndef XPC_COMMON_ARENA_H_
#define XPC_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

namespace xpc {

/// Bump allocator for per-query transients (DESIGN.md §2.9).
///
/// The sat engines and the automata subset/product loops allocate millions
/// of tiny, identically-shaped objects per query (`Bits` word blocks, open
/// addressing table storage) whose lifetimes all end together when the
/// query finishes. An `Arena` carves them out of large chained blocks with
/// a pointer bump, and releases everything at once on `Reset()`/destruction
/// — no per-object frees, no allocator metadata, and hot transients end up
/// contiguous in memory in allocation (i.e. traversal) order.
///
/// Blocks are recycled through a process-wide cache, so steady-state query
/// traffic (the `bench_throughput` scenario) runs without touching the
/// system allocator at all.
///
/// Thread model: an `Arena` itself is single-threaded. Engines install one
/// per worker thread via `ScopedArenaInstall`, which makes it the calling
/// thread's `Arena::Current()`; `Bits` and the flat tables consult that
/// pointer at allocation time. Installed arenas must outlive every object
/// allocated from them — engines own their arenas as the *first* member so
/// they are destroyed last, and code that builds long-lived structures
/// under an installed arena (e.g. `Nfa::EnsureIndex`) shields itself with
/// `ScopedArenaPause`.
class Arena {
 public:
  /// Alignment guarantee for multi-word bitset blocks (and the block payload
  /// start itself): one cache line, so the SIMD kernels' vector loads never
  /// split lines (DESIGN.md §2.10). `Bits`' heap fallback honors it too.
  static constexpr size_t kWordBlockAlign = 64;

  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `n` bytes, 8-byte aligned, uninitialized.
  void* Alloc(size_t n) {
    n = (n + 7u) & ~size_t{7};
    if (n > static_cast<size_t>(end_ - cur_)) Refill(n);
    char* p = cur_;
    cur_ += n;
    return p;
  }

  /// `n` bytes at an `align`-byte boundary (power of two ≤ kWordBlockAlign),
  /// uninitialized. Block payloads start 64-byte aligned, so a refill never
  /// needs more than `n + align` bytes of fresh space.
  void* AllocAligned(size_t n, size_t align) {
    n = (n + 7u) & ~size_t{7};
    uintptr_t p = (reinterpret_cast<uintptr_t>(cur_) + (align - 1)) & ~(align - 1);
    if (reinterpret_cast<char*>(p) + n > end_) {
      Refill(n + align);
      p = (reinterpret_cast<uintptr_t>(cur_) + (align - 1)) & ~(align - 1);
    }
    cur_ = reinterpret_cast<char*>(p) + n;
    return reinterpret_cast<void*>(p);
  }

  /// `n` uint64 words, uninitialized. Blocks wide enough to reach the
  /// dispatched kernels (more than one cache line, mirroring
  /// `Bits::kDispatchWords`) are cache-line aligned; narrower blocks stay on
  /// the cheap bump path — padding them would double the footprint of the
  /// small Hintikka sets that dominate loop-sat and evict twice as fast.
  uint64_t* AllocWords(size_t n) {
    if (n > 8) return static_cast<uint64_t*>(AllocAligned(n * 8, kWordBlockAlign));
    return static_cast<uint64_t*>(Alloc(n * 8));
  }

  /// Drops every allocation at once and rewinds to the first block; spare
  /// blocks go back to the process-wide cache.
  void Reset();

  /// Total bytes of blocks this arena currently holds.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// The calling thread's installed arena, or nullptr when allocation
  /// should fall back to the heap (none installed, paused, or the
  /// `XPC_ARENA=0` kill switch).
  static Arena* Current();

  /// Header of one chained block. alignas(kWordBlockAlign) pads the header
  /// to a full cache line and — together with aligned-new allocation — puts
  /// the payload (`block + 1`) on a 64-byte boundary, which is what lets
  /// `AllocAligned` satisfy any request from block start without waste.
  struct alignas(kWordBlockAlign) Block {
    Block* next;
    size_t size;  // Usable payload bytes following this header.
  };

 private:
  friend class ScopedArenaInstall;
  friend class ScopedArenaPause;

  void Refill(size_t n);

  Block* head_ = nullptr;  // All blocks, newest first.
  char* cur_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_reserved_ = 0;
  size_t next_block_size_ = 0;
};

namespace internal {
/// Data-oriented-layout gate; -1 means "consult XPC_ARENA on first use"
/// (cold path in arena.cc). Relaxed is enough: the flag is flipped only
/// between legs / test cases, never concurrently with hot allocation.
inline std::atomic<int> g_arena_enabled{-1};
int ArenaEnabledSlow();
}  // namespace internal

/// How the `XPC_ARENA` gate last resolved (valid once `ArenaEnabled()` has
/// run, i.e. `resolved >= 0`). Operator typos like `XPC_ARENA=off` used to
/// latch silently; now they warn once on stderr, bump
/// `gate.arena_unrecognized`, and are visible here for tests.
struct ArenaGateStatus {
  bool from_env = false;    ///< XPC_ARENA was set in the environment.
  bool recognized = true;   ///< Value was unset, "0" or "1".
  int resolved = -1;        ///< 0 = heap layout, 1 = arena layout.
};

/// Snapshot of the latest gate resolution (forces a resolve if none ran).
ArenaGateStatus ArenaGateState();

/// Runtime gate for the whole data-oriented layout: arenas, the
/// open-addressing pool tables, *and* the inline-Bits representation.
/// Defaults to the `XPC_ARENA` environment variable ("0" disables;
/// anything else, or unset, enables). The differential tests and the
/// `bench_throughput` baseline leg flip it programmatically; both paths
/// must be bit-identical. Inline: `Bits` consults this in its hottest
/// constructor, so it must compile to a single relaxed load.
inline bool ArenaEnabled() {
  int v = internal::g_arena_enabled.load(std::memory_order_relaxed);
  if (__builtin_expect(v < 0, 0)) v = internal::ArenaEnabledSlow();
  return v != 0;
}

inline void SetArenaEnabled(bool enabled) {
  internal::g_arena_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

/// RAII: installs `arena` as the calling thread's `Arena::Current()` and
/// restores the previous one on destruction. A nullptr arena is a no-op
/// installer (used when `ArenaEnabled()` is off).
class ScopedArenaInstall {
 public:
  explicit ScopedArenaInstall(Arena* arena);
  ~ScopedArenaInstall();

  ScopedArenaInstall(const ScopedArenaInstall&) = delete;
  ScopedArenaInstall& operator=(const ScopedArenaInstall&) = delete;

 private:
  Arena* previous_;
};

/// RAII: makes `Arena::Current()` nullptr for a scope. Used by builders of
/// long-lived structures (NFA indexes, schema indexes) so their `Bits`
/// never land in a per-query arena that dies before they do.
class ScopedArenaPause {
 public:
  ScopedArenaPause();
  ~ScopedArenaPause();

  ScopedArenaPause(const ScopedArenaPause&) = delete;
  ScopedArenaPause& operator=(const ScopedArenaPause&) = delete;

 private:
  Arena* previous_;
};

/// A minimal vector for trivially copyable/destructible element types whose
/// storage comes from the installed arena when one is present (heap
/// otherwise). Geometric growth copies into a fresh block and abandons the
/// old one — cheap under an arena, and the per-query transients this backs
/// rarely grow after warm-up.
template <typename T>
class ArenaVector {
  static_assert(__is_trivially_copyable(T), "ArenaVector needs trivial copies");

 public:
  ArenaVector() = default;
  ~ArenaVector() {
    if (heap_) ::operator delete(data_);
  }

  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;
  ArenaVector(ArenaVector&& o) noexcept
      : data_(o.data_), size_(o.size_), cap_(o.cap_), heap_(o.heap_) {
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
    o.heap_ = false;
  }
  ArenaVector& operator=(ArenaVector&& o) noexcept {
    if (this != &o) {
      if (heap_) ::operator delete(data_);
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      heap_ = o.heap_;
      o.data_ = nullptr;
      o.size_ = o.cap_ = 0;
      o.heap_ = false;
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void clear() { size_ = 0; }

  void push_back(const T& v) {
    if (size_ == cap_) Grow(size_ + 1);
    data_[size_++] = v;
  }

  void resize(size_t n, const T& fill = T{}) {
    if (n > cap_) Grow(n);
    for (size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

 private:
  void Grow(size_t need) {
    size_t cap = cap_ ? cap_ * 2 : 8;
    if (cap < need) cap = need;
    bool heap = false;
    T* fresh;
    if (Arena* a = Arena::Current()) {
      fresh = static_cast<T*>(a->Alloc(cap * sizeof(T)));
    } else {
      fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
      heap = true;
    }
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    if (heap_) ::operator delete(data_);
    data_ = fresh;
    cap_ = cap;
    heap_ = heap;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
  bool heap_ = false;
};

}  // namespace xpc

#endif  // XPC_COMMON_ARENA_H_
