#include "xpc/common/arena.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>

#include "xpc/common/stats.h"

namespace xpc {

namespace {

constexpr size_t kMinBlock = size_t{64} << 10;   // 64 KiB payload to start.
constexpr size_t kMaxBlock = size_t{4} << 20;    // Growth cap per block.
constexpr size_t kCacheCap = size_t{64} << 20;   // Process-wide recycle cap.

thread_local Arena* tls_arena = nullptr;

// Free blocks recycled across arenas (i.e. across queries). Guarded by a
// mutex: acquisition happens only on block exhaustion, never per-allocation.
struct BlockCache {
  std::mutex mu;
  Arena::Block* head = nullptr;
  size_t bytes = 0;
};

BlockCache& Cache() {
  static BlockCache* cache = new BlockCache();
  return *cache;
}

}  // namespace

namespace {

// Latest XPC_ARENA resolution, for ArenaGateState() and the one-time
// warning. Guarded by its own mutex: resolution is a cold path.
std::mutex g_arena_gate_mu;
ArenaGateStatus g_arena_gate;
bool g_arena_gate_warned = false;

}  // namespace

namespace {

// Reads XPC_ARENA and records the outcome (status snapshot, one-time
// warning, gate metrics) without touching the `g_arena_enabled` latch —
// `ArenaGateState()` must be able to resolve lazily without clobbering a
// programmatic `SetArenaEnabled()`.
ArenaGateStatus ResolveArenaGate() {
  const char* env = std::getenv("XPC_ARENA");
  // Resolution semantics are unchanged: exactly "0" disables, anything else
  // (or unset) enables. But an unrecognized value — anything other than
  // unset / "0" / "1" — now signals instead of silently running the arena
  // leg the operator may not have intended.
  ArenaGateStatus status;
  status.from_env = env != nullptr;
  status.recognized =
      env == nullptr || ((env[0] == '0' || env[0] == '1') && env[1] == '\0');
  status.resolved = (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
  {
    std::lock_guard<std::mutex> lock(g_arena_gate_mu);
    g_arena_gate = status;
    if (!status.recognized && !g_arena_gate_warned) {
      g_arena_gate_warned = true;
      std::fprintf(stderr,
                   "xpc: warning: unrecognized XPC_ARENA value \"%s\" "
                   "(expected \"0\" or \"1\"); arena layout stays enabled\n",
                   env);
    }
  }
  StatsGaugeMax(Metric::kGateArenaResolved, status.resolved + 1);
  if (!status.recognized) StatsAdd(Metric::kGateArenaUnrecognized);
  return status;
}

}  // namespace

int internal::ArenaEnabledSlow() {
  ArenaGateStatus status = ResolveArenaGate();
  g_arena_enabled.store(status.resolved, std::memory_order_relaxed);
  return status.resolved;
}

ArenaGateStatus ArenaGateState() {
  {
    std::lock_guard<std::mutex> lock(g_arena_gate_mu);
    if (g_arena_gate.resolved >= 0) return g_arena_gate;
  }
  ResolveArenaGate();  // No env resolve ran yet; record one.
  std::lock_guard<std::mutex> lock(g_arena_gate_mu);
  return g_arena_gate;
}

Arena* Arena::Current() { return tls_arena; }

ScopedArenaInstall::ScopedArenaInstall(Arena* arena) : previous_(tls_arena) {
  if (arena != nullptr) tls_arena = arena;
}

ScopedArenaInstall::~ScopedArenaInstall() { tls_arena = previous_; }

ScopedArenaPause::ScopedArenaPause() : previous_(tls_arena) { tls_arena = nullptr; }

ScopedArenaPause::~ScopedArenaPause() { tls_arena = previous_; }

void Arena::Refill(size_t n) {
  size_t want = next_block_size_ ? next_block_size_ : kMinBlock;
  if (want < n) want = n;

  Block* block = nullptr;
  {
    BlockCache& cache = Cache();
    std::lock_guard<std::mutex> lock(cache.mu);
    Block** prev = &cache.head;
    for (Block* b = cache.head; b != nullptr; prev = &b->next, b = b->next) {
      if (b->size >= want) {
        *prev = b->next;
        cache.bytes -= sizeof(Block) + b->size;
        block = b;
        break;
      }
    }
  }
  if (block == nullptr) {
    block = static_cast<Block*>(::operator new(
        sizeof(Block) + want, std::align_val_t{Arena::kWordBlockAlign}));
    block->size = want;
  }

  block->next = head_;
  head_ = block;
  cur_ = reinterpret_cast<char*>(block + 1);
  end_ = cur_ + block->size;
  bytes_reserved_ += sizeof(Block) + block->size;
  next_block_size_ = block->size < kMaxBlock ? block->size * 2 : kMaxBlock;
  StatsGaugeMax(Metric::kArenaBytesReserved, static_cast<int64_t>(bytes_reserved_));
}

namespace {

// Returns a block chain to the cache (or the heap past the cap).
void Recycle(Arena::Block* head) {
  BlockCache& cache = Cache();
  while (head != nullptr) {
    Arena::Block* next = head->next;
    bool cached = false;
    {
      std::lock_guard<std::mutex> lock(cache.mu);
      if (cache.bytes + sizeof(Arena::Block) + head->size <= kCacheCap) {
        head->next = cache.head;
        cache.head = head;
        cache.bytes += sizeof(Arena::Block) + head->size;
        cached = true;
      }
    }
    if (!cached) ::operator delete(head, std::align_val_t{Arena::kWordBlockAlign});
    head = next;
  }
}

}  // namespace

void Arena::Reset() {
  if (head_ == nullptr) return;
  StatsAdd(Metric::kArenaResets);
  // Keep the newest (largest) block hot, recycle the rest.
  Recycle(head_->next);
  head_->next = nullptr;
  cur_ = reinterpret_cast<char*>(head_ + 1);
  end_ = cur_ + head_->size;
  bytes_reserved_ = sizeof(Block) + head_->size;
}

Arena::~Arena() {
  if (head_ == nullptr) return;
  StatsAdd(Metric::kArenaResets);
  Recycle(head_);
}

}  // namespace xpc
