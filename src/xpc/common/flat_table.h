#ifndef XPC_COMMON_FLAT_TABLE_H_
#define XPC_COMMON_FLAT_TABLE_H_

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "xpc/common/arena.h"

namespace xpc {

/// Open-addressing hash tables for the engines' hot lookups (DESIGN.md
/// §2.9). Both tables use linear probing over a power-of-two entry array
/// whose storage comes from the installed `Arena` when one is present, so a
/// probe touches one contiguous cache line instead of chasing a
/// `std::unordered_map` node. They only support the operations the hot
/// loops actually perform — find, insert-absent, clear — and are paired
/// with `unordered_map` fallbacks in the dual-mode wrappers below, selected
/// by `ArenaEnabled()`; both modes are bit-identical because no caller ever
/// iterates them.

namespace internal {

/// splitmix64 finalizer: full-avalanche mixing for integer keys and for
/// narrowing precomputed 64-bit hashes to a probe start.
inline uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace internal

/// uint64 key → int32 value map (the loop engine's compose/test/extend
/// memos and the automata pair-BFS seen sets). Any value except INT32_MIN
/// is storable.
class FlatMap64 {
 public:
  FlatMap64() = default;
  ~FlatMap64() {
    if (heap_) ::operator delete(entries_);
  }
  FlatMap64(const FlatMap64&) = delete;
  FlatMap64& operator=(const FlatMap64&) = delete;
  FlatMap64(FlatMap64&& o) noexcept
      : entries_(o.entries_), mask_(o.mask_), size_(o.size_), heap_(o.heap_) {
    o.entries_ = nullptr;
    o.mask_ = 0;
    o.size_ = 0;
    o.heap_ = false;
  }
  FlatMap64& operator=(FlatMap64&& o) noexcept {
    std::swap(entries_, o.entries_);
    std::swap(mask_, o.mask_);
    std::swap(size_, o.size_);
    std::swap(heap_, o.heap_);
    return *this;
  }

  size_t size() const { return size_; }

  /// Pointer to the value for `key`, or nullptr when absent.
  int32_t* Find(uint64_t key) {
    if (entries_ == nullptr) return nullptr;
    size_t i = internal::MixU64(key) & mask_;
    while (true) {
      Entry& e = entries_[i];
      if (e.val == kEmpty) return nullptr;
      if (e.key == key) return &e.val;
      i = (i + 1) & mask_;
    }
  }

  /// Inserts an absent key.
  void Insert(uint64_t key, int32_t val) {
    if (entries_ == nullptr || size_ + 1 > (mask_ + 1) - ((mask_ + 1) >> 2)) Grow();
    size_t i = internal::MixU64(key) & mask_;
    while (entries_[i].val != kEmpty) i = (i + 1) & mask_;
    entries_[i].key = key;
    entries_[i].val = val;
    ++size_;
  }

  /// Drops every entry, keeping the storage.
  void Clear() {
    size_ = 0;
    for (size_t i = 0; i <= mask_ && entries_ != nullptr; ++i) entries_[i].val = kEmpty;
  }

 private:
  static constexpr int32_t kEmpty = INT32_MIN;
  struct Entry {
    uint64_t key;
    int32_t val;
  };

  void Grow() {
    size_t cap = entries_ == nullptr ? 16 : (mask_ + 1) * 2;
    Entry* fresh;
    bool heap = false;
    if (Arena* a = Arena::Current()) {
      fresh = static_cast<Entry*>(a->Alloc(cap * sizeof(Entry)));
    } else {
      fresh = static_cast<Entry*>(::operator new(cap * sizeof(Entry)));
      heap = true;
    }
    for (size_t i = 0; i < cap; ++i) fresh[i].val = kEmpty;
    size_t fresh_mask = cap - 1;
    for (size_t i = 0; entries_ != nullptr && i <= mask_; ++i) {
      if (entries_[i].val == kEmpty) continue;
      size_t j = internal::MixU64(entries_[i].key) & fresh_mask;
      while (fresh[j].val != kEmpty) j = (j + 1) & fresh_mask;
      fresh[j] = entries_[i];
    }
    if (heap_) ::operator delete(entries_);
    entries_ = fresh;
    mask_ = fresh_mask;
    heap_ = heap;
  }

  Entry* entries_ = nullptr;
  size_t mask_ = 0;
  size_t size_ = 0;
  bool heap_ = false;
};

/// Interning table over an external id-indexed pool: entries store only
/// (hash, id), the caller resolves an id back to its pooled key for the
/// equality check. This is how Hintikka-set nodes, summaries, items and
/// `StateRel`s are deduplicated without ever copying a key into the table.
class IdTable {
 public:
  IdTable() = default;
  ~IdTable() {
    if (heap_) ::operator delete(entries_);
  }
  IdTable(const IdTable&) = delete;
  IdTable& operator=(const IdTable&) = delete;
  IdTable(IdTable&& o) noexcept
      : entries_(o.entries_), mask_(o.mask_), size_(o.size_), heap_(o.heap_) {
    o.entries_ = nullptr;
    o.mask_ = 0;
    o.size_ = 0;
    o.heap_ = false;
  }
  IdTable& operator=(IdTable&& o) noexcept {
    std::swap(entries_, o.entries_);
    std::swap(mask_, o.mask_);
    std::swap(size_, o.size_);
    std::swap(heap_, o.heap_);
    return *this;
  }

  size_t size() const { return size_; }

  /// Id of the entry matching (hash, eq), or -1. `eq(id)` compares the
  /// probe key against pool element `id`.
  template <typename Eq>
  int32_t Find(uint64_t hash, Eq&& eq) const {
    if (entries_ == nullptr) return -1;
    size_t i = internal::MixU64(hash) & mask_;
    while (true) {
      const Entry& e = entries_[i];
      if (e.id < 0) return -1;
      if (e.hash == hash && eq(e.id)) return e.id;
      i = (i + 1) & mask_;
    }
  }

  /// Inserts an absent (hash → pool id) entry.
  void Insert(uint64_t hash, int32_t id) {
    if (entries_ == nullptr || size_ + 1 > (mask_ + 1) - ((mask_ + 1) >> 2)) Grow();
    size_t i = internal::MixU64(hash) & mask_;
    while (entries_[i].id >= 0) i = (i + 1) & mask_;
    entries_[i].hash = hash;
    entries_[i].id = id;
    ++size_;
  }

  /// Drops every entry, keeping the storage.
  void Clear() {
    size_ = 0;
    for (size_t i = 0; i <= mask_ && entries_ != nullptr; ++i) entries_[i].id = -1;
  }

 private:
  struct Entry {
    uint64_t hash;
    int32_t id;  // < 0 → free slot.
  };

  void Grow() {
    size_t cap = entries_ == nullptr ? 16 : (mask_ + 1) * 2;
    Entry* fresh;
    bool heap = false;
    if (Arena* a = Arena::Current()) {
      fresh = static_cast<Entry*>(a->Alloc(cap * sizeof(Entry)));
    } else {
      fresh = static_cast<Entry*>(::operator new(cap * sizeof(Entry)));
      heap = true;
    }
    for (size_t i = 0; i < cap; ++i) fresh[i].id = -1;
    size_t fresh_mask = cap - 1;
    for (size_t i = 0; entries_ != nullptr && i <= mask_; ++i) {
      if (entries_[i].id < 0) continue;
      size_t j = internal::MixU64(entries_[i].hash) & fresh_mask;
      while (fresh[j].id >= 0) j = (j + 1) & fresh_mask;
      fresh[j] = entries_[i];
    }
    if (heap_) ::operator delete(entries_);
    entries_ = fresh;
    mask_ = fresh_mask;
    heap_ = heap;
  }

  Entry* entries_ = nullptr;
  size_t mask_ = 0;
  size_t size_ = 0;
  bool heap_ = false;
};

/// Dual-mode uint64 → int map: flat open addressing when the data-oriented
/// layout is on, the pre-PR `std::unordered_map` when `XPC_ARENA=0` (the
/// measured baseline leg). The mode is latched at construction.
class U64IntMap {
 public:
  U64IntMap() : flat_mode_(ArenaEnabled()) {}

  /// Pointer to the value for `key`, or nullptr.
  int32_t* Find(uint64_t key) {
    if (flat_mode_) return flat_.Find(key);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Inserts an absent key.
  void Insert(uint64_t key, int32_t val) {
    if (flat_mode_) {
      flat_.Insert(key, val);
    } else {
      map_.emplace(key, val);
    }
  }

  void Clear() {
    if (flat_mode_) {
      flat_.Clear();
    } else {
      map_.clear();
    }
  }

 private:
  bool flat_mode_;
  FlatMap64 flat_;
  std::unordered_map<uint64_t, int32_t> map_;
};

/// Dual-mode uint64 membership set (pair-BFS seen sets). Same contract as
/// `U64IntMap` with the value dropped.
class U64Set {
 public:
  U64Set() : flat_mode_(ArenaEnabled()) {}

  /// Inserts `key`; returns true when it was absent.
  bool InsertNew(uint64_t key) {
    if (flat_mode_) {
      if (flat_.Find(key) != nullptr) return false;
      flat_.Insert(key, 1);
      return true;
    }
    return map_.emplace(key, 1).second;
  }

 private:
  bool flat_mode_;
  FlatMap64 flat_;
  std::unordered_map<uint64_t, char> map_;
};

}  // namespace xpc

#endif  // XPC_COMMON_FLAT_TABLE_H_
