#ifndef XPC_COMMON_STATS_H_
#define XPC_COMMON_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

/// Compile-out switch. Configure with `cmake -DXPC_STATS=OFF` to turn every
/// instrumentation hook below into a no-op with zero runtime cost; the
/// telemetry API itself stays available (snapshots are simply all-zero), so
/// callers never need their own #ifdefs.
#ifndef XPC_STATS_ENABLED
#define XPC_STATS_ENABLED 1
#endif

namespace xpc {

/// The metric registry: every counter, gauge, and timer the solver pipelines
/// report, with a stable dotted name for JSON export.
///
///   counters  accumulate (merge = sum): work performed.
///   gauges    track a high-water mark (merge = max): peak sizes — the
///             automaton blowup the paper's upper-bound proofs bound.
///   timers    accumulate wall-clock microseconds plus a call count
///             (merge = sum): where the time goes, per phase.
#define XPC_METRIC_LIST(X)                                                    \
  /* automata: subset construction / minimization (Prop. 6 machinery) */      \
  X(kAutomataDeterminize, "automata.determinize", kTimer)                     \
  X(kAutomataMinimize, "automata.minimize", kTimer)                           \
  X(kAutomataEpsilonClosureCalls, "automata.epsilon_closure_calls", kCounter) \
  X(kAutomataNfaStatesIn, "automata.nfa_states_in", kCounter)                 \
  X(kAutomataDfaStatesOut, "automata.dfa_states_out", kCounter)               \
  X(kAutomataPeakNfaStates, "automata.peak_nfa_states", kGauge)               \
  X(kAutomataPeakDfaStates, "automata.peak_dfa_states", kGauge)               \
  X(kAutomataPeakDfaTransitions, "automata.peak_dfa_transitions", kGauge)     \
  X(kAutomataPeakBlowupPct, "automata.peak_blowup_pct", kGauge)               \
  X(kAutomataMinimizeStatesIn, "automata.minimize_states_in", kCounter)       \
  X(kAutomataMinimizeStatesOut, "automata.minimize_states_out", kCounter)     \
  X(kAutomataClosureCacheHits, "automata.closure_cache_hits", kCounter)       \
  X(kAutomataClosureCacheMisses, "automata.closure_cache_misses", kCounter)   \
  X(kAutomataProductPairsExplored, "automata.product_pairs_explored", kCounter) \
  X(kAutomataHopcroftSplits, "automata.hopcroft_splits", kCounter)            \
  /* ata: 2ATA construction and membership games (Section 3.3) */             \
  X(kAtaBuild, "ata.build", kTimer)                                           \
  X(kAtaMembership, "ata.membership", kTimer)                                 \
  X(kAtaStates, "ata.states", kCounter)                                       \
  X(kAtaPeakStates, "ata.peak_states", kGauge)                                \
  X(kAtaGamePositions, "ata.game_positions", kCounter)                        \
  X(kAtaPeakGamePositions, "ata.peak_game_positions", kGauge)                 \
  /* sat engines (Table I rows) */                                            \
  X(kSatLoop, "sat.loop", kTimer)                                             \
  X(kSatDownward, "sat.downward", kTimer)                                     \
  X(kSatBounded, "sat.bounded", kTimer)                                       \
  X(kSatLoopItems, "sat.loop_items", kCounter)                                \
  X(kSatDownwardSummaries, "sat.downward_summaries", kCounter)                \
  X(kSatBoundedTrees, "sat.bounded_trees", kCounter)                          \
  X(kSatPeakExploredStates, "sat.peak_explored_states", kGauge)               \
  X(kSatWorklistPops, "sat.worklist_pops", kCounter)                          \
  X(kSatDepsInvalidated, "sat.deps_invalidated", kCounter)                    \
  X(kStatRelInterned, "sat.statrel_interned", kCounter)                       \
  X(kSatParallelRounds, "sat.parallel_rounds", kCounter)                      \
  /* translations */                                                          \
  X(kTranslateLoopNormalForm, "translate.loop_normal_form", kTimer)           \
  X(kTranslateIntersectProduct, "translate.intersect_product", kTimer)        \
  X(kTranslateStarfree, "translate.starfree", kTimer)                         \
  X(kTranslateForElim, "translate.for_elim", kTimer)                          \
  X(kTranslateLetElim, "translate.let_elim", kTimer)                          \
  X(kTranslateEdtdEncode, "translate.edtd_encode", kTimer)                    \
  /* solver facade */                                                         \
  X(kSolverSolve, "solver.solve", kTimer)                                     \
  X(kSolverVerifyWitness, "solver.verify_witness", kTimer)                    \
  /* fragment classifier + PTIME fast paths (dispatch front end) */           \
  X(kClassifyFastpathHits, "classify.fastpath_hits", kCounter)                \
  X(kClassifyFastpathFallbacks, "classify.fastpath_fallbacks", kCounter)      \
  X(kClassifyProfile, "classify.profile_time", kTimer)                        \
  /* ahead-of-time per-EDTD schema index (warm-schema substrate) */           \
  X(kSchemaIndexBuild, "schemaindex.build_time", kTimer)                      \
  X(kSchemaIndexHits, "schemaindex.hits", kCounter)                           \
  X(kSchemaIndexColdMisses, "schemaindex.cold_misses", kCounter)              \
  /* data-oriented memory layout (arena transients + inline-word Bits) */     \
  X(kArenaBytesReserved, "arena.bytes_reserved", kGauge)                      \
  X(kArenaResets, "arena.resets", kCounter)                                   \
  X(kBitsInlineHits, "bits.inline_hits", kCounter)                            \
  /* env gates: resolved configuration, recorded at latch time and patched   \
     into Session::telemetry() snapshots. `*_resolved` gauges are 1-based    \
     (0 = never resolved): arena 1=off 2=on; simd = 1 + leg index in         \
     {scalar, avx2, neon}. `*_unrecognized` counts latches that saw an       \
     env value the gate did not recognize. */                                 \
  X(kGateArenaResolved, "gate.arena_resolved", kGauge)                        \
  X(kGateArenaUnrecognized, "gate.arena_unrecognized", kCounter)              \
  X(kGateSimdResolved, "gate.simd_resolved", kGauge)                          \
  X(kGateSimdUnrecognized, "gate.simd_unrecognized", kCounter)                \
  /* streaming matcher (multi-query content routing, DESIGN.md §2.11) */     \
  X(kStreamCompile, "stream.compile", kTimer)                                 \
  X(kStreamQueriesRegistered, "stream.queries_registered", kCounter)          \
  X(kStreamQueriesDeduped, "stream.queries_deduped", kCounter)                \
  X(kStreamQueriesSubsumed, "stream.queries_subsumed", kCounter)              \
  X(kStreamQueriesUnsat, "stream.queries_unsat", kCounter)                    \
  X(kStreamEvents, "stream.events", kCounter)                                 \
  X(kStreamMatches, "stream.matches", kCounter)                               \
  X(kStreamDfaStates, "stream.dfa_states", kGauge)                            \
  X(kStreamDfaMisses, "stream.dfa_misses", kCounter)                          \
  /* session caches (unified view of SessionStats) */                         \
  X(kSessionContainmentHits, "session.containment.hits", kCounter)            \
  X(kSessionContainmentMisses, "session.containment.misses", kCounter)        \
  X(kSessionContainmentEvictions, "session.containment.evictions", kCounter)  \
  X(kSessionSatHits, "session.sat.hits", kCounter)                            \
  X(kSessionSatMisses, "session.sat.misses", kCounter)                        \
  X(kSessionSatEvictions, "session.sat.evictions", kCounter)                  \
  X(kSessionAutomataHits, "session.automata.hits", kCounter)                  \
  X(kSessionAutomataMisses, "session.automata.misses", kCounter)              \
  X(kSessionAutomataEvictions, "session.automata.evictions", kCounter)        \
  X(kSessionDfaHits, "session.dfa.hits", kCounter)                            \
  X(kSessionDfaMisses, "session.dfa.misses", kCounter)                        \
  X(kSessionDfaEvictions, "session.dfa.evictions", kCounter)                  \
  X(kSessionBatchQueries, "session.batch.queries", kCounter)                  \
  X(kSessionBatchDeduped, "session.batch.deduped", kCounter)                  \
  X(kSessionInvalidations, "session.invalidations", kCounter)

enum class Metric : int {
#define XPC_METRIC_ENUM(id, name, kind) id,
  XPC_METRIC_LIST(XPC_METRIC_ENUM)
#undef XPC_METRIC_ENUM
      kNumMetrics,
};

inline constexpr int kNumMetrics = static_cast<int>(Metric::kNumMetrics);

enum class MetricKind { kCounter, kGauge, kTimer };

struct MetricInfo {
  const char* name;
  MetricKind kind;
};

/// Static name/kind of a metric.
const MetricInfo& MetricInfoOf(Metric m);

/// Metric id for a dotted name; returns false if unknown.
bool MetricFromName(const std::string& name, Metric* out);

/// A plain-value copy of a `Stats` collector at one point in time. Attached
/// to every `SatResult` / `ContainmentResult`, so each answer carries the
/// full cost profile of producing it. Trivially copyable; cheap to cache.
struct StatsSnapshot {
  std::array<int64_t, kNumMetrics> values{};  ///< Counters/gauges: value. Timers: micros.
  std::array<int64_t, kNumMetrics> calls{};   ///< Timers: completed scopes. Others: 0.

  int64_t value(Metric m) const { return values[static_cast<int>(m)]; }
  int64_t timer_calls(Metric m) const { return calls[static_cast<int>(m)]; }

  /// True when nothing was recorded (e.g. stats compiled out or disabled).
  bool Empty() const;

  /// Peak determinization blowup |DFA| / |NFA| over all subset
  /// constructions seen (0 when none ran).
  double DeterminizationBlowup() const {
    return value(Metric::kAutomataPeakBlowupPct) / 100.0;
  }

  /// Folds `other` in: counters and timers add, gauges take the max.
  void MergeFrom(const StatsSnapshot& other);

  /// Compact JSON object: {"counters":{...},"gauges":{...},
  /// "timers":{name:{"calls":c,"micros":us},...},"derived":{...}}.
  /// Every registered metric is present, so consumers can rely on keys.
  std::string ToJson(int indent = 0) const;

  /// Human-readable multi-line dump of the non-zero metrics.
  std::string ToString() const;
};

/// A thread-safe telemetry collector: a fixed array of relaxed atomics, one
/// slot per registered metric. Concurrent `Add`/`GaugeMax`/`AddTimer` calls
/// from any number of threads are safe and nearly free (one relaxed RMW).
///
/// Engine code does not hold a `Stats*`; it reports through the free
/// `StatsAdd` / `StatsGaugeMax` / `StatsTimer` hooks below, which route to
/// the calling thread's current sink (`Stats::Current()`, installed with
/// `ScopedStatsSink`). With no sink installed the hooks are no-ops, so the
/// instrumentation never forces a collector on anyone.
class Stats {
 public:
  Stats() { Reset(); }

  void Add(Metric m, int64_t delta = 1) {
    values_[static_cast<int>(m)].fetch_add(delta, std::memory_order_relaxed);
  }

  void GaugeMax(Metric m, int64_t value) {
    std::atomic<int64_t>& slot = values_[static_cast<int>(m)];
    int64_t seen = slot.load(std::memory_order_relaxed);
    while (value > seen &&
           !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  void AddTimer(Metric m, int64_t micros) {
    values_[static_cast<int>(m)].fetch_add(micros, std::memory_order_relaxed);
    calls_[static_cast<int>(m)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Folds a snapshot in (counters/timers add, gauges max).
  void Merge(const StatsSnapshot& s);

  StatsSnapshot Snapshot() const;
  void Reset();

  /// The calling thread's current sink (nullptr when none installed).
  static Stats* Current();

  /// Runtime kill switch, on by default. When off, the hooks no-op even
  /// with a sink installed — used by the differential tests to check that
  /// telemetry never changes a verdict.
  static bool Enabled();
  static void SetEnabled(bool enabled);

 private:
  friend class ScopedStatsSink;
  static void SetCurrent(Stats* stats);

  std::array<std::atomic<int64_t>, kNumMetrics> values_;
  std::array<std::atomic<int64_t>, kNumMetrics> calls_;
};

/// RAII: installs a sink as the calling thread's `Stats::Current()`. On
/// destruction the previous sink is restored and — so that an outer
/// collector still observes everything recorded under a nested one — the
/// nested deltas are folded into it.
class ScopedStatsSink {
 public:
  explicit ScopedStatsSink(Stats* stats) : installed_(stats), previous_(Stats::Current()) {
    Stats::SetCurrent(stats);
  }
  ~ScopedStatsSink();

  ScopedStatsSink(const ScopedStatsSink&) = delete;
  ScopedStatsSink& operator=(const ScopedStatsSink&) = delete;

 private:
  Stats* installed_;
  Stats* previous_;
};

// --- Instrumentation hooks (the only API engine code uses) ---------------

inline void StatsAdd(Metric m, int64_t delta = 1) {
#if XPC_STATS_ENABLED
  if (Stats* s = Stats::Current(); s != nullptr && Stats::Enabled()) s->Add(m, delta);
#else
  (void)m;
  (void)delta;
#endif
}

inline void StatsGaugeMax(Metric m, int64_t value) {
#if XPC_STATS_ENABLED
  if (Stats* s = Stats::Current(); s != nullptr && Stats::Enabled()) s->GaugeMax(m, value);
#else
  (void)m;
  (void)value;
#endif
}

/// Scoped wall-clock timer: records elapsed microseconds (and one call)
/// against `m` when the scope exits. Reads the clock only when a sink is
/// installed and stats are enabled.
class StatsTimer {
 public:
  explicit StatsTimer(Metric m) : metric_(m) {
#if XPC_STATS_ENABLED
    sink_ = Stats::Current();
    if (sink_ != nullptr && Stats::Enabled()) {
      start_ = std::chrono::steady_clock::now();
    } else {
      sink_ = nullptr;
    }
#endif
  }

  ~StatsTimer() {
#if XPC_STATS_ENABLED
    if (sink_ != nullptr) {
      int64_t micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
      sink_->AddTimer(metric_, micros);
    }
#endif
  }

  StatsTimer(const StatsTimer&) = delete;
  StatsTimer& operator=(const StatsTimer&) = delete;

 private:
  Metric metric_;
#if XPC_STATS_ENABLED
  Stats* sink_ = nullptr;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace xpc

#endif  // XPC_COMMON_STATS_H_
