#ifndef XPC_COMMON_SIMD_H_
#define XPC_COMMON_SIMD_H_

#include <atomic>
#include <cstdint>

namespace xpc {
namespace simd {

/// Runtime-dispatched word-sweep kernels (DESIGN.md §2.10).
///
/// Every hot loop in the system bottoms out in a handful of sweeps over
/// contiguous `uint64_t` word blocks — the `Bits` binary kernels, the
/// `StateRel` row OR-passes, multi-word NFA stepping. PR 8 made those
/// blocks contiguous precisely so they could be vectorized; this layer adds
/// the explicit AVX2 (x86-64) / NEON (aarch64) implementations behind a
/// one-time dispatch latch, with the portable scalar loops kept as the
/// always-built reference leg.
///
/// Contract: every leg is *bit-identical* to the scalar reference — same
/// resulting words, same boolean flags (changed / intersected / any-left),
/// same counts. Only the speed differs. The randomized equivalence suite
/// (`tests/simd_kernel_test.cc`, `ctest -L simd`) holds every reachable leg
/// to this.
///
/// Selection: latched on first use. The `XPC_SIMD` environment variable
/// (`scalar` | `avx2` | `neon`) overrides auto-detection for testing; a
/// requested leg the host cannot run falls back to scalar. Tests and
/// benches re-latch programmatically with `Select()`.
///
/// All kernels take unaligned pointers (the vector legs use unaligned
/// loads, which run at full speed on 64-byte-aligned data — and the arena
/// and `Bits` heap blocks are 64-byte aligned, see `Arena::kWordBlockAlign`).
/// `n` is the word count; `w`/`dst` may not alias `ow`/`src` except as the
/// in-place destination each signature documents.
struct Kernels {
  const char* name;  // "scalar", "avx2" or "neon".

  /// w |= ow; returns true if any bit of `w` was newly set.
  bool (*union_with)(uint64_t* w, const uint64_t* ow, uint32_t n);
  /// w |= ow; returns true if w and ow overlapped *before* the union.
  bool (*union_with_intersects)(uint64_t* w, const uint64_t* ow, uint32_t n);
  /// w &= ow.
  void (*intersect_with)(uint64_t* w, const uint64_t* ow, uint32_t n);
  /// w &= ~ow.
  void (*subtract_with)(uint64_t* w, const uint64_t* ow, uint32_t n);
  /// w &= ~ow; returns true if anything survives.
  bool (*subtract_with_any)(uint64_t* w, const uint64_t* ow, uint32_t n);
  /// True if w and ow share any set bit.
  bool (*intersects)(const uint64_t* w, const uint64_t* ow, uint32_t n);
  /// True if w ⊆ ow.
  bool (*subset_of)(const uint64_t* w, const uint64_t* ow, uint32_t n);
  /// True if the word blocks are equal.
  bool (*equals)(const uint64_t* w, const uint64_t* ow, uint32_t n);
  /// True if no bit is set.
  bool (*none)(const uint64_t* w, uint32_t n);
  /// Number of set bits (hardware POPCNT on the vector legs).
  int (*count)(const uint64_t* w, uint32_t n);
  /// dst |= src, no flag — the row-at-a-time OR pass of `StateRel::Compose`
  /// and the multi-word NFA step masks.
  void (*or_accum)(uint64_t* dst, const uint64_t* src, uint32_t n);
};

/// The portable reference leg. Always built, on every architecture.
const Kernels& Scalar();

namespace internal {
extern std::atomic<const Kernels*> g_active;
const Kernels& ActivateSlow();
}  // namespace internal

/// The latched kernel set. First call detects the CPU (honoring
/// `XPC_SIMD`), subsequent calls are one relaxed load — cheap enough for
/// the `Bits` hot path.
inline const Kernels& Active() {
  const Kernels* k = internal::g_active.load(std::memory_order_relaxed);
  if (__builtin_expect(k == nullptr, 0)) return internal::ActivateSlow();
  return *k;
}

/// Re-latches the active kernel set by name ("scalar", "avx2", "neon").
/// Returns false (leaving the latch unchanged) when the named leg is not
/// runnable on this host. Test/bench hook; not thread-safe against
/// concurrent hot-loop traffic.
bool Select(const char* name);

/// True when the named leg can run on this host.
bool Available(const char* name);

/// Name of the currently latched leg (latching it if needed).
inline const char* ActiveName() { return Active().name; }

/// Name of the leg auto-detection would pick on this host, ignoring the
/// `XPC_SIMD` override — the "detected ISA" recorded in BENCH.json.
const char* DetectedName();

/// How the `XPC_SIMD` latch last resolved from the environment (valid once
/// `resolved` is non-null). A typo like `XPC_SIMD=avx512` used to fall to
/// scalar silently; now it warns once on stderr, bumps
/// `gate.simd_unrecognized`, and is distinguishable here from a *known* leg
/// the host merely cannot run (`recognized && !runnable`).
struct SimdGateStatus {
  bool from_env = false;     ///< XPC_SIMD was set in the environment.
  bool recognized = true;    ///< Unset, or one of "scalar"/"avx2"/"neon".
  bool runnable = true;      ///< The requested leg can run on this host.
  const char* resolved = nullptr;  ///< Name of the leg actually latched.
};

/// Snapshot of the latest env-driven latch (forces one if none ran). A later
/// programmatic `Select()` changes `Active()` but not this record.
SimdGateStatus SimdGateState();

/// 1-based index of a leg name in {scalar, avx2, neon} — the value the
/// `gate.simd_resolved` gauge records; 0 for an unknown name.
int LegIndex(const char* name);

}  // namespace simd
}  // namespace xpc

#endif  // XPC_COMMON_SIMD_H_
