#include "xpc/common/stats.h"

#include <sstream>
#include <unordered_map>

namespace xpc {

namespace {

constexpr MetricInfo kMetricInfos[kNumMetrics] = {
#define XPC_METRIC_INFO(id, name, kind) {name, MetricKind::kind},
    XPC_METRIC_LIST(XPC_METRIC_INFO)
#undef XPC_METRIC_INFO
};

thread_local Stats* tls_current = nullptr;
std::atomic<bool> g_enabled{true};

}  // namespace

const MetricInfo& MetricInfoOf(Metric m) { return kMetricInfos[static_cast<int>(m)]; }

bool MetricFromName(const std::string& name, Metric* out) {
  static const std::unordered_map<std::string, Metric>* index = [] {
    auto* map = new std::unordered_map<std::string, Metric>();
    for (int i = 0; i < kNumMetrics; ++i) {
      map->emplace(kMetricInfos[i].name, static_cast<Metric>(i));
    }
    return map;
  }();
  auto it = index->find(name);
  if (it == index->end()) return false;
  *out = it->second;
  return true;
}

bool StatsSnapshot::Empty() const {
  for (int i = 0; i < kNumMetrics; ++i) {
    if (values[i] != 0 || calls[i] != 0) return false;
  }
  return true;
}

void StatsSnapshot::MergeFrom(const StatsSnapshot& other) {
  for (int i = 0; i < kNumMetrics; ++i) {
    if (kMetricInfos[i].kind == MetricKind::kGauge) {
      if (other.values[i] > values[i]) values[i] = other.values[i];
    } else {
      values[i] += other.values[i];
      calls[i] += other.calls[i];
    }
  }
}

std::string StatsSnapshot::ToJson(int indent) const {
  // Hand-rolled writer: names are static identifiers (no escaping needed)
  // and values are integers/doubles, so a dependency-free emitter is safe.
  std::ostringstream out;
  std::string pad(indent, ' ');
  std::string pad2(indent + 2, ' ');
  std::string pad4(indent + 4, ' ');
  const char* nl = indent >= 0 ? "\n" : "";

  auto section = [&](const char* title, MetricKind kind, bool timers) {
    out << pad2 << '"' << title << "\": {" << nl;
    bool first = true;
    for (int i = 0; i < kNumMetrics; ++i) {
      if (kMetricInfos[i].kind != kind) continue;
      if (!first) out << "," << nl;
      first = false;
      out << pad4 << '"' << kMetricInfos[i].name << "\": ";
      if (timers) {
        out << "{\"calls\": " << calls[i] << ", \"micros\": " << values[i] << "}";
      } else {
        out << values[i];
      }
    }
    out << nl << pad2 << "}";
  };

  out << "{" << nl;  // No pad: the caller positions the opening brace.
  section("counters", MetricKind::kCounter, false);
  out << "," << nl;
  section("gauges", MetricKind::kGauge, false);
  out << "," << nl;
  section("timers", MetricKind::kTimer, true);
  out << "," << nl;
  out << pad2 << "\"derived\": {\"determinization_blowup\": " << DeterminizationBlowup()
      << "}" << nl;
  out << pad << "}";
  return out.str();
}

std::string StatsSnapshot::ToString() const {
  std::ostringstream out;
  out << "stats:\n";
  for (int i = 0; i < kNumMetrics; ++i) {
    if (values[i] == 0 && calls[i] == 0) continue;
    out << "  " << kMetricInfos[i].name << ": ";
    if (kMetricInfos[i].kind == MetricKind::kTimer) {
      out << calls[i] << " calls, " << values[i] / 1000.0 << " ms";
    } else {
      out << values[i];
    }
    out << "\n";
  }
  return out.str();
}

void Stats::Merge(const StatsSnapshot& s) {
  for (int i = 0; i < kNumMetrics; ++i) {
    if (kMetricInfos[i].kind == MetricKind::kGauge) {
      GaugeMax(static_cast<Metric>(i), s.values[i]);
    } else {
      if (s.values[i] != 0) values_[i].fetch_add(s.values[i], std::memory_order_relaxed);
      if (s.calls[i] != 0) calls_[i].fetch_add(s.calls[i], std::memory_order_relaxed);
    }
  }
}

StatsSnapshot Stats::Snapshot() const {
  StatsSnapshot s;
  for (int i = 0; i < kNumMetrics; ++i) {
    s.values[i] = values_[i].load(std::memory_order_relaxed);
    s.calls[i] = calls_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Stats::Reset() {
  for (int i = 0; i < kNumMetrics; ++i) {
    values_[i].store(0, std::memory_order_relaxed);
    calls_[i].store(0, std::memory_order_relaxed);
  }
}

Stats* Stats::Current() { return tls_current; }
void Stats::SetCurrent(Stats* stats) { tls_current = stats; }

bool Stats::Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void Stats::SetEnabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

ScopedStatsSink::~ScopedStatsSink() {
  Stats::SetCurrent(previous_);
  if (previous_ != nullptr && installed_ != nullptr && previous_ != installed_) {
    previous_->Merge(installed_->Snapshot());
  }
}

}  // namespace xpc
