#include "xpc/common/simd.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "xpc/common/stats.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define XPC_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define XPC_SIMD_HAVE_AVX2 0
#endif

#if defined(__aarch64__)
#define XPC_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#else
#define XPC_SIMD_HAVE_NEON 0
#endif

namespace xpc {
namespace simd {

// --- Scalar reference leg ------------------------------------------------
//
// These are the exact PR 8 portable loops, hoisted out of bits.h. Every
// vector leg below must be bit-identical to them (the `ctest -L simd`
// equivalence suite enforces it).
//
// The streaming loops are pinned to genuine one-word-at-a-time codegen:
// without the pin, -O3 autovectorizes them (GCC 12 emits SSE2 here), so
// "XPC_SIMD=scalar" would silently mean "whatever this compiler's
// autovectorizer produced" — a reference leg whose code shape drifts with
// compiler version is useless as a baseline for the per-ISA equivalence
// suite and the bench_bits_kernels speedup legs. The pin only affects the
// multi-word dispatch path; the inline ≤2-word fast paths in bits.h never
// reach these functions.

#if defined(__clang__)
#define XPC_SCALAR_REF_FN
#define XPC_SCALAR_REF_LOOP _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define XPC_SCALAR_REF_FN __attribute__((optimize("no-tree-vectorize")))
#define XPC_SCALAR_REF_LOOP
#else
#define XPC_SCALAR_REF_FN
#define XPC_SCALAR_REF_LOOP
#endif

namespace {

XPC_SCALAR_REF_FN bool ScalarUnionWith(uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint64_t diff = 0;
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t merged = w[i] | ow[i];
    diff |= merged ^ w[i];
    w[i] = merged;
  }
  return diff != 0;
}

XPC_SCALAR_REF_FN bool ScalarUnionWithIntersects(uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint64_t hit = 0;
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) {
    hit |= w[i] & ow[i];
    w[i] |= ow[i];
  }
  return hit != 0;
}

XPC_SCALAR_REF_FN void ScalarIntersectWith(uint64_t* w, const uint64_t* ow, uint32_t n) {
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) w[i] &= ow[i];
}

XPC_SCALAR_REF_FN void ScalarSubtractWith(uint64_t* w, const uint64_t* ow, uint32_t n) {
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) w[i] &= ~ow[i];
}

XPC_SCALAR_REF_FN bool ScalarSubtractWithAny(uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint64_t left = 0;
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) {
    w[i] &= ~ow[i];
    left |= w[i];
  }
  return left != 0;
}

bool ScalarIntersects(const uint64_t* w, const uint64_t* ow, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    if (w[i] & ow[i]) return true;
  }
  return false;
}

bool ScalarSubsetOf(const uint64_t* w, const uint64_t* ow, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    if (w[i] & ~ow[i]) return false;
  }
  return true;
}

bool ScalarEquals(const uint64_t* w, const uint64_t* ow, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    if (w[i] != ow[i]) return false;
  }
  return true;
}

XPC_SCALAR_REF_FN bool ScalarNone(const uint64_t* w, uint32_t n) {
  uint64_t any = 0;
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) any |= w[i];
  return any == 0;
}

XPC_SCALAR_REF_FN int ScalarCount(const uint64_t* w, uint32_t n) {
  int c = 0;
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) c += std::popcount(w[i]);
  return c;
}

XPC_SCALAR_REF_FN void ScalarOrAccum(uint64_t* dst, const uint64_t* src, uint32_t n) {
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) dst[i] |= src[i];
}

constexpr Kernels kScalar = {
    "scalar",          ScalarUnionWith,  ScalarUnionWithIntersects,
    ScalarIntersectWith, ScalarSubtractWith, ScalarSubtractWithAny,
    ScalarIntersects,  ScalarSubsetOf,   ScalarEquals,
    ScalarNone,        ScalarCount,      ScalarOrAccum,
};

}  // namespace

const Kernels& Scalar() { return kScalar; }

// --- AVX2 leg (x86-64) ---------------------------------------------------
//
// Compiled via the `target("avx2")` function attribute, so the translation
// unit itself stays buildable with the baseline ISA and the vector code is
// only ever *executed* after `__builtin_cpu_supports("avx2")` says yes.
// Unaligned loads throughout: the operands are 64-byte aligned in the
// steady state (arena word blocks), but StateRel row pointers are interior
// offsets and the XPC_ARENA=0 leg predates the alignment guarantee —
// `loadu` on aligned data costs nothing on every AVX2-era core.

#if XPC_SIMD_HAVE_AVX2

namespace {

// The streaming kernels run two 256-bit vectors (8 words) per iteration
// with independent flag accumulators: one vector per iteration leaves the
// AVX2 leg barely ahead of the compiler's SSE autovectorization of the
// scalar reference, and the second chain lets the loads/ALU ops of both
// halves retire in parallel. Flags are folded once at the end — never a
// branch inside the sweep. The 1-3 word remainder is a masked
// vpmaskmovq load/op/store rather than a scalar loop: dispatched
// operands start at 3 words (bits.h keeps 1-2 words inline), so for the
// common 3-7 word rows a scalar tail would be most of the call. Masked
// lanes read as zero, which is the identity for every flag accumulator
// (or/and/andnot of zero contributes nothing), so the tail folds into
// the same flag vectors.

// Entry r-1 enables the low r 64-bit lanes of a maskload/maskstore pair.
alignas(32) constexpr int64_t kAvx2TailMask[3][4] = {
    {-1, 0, 0, 0},
    {-1, -1, 0, 0},
    {-1, -1, -1, 0},
};

__attribute__((target("avx2"))) inline __m256i Avx2TailMaskFor(uint32_t rem) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(kAvx2TailMask[rem - 1]));
}

__attribute__((target("avx2"))) bool Avx2UnionWith(uint64_t* w, const uint64_t* ow,
                                                   uint32_t n) {
  __m256i diff0 = _mm256_setzero_si256();
  __m256i diff1 = _mm256_setzero_si256();
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i + 4));
    __m256i m0 = _mm256_or_si256(a0, b0);
    __m256i m1 = _mm256_or_si256(a1, b1);
    diff0 = _mm256_or_si256(diff0, _mm256_xor_si256(m0, a0));
    diff1 = _mm256_or_si256(diff1, _mm256_xor_si256(m1, a1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), m0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i + 4), m1);
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    __m256i m = _mm256_or_si256(a, b);
    diff0 = _mm256_or_si256(diff0, _mm256_xor_si256(m, a));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), m);
  }
  if (i < n) {
    const __m256i mask = Avx2TailMaskFor(n - i);
    __m256i a = _mm256_maskload_epi64(reinterpret_cast<const long long*>(w + i), mask);
    __m256i b = _mm256_maskload_epi64(reinterpret_cast<const long long*>(ow + i), mask);
    __m256i m = _mm256_or_si256(a, b);
    diff0 = _mm256_or_si256(diff0, _mm256_xor_si256(m, a));
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(w + i), mask, m);
  }
  __m256i diff = _mm256_or_si256(diff0, diff1);
  return !_mm256_testz_si256(diff, diff);
}

__attribute__((target("avx2"))) bool Avx2UnionWithIntersects(uint64_t* w,
                                                             const uint64_t* ow,
                                                             uint32_t n) {
  __m256i hit0 = _mm256_setzero_si256();
  __m256i hit1 = _mm256_setzero_si256();
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i + 4));
    hit0 = _mm256_or_si256(hit0, _mm256_and_si256(a0, b0));
    hit1 = _mm256_or_si256(hit1, _mm256_and_si256(a1, b1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i + 4), _mm256_or_si256(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    hit0 = _mm256_or_si256(hit0, _mm256_and_si256(a, b));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), _mm256_or_si256(a, b));
  }
  if (i < n) {
    const __m256i mask = Avx2TailMaskFor(n - i);
    __m256i a = _mm256_maskload_epi64(reinterpret_cast<const long long*>(w + i), mask);
    __m256i b = _mm256_maskload_epi64(reinterpret_cast<const long long*>(ow + i), mask);
    hit0 = _mm256_or_si256(hit0, _mm256_and_si256(a, b));
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(w + i), mask,
                           _mm256_or_si256(a, b));
  }
  __m256i hit = _mm256_or_si256(hit0, hit1);
  return !_mm256_testz_si256(hit, hit);
}

__attribute__((target("avx2"))) void Avx2IntersectWith(uint64_t* w, const uint64_t* ow,
                                                       uint32_t n) {
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), _mm256_and_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i + 4), _mm256_and_si256(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), _mm256_and_si256(a, b));
  }
  if (i < n) {
    const __m256i mask = Avx2TailMaskFor(n - i);
    __m256i a = _mm256_maskload_epi64(reinterpret_cast<const long long*>(w + i), mask);
    __m256i b = _mm256_maskload_epi64(reinterpret_cast<const long long*>(ow + i), mask);
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(w + i), mask,
                           _mm256_and_si256(a, b));
  }
}

__attribute__((target("avx2"))) void Avx2SubtractWith(uint64_t* w, const uint64_t* ow,
                                                      uint32_t n) {
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i + 4));
    // andnot(b, a) = ~b & a.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), _mm256_andnot_si256(b0, a0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i + 4),
                        _mm256_andnot_si256(b1, a1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), _mm256_andnot_si256(b, a));
  }
  if (i < n) {
    const __m256i mask = Avx2TailMaskFor(n - i);
    __m256i a = _mm256_maskload_epi64(reinterpret_cast<const long long*>(w + i), mask);
    __m256i b = _mm256_maskload_epi64(reinterpret_cast<const long long*>(ow + i), mask);
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(w + i), mask,
                           _mm256_andnot_si256(b, a));
  }
}

__attribute__((target("avx2"))) bool Avx2SubtractWithAny(uint64_t* w, const uint64_t* ow,
                                                         uint32_t n) {
  __m256i left0 = _mm256_setzero_si256();
  __m256i left1 = _mm256_setzero_si256();
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i + 4));
    __m256i r0 = _mm256_andnot_si256(b0, a0);
    __m256i r1 = _mm256_andnot_si256(b1, a1);
    left0 = _mm256_or_si256(left0, r0);
    left1 = _mm256_or_si256(left1, r1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), r0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i + 4), r1);
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    __m256i r = _mm256_andnot_si256(b, a);
    left0 = _mm256_or_si256(left0, r);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + i), r);
  }
  if (i < n) {
    const __m256i mask = Avx2TailMaskFor(n - i);
    __m256i a = _mm256_maskload_epi64(reinterpret_cast<const long long*>(w + i), mask);
    __m256i b = _mm256_maskload_epi64(reinterpret_cast<const long long*>(ow + i), mask);
    __m256i r = _mm256_andnot_si256(b, a);
    left0 = _mm256_or_si256(left0, r);
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(w + i), mask, r);
  }
  __m256i left = _mm256_or_si256(left0, left1);
  return !_mm256_testz_si256(left, left);
}

__attribute__((target("avx2"))) bool Avx2Intersects(const uint64_t* w, const uint64_t* ow,
                                                    uint32_t n) {
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    // testz(a, b) == 0 ⇔ (a & b) has a set bit.
    if (!_mm256_testz_si256(a, b)) return true;
  }
  for (; i < n; ++i) {
    if (w[i] & ow[i]) return true;
  }
  return false;
}

__attribute__((target("avx2"))) bool Avx2SubsetOf(const uint64_t* w, const uint64_t* ow,
                                                  uint32_t n) {
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    // testc(b, a) != 0 ⇔ (~b & a) == 0 ⇔ a ⊆ b on this block.
    if (!_mm256_testc_si256(b, a)) return false;
  }
  for (; i < n; ++i) {
    if (w[i] & ~ow[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool Avx2Equals(const uint64_t* w, const uint64_t* ow,
                                                uint32_t n) {
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ow + i));
    if (!_mm256_testz_si256(_mm256_xor_si256(a, b), _mm256_xor_si256(a, b))) return false;
  }
  for (; i < n; ++i) {
    if (w[i] != ow[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool Avx2None(const uint64_t* w, uint32_t n) {
  __m256i any = _mm256_setzero_si256();
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    any = _mm256_or_si256(any, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i)));
  }
  uint64_t tail = 0;
  for (; i < n; ++i) tail |= w[i];
  return tail == 0 && _mm256_testz_si256(any, any);
}

// Hardware POPCNT (implied by the avx2 target) at one word per cycle; the
// sweep is memory-bound well before the popcounts are.
__attribute__((target("avx2"))) int Avx2Count(const uint64_t* w, uint32_t n) {
  int c = 0;
  XPC_SCALAR_REF_LOOP
  for (uint32_t i = 0; i < n; ++i) c += std::popcount(w[i]);
  return c;
}

// `or_accum` is the StateRel row-sweep workhorse, called once per set bit
// of a relation row with n = words-per-row — often 3-7 for mid-size
// relations, so the masked tail matters most here.
__attribute__((target("avx2"))) void Avx2OrAccum(uint64_t* dst, const uint64_t* src,
                                                 uint32_t n) {
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_or_si256(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_or_si256(a, b));
  }
  if (i < n) {
    const __m256i mask = Avx2TailMaskFor(n - i);
    __m256i a = _mm256_maskload_epi64(reinterpret_cast<const long long*>(dst + i), mask);
    __m256i b = _mm256_maskload_epi64(reinterpret_cast<const long long*>(src + i), mask);
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(dst + i), mask,
                           _mm256_or_si256(a, b));
  }
}

constexpr Kernels kAvx2 = {
    "avx2",            Avx2UnionWith,  Avx2UnionWithIntersects,
    Avx2IntersectWith, Avx2SubtractWith, Avx2SubtractWithAny,
    Avx2Intersects,    Avx2SubsetOf,   Avx2Equals,
    Avx2None,          Avx2Count,      Avx2OrAccum,
};

}  // namespace

#endif  // XPC_SIMD_HAVE_AVX2

// --- NEON leg (aarch64) --------------------------------------------------
//
// AdvSIMD is architectural on aarch64, so no runtime probe is needed; the
// 128-bit registers still halve the word-sweep instruction count and give
// the hardware CNT path for popcounts.

#if XPC_SIMD_HAVE_NEON

namespace {

inline bool NeonAnySet(uint64x2_t v) {
  return (vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0;
}

bool NeonUnionWith(uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint64x2_t diff = vdupq_n_u64(0);
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t a = vld1q_u64(w + i);
    uint64x2_t b = vld1q_u64(ow + i);
    uint64x2_t m = vorrq_u64(a, b);
    diff = vorrq_u64(diff, veorq_u64(m, a));
    vst1q_u64(w + i, m);
  }
  uint64_t tail = 0;
  for (; i < n; ++i) {
    uint64_t merged = w[i] | ow[i];
    tail |= merged ^ w[i];
    w[i] = merged;
  }
  return tail != 0 || NeonAnySet(diff);
}

bool NeonUnionWithIntersects(uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint64x2_t hit = vdupq_n_u64(0);
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t a = vld1q_u64(w + i);
    uint64x2_t b = vld1q_u64(ow + i);
    hit = vorrq_u64(hit, vandq_u64(a, b));
    vst1q_u64(w + i, vorrq_u64(a, b));
  }
  uint64_t tail = 0;
  for (; i < n; ++i) {
    tail |= w[i] & ow[i];
    w[i] |= ow[i];
  }
  return tail != 0 || NeonAnySet(hit);
}

void NeonIntersectWith(uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_u64(w + i, vandq_u64(vld1q_u64(w + i), vld1q_u64(ow + i)));
  for (; i < n; ++i) w[i] &= ow[i];
}

void NeonSubtractWith(uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // bic(a, b) = a & ~b.
    vst1q_u64(w + i, vbicq_u64(vld1q_u64(w + i), vld1q_u64(ow + i)));
  }
  for (; i < n; ++i) w[i] &= ~ow[i];
}

bool NeonSubtractWithAny(uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint64x2_t left = vdupq_n_u64(0);
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t r = vbicq_u64(vld1q_u64(w + i), vld1q_u64(ow + i));
    left = vorrq_u64(left, r);
    vst1q_u64(w + i, r);
  }
  uint64_t tail = 0;
  for (; i < n; ++i) {
    w[i] &= ~ow[i];
    tail |= w[i];
  }
  return tail != 0 || NeonAnySet(left);
}

bool NeonIntersects(const uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (NeonAnySet(vandq_u64(vld1q_u64(w + i), vld1q_u64(ow + i)))) return true;
  }
  for (; i < n; ++i) {
    if (w[i] & ow[i]) return true;
  }
  return false;
}

bool NeonSubsetOf(const uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (NeonAnySet(vbicq_u64(vld1q_u64(w + i), vld1q_u64(ow + i)))) return false;
  }
  for (; i < n; ++i) {
    if (w[i] & ~ow[i]) return false;
  }
  return true;
}

bool NeonEquals(const uint64_t* w, const uint64_t* ow, uint32_t n) {
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (NeonAnySet(veorq_u64(vld1q_u64(w + i), vld1q_u64(ow + i)))) return false;
  }
  for (; i < n; ++i) {
    if (w[i] != ow[i]) return false;
  }
  return true;
}

bool NeonNone(const uint64_t* w, uint32_t n) {
  uint64x2_t any = vdupq_n_u64(0);
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) any = vorrq_u64(any, vld1q_u64(w + i));
  uint64_t tail = 0;
  for (; i < n; ++i) tail |= w[i];
  return tail == 0 && !NeonAnySet(any);
}

int NeonCount(const uint64_t* w, uint32_t n) {
  // vcntq counts per byte; pairwise-add up to 64-bit lanes.
  uint64x2_t acc = vdupq_n_u64(0);
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(w + i)));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes))));
  }
  int c = static_cast<int>(vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) c += std::popcount(w[i]);
  return c;
}

void NeonOrAccum(uint64_t* dst, const uint64_t* src, uint32_t n) {
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

constexpr Kernels kNeon = {
    "neon",            NeonUnionWith,  NeonUnionWithIntersects,
    NeonIntersectWith, NeonSubtractWith, NeonSubtractWithAny,
    NeonIntersects,    NeonSubsetOf,   NeonEquals,
    NeonNone,          NeonCount,      NeonOrAccum,
};

}  // namespace

#endif  // XPC_SIMD_HAVE_NEON

// --- Detection and the dispatch latch ------------------------------------

namespace {

const Kernels* FindLeg(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return &kScalar;
#if XPC_SIMD_HAVE_AVX2
  if (std::strcmp(name, "avx2") == 0 && __builtin_cpu_supports("avx2")) return &kAvx2;
#endif
#if XPC_SIMD_HAVE_NEON
  if (std::strcmp(name, "neon") == 0) return &kNeon;
#endif
  return nullptr;
}

const Kernels* Detect() {
#if XPC_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return &kAvx2;
#endif
#if XPC_SIMD_HAVE_NEON
  return &kNeon;
#endif
  return &kScalar;
}

}  // namespace

namespace {

// Latest env-driven latch outcome, for SimdGateState() and the one-time
// warning. Guarded: latching is a cold path.
std::mutex g_simd_gate_mu;
SimdGateStatus g_simd_gate;
bool g_simd_gate_warned = false;

// Resolves XPC_SIMD to a kernel set and records the outcome. Fallback
// semantics are unchanged (unknown or unrunnable name → scalar), but the
// two failure modes now signal distinctly instead of latching silently.
const Kernels* ResolveSimdGate() {
  SimdGateStatus status;
  const Kernels* pick = nullptr;
  const char* env = std::getenv("XPC_SIMD");
  if (env != nullptr) {
    status.from_env = true;
    status.recognized = LegIndex(env) != 0;
    pick = FindLeg(env);
    status.runnable = pick != nullptr;
    if (pick == nullptr) pick = &kScalar;
  } else {
    pick = Detect();
  }
  status.resolved = pick->name;
  {
    std::lock_guard<std::mutex> lock(g_simd_gate_mu);
    g_simd_gate = status;
    if (status.from_env && !status.runnable && !g_simd_gate_warned) {
      g_simd_gate_warned = true;
      if (!status.recognized) {
        std::fprintf(stderr,
                     "xpc: warning: unrecognized XPC_SIMD value \"%s\" "
                     "(expected scalar, avx2 or neon); falling back to "
                     "scalar kernels\n",
                     env);
      } else {
        std::fprintf(stderr,
                     "xpc: warning: XPC_SIMD=%s names a leg this host "
                     "cannot run; falling back to scalar kernels\n",
                     env);
      }
    }
  }
  StatsGaugeMax(Metric::kGateSimdResolved, LegIndex(pick->name));
  if (status.from_env && !status.recognized) StatsAdd(Metric::kGateSimdUnrecognized);
  return pick;
}

}  // namespace

namespace internal {

std::atomic<const Kernels*> g_active{nullptr};

const Kernels& ActivateSlow() {
  const Kernels* pick = ResolveSimdGate();
  g_active.store(pick, std::memory_order_relaxed);
  return *pick;
}

}  // namespace internal

int LegIndex(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return 1;
  if (std::strcmp(name, "avx2") == 0) return 2;
  if (std::strcmp(name, "neon") == 0) return 3;
  return 0;
}

SimdGateStatus SimdGateState() {
  {
    std::lock_guard<std::mutex> lock(g_simd_gate_mu);
    if (g_simd_gate.resolved != nullptr) return g_simd_gate;
  }
  ResolveSimdGate();  // No env resolve ran yet; record one (latch untouched).
  std::lock_guard<std::mutex> lock(g_simd_gate_mu);
  return g_simd_gate;
}

bool Select(const char* name) {
  const Kernels* leg = FindLeg(name);
  if (leg == nullptr) return false;
  internal::g_active.store(leg, std::memory_order_relaxed);
  return true;
}

bool Available(const char* name) { return FindLeg(name) != nullptr; }

const char* DetectedName() { return Detect()->name; }

}  // namespace simd
}  // namespace xpc
