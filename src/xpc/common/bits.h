#ifndef XPC_COMMON_BITS_H_
#define XPC_COMMON_BITS_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#include "xpc/common/arena.h"
#include "xpc/common/simd.h"
#include "xpc/common/stats.h"

namespace xpc {

namespace internal {
/// Thread-local tally of Bits allocations served from the inline buffer,
/// flushed to the `bits.inline_hits` metric by `BitsStatsScope` (a per-Bits
/// `StatsAdd` would put a sink lookup in the hottest constructor).
#if XPC_STATS_ENABLED
inline thread_local uint64_t tls_bits_inline_hits = 0;
#endif
}  // namespace internal

/// A fixed-size dynamic bitset with the set operations needed by the
/// relation algebra and the automata summaries. Supports hashing and
/// ordering so values can key hash maps and sets.
///
/// Storage (DESIGN.md §2.9): with the data-oriented layout on
/// (`ArenaEnabled()`, the default), sets of ≤128 bits — nearly every NFA
/// state set and atom set in practice — live in two inline words with no
/// heap traffic at all, and larger sets take their word block from the
/// calling thread's installed `Arena` when one is present (per-query
/// transients in the sat engines and subset construction), falling back to
/// `new[]`. With `XPC_ARENA=0` every non-empty Bits owns a heap word block
/// instead — the pre-PR one-`std::vector<uint64_t>`-per-Bits layout the
/// throughput bench measures against. The representation is latched at
/// construction; both are bit-identical in behavior.
/// Arena-backed blocks are never individually freed; they die with the
/// arena, so a Bits allocated under an arena must not outlive it (builders
/// of long-lived sets use `ScopedArenaPause`).
///
/// Kernels (DESIGN.md §2.10): operands wider than one cache line
/// (`kDispatchWords`, 8 words) route every word sweep through the runtime-
/// dispatched `simd::Active()` kernel set — AVX2/NEON where the host has
/// them, the portable scalar reference otherwise (`XPC_SIMD` overrides).
/// All legs are bit-identical including the returned change/intersect/any
/// flags. Narrower operands keep the general loops below: the compiler
/// vectorizes them in place and sub-line sweeps don't buy back the call
/// indirection. Word blocks of dispatched width — arena and heap alike —
/// are 64-byte aligned so the vector loads never split cache lines.
class Bits {
 public:
  Bits() { rep_.inl[0] = rep_.inl[1] = 0; }

  explicit Bits(int size) : size_(size), nwords_((static_cast<uint32_t>(size) + 63) >> 6) {
    if (nwords_ == 0 || (nwords_ <= kInlineWords && ArenaEnabled())) {
      rep_.inl[0] = rep_.inl[1] = 0;
#if XPC_STATS_ENABLED
      ++internal::tls_bits_inline_hits;
#endif
    } else {
      inline_ = false;
      AllocBlock();
      std::memset(rep_.ptr, 0, nwords_ * 8u);
    }
  }

  Bits(const Bits& o) : size_(o.size_), nwords_(o.nwords_), inline_(o.inline_) {
    if (inline_) {
      rep_.inl[0] = o.rep_.inl[0];
      rep_.inl[1] = o.rep_.inl[1];
#if XPC_STATS_ENABLED
      ++internal::tls_bits_inline_hits;
#endif
    } else {
      AllocBlock();
      std::memcpy(rep_.ptr, o.rep_.ptr, nwords_ * 8u);
    }
  }

  Bits(Bits&& o) noexcept : size_(o.size_), nwords_(o.nwords_), heap_(o.heap_), inline_(o.inline_) {
    rep_ = o.rep_;
    o.size_ = 0;
    o.nwords_ = 0;
    o.heap_ = false;
    o.inline_ = true;
    o.rep_.inl[0] = o.rep_.inl[1] = 0;
  }

  Bits& operator=(const Bits& o) {
    if (this == &o) return *this;
    if (nwords_ == o.nwords_) {
      // Same word count: overwrite in place, keeping this object's storage
      // (and its heap/arena ownership) — the common steady-state case.
      size_ = o.size_;
      std::memcpy(words(), o.cwords(), nwords_ * 8u);
      return *this;
    }
    FreeBlock();
    size_ = o.size_;
    nwords_ = o.nwords_;
    heap_ = false;
    inline_ = o.inline_;
    if (inline_) {
      rep_.inl[0] = o.rep_.inl[0];
      rep_.inl[1] = o.rep_.inl[1];
    } else {
      AllocBlock();
      std::memcpy(rep_.ptr, o.rep_.ptr, nwords_ * 8u);
    }
    return *this;
  }

  Bits& operator=(Bits&& o) noexcept {
    if (this == &o) return *this;
    FreeBlock();
    size_ = o.size_;
    nwords_ = o.nwords_;
    heap_ = o.heap_;
    inline_ = o.inline_;
    rep_ = o.rep_;
    o.size_ = 0;
    o.nwords_ = 0;
    o.heap_ = false;
    o.inline_ = true;
    o.rep_.inl[0] = o.rep_.inl[1] = 0;
    return *this;
  }

  ~Bits() { FreeBlock(); }

  int size() const { return size_; }

  /// Raw word access for word-granular kernels (StateRel's flat rows, the
  /// dense step masks). `num_words()` words, bit i at word i>>6, bit i&63.
  uint64_t* words() { return inline_ ? rep_.inl : rep_.ptr; }
  const uint64_t* cwords() const { return inline_ ? rep_.inl : rep_.ptr; }
  uint32_t num_words() const { return nwords_; }

  bool Get(int i) const { return (cwords()[i >> 6] >> (i & 63)) & 1; }
  void Set(int i) { words()[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Reset(int i) { words()[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(int i, bool v) { v ? Set(i) : Reset(i); }

  /// True if no bit is set.
  bool None() const {
    const uint64_t* w = cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().none(w, nwords_);
    uint64_t any = 0;
    for (uint32_t i = 0; i < nwords_; ++i) any |= w[i];
    return any == 0;
  }

  /// Number of set bits (hardware POPCNT via the dispatched kernel on
  /// multi-word operands).
  int Count() const {
    const uint64_t* w = cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().count(w, nwords_);
    int c = 0;
    for (uint32_t i = 0; i < nwords_; ++i) c += std::popcount(w[i]);
    return c;
  }

  /// In-place union; returns true if any bit was newly set. Branch-free
  /// change tracking: the loop body has no data-dependent branches, so it
  /// vectorizes.
  bool UnionWith(const Bits& other) {
    assert(size_ == other.size_);
    uint64_t* w = words();
    const uint64_t* ow = other.cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().union_with(w, ow, nwords_);
    uint64_t diff = 0;
    for (uint32_t i = 0; i < nwords_; ++i) {
      uint64_t merged = w[i] | ow[i];
      diff |= merged ^ w[i];
      w[i] = merged;
    }
    return diff != 0;
  }

  /// Fused kernel: this |= other, reporting whether this and `other`
  /// overlapped *before* the union (one pass instead of Intersects +
  /// UnionWith).
  bool UnionWithIntersects(const Bits& other) {
    assert(size_ == other.size_);
    uint64_t* w = words();
    const uint64_t* ow = other.cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().union_with_intersects(w, ow, nwords_);
    uint64_t hit = 0;
    for (uint32_t i = 0; i < nwords_; ++i) {
      hit |= w[i] & ow[i];
      w[i] |= ow[i];
    }
    return hit != 0;
  }

  void IntersectWith(const Bits& other) {
    assert(size_ == other.size_);
    uint64_t* w = words();
    const uint64_t* ow = other.cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().intersect_with(w, ow, nwords_);
    for (uint32_t i = 0; i < nwords_; ++i) w[i] &= ow[i];
  }

  void SubtractWith(const Bits& other) {
    assert(size_ == other.size_);
    uint64_t* w = words();
    const uint64_t* ow = other.cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().subtract_with(w, ow, nwords_);
    for (uint32_t i = 0; i < nwords_; ++i) w[i] &= ~ow[i];
  }

  /// Fused kernel: this &= ~other, reporting whether anything survives (one
  /// pass instead of SubtractWith + None).
  bool SubtractWithAny(const Bits& other) {
    assert(size_ == other.size_);
    uint64_t* w = words();
    const uint64_t* ow = other.cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().subtract_with_any(w, ow, nwords_);
    uint64_t left = 0;
    for (uint32_t i = 0; i < nwords_; ++i) {
      w[i] &= ~ow[i];
      left |= w[i];
    }
    return left != 0;
  }

  /// True if this and `other` share any set bit.
  bool Intersects(const Bits& other) const {
    assert(size_ == other.size_);
    const uint64_t* w = cwords();
    const uint64_t* ow = other.cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().intersects(w, ow, nwords_);
    for (uint32_t i = 0; i < nwords_; ++i) {
      if (w[i] & ow[i]) return true;
    }
    return false;
  }

  /// True if this is a subset of `other`.
  bool SubsetOf(const Bits& other) const {
    assert(size_ == other.size_);
    const uint64_t* w = cwords();
    const uint64_t* ow = other.cwords();
    if (__builtin_expect(nwords_ > kDispatchWords, 0))
      return simd::Active().subset_of(w, ow, nwords_);
    for (uint32_t i = 0; i < nwords_; ++i) {
      if (w[i] & ~ow[i]) return false;
    }
    return true;
  }

  /// Invokes `f(i)` for each set bit, in increasing order.
  template <typename F>
  void ForEach(F f) const {
    const uint64_t* words = cwords();
    for (uint32_t w = 0; w < nwords_; ++w) {
      uint64_t bits = words[w];
      while (bits) {
        int b = __builtin_ctzll(bits);
        f(static_cast<int>(w * 64 + b));
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const Bits& a, const Bits& b) {
    if (a.size_ != b.size_) return false;
    const uint64_t* aw = a.cwords();
    const uint64_t* bw = b.cwords();
    if (__builtin_expect(a.nwords_ > kDispatchWords, 0))
      return simd::Active().equals(aw, bw, a.nwords_);
    for (uint32_t i = 0; i < a.nwords_; ++i) {
      if (aw[i] != bw[i]) return false;
    }
    return true;
  }
  friend bool operator<(const Bits& a, const Bits& b) {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    const uint64_t* aw = a.cwords();
    const uint64_t* bw = b.cwords();
    for (uint32_t i = 0; i < a.nwords_; ++i) {
      if (aw[i] != bw[i]) return aw[i] < bw[i];
    }
    return false;
  }

  /// FNV-style hash over the words. Stays scalar on every ISA leg: the
  /// multiply chain is serially dependent word to word, and the hash values
  /// are load-bearing (interning tables, cache keys) so they cannot change.
  size_t Hash() const {
    const uint64_t* w = cwords();
    size_t h = 0xcbf29ce484222325ULL;
    for (uint32_t i = 0; i < nwords_; ++i) {
      h ^= w[i];
      h *= 0x100000001b3ULL;
    }
    return h;
  }

 private:
  static constexpr uint32_t kInlineWords = 2;

  /// Dispatch cutoff for the SIMD kernel layer: operands up to one 64-byte
  /// cache line (8 words) stay on the general inline loops below — the
  /// compiler autovectorizes them in place, and for sub-line operands the
  /// call indirection costs more than the wider vectors save (measured on
  /// the loop-sat benches, whose Hintikka sets are typically 3-8 words).
  /// Mirrors the row-sweep cutoffs in pathauto/state_relation.h and
  /// automata/nfa.cc.
  static constexpr uint32_t kDispatchWords = 8;

  void AllocBlock() {
    if (Arena* a = Arena::Current()) {
      rep_.ptr = a->AllocWords(nwords_);
      heap_ = false;
    } else {
      // Heap fallback keeps the same ≥64-byte alignment invariant as arena
      // word blocks, but only for operands wide enough to reach the
      // dispatched kernels (nwords_ > kDispatchWords). Narrower blocks stay
      // on plain `new`: they are served by the inlined loops, and the
      // aligned-allocation path off the malloc fast path is a measurable
      // tax wherever heap Bits are allocation-bound (the XPC_ARENA=0 leg,
      // and the ScopedArenaPause region that builds NFA ε-closures).
      rep_.ptr = nwords_ > kDispatchWords
                     ? static_cast<uint64_t*>(::operator new(
                           nwords_ * 8u, std::align_val_t{Arena::kWordBlockAlign}))
                     : static_cast<uint64_t*>(::operator new(nwords_ * 8u));
      heap_ = true;
    }
  }

  void FreeBlock() {
    if (!heap_) return;
    if (nwords_ > kDispatchWords) {
      ::operator delete(rep_.ptr, std::align_val_t{Arena::kWordBlockAlign});
    } else {
      ::operator delete(rep_.ptr);
    }
  }

  int32_t size_ = 0;
  uint32_t nwords_ = 0;
  bool heap_ = false;    // rep_.ptr owned via new[] (never true in inline mode).
  bool inline_ = true;   // Words live in rep_.inl (latched at construction).
  union Rep {
    uint64_t inl[kInlineWords];
    uint64_t* ptr;
  } rep_;
};

struct BitsHash {
  size_t operator()(const Bits& b) const { return b.Hash(); }
};

/// RAII: flushes the thread's inline-allocation tally into the
/// `bits.inline_hits` metric when the scope exits. Engines open one around
/// their hot region; nested scopes each flush their own delta.
class BitsStatsScope {
 public:
  BitsStatsScope() {
#if XPC_STATS_ENABLED
    start_ = internal::tls_bits_inline_hits;
#endif
  }
  ~BitsStatsScope() {
#if XPC_STATS_ENABLED
    uint64_t now = internal::tls_bits_inline_hits;
    internal::tls_bits_inline_hits = start_;
    StatsAdd(Metric::kBitsInlineHits, static_cast<int64_t>(now - start_));
#endif
  }

  BitsStatsScope(const BitsStatsScope&) = delete;
  BitsStatsScope& operator=(const BitsStatsScope&) = delete;

#if XPC_STATS_ENABLED
 private:
  uint64_t start_ = 0;
#endif
};

}  // namespace xpc

#endif  // XPC_COMMON_BITS_H_
