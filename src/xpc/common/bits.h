#ifndef XPC_COMMON_BITS_H_
#define XPC_COMMON_BITS_H_

#include <cstdint>
#include <cstddef>
#include <functional>
#include <vector>

namespace xpc {

/// A fixed-size dynamic bitset with the set operations needed by the
/// relation algebra and the automata summaries. Supports hashing and
/// ordering so values can key hash maps and sets.
class Bits {
 public:
  Bits() = default;
  explicit Bits(int size) : size_(size), words_((size + 63) / 64, 0) {}

  int size() const { return size_; }

  bool Get(int i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
  void Set(int i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Reset(int i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(int i, bool v) { v ? Set(i) : Reset(i); }

  /// True if no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Number of set bits.
  int Count() const {
    int c = 0;
    for (uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  /// In-place union; returns true if any bit was newly set.
  bool UnionWith(const Bits& other) {
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t merged = words_[i] | other.words_[i];
      changed = changed || merged != words_[i];
      words_[i] = merged;
    }
    return changed;
  }

  void IntersectWith(const Bits& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  void SubtractWith(const Bits& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// True if this and `other` share any set bit.
  bool Intersects(const Bits& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// True if this is a subset of `other`.
  bool SubsetOf(const Bits& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }

  /// Invokes `f(i)` for each set bit, in increasing order.
  template <typename F>
  void ForEach(F f) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        int b = __builtin_ctzll(bits);
        f(static_cast<int>(w * 64 + b));
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const Bits& a, const Bits& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  friend bool operator<(const Bits& a, const Bits& b) {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  /// FNV-style hash over the words.
  size_t Hash() const {
    size_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

 private:
  int size_ = 0;
  std::vector<uint64_t> words_;
};

struct BitsHash {
  size_t operator()(const Bits& b) const { return b.Hash(); }
};

}  // namespace xpc

#endif  // XPC_COMMON_BITS_H_
