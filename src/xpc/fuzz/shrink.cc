#include "xpc/fuzz/shrink.h"

#include <vector>

#include "xpc/xpath/build.h"
#include "xpc/xpath/metrics.h"

namespace xpc {

namespace {

// Rebuilds `p` with one child slot replaced.
PathPtr WithLeft(const PathPtr& p, const PathPtr& left) {
  switch (p->kind) {
    case PathKind::kSeq: return Seq(left, p->right);
    case PathKind::kUnion: return Union(left, p->right);
    case PathKind::kIntersect: return Intersect(left, p->right);
    case PathKind::kComplement: return Complement(left, p->right);
    case PathKind::kFilter: return Filter(left, p->filter);
    case PathKind::kStar: return Star(left);
    case PathKind::kFor: return For(p->var, left, p->right);
    default: return p;
  }
}

PathPtr WithRight(const PathPtr& p, const PathPtr& right) {
  switch (p->kind) {
    case PathKind::kSeq: return Seq(p->left, right);
    case PathKind::kUnion: return Union(p->left, right);
    case PathKind::kIntersect: return Intersect(p->left, right);
    case PathKind::kComplement: return Complement(p->left, right);
    case PathKind::kFor: return For(p->var, p->left, right);
    default: return p;
  }
}

}  // namespace

std::vector<PathPtr> PathReductions(const PathPtr& p) {
  std::vector<PathPtr> out;
  auto add = [&](const PathPtr& candidate) {
    if (candidate && Size(candidate) < Size(p)) out.push_back(candidate);
  };
  switch (p->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return out;
    case PathKind::kSeq:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kComplement:
      add(p->left);
      add(p->right);
      for (const PathPtr& c : PathReductions(p->left)) add(WithLeft(p, c));
      for (const PathPtr& c : PathReductions(p->right)) add(WithRight(p, c));
      return out;
    case PathKind::kFilter:
      add(p->left);
      add(Test(p->filter));  // Strictly smaller unless left is already ".".
      for (const PathPtr& c : PathReductions(p->left)) add(WithLeft(p, c));
      for (const NodePtr& c : NodeReductions(p->filter)) add(Filter(p->left, c));
      return out;
    case PathKind::kStar:
      add(p->left);
      for (const PathPtr& c : PathReductions(p->left)) {
        // Keep the canonical-form invariant: no kStar directly over kAxis
        // (the parser canonicalizes that to the axis closure).
        if (c->kind == PathKind::kAxis) {
          add(AxStar(c->axis));
        } else {
          add(WithLeft(p, c));
        }
      }
      return out;
    case PathKind::kFor:
      add(p->left);
      add(p->right);
      for (const PathPtr& c : PathReductions(p->left)) add(WithLeft(p, c));
      for (const PathPtr& c : PathReductions(p->right)) add(WithRight(p, c));
      return out;
  }
  return out;
}

std::vector<NodePtr> NodeReductions(const NodePtr& n) {
  std::vector<NodePtr> out;
  auto add = [&](const NodePtr& candidate) {
    if (candidate && Size(candidate) < Size(n)) out.push_back(candidate);
  };
  switch (n->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return out;
    case NodeKind::kSome:
      add(True());
      for (const PathPtr& c : PathReductions(n->path)) add(Some(c));
      return out;
    case NodeKind::kNot:
      add(n->child1);
      for (const NodePtr& c : NodeReductions(n->child1)) add(Not(c));
      return out;
    case NodeKind::kAnd:
      add(n->child1);
      add(n->child2);
      for (const NodePtr& c : NodeReductions(n->child1)) add(And(c, n->child2));
      for (const NodePtr& c : NodeReductions(n->child2)) add(And(n->child1, c));
      return out;
    case NodeKind::kOr:
      add(n->child1);
      add(n->child2);
      for (const NodePtr& c : NodeReductions(n->child1)) add(Or(c, n->child2));
      for (const NodePtr& c : NodeReductions(n->child2)) add(Or(n->child1, c));
      return out;
    case NodeKind::kPathEq:
      add(Some(n->path));
      add(Some(n->path2));
      for (const PathPtr& c : PathReductions(n->path)) add(PathEq(c, n->path2));
      for (const PathPtr& c : PathReductions(n->path2)) add(PathEq(n->path, c));
      return out;
  }
  return out;
}

PathPtr ShrinkPath(const PathPtr& failing, const PathPredicate& still_fails, int max_steps) {
  PathPtr current = failing;
  for (int step = 0; step < max_steps; ++step) {
    bool reduced = false;
    for (const PathPtr& candidate : PathReductions(current)) {
      if (still_fails(candidate)) {
        current = candidate;
        reduced = true;
        break;
      }
    }
    if (!reduced) break;
  }
  return current;
}

NodePtr ShrinkNode(const NodePtr& failing, const NodePredicate& still_fails, int max_steps) {
  NodePtr current = failing;
  for (int step = 0; step < max_steps; ++step) {
    bool reduced = false;
    for (const NodePtr& candidate : NodeReductions(current)) {
      if (still_fails(candidate)) {
        current = candidate;
        reduced = true;
        break;
      }
    }
    if (!reduced) break;
  }
  return current;
}

}  // namespace xpc
