#ifndef XPC_FUZZ_ORACLES_H_
#define XPC_FUZZ_ORACLES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "xpc/edtd/edtd.h"
#include "xpc/fuzz/generator.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Individual metamorphic checks. Each returns "" on success (or when the
/// input is outside the check's precondition) and a human-readable failure
/// detail otherwise. Semantic checks evaluate on `trees` random trees of at
/// most `max_nodes` nodes drawn deterministically from `tree_seed`.
///
/// O1 — parse(print(e)) is structurally identical to e, and printing is a
/// fixpoint of the round-trip.
std::string CheckRoundTripPath(const PathPtr& p);
std::string CheckRoundTripNode(const NodePtr& n);

/// O2 — every translation is semantics-preserving on concrete trees.
/// RewriteIntersectToFor: eliminates ∩/≈, preserves ⟦·⟧ (any fragment).
std::string CheckIntersectToFor(const PathPtr& p, uint64_t tree_seed, int trees, int max_nodes);
/// RewriteComplementToFor: eliminates −, preserves ⟦·⟧ (downward operands —
/// Theorem 31; the caller guarantees `p` is downward).
std::string CheckComplementToFor(const PathPtr& p, uint64_t tree_seed, int trees, int max_nodes);
/// The Section 2.2 / Theorem 30 algebraic identities on a random pair:
/// α ∩ β ≡ α − (α − β),  α ∪ β ≡ U − ((U−α) ∩ (U−β)),  α ≈ β ≡ ⟨α ∩ β⟩.
std::string CheckAlgebraicIdentities(const PathPtr& a, const PathPtr& b, uint64_t tree_seed,
                                     int trees, int max_nodes);
/// Normal form (+ ∩-product, Lemma 16) vs the reference evaluator:
/// ⟦IntersectToLoopNormalForm(φ)⟧_LOOPS == ⟦φ⟧ per node.
std::string CheckLoopNormalForm(const NodePtr& n, uint64_t tree_seed, int trees, int max_nodes);
/// Lemma 18 let-elimination: on the intended marker decoration of a random
/// tree, the eliminated formula holds somewhere iff the original does.
std::string CheckLetElim(const NodePtr& n, uint64_t tree_seed, int trees, int max_nodes);
/// Theorem 30: the star-free round-trip, the tr(·) word invariant against
/// the iterated-complementation DFA, and pure-F agreement.
std::string CheckStarFree(const StarFreePtr& r, uint64_t tree_seed, int trees, int max_nodes);

/// O3 — all applicable sat engines agree and their witnesses re-validate.
/// `phi` should be in CoreXPath(*, ∩, ≈) so at least the product pipeline is
/// complete; the downward engine and the solver facade join in when
/// applicable, and bounded search may only strengthen SAT verdicts.
std::string CheckEngineAgreement(const NodePtr& phi);
/// Same, relativized to an EDTD (downward φ): the downward engine's native
/// EDTD support vs the Proposition 6 witness-tree encoding. Witnesses must
/// conform to the schema.
std::string CheckEngineAgreementWithEdtd(const NodePtr& phi, const Edtd& edtd);

/// O4 — Session-cached results equal cold results (cold solver, cold
/// session, warm session, batch).
std::string CheckSessionCoherence(const NodePtr& phi, const PathPtr& a, const PathPtr& b);

/// O5 — the PTIME fast paths agree with the full engines and never
/// misroute. Re-runs the classifier, then asserts: (1) the facade's engine
/// stamp starts with "fastpath-" iff SelectFastPath routed the query,
/// (2) a routed query is always decided (the fast paths are complete on
/// their fragments), (3) fast and full verdicts match whenever the full
/// engine is decisive at fuzz budgets, (4) fast-path witnesses re-validate
/// (and conform to the schema), and (5) fast-path UNSAT verdicts survive a
/// bounded model search / conforming-tree sampling refutation.
std::string CheckFastPath(const NodePtr& phi);
std::string CheckFastPathWithEdtd(const NodePtr& phi, const Edtd& edtd);

/// O6 — the shared streaming automaton agrees with per-query evaluation.
/// Shrinks `queries` (all streamable; non-streamable bundles are skipped)
/// through the BundleOptimizer (subsumption pruning ON), compiles the
/// survivors into one shared automaton, and streams random trees — EDTD
/// conforming samples when `edtd` is non-null — through one matcher,
/// asserting per query:
///   active / aliased — shared-automaton matches ≡ the query's own
///     single-compiled automaton ≡ the evaluator's root matches;
///   subsumed — never fires, and its reference matches are covered by its
///     subsumer's (the containment verdict was sound);
///   unsat — the evaluator finds no root match on any sampled tree.
std::string CheckStreamMatcher(const std::vector<PathPtr>& queries, const Edtd* edtd,
                               uint64_t tree_seed, int trees, int max_nodes);

/// One reported failure, delta-minimized when shrinking is enabled.
struct FuzzFailure {
  std::string oracle;  ///< e.g. "roundtrip-path".
  uint64_t case_seed;  ///< Reproduces the case: FuzzGen(case_seed).
  std::string expr;    ///< Minimized offending expression (printed).
  std::string detail;  ///< What disagreed.
  std::string edtd;    ///< Schema (EdtdToText, `;`-joined) for *-edtd oracles.
};

/// Configuration of a fuzzing run.
struct FuzzOptions {
  uint64_t seed = 1;
  /// Total cases across the enabled oracles (deterministically
  /// apportioned: round-trips are cheap and get the bulk; engine-agreement
  /// solves are the most expensive and get the least).
  int64_t cases = 1000;
  bool roundtrip = true;
  bool translations = true;
  bool engines = true;
  bool session = true;
  bool fastpaths = true;
  bool streams = true;
  /// Delta-minimize failures before reporting.
  bool shrink = true;
  /// Random trees per semantic check / their maximum size.
  int trees_per_case = 3;
  int max_tree_nodes = 8;
  /// Operator budget for generated expressions.
  int max_ops = 8;
};

struct FuzzReport {
  int64_t cases_run = 0;
  std::map<std::string, int64_t> per_oracle;  ///< Cases run per check name.
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Runs the seeded fuzz campaign. Fully deterministic: the same options
/// yield the same cases, verdicts and minimized failures.
FuzzReport RunFuzz(const FuzzOptions& options);

}  // namespace xpc

#endif  // XPC_FUZZ_ORACLES_H_
