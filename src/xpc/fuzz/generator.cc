#include "xpc/fuzz/generator.h"

#include "xpc/xpath/build.h"

namespace xpc {

ExprGenOptions ExprGenOptions::FullSyntax() {
  ExprGenOptions o;
  o.allow_star = true;
  o.allow_patheq = true;
  o.allow_intersect = true;
  o.allow_complement = true;
  o.allow_for = true;
  return o;
}

ExprGenOptions ExprGenOptions::RegularFriendly() {
  ExprGenOptions o;
  o.allow_star = true;
  o.allow_patheq = true;
  return o;
}

ExprGenOptions ExprGenOptions::WithIntersect() {
  ExprGenOptions o = RegularFriendly();
  o.allow_intersect = true;
  return o;
}

ExprGenOptions ExprGenOptions::DownwardIntersect() {
  ExprGenOptions o;
  o.allow_patheq = true;
  o.allow_intersect = true;
  o.downward_only = true;
  return o;
}

ExprGenOptions ExprGenOptions::DownwardComplement() {
  ExprGenOptions o;
  o.allow_intersect = true;
  o.allow_complement = true;
  o.downward_only = true;
  return o;
}

ExprGenOptions ExprGenOptions::VerticalConjunctive() {
  ExprGenOptions o;
  o.allow_union = false;
  o.vertical_only = true;
  o.conjunctive_only = true;
  return o;
}

ExprGenOptions ExprGenOptions::Streamable() {
  ExprGenOptions o;
  o.allow_star = true;
  o.downward_only = true;
  o.label_filters_only = true;
  return o;
}

Axis FuzzGen::GenAxis(const ExprGenOptions& o) {
  if (o.downward_only) return Axis::kChild;
  if (o.vertical_only) return rng_.NextBelow(2) == 0 ? Axis::kChild : Axis::kParent;
  switch (rng_.NextBelow(4)) {
    case 0: return Axis::kChild;
    case 1: return Axis::kParent;
    case 2: return Axis::kRight;
    default: return Axis::kLeft;
  }
}

std::string FuzzGen::GenLabel(const ExprGenOptions& o) {
  return o.labels[rng_.NextBelow(o.labels.size())];
}

PathPtr FuzzGen::GenAtom(const ExprGenOptions& o, std::vector<std::string>* scope) {
  switch (rng_.NextBelow(6)) {
    case 0:
    case 1:
      return Ax(GenAxis(o));
    case 2:
    case 3:
      // Under vertical_only, ↑* would leave the fast-path fragment; only ↓*.
      return AxStar(o.vertical_only ? Axis::kChild : GenAxis(o));
    case 4:
      return Self();
    default:
      return Test(rng_.NextBelow(2) == 0 || scope->empty() || !o.allow_for
                      ? Label(GenLabel(o))
                      : IsVar((*scope)[rng_.NextBelow(scope->size())]));
  }
}

PathPtr FuzzGen::GenPath(const ExprGenOptions& options) {
  std::vector<std::string> scope;
  return GenPathImpl(options, options.max_ops, &scope);
}

NodePtr FuzzGen::GenNode(const ExprGenOptions& options) {
  std::vector<std::string> scope;
  return GenNodeImpl(options, options.max_ops, &scope);
}

PathPtr FuzzGen::GenPathImpl(const ExprGenOptions& o, int budget,
                             std::vector<std::string>* scope) {
  if (budget <= 1) return GenAtom(o, scope);
  // Draw an operator; unsupported draws fall back to cheaper forms so every
  // call site terminates regardless of the enabled fragment.
  switch (rng_.NextBelow(16)) {
    case 0:
    case 1:
    case 2:
      return Seq(GenPathImpl(o, budget / 2, scope), GenPathImpl(o, budget - budget / 2, scope));
    case 3:
    case 4:
      if (o.allow_union) {
        return Union(GenPathImpl(o, budget / 2, scope),
                     GenPathImpl(o, budget - budget / 2, scope));
      }
      return GenPathImpl(o, budget - 1, scope);
    case 5:
    case 6:
    case 7:
      return Filter(GenPathImpl(o, budget / 2, scope),
                    GenNodeImpl(o, budget - budget / 2, scope));
    case 8:
      if (o.allow_intersect) {
        return Intersect(GenPathImpl(o, budget / 2, scope),
                         GenPathImpl(o, budget - budget / 2, scope));
      }
      return GenPathImpl(o, budget - 1, scope);
    case 9:
      if (o.allow_complement) {
        return Complement(GenPathImpl(o, budget / 2, scope),
                          GenPathImpl(o, budget - budget / 2, scope));
      }
      return GenPathImpl(o, budget - 1, scope);
    case 10:
      if (o.allow_star) {
        // The parser canonicalizes (τ)* to the axis closure, so the
        // canonical AST never has kStar directly over kAxis; regenerate the
        // body until it is not a bare axis.
        PathPtr body = GenPathImpl(o, budget - 1, scope);
        if (body->kind == PathKind::kAxis) body = Filter(body, True());
        return Star(body);
      }
      return GenPathImpl(o, budget - 1, scope);
    case 11:
    case 12:
      if (o.allow_for && !o.vars.empty()) {
        const std::string& var = o.vars[rng_.NextBelow(o.vars.size())];
        PathPtr in = GenPathImpl(o, budget / 2, scope);
        scope->push_back(var);
        PathPtr ret = GenPathImpl(o, budget - budget / 2, scope);
        scope->pop_back();
        return For(var, in, ret);
      }
      return GenPathImpl(o, budget - 1, scope);
    default:
      return GenAtom(o, scope);
  }
}

NodePtr FuzzGen::GenNodeImpl(const ExprGenOptions& o, int budget,
                             std::vector<std::string>* scope) {
  if (budget <= 1) {
    if (o.allow_for && !scope->empty() && rng_.NextBelow(5) == 0) {
      return IsVar((*scope)[rng_.NextBelow(scope->size())]);
    }
    return rng_.NextBelow(4) == 0 ? True() : Label(GenLabel(o));
  }
  switch (rng_.NextBelow(10)) {
    case 0:
    case 1:
      if (o.conjunctive_only) {
        return And(GenNodeImpl(o, budget / 2, scope),
                   GenNodeImpl(o, budget - budget / 2, scope));
      }
      return Not(GenNodeImpl(o, budget - 1, scope));
    case 2:
      return And(GenNodeImpl(o, budget / 2, scope), GenNodeImpl(o, budget - budget / 2, scope));
    case 3:
      if (o.conjunctive_only) return GenNodeImpl(o, budget - 1, scope);
      return Or(GenNodeImpl(o, budget / 2, scope), GenNodeImpl(o, budget - budget / 2, scope));
    case 4:
    case 5:
    case 6:
      if (o.label_filters_only) return GenNodeImpl(o, budget - 1, scope);
      return Some(GenPathImpl(o, budget - 1, scope));
    case 7:
      if (o.allow_patheq) {
        return PathEq(GenPathImpl(o, budget / 2, scope),
                      GenPathImpl(o, budget - budget / 2, scope));
      }
      return GenNodeImpl(o, budget - 1, scope);
    default:
      return Label(GenLabel(o));
  }
}

XmlTree FuzzGen::GenTree(int max_nodes, const std::vector<std::string>& labels) {
  TreeGenOptions opt;
  opt.num_nodes = 1 + static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(max_nodes)));
  opt.alphabet = labels;
  return rng_.Generate(opt);
}

Edtd FuzzGen::GenEdtd(const EdtdGenOptions& options) {
  const int n = options.num_types;
  std::vector<std::string> abstract;
  abstract.reserve(n);
  for (int i = 0; i < n; ++i) abstract.push_back("T" + std::to_string(i));

  // ε-biased random content models: every type can terminate, so
  // SampleConformingTree usually succeeds within a small node budget.
  auto leaf = [&]() -> RegexPtr {
    if (rng_.NextBelow(3) == 0) return RxEpsilon();
    return RxSymbol(abstract[rng_.NextBelow(abstract.size())]);
  };
  std::vector<Edtd::TypeDef> types;
  types.reserve(n);
  for (int i = 0; i < n; ++i) {
    RegexPtr content;
    if (options.linear_content) {
      // Duplicate-free, disjunction-free: concatenate up to two *distinct*
      // symbols, each possibly starred. A mandatory (unstarred) child must
      // reference a strictly higher-indexed type so every type stays
      // realizable; starred children may recurse freely (pumpable to ε).
      content = RxEpsilon();
      int picks = static_cast<int>(rng_.NextBelow(3));  // 0, 1 or 2 symbols.
      int prev = -1;
      for (int k = 0; k < picks; ++k) {
        int j = static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(n)));
        if (j == prev) continue;  // Keep the content duplicate-free.
        prev = j;
        RegexPtr sym = RxSymbol(abstract[j]);
        if (j <= i || rng_.NextBelow(2) == 0) sym = RxStar(std::move(sym));
        content = content->kind == Regex::Kind::kEpsilon
                      ? std::move(sym)
                      : RxConcat(std::move(content), std::move(sym));
      }
      Edtd::TypeDef def;
      def.abstract_label = abstract[i];
      def.content = std::move(content);
      def.concrete_label =
          options.concrete_labels[rng_.NextBelow(options.concrete_labels.size())];
      types.push_back(std::move(def));
      continue;
    }
    switch (rng_.NextBelow(6)) {
      case 0: content = RxEpsilon(); break;
      case 1: content = leaf(); break;
      case 2: content = RxOptional(leaf()); break;
      case 3: content = RxUnion(leaf(), leaf()); break;
      case 4: content = RxConcat(RxOptional(leaf()), RxOptional(leaf())); break;
      default: content = RxStar(leaf()); break;
    }
    Edtd::TypeDef def;
    def.abstract_label = abstract[i];
    def.content = content;
    def.concrete_label =
        options.concrete_labels[rng_.NextBelow(options.concrete_labels.size())];
    types.push_back(std::move(def));
  }
  return Edtd(std::move(types), abstract[0]);
}

StarFreePtr FuzzGen::GenStarFree(int max_ops, const std::vector<std::string>& symbols,
                                 int max_complements) {
  if (max_ops <= 1) return SfSymbol(symbols[rng_.NextBelow(symbols.size())]);
  switch (rng_.NextBelow(6)) {
    case 0:
    case 1:
      return SfConcat(GenStarFree(max_ops / 2, symbols, max_complements),
                      GenStarFree(max_ops - max_ops / 2, symbols, max_complements));
    case 2:
    case 3:
      return SfUnion(GenStarFree(max_ops / 2, symbols, max_complements),
                     GenStarFree(max_ops - max_ops / 2, symbols, max_complements));
    case 4:
      if (max_complements > 0) {
        return SfComplement(GenStarFree(max_ops - 1, symbols, max_complements - 1));
      }
      return GenStarFree(max_ops - 1, symbols, max_complements);
    default:
      return SfSymbol(symbols[rng_.NextBelow(symbols.size())]);
  }
}

}  // namespace xpc
