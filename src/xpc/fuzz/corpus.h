#ifndef XPC_FUZZ_CORPUS_H_
#define XPC_FUZZ_CORPUS_H_

#include <string>
#include <vector>

#include "xpc/fuzz/oracles.h"

namespace xpc {

/// One regression-corpus entry: a delta-minimized input that once triggered
/// a bug, replayed through its oracle on every test run.
///
/// On-disk format (`tests/fuzz_corpus/*.case`), line-oriented:
///
///     # free-form commentary
///     oracle: roundtrip-path
///     expr: down/(down/down)      (for `stream`: the whole bundle,
///                                 `;`-separated)
///     expr2: down | down          (optional second operand)
///     seed: 42                    (optional; tree seed for semantic checks)
///     edtd: A -> a := B*;B -> b := epsilon
///                                 (optional; EdtdToText lines `;`-joined,
///                                 for the schema-relative oracles)
///
/// Unknown keys are an error, so typos fail loudly instead of silently
/// skipping a regression.
struct CorpusCase {
  std::string file;    ///< Path the case was loaded from (for messages).
  std::string oracle;  ///< Which check to replay (see ReplayCase).
  std::string expr;
  std::string expr2;
  std::string edtd;
  uint64_t seed = 1;
};

/// Parses one `.case` file. Returns an error message, or "" and fills `out`.
std::string LoadCorpusCase(const std::string& path, CorpusCase* out);

/// All `.case` files in `dir`, sorted by filename for determinism. Missing
/// or empty directories yield an empty list (and `error` explains why).
std::vector<CorpusCase> LoadCorpus(const std::string& dir, std::string* error);

/// Replays a case through its oracle. Returns "" if the historic bug stays
/// fixed, the oracle's failure detail if it regressed, or a parse/config
/// error. Oracle names match the fuzz campaign's: roundtrip-path,
/// roundtrip-node, forelim-intersect, forelim-complement, identities,
/// loop-normal-form, let-elim, starfree, engines, engines-edtd, session,
/// fastpath, fastpath-edtd.
std::string ReplayCase(const CorpusCase& c);

}  // namespace xpc

#endif  // XPC_FUZZ_CORPUS_H_
