#include "xpc/fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "xpc/translate/starfree.h"
#include "xpc/xpath/parser.h"

namespace xpc {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string LoadCorpusCase(const std::string& path, CorpusCase* out) {
  std::ifstream in(path);
  if (!in) return "cannot open " + path;
  *out = CorpusCase{};
  out->file = path;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    size_t colon = t.find(':');
    if (colon == std::string::npos) {
      return path + ":" + std::to_string(lineno) + ": expected `key: value`";
    }
    std::string key = Trim(t.substr(0, colon));
    std::string value = Trim(t.substr(colon + 1));
    if (key == "oracle") {
      out->oracle = value;
    } else if (key == "expr") {
      out->expr = value;
    } else if (key == "expr2") {
      out->expr2 = value;
    } else if (key == "edtd") {
      out->edtd = value;
    } else if (key == "seed") {
      out->seed = std::stoull(value);
    } else {
      return path + ":" + std::to_string(lineno) + ": unknown key `" + key + "`";
    }
  }
  if (out->oracle.empty()) return path + ": missing `oracle:`";
  if (out->expr.empty()) return path + ": missing `expr:`";
  return "";
}

std::vector<CorpusCase> LoadCorpus(const std::string& dir, std::string* error) {
  std::vector<CorpusCase> cases;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    if (error) *error = "not a directory: " + dir;
    return cases;
  }
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".case") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  for (const std::string& f : files) {
    CorpusCase c;
    std::string err = LoadCorpusCase(f, &c);
    if (!err.empty()) {
      if (error) *error = err;
      continue;
    }
    cases.push_back(std::move(c));
  }
  if (error && cases.empty() && files.empty()) *error = "no .case files in " + dir;
  return cases;
}

std::string ReplayCase(const CorpusCase& c) {
  const int trees = 5;
  const int max_nodes = 8;

  auto path1 = [&](PathPtr* out) -> std::string {
    Result<PathPtr> r = ParsePath(c.expr);
    if (!r.ok()) return c.file + ": expr does not parse: " + r.error();
    *out = r.value();
    return "";
  };
  auto path2 = [&](PathPtr* out) -> std::string {
    if (c.expr2.empty()) return c.file + ": oracle `" + c.oracle + "` needs `expr2:`";
    Result<PathPtr> r = ParsePath(c.expr2);
    if (!r.ok()) return c.file + ": expr2 does not parse: " + r.error();
    *out = r.value();
    return "";
  };
  auto node1 = [&](NodePtr* out) -> std::string {
    Result<NodePtr> r = ParseNode(c.expr);
    if (!r.ok()) return c.file + ": expr does not parse: " + r.error();
    *out = r.value();
    return "";
  };
  auto edtd1 = [&](std::optional<Edtd>* out) -> std::string {
    if (c.edtd.empty()) return c.file + ": oracle `" + c.oracle + "` needs `edtd:`";
    std::string text = c.edtd;
    std::replace(text.begin(), text.end(), ';', '\n');
    Result<Edtd> r = Edtd::Parse(text);
    if (!r.ok()) return c.file + ": edtd does not parse: " + r.error();
    out->emplace(r.value());
    return "";
  };

  if (c.oracle == "roundtrip-path") {
    PathPtr p;
    std::string err = path1(&p);
    return err.empty() ? CheckRoundTripPath(p) : err;
  }
  if (c.oracle == "roundtrip-node") {
    NodePtr n;
    std::string err = node1(&n);
    return err.empty() ? CheckRoundTripNode(n) : err;
  }
  if (c.oracle == "forelim-intersect") {
    PathPtr p;
    std::string err = path1(&p);
    return err.empty() ? CheckIntersectToFor(p, c.seed, trees, max_nodes) : err;
  }
  if (c.oracle == "forelim-complement") {
    PathPtr p;
    std::string err = path1(&p);
    return err.empty() ? CheckComplementToFor(p, c.seed, trees, max_nodes) : err;
  }
  if (c.oracle == "identities") {
    PathPtr a, b;
    std::string err = path1(&a);
    if (err.empty()) err = path2(&b);
    return err.empty() ? CheckAlgebraicIdentities(a, b, c.seed, trees, max_nodes) : err;
  }
  if (c.oracle == "loop-normal-form") {
    NodePtr n;
    std::string err = node1(&n);
    return err.empty() ? CheckLoopNormalForm(n, c.seed, trees, max_nodes) : err;
  }
  if (c.oracle == "let-elim") {
    NodePtr n;
    std::string err = node1(&n);
    return err.empty() ? CheckLetElim(n, c.seed, trees, max_nodes) : err;
  }
  if (c.oracle == "starfree") {
    Result<StarFreePtr> r = ParseStarFree(c.expr);
    if (!r.ok()) return c.file + ": expr does not parse as star-free: " + r.error();
    return CheckStarFree(r.value(), c.seed, trees, max_nodes);
  }
  if (c.oracle == "engines") {
    NodePtr n;
    std::string err = node1(&n);
    return err.empty() ? CheckEngineAgreement(n) : err;
  }
  if (c.oracle == "engines-edtd") {
    NodePtr n;
    std::optional<Edtd> edtd;
    std::string err = node1(&n);
    if (err.empty()) err = edtd1(&edtd);
    return err.empty() ? CheckEngineAgreementWithEdtd(n, *edtd) : err;
  }
  if (c.oracle == "fastpath") {
    NodePtr n;
    std::string err = node1(&n);
    return err.empty() ? CheckFastPath(n) : err;
  }
  if (c.oracle == "fastpath-edtd") {
    NodePtr n;
    std::optional<Edtd> edtd;
    std::string err = node1(&n);
    if (err.empty()) err = edtd1(&edtd);
    return err.empty() ? CheckFastPathWithEdtd(n, *edtd) : err;
  }
  if (c.oracle == "stream") {
    // `expr:` holds the whole bundle, `;`-separated (ToString never emits a
    // bare `;`, so the split is unambiguous).
    std::vector<PathPtr> queries;
    size_t start = 0;
    while (start <= c.expr.size()) {
      size_t sep = c.expr.find(';', start);
      std::string part = c.expr.substr(
          start, sep == std::string::npos ? std::string::npos : sep - start);
      Result<PathPtr> r = ParsePath(part);
      if (!r.ok()) return c.file + ": bundle query does not parse: " + r.error();
      queries.push_back(r.value());
      if (sep == std::string::npos) break;
      start = sep + 1;
    }
    std::optional<Edtd> edtd;
    if (!c.edtd.empty()) {
      std::string err = edtd1(&edtd);
      if (!err.empty()) return err;
    }
    return CheckStreamMatcher(queries, edtd ? &*edtd : nullptr, c.seed, trees, max_nodes);
  }
  if (c.oracle == "session") {
    NodePtr n;
    PathPtr a, b;
    std::string err = node1(&n);
    if (err.empty() && !c.expr2.empty()) {
      err = path2(&a);
      b = a;
    } else {
      Result<PathPtr> self = ParsePath(".");
      a = b = self.value();
    }
    return err.empty() ? CheckSessionCoherence(n, a, b) : err;
  }
  return c.file + ": unknown oracle `" + c.oracle + "`";
}

}  // namespace xpc
