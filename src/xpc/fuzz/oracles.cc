#include "xpc/fuzz/oracles.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "xpc/classify/profile.h"
#include "xpc/core/session.h"
#include "xpc/core/solver.h"
#include "xpc/edtd/conformance.h"
#include "xpc/edtd/encode.h"
#include "xpc/eval/evaluator.h"
#include "xpc/eval/loop_evaluator.h"
#include "xpc/fuzz/shrink.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/sat/bounded_sat.h"
#include "xpc/sat/downward_sat.h"
#include "xpc/sat/loop_sat.h"
#include "xpc/stream/bundle_optimizer.h"
#include "xpc/stream/stream_compile.h"
#include "xpc/stream/stream_event.h"
#include "xpc/stream/stream_matcher.h"
#include "xpc/translate/for_elim.h"
#include "xpc/translate/intersect_product.h"
#include "xpc/translate/let_elim.h"
#include "xpc/tree/tree_text.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/fragment.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/parser.h"
#include "xpc/xpath/printer.h"

namespace xpc {

namespace {

const std::vector<std::string> kTreeLabels = {"a", "b", "c"};

/// Compares two path denotations on a sequence of random trees; returns ""
/// or a detail naming the first mismatching tree.
std::string ComparePathsOnTrees(const PathPtr& expected, const PathPtr& actual,
                                uint64_t tree_seed, int trees, int max_nodes,
                                const char* what) {
  FuzzGen gen(tree_seed);
  for (int i = 0; i < trees; ++i) {
    XmlTree t = gen.GenTree(max_nodes, kTreeLabels);
    Evaluator ev(t);
    if (!(ev.EvalPath(expected) == ev.EvalPath(actual))) {
      std::ostringstream os;
      os << what << ": " << ToString(expected) << "  vs  " << ToString(actual)
         << " differ on tree " << TreeToText(t);
      return os.str();
    }
  }
  return "";
}

}  // namespace

// --- O1: parser ↔ printer round-trips -----------------------------------

std::string CheckRoundTripPath(const PathPtr& p) {
  const std::string printed = ToString(p);
  Result<PathPtr> parsed = ParsePath(printed);
  if (!parsed.ok()) {
    return "printed form does not parse: \"" + printed + "\": " + parsed.error();
  }
  if (!Equal(parsed.value(), p)) {
    return "round-trip changed the AST: \"" + printed + "\" re-parses as \"" +
           ToString(parsed.value()) + "\"";
  }
  return "";
}

std::string CheckRoundTripNode(const NodePtr& n) {
  const std::string printed = ToString(n);
  Result<NodePtr> parsed = ParseNode(printed);
  if (!parsed.ok()) {
    return "printed form does not parse: \"" + printed + "\": " + parsed.error();
  }
  if (!Equal(parsed.value(), n)) {
    return "round-trip changed the AST: \"" + printed + "\" re-parses as \"" +
           ToString(parsed.value()) + "\"";
  }
  return "";
}

// --- O2: translations vs the reference evaluator ------------------------

std::string CheckIntersectToFor(const PathPtr& p, uint64_t tree_seed, int trees,
                                int max_nodes) {
  PathPtr rewritten = RewriteIntersectToFor(p);
  Fragment f = DetectFragment(rewritten);
  if (f.uses_intersect || f.uses_path_eq) {
    return "RewriteIntersectToFor left ∩/≈ in: " + ToString(rewritten);
  }
  return ComparePathsOnTrees(p, rewritten, tree_seed, trees, max_nodes,
                             "RewriteIntersectToFor");
}

std::string CheckComplementToFor(const PathPtr& p, uint64_t tree_seed, int trees,
                                 int max_nodes) {
  if (!DetectFragment(p).IsDownward()) return "";  // Theorem 31 precondition.
  PathPtr rewritten = RewriteComplementToFor(p);
  if (DetectFragment(rewritten).uses_complement) {
    return "RewriteComplementToFor left − in: " + ToString(rewritten);
  }
  return ComparePathsOnTrees(p, rewritten, tree_seed, trees, max_nodes,
                             "RewriteComplementToFor");
}

std::string CheckAlgebraicIdentities(const PathPtr& a, const PathPtr& b, uint64_t tree_seed,
                                     int trees, int max_nodes) {
  std::string r = ComparePathsOnTrees(Intersect(a, b), IntersectToComplement(a, b), tree_seed,
                                      trees, max_nodes, "IntersectToComplement");
  if (!r.empty()) return r;
  r = ComparePathsOnTrees(Union(a, b), UnionToComplement(a, b), tree_seed, trees, max_nodes,
                          "UnionToComplement");
  if (!r.empty()) return r;
  // α ≈ β ≡ ⟨α ∩ β⟩ as node expressions.
  FuzzGen gen(tree_seed);
  for (int i = 0; i < trees; ++i) {
    XmlTree t = gen.GenTree(max_nodes, kTreeLabels);
    Evaluator ev(t);
    if (!(ev.EvalNode(PathEq(a, b)) == ev.EvalNode(PathEqToIntersect(a, b)))) {
      return "PathEqToIntersect: eq(" + ToString(a) + ", " + ToString(b) +
             ") differs on tree " + TreeToText(t);
    }
  }
  return "";
}

std::string CheckLoopNormalForm(const NodePtr& n, uint64_t tree_seed, int trees,
                                int max_nodes) {
  LExprPtr e = IntersectToLoopNormalForm(n);
  if (!e) return "";  // Outside CoreXPath(*, ∩, ≈).
  FuzzGen gen(tree_seed);
  for (int i = 0; i < trees; ++i) {
    XmlTree t = gen.GenTree(max_nodes, kTreeLabels);
    Evaluator direct(t);
    LoopEvaluator loops(t);
    NodeSet expected = direct.EvalNode(n);
    const std::vector<bool>& actual = loops.EvalAll(e);
    for (NodeId v = 0; v < t.size(); ++v) {
      if (expected.Contains(v) != actual[v]) {
        std::ostringstream os;
        os << "loop normal form of " << ToString(n) << " differs at node " << v
           << " of tree " << TreeToText(t);
        return os.str();
      }
    }
  }
  return "";
}

std::string CheckLetElim(const NodePtr& n, uint64_t tree_seed, int trees, int max_nodes) {
  LExprPtr original = IntersectToLoopNormalForm(n);
  if (!original) return "";
  LetElimResult elim = EliminateLets(original);
  std::map<const PathAutomaton*, PathAutoPtr> shared;
  for (const PathAutoPtr& a : CollectAutomata(original)) shared[a.get()] = a;
  FuzzGen gen(tree_seed);
  for (int i = 0; i < trees; ++i) {
    XmlTree t = gen.GenTree(max_nodes, kTreeLabels);
    LoopEvaluator base(t);
    const std::vector<bool>& orig_truth = base.EvalAll(original);
    bool orig_somewhere = false;
    for (NodeId v = 0; v < t.size(); ++v) orig_somewhere |= orig_truth[v];

    // Intended decoration: attach marker m below v iff binding m's loop
    // definition holds at v (Lemma 18's canonical model extension).
    XmlTree decorated = t;
    const int original_size = t.size();
    for (NodeId v = 0; v < original_size; ++v) {
      for (size_t m = 0; m < elim.bindings.size(); ++m) {
        const auto& b = elim.bindings[m];
        const StateRel& rel = base.LoopRelations(shared.at(b.automaton))[v];
        if (rel.Get(b.q_from, b.q_to)) decorated.AddChild(v, MarkerLabel(static_cast<int>(m)));
      }
    }
    LoopEvaluator decorated_eval(decorated);
    const std::vector<bool>& elim_truth = decorated_eval.EvalAll(elim.formula);
    // Only the original nodes count: Lemma 18's claim is that the
    // eliminated formula holds at v on the decorated model iff the original
    // holds at v — marker leaves are bookkeeping, not candidate nodes, and
    // a negation (e.g. not(<down[m]>)) holds at them vacuously.
    bool elim_somewhere = false;
    for (NodeId v = 0; v < original_size; ++v) elim_somewhere |= elim_truth[v];
    if (orig_somewhere != elim_somewhere) {
      std::ostringstream os;
      os << "let-elimination of " << ToString(n) << " "
         << (orig_somewhere ? "lost" : "invented") << " satisfaction on intended decoration of "
         << TreeToText(t);
      return os.str();
    }
  }
  return "";
}

std::string CheckStarFree(const StarFreePtr& r, uint64_t tree_seed, int trees, int max_nodes) {
  // Round-trip through the star-free concrete syntax.
  const std::string printed = StarFreeToString(r);
  Result<StarFreePtr> reparsed = ParseStarFree(printed);
  if (!reparsed.ok()) {
    return "star-free printed form does not parse: \"" + printed + "\"";
  }
  if (StarFreeToString(reparsed.value()) != printed) {
    return "star-free round-trip not a fixpoint: \"" + printed + "\" vs \"" +
           StarFreeToString(reparsed.value()) + "\"";
  }

  const std::vector<std::string> sigma = {"a", "b"};
  Dfa dfa = StarFreeToDfa(r, sigma);
  PathPtr tr = StarFreeToPath(r);
  PathPtr pure = StarFreeToPath(r, /*pure_f=*/true);
  FuzzGen gen(tree_seed);
  for (int i = 0; i < trees; ++i) {
    XmlTree t = gen.GenTree(max_nodes, sigma);
    Evaluator ev(t);
    Relation rel = ev.EvalPath(tr);
    if (!(rel == ev.EvalPath(pure))) {
      return "pure-F translation of " + printed + " differs on tree " + TreeToText(t);
    }
    // Theorem 30's invariant: (n, m) ∈ ⟦tr(r)⟧ iff m is a proper descendant
    // of n and the label word strictly below n down to m is in L(r).
    for (NodeId from = 0; from < t.size(); ++from) {
      for (NodeId to = 0; to < t.size(); ++to) {
        bool expected = false;
        if (from != to && t.IsAncestorOrSelf(from, to)) {
          std::vector<int> word;
          for (NodeId v = to; v != from; v = t.parent(v)) {
            word.push_back(t.label(v) == "a" ? 0 : 1);
          }
          std::reverse(word.begin(), word.end());
          expected = dfa.Accepts(word);
        }
        if (rel.Contains(from, to) != expected) {
          std::ostringstream os;
          os << "tr(" << printed << ") disagrees with the DFA at pair (" << from << ", " << to
             << ") of tree " << TreeToText(t);
          return os.str();
        }
      }
    }
  }
  return "";
}

// --- O3: cross-engine agreement -----------------------------------------

namespace {

std::string ValidateWitness(const char* engine, const SatResult& r, const NodePtr& phi) {
  if (r.status != SolveStatus::kSat || !r.witness.has_value()) return "";
  Evaluator ev(*r.witness);
  if (!ev.SatisfiedSomewhere(phi)) {
    return std::string(engine) + " returned a witness that does not satisfy " + ToString(phi) +
           ": " + TreeToText(*r.witness);
  }
  return "";
}

}  // namespace

namespace {

/// Tight resource budgets for fuzzing: a random formula that needs millions
/// of summaries is not a better agreement test than one that needs
/// thousands, and kResourceLimit verdicts are skipped anyway. These keep a
/// case in the low milliseconds.
LoopSatOptions FuzzLoopOptions() {
  LoopSatOptions o;
  o.max_items = 4'000;
  o.max_pool = 1'000;
  return o;
}

DownwardSatOptions FuzzDownwardOptions() {
  DownwardSatOptions o;
  o.max_inst_paths = 8'000;
  o.max_summaries = 20'000;
  o.max_atoms = 20'000;
  return o;
}

}  // namespace

std::string CheckEngineAgreement(const NodePtr& phi) {
  Fragment f = DetectFragment(phi);
  if (f.uses_complement || f.uses_for) return "";  // No complete engine.
  LExprPtr e = IntersectToLoopNormalForm(phi);
  if (!e) return "";
  // Big ∩-products only ever burn the (deliberately tiny) fuzz budget to
  // kResourceLimit; nothing would be compared.
  if (DagSizeOf(e) > 400) return "";

  std::vector<std::pair<std::string, SatResult>> decisive;
  SatResult loop = LoopSatisfiable(e, FuzzLoopOptions());
  if (loop.status != SolveStatus::kResourceLimit) decisive.emplace_back("loop-sat", loop);

  if (f.IsDownward() && !f.uses_star) {
    SatResult down = DownwardSatisfiable(phi, FuzzDownwardOptions());
    if (down.status != SolveStatus::kResourceLimit) decisive.emplace_back("downward-sat", down);
  }

  // The facade must agree with whatever engine it dispatches to.
  SolverOptions so;
  so.loop = FuzzLoopOptions();
  so.downward = FuzzDownwardOptions();
  so.verify_witnesses = false;  // The oracle validates witnesses itself.
  SatResult facade = Solver(so).NodeSatisfiable(phi);
  if (facade.status != SolveStatus::kResourceLimit) {
    decisive.emplace_back("solver:" + facade.engine, facade);
  }

  for (size_t i = 1; i < decisive.size(); ++i) {
    if (decisive[i].second.status != decisive[0].second.status) {
      return decisive[0].first + " says " + SolveStatusName(decisive[0].second.status) + " but " +
             decisive[i].first + " says " + SolveStatusName(decisive[i].second.status) + " for " +
             ToString(phi);
    }
  }
  for (const auto& [name, r] : decisive) {
    std::string w = ValidateWitness(name.c_str(), r, phi);
    if (!w.empty()) return w;
  }

  // Bounded search is sound for SAT: a found model refutes any UNSAT claim.
  BoundedSatOptions bo;
  bo.max_exhaustive_nodes = 4;
  bo.random_trees = 40;
  bo.max_random_nodes = 8;
  SatResult bounded = BoundedSatisfiable(phi, bo);
  if (bounded.status == SolveStatus::kSat) {
    std::string w = ValidateWitness("bounded-sat", bounded, phi);
    if (!w.empty()) return w;
    if (!decisive.empty() && decisive[0].second.status == SolveStatus::kUnsat) {
      return "bounded-sat found a model but " + decisive[0].first + " says unsat for " +
             ToString(phi);
    }
  }
  return "";
}

std::string CheckEngineAgreementWithEdtd(const NodePtr& phi, const Edtd& edtd) {
  Fragment f = DetectFragment(phi);
  if (!f.IsDownward() || f.uses_star || f.uses_complement || f.uses_for) return "";

  // The Prop. 6 encoding pipeline is not comparable at fuzz budgets (its
  // loop-sat leg reliably exhausts any small cap), so the cross-checks here
  // are: native downward engine vs the dispatching facade, witness
  // revalidation + schema conformance, and a sampled-conforming-tree
  // refutation of UNSAT verdicts.
  SatResult down = DownwardSatisfiableWithEdtd(phi, edtd, FuzzDownwardOptions());
  SolverOptions so;
  so.loop = FuzzLoopOptions();
  so.downward = FuzzDownwardOptions();
  so.verify_witnesses = false;
  SatResult facade = Solver(so).NodeSatisfiable(phi, edtd);

  if (down.status != SolveStatus::kResourceLimit && facade.status != SolveStatus::kResourceLimit &&
      down.status != facade.status) {
    return "downward-sat+edtd says " + std::string(SolveStatusName(down.status)) +
           " but solver:" + facade.engine + " says " + SolveStatusName(facade.status) + " for " +
           ToString(phi);
  }
  for (const auto& [name, r] :
       std::initializer_list<std::pair<const char*, const SatResult*>>{{"downward-sat+edtd", &down},
                                                                       {"solver+edtd", &facade}}) {
    if (r->status != SolveStatus::kSat || !r->witness.has_value()) continue;
    std::string w = ValidateWitness(name, *r, phi);
    if (!w.empty()) return w;
    if (!Conforms(*r->witness, edtd)) {
      return std::string(name) + " returned a witness that does not conform to the EDTD: " +
             TreeToText(*r->witness);
    }
  }
  if (down.status == SolveStatus::kUnsat) {
    for (uint64_t i = 0; i < 20; ++i) {
      auto [ok, tree] = SampleConformingTree(edtd, 8, i);
      if (!ok) continue;
      if (Evaluator(tree).SatisfiedSomewhere(phi)) {
        return "downward-sat+edtd says unsat but the conforming tree " + TreeToText(tree) +
               " satisfies " + ToString(phi);
      }
    }
  }
  return "";
}

// --- O5: fast paths vs full engines -------------------------------------

namespace {

/// The stamp/completeness contract shared by both O5 checks: routing and
/// stamping must agree, and a routed query must be decided. Returns "" when
/// the contract holds.
std::string CheckFastPathContract(FastPathRoute route, const SatResult& fast,
                                  const NodePtr& phi) {
  const bool stamped = fast.engine.rfind("fastpath-", 0) == 0;
  if (route != FastPathRoute::kNone && !stamped) {
    return std::string("classifier routed to ") + FastPathRouteName(route) +
           " but the facade ran " + fast.engine + " for " + ToString(phi);
  }
  if (route == FastPathRoute::kNone && stamped) {
    return "classifier declined to route but the facade ran " + fast.engine + " for " +
           ToString(phi);
  }
  if (route != FastPathRoute::kNone && fast.status == SolveStatus::kResourceLimit) {
    return std::string(FastPathRouteName(route)) +
           " gave up on a query the classifier put in its fragment: " + ToString(phi) +
           " (" + fast.engine + ")";
  }
  return "";
}

SolverOptions FastPathSolverOptions(bool fast_paths) {
  SolverOptions so;
  so.loop = FuzzLoopOptions();
  so.downward = FuzzDownwardOptions();
  so.verify_witnesses = false;  // The oracle validates witnesses itself.
  so.fast_paths = fast_paths;
  return so;
}

}  // namespace

std::string CheckFastPath(const NodePtr& phi) {
  FragmentProfile profile = ClassifyNode(phi);
  if (profile.fragment.uses_complement || profile.fragment.uses_for) return "";
  FastPathRoute route = SelectFastPath(profile, nullptr);

  SatResult fast = Solver(FastPathSolverOptions(true)).NodeSatisfiable(phi);
  std::string d = CheckFastPathContract(route, fast, phi);
  if (!d.empty()) return d;
  d = ValidateWitness(("solver:" + fast.engine).c_str(), fast, phi);
  if (!d.empty()) return d;

  SatResult full = Solver(FastPathSolverOptions(false)).NodeSatisfiable(phi);
  if (fast.status != SolveStatus::kResourceLimit &&
      full.status != SolveStatus::kResourceLimit && fast.status != full.status) {
    return "solver:" + fast.engine + " says " + SolveStatusName(fast.status) +
           " but solver:" + full.engine + " (fast paths off) says " +
           SolveStatusName(full.status) + " for " + ToString(phi);
  }

  // Bounded search is sound for SAT: a found model refutes an UNSAT verdict.
  if (fast.status == SolveStatus::kUnsat) {
    BoundedSatOptions bo;
    bo.max_exhaustive_nodes = 4;
    bo.random_trees = 40;
    bo.max_random_nodes = 8;
    SatResult bounded = BoundedSatisfiable(phi, bo);
    if (bounded.status == SolveStatus::kSat) {
      return "solver:" + fast.engine + " says unsat but bounded search found a model for " +
             ToString(phi);
    }
  }
  return "";
}

std::string CheckFastPathWithEdtd(const NodePtr& phi, const Edtd& edtd) {
  FragmentProfile profile = ClassifyNode(phi);
  if (profile.fragment.uses_complement || profile.fragment.uses_for) return "";
  SchemaClass schema = ClassifySchema(edtd);
  FastPathRoute route = SelectFastPath(profile, &schema);

  SolverOptions so = FastPathSolverOptions(true);
  if (route == FastPathRoute::kNone) {
    // Only the engine stamp is under test on fallbacks; don't let the
    // facade's Prop. 6 → loop-sat fallback grind to its item cap.
    so.loop.max_items = 50;
    so.loop.max_pool = 50;
  }
  SatResult fast = Solver(so).NodeSatisfiable(phi, edtd);
  std::string d = CheckFastPathContract(route, fast, phi);
  if (!d.empty()) return d;
  if (fast.status == SolveStatus::kSat && fast.witness.has_value()) {
    d = ValidateWitness(("solver:" + fast.engine).c_str(), fast, phi);
    if (!d.empty()) return d;
    if (!Conforms(*fast.witness, edtd)) {
      return "solver:" + fast.engine + " returned a witness that does not conform to the EDTD: " +
             TreeToText(*fast.witness);
    }
  }

  // Full-engine comparison. Downward queries have a cheap decisive
  // counterpart (the native-EDTD downward engine); for the rest, the Prop. 6
  // encoding → loop-sat pipeline is only consulted when the translated form
  // is small — at fuzz budgets a big product would just burn to
  // kResourceLimit (same cutoff as CheckEngineAgreement).
  SatResult full;
  full.status = SolveStatus::kResourceLimit;
  std::string full_name;
  if (profile.fragment.IsDownward() && !profile.fragment.uses_star) {
    full = DownwardSatisfiableWithEdtd(phi, edtd, FuzzDownwardOptions());
    full_name = "downward-sat+edtd";
  } else {
    NodePtr encoded = EncodeEdtdSatisfiability(phi, edtd);
    LExprPtr e = ToLoopNormalForm(encoded);
    if (e && DagSizeOf(e) <= 400) {
      full = LoopSatisfiable(e, FuzzLoopOptions());
      full_name = "loop-sat+edtd-encoding";
    }
  }
  if (fast.status != SolveStatus::kResourceLimit &&
      full.status != SolveStatus::kResourceLimit && fast.status != full.status) {
    return "solver:" + fast.engine + " says " + SolveStatusName(fast.status) + " but " +
           full_name + " says " + SolveStatusName(full.status) + " for " + ToString(phi);
  }

  // Sampled conforming trees refute schema-relative UNSAT verdicts.
  if (fast.status == SolveStatus::kUnsat) {
    for (uint64_t i = 0; i < 20; ++i) {
      auto [ok, tree] = SampleConformingTree(edtd, 8, i);
      if (!ok) continue;
      if (Evaluator(tree).SatisfiedSomewhere(phi)) {
        return "solver:" + fast.engine + " says unsat but the conforming tree " +
               TreeToText(tree) + " satisfies " + ToString(phi);
      }
    }
  }
  return "";
}

// --- O4: session coherence ----------------------------------------------

std::string CheckSessionCoherence(const NodePtr& phi, const PathPtr& a, const PathPtr& b) {
  SolverOptions so;
  so.loop = FuzzLoopOptions();
  so.downward = FuzzDownwardOptions();
  SatResult cold = Solver(so).NodeSatisfiable(phi);
  SessionOptions session_options;
  session_options.solver = so;
  Session session(session_options);
  SatResult warm1 = session.NodeSatisfiable(phi);
  SatResult warm2 = session.NodeSatisfiable(phi);
  if (warm1.status != cold.status || warm2.status != cold.status) {
    return "session sat verdicts diverge from cold solver for " + ToString(phi) + ": cold=" +
           SolveStatusName(cold.status) + " session=" + SolveStatusName(warm1.status) + "/" +
           SolveStatusName(warm2.status);
  }

  ContainmentResult ccold = Solver(so).Contains(a, b);
  ContainmentResult c1 = session.Contains(a, b);
  ContainmentResult c2 = session.Contains(a, b);
  std::vector<std::pair<PathPtr, PathPtr>> queries = {{a, b}, {a, b}};
  std::vector<ContainmentResult> batch = session.ContainsBatch(queries);
  for (const ContainmentResult* r : {&c1, &c2, &batch[0], &batch[1]}) {
    if (r->verdict != ccold.verdict) {
      return "session containment verdict diverges from cold solver for " + ToString(a) +
             " ⊆ " + ToString(b) + ": cold=" + ContainmentVerdictName(ccold.verdict) +
             " session=" + ContainmentVerdictName(r->verdict);
    }
  }
  return "";
}

// --- O6: streaming matcher ----------------------------------------------

namespace {

/// Preorder rank per node — the ordinal numbering `EventsOf` /
/// `StreamMatcher` report matches in (root = 0).
std::vector<int64_t> PreorderRanks(const XmlTree& tree) {
  std::vector<int64_t> rank(tree.size(), -1);
  int64_t next = 0;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    rank[n] = next++;
    std::vector<NodeId> kids = tree.Children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return rank;
}

/// The evaluator's root matches of `p` on `tree`, as sorted preorder
/// ordinals — the ground truth every streaming leg must reproduce.
std::vector<int64_t> RootMatches(Evaluator* eval, const PathPtr& p,
                                 const std::vector<int64_t>& ranks, NodeId root) {
  std::vector<int64_t> out;
  for (auto [src, dst] : eval->EvalPath(p).ToPairs()) {
    if (src == root) out.push_back(ranks[dst]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string CheckStreamMatcher(const std::vector<PathPtr>& queries, const Edtd* edtd,
                               uint64_t tree_seed, int trees, int max_nodes) {
  if (queries.empty()) return "";
  for (const PathPtr& q : queries) {
    if (!IsStreamable(q)) return "";  // Outside the oracle's precondition.
  }
  const int k = static_cast<int>(queries.size());

  Session session;
  if (edtd != nullptr) session.SetEdtd(*edtd);
  BundleOptions bundle_options;
  bundle_options.prune_subsumed = true;  // Soundness of pruning is under test.
  BundleOptimizer optimizer(&session, bundle_options);
  OptimizedBundle plan = optimizer.Optimize(queries);
  CompiledBundle bundle = CompileBundle(plan.compile_set, k);
  StreamMatcher matcher(&bundle);  // Shared across trees: warm-cache leg.

  std::vector<CompiledBundle> singles;
  singles.reserve(queries.size());
  for (const PathPtr& q : queries) singles.push_back(CompileSingle(q));

  FuzzGen tgen(tree_seed);
  for (int i = 0; i < trees; ++i) {
    std::pair<bool, XmlTree> sample =
        edtd != nullptr ? SampleConformingTree(*edtd, max_nodes, tree_seed + i)
                        : std::make_pair(true, tgen.GenTree(max_nodes, kTreeLabels));
    // A failed sample falls back to a tree that need not conform — the
    // schema-relative verdicts make no promise about it; skip.
    if (!sample.first) continue;
    const XmlTree& tree = sample.second;
    std::vector<StreamEvent> events = EventsOf(tree);
    std::vector<int64_t> ranks = PreorderRanks(tree);
    Evaluator eval(tree);

    std::vector<std::vector<int64_t>> shared(queries.size());
    for (auto [q, n] : matcher.MatchStream(events)) shared[q].push_back(n);
    for (auto& v : shared) std::sort(v.begin(), v.end());

    std::vector<std::vector<int64_t>> want(queries.size());
    for (int q = 0; q < k; ++q) want[q] = RootMatches(&eval, queries[q], ranks, tree.root());

    for (int q = 0; q < k; ++q) {
      const BundleQueryInfo& info = plan.queries[q];
      std::ostringstream os;
      switch (info.disposition) {
        case BundleQueryInfo::Disposition::kActive:
        case BundleQueryInfo::Disposition::kAliased: {
          if (shared[q] != want[q]) {
            os << "shared automaton disagrees with evaluator on query " << q << " ("
               << ToString(queries[q]) << ") tree " << TreeToText(tree) << ": got "
               << shared[q].size() << " matches, want " << want[q].size();
            return os.str();
          }
          // Per-query reference leg: the same stream through the query's own
          // automaton (cold matcher — exercises the miss path every tree).
          StreamMatcher single(&singles[q]);
          std::vector<int64_t> ref;
          for (auto [sq, n] : single.MatchStream(events)) {
            if (sq == 0) ref.push_back(n);
          }
          std::sort(ref.begin(), ref.end());
          if (ref != want[q]) {
            os << "single-query automaton disagrees with evaluator on query " << q << " ("
               << ToString(queries[q]) << ") tree " << TreeToText(tree);
            return os.str();
          }
          break;
        }
        case BundleQueryInfo::Disposition::kSubsumed: {
          if (!shared[q].empty()) {
            os << "subsumed query " << q << " fired in the shared automaton";
            return os.str();
          }
          if (!std::includes(want[info.target].begin(), want[info.target].end(),
                             want[q].begin(), want[q].end())) {
            os << "subsumption unsound: query " << q << " (" << ToString(queries[q])
               << ") has a root match its subsumer " << info.target << " ("
               << ToString(queries[info.target]) << ") misses on tree " << TreeToText(tree);
            return os.str();
          }
          break;
        }
        case BundleQueryInfo::Disposition::kUnsat: {
          if (!want[q].empty()) {
            os << "unsat-pruned query " << q << " (" << ToString(queries[q])
               << ") matches on sampled tree " << TreeToText(tree);
            return os.str();
          }
          break;
        }
        case BundleQueryInfo::Disposition::kRejected:
          return "streamable query rejected: " + info.reason;
      }
    }
  }
  return "";
}

// --- The campaign driver ------------------------------------------------

namespace {

uint64_t MixSeed(uint64_t seed, int64_t i) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct CaseKind {
  const char* name;
  int weight;
};

}  // namespace

std::string FuzzReport::Summary() const {
  std::ostringstream os;
  os << cases_run << " cases";
  if (!per_oracle.empty()) {
    os << " (";
    bool first = true;
    for (const auto& [name, count] : per_oracle) {
      if (!first) os << ", ";
      os << name << ": " << count;
      first = false;
    }
    os << ")";
  }
  os << ", " << failures.size() << " failure" << (failures.size() == 1 ? "" : "s");
  return os.str();
}

FuzzReport RunFuzz(const FuzzOptions& options) {
  FuzzReport report;

  // Deterministic apportioning: cheap syntactic checks get the bulk of the
  // budget, engine solves the least.
  std::vector<CaseKind> kinds;
  if (options.roundtrip) {
    kinds.push_back({"roundtrip-path", 4});
    kinds.push_back({"roundtrip-node", 3});
  }
  if (options.translations) {
    kinds.push_back({"forelim-intersect", 1});
    kinds.push_back({"forelim-complement", 1});
    kinds.push_back({"identities", 1});
    kinds.push_back({"loop-normal-form", 1});
    kinds.push_back({"let-elim", 1});
    kinds.push_back({"starfree", 1});
  }
  if (options.engines) {
    kinds.push_back({"engines", 1});
    kinds.push_back({"engines-edtd", 1});
  }
  if (options.session) {
    kinds.push_back({"session", 1});
  }
  if (options.fastpaths) {
    kinds.push_back({"fastpath", 1});
    kinds.push_back({"fastpath-edtd", 1});
  }
  if (options.streams) {
    kinds.push_back({"stream", 1});
  }
  if (kinds.empty()) return report;
  int total_weight = 0;
  for (const CaseKind& k : kinds) total_weight += k.weight;

  const int trees = options.trees_per_case;
  const int max_nodes = options.max_tree_nodes;

  for (int64_t i = 0; i < options.cases; ++i) {
    int slot = static_cast<int>(i % total_weight);
    const char* kind = nullptr;
    for (const CaseKind& k : kinds) {
      if (slot < k.weight) {
        kind = k.name;
        break;
      }
      slot -= k.weight;
    }
    const uint64_t case_seed = MixSeed(options.seed, i);
    const uint64_t tree_seed = MixSeed(case_seed, 1);
    FuzzGen gen(case_seed);
    ++report.cases_run;
    ++report.per_oracle[kind];
    const std::string kind_str = kind;

    std::string detail;
    std::string expr_text;
    std::string edtd_text;

    auto fail_path = [&](const PathPtr& p, const std::function<std::string(const PathPtr&)>& check,
                         std::string first_detail) {
      PathPtr min = p;
      if (options.shrink) {
        min = ShrinkPath(p, [&](const PathPtr& c) { return !check(c).empty(); });
      }
      detail = check(min);
      if (detail.empty()) detail = std::move(first_detail);  // Shrinker over-shrunk; keep input.
      expr_text = ToString(min);
    };
    auto fail_node = [&](const NodePtr& n, const std::function<std::string(const NodePtr&)>& check,
                         std::string first_detail) {
      NodePtr min = n;
      if (options.shrink) {
        min = ShrinkNode(n, [&](const NodePtr& c) { return !check(c).empty(); });
      }
      detail = check(min);
      if (detail.empty()) detail = std::move(first_detail);
      expr_text = ToString(min);
    };

    if (kind_str == "roundtrip-path") {
      ExprGenOptions o = ExprGenOptions::FullSyntax();
      o.max_ops = options.max_ops;
      PathPtr p = gen.GenPath(o);
      std::string d = CheckRoundTripPath(p);
      if (!d.empty()) fail_path(p, CheckRoundTripPath, d);
    } else if (kind_str == "roundtrip-node") {
      ExprGenOptions o = ExprGenOptions::FullSyntax();
      o.max_ops = options.max_ops;
      NodePtr n = gen.GenNode(o);
      std::string d = CheckRoundTripNode(n);
      if (!d.empty()) fail_node(n, CheckRoundTripNode, d);
    } else if (kind_str == "forelim-intersect") {
      ExprGenOptions o = ExprGenOptions::FullSyntax();
      o.max_ops = options.max_ops;
      o.allow_complement = false;  // − is orthogonal to this rewriting.
      PathPtr p = gen.GenPath(o);
      auto check = [&](const PathPtr& c) {
        return CheckIntersectToFor(c, tree_seed, trees, max_nodes);
      };
      std::string d = check(p);
      if (!d.empty()) fail_path(p, check, d);
    } else if (kind_str == "forelim-complement") {
      ExprGenOptions o = ExprGenOptions::DownwardComplement();
      o.max_ops = options.max_ops;
      o.allow_for = true;  // Stress the fresh-variable discipline.
      PathPtr p = gen.GenPath(o);
      auto check = [&](const PathPtr& c) {
        return CheckComplementToFor(c, tree_seed, trees, max_nodes);
      };
      std::string d = check(p);
      if (!d.empty()) fail_path(p, check, d);
    } else if (kind_str == "identities") {
      ExprGenOptions o = ExprGenOptions::WithIntersect();
      o.max_ops = std::max(2, options.max_ops / 2);
      PathPtr a = gen.GenPath(o);
      PathPtr b = gen.GenPath(o);
      std::string d = CheckAlgebraicIdentities(a, b, tree_seed, trees, max_nodes);
      if (!d.empty()) {
        auto check = [&](const PathPtr& c) {
          return CheckAlgebraicIdentities(c, b, tree_seed, trees, max_nodes);
        };
        fail_path(a, check, d);
        detail += " (second operand: " + ToString(b) + ")";
      }
    } else if (kind_str == "loop-normal-form") {
      ExprGenOptions o = ExprGenOptions::WithIntersect();
      o.max_ops = std::max(2, options.max_ops / 2);
      NodePtr n = gen.GenNode(o);
      auto check = [&](const NodePtr& c) {
        return CheckLoopNormalForm(c, tree_seed, trees, max_nodes);
      };
      std::string d = check(n);
      if (!d.empty()) fail_node(n, check, d);
    } else if (kind_str == "let-elim") {
      ExprGenOptions o = ExprGenOptions::WithIntersect();
      o.max_ops = std::max(2, options.max_ops / 2);
      NodePtr n = gen.GenNode(o);
      auto check = [&](const NodePtr& c) { return CheckLetElim(c, tree_seed, trees, max_nodes); };
      std::string d = check(n);
      if (!d.empty()) fail_node(n, check, d);
    } else if (kind_str == "starfree") {
      StarFreePtr r = gen.GenStarFree(5, {"a", "b"}, 2);
      std::string d = CheckStarFree(r, tree_seed, trees, max_nodes);
      if (!d.empty()) {
        detail = d;
        expr_text = StarFreeToString(r);
      }
    } else if (kind_str == "engines") {
      ExprGenOptions o = ExprGenOptions::WithIntersect();
      o.max_ops = std::min(options.max_ops, 5);
      NodePtr n = gen.GenNode(o);
      std::string d = CheckEngineAgreement(n);
      if (!d.empty()) fail_node(n, CheckEngineAgreement, d);
    } else if (kind_str == "engines-edtd") {
      ExprGenOptions o = ExprGenOptions::DownwardIntersect();
      o.max_ops = std::min(options.max_ops, 5);
      NodePtr n = gen.GenNode(o);
      EdtdGenOptions eo;
      eo.num_types = 2;  // Keeps the Prop. 6 encoding within fuzz budgets.
      Edtd edtd = gen.GenEdtd(eo);
      auto check = [&](const NodePtr& c) { return CheckEngineAgreementWithEdtd(c, edtd); };
      std::string d = check(n);
      if (!d.empty()) {
        fail_node(n, check, d);
        edtd_text = EdtdToText(edtd);
      }
    } else if (kind_str == "fastpath") {
      // Mostly in-fragment inputs (the interesting verdict comparisons),
      // with a steady trickle of richer queries to exercise the
      // route-vs-stamp contract on fallbacks.
      ExprGenOptions o = gen.NextBelow(4) == 0 ? ExprGenOptions::RegularFriendly()
                                               : ExprGenOptions::VerticalConjunctive();
      o.max_ops = std::min(options.max_ops, 6);
      NodePtr n = gen.GenNode(o);
      std::string d = CheckFastPath(n);
      if (!d.empty()) fail_node(n, CheckFastPath, d);
    } else if (kind_str == "fastpath-edtd") {
      ExprGenOptions o = ExprGenOptions::VerticalConjunctive();
      o.max_ops = std::min(options.max_ops, 6);
      NodePtr n = gen.GenNode(o);
      EdtdGenOptions eo;
      // Every other schema is linear (fast-path-eligible); the rest keep
      // unions/duplicates in, forcing the schema-class gate to decline.
      eo.linear_content = gen.NextBelow(2) == 0;
      Edtd edtd = gen.GenEdtd(eo);
      auto check = [&](const NodePtr& c) { return CheckFastPathWithEdtd(c, edtd); };
      std::string d = check(n);
      if (!d.empty()) {
        fail_node(n, check, d);
        edtd_text = EdtdToText(edtd);
      }
    } else if (kind_str == "stream") {
      ExprGenOptions o = ExprGenOptions::Streamable();
      o.max_ops = std::min(options.max_ops, 6);
      const int k = 2 + static_cast<int>(gen.NextBelow(4));  // Bundles of 2-5.
      std::vector<PathPtr> queries;
      queries.reserve(k);
      for (int q = 0; q < k; ++q) queries.push_back(gen.GenPath(o));
      // Half the bundles run schema-relative: the optimizer's root-unsat
      // pruning and the conforming-stream corpus only exist under an EDTD.
      std::optional<Edtd> edtd;
      if (gen.NextBelow(2) == 0) edtd.emplace(gen.GenEdtd(EdtdGenOptions{}));
      std::string d = CheckStreamMatcher(queries, edtd ? &*edtd : nullptr, tree_seed, trees,
                                         max_nodes);
      if (!d.empty()) {
        detail = d;
        for (int q = 0; q < k; ++q) {
          if (q > 0) expr_text += " ; ";
          expr_text += ToString(queries[q]);
        }
        if (edtd) edtd_text = EdtdToText(*edtd);
      }
    } else if (kind_str == "session") {
      ExprGenOptions o = ExprGenOptions::WithIntersect();
      o.max_ops = std::min(options.max_ops, 5);
      NodePtr n = gen.GenNode(o);
      PathPtr a = gen.GenPath(o);
      PathPtr b = gen.GenPath(o);
      std::string d = CheckSessionCoherence(n, a, b);
      if (!d.empty()) {
        detail = d;
        expr_text = ToString(n) + " ; " + ToString(a) + " ; " + ToString(b);
      }
    }

    if (!detail.empty()) {
      // `;` joins the EDTD lines so the failure block stays line-oriented
      // (the corpus loader splits it back).
      std::string edtd_joined;
      for (char c : edtd_text) edtd_joined += c == '\n' ? ';' : c;
      while (!edtd_joined.empty() && edtd_joined.back() == ';') edtd_joined.pop_back();
      report.failures.push_back({kind_str, case_seed, expr_text, detail, edtd_joined});
    }
  }
  return report;
}

}  // namespace xpc
