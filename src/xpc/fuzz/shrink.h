#ifndef XPC_FUZZ_SHRINK_H_
#define XPC_FUZZ_SHRINK_H_

#include <functional>

#include "xpc/xpath/ast.h"

namespace xpc {

/// Predicates for the delta-debugging shrinker: return true if the
/// candidate expression still exhibits the failure under investigation.
using PathPredicate = std::function<bool(const PathPtr&)>;
using NodePredicate = std::function<bool(const NodePtr&)>;

/// Greedy delta-debugging minimizer: repeatedly applies the strictly
/// size-decreasing reduction steps below anywhere in the expression,
/// keeping the first candidate on which `still_fails` holds, until no
/// candidate fails (a local minimum). Reductions per node:
///
///   - binary path operators (/, ∪, ∩, −) → either operand;
///   - α[φ] → α and α[φ] → .[φ];  α* → α;  for $v in α return β → α | β;
///   - ¬φ → φ;  φ∧ψ / φ∨ψ → either conjunct;  ⟨α⟩ → ⊤ (and shrinks of α);
///   - α ≈ β → ⟨α⟩ / ⟨β⟩ (and componentwise shrinks).
///
/// Every step strictly decreases `Size(·)`, so the loop terminates; the
/// result is 1-minimal w.r.t. this reduction set. `still_fails(input)` must
/// be true on entry (callers normally just re-run the failing oracle).
/// `max_steps` bounds the number of *accepted* reductions.
PathPtr ShrinkPath(const PathPtr& failing, const PathPredicate& still_fails,
                   int max_steps = 1000);
NodePtr ShrinkNode(const NodePtr& failing, const NodePredicate& still_fails,
                   int max_steps = 1000);

/// All one-step reductions of an expression (exposed for the shrinker's
/// own tests). Every result has strictly smaller Size(·).
std::vector<PathPtr> PathReductions(const PathPtr& p);
std::vector<NodePtr> NodeReductions(const NodePtr& n);

}  // namespace xpc

#endif  // XPC_FUZZ_SHRINK_H_
