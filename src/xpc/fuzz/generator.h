#ifndef XPC_FUZZ_GENERATOR_H_
#define XPC_FUZZ_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xpc/edtd/edtd.h"
#include "xpc/translate/starfree.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/tree/xml_tree.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Which operators and axes the random expression generator may use — the
/// knob that targets a fuzz oracle at one fragment of the Figure 1 lattice.
/// The presets below match the preconditions of the translations and
/// decision procedures under test.
struct ExprGenOptions {
  /// Budget on operator applications (roughly the syntax-tree size).
  int max_ops = 8;
  /// Labels to draw from. Must avoid the parser's keywords.
  std::vector<std::string> labels = {"a", "b", "c"};
  /// Variable pool for for-loops and ". is $v" tests. Deliberately includes
  /// "f0": the for-elimination's fresh-name discipline must survive inputs
  /// that already use its own naming scheme.
  std::vector<std::string> vars = {"i", "j", "f0"};
  bool allow_union = true;
  bool allow_star = false;        ///< General transitive closure α*.
  bool allow_patheq = false;      ///< α ≈ β.
  bool allow_intersect = false;   ///< α ∩ β.
  bool allow_complement = false;  ///< α − β.
  bool allow_for = false;         ///< for-loops and ". is $v".
  /// Restrict to the ↓ axis (τ and τ*) — the downward fragment.
  bool downward_only = false;
  /// Restrict to the vertical axes: ↓ and ↑ for steps, ↓ only under *.
  bool vertical_only = false;
  /// Suppress ¬ and ∨ in node expressions (positive-conjunctive filters).
  bool conjunctive_only = false;
  /// Suppress ⟨α⟩ / ≈ / "is $v" filters — node expressions are boolean
  /// combinations of label tests only (the streaming matcher's filter
  /// fragment).
  bool label_filters_only = false;

  /// Every operator of CoreXPath(≈, ∩, −, for, *): the parser↔printer
  /// round-trip must hold on the whole language.
  static ExprGenOptions FullSyntax();
  /// CoreXPath(*, ≈) — what ToLoopNormalForm accepts (Theorem 13 engine).
  static ExprGenOptions RegularFriendly();
  /// CoreXPath(*, ∩, ≈) — what the product pipeline accepts (Lemma 16).
  static ExprGenOptions WithIntersect();
  /// CoreXPath↓(∩, ≈) — what the downward engine accepts (Theorem 24).
  static ExprGenOptions DownwardIntersect();
  /// Downward CoreXPath(∩, −) — sound operand set for the Theorem 31
  /// complement-to-for rewriting.
  static ExprGenOptions DownwardComplement();
  /// Positive-conjunctive vertical queries — the habitat of the PTIME fast
  /// paths of src/xpc/classify/ (O5 oracle).
  static ExprGenOptions VerticalConjunctive();
  /// The streaming matcher's fragment (DESIGN.md §2.11): ↓ / ↓* / . / seq /
  /// union / * with label-boolean filters (O6 oracle).
  static ExprGenOptions Streamable();
};

/// Options for random EDTD generation.
struct EdtdGenOptions {
  int num_types = 3;
  /// Concrete labels μ maps to; non-injective μ (a genuine EDTD rather than
  /// a DTD) arises whenever num_types exceeds the alphabet.
  std::vector<std::string> concrete_labels = {"a", "b"};
  /// Emit only duplicate-free, disjunction-free content models (no `|`/`?`;
  /// each abstract label at most once per content) — the schema class the
  /// vertical fast path requires. Recursion only appears under `*`, so every
  /// type stays realizable.
  bool linear_content = false;
};

/// Deterministic (splitmix64-seeded) source of random CoreXPath(X)
/// expressions, star-free expressions, EDTDs and trees for the fuzz
/// oracles. All draws come from one PRNG stream, so a (seed, options) pair
/// fully reproduces a case.
class FuzzGen {
 public:
  explicit FuzzGen(uint64_t seed) : rng_(seed) {}

  /// Random path / node expression within the fragment of `options`.
  PathPtr GenPath(const ExprGenOptions& options);
  NodePtr GenNode(const ExprGenOptions& options);

  /// Random tree with 1..max_nodes nodes over `labels`.
  XmlTree GenTree(int max_nodes, const std::vector<std::string>& labels);

  /// Random EDTD with small content models (ε-biased, so conforming trees
  /// of bounded size usually exist).
  Edtd GenEdtd(const EdtdGenOptions& options);

  /// Random star-free expression with at most `max_complements`
  /// complementations (each one may exponentiate the decision DFA).
  StarFreePtr GenStarFree(int max_ops, const std::vector<std::string>& symbols,
                          int max_complements);

  uint64_t NextU64() { return rng_.NextU64(); }
  uint64_t NextBelow(uint64_t bound) { return rng_.NextBelow(bound); }

 private:
  PathPtr GenPathImpl(const ExprGenOptions& o, int budget, std::vector<std::string>* scope);
  NodePtr GenNodeImpl(const ExprGenOptions& o, int budget, std::vector<std::string>* scope);
  PathPtr GenAtom(const ExprGenOptions& o, std::vector<std::string>* scope);
  Axis GenAxis(const ExprGenOptions& o);
  std::string GenLabel(const ExprGenOptions& o);

  TreeGenerator rng_;
};

}  // namespace xpc

#endif  // XPC_FUZZ_GENERATOR_H_
