#ifndef XPC_PATHAUTO_PATH_AUTOMATON_H_
#define XPC_PATHAUTO_PATH_AUTOMATON_H_

#include "xpc/pathauto/lexpr.h"

namespace xpc {

// Combinators for path automata, mirroring the regular operations used by
// the linear translation of Section 3.1. All take/return owned automata by
// value; tests are shared LExpr pointers.

/// The single-state automaton for "." (init == final).
PathAutomaton PaSelf();

/// A two-state automaton with one move transition.
PathAutomaton PaMove(Move move);

/// A two-state automaton with a single test transition (.[φ]).
PathAutomaton PaTest(LExprPtr test);

/// Concatenation: final(a) —[⊤]→ init(b).
PathAutomaton PaConcat(PathAutomaton a, const PathAutomaton& b);

/// Union with fresh init/final skip states.
PathAutomaton PaUnion(const PathAutomaton& a, const PathAutomaton& b);

/// Reflexive-transitive closure with one fresh state.
PathAutomaton PaStar(const PathAutomaton& a);

/// The converse automaton: reverses every transition (moves become their
/// converses; tests stay) and swaps init/final. Implements β⁻ of Section 3.1
/// at the automaton level.
PathAutomaton PaConverse(const PathAutomaton& a);

/// Adds self-loops on all four basic moves at the final state. Used for
/// ⟨π⟩ = loop(π′) in the proof of Lemma 16, and for the ⟨α⟩-elimination of
/// Section 3.1 (2).
PathAutomaton PaWithFinalSelfLoops(PathAutomaton a);

/// π_E: down-moves*, test φ, up-moves* — loops at the root of the FCNS
/// subtree iff some FCNS-descendant-or-self satisfies φ. At the tree root
/// this is "φ holds somewhere in the tree".
PathAutomaton PaSomewhereBelow(LExprPtr test);

}  // namespace xpc

#endif  // XPC_PATHAUTO_PATH_AUTOMATON_H_
