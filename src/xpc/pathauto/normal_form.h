#ifndef XPC_PATHAUTO_NORMAL_FORM_H_
#define XPC_PATHAUTO_NORMAL_FORM_H_

#include "xpc/pathauto/lexpr.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// The linear normal-form translation of Section 3.1: converts a
/// CoreXPath(*, ≈) node expression into an equivalent CoreXPath_NFA(*, loop)
/// node expression. The four steps of the paper are applied:
///  (1) α ≈ β becomes loop(α/β⁻) (with the syntactic converse);
///  (2) ⟨α⟩ becomes loop(α′) where α′ adds basic-move self-loops at the
///      final state (each basic move keeps the walker inside the tree, and
///      the tree is connected, so the walker can always return);
///  (3) ↓ / ↑ are compiled to ↓₁/→* and ←*/↑₁;
///  (4) path expressions become NFAs over basic moves and tests.
///
/// Returns nullptr if the input uses ∩, −, for, or ". is $i" — those are
/// handled by the translations of Sections 4 and 7, not by this one.
LExprPtr ToLoopNormalForm(const NodePtr& node);

/// Translates a CoreXPath(*, ≈) path expression into a path automaton.
/// Returns (ok, automaton); ok is false on unsupported operators.
std::pair<bool, PathAutomaton> PathToAutomaton(const PathPtr& path);

/// loop(π_E) where π_E walks down (↓₁/→)*, tests φ, and walks back up:
/// true at the FCNS-root of a tree iff φ holds at some node. This is the
/// "satisfiable somewhere" wrapper used by the satisfiability engines.
LExprPtr SomewhereInTree(LExprPtr phi);

/// Loop-normal-form of "every node of the tree satisfies φ" (evaluated at
/// the root): ¬ SomewhereInTree(¬φ).
LExprPtr EverywhereInTree(LExprPtr phi);

/// loop(π) where π first walks up ((↑₁|←)*), then down ((↓₁|→)*), tests φ,
/// and walks back: true at *every* node iff φ holds somewhere in the whole
/// tree (unlike SomewhereInTree, which only inspects the FCNS subtree of
/// the evaluation point).
LExprPtr AnywhereInTree(LExprPtr phi);

/// ¬AnywhereInTree(¬φ): true at every node iff φ holds at all nodes.
/// Position-independent "global axiom" builder (used by Lemma 18).
LExprPtr GloballyInTree(LExprPtr phi);

/// Merges all path automata at the same test-nesting depth into a single
/// automaton (disjoint union of state sets), rewriting loop atoms to the
/// merged automaton's state numbering. Semantics-preserving: loops never
/// cross the disjoint blocks. This collapses the number of strata the
/// satisfiability engine must track to the nesting depth of loop tests,
/// which is what makes formulas with many parallel ⟨α⟩ / ≈ subexpressions
/// tractable.
LExprPtr MergeStrataAutomata(const LExprPtr& expr);

}  // namespace xpc

#endif  // XPC_PATHAUTO_NORMAL_FORM_H_
