#include "xpc/pathauto/normal_form.h"

#include <algorithm>
#include <map>
#include <vector>

#include "xpc/common/stats.h"
#include "xpc/pathauto/path_automaton.h"

namespace xpc {

namespace {

// Builds the automaton for an atomic axis per Section 3.1 (3).
PathAutomaton AxisAutomaton(Axis axis) {
  PathAutomaton a;
  switch (axis) {
    case Axis::kChild: {
      // ↓ = ↓₁/→*.
      int s0 = a.AddState();
      int s1 = a.AddState();
      a.q_init = s0;
      a.q_final = s1;
      a.AddMove(s0, Move::kDown1, s1);
      a.AddMove(s1, Move::kRight, s1);
      return a;
    }
    case Axis::kParent: {
      // ↑ = ←*/↑₁.
      int s0 = a.AddState();
      int s1 = a.AddState();
      a.q_init = s0;
      a.q_final = s1;
      a.AddMove(s0, Move::kLeft, s0);
      a.AddMove(s0, Move::kUp1, s1);
      return a;
    }
    case Axis::kRight:
      return PaMove(Move::kRight);
    case Axis::kLeft:
      return PaMove(Move::kLeft);
  }
  return PaSelf();
}

}  // namespace

std::pair<bool, PathAutomaton> PathToAutomaton(const PathPtr& path) {
  switch (path->kind) {
    case PathKind::kAxis:
      return {true, AxisAutomaton(path->axis)};
    case PathKind::kAxisStar:
      return {true, PaStar(AxisAutomaton(path->axis))};
    case PathKind::kSelf:
      return {true, PaSelf()};
    case PathKind::kSeq: {
      auto [okl, l] = PathToAutomaton(path->left);
      auto [okr, r] = PathToAutomaton(path->right);
      if (!okl || !okr) return {false, PathAutomaton()};
      return {true, PaConcat(std::move(l), r)};
    }
    case PathKind::kUnion: {
      auto [okl, l] = PathToAutomaton(path->left);
      auto [okr, r] = PathToAutomaton(path->right);
      if (!okl || !okr) return {false, PathAutomaton()};
      return {true, PaUnion(l, r)};
    }
    case PathKind::kFilter: {
      auto [okl, l] = PathToAutomaton(path->left);
      LExprPtr test = ToLoopNormalForm(path->filter);
      if (!okl || !test) return {false, PathAutomaton()};
      return {true, PaConcat(std::move(l), PaTest(std::move(test)))};
    }
    case PathKind::kStar: {
      auto [okl, l] = PathToAutomaton(path->left);
      if (!okl) return {false, PathAutomaton()};
      return {true, PaStar(l)};
    }
    case PathKind::kIntersect:
    case PathKind::kComplement:
    case PathKind::kFor:
      return {false, PathAutomaton()};
  }
  return {false, PathAutomaton()};
}

LExprPtr ToLoopNormalForm(const NodePtr& node) {
  StatsTimer timer(Metric::kTranslateLoopNormalForm);
  switch (node->kind) {
    case NodeKind::kLabel:
      return LLabel(node->label);
    case NodeKind::kTrue:
      return LTrue();
    case NodeKind::kNot: {
      LExprPtr a = ToLoopNormalForm(node->child1);
      return a ? LNot(a) : nullptr;
    }
    case NodeKind::kAnd: {
      LExprPtr a = ToLoopNormalForm(node->child1);
      LExprPtr b = ToLoopNormalForm(node->child2);
      return a && b ? LAnd(a, b) : nullptr;
    }
    case NodeKind::kOr: {
      LExprPtr a = ToLoopNormalForm(node->child1);
      LExprPtr b = ToLoopNormalForm(node->child2);
      return a && b ? LOr(a, b) : nullptr;
    }
    case NodeKind::kSome: {
      auto [ok, a] = PathToAutomaton(node->path);
      if (!ok) return nullptr;
      return LLoop(std::make_shared<PathAutomaton>(PaWithFinalSelfLoops(std::move(a))));
    }
    case NodeKind::kPathEq: {
      auto [okl, l] = PathToAutomaton(node->path);
      auto [okr, r] = PathToAutomaton(node->path2);
      if (!okl || !okr) return nullptr;
      return LLoop(std::make_shared<PathAutomaton>(PaConcat(std::move(l), PaConverse(r))));
    }
    case NodeKind::kIsVar:
      return nullptr;
  }
  return nullptr;
}

LExprPtr SomewhereInTree(LExprPtr phi) {
  return LLoop(std::make_shared<PathAutomaton>(PaSomewhereBelow(std::move(phi))));
}

LExprPtr EverywhereInTree(LExprPtr phi) {
  return LNot(SomewhereInTree(LNot(std::move(phi))));
}

LExprPtr AnywhereInTree(LExprPtr phi) {
  auto a = std::make_shared<PathAutomaton>();
  int up = a->AddState();
  int down = a->AddState();
  int back_up = a->AddState();
  int back_down = a->AddState();
  a->q_init = up;
  a->q_final = back_down;
  a->AddMove(up, Move::kUp1, up);
  a->AddMove(up, Move::kLeft, up);
  a->AddTest(up, LTrue(), down);
  a->AddMove(down, Move::kDown1, down);
  a->AddMove(down, Move::kRight, down);
  a->AddTest(down, std::move(phi), back_up);
  a->AddMove(back_up, Move::kUp1, back_up);
  a->AddMove(back_up, Move::kLeft, back_up);
  a->AddTest(back_up, LTrue(), back_down);
  a->AddMove(back_down, Move::kDown1, back_down);
  a->AddMove(back_down, Move::kRight, back_down);
  return LLoop(std::move(a));
}

LExprPtr GloballyInTree(LExprPtr phi) {
  return LNot(AnywhereInTree(LNot(std::move(phi))));
}

namespace {

// Test-nesting depth of an automaton: 1 + max depth of automata in tests.
int AutomatonDepth(const PathAutomaton* a, std::map<const PathAutomaton*, int>* memo);

int ExprDepth(const LExprPtr& e, std::map<const PathAutomaton*, int>* memo) {
  switch (e->kind) {
    case LExpr::Kind::kLabel:
    case LExpr::Kind::kTrue:
      return 0;
    case LExpr::Kind::kNot:
      return ExprDepth(e->a, memo);
    case LExpr::Kind::kAnd:
    case LExpr::Kind::kOr:
      return std::max(ExprDepth(e->a, memo), ExprDepth(e->b, memo));
    case LExpr::Kind::kLoop:
      return AutomatonDepth(e->automaton.get(), memo);
  }
  return 0;
}

int AutomatonDepth(const PathAutomaton* a, std::map<const PathAutomaton*, int>* memo) {
  auto it = memo->find(a);
  if (it != memo->end()) return it->second;
  int inner = 0;
  for (const PathAutomaton::Transition& t : a->transitions) {
    if (t.move == Move::kTest) inner = std::max(inner, ExprDepth(t.test, memo));
  }
  (*memo)[a] = 1 + inner;
  return 1 + inner;
}

struct MergeState {
  std::map<const PathAutomaton*, int> depth_memo;
  // Per original automaton: (merged automaton, state offset).
  std::map<const PathAutomaton*, std::pair<PathAutoPtr, int>> remap;
  std::map<const LExpr*, LExprPtr> expr_memo;
};

LExprPtr RewriteExpr(const LExprPtr& e, MergeState* st) {
  auto it = st->expr_memo.find(e.get());
  if (it != st->expr_memo.end()) return it->second;
  LExprPtr out;
  switch (e->kind) {
    case LExpr::Kind::kLabel:
    case LExpr::Kind::kTrue:
      out = e;
      break;
    case LExpr::Kind::kNot:
      out = LNot(RewriteExpr(e->a, st));
      break;
    case LExpr::Kind::kAnd:
      out = LAnd(RewriteExpr(e->a, st), RewriteExpr(e->b, st));
      break;
    case LExpr::Kind::kOr:
      out = LOr(RewriteExpr(e->a, st), RewriteExpr(e->b, st));
      break;
    case LExpr::Kind::kLoop: {
      const auto& [merged, offset] = st->remap.at(e->automaton.get());
      out = LLoop(merged, e->q_from + offset, e->q_to + offset);
      break;
    }
  }
  st->expr_memo[e.get()] = out;
  return out;
}

}  // namespace

LExprPtr MergeStrataAutomata(const LExprPtr& expr) {
  std::vector<PathAutoPtr> autos = CollectAutomata(expr);
  if (autos.empty()) return expr;

  MergeState st;
  int max_depth = 0;
  for (const PathAutoPtr& a : autos) {
    max_depth = std::max(max_depth, AutomatonDepth(a.get(), &st.depth_memo));
  }

  // Build merged automata depth by depth; tests inside depth-d automata
  // mention only automata of depth < d, whose remap entries already exist.
  for (int d = 1; d <= max_depth; ++d) {
    auto merged = std::make_shared<PathAutomaton>();
    std::vector<const PathAutomaton*> group;
    for (const PathAutoPtr& a : autos) {
      if (st.depth_memo.at(a.get()) != d) continue;
      group.push_back(a.get());
      int offset = merged->num_states;
      merged->num_states += a->num_states;
      st.remap[a.get()] = {merged, offset};
    }
    for (const PathAutomaton* a : group) {
      int offset = st.remap.at(a).second;
      for (const PathAutomaton::Transition& t : a->transitions) {
        if (t.move == Move::kTest) {
          merged->AddTest(t.from + offset, RewriteExpr(t.test, &st), t.to + offset);
        } else {
          merged->AddMove(t.from + offset, t.move, t.to + offset);
        }
      }
    }
  }
  return RewriteExpr(expr, &st);
}

}  // namespace xpc
