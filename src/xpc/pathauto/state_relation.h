#ifndef XPC_PATHAUTO_STATE_RELATION_H_
#define XPC_PATHAUTO_STATE_RELATION_H_

#include <cstdint>
#include <vector>

#include "xpc/common/bits.h"
#include "xpc/common/simd.h"

namespace xpc {

/// A binary relation on path-automaton states (subset of Q × Q), the value
/// domain of the LOOPS summaries of Lemma 11: D(v), U(v) and L(v) are all
/// `StateRel`s.
///
/// Layout (DESIGN.md §2.9): with the data-oriented layout on
/// (`ArenaEnabled()`, the default) — one contiguous word buffer, row-major
/// with a fixed stride of `wpr_` words per row, so union/compose/closure
/// run whole-word over a single allocation (inline or arena-backed via
/// `Bits`) and interned relations in the loop engine's `RelTable` are one
/// flat block each. With `XPC_ARENA=0` — the pre-PR representation, a
/// `std::vector` of per-row `Bits`, every row behind its own allocation;
/// this is the baseline leg the throughput bench measures against. The
/// representation is latched at construction and hidden behind per-row word
/// pointers, so results, ordering and hashes are identical across both
/// (row-major word order makes flat equality/ordering/hashing coincide with
/// per-row chaining) and relations of different vintages mix freely.
class StateRel {
 public:
  StateRel() = default;
  explicit StateRel(int n)
      : n_(n),
        wpr_((static_cast<uint32_t>(n) + 63) >> 6),
        flat_mode_(ArenaEnabled()) {
    if (flat_mode_) {
      flat_ = Bits(static_cast<int>(n * wpr_ * 64));
    } else {
      rows_.assign(n, Bits(n));
    }
  }

  static StateRel Identity(int n) {
    StateRel r(n);
    for (int i = 0; i < n; ++i) r.Set(i, i);
    return r;
  }

  int size() const { return n_; }
  bool Get(int i, int j) const { return (row(i)[j >> 6] >> (j & 63)) & 1; }
  void Set(int i, int j) { row(i)[j >> 6] |= (uint64_t{1} << (j & 63)); }

  bool UnionWith(const StateRel& o) {
    if (flat_mode_ && o.flat_mode_) return flat_.UnionWith(o.flat_);
    bool changed = false;
    for (int i = 0; i < n_; ++i) changed |= UnionRow(row(i), o.row(i), wpr_);
    return changed;
  }

  /// True when the relation is empty (equality with `StateRel(n)` for any
  /// relation of the same dimension, without materializing one).
  bool None() const {
    if (flat_mode_) return flat_.None();
    for (const Bits& r : rows_) {
      if (!r.None()) return false;
    }
    return true;
  }

  /// this ∘ other: for every pair (i, j) ∈ this, dst row i accumulates
  /// other's row j. The inner accumulation is a row-at-a-time OR pass over
  /// the row-major buffer — the dispatched `or_accum` kernel once rows
  /// exceed a cache line (DESIGN.md §2.10), an inlined sweep below that:
  /// per-row work under 64 bytes doesn't buy back the call indirection,
  /// and the inline loop is autovectorizable in place.
  StateRel Compose(const StateRel& other) const {
    StateRel out(n_);
    const uint32_t wpr = wpr_;
    const simd::Kernels& kern = simd::Active();
    const bool wide = wpr > kWideRowWords;
    for (int i = 0; i < n_; ++i) {
      const uint64_t* src = row(i);
      uint64_t* dst = out.row(i);
      for (uint32_t w = 0; w < wpr; ++w) {
        uint64_t bits = src[w];
        while (bits) {
          int j = static_cast<int>(w * 64) + __builtin_ctzll(bits);
          bits &= bits - 1;
          const uint64_t* oj = other.row(j);
          if (wide) {
            kern.or_accum(dst, oj, wpr);
          } else {
            for (uint32_t v = 0; v < wpr; ++v) dst[v] |= oj[v];
          }
        }
      }
    }
    return out;
  }

  /// Reflexive-transitive closure, in place (Warshall with row unions,
  /// iterated to fixpoint — typically 1–2 rounds). Row merges go through
  /// the same dispatched union kernel as `Bits::UnionWith`.
  void CloseReflexiveTransitive() {
    for (int i = 0; i < n_; ++i) Set(i, i);
    const uint32_t wpr = wpr_;
    bool changed = true;
    while (changed) {
      changed = false;
      for (int k = 0; k < n_; ++k) {
        const uint64_t* rk = row(k);
        for (int i = 0; i < n_; ++i) {
          if (i == k || !Get(i, k)) continue;
          changed |= UnionRow(row(i), rk, wpr);
        }
      }
    }
  }

  friend bool operator==(const StateRel& a, const StateRel& b) {
    if (a.n_ != b.n_) return false;
    if (a.flat_mode_ && b.flat_mode_) return a.flat_ == b.flat_;
    for (int i = 0; i < a.n_; ++i) {
      const uint64_t* aw = a.row(i);
      const uint64_t* bw = b.row(i);
      for (uint32_t v = 0; v < a.wpr_; ++v) {
        if (aw[v] != bw[v]) return false;
      }
    }
    return true;
  }
  friend bool operator<(const StateRel& a, const StateRel& b) {
    if (a.n_ != b.n_) return a.n_ < b.n_;
    if (a.flat_mode_ && b.flat_mode_) return a.flat_ < b.flat_;
    for (int i = 0; i < a.n_; ++i) {
      const uint64_t* aw = a.row(i);
      const uint64_t* bw = b.row(i);
      for (uint32_t v = 0; v < a.wpr_; ++v) {
        if (aw[v] != bw[v]) return aw[v] < bw[v];
      }
    }
    return false;
  }

  size_t Hash() const {
    if (flat_mode_) return flat_.Hash() * 1099511628211ULL + static_cast<size_t>(n_);
    // Chain the FNV mix across rows in row order: same value as hashing the
    // flat row-major buffer, so interning is representation-independent.
    size_t h = 0xcbf29ce484222325ULL;
    for (const Bits& r : rows_) {
      const uint64_t* w = r.cwords();
      for (uint32_t i = 0; i < r.num_words(); ++i) {
        h ^= w[i];
        h *= 0x100000001b3ULL;
      }
    }
    return h * 1099511628211ULL + static_cast<size_t>(n_);
  }

 private:
  /// Rows up to this many words (one 64-byte cache line) are swept by the
  /// inlined loops; longer rows go through the dispatched kernels. Mirrors
  /// the NFA multi-word step cutoff in automata/nfa.cc.
  static constexpr uint32_t kWideRowWords = 8;

  /// One row-union with change tracking: dispatched on wide rows,
  /// branch-free inline otherwise.
  static bool UnionRow(uint64_t* w, const uint64_t* ow, uint32_t wpr) {
    if (wpr > kWideRowWords) return simd::Active().union_with(w, ow, wpr);
    uint64_t diff = 0;
    for (uint32_t v = 0; v < wpr; ++v) {
      uint64_t merged = w[v] | ow[v];
      diff |= merged ^ w[v];
      w[v] = merged;
    }
    return diff != 0;
  }

  /// Word block of row i (`wpr_` words). One pointer add in flat mode; a
  /// per-row object hop in the pre-PR representation.
  uint64_t* row(int i) {
    return flat_mode_ ? flat_.words() + static_cast<size_t>(i) * wpr_
                      : rows_[i].words();
  }
  const uint64_t* row(int i) const {
    return flat_mode_ ? flat_.cwords() + static_cast<size_t>(i) * wpr_
                      : rows_[i].cwords();
  }

  int n_ = 0;
  uint32_t wpr_ = 0;        // Words per row.
  bool flat_mode_ = true;   // Latched at construction from ArenaEnabled().
  Bits flat_;               // Flat mode: n_ rows × wpr_ words, row-major.
  std::vector<Bits> rows_;  // Pre-PR mode: one Bits per row.
};

/// Hash functor for `std::unordered_map<StateRel, ...>` keys (the interning
/// tables of the loop-sat engine hash-cons every relation they see).
struct StateRelHash {
  size_t operator()(const StateRel& r) const { return r.Hash(); }
};

}  // namespace xpc

#endif  // XPC_PATHAUTO_STATE_RELATION_H_
