#ifndef XPC_PATHAUTO_STATE_RELATION_H_
#define XPC_PATHAUTO_STATE_RELATION_H_

#include <vector>

#include "xpc/common/bits.h"

namespace xpc {

/// A binary relation on path-automaton states (subset of Q × Q), the value
/// domain of the LOOPS summaries of Lemma 11: D(v), U(v) and L(v) are all
/// `StateRel`s. Small dense boolean matrices with rows stored as `Bits`.
class StateRel {
 public:
  StateRel() = default;
  explicit StateRel(int n) : n_(n), rows_(n, Bits(n)) {}

  static StateRel Identity(int n) {
    StateRel r(n);
    for (int i = 0; i < n; ++i) r.Set(i, i);
    return r;
  }

  int size() const { return n_; }
  bool Get(int i, int j) const { return rows_[i].Get(j); }
  void Set(int i, int j) { rows_[i].Set(j); }

  bool UnionWith(const StateRel& o) {
    bool changed = false;
    for (int i = 0; i < n_; ++i) changed |= rows_[i].UnionWith(o.rows_[i]);
    return changed;
  }

  /// this ∘ other.
  StateRel Compose(const StateRel& other) const {
    StateRel out(n_);
    for (int i = 0; i < n_; ++i) {
      rows_[i].ForEach([&](int j) { out.rows_[i].UnionWith(other.rows_[j]); });
    }
    return out;
  }

  /// Reflexive-transitive closure, in place (Warshall).
  void CloseReflexiveTransitive() {
    for (int i = 0; i < n_; ++i) rows_[i].Set(i);
    for (int k = 0; k < n_; ++k) {
      for (int i = 0; i < n_; ++i) {
        if (rows_[i].Get(k)) rows_[i].UnionWith(rows_[k]);
      }
    }
    // One Warshall sweep with row-unions is enough only if iterated to
    // fixpoint; iterate until stable (typically 1–2 rounds).
    bool changed = true;
    while (changed) {
      changed = false;
      for (int k = 0; k < n_; ++k) {
        for (int i = 0; i < n_; ++i) {
          if (rows_[i].Get(k)) changed |= rows_[i].UnionWith(rows_[k]);
        }
      }
    }
  }

  friend bool operator==(const StateRel& a, const StateRel& b) {
    return a.n_ == b.n_ && a.rows_ == b.rows_;
  }
  friend bool operator<(const StateRel& a, const StateRel& b) {
    if (a.n_ != b.n_) return a.n_ < b.n_;
    return a.rows_ < b.rows_;
  }

  size_t Hash() const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Bits& row : rows_) h = h * 1099511628211ULL + row.Hash();
    return h;
  }

 private:
  int n_ = 0;
  std::vector<Bits> rows_;
};

/// Hash functor for `std::unordered_map<StateRel, ...>` keys (the interning
/// tables of the loop-sat engine hash-cons every relation they see).
struct StateRelHash {
  size_t operator()(const StateRel& r) const { return r.Hash(); }
};

}  // namespace xpc

#endif  // XPC_PATHAUTO_STATE_RELATION_H_
