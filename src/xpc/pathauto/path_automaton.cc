#include "xpc/pathauto/path_automaton.h"

namespace xpc {

namespace {

// Appends a copy of `src` to `dst`, returning the state-index offset.
int CopyInto(const PathAutomaton& src, PathAutomaton* dst) {
  int offset = dst->num_states;
  dst->num_states += src.num_states;
  for (const PathAutomaton::Transition& t : src.transitions) {
    dst->transitions.push_back({t.from + offset, t.move, t.test, t.to + offset});
  }
  return offset;
}

}  // namespace

PathAutomaton PaSelf() {
  PathAutomaton a;
  int s = a.AddState();
  a.q_init = a.q_final = s;
  return a;
}

PathAutomaton PaMove(Move move) {
  PathAutomaton a;
  int s0 = a.AddState();
  int s1 = a.AddState();
  a.q_init = s0;
  a.q_final = s1;
  a.AddMove(s0, move, s1);
  return a;
}

PathAutomaton PaTest(LExprPtr test) {
  PathAutomaton a;
  int s0 = a.AddState();
  int s1 = a.AddState();
  a.q_init = s0;
  a.q_final = s1;
  a.AddTest(s0, std::move(test), s1);
  return a;
}

PathAutomaton PaConcat(PathAutomaton a, const PathAutomaton& b) {
  int offset = CopyInto(b, &a);
  a.AddTest(a.q_final, LTrue(), b.q_init + offset);  // "Skip" transition.
  a.q_final = b.q_final + offset;
  return a;
}

PathAutomaton PaUnion(const PathAutomaton& a, const PathAutomaton& b) {
  PathAutomaton out;
  int init = out.AddState();
  int fin = out.AddState();
  out.q_init = init;
  out.q_final = fin;
  int oa = CopyInto(a, &out);
  int ob = CopyInto(b, &out);
  out.AddTest(init, LTrue(), a.q_init + oa);
  out.AddTest(init, LTrue(), b.q_init + ob);
  out.AddTest(a.q_final + oa, LTrue(), fin);
  out.AddTest(b.q_final + ob, LTrue(), fin);
  return out;
}

PathAutomaton PaStar(const PathAutomaton& a) {
  PathAutomaton out;
  int hub = out.AddState();
  out.q_init = out.q_final = hub;
  int oa = CopyInto(a, &out);
  out.AddTest(hub, LTrue(), a.q_init + oa);
  out.AddTest(a.q_final + oa, LTrue(), hub);
  return out;
}

PathAutomaton PaConverse(const PathAutomaton& a) {
  PathAutomaton out;
  out.num_states = a.num_states;
  out.q_init = a.q_final;
  out.q_final = a.q_init;
  for (const PathAutomaton::Transition& t : a.transitions) {
    out.transitions.push_back({t.to, ConverseMove(t.move), t.test, t.from});
  }
  return out;
}

PathAutomaton PaWithFinalSelfLoops(PathAutomaton a) {
  for (Move m : {Move::kDown1, Move::kUp1, Move::kRight, Move::kLeft}) {
    a.AddMove(a.q_final, m, a.q_final);
  }
  return a;
}

PathAutomaton PaSomewhereBelow(LExprPtr test) {
  PathAutomaton a;
  int s0 = a.AddState();
  int s1 = a.AddState();
  a.q_init = s0;
  a.q_final = s1;
  a.AddMove(s0, Move::kDown1, s0);
  a.AddMove(s0, Move::kRight, s0);
  a.AddTest(s0, std::move(test), s1);
  a.AddMove(s1, Move::kUp1, s1);
  a.AddMove(s1, Move::kLeft, s1);
  return a;
}

}  // namespace xpc
