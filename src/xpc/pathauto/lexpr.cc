#include "xpc/pathauto/lexpr.h"

#include <set>
#include <sstream>

namespace xpc {

Move ConverseMove(Move move) {
  switch (move) {
    case Move::kDown1: return Move::kUp1;
    case Move::kUp1: return Move::kDown1;
    case Move::kRight: return Move::kLeft;
    case Move::kLeft: return Move::kRight;
    case Move::kTest: return Move::kTest;
  }
  return Move::kTest;
}

namespace {
LExprPtr Make(LExpr::Kind kind) {
  auto e = std::make_shared<LExpr>();
  e->kind = kind;
  return e;
}
}  // namespace

LExprPtr LLabel(const std::string& label) {
  auto e = Make(LExpr::Kind::kLabel);
  std::const_pointer_cast<LExpr>(e)->label = label;
  return e;
}

LExprPtr LTrue() { return Make(LExpr::Kind::kTrue); }

LExprPtr LFalse() { return LNot(LTrue()); }

LExprPtr LNot(LExprPtr a) {
  if (a->kind == LExpr::Kind::kNot) return a->a;  // Collapse double negation.
  auto e = Make(LExpr::Kind::kNot);
  std::const_pointer_cast<LExpr>(e)->a = std::move(a);
  return e;
}

LExprPtr LAnd(LExprPtr a, LExprPtr b) {
  auto e = Make(LExpr::Kind::kAnd);
  auto m = std::const_pointer_cast<LExpr>(e);
  m->a = std::move(a);
  m->b = std::move(b);
  return e;
}

LExprPtr LAndAll(std::vector<LExprPtr> parts) {
  if (parts.empty()) return LTrue();
  LExprPtr acc = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) acc = LAnd(acc, parts[i]);
  return acc;
}

LExprPtr LOr(LExprPtr a, LExprPtr b) {
  auto e = Make(LExpr::Kind::kOr);
  auto m = std::const_pointer_cast<LExpr>(e);
  m->a = std::move(a);
  m->b = std::move(b);
  return e;
}

LExprPtr LOrAll(std::vector<LExprPtr> parts) {
  if (parts.empty()) return LFalse();
  LExprPtr acc = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) acc = LOr(acc, parts[i]);
  return acc;
}

LExprPtr LLoop(PathAutoPtr automaton, int q_from, int q_to) {
  auto e = Make(LExpr::Kind::kLoop);
  auto m = std::const_pointer_cast<LExpr>(e);
  m->automaton = std::move(automaton);
  m->q_from = q_from;
  m->q_to = q_to;
  return e;
}

LExprPtr LLoop(PathAutoPtr automaton) {
  int qi = automaton->q_init;
  int qf = automaton->q_final;
  return LLoop(std::move(automaton), qi, qf);
}

int SizeOf(const LExprPtr& expr) {
  switch (expr->kind) {
    case LExpr::Kind::kLabel:
    case LExpr::Kind::kTrue:
      return 1;
    case LExpr::Kind::kNot:
      return 1 + SizeOf(expr->a);
    case LExpr::Kind::kAnd:
    case LExpr::Kind::kOr:
      return 1 + SizeOf(expr->a) + SizeOf(expr->b);
    case LExpr::Kind::kLoop:
      return 1 + SizeOf(*expr->automaton);
  }
  return 0;
}

int SizeOf(const PathAutomaton& automaton) {
  int size = automaton.num_states;
  for (const PathAutomaton::Transition& t : automaton.transitions) {
    if (t.move == Move::kTest) size += SizeOf(t.test);
  }
  return size;
}

namespace {

const char* MoveName(Move m) {
  switch (m) {
    case Move::kDown1: return "d1";
    case Move::kUp1: return "u1";
    case Move::kRight: return "r";
    case Move::kLeft: return "l";
    case Move::kTest: return "test";
  }
  return "?";
}

void Print(const LExprPtr& e, std::ostringstream* os) {
  switch (e->kind) {
    case LExpr::Kind::kLabel:
      *os << e->label;
      break;
    case LExpr::Kind::kTrue:
      *os << "true";
      break;
    case LExpr::Kind::kNot:
      *os << "not(";
      Print(e->a, os);
      *os << ')';
      break;
    case LExpr::Kind::kAnd:
      *os << '(';
      Print(e->a, os);
      *os << " and ";
      Print(e->b, os);
      *os << ')';
      break;
    case LExpr::Kind::kOr:
      *os << '(';
      Print(e->a, os);
      *os << " or ";
      Print(e->b, os);
      *os << ')';
      break;
    case LExpr::Kind::kLoop:
      *os << "loop(A" << e->automaton.get() << "[" << e->q_from << "->" << e->q_to << "])";
      break;
  }
}

void Collect(const LExprPtr& e, std::set<const PathAutomaton*>* seen,
             std::vector<PathAutoPtr>* out) {
  switch (e->kind) {
    case LExpr::Kind::kLabel:
    case LExpr::Kind::kTrue:
      return;
    case LExpr::Kind::kNot:
      Collect(e->a, seen, out);
      return;
    case LExpr::Kind::kAnd:
    case LExpr::Kind::kOr:
      Collect(e->a, seen, out);
      Collect(e->b, seen, out);
      return;
    case LExpr::Kind::kLoop: {
      if (seen->count(e->automaton.get())) return;
      seen->insert(e->automaton.get());
      // Inner automata (in tests) first: postorder gives stratification.
      for (const PathAutomaton::Transition& t : e->automaton->transitions) {
        if (t.move == Move::kTest) Collect(t.test, seen, out);
      }
      out->push_back(e->automaton);
      return;
    }
  }
}

void CollectLbl(const LExprPtr& e, std::set<const PathAutomaton*>* seen,
                std::set<std::string>* out) {
  switch (e->kind) {
    case LExpr::Kind::kLabel:
      out->insert(e->label);
      return;
    case LExpr::Kind::kTrue:
      return;
    case LExpr::Kind::kNot:
      CollectLbl(e->a, seen, out);
      return;
    case LExpr::Kind::kAnd:
    case LExpr::Kind::kOr:
      CollectLbl(e->a, seen, out);
      CollectLbl(e->b, seen, out);
      return;
    case LExpr::Kind::kLoop:
      if (seen->count(e->automaton.get())) return;
      seen->insert(e->automaton.get());
      for (const PathAutomaton::Transition& t : e->automaton->transitions) {
        if (t.move == Move::kTest) CollectLbl(t.test, seen, out);
      }
      return;
  }
}

}  // namespace

std::string LExprToString(const LExprPtr& expr) {
  std::ostringstream os;
  Print(expr, &os);
  return os.str();
}

std::string AutomatonToString(const PathAutomaton& automaton) {
  std::ostringstream os;
  os << "states=" << automaton.num_states << " init=" << automaton.q_init
     << " final=" << automaton.q_final << "\n";
  for (const PathAutomaton::Transition& t : automaton.transitions) {
    os << "  " << t.from << " --" << MoveName(t.move);
    if (t.move == Move::kTest) os << "[" << LExprToString(t.test) << "]";
    os << "--> " << t.to << "\n";
  }
  return os.str();
}

std::vector<PathAutoPtr> CollectAutomata(const LExprPtr& expr) {
  std::set<const PathAutomaton*> seen;
  std::vector<PathAutoPtr> out;
  Collect(expr, &seen, &out);
  return out;
}

std::vector<std::string> CollectLabels(const LExprPtr& expr) {
  std::set<const PathAutomaton*> seen;
  std::set<std::string> labels;
  CollectLbl(expr, &seen, &labels);
  return std::vector<std::string>(labels.begin(), labels.end());
}

}  // namespace xpc
