#ifndef XPC_PATHAUTO_LEXPR_H_
#define XPC_PATHAUTO_LEXPR_H_

#include <memory>
#include <string>
#include <vector>

namespace xpc {

struct LExpr;
struct PathAutomaton;
using LExprPtr = std::shared_ptr<const LExpr>;
using PathAutoPtr = std::shared_ptr<const PathAutomaton>;

/// The basic moves of a path automaton (Definition 7): the FCNS edges plus
/// node-expression tests. ↓ and ↑ of CoreXPath are compiled to first-child /
/// next-sibling sequences (Section 3.1, step (3)).
enum class Move {
  kDown1,  ///< ↓₁ — to the first child.
  kUp1,    ///< ↑₁ — from a first child to its parent.
  kRight,  ///< →  — to the next sibling.
  kLeft,   ///< ←  — to the previous sibling.
  kTest,   ///< .[φ] — stay and test.
};

/// The converse move (↓₁ ↔ ↑₁, → ↔ ←). `kTest` is self-converse.
Move ConverseMove(Move move);

/// A path automaton (Definition 7): an NFA over basic moves and tests, with
/// one initial and one final state. Loops of these automata are the only
/// path-observation primitive of CoreXPath_NFA(*, loop).
struct PathAutomaton {
  struct Transition {
    int from;
    Move move;
    LExprPtr test;  // Only for Move::kTest.
    int to;
  };

  int num_states = 0;
  int q_init = 0;
  int q_final = 0;
  std::vector<Transition> transitions;

  int AddState() { return num_states++; }
  void AddMove(int from, Move move, int to) { transitions.push_back({from, move, nullptr, to}); }
  void AddTest(int from, LExprPtr test, int to) {
    transitions.push_back({from, Move::kTest, std::move(test), to});
  }
};

/// A node expression of CoreXPath_NFA(*, loop) (Definition 7):
///     φ ::= p | loop(π_{q,q'}) | ⊤ | ¬φ | φ∧ψ | φ∨ψ
/// `kLoop` carries explicit (q_from, q_to) endpoints so that the
/// sub-automata loop(π_{q,q'}) of cl(φ') (Section 3.3) are expressible by
/// sharing a single automaton.
struct LExpr {
  enum class Kind { kLabel, kTrue, kNot, kAnd, kOr, kLoop };
  Kind kind;
  std::string label;        // kLabel.
  LExprPtr a, b;            // kNot (a); kAnd/kOr (a, b).
  PathAutoPtr automaton;    // kLoop.
  int q_from = 0, q_to = 0; // kLoop.
};

/// Constructors.
LExprPtr LLabel(const std::string& label);
LExprPtr LTrue();
LExprPtr LFalse();
LExprPtr LNot(LExprPtr a);
LExprPtr LAnd(LExprPtr a, LExprPtr b);
LExprPtr LAndAll(std::vector<LExprPtr> parts);
LExprPtr LOr(LExprPtr a, LExprPtr b);
LExprPtr LOrAll(std::vector<LExprPtr> parts);
LExprPtr LLoop(PathAutoPtr automaton, int q_from, int q_to);
/// loop(π_{q_init, q_final}).
LExprPtr LLoop(PathAutoPtr automaton);

/// Size measures per Section 3.1: |π| = |Q| + Σ sizes of test expressions;
/// |loop(π)| = |π| + 1, etc.
int SizeOf(const LExprPtr& expr);
int SizeOf(const PathAutomaton& automaton);

/// Debug rendering.
std::string LExprToString(const LExprPtr& expr);
std::string AutomatonToString(const PathAutomaton& automaton);

/// All distinct path automata reachable from `expr` (deduplicated by
/// pointer), in a topological order such that the tests of each automaton
/// refer only to automata earlier in the list. This is the stratification
/// used by the loop evaluator and the satisfiability engine.
std::vector<PathAutoPtr> CollectAutomata(const LExprPtr& expr);

/// All labels mentioned in the expression (including inside automata tests).
std::vector<std::string> CollectLabels(const LExprPtr& expr);

}  // namespace xpc

#endif  // XPC_PATHAUTO_LEXPR_H_
