#ifndef XPC_TREE_TREE_TEXT_H_
#define XPC_TREE_TREE_TEXT_H_

#include <string>

#include "xpc/common/result.h"
#include "xpc/tree/xml_tree.h"

namespace xpc {

/// Parses a tree from the compact term notation
///
///     tree  ::= node
///     node  ::= labels [ '(' node (',' node)* ')' ]
///     labels::= ident ('+' ident)*        // '+' separates multi-labels
///
/// e.g. `"book(chapter(section,section(image)),chapter)"`, or, with
/// multi-labels, `"r(a+c0,b+c0+c1)"`.
Result<XmlTree> ParseTree(const std::string& text);

/// Serializes a tree back into the notation accepted by `ParseTree`.
std::string TreeToText(const XmlTree& tree);

/// Serializes a tree as indented XML-style markup (for human inspection).
std::string TreeToXml(const XmlTree& tree);

}  // namespace xpc

#endif  // XPC_TREE_TREE_TEXT_H_
