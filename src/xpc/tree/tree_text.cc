#include "xpc/tree/tree_text.h"

#include <cctype>
#include <sstream>

namespace xpc {

namespace {

// Recursive-descent parser over `text`. `pos` is the cursor.
class TreeParser {
 public:
  explicit TreeParser(const std::string& text) : text_(text) {}

  Result<XmlTree> Parse() {
    SkipSpace();
    auto labels = ParseLabels();
    if (labels.empty()) return Result<XmlTree>::Error(ErrorAt("expected label"));
    XmlTree tree(labels);
    if (!ParseChildren(&tree, tree.root())) {
      return Result<XmlTree>::Error(error_);
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Result<XmlTree>::Error(ErrorAt("trailing input"));
    }
    return tree;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool IsLabelChar(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
           c == '.' || c == '#' || c == '$' || c == '@' || c == '!' || c == '%' ||
           c == '\'';
  }

  std::string ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsLabelChar(text_[pos_])) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  std::vector<std::string> ParseLabels() {
    std::vector<std::string> labels;
    std::string first = ParseIdent();
    if (first.empty()) return labels;
    labels.push_back(first);
    SkipSpace();
    while (pos_ < text_.size() && text_[pos_] == '+') {
      ++pos_;
      std::string next = ParseIdent();
      if (next.empty()) return {};
      labels.push_back(next);
      SkipSpace();
    }
    return labels;
  }

  // Parses an optional parenthesized child list, attaching under `parent`.
  bool ParseChildren(XmlTree* tree, NodeId parent) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') return true;
    ++pos_;  // '('
    while (true) {
      auto labels = ParseLabels();
      if (labels.empty()) {
        error_ = ErrorAt("expected label in child list");
        return false;
      }
      NodeId child = tree->AddChild(parent, std::move(labels));
      if (!ParseChildren(tree, child)) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
        return true;
      }
      error_ = ErrorAt("expected ',' or ')'");
      return false;
    }
  }

  std::string ErrorAt(const std::string& what) {
    std::ostringstream os;
    os << "tree parse error at offset " << pos_ << ": " << what;
    return os.str();
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

void WriteNode(const XmlTree& tree, NodeId n, std::ostringstream* os) {
  const auto& ls = tree.labels(n);
  for (size_t i = 0; i < ls.size(); ++i) {
    if (i > 0) *os << '+';
    *os << ls[i];
  }
  auto children = tree.Children(n);
  if (!children.empty()) {
    *os << '(';
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) *os << ',';
      WriteNode(tree, children[i], os);
    }
    *os << ')';
  }
}

void WriteXmlNode(const XmlTree& tree, NodeId n, int indent, std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  auto children = tree.Children(n);
  if (children.empty()) {
    *os << '<' << tree.label(n) << "/>\n";
    return;
  }
  *os << '<' << tree.label(n) << ">\n";
  for (NodeId c : children) WriteXmlNode(tree, c, indent + 1, os);
  for (int i = 0; i < indent; ++i) *os << "  ";
  *os << "</" << tree.label(n) << ">\n";
}

}  // namespace

Result<XmlTree> ParseTree(const std::string& text) {
  TreeParser parser(text);
  return parser.Parse();
}

std::string TreeToText(const XmlTree& tree) {
  std::ostringstream os;
  WriteNode(tree, tree.root(), &os);
  return os.str();
}

std::string TreeToXml(const XmlTree& tree) {
  std::ostringstream os;
  WriteXmlNode(tree, tree.root(), 0, &os);
  return os.str();
}

}  // namespace xpc
