#ifndef XPC_TREE_TREE_GENERATOR_H_
#define XPC_TREE_TREE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xpc/tree/xml_tree.h"

namespace xpc {

/// Options for random tree generation.
struct TreeGenOptions {
  /// Target number of nodes (the result has exactly this many).
  int num_nodes = 10;
  /// Labels to draw from, uniformly.
  std::vector<std::string> alphabet = {"a", "b", "c"};
  /// If > 0, each node independently receives between 1 and this many
  /// distinct labels (multi-label trees of Section 6.1). If 0, single labels.
  int max_extra_labels = 0;
};

/// Deterministic pseudo-random tree generator (splitmix64-seeded) producing
/// uniformly shaped random ordered trees: each new node's parent is drawn
/// uniformly from the existing nodes, which yields random recursive trees.
class TreeGenerator {
 public:
  explicit TreeGenerator(uint64_t seed) : state_(seed) {}

  /// Generates a random tree per `options`.
  XmlTree Generate(const TreeGenOptions& options);

  /// Generates a random "word tree": a unary chain of `length + 1` nodes
  /// (used for the succinctness experiments over T^1_{p,q}).
  XmlTree GenerateChain(int length, const std::vector<std::string>& alphabet);

  /// Next raw pseudo-random value.
  uint64_t NextU64();

  /// Uniform value in [0, bound).
  uint64_t NextBelow(uint64_t bound);

 private:
  uint64_t state_;
};

/// Enumerates *all* ordered trees with exactly `num_nodes` nodes and labels
/// drawn from `alphabet` (every label assignment). Used by the bounded
/// satisfiability engine and as an exhaustive oracle in tests.
///
/// The number of shapes is the Catalan number C(num_nodes-1); callers should
/// keep `num_nodes` small (<= 7) and alphabets tiny.
std::vector<XmlTree> EnumerateTrees(int num_nodes, const std::vector<std::string>& alphabet);

/// Enumerates only the tree *shapes* (all labels equal to `label`).
std::vector<XmlTree> EnumerateShapes(int num_nodes, const std::string& label);

}  // namespace xpc

#endif  // XPC_TREE_TREE_GENERATOR_H_
