#include "xpc/tree/tree_generator.h"

#include <cassert>
#include <functional>

namespace xpc {

namespace {

// A tree shape in "parent vector" form: shape[i] is the parent of node i,
// with shape[0] == kNoNode; parents always precede children, and children of
// a node are added in sibling order.
using Shape = std::vector<NodeId>;

// Enumerates all ordered-forest shapes with `n` nodes appended under
// `parent`, invoking `emit` for each completed assignment. `shape` holds the
// partial parent vector; nodes are appended depth-first left-to-right so the
// parent-vector discipline above holds.
void EnumerateForest(int n, NodeId parent, Shape* shape,
                     const std::function<void()>& emit) {
  if (n == 0) {
    emit();
    return;
  }
  // First subtree has j nodes (1 <= j <= n); its root is the next child of
  // `parent`; the remaining n - j nodes form the rest of the forest.
  for (int j = 1; j <= n; ++j) {
    const NodeId root = static_cast<NodeId>(shape->size());
    shape->push_back(parent);
    EnumerateForest(j - 1, root, shape, [&]() {
      EnumerateForest(n - j, parent, shape, emit);
    });
    shape->resize(root);
    // The recursive calls above restore shape before returning here only for
    // the inner forests; remove this subtree's root explicitly.
  }
}

XmlTree ShapeToTree(const Shape& shape, const std::vector<std::string>& labels) {
  XmlTree tree(labels[0]);
  for (size_t i = 1; i < shape.size(); ++i) {
    tree.AddChild(shape[i], labels[i]);
  }
  return tree;
}

}  // namespace

uint64_t TreeGenerator::NextU64() {
  // splitmix64.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t TreeGenerator::NextBelow(uint64_t bound) {
  assert(bound > 0);
  return NextU64() % bound;
}

XmlTree TreeGenerator::Generate(const TreeGenOptions& options) {
  assert(options.num_nodes >= 1);
  assert(!options.alphabet.empty());
  auto pick_labels = [&]() {
    std::vector<std::string> out;
    out.push_back(options.alphabet[NextBelow(options.alphabet.size())]);
    if (options.max_extra_labels > 0) {
      int extra = static_cast<int>(NextBelow(options.max_extra_labels + 1));
      for (int i = 0; i < extra; ++i) {
        const std::string& l = options.alphabet[NextBelow(options.alphabet.size())];
        bool dup = false;
        for (const auto& have : out) dup = dup || have == l;
        if (!dup) out.push_back(l);
      }
    }
    return out;
  };
  XmlTree tree(pick_labels());
  for (int i = 1; i < options.num_nodes; ++i) {
    NodeId parent = static_cast<NodeId>(NextBelow(tree.size()));
    tree.AddChild(parent, pick_labels());
  }
  return tree;
}

XmlTree TreeGenerator::GenerateChain(int length, const std::vector<std::string>& alphabet) {
  assert(!alphabet.empty());
  XmlTree tree(alphabet[NextBelow(alphabet.size())]);
  NodeId cur = tree.root();
  for (int i = 0; i < length; ++i) {
    cur = tree.AddChild(cur, alphabet[NextBelow(alphabet.size())]);
  }
  return tree;
}

std::vector<XmlTree> EnumerateShapes(int num_nodes, const std::string& label) {
  assert(num_nodes >= 1);
  std::vector<XmlTree> out;
  Shape shape;
  shape.push_back(kNoNode);
  std::vector<std::string> labels(num_nodes, label);
  EnumerateForest(num_nodes - 1, 0, &shape, [&]() {
    out.push_back(ShapeToTree(shape, labels));
  });
  return out;
}

std::vector<XmlTree> EnumerateTrees(int num_nodes, const std::vector<std::string>& alphabet) {
  assert(!alphabet.empty());
  std::vector<XmlTree> shapes = EnumerateShapes(num_nodes, alphabet[0]);
  std::vector<XmlTree> out;
  const int k = static_cast<int>(alphabet.size());
  std::vector<int> assign(num_nodes, 0);
  for (const XmlTree& shape : shapes) {
    std::fill(assign.begin(), assign.end(), 0);
    while (true) {
      XmlTree tree(alphabet[assign[0]]);
      for (NodeId n = 1; n < shape.size(); ++n) {
        tree.AddChild(shape.parent(n), alphabet[assign[n]]);
      }
      out.push_back(std::move(tree));
      // Advance the label assignment odometer.
      int i = 0;
      while (i < num_nodes && ++assign[i] == k) {
        assign[i] = 0;
        ++i;
      }
      if (i == num_nodes) break;
    }
  }
  return out;
}

}  // namespace xpc
