#ifndef XPC_TREE_XML_TREE_H_
#define XPC_TREE_XML_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xpc {

/// Index of a node within an `XmlTree`. Nodes are numbered in creation
/// order; the root is always node 0.
using NodeId = int32_t;

/// Sentinel for "no node" (absent parent / child / sibling).
inline constexpr NodeId kNoNode = -1;

/// A finite, rooted, sibling-ordered, node-labeled tree — the XML tree of
/// Definition 1 of ten Cate & Lutz. As in the paper we abstract away from
/// attributes and data values; only element labels remain.
///
/// Nodes may carry *multiple* labels, which models the "XML trees with
/// multi-labels" of Section 6.1 (Lemma 25). Ordinary XML trees have exactly
/// one label per node; `IsSingleLabeled()` reports whether that discipline
/// holds.
///
/// The class exposes both the unranked structure (parent / ordered children)
/// and the first-child/next-sibling (FCNS) binary view used by the automata
/// and satisfiability machinery: the *basic axes* of CoreXPath_NFA(*, loop)
/// (first child, its inverse, next sibling, previous sibling) are exactly the
/// FCNS edges.
class XmlTree {
 public:
  /// Creates a tree consisting of a single root with the given label.
  explicit XmlTree(const std::string& root_label);

  /// Creates a tree consisting of a single root with the given label set.
  explicit XmlTree(std::vector<std::string> root_labels);

  /// Appends a new node as the last child of `parent` and returns its id.
  NodeId AddChild(NodeId parent, const std::string& label);

  /// Appends a new multi-labeled node as the last child of `parent`.
  NodeId AddChild(NodeId parent, std::vector<std::string> labels);

  /// Number of nodes.
  int size() const { return static_cast<int>(parent_.size()); }

  /// The root node (always 0).
  NodeId root() const { return 0; }

  /// Parent of `n`, or `kNoNode` for the root.
  NodeId parent(NodeId n) const { return parent_[n]; }

  /// First (leftmost) child of `n`, or `kNoNode` if `n` is a leaf.
  NodeId first_child(NodeId n) const { return first_child_[n]; }

  /// Last (rightmost) child of `n`, or `kNoNode` if `n` is a leaf.
  NodeId last_child(NodeId n) const { return last_child_[n]; }

  /// Next sibling to the right, or `kNoNode`.
  NodeId next_sibling(NodeId n) const { return next_sibling_[n]; }

  /// Previous sibling to the left, or `kNoNode`.
  NodeId prev_sibling(NodeId n) const { return prev_sibling_[n]; }

  /// Primary label of `n` (the first label for multi-labeled nodes).
  const std::string& label(NodeId n) const { return labels_[n][0]; }

  /// All labels of `n` (size 1 for ordinary XML trees).
  const std::vector<std::string>& labels(NodeId n) const { return labels_[n]; }

  /// True if `n` carries label `l`.
  bool HasLabel(NodeId n, const std::string& l) const;

  /// True if every node carries exactly one label (an ordinary XML tree).
  bool IsSingleLabeled() const;

  /// Ordered children of `n`.
  std::vector<NodeId> Children(NodeId n) const;

  /// Depth of `n` (root has depth 0).
  int Depth(NodeId n) const;

  /// Height of the tree (a single root has height 0).
  int Height() const;

  /// True if `a` is an ancestor of `b` or `a == b`.
  bool IsAncestorOrSelf(NodeId a, NodeId b) const;

  /// All distinct labels occurring in the tree, sorted.
  std::vector<std::string> LabelSet() const;

  // --- FCNS binary view -----------------------------------------------

  /// Kind of the FCNS edge connecting a node to its FCNS parent.
  enum class FcnsEdge {
    kNone,       ///< The node is the tree root (no FCNS parent).
    kFirstChild, ///< The node is the first child of its FCNS parent.
    kNextSibling ///< The node is the next sibling of its FCNS parent.
  };

  /// The FCNS parent: the unranked parent if `n` is a first child, else the
  /// previous sibling. `kNoNode` for the root.
  NodeId FcnsParent(NodeId n) const;

  /// The kind of edge between `n` and its FCNS parent.
  FcnsEdge FcnsParentEdge(NodeId n) const;

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> prev_sibling_;
  std::vector<std::vector<std::string>> labels_;
};

}  // namespace xpc

#endif  // XPC_TREE_XML_TREE_H_
