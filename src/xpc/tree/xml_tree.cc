#include "xpc/tree/xml_tree.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace xpc {

XmlTree::XmlTree(const std::string& root_label)
    : XmlTree(std::vector<std::string>{root_label}) {}

XmlTree::XmlTree(std::vector<std::string> root_labels) {
  assert(!root_labels.empty());
  parent_.push_back(kNoNode);
  first_child_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  prev_sibling_.push_back(kNoNode);
  labels_.push_back(std::move(root_labels));
}

NodeId XmlTree::AddChild(NodeId parent, const std::string& label) {
  return AddChild(parent, std::vector<std::string>{label});
}

NodeId XmlTree::AddChild(NodeId parent, std::vector<std::string> labels) {
  assert(parent >= 0 && parent < size());
  assert(!labels.empty());
  const NodeId id = size();
  parent_.push_back(parent);
  first_child_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  prev_sibling_.push_back(last_child_[parent]);
  labels_.push_back(std::move(labels));
  if (last_child_[parent] != kNoNode) {
    next_sibling_[last_child_[parent]] = id;
  } else {
    first_child_[parent] = id;
  }
  last_child_[parent] = id;
  return id;
}

bool XmlTree::HasLabel(NodeId n, const std::string& l) const {
  const auto& ls = labels_[n];
  return std::find(ls.begin(), ls.end(), l) != ls.end();
}

bool XmlTree::IsSingleLabeled() const {
  for (const auto& ls : labels_) {
    if (ls.size() != 1) return false;
  }
  return true;
}

std::vector<NodeId> XmlTree::Children(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child_[n]; c != kNoNode; c = next_sibling_[c]) {
    out.push_back(c);
  }
  return out;
}

int XmlTree::Depth(NodeId n) const {
  int d = 0;
  for (NodeId p = parent_[n]; p != kNoNode; p = parent_[p]) ++d;
  return d;
}

int XmlTree::Height() const {
  int h = 0;
  for (NodeId n = 0; n < size(); ++n) h = std::max(h, Depth(n));
  return h;
}

bool XmlTree::IsAncestorOrSelf(NodeId a, NodeId b) const {
  for (NodeId n = b; n != kNoNode; n = parent_[n]) {
    if (n == a) return true;
  }
  return false;
}

std::vector<std::string> XmlTree::LabelSet() const {
  std::set<std::string> s;
  for (const auto& ls : labels_) s.insert(ls.begin(), ls.end());
  return std::vector<std::string>(s.begin(), s.end());
}

NodeId XmlTree::FcnsParent(NodeId n) const {
  if (prev_sibling_[n] != kNoNode) return prev_sibling_[n];
  return parent_[n];
}

XmlTree::FcnsEdge XmlTree::FcnsParentEdge(NodeId n) const {
  if (prev_sibling_[n] != kNoNode) return FcnsEdge::kNextSibling;
  if (parent_[n] != kNoNode) return FcnsEdge::kFirstChild;
  return FcnsEdge::kNone;
}

}  // namespace xpc
