#ifndef XPC_XPATH_PARSER_H_
#define XPC_XPATH_PARSER_H_

#include <string>

#include "xpc/common/result.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Parses a path expression in the library's concrete syntax.
///
/// Grammar (loosest to tightest):
///
///     path    := 'for' $var 'in' path 'return' path | union
///     union   := compl ('|' compl)*
///     compl   := inter ('-' inter)*            // path complementation
///     inter   := seq ('&' seq)*                // path intersection
///     seq     := postfix ('/' postfix)*
///     postfix := atom ('[' node ']' | '*' | '+')*
///     atom    := ('down'|'up'|'right'|'left') | '.' | '(' path ')'
///
/// `down* up* right* left*` are the reflexive-transitive axis closures of
/// CoreXPath; `*` and `+` on non-atomic paths denote the transitive-closure
/// extension. Examples:
///
///     down*[Image and not(<down[q]>)]
///     (following[Image] & up+[Chapter]/down+[Image]) - following/following
Result<PathPtr> ParsePath(const std::string& text);

/// Parses a node expression:
///
///     node  := and ('or' and)*            and := unary ('and' unary)*
///     unary := 'not' unary | atom
///     atom  := 'true' | 'false' | label | 'is' $var
///            | '<' path '>'               // ⟨α⟩
///            | 'eq' '(' path ',' path ')' // α ≈ β
///            | 'loop' '(' path ')'        // sugar for eq(α, .)
///            | 'every' '(' path ',' node ')'
///            | '(' node ')'
Result<NodePtr> ParseNode(const std::string& text);

}  // namespace xpc

#endif  // XPC_XPATH_PARSER_H_
