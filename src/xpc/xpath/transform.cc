#include "xpc/xpath/transform.h"

#include "xpc/xpath/build.h"

namespace xpc {

NodePtr ReplaceLabels(const NodePtr& node, const std::map<std::string, NodePtr>& subst) {
  switch (node->kind) {
    case NodeKind::kLabel: {
      auto it = subst.find(node->label);
      return it == subst.end() ? node : it->second;
    }
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return node;
    case NodeKind::kSome:
      return Some(ReplaceLabels(node->path, subst));
    case NodeKind::kNot:
      return Not(ReplaceLabels(node->child1, subst));
    case NodeKind::kAnd:
      return And(ReplaceLabels(node->child1, subst), ReplaceLabels(node->child2, subst));
    case NodeKind::kOr:
      return Or(ReplaceLabels(node->child1, subst), ReplaceLabels(node->child2, subst));
    case NodeKind::kPathEq:
      return PathEq(ReplaceLabels(node->path, subst), ReplaceLabels(node->path2, subst));
  }
  return node;
}

PathPtr ReplaceLabels(const PathPtr& path, const std::map<std::string, NodePtr>& subst) {
  switch (path->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return path;
    case PathKind::kSeq:
      return Seq(ReplaceLabels(path->left, subst), ReplaceLabels(path->right, subst));
    case PathKind::kUnion:
      return Union(ReplaceLabels(path->left, subst), ReplaceLabels(path->right, subst));
    case PathKind::kFilter:
      return Filter(ReplaceLabels(path->left, subst), ReplaceLabels(path->filter, subst));
    case PathKind::kStar:
      return Star(ReplaceLabels(path->left, subst));
    case PathKind::kIntersect:
      return Intersect(ReplaceLabels(path->left, subst), ReplaceLabels(path->right, subst));
    case PathKind::kComplement:
      return Complement(ReplaceLabels(path->left, subst), ReplaceLabels(path->right, subst));
    case PathKind::kFor:
      return For(path->var, ReplaceLabels(path->left, subst), ReplaceLabels(path->right, subst));
  }
  return path;
}

}  // namespace xpc
