#include "xpc/xpath/ast.h"

namespace xpc {

Axis Converse(Axis axis) {
  switch (axis) {
    case Axis::kChild: return Axis::kParent;
    case Axis::kParent: return Axis::kChild;
    case Axis::kRight: return Axis::kLeft;
    case Axis::kLeft: return Axis::kRight;
  }
  return Axis::kChild;  // Unreachable.
}

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "down";
    case Axis::kParent: return "up";
    case Axis::kRight: return "right";
    case Axis::kLeft: return "left";
  }
  return "?";
}

bool Equal(const PathPtr& a, const PathPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
      return a->axis == b->axis;
    case PathKind::kSelf:
      return true;
    case PathKind::kSeq:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kComplement:
      return Equal(a->left, b->left) && Equal(a->right, b->right);
    case PathKind::kFilter:
      return Equal(a->left, b->left) && Equal(a->filter, b->filter);
    case PathKind::kStar:
      return Equal(a->left, b->left);
    case PathKind::kFor:
      return a->var == b->var && Equal(a->left, b->left) && Equal(a->right, b->right);
  }
  return false;
}

bool Equal(const NodePtr& a, const NodePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case NodeKind::kLabel:
      return a->label == b->label;
    case NodeKind::kTrue:
      return true;
    case NodeKind::kSome:
      return Equal(a->path, b->path);
    case NodeKind::kNot:
      return Equal(a->child1, b->child1);
    case NodeKind::kAnd:
    case NodeKind::kOr:
      return Equal(a->child1, b->child1) && Equal(a->child2, b->child2);
    case NodeKind::kPathEq:
      return Equal(a->path, b->path) && Equal(a->path2, b->path2);
    case NodeKind::kIsVar:
      return a->var == b->var;
  }
  return false;
}

}  // namespace xpc
