#ifndef XPC_XPATH_AST_H_
#define XPC_XPATH_AST_H_

#include <memory>
#include <string>

namespace xpc {

/// The four atomic axes of CoreXPath (Definition 3): child, parent,
/// next-sibling and previous-sibling. Reflexive-transitive closures of axes
/// are represented by `PathExpr::kind == kAxisStar`.
enum class Axis {
  kChild,   ///< "down" (↓)
  kParent,  ///< "up" (↑)
  kRight,   ///< next sibling (→)
  kLeft,    ///< previous sibling (←)
};

/// Returns the converse axis (↓ ↔ ↑, → ↔ ←), cf. Section 3.1.
Axis Converse(Axis axis);

/// Short ASCII name used by the printer/parser ("down", "up", ...).
const char* AxisName(Axis axis);

struct NodeExpr;
struct PathExpr;

/// Shared immutable AST handles. Expressions form DAGs: subterms may be
/// shared freely, and all nodes are immutable after construction.
using PathPtr = std::shared_ptr<const PathExpr>;
using NodePtr = std::shared_ptr<const NodeExpr>;

/// Kinds of path expressions. Together with `NodeKind` this covers all of
/// CoreXPath(≈, ∩, −, for, *): Definition 3 plus the five extensions of
/// Section 2.2 and the for-loops of Section 7.
enum class PathKind {
  kAxis,        ///< τ for τ ∈ {↓, ↑, →, ←}
  kAxisStar,    ///< τ* (reflexive-transitive closure of an atomic axis)
  kSelf,        ///< "." (identity)
  kSeq,         ///< α/β (composition)
  kUnion,       ///< α ∪ β
  kFilter,      ///< α[φ]
  kStar,        ///< α* — general transitive closure (the * operator)
  kIntersect,   ///< α ∩ β (path intersection)
  kComplement,  ///< α − β (path complementation)
  kFor,         ///< for $i in α return β (iteration)
};

/// Kinds of node expressions.
enum class NodeKind {
  kLabel,   ///< p ∈ Σ
  kTrue,    ///< ⊤
  kSome,    ///< ⟨α⟩
  kNot,     ///< ¬φ
  kAnd,     ///< φ ∧ ψ
  kOr,      ///< φ ∨ ψ (kept primitive for readable output; ≡ ¬(¬φ ∧ ¬ψ))
  kPathEq,  ///< α ≈ β (path equality, interpreted existentially)
  kIsVar,   ///< ". is $i" (only inside for-loops)
};

/// A path expression. Which members are meaningful depends on `kind`:
///  - kAxis / kAxisStar: `axis`
///  - kSeq / kUnion / kIntersect / kComplement: `left`, `right`
///  - kFilter: `left` (the path), `filter` (the node expression)
///  - kStar: `left`
///  - kFor: `var` (the bound variable), `left` (the "in" path), `right`
///    (the "return" path)
struct PathExpr {
  PathKind kind;
  Axis axis = Axis::kChild;
  PathPtr left;
  PathPtr right;
  NodePtr filter;
  std::string var;
};

/// A node expression. Which members are meaningful depends on `kind`:
///  - kLabel: `label`;  kIsVar: `var`
///  - kSome: `path`;  kPathEq: `path`, `path2`
///  - kNot: `child1`;  kAnd / kOr: `child1`, `child2`
struct NodeExpr {
  NodeKind kind;
  std::string label;
  std::string var;
  PathPtr path;
  PathPtr path2;
  NodePtr child1;
  NodePtr child2;
};

/// Structural equality of expressions (labels and variables compared by
/// name; shared subterms compare fast by pointer).
bool Equal(const PathPtr& a, const PathPtr& b);
bool Equal(const NodePtr& a, const NodePtr& b);

}  // namespace xpc

#endif  // XPC_XPATH_AST_H_
