#ifndef XPC_XPATH_METRICS_H_
#define XPC_XPATH_METRICS_H_

#include <set>
#include <string>

#include "xpc/xpath/ast.h"

namespace xpc {

/// Size of an expression as defined in Section 2.3: the number of nodes in
/// its syntax tree (occurrences of constructors, labels and atomic paths).
/// Shared subterms are counted once per occurrence (tree size, not DAG size).
int Size(const PathPtr& path);
int Size(const NodePtr& node);

/// Direct intersection depth dd(α) (Section 4.2): nesting of ∩ along the
/// path-expression spine; filters reset to their own depth.
int DirectIntersectionDepth(const PathPtr& path);

/// Intersection depth d(α) / d(φ): the maximum direct intersection depth of
/// any path expression occurring anywhere in the expression (Section 4.2).
int IntersectionDepth(const PathPtr& path);
int IntersectionDepth(const NodePtr& node);

/// All labels occurring in the expression.
std::set<std::string> Labels(const PathPtr& path);
std::set<std::string> Labels(const NodePtr& node);

/// All for-loop variables occurring (bound or free) in the expression.
std::set<std::string> Variables(const PathPtr& path);
std::set<std::string> Variables(const NodePtr& node);

/// Returns a label not in `used` (fresh), derived from `stem`.
std::string FreshLabel(const std::set<std::string>& used, const std::string& stem);

}  // namespace xpc

#endif  // XPC_XPATH_METRICS_H_
