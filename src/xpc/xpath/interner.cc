#include "xpc/xpath/interner.h"

#include <string_view>

namespace xpc {

namespace {

// splitmix64 finalizer — the mixing primitive for all fingerprints.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Combine(uint64_t seed, uint64_t v) { return Mix(seed ^ (v + 0x165667b19e3779f9ULL)); }

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, then mixed.
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix(h);
}

// Distinct tag spaces so a PathExpr never collides with a NodeExpr of the
// same shape by construction.
uint64_t PathTag(PathKind k) { return Mix(0x5041ULL ^ (static_cast<uint64_t>(k) << 8)); }
uint64_t NodeTag(NodeKind k) { return Mix(0x4e4fULL ^ (static_cast<uint64_t>(k) << 8)); }

}  // namespace

// NOTE on memoization: the pointer-keyed memos hold ONLY canonical nodes,
// whose lifetime the buckets guarantee. Memoizing arbitrary caller pointers
// would be unsound — a caller expression can be freed and its address
// reused by a different expression, which would then inherit the stale
// canonical. Interning a never-seen alias therefore walks its structure
// (O(size)), bottoming out at canonical subterms.

PathPtr ExprInterner::Intern(const PathPtr& p) { return InternPath(p).first; }
NodePtr ExprInterner::Intern(const NodePtr& n) { return InternNode(n).first; }
uint64_t ExprInterner::Fingerprint(const PathPtr& p) { return InternPath(p).second; }
uint64_t ExprInterner::Fingerprint(const NodePtr& n) { return InternNode(n).second; }

std::pair<PathPtr, uint64_t> ExprInterner::InternPath(const PathPtr& p) {
  if (p == nullptr) return {nullptr, 0};
  auto it = path_memo_.find(p.get());
  if (it != path_memo_.end()) return it->second;

  // Intern children first (bottom-up), then fingerprint over canonical
  // child fingerprints.
  auto [left, left_fp] = InternPath(p->left);
  auto [right, right_fp] = InternPath(p->right);
  auto [filter, filter_fp] = InternNode(p->filter);

  uint64_t h = PathTag(p->kind);
  switch (p->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
      h = Combine(h, static_cast<uint64_t>(p->axis) + 1);
      break;
    case PathKind::kSelf:
      break;
    case PathKind::kSeq:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kComplement:
      h = Combine(h, left_fp);
      h = Combine(h, right_fp);
      break;
    case PathKind::kFilter:
      h = Combine(h, left_fp);
      h = Combine(h, filter_fp);
      break;
    case PathKind::kStar:
      h = Combine(h, left_fp);
      break;
    case PathKind::kFor:
      h = Combine(h, HashString(p->var));
      h = Combine(h, left_fp);
      h = Combine(h, right_fp);
      break;
  }
  if (h == 0) h = 1;  // 0 is reserved for nullptr.

  // Find or install the canonical node for this structure.
  std::vector<PathPtr>& bucket = path_buckets_[h];
  for (const PathPtr& cand : bucket) {
    if (Equal(cand, p)) return {cand, h};
  }
  // Rebuild only if a child changed identity; otherwise `p` itself (whose
  // children were already canonical) becomes the canonical node.
  PathPtr canonical;
  if (left == p->left && right == p->right && filter == p->filter) {
    canonical = p;
  } else {
    auto fresh = std::make_shared<PathExpr>(*p);
    fresh->left = std::move(left);
    fresh->right = std::move(right);
    fresh->filter = std::move(filter);
    canonical = std::move(fresh);
  }
  bucket.push_back(canonical);
  ++path_count_;
  path_memo_[canonical.get()] = {canonical, h};
  return {canonical, h};
}

std::pair<NodePtr, uint64_t> ExprInterner::InternNode(const NodePtr& n) {
  if (n == nullptr) return {nullptr, 0};
  auto it = node_memo_.find(n.get());
  if (it != node_memo_.end()) return it->second;

  auto [path, path_fp] = InternPath(n->path);
  auto [path2, path2_fp] = InternPath(n->path2);
  auto [child1, child1_fp] = InternNode(n->child1);
  auto [child2, child2_fp] = InternNode(n->child2);

  uint64_t h = NodeTag(n->kind);
  switch (n->kind) {
    case NodeKind::kLabel:
      h = Combine(h, HashString(n->label));
      break;
    case NodeKind::kTrue:
      break;
    case NodeKind::kSome:
      h = Combine(h, path_fp);
      break;
    case NodeKind::kNot:
      h = Combine(h, child1_fp);
      break;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      h = Combine(h, child1_fp);
      h = Combine(h, child2_fp);
      break;
    case NodeKind::kPathEq:
      h = Combine(h, path_fp);
      h = Combine(h, path2_fp);
      break;
    case NodeKind::kIsVar:
      h = Combine(h, HashString(n->var));
      break;
  }
  if (h == 0) h = 1;

  std::vector<NodePtr>& bucket = node_buckets_[h];
  for (const NodePtr& cand : bucket) {
    if (Equal(cand, n)) return {cand, h};
  }
  NodePtr canonical;
  if (path == n->path && path2 == n->path2 && child1 == n->child1 && child2 == n->child2) {
    canonical = n;
  } else {
    auto fresh = std::make_shared<NodeExpr>(*n);
    fresh->path = std::move(path);
    fresh->path2 = std::move(path2);
    fresh->child1 = std::move(child1);
    fresh->child2 = std::move(child2);
    canonical = std::move(fresh);
  }
  bucket.push_back(canonical);
  ++node_count_;
  node_memo_[canonical.get()] = {canonical, h};
  return {canonical, h};
}

void ExprInterner::Clear() {
  path_buckets_.clear();
  node_buckets_.clear();
  path_memo_.clear();
  node_memo_.clear();
  path_count_ = 0;
  node_count_ = 0;
}

}  // namespace xpc
