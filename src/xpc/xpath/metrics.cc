#include "xpc/xpath/metrics.h"

#include <algorithm>

namespace xpc {

int Size(const PathPtr& path) {
  switch (path->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return 1;
    case PathKind::kSeq:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kComplement:
      return 1 + Size(path->left) + Size(path->right);
    case PathKind::kFilter:
      return 1 + Size(path->left) + Size(path->filter);
    case PathKind::kStar:
      return 1 + Size(path->left);
    case PathKind::kFor:
      return 2 + Size(path->left) + Size(path->right);  // for + variable.
  }
  return 0;
}

int Size(const NodePtr& node) {
  switch (node->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return 1;
    case NodeKind::kSome:
      return 1 + Size(node->path);
    case NodeKind::kNot:
      return 1 + Size(node->child1);
    case NodeKind::kAnd:
    case NodeKind::kOr:
      return 1 + Size(node->child1) + Size(node->child2);
    case NodeKind::kPathEq:
      return 1 + Size(node->path) + Size(node->path2);
  }
  return 0;
}

int DirectIntersectionDepth(const PathPtr& path) {
  switch (path->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return 0;
    case PathKind::kSeq:
    case PathKind::kUnion:
    case PathKind::kComplement:
      return std::max(DirectIntersectionDepth(path->left),
                      DirectIntersectionDepth(path->right));
    case PathKind::kIntersect:
      return 1 + std::max(DirectIntersectionDepth(path->left),
                          DirectIntersectionDepth(path->right));
    case PathKind::kFilter:
    case PathKind::kStar:
      return DirectIntersectionDepth(path->left);
    case PathKind::kFor:
      return std::max(DirectIntersectionDepth(path->left),
                      DirectIntersectionDepth(path->right));
  }
  return 0;
}

int IntersectionDepth(const PathPtr& path) {
  int d = DirectIntersectionDepth(path);
  switch (path->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      return d;
    case PathKind::kSeq:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kComplement:
    case PathKind::kFor:
      return std::max({d, IntersectionDepth(path->left), IntersectionDepth(path->right)});
    case PathKind::kFilter:
      return std::max({d, IntersectionDepth(path->left), IntersectionDepth(path->filter)});
    case PathKind::kStar:
      return std::max(d, IntersectionDepth(path->left));
  }
  return d;
}

int IntersectionDepth(const NodePtr& node) {
  switch (node->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      return 0;
    case NodeKind::kSome:
      return IntersectionDepth(node->path);
    case NodeKind::kNot:
      return IntersectionDepth(node->child1);
    case NodeKind::kAnd:
    case NodeKind::kOr:
      return std::max(IntersectionDepth(node->child1), IntersectionDepth(node->child2));
    case NodeKind::kPathEq:
      return std::max(IntersectionDepth(node->path), IntersectionDepth(node->path2));
  }
  return 0;
}

namespace {

void CollectLabels(const PathPtr& path, std::set<std::string>* out);

void CollectLabels(const NodePtr& node, std::set<std::string>* out) {
  switch (node->kind) {
    case NodeKind::kLabel:
      out->insert(node->label);
      break;
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      break;
    case NodeKind::kSome:
      CollectLabels(node->path, out);
      break;
    case NodeKind::kNot:
      CollectLabels(node->child1, out);
      break;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      CollectLabels(node->child1, out);
      CollectLabels(node->child2, out);
      break;
    case NodeKind::kPathEq:
      CollectLabels(node->path, out);
      CollectLabels(node->path2, out);
      break;
  }
}

void CollectLabels(const PathPtr& path, std::set<std::string>* out) {
  switch (path->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      break;
    case PathKind::kSeq:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kComplement:
    case PathKind::kFor:
      CollectLabels(path->left, out);
      CollectLabels(path->right, out);
      break;
    case PathKind::kFilter:
      CollectLabels(path->left, out);
      CollectLabels(path->filter, out);
      break;
    case PathKind::kStar:
      CollectLabels(path->left, out);
      break;
  }
}

void CollectVars(const PathPtr& path, std::set<std::string>* out);

void CollectVars(const NodePtr& node, std::set<std::string>* out) {
  switch (node->kind) {
    case NodeKind::kIsVar:
      out->insert(node->var);
      break;
    case NodeKind::kLabel:
    case NodeKind::kTrue:
      break;
    case NodeKind::kSome:
      CollectVars(node->path, out);
      break;
    case NodeKind::kNot:
      CollectVars(node->child1, out);
      break;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      CollectVars(node->child1, out);
      CollectVars(node->child2, out);
      break;
    case NodeKind::kPathEq:
      CollectVars(node->path, out);
      CollectVars(node->path2, out);
      break;
  }
}

void CollectVars(const PathPtr& path, std::set<std::string>* out) {
  switch (path->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
    case PathKind::kSelf:
      break;
    case PathKind::kFor:
      out->insert(path->var);
      CollectVars(path->left, out);
      CollectVars(path->right, out);
      break;
    case PathKind::kSeq:
    case PathKind::kUnion:
    case PathKind::kIntersect:
    case PathKind::kComplement:
      CollectVars(path->left, out);
      CollectVars(path->right, out);
      break;
    case PathKind::kFilter:
      CollectVars(path->left, out);
      CollectVars(path->filter, out);
      break;
    case PathKind::kStar:
      CollectVars(path->left, out);
      break;
  }
}

}  // namespace

std::set<std::string> Labels(const PathPtr& path) {
  std::set<std::string> out;
  CollectLabels(path, &out);
  return out;
}

std::set<std::string> Labels(const NodePtr& node) {
  std::set<std::string> out;
  CollectLabels(node, &out);
  return out;
}

std::set<std::string> Variables(const PathPtr& path) {
  std::set<std::string> out;
  CollectVars(path, &out);
  return out;
}

std::set<std::string> Variables(const NodePtr& node) {
  std::set<std::string> out;
  CollectVars(node, &out);
  return out;
}

std::string FreshLabel(const std::set<std::string>& used, const std::string& stem) {
  if (used.find(stem) == used.end()) return stem;
  for (int i = 0;; ++i) {
    std::string candidate = stem + "_" + std::to_string(i);
    if (used.find(candidate) == used.end()) return candidate;
  }
}

}  // namespace xpc
