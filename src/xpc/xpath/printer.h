#ifndef XPC_XPATH_PRINTER_H_
#define XPC_XPATH_PRINTER_H_

#include <string>

#include "xpc/xpath/ast.h"

namespace xpc {

/// Renders a path expression in the library's concrete syntax (accepted back
/// by the parser, see parser.h). Example output:
///
///     down*[Image and not(eq(up*/left+/down*[Image], up+[Chapter]/down+[Image]))]
std::string ToString(const PathPtr& path);

/// Renders a node expression in concrete syntax.
std::string ToString(const NodePtr& node);

}  // namespace xpc

#endif  // XPC_XPATH_PRINTER_H_
