#ifndef XPC_XPATH_TRANSFORM_H_
#define XPC_XPATH_TRANSFORM_H_

#include <map>
#include <string>

#include "xpc/xpath/ast.h"

namespace xpc {

/// Replaces every occurrence of a label p ∈ keys(subst) by the node
/// expression subst[p]. This is the label-decoration step of
/// Propositions 4–6 (e.g. p ↦ (p,0) ∨ (p,1)).
NodePtr ReplaceLabels(const NodePtr& node, const std::map<std::string, NodePtr>& subst);
PathPtr ReplaceLabels(const PathPtr& path, const std::map<std::string, NodePtr>& subst);

}  // namespace xpc

#endif  // XPC_XPATH_TRANSFORM_H_
