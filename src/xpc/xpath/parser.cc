#include "xpc/xpath/parser.h"

#include <cctype>
#include <sstream>

#include "xpc/xpath/build.h"

namespace xpc {

namespace {

enum class Tok {
  kIdent, kVar, kSlash, kPipe, kAmp, kMinus, kStar, kPlus, kDot,
  kLParen, kRParen, kLBracket, kRBracket, kLAngle, kRAngle, kComma, kEnd,
};

struct Token {
  Tok kind;
  std::string text;  // For kIdent / kVar.
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  bool AtIdent(const char* kw) const {
    return current_.kind == Tok::kIdent && current_.text == kw;
  }

  std::string error() const { return error_; }
  bool failed() const { return !error_.empty(); }

 private:
  void Advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    current_.offset = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = Tok::kEnd;
      return;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Tok::kIdent;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (c == '$') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      if (pos_ == start) {
        error_ = "expected variable name after '$'";
        current_.kind = Tok::kEnd;
        return;
      }
      current_.kind = Tok::kVar;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    ++pos_;
    switch (c) {
      case '/': current_.kind = Tok::kSlash; return;
      case '|': current_.kind = Tok::kPipe; return;
      case '&': current_.kind = Tok::kAmp; return;
      case '-': current_.kind = Tok::kMinus; return;
      case '*': current_.kind = Tok::kStar; return;
      case '+': current_.kind = Tok::kPlus; return;
      case '.': current_.kind = Tok::kDot; return;
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case '[': current_.kind = Tok::kLBracket; return;
      case ']': current_.kind = Tok::kRBracket; return;
      case '<': current_.kind = Tok::kLAngle; return;
      case '>': current_.kind = Tok::kRAngle; return;
      case ',': current_.kind = Tok::kComma; return;
      default: {
        std::ostringstream os;
        os << "unexpected character '" << c << "' at offset " << (pos_ - 1);
        error_ = os.str();
        current_.kind = Tok::kEnd;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
  std::string error_;
};

bool IsKeyword(const std::string& s) {
  return s == "for" || s == "in" || s == "return" || s == "not" || s == "and" ||
         s == "or" || s == "true" || s == "false" || s == "is" || s == "eq" ||
         s == "loop" || s == "every" || s == "down" || s == "up" || s == "right" ||
         s == "left";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  PathPtr ParsePathTop() {
    PathPtr p = ParsePathExpr();
    if (!p) return nullptr;
    if (lex_.peek().kind != Tok::kEnd) {
      Fail("trailing input after path expression");
      return nullptr;
    }
    return p;
  }

  NodePtr ParseNodeTop() {
    NodePtr n = ParseNodeExpr();
    if (!n) return nullptr;
    if (lex_.peek().kind != Tok::kEnd) {
      Fail("trailing input after node expression");
      return nullptr;
    }
    return n;
  }

  std::string error() const { return error_.empty() ? lex_.error() : error_; }

 private:
  void Fail(const std::string& msg) {
    if (error_.empty()) {
      std::ostringstream os;
      os << msg << " (at offset " << lex_.peek().offset << ")";
      error_ = os.str();
    }
  }

  bool Expect(Tok kind, const char* what) {
    if (lex_.peek().kind != kind) {
      Fail(std::string("expected ") + what);
      return false;
    }
    lex_.Take();
    return true;
  }

  // path := for | union
  PathPtr ParsePathExpr() {
    if (lex_.AtIdent("for")) {
      lex_.Take();
      if (lex_.peek().kind != Tok::kVar) {
        Fail("expected $variable after 'for'");
        return nullptr;
      }
      std::string var = lex_.Take().text;
      if (!lex_.AtIdent("in")) {
        Fail("expected 'in'");
        return nullptr;
      }
      lex_.Take();
      PathPtr in = ParsePathExpr();
      if (!in) return nullptr;
      if (!lex_.AtIdent("return")) {
        Fail("expected 'return'");
        return nullptr;
      }
      lex_.Take();
      PathPtr ret = ParsePathExpr();
      if (!ret) return nullptr;
      return For(var, in, ret);
    }
    return ParseUnion();
  }

  PathPtr ParseUnion() {
    PathPtr p = ParseComplement();
    if (!p) return nullptr;
    while (lex_.peek().kind == Tok::kPipe) {
      lex_.Take();
      PathPtr r = ParseComplement();
      if (!r) return nullptr;
      p = Union(p, r);
    }
    return p;
  }

  PathPtr ParseComplement() {
    PathPtr p = ParseIntersect();
    if (!p) return nullptr;
    while (lex_.peek().kind == Tok::kMinus) {
      lex_.Take();
      PathPtr r = ParseIntersect();
      if (!r) return nullptr;
      p = Complement(p, r);
    }
    return p;
  }

  PathPtr ParseIntersect() {
    PathPtr p = ParseSeq();
    if (!p) return nullptr;
    while (lex_.peek().kind == Tok::kAmp) {
      lex_.Take();
      PathPtr r = ParseSeq();
      if (!r) return nullptr;
      p = Intersect(p, r);
    }
    return p;
  }

  PathPtr ParseSeq() {
    PathPtr p = ParsePostfix();
    if (!p) return nullptr;
    while (lex_.peek().kind == Tok::kSlash) {
      lex_.Take();
      PathPtr r = ParsePostfix();
      if (!r) return nullptr;
      p = Seq(p, r);
    }
    return p;
  }

  PathPtr ParsePostfix() {
    PathPtr p = ParsePathAtom();
    if (!p) return nullptr;
    while (true) {
      switch (lex_.peek().kind) {
        case Tok::kLBracket: {
          lex_.Take();
          NodePtr f = ParseNodeExpr();
          if (!f) return nullptr;
          if (!Expect(Tok::kRBracket, "']'")) return nullptr;
          p = Filter(p, f);
          break;
        }
        case Tok::kStar:
          lex_.Take();
          // `down*` is the CoreXPath axis closure; `(...)*` is the general
          // transitive-closure extension.
          p = (p->kind == PathKind::kAxis) ? AxStar(p->axis) : Star(p);
          break;
        case Tok::kPlus:
          lex_.Take();
          p = (p->kind == PathKind::kAxis) ? AxPlus(p->axis) : Seq(p, Star(p));
          break;
        default:
          return p;
      }
    }
  }

  PathPtr ParsePathAtom() {
    const Token& t = lex_.peek();
    if (t.kind == Tok::kDot) {
      lex_.Take();
      return Self();
    }
    if (t.kind == Tok::kLParen) {
      lex_.Take();
      PathPtr p = ParsePathExpr();
      if (!p) return nullptr;
      if (!Expect(Tok::kRParen, "')'")) return nullptr;
      return p;
    }
    if (t.kind == Tok::kIdent) {
      if (t.text == "down") { lex_.Take(); return Ax(Axis::kChild); }
      if (t.text == "up") { lex_.Take(); return Ax(Axis::kParent); }
      if (t.text == "right") { lex_.Take(); return Ax(Axis::kRight); }
      if (t.text == "left") { lex_.Take(); return Ax(Axis::kLeft); }
    }
    Fail("expected path atom (axis, '.', or '(')");
    return nullptr;
  }

  NodePtr ParseNodeExpr() {
    NodePtr n = ParseAnd();
    if (!n) return nullptr;
    while (lex_.AtIdent("or")) {
      lex_.Take();
      NodePtr r = ParseAnd();
      if (!r) return nullptr;
      n = Or(n, r);
    }
    return n;
  }

  NodePtr ParseAnd() {
    NodePtr n = ParseUnary();
    if (!n) return nullptr;
    while (lex_.AtIdent("and")) {
      lex_.Take();
      NodePtr r = ParseUnary();
      if (!r) return nullptr;
      n = And(n, r);
    }
    return n;
  }

  NodePtr ParseUnary() {
    if (lex_.AtIdent("not")) {
      lex_.Take();
      NodePtr n = ParseUnary();
      if (!n) return nullptr;
      return Not(n);
    }
    return ParseNodeAtom();
  }

  NodePtr ParseNodeAtom() {
    const Token& t = lex_.peek();
    if (t.kind == Tok::kLAngle) {
      lex_.Take();
      PathPtr p = ParsePathExpr();
      if (!p) return nullptr;
      if (!Expect(Tok::kRAngle, "'>'")) return nullptr;
      return Some(p);
    }
    if (t.kind == Tok::kLParen) {
      lex_.Take();
      NodePtr n = ParseNodeExpr();
      if (!n) return nullptr;
      if (!Expect(Tok::kRParen, "')'")) return nullptr;
      return n;
    }
    if (t.kind == Tok::kIdent) {
      if (t.text == "true") { lex_.Take(); return True(); }
      if (t.text == "false") { lex_.Take(); return False(); }
      if (t.text == "is") {
        lex_.Take();
        if (lex_.peek().kind != Tok::kVar) {
          Fail("expected $variable after 'is'");
          return nullptr;
        }
        return IsVar(lex_.Take().text);
      }
      if (t.text == "eq") {
        lex_.Take();
        if (!Expect(Tok::kLParen, "'('")) return nullptr;
        PathPtr a = ParsePathExpr();
        if (!a) return nullptr;
        if (!Expect(Tok::kComma, "','")) return nullptr;
        PathPtr b = ParsePathExpr();
        if (!b) return nullptr;
        if (!Expect(Tok::kRParen, "')'")) return nullptr;
        return PathEq(a, b);
      }
      if (t.text == "loop") {
        lex_.Take();
        if (!Expect(Tok::kLParen, "'('")) return nullptr;
        PathPtr a = ParsePathExpr();
        if (!a) return nullptr;
        if (!Expect(Tok::kRParen, "')'")) return nullptr;
        return PathEq(a, Self());
      }
      if (t.text == "every") {
        lex_.Take();
        if (!Expect(Tok::kLParen, "'('")) return nullptr;
        PathPtr a = ParsePathExpr();
        if (!a) return nullptr;
        if (!Expect(Tok::kComma, "','")) return nullptr;
        NodePtr f = ParseNodeExpr();
        if (!f) return nullptr;
        if (!Expect(Tok::kRParen, "')'")) return nullptr;
        return Every(a, f);
      }
      if (!IsKeyword(t.text)) {
        return Label(lex_.Take().text);
      }
    }
    Fail("expected node expression atom");
    return nullptr;
  }

  Lexer lex_;
  std::string error_;
};

}  // namespace

Result<PathPtr> ParsePath(const std::string& text) {
  Parser parser(text);
  PathPtr p = parser.ParsePathTop();
  if (!p) return Result<PathPtr>::Error(parser.error());
  return p;
}

Result<NodePtr> ParseNode(const std::string& text) {
  Parser parser(text);
  NodePtr n = parser.ParseNodeTop();
  if (!n) return Result<NodePtr>::Error(parser.error());
  return n;
}

}  // namespace xpc
