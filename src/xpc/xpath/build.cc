#include "xpc/xpath/build.h"

#include <cassert>

namespace xpc {

namespace {
PathPtr MakePath(PathKind kind) {
  auto p = std::make_shared<PathExpr>();
  p->kind = kind;
  return p;
}
NodePtr MakeNode(NodeKind kind) {
  auto n = std::make_shared<NodeExpr>();
  n->kind = kind;
  return n;
}
}  // namespace

PathPtr Ax(Axis axis) {
  auto p = std::make_shared<PathExpr>();
  p->kind = PathKind::kAxis;
  p->axis = axis;
  return p;
}

PathPtr AxStar(Axis axis) {
  auto p = std::make_shared<PathExpr>();
  p->kind = PathKind::kAxisStar;
  p->axis = axis;
  return p;
}

PathPtr AxPlus(Axis axis) { return Seq(Ax(axis), AxStar(axis)); }

PathPtr Self() { return MakePath(PathKind::kSelf); }

PathPtr Seq(PathPtr a, PathPtr b) {
  assert(a && b);
  auto p = MakePath(PathKind::kSeq);
  auto q = std::const_pointer_cast<PathExpr>(p);
  q->left = std::move(a);
  q->right = std::move(b);
  return p;
}

PathPtr SeqAll(std::vector<PathPtr> parts) {
  assert(!parts.empty());
  PathPtr acc = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) acc = Seq(acc, parts[i]);
  return acc;
}

PathPtr Union(PathPtr a, PathPtr b) {
  auto p = MakePath(PathKind::kUnion);
  auto q = std::const_pointer_cast<PathExpr>(p);
  q->left = std::move(a);
  q->right = std::move(b);
  return p;
}

PathPtr UnionAll(std::vector<PathPtr> parts) {
  assert(!parts.empty());
  PathPtr acc = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) acc = Union(acc, parts[i]);
  return acc;
}

PathPtr Filter(PathPtr a, NodePtr f) {
  auto p = MakePath(PathKind::kFilter);
  auto q = std::const_pointer_cast<PathExpr>(p);
  q->left = std::move(a);
  q->filter = std::move(f);
  return p;
}

PathPtr Test(NodePtr f) { return Filter(Self(), std::move(f)); }

PathPtr Star(PathPtr a) {
  auto p = MakePath(PathKind::kStar);
  std::const_pointer_cast<PathExpr>(p)->left = std::move(a);
  return p;
}

PathPtr Intersect(PathPtr a, PathPtr b) {
  auto p = MakePath(PathKind::kIntersect);
  auto q = std::const_pointer_cast<PathExpr>(p);
  q->left = std::move(a);
  q->right = std::move(b);
  return p;
}

PathPtr IntersectAll(std::vector<PathPtr> parts) {
  assert(!parts.empty());
  PathPtr acc = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) acc = Intersect(acc, parts[i]);
  return acc;
}

PathPtr Complement(PathPtr a, PathPtr b) {
  auto p = MakePath(PathKind::kComplement);
  auto q = std::const_pointer_cast<PathExpr>(p);
  q->left = std::move(a);
  q->right = std::move(b);
  return p;
}

PathPtr For(const std::string& var, PathPtr in, PathPtr ret) {
  auto p = MakePath(PathKind::kFor);
  auto q = std::const_pointer_cast<PathExpr>(p);
  q->var = var;
  q->left = std::move(in);
  q->right = std::move(ret);
  return p;
}

NodePtr Label(const std::string& label) {
  auto n = std::make_shared<NodeExpr>();
  n->kind = NodeKind::kLabel;
  n->label = label;
  return n;
}

NodePtr True() { return MakeNode(NodeKind::kTrue); }

NodePtr False() { return Not(True()); }

NodePtr Some(PathPtr a) {
  auto n = MakeNode(NodeKind::kSome);
  std::const_pointer_cast<NodeExpr>(n)->path = std::move(a);
  return n;
}

NodePtr Not(NodePtr f) {
  assert(f);
  if (f->kind == NodeKind::kNot) return f->child1;  // ¬¬φ = φ.
  auto n = MakeNode(NodeKind::kNot);
  std::const_pointer_cast<NodeExpr>(n)->child1 = std::move(f);
  return n;
}

NodePtr And(NodePtr a, NodePtr b) {
  auto n = MakeNode(NodeKind::kAnd);
  auto m = std::const_pointer_cast<NodeExpr>(n);
  m->child1 = std::move(a);
  m->child2 = std::move(b);
  return n;
}

NodePtr AndAll(std::vector<NodePtr> parts) {
  if (parts.empty()) return True();
  NodePtr acc = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) acc = And(acc, parts[i]);
  return acc;
}

NodePtr Or(NodePtr a, NodePtr b) {
  auto n = MakeNode(NodeKind::kOr);
  auto m = std::const_pointer_cast<NodeExpr>(n);
  m->child1 = std::move(a);
  m->child2 = std::move(b);
  return n;
}

NodePtr OrAll(std::vector<NodePtr> parts) {
  if (parts.empty()) return False();
  NodePtr acc = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) acc = Or(acc, parts[i]);
  return acc;
}

NodePtr Implies(NodePtr a, NodePtr b) { return Not(And(std::move(a), Not(std::move(b)))); }

NodePtr PathEq(PathPtr a, PathPtr b) {
  auto n = MakeNode(NodeKind::kPathEq);
  auto m = std::const_pointer_cast<NodeExpr>(n);
  m->path = std::move(a);
  m->path2 = std::move(b);
  return n;
}

NodePtr IsVar(const std::string& var) {
  auto n = MakeNode(NodeKind::kIsVar);
  std::const_pointer_cast<NodeExpr>(n)->var = var;
  return n;
}

NodePtr Every(PathPtr a, NodePtr f) {
  return Not(Some(Filter(std::move(a), Not(std::move(f)))));
}

PathPtr ConversePath(const PathPtr& a) {
  if (!a) return nullptr;
  switch (a->kind) {
    case PathKind::kAxis:
      return Ax(Converse(a->axis));
    case PathKind::kAxisStar:
      return AxStar(Converse(a->axis));
    case PathKind::kSelf:
      return Self();
    case PathKind::kSeq: {
      auto l = ConversePath(a->left);
      auto r = ConversePath(a->right);
      if (!l || !r) return nullptr;
      return Seq(r, l);  // (α/β)⁻ = β⁻/α⁻.
    }
    case PathKind::kUnion: {
      auto l = ConversePath(a->left);
      auto r = ConversePath(a->right);
      if (!l || !r) return nullptr;
      return Union(l, r);
    }
    case PathKind::kFilter: {
      // (α[φ])⁻ = .[φ]/α⁻.
      auto l = ConversePath(a->left);
      if (!l) return nullptr;
      return Seq(Test(a->filter), l);
    }
    case PathKind::kStar: {
      auto l = ConversePath(a->left);
      if (!l) return nullptr;
      return Star(l);
    }
    case PathKind::kIntersect: {
      auto l = ConversePath(a->left);
      auto r = ConversePath(a->right);
      if (!l || !r) return nullptr;
      return Intersect(l, r);
    }
    case PathKind::kComplement: {
      auto l = ConversePath(a->left);
      auto r = ConversePath(a->right);
      if (!l || !r) return nullptr;
      return Complement(l, r);
    }
    case PathKind::kFor:
      return nullptr;  // No syntactic converse for iteration.
  }
  return nullptr;
}

}  // namespace xpc
