#ifndef XPC_XPATH_INTERNER_H_
#define XPC_XPATH_INTERNER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "xpc/xpath/ast.h"

namespace xpc {

/// Structural hash-consing for `NodeExpr` / `PathExpr` DAGs.
///
/// Interning maps every expression to a *canonical* shared node: two
/// structurally equal expressions (in the sense of `Equal`) intern to the
/// same pointer, so equality of interned expressions is a pointer compare
/// and hashing is an O(1) table lookup. Every canonical node also carries a
/// stable 64-bit structural fingerprint, suitable as a memoization key
/// (collisions are resolved internally — two distinct canonical nodes may
/// in principle share a fingerprint, but `Intern` never conflates them).
///
/// Interning is bottom-up: children are interned first, so canonical nodes
/// always point at canonical children, and re-interning an already-canonical
/// DAG is a cheap pointer-keyed memo hit. The interner owns nothing beyond
/// the shared_ptrs it hands out; it is not thread-safe (the `Session` layer
/// serializes access).
class ExprInterner {
 public:
  ExprInterner() = default;
  ExprInterner(const ExprInterner&) = delete;
  ExprInterner& operator=(const ExprInterner&) = delete;

  /// Canonical representative of `p` / `n` (nullptr passes through).
  PathPtr Intern(const PathPtr& p);
  NodePtr Intern(const NodePtr& n);

  /// Structural fingerprint (interns first). Stable within a process for a
  /// fixed expression structure; 0 is reserved for nullptr.
  uint64_t Fingerprint(const PathPtr& p);
  uint64_t Fingerprint(const NodePtr& n);

  /// Number of distinct canonical path / node expressions interned.
  size_t num_paths() const { return path_count_; }
  size_t num_nodes() const { return node_count_; }

  /// Drops all tables (canonical pointers stay alive via their owners).
  void Clear();

 private:
  std::pair<PathPtr, uint64_t> InternPath(const PathPtr& p);
  std::pair<NodePtr, uint64_t> InternNode(const NodePtr& n);

  // Canonical nodes bucketed by fingerprint; buckets are almost always
  // singletons, the vector resolves the (theoretical) 64-bit collisions.
  std::unordered_map<uint64_t, std::vector<PathPtr>> path_buckets_;
  std::unordered_map<uint64_t, std::vector<NodePtr>> node_buckets_;
  // Pointer-keyed memo over CANONICAL nodes only (their lifetime is pinned
  // by the buckets): re-interning an already-canonical node or sub-DAG is
  // O(1). Caller-owned aliases are deliberately not memoized — their
  // addresses can be reused after free, which would alias unrelated
  // expressions to a stale canonical.
  std::unordered_map<const PathExpr*, std::pair<PathPtr, uint64_t>> path_memo_;
  std::unordered_map<const NodeExpr*, std::pair<NodePtr, uint64_t>> node_memo_;
  size_t path_count_ = 0;
  size_t node_count_ = 0;
};

}  // namespace xpc

#endif  // XPC_XPATH_INTERNER_H_
