#include "xpc/xpath/fragment.h"

#include <sstream>

namespace xpc {

namespace {

void MarkAxis(Axis axis, Fragment* f) {
  switch (axis) {
    case Axis::kChild: f->uses_child = true; break;
    case Axis::kParent: f->uses_parent = true; break;
    case Axis::kRight: f->uses_right = true; break;
    case Axis::kLeft: f->uses_left = true; break;
  }
}

void Detect(const PathPtr& path, Fragment* f);

void Detect(const NodePtr& node, Fragment* f) {
  switch (node->kind) {
    case NodeKind::kLabel:
    case NodeKind::kTrue:
    case NodeKind::kIsVar:
      break;
    case NodeKind::kSome:
      Detect(node->path, f);
      break;
    case NodeKind::kNot:
      Detect(node->child1, f);
      break;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      Detect(node->child1, f);
      Detect(node->child2, f);
      break;
    case NodeKind::kPathEq:
      f->uses_path_eq = true;
      Detect(node->path, f);
      Detect(node->path2, f);
      break;
  }
}

void Detect(const PathPtr& path, Fragment* f) {
  switch (path->kind) {
    case PathKind::kAxis:
    case PathKind::kAxisStar:
      MarkAxis(path->axis, f);
      break;
    case PathKind::kSelf:
      break;
    case PathKind::kSeq:
    case PathKind::kUnion:
      Detect(path->left, f);
      Detect(path->right, f);
      break;
    case PathKind::kFilter:
      Detect(path->left, f);
      Detect(path->filter, f);
      break;
    case PathKind::kStar:
      f->uses_star = true;
      Detect(path->left, f);
      break;
    case PathKind::kIntersect:
      f->uses_intersect = true;
      Detect(path->left, f);
      Detect(path->right, f);
      break;
    case PathKind::kComplement:
      f->uses_complement = true;
      Detect(path->left, f);
      Detect(path->right, f);
      break;
    case PathKind::kFor:
      f->uses_for = true;
      Detect(path->left, f);
      Detect(path->right, f);
      break;
  }
}

}  // namespace

std::string Fragment::Name() const {
  std::ostringstream os;
  os << "CoreXPath";
  std::string axes;
  if (!(uses_child && uses_parent && uses_right && uses_left)) {
    if (uses_child) axes += "v";   // ↓
    if (uses_parent) axes += "^";  // ↑
    if (uses_right) axes += ">";   // →
    if (uses_left) axes += "<";    // ←
    if (!axes.empty()) os << "_{" << axes << "}";
  }
  std::string ops;
  auto add = [&ops](const char* s) {
    if (!ops.empty()) ops += ", ";
    ops += s;
  };
  if (uses_star) add("*");
  if (uses_path_eq) add("~");
  if (uses_intersect) add("cap");
  if (uses_complement) add("-");
  if (uses_for) add("for");
  if (!ops.empty()) os << "(" << ops << ")";
  return os.str();
}

Fragment Fragment::Join(const Fragment& a, const Fragment& b) {
  Fragment f;
  f.uses_path_eq = a.uses_path_eq || b.uses_path_eq;
  f.uses_intersect = a.uses_intersect || b.uses_intersect;
  f.uses_complement = a.uses_complement || b.uses_complement;
  f.uses_for = a.uses_for || b.uses_for;
  f.uses_star = a.uses_star || b.uses_star;
  f.uses_child = a.uses_child || b.uses_child;
  f.uses_parent = a.uses_parent || b.uses_parent;
  f.uses_right = a.uses_right || b.uses_right;
  f.uses_left = a.uses_left || b.uses_left;
  return f;
}

Fragment DetectFragment(const PathPtr& path) {
  Fragment f;
  Detect(path, &f);
  return f;
}

Fragment DetectFragment(const NodePtr& node) {
  Fragment f;
  Detect(node, &f);
  return f;
}

}  // namespace xpc
