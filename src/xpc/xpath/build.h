#ifndef XPC_XPATH_BUILD_H_
#define XPC_XPATH_BUILD_H_

#include <string>
#include <vector>

#include "xpc/xpath/ast.h"

namespace xpc {

// Factory functions for building expressions programmatically. All return
// freshly allocated immutable nodes; sharing subterms is encouraged.

/// τ — an atomic axis step.
PathPtr Ax(Axis axis);
/// τ* — the reflexive-transitive closure of an atomic axis.
PathPtr AxStar(Axis axis);
/// τ⁺ = τ/τ* — the (irreflexive) transitive closure shorthand.
PathPtr AxPlus(Axis axis);
/// "." — the identity path.
PathPtr Self();
/// α/β.
PathPtr Seq(PathPtr a, PathPtr b);
/// α₁/…/αₙ for n ≥ 1.
PathPtr SeqAll(std::vector<PathPtr> parts);
/// α ∪ β.
PathPtr Union(PathPtr a, PathPtr b);
/// ⋃ αᵢ (n ≥ 1).
PathPtr UnionAll(std::vector<PathPtr> parts);
/// α[φ].
PathPtr Filter(PathPtr a, NodePtr f);
/// .[φ] — a pure test step.
PathPtr Test(NodePtr f);
/// α* — general transitive closure (the * extension).
PathPtr Star(PathPtr a);
/// α ∩ β (the ∩ extension).
PathPtr Intersect(PathPtr a, PathPtr b);
/// ⋂ αᵢ (n ≥ 1).
PathPtr IntersectAll(std::vector<PathPtr> parts);
/// α − β (the − extension).
PathPtr Complement(PathPtr a, PathPtr b);
/// "for $var in α return β" (the for extension).
PathPtr For(const std::string& var, PathPtr in, PathPtr ret);

/// p.
NodePtr Label(const std::string& label);
/// ⊤.
NodePtr True();
/// ⊥ = ¬⊤.
NodePtr False();
/// ⟨α⟩.
NodePtr Some(PathPtr a);
/// ¬φ (collapses double negation).
NodePtr Not(NodePtr f);
/// φ ∧ ψ.
NodePtr And(NodePtr a, NodePtr b);
/// ⋀ φᵢ (empty conjunction is ⊤).
NodePtr AndAll(std::vector<NodePtr> parts);
/// φ ∨ ψ.
NodePtr Or(NodePtr a, NodePtr b);
/// ⋁ φᵢ (empty disjunction is ⊥).
NodePtr OrAll(std::vector<NodePtr> parts);
/// φ ⇒ ψ = ¬(φ ∧ ¬ψ).
NodePtr Implies(NodePtr a, NodePtr b);
/// α ≈ β (the ≈ extension).
NodePtr PathEq(PathPtr a, PathPtr b);
/// ". is $var".
NodePtr IsVar(const std::string& var);
/// every(α, φ) = ¬⟨α[¬φ]⟩ — "every node reachable by α satisfies φ".
NodePtr Every(PathPtr a, NodePtr f);

/// The syntactic converse α⁻ of a path expression (Section 3.1). Defined for
/// ≈/∩/−-free... — in fact for every operator except `for`; `for` paths are
/// rejected with a null return.
PathPtr ConversePath(const PathPtr& a);

}  // namespace xpc

#endif  // XPC_XPATH_BUILD_H_
