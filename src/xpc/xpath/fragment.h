#ifndef XPC_XPATH_FRAGMENT_H_
#define XPC_XPATH_FRAGMENT_H_

#include <string>

#include "xpc/xpath/ast.h"

namespace xpc {

/// Which CoreXPath extension operators and axes an expression uses — the
/// coordinates of the language lattice of Table I / Figure 1. Used by the
/// solver facade to dispatch to the cheapest complete decision procedure.
struct Fragment {
  // Extension operators (Section 2.2).
  bool uses_path_eq = false;      ///< ≈
  bool uses_intersect = false;    ///< ∩
  bool uses_complement = false;   ///< −
  bool uses_for = false;          ///< for
  bool uses_star = false;         ///< general transitive closure *

  // Axes (which of {↓, ↑, →, ←} occur, counting τ and τ*).
  bool uses_child = false;
  bool uses_parent = false;
  bool uses_right = false;
  bool uses_left = false;

  /// True if only the ↓ axis occurs — the *downward* fragment.
  bool IsDownward() const { return !uses_parent && !uses_right && !uses_left; }
  /// True if only ↓, ↑ occur — the *vertical* fragment.
  bool IsVertical() const { return !uses_right && !uses_left; }
  /// True if only ↓, → occur — the *forward* fragment.
  bool IsForward() const { return !uses_parent && !uses_left; }

  /// True for plain CoreXPath(*, ≈) and below: no ∩, −, for.
  bool IsRegularFriendly() const {
    return !uses_intersect && !uses_complement && !uses_for;
  }

  /// Human-readable language name, e.g. "CoreXPath(*, ∩)".
  std::string Name() const;

  /// Pointwise union of the features of `a` and `b`.
  static Fragment Join(const Fragment& a, const Fragment& b);
};

/// Computes the fragment coordinates of an expression.
Fragment DetectFragment(const PathPtr& path);
Fragment DetectFragment(const NodePtr& node);

}  // namespace xpc

#endif  // XPC_XPATH_FRAGMENT_H_
