#include "xpc/xpath/printer.h"

#include <sstream>

namespace xpc {

namespace {

// Path precedence levels, loosest to tightest.
constexpr int kPrecFor = 0;
constexpr int kPrecUnion = 1;
constexpr int kPrecComplement = 2;
constexpr int kPrecIntersect = 3;
constexpr int kPrecSeq = 4;
constexpr int kPrecPostfix = 5;

// Node precedence levels.
constexpr int kPrecOr = 0;
constexpr int kPrecAnd = 1;
constexpr int kPrecNodeAtom = 2;

void PrintPath(const PathPtr& p, int parent_prec, std::ostringstream* os);
void PrintNode(const NodePtr& n, int parent_prec, std::ostringstream* os);

int PathPrec(const PathPtr& p) {
  switch (p->kind) {
    case PathKind::kFor: return kPrecFor;
    case PathKind::kUnion: return kPrecUnion;
    case PathKind::kComplement: return kPrecComplement;
    case PathKind::kIntersect: return kPrecIntersect;
    case PathKind::kSeq: return kPrecSeq;
    default: return kPrecPostfix;
  }
}

void PrintPath(const PathPtr& p, int parent_prec, std::ostringstream* os) {
  const int prec = PathPrec(p);
  const bool parens = prec < parent_prec;
  if (parens) *os << '(';
  switch (p->kind) {
    case PathKind::kAxis:
      *os << AxisName(p->axis);
      break;
    case PathKind::kAxisStar:
      *os << AxisName(p->axis) << '*';
      break;
    case PathKind::kSelf:
      *os << '.';
      break;
    case PathKind::kSeq:
      // All the binary path operators parse left-associatively, so a
      // right-nested operand at the same precedence level must keep its
      // parentheses: `a/(b/c)` reparsed from `a/b/c` would associate the
      // other way and break print→parse round-tripping.
      PrintPath(p->left, kPrecSeq, os);
      *os << '/';
      PrintPath(p->right, kPrecSeq + 1, os);
      break;
    case PathKind::kUnion:
      PrintPath(p->left, kPrecUnion, os);
      *os << " | ";
      PrintPath(p->right, kPrecUnion + 1, os);
      break;
    case PathKind::kFilter:
      PrintPath(p->left, kPrecPostfix, os);
      *os << '[';
      PrintNode(p->filter, kPrecOr, os);
      *os << ']';
      break;
    case PathKind::kStar:
      // Star(τ) is semantically the axis closure τ*; print it that way so
      // print → parse → print is a fixpoint (the parser canonicalizes
      // `(down)*` to the axis closure).
      if (p->left->kind == PathKind::kAxis) {
        *os << AxisName(p->left->axis) << '*';
        break;
      }
      PrintPath(p->left, kPrecPostfix + 1, os);  // Force parens unless atomic.
      *os << '*';
      break;
    case PathKind::kIntersect:
      PrintPath(p->left, kPrecIntersect, os);
      *os << " & ";
      PrintPath(p->right, kPrecIntersect + 1, os);
      break;
    case PathKind::kComplement:
      PrintPath(p->left, kPrecComplement, os);
      *os << " - ";
      PrintPath(p->right, kPrecComplement + 1, os);
      break;
    case PathKind::kFor:
      *os << "for $" << p->var << " in ";
      PrintPath(p->left, kPrecUnion, os);
      *os << " return ";
      PrintPath(p->right, kPrecFor, os);
      break;
  }
  if (parens) *os << ')';
}

int NodePrec(const NodePtr& n) {
  switch (n->kind) {
    case NodeKind::kOr: return kPrecOr;
    case NodeKind::kAnd: return kPrecAnd;
    default: return kPrecNodeAtom;
  }
}

void PrintNode(const NodePtr& n, int parent_prec, std::ostringstream* os) {
  const int prec = NodePrec(n);
  const bool parens = prec < parent_prec;
  if (parens) *os << '(';
  switch (n->kind) {
    case NodeKind::kLabel:
      *os << n->label;
      break;
    case NodeKind::kTrue:
      *os << "true";
      break;
    case NodeKind::kSome:
      *os << '<';
      PrintPath(n->path, kPrecFor, os);
      *os << '>';
      break;
    case NodeKind::kNot:
      *os << "not(";
      PrintNode(n->child1, kPrecOr, os);
      *os << ')';
      break;
    case NodeKind::kAnd:
      // `and`/`or` parse left-associatively too; see the kSeq note above.
      PrintNode(n->child1, kPrecAnd, os);
      *os << " and ";
      PrintNode(n->child2, kPrecAnd + 1, os);
      break;
    case NodeKind::kOr:
      PrintNode(n->child1, kPrecOr, os);
      *os << " or ";
      PrintNode(n->child2, kPrecOr + 1, os);
      break;
    case NodeKind::kPathEq:
      *os << "eq(";
      PrintPath(n->path, kPrecFor, os);
      *os << ", ";
      PrintPath(n->path2, kPrecFor, os);
      *os << ')';
      break;
    case NodeKind::kIsVar:
      *os << "is $" << n->var;
      break;
  }
  if (parens) *os << ')';
}

}  // namespace

std::string ToString(const PathPtr& path) {
  std::ostringstream os;
  PrintPath(path, kPrecFor, &os);
  return os.str();
}

std::string ToString(const NodePtr& node) {
  std::ostringstream os;
  PrintNode(node, kPrecOr, &os);
  return os.str();
}

}  // namespace xpc
