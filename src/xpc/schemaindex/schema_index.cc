#include "xpc/schemaindex/schema_index.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "xpc/automata/regex.h"
#include "xpc/common/stats.h"

namespace xpc {

namespace {

// --- Fingerprint (FNV over the textual schema, splitmix-mixed) -----------

uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t FpCombine(uint64_t seed, uint64_t v) {
  return MixU64(seed ^ (v + 0x165667b19e3779f9ULL));
}

uint64_t FpString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return MixU64(h);
}

int ResolveBuildThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return static_cast<int>(hw < 8 ? hw : 8);
}

// States of `nfa` reachable from the initial set reading symbols in
// `alphabet` (ε-closed throughout).
Bits ReachedStates(const Nfa& nfa, const Bits& alphabet) {
  Bits reached = nfa.InitialSet();
  bool grew = true;
  while (grew) {
    grew = false;
    alphabet.ForEach([&](int s) { grew = reached.UnionWith(nfa.Step(reached, s)) || grew; });
  }
  return reached;
}

// --- Registry -------------------------------------------------------------

// Process-wide fingerprint-keyed store of built indexes, LRU-bounded: fuzz
// and test workloads churn through thousands of throwaway schemas, and a
// bounded registry keeps them from pinning every index forever. Real
// serving traffic touches a handful of schemas, which stay resident.
constexpr size_t kRegistryCapacity = 64;

struct Registry {
  std::mutex mu;
  // Front of `order` = most recently used.
  std::list<uint64_t> order;
  std::unordered_map<uint64_t,
                     std::pair<std::shared_ptr<const SchemaIndex>, std::list<uint64_t>::iterator>>
      map;

  std::shared_ptr<const SchemaIndex> Get(uint64_t fp) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = map.find(fp);
    if (it == map.end()) return nullptr;
    order.splice(order.begin(), order, it->second.second);
    return it->second.first;
  }

  void Put(uint64_t fp, std::shared_ptr<const SchemaIndex> index) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = map.find(fp);
    if (it != map.end()) {
      order.splice(order.begin(), order, it->second.second);
      return;  // A concurrent build won the race; keep the resident index.
    }
    order.push_front(fp);
    map.emplace(fp, std::make_pair(std::move(index), order.begin()));
    while (map.size() > kRegistryCapacity) {
      map.erase(order.back());
      order.pop_back();
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu);
    map.clear();
    order.clear();
  }

  size_t Size() {
    std::lock_guard<std::mutex> lock(mu);
    return map.size();
  }
};

Registry& TheRegistry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<bool> g_enabled{true};

}  // namespace

// --- Reachability closure -------------------------------------------------

TypeReachability ComputeTypeReachability(const Edtd& edtd) {
  TypeReachability a;
  a.n = static_cast<int>(edtd.types().size());
  a.root = edtd.TypeIndex(edtd.root_type());
  a.realizable = Bits(a.n);
  a.realize_round.assign(a.n, -1);

  // Realizability fixpoint. Rounds are strict: a type realized in round k
  // accepts a word over types realized in rounds < k, which is what lets
  // the fast-path witness builders terminate on recursive schemas.
  int round = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    Bits snapshot = a.realizable;
    std::vector<int> fresh;
    for (int t = 0; t < a.n; ++t) {
      if (a.realizable.Get(t)) continue;
      const Nfa& nfa = edtd.ContentNfa(t);
      a.explored += nfa.num_states();
      if (nfa.AnyAccepting(ReachedStates(nfa, snapshot))) fresh.push_back(t);
    }
    for (int t : fresh) {
      a.realizable.Set(t);
      a.realize_round[t] = round;
      changed = true;
    }
    ++round;
  }

  // avail(t): forward-reachable × backward-coreachable transition sweep.
  a.avail.assign(a.n, Bits(a.n));
  for (int t = 0; t < a.n; ++t) {
    if (!a.realizable.Get(t)) continue;
    const Nfa& nfa = edtd.ContentNfa(t);
    Bits forward = ReachedStates(nfa, a.realizable);
    Bits backward(nfa.num_states());
    for (int q : nfa.accepting()) backward.Set(q);
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Nfa::Transition& tr : nfa.transitions()) {
        bool usable = tr.symbol == Nfa::kEpsilon || a.realizable.Get(tr.symbol);
        if (usable && backward.Get(tr.to) && !backward.Get(tr.from)) {
          backward.Set(tr.from);
          grew = true;
        }
      }
    }
    for (const Nfa::Transition& tr : nfa.transitions()) {
      if (tr.symbol == Nfa::kEpsilon || !a.realizable.Get(tr.symbol)) continue;
      if (forward.Get(tr.from) && backward.Get(tr.to)) a.avail[t].Set(tr.symbol);
    }
    a.explored += static_cast<int64_t>(nfa.transitions().size());
  }

  // Reachability from the root over avail edges, with BFS parents.
  a.reachable = Bits(a.n);
  a.reach_parent.assign(a.n, -1);
  if (a.root >= 0 && a.realizable.Get(a.root)) {
    std::deque<int> queue = {a.root};
    a.reachable.Set(a.root);
    while (!queue.empty()) {
      int t = queue.front();
      queue.pop_front();
      a.avail[t].ForEach([&](int u) {
        if (!a.reachable.Get(u)) {
          a.reachable.Set(u);
          a.reach_parent[u] = t;
          queue.push_back(u);
        }
      });
    }
  }

  // Strict-descendant closure: down(t) = ⋃_{u ∈ avail(t)} {u} ∪ down(u).
  a.down = a.avail;
  changed = true;
  while (changed) {
    changed = false;
    for (int t = 0; t < a.n; ++t) {
      Bits add(a.n);
      a.down[t].ForEach([&](int u) { add.UnionWith(a.down[u]); });
      changed = a.down[t].UnionWith(add) || changed;
    }
  }
  return a;
}

// --- Build ----------------------------------------------------------------

namespace {

// Sibling relations of one ε-free content automaton, restricted to
// realizable symbols: fwd = states reachable from the initial set over
// realizable words, bwd = states co-reachable to an accepting state over
// realizable words. A symbol pair (a, b) is a follow pair iff some
// transition chain fwd —a→ q —b→ bwd exists, which is exact for "the factor
// ab occurs in some all-realizable word of the language".
SchemaIndex::SiblingRelations ComputeSiblings(const Nfa& nfa, const Bits& realizable,
                                              int num_types) {
  const int ns = nfa.num_states();
  Bits fwd = ReachedStates(nfa, realizable);
  Bits bwd(ns);
  for (int q : nfa.accepting()) bwd.Set(q);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Nfa::Transition& tr : nfa.transitions()) {
      if (!realizable.Get(tr.symbol)) continue;  // ε-free by construction.
      if (bwd.Get(tr.to) && !bwd.Get(tr.from)) {
        bwd.Set(tr.from);
        grew = true;
      }
    }
  }

  SchemaIndex::SiblingRelations s;
  s.first = Bits(num_types);
  s.last = Bits(num_types);
  s.follow.assign(num_types, Bits(num_types));

  Bits init = nfa.InitialSet();
  Bits accepting(ns);
  for (int q : nfa.accepting()) accepting.Set(q);
  for (const Nfa::Transition& tr : nfa.transitions()) {
    if (!realizable.Get(tr.symbol)) continue;
    if (init.Get(tr.from) && bwd.Get(tr.to)) s.first.Set(tr.symbol);
    if (fwd.Get(tr.from)) {
      // The word may end here iff an accepting state is co-reachable via ε…
      // there are no ε-moves, so "ends with tr.symbol" means tr.to accepts.
      if (accepting.Get(tr.to)) s.last.Set(tr.symbol);
    }
  }
  // follow: per left symbol a, the states entered by a from fwd; any
  // realizable b leaving that set toward bwd completes a factor.
  for (int a = 0; a < num_types; ++a) {
    if (!realizable.Get(a)) continue;
    Bits after_a(ns);
    for (const Nfa::Transition& tr : nfa.transitions()) {
      if (tr.symbol == a && fwd.Get(tr.from)) after_a.Set(tr.to);
    }
    if (after_a.None()) continue;
    for (const Nfa::Transition& tr : nfa.transitions()) {
      if (!realizable.Get(tr.symbol)) continue;
      if (after_a.Get(tr.from) && bwd.Get(tr.to)) s.follow[a].Set(tr.symbol);
    }
  }
  return s;
}

}  // namespace

std::shared_ptr<const SchemaIndex> SchemaIndex::Build(const Edtd& edtd,
                                                      const SchemaIndexOptions& options) {
  StatsTimer timer(Metric::kSchemaIndexBuild);
  const int n = static_cast<int>(edtd.types().size());
  auto index = std::shared_ptr<SchemaIndex>(new SchemaIndex());
  index->fingerprint_ = FingerprintEdtd(edtd);
  index->num_types_ = n;

  // Phase 1 (serial): force the lazily built content NFAs (CSR indexes,
  // ε-closure memos) and the Edtd's cached predicates while this thread has
  // the schema to itself, then run the global reachability fixpoint. After
  // this phase the Edtd is only ever read.
  for (int t = 0; t < n; ++t) edtd.ContentNfa(t).EnsureIndexed();
  index->schema_class_ = ClassifySchema(edtd);
  index->reach_ = ComputeTypeReachability(edtd);

  // Phase 2 (parallel): one task per type, writing disjoint preallocated
  // slots — ε-free automaton, minimized content DFA, sibling relations.
  // Every artifact is a pure function of (edtd, t), so the fan-out is
  // bit-identical at any thread count; telemetry routes to the caller's
  // sink (thread-safe atomics).
  index->automata_.assign(n, Nfa(0, 0));
  index->dfas_.assign(n, Dfa(0, 0));
  index->siblings_.assign(n, SiblingRelations{});
  auto build_type = [&](int t) {
    const Nfa& content = edtd.ContentNfa(t);
    Nfa efree = content.RemoveEpsilons();
    efree.EnsureIndexed();
    index->dfas_[t] = Dfa::Determinize(content).Minimize();
    index->siblings_[t] = ComputeSiblings(efree, index->reach_.realizable, n);
    index->automata_[t] = std::move(efree);
  };
  const int threads = std::min(ResolveBuildThreads(options.build_threads), n > 0 ? n : 1);
  if (threads > 1) {
    Stats* sink = Stats::Current();
    std::atomic<int> next{0};
    auto worker = [&] {
      ScopedStatsSink stats_scope(sink);
      for (int t = next.fetch_add(1); t < n; t = next.fetch_add(1)) build_type(t);
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  } else {
    for (int t = 0; t < n; ++t) build_type(t);
  }

  // Phase 3 (serial merge, type order): the global state numbering, the
  // downward engine's dependents seed, and the Prop. 6 encode skeleton
  // (built from the phase-2 automata, so warm and cold encodings agree
  // structurally).
  index->offsets_.assign(n, 0);
  index->total_states_ = 0;
  for (int t = 0; t < n; ++t) {
    index->offsets_[t] = index->total_states_;
    index->total_states_ += index->automata_[t].num_states();
  }
  index->dependents_.assign(n, Bits(n));
  for (int t = 0; t < n; ++t) {
    for (const Nfa::Transition& tr : edtd.ContentNfa(t).transitions()) {
      if (tr.symbol >= 0) index->dependents_[tr.symbol].Set(t);
    }
  }
  index->skeleton_ =
      BuildEncodeSkeleton(edtd, index->automata_, index->offsets_, index->total_states_);
  return index;
}

std::shared_ptr<const SchemaIndex> SchemaIndex::Acquire(const Edtd& edtd,
                                                        const SchemaIndexOptions& options) {
  if (!Enabled()) return nullptr;
  const uint64_t fp = FingerprintEdtd(edtd);
  if (std::shared_ptr<const SchemaIndex> hit = TheRegistry().Get(fp)) {
    StatsAdd(Metric::kSchemaIndexHits);
    return hit;
  }
  StatsAdd(Metric::kSchemaIndexColdMisses);
  std::shared_ptr<const SchemaIndex> built = Build(edtd, options);
  TheRegistry().Put(fp, built);
  return built;
}

std::shared_ptr<const SchemaIndex> SchemaIndex::Lookup(const Edtd& edtd) {
  if (!Enabled()) return nullptr;
  const uint64_t fp = FingerprintEdtd(edtd);
  if (std::shared_ptr<const SchemaIndex> hit = TheRegistry().Get(fp)) {
    StatsAdd(Metric::kSchemaIndexHits);
    return hit;
  }
  StatsAdd(Metric::kSchemaIndexColdMisses);
  return nullptr;
}

bool SchemaIndex::Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SchemaIndex::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void SchemaIndex::ClearRegistry() { TheRegistry().Clear(); }

size_t SchemaIndex::RegistrySize() { return TheRegistry().Size(); }

uint64_t SchemaIndex::FingerprintEdtd(const Edtd& edtd) {
  uint64_t h = MixU64(0x5c11e3a1d8ULL);
  h = FpCombine(h, FpString(edtd.root_type()));
  for (const Edtd::TypeDef& t : edtd.types()) {
    h = FpCombine(h, FpString(t.abstract_label));
    h = FpCombine(h, FpString(t.concrete_label));
    h = FpCombine(h, FpString(RegexToString(t.content)));
  }
  return h;
}

}  // namespace xpc
