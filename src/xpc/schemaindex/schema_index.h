#ifndef XPC_SCHEMAINDEX_SCHEMA_INDEX_H_
#define XPC_SCHEMAINDEX_SCHEMA_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "xpc/automata/dfa.h"
#include "xpc/automata/nfa.h"
#include "xpc/classify/profile.h"
#include "xpc/common/bits.h"
#include "xpc/edtd/edtd.h"
#include "xpc/edtd/encode.h"

namespace xpc {

/// Configuration of a `SchemaIndex` build.
struct SchemaIndexOptions {
  /// Worker threads for the per-type build phase. 0 = hardware concurrency
  /// (capped at 8), 1 = serial, n > 1 = exactly n workers. The result is
  /// bit-identical at every thread count (see SchemaIndex::Build).
  int build_threads = 0;
};

/// The PTIME type-level closure both fast-path procedures share (moved here
/// from classify/fastpath.cc so one computation serves every consumer):
/// realizability of each type (least fixpoint over the content automata),
/// the available-child relation avail(t) = {u | some word of L(P(t)) over
/// realizable types contains u}, its strict-descendant closure, and
/// root-reachability with BFS parents for witness construction.
struct TypeReachability {
  int n = 0;
  int root = -1;
  Bits realizable;
  std::vector<int> realize_round;  ///< Fixpoint round a type became realizable.
  Bits reachable;                  ///< Realizable ∧ reachable from the root.
  std::vector<int> reach_parent;   ///< BFS tree over avail edges.
  std::vector<Bits> avail;
  std::vector<Bits> down;  ///< Strict-descendant closure of avail.
  int64_t explored = 0;    ///< Work measure (NFA states + transitions swept).
};

/// One pass of the reachability analysis. Deterministic; O(schema²) worst
/// case. `SchemaIndex` caches the result per EDTD — call this directly only
/// when no index is available.
TypeReachability ComputeTypeReachability(const Edtd& edtd);

/// An immutable per-EDTD index of everything the engines and fast paths
/// otherwise re-derive per query: the type-reachability closure, ε-free and
/// minimized content automata with a global state numbering, horizontal
/// sibling relations, the cached schema-class predicates, and the
/// pre-saturated Proposition 6 encode skeleton (the loop-engine relation
/// seed).
///
/// Immutability contract: after `Build` returns, a `SchemaIndex` is never
/// mutated — every accessor is const, every contained automaton has its
/// lazy CSR index pre-forced, and the registry hands out
/// `shared_ptr<const SchemaIndex>`, so one index is safely shared read-only
/// across threads, Sessions and fast paths.
///
/// Determinism contract: every artifact is a pure function of the EDTD.
/// The parallel build fans out one task per type into preallocated
/// per-type slots and merges serially in type order, so the built index is
/// bit-identical at any `build_threads` setting (asserted by
/// tests/schemaindex_test.cc).
class SchemaIndex {
 public:
  /// Horizontal sibling relations of one content model, restricted to
  /// realizable symbols: which types can begin / end a word, and which
  /// ordered pairs occur adjacently in some word.
  struct SiblingRelations {
    Bits first;                ///< a: some realizable word starts with a.
    Bits last;                 ///< a: some realizable word ends with a.
    std::vector<Bits> follow;  ///< follow[a].Get(b): factor "ab" occurs.
  };

  /// Builds an index for `edtd` without touching the registry.
  static std::shared_ptr<const SchemaIndex> Build(const Edtd& edtd,
                                                  const SchemaIndexOptions& options = {});

  /// Registry-backed lookup-or-build, keyed on a stable EDTD fingerprint.
  /// Returns nullptr when the index layer is disabled (`SetEnabled(false)`).
  static std::shared_ptr<const SchemaIndex> Acquire(const Edtd& edtd,
                                                    const SchemaIndexOptions& options = {});

  /// Registry lookup only — never builds. Counts a `schemaindex.hits` /
  /// `schemaindex.cold_misses` metric per call; returns nullptr on a miss
  /// or when disabled. This is what the per-query consult sites use, so a
  /// standalone Solver with no attached index behaves exactly as before.
  static std::shared_ptr<const SchemaIndex> Lookup(const Edtd& edtd);

  /// Global kill switch (on by default). Disabling makes `Lookup` and
  /// `Acquire` return nullptr — the index-disabled leg of the differential
  /// tests and the A/B benches.
  static bool Enabled();
  static void SetEnabled(bool enabled);

  /// Drops every registered index (tests).
  static void ClearRegistry();
  static size_t RegistrySize();

  /// The registry key: stable under EDTD copying and re-parsing.
  static uint64_t FingerprintEdtd(const Edtd& edtd);

  uint64_t fingerprint() const { return fingerprint_; }
  int num_types() const { return num_types_; }

  const TypeReachability& reachability() const { return reach_; }
  const SchemaClass& schema_class() const { return schema_class_; }

  /// ε-free content NFA of type `t` (state count preserved), CSR-indexed.
  const Nfa& EpsilonFreeContentNfa(int t) const { return automata_[t]; }
  const std::vector<Nfa>& epsilon_free_automata() const { return automata_; }

  /// Global state numbering over the ε-free automata: state q of automaton
  /// t has global id `StateOffset(t) + q` (the Γ = Δ × ∪Q numbering of the
  /// Proposition 6 encoding).
  int StateOffset(int t) const { return offsets_[t]; }
  const std::vector<int>& state_offsets() const { return offsets_; }
  int total_content_states() const { return total_states_; }

  /// Hopcroft-minimized content DFA of type `t` (alphabet = definition-order
  /// abstract labels).
  const Dfa& MinimalContentDfa(int t) const { return dfas_[t]; }

  const SiblingRelations& siblings(int t) const { return siblings_[t]; }

  /// dependents()[c] = types whose content NFA has a transition on symbol c
  /// — the downward engine's worklist seed.
  const std::vector<Bits>& dependents() const { return dependents_; }

  /// The schema-only part of the Proposition 6 encoding (conjunct list +
  /// label substitution), shared by every query against this schema.
  const EncodeSkeleton& encode_skeleton() const { return skeleton_; }

 private:
  SchemaIndex() = default;

  uint64_t fingerprint_ = 0;
  int num_types_ = 0;
  TypeReachability reach_;
  SchemaClass schema_class_;
  std::vector<Nfa> automata_;
  std::vector<int> offsets_;
  int total_states_ = 0;
  std::vector<Dfa> dfas_;
  std::vector<SiblingRelations> siblings_;
  std::vector<Bits> dependents_;
  EncodeSkeleton skeleton_;
};

}  // namespace xpc

#endif  // XPC_SCHEMAINDEX_SCHEMA_INDEX_H_
