#ifndef XPC_REDUCTION_REDUCTIONS_H_
#define XPC_REDUCTION_REDUCTIONS_H_

#include <string>
#include <utility>

#include "xpc/edtd/edtd.h"
#include "xpc/tree/xml_tree.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Proposition 4: the polynomial inter-reductions between path containment,
/// path satisfiability and node satisfiability.

/// Containment → node unsatisfiability (no schema): returns a node
/// expression ψ over decorated labels (p, i) — rendered `p__d0` / `p__d1` —
/// such that α ⊆ β over all XML trees iff ψ is unsatisfiable. The
/// decoration marks the intended endpoint e of a counterexample pair
/// (d, e) ∈ ⟦α⟧ ∖ ⟦β⟧ with "1": ψ = ⟨ᾱ[1]⟩ ∧ ¬⟨β̄[1]⟩.
NodePtr ContainmentToUnsat(const PathPtr& alpha, const PathPtr& beta);

/// The EDTD-relativized version: also decorates the schema's abstract
/// labels and adds a fresh super-root `s` (whose label is returned), since
/// an EDTD fixes a unique root label but both decorations of it must be
/// admissible. Returns (ψ, D̄): α ⊆ β w.r.t. D iff ψ = ¬s ∧ ⟨ᾱ[1]⟩ ∧ ¬⟨β̄[1]⟩
/// is unsatisfiable w.r.t. D̄ (axes in ᾱ, β̄ are guarded by [¬s]).
std::pair<NodePtr, Edtd> ContainmentToUnsatWithEdtd(const PathPtr& alpha, const PathPtr& beta,
                                                    const Edtd& edtd);

/// Path satisfiability ⇝ node satisfiability: α is satisfiable iff ⟨α⟩ is.
NodePtr PathSatToNodeSat(const PathPtr& alpha);

/// Node unsatisfiability ⇝ path unsatisfiability: φ ⇝ .[φ].
PathPtr NodeSatToPathSat(const NodePtr& phi);

/// The decorated-label names used by `ContainmentToUnsat`.
std::string DecoratedLabel(const std::string& label, int bit);

/// Removes the decoration from a counterexample witness tree: labels
/// `p__d0` / `p__d1` become `p`; if `super_root` is nonempty and labels the
/// tree root, that root is cut off (EDTD case). Unknown labels are kept.
XmlTree StripDecoration(const XmlTree& tree, const std::string& super_root = "");

}  // namespace xpc

#endif  // XPC_REDUCTION_REDUCTIONS_H_
