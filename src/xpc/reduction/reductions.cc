#include "xpc/reduction/reductions.h"

#include <cassert>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "xpc/edtd/encode.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/metrics.h"
#include "xpc/xpath/fragment.h"
#include "xpc/xpath/transform.h"

namespace xpc {

std::string DecoratedLabel(const std::string& label, int bit) {
  return label + (bit == 0 ? "__d0" : "__d1");
}

namespace {

// Γ: the labels of α and β plus one additional label (the proof of
// Proposition 4 shows counterexamples can be relabeled into Γ).
std::set<std::string> GammaOf(const PathPtr& alpha, const PathPtr& beta) {
  std::set<std::string> gamma = Labels(alpha);
  for (const std::string& l : Labels(beta)) gamma.insert(l);
  gamma.insert(FreshLabel(gamma, "x"));
  return gamma;
}

// The substitution p ↦ (p,0) ∨ (p,1).
std::map<std::string, NodePtr> DecorationSubst(const std::set<std::string>& gamma) {
  std::map<std::string, NodePtr> subst;
  for (const std::string& p : gamma) {
    subst[p] = Or(Label(DecoratedLabel(p, 0)), Label(DecoratedLabel(p, 1)));
  }
  return subst;
}

// 1 = ⋁_{p ∈ Γ} (p, 1).
NodePtr OneOf(const std::set<std::string>& gamma) {
  std::vector<NodePtr> parts;
  for (const std::string& p : gamma) parts.push_back(Label(DecoratedLabel(p, 1)));
  return OrAll(std::move(parts));
}

}  // namespace

NodePtr ContainmentToUnsat(const PathPtr& alpha, const PathPtr& beta) {
  std::set<std::string> gamma = GammaOf(alpha, beta);
  std::map<std::string, NodePtr> subst = DecorationSubst(gamma);
  NodePtr one = OneOf(gamma);
  PathPtr alpha_bar = ReplaceLabels(alpha, subst);
  PathPtr beta_bar = ReplaceLabels(beta, subst);
  return And(Some(Filter(alpha_bar, one)), Not(Some(Filter(beta_bar, one))));
}

std::pair<NodePtr, Edtd> ContainmentToUnsatWithEdtd(const PathPtr& alpha, const PathPtr& beta,
                                                    const Edtd& edtd) {
  // Decorate concrete labels in the expressions and abstract labels in the
  // EDTD; add a fresh super-root s above the original root.
  std::set<std::string> gamma;
  for (const std::string& l : Labels(alpha)) gamma.insert(l);
  for (const std::string& l : Labels(beta)) gamma.insert(l);
  for (const std::string& l : edtd.ConcreteLabels()) gamma.insert(l);
  gamma.insert(FreshLabel(gamma, "x"));
  std::string s = FreshLabel(gamma, "s_root");

  // D̄: each abstract label t becomes (t, 0) and (t, 1); content models
  // replace each atomic symbol q by (q,0) + (q,1); P̄(s) = (r,0) + (r,1);
  // μ̄(t, i) = (μ(t), i).
  std::vector<Edtd::TypeDef> types;
  auto decorate_regex = [](const RegexPtr& r) {
    // Recursive rewrite replacing symbols q by (q,0)|(q,1).
    std::function<RegexPtr(const RegexPtr&)> go = [&](const RegexPtr& e) -> RegexPtr {
      switch (e->kind) {
        case Regex::Kind::kEpsilon:
        case Regex::Kind::kEmpty:
          return e;
        case Regex::Kind::kSymbol:
          return RxUnion(RxSymbol(DecoratedLabel(e->symbol, 0)),
                         RxSymbol(DecoratedLabel(e->symbol, 1)));
        case Regex::Kind::kConcat:
          return RxConcat(go(e->left), go(e->right));
        case Regex::Kind::kUnion:
          return RxUnion(go(e->left), go(e->right));
        case Regex::Kind::kStar:
          return RxStar(go(e->left));
      }
      return e;
    };
    return go(r);
  };

  types.push_back({s, RxUnion(RxSymbol(DecoratedLabel(edtd.root_type(), 0)),
                              RxSymbol(DecoratedLabel(edtd.root_type(), 1))),
                   s});
  for (const Edtd::TypeDef& t : edtd.types()) {
    for (int bit = 0; bit < 2; ++bit) {
      types.push_back({DecoratedLabel(t.abstract_label, bit), decorate_regex(t.content),
                       DecoratedLabel(t.concrete_label, bit)});
    }
  }
  Edtd decorated(std::move(types), s);

  std::map<std::string, NodePtr> subst = DecorationSubst(gamma);
  NodePtr one = OneOf(gamma);
  // Guard all axes with [¬s] so that the formulas are blind to the added
  // super-root, then decorate labels. Downward expressions can never reach
  // the super-root from a ¬s node, so the guard is skipped there — this
  // keeps downward inputs inside CoreXPath↓(∩) (the guard on τ* would
  // otherwise introduce the general transitive closure (τ[¬s])*).
  Fragment joint = Fragment::Join(DetectFragment(alpha), DetectFragment(beta));
  PathPtr alpha_guarded = joint.IsDownward() ? alpha : GuardAxes(alpha, Label(s));
  PathPtr beta_guarded = joint.IsDownward() ? beta : GuardAxes(beta, Label(s));
  PathPtr alpha_bar = ReplaceLabels(alpha_guarded, subst);
  PathPtr beta_bar = ReplaceLabels(beta_guarded, subst);
  NodePtr psi = And(Not(Label(s)),
                    And(Some(Filter(alpha_bar, one)), Not(Some(Filter(beta_bar, one)))));
  return {psi, decorated};
}

NodePtr PathSatToNodeSat(const PathPtr& alpha) { return Some(alpha); }

PathPtr NodeSatToPathSat(const NodePtr& phi) { return Test(phi); }

namespace {

std::string Strip(const std::string& label) {
  if (label.size() > 4) {
    std::string suffix = label.substr(label.size() - 4);
    if (suffix == "__d0" || suffix == "__d1") return label.substr(0, label.size() - 4);
  }
  return label;
}

void CopySubtree(const XmlTree& src, NodeId from, XmlTree* dst, NodeId to) {
  for (NodeId c = src.first_child(from); c != kNoNode; c = src.next_sibling(c)) {
    std::vector<std::string> labels;
    for (const std::string& l : src.labels(c)) labels.push_back(Strip(l));
    NodeId copied = dst->AddChild(to, std::move(labels));
    CopySubtree(src, c, dst, copied);
  }
}

}  // namespace

XmlTree StripDecoration(const XmlTree& tree, const std::string& super_root) {
  NodeId root = tree.root();
  if (!super_root.empty() && tree.HasLabel(root, super_root) &&
      tree.first_child(root) != kNoNode) {
    root = tree.first_child(root);  // Cut off the added super-root.
  }
  std::vector<std::string> labels;
  for (const std::string& l : tree.labels(root)) labels.push_back(Strip(l));
  XmlTree out(std::move(labels));
  CopySubtree(tree, root, &out, out.root());
  return out;
}

}  // namespace xpc
