#ifndef XPC_SAT_BOUNDED_SAT_H_
#define XPC_SAT_BOUNDED_SAT_H_

#include "xpc/sat/engine.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Options for the bounded-model engine.
struct BoundedSatOptions {
  /// Exhaustively enumerate all trees with up to this many nodes (labels
  /// drawn from the formula's labels plus one fresh label).
  int max_exhaustive_nodes = 6;
  /// Additionally sample this many random larger trees per size step.
  int random_trees = 200;
  /// Largest random tree size.
  int max_random_nodes = 20;
  /// Seed for the random phase.
  uint64_t seed = 0xb0bbed;
};

/// The bounded-model engine: searches for a witness tree by exhaustive
/// enumeration of small trees followed by random sampling of larger ones,
/// model checking with the ground-truth evaluator.
///
/// Works for the *entire* language, including path complementation and
/// for-loops, for which the paper shows no elementary decision procedure
/// can exist (Theorems 30, 31). Returns kSat with a witness, or
/// kResourceLimit ("not satisfiable within the bound") — never kUnsat,
/// except for the trivial case of formulas without satisfiable labels on a
/// single node when the bound covers the small-model property of the
/// fragment (callers decide; this engine itself only reports the search
/// outcome).
SatResult BoundedSatisfiable(const NodePtr& phi, const BoundedSatOptions& options = {});

}  // namespace xpc

#endif  // XPC_SAT_BOUNDED_SAT_H_
