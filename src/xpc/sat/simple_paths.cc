#include "xpc/sat/simple_paths.h"

#include "xpc/xpath/build.h"

namespace xpc {

namespace {

SimplePath Prepend(SimpleStep head, const SimplePath& tail) {
  SimplePath out;
  out.reserve(tail.size() + 1);
  out.push_back(std::move(head));
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

SimplePath Tail(const SimplePath& p) { return SimplePath(p.begin() + 1, p.end()); }

bool IsDown(const SimplePath& p) { return !p.empty() && p[0].kind == SimpleStep::Kind::kDown; }
bool IsDownStar(const SimplePath& p) {
  return !p.empty() && p[0].kind == SimpleStep::Kind::kDownStar;
}
bool IsTest(const SimplePath& p) { return !p.empty() && p[0].kind == SimpleStep::Kind::kTest; }

void PushAll(std::vector<SimplePath>* out, std::vector<SimplePath> more) {
  for (SimplePath& p : more) out->push_back(std::move(p));
}

std::vector<SimplePath> PrependAll(SimpleStep head, std::vector<SimplePath> paths) {
  std::vector<SimplePath> out;
  out.reserve(paths.size());
  for (SimplePath& p : paths) out.push_back(Prepend(head, p));
  return out;
}

}  // namespace

namespace {

// int{α, β} with a recursion budget: the recursion tree itself can be
// exponential long before the produced set exceeds any size cap.
std::vector<SimplePath> IntersectBudgeted(const SimplePath& a, const SimplePath& b,
                                          int64_t* budget);

}  // namespace

// int{α, β} of Lemma 20, by induction on |α| + |β|.
std::vector<SimplePath> IntersectSimple(const SimplePath& a, const SimplePath& b) {
  int64_t budget = int64_t{1} << 40;
  return IntersectBudgeted(a, b, &budget);
}

namespace {

std::vector<SimplePath> IntersectBudgeted(const SimplePath& a, const SimplePath& b,
                                          int64_t* budget) {
  if (--*budget < 0) return {};  // Exhausted: caller detects via the budget.
  auto IntersectSimple = [budget](const SimplePath& x, const SimplePath& y) {
    return IntersectBudgeted(x, y, budget);
  };
  // int{α} = {α} (both components equal).
  if (a == b) return {a};
  // Tests commute out of either side: int{.[φ]/α, β} = .[φ]/int{α, β}.
  if (IsTest(a)) return PrependAll(a[0], IntersectSimple(Tail(a), b));
  if (IsTest(b)) return PrependAll(b[0], IntersectSimple(a, Tail(b)));
  // ε cases (after tests are stripped).
  if (a.empty()) {
    if (b.empty()) return {SimplePath{}};
    if (IsDown(b)) return {};                        // int{ε, ↓/β} = ∅.
    return IntersectSimple(a, Tail(b));              // int{ε, ↓*/β} = int{ε, β}.
  }
  if (b.empty()) return IntersectSimple(b, a);
  // Both start with ↓ or ↓*.
  if (IsDown(a) && IsDown(b)) {
    return PrependAll(a[0], IntersectSimple(Tail(a), Tail(b)));
  }
  if (IsDown(a) && IsDownStar(b)) {
    // ↓* takes zero steps here, or both take a ↓ step.
    std::vector<SimplePath> out = IntersectSimple(a, Tail(b));
    PushAll(&out, PrependAll(a[0], IntersectSimple(Tail(a), b)));
    return out;
  }
  if (IsDownStar(a) && IsDown(b)) return IntersectSimple(b, a);
  // int{↓*/α, ↓*/β} = ↓*/int{↓*/α, β} ∪ ↓*/int{α, ↓*/β}.
  std::vector<SimplePath> out = PrependAll(a[0], IntersectSimple(a, Tail(b)));
  PushAll(&out, PrependAll(a[0], IntersectSimple(Tail(a), b)));
  return out;
}

}  // namespace

namespace {

// inst(α) of Lemma 20. Returns false on unsupported operators or blowup.
bool Inst(const PathPtr& path, int64_t max_paths, std::vector<SimplePath>* out) {
  switch (path->kind) {
    case PathKind::kAxis:
      if (path->axis != Axis::kChild) return false;
      out->push_back({SimpleStep{SimpleStep::Kind::kDown, nullptr}});
      return true;
    case PathKind::kAxisStar:
      if (path->axis != Axis::kChild) return false;
      out->push_back({SimpleStep{SimpleStep::Kind::kDownStar, nullptr}});
      return true;
    case PathKind::kSelf:
      // inst(.) = {.[⊤]}.
      out->push_back({SimpleStep{SimpleStep::Kind::kTest, True()}});
      return true;
    case PathKind::kFilter: {
      // inst(α[φ]) = {γ/.[φ] : γ ∈ inst(α)}.
      std::vector<SimplePath> base;
      if (!Inst(path->left, max_paths, &base)) return false;
      for (SimplePath& p : base) {
        p.push_back(SimpleStep{SimpleStep::Kind::kTest, path->filter});
        out->push_back(std::move(p));
      }
      return true;
    }
    case PathKind::kSeq: {
      std::vector<SimplePath> l, r;
      if (!Inst(path->left, max_paths, &l) || !Inst(path->right, max_paths, &r)) return false;
      if (static_cast<int64_t>(l.size()) * static_cast<int64_t>(r.size()) > max_paths) {
        return false;
      }
      for (const SimplePath& pl : l) {
        for (const SimplePath& pr : r) {
          SimplePath joined = pl;
          joined.insert(joined.end(), pr.begin(), pr.end());
          out->push_back(std::move(joined));
        }
      }
      return true;
    }
    case PathKind::kUnion: {
      if (!Inst(path->left, max_paths, out)) return false;
      return Inst(path->right, max_paths, out);
    }
    case PathKind::kIntersect: {
      std::vector<SimplePath> l, r;
      if (!Inst(path->left, max_paths, &l) || !Inst(path->right, max_paths, &r)) return false;
      // Budget on the int{} recursion itself: its call tree can be
      // exponential before producing max_paths results.
      int64_t budget = 256 * max_paths;
      for (const SimplePath& pl : l) {
        for (const SimplePath& pr : r) {
          PushAll(out, IntersectBudgeted(pl, pr, &budget));
          if (budget < 0 || static_cast<int64_t>(out->size()) > max_paths) return false;
        }
      }
      return true;
    }
    case PathKind::kStar:
    case PathKind::kComplement:
    case PathKind::kFor:
      return false;  // Outside CoreXPath↓(∩).
  }
  return false;
}

}  // namespace

std::pair<bool, std::vector<SimplePath>> Instantiate(const PathPtr& path, int64_t max_paths) {
  std::vector<SimplePath> out;
  if (!Inst(path, max_paths, &out) || static_cast<int64_t>(out.size()) > max_paths) {
    return {false, {}};
  }
  return {true, std::move(out)};
}

PathPtr SimplePathToPathExpr(const SimplePath& path) {
  if (path.empty()) return Self();
  std::vector<PathPtr> parts;
  for (const SimpleStep& s : path) {
    switch (s.kind) {
      case SimpleStep::Kind::kDown:
        parts.push_back(Ax(Axis::kChild));
        break;
      case SimpleStep::Kind::kDownStar:
        parts.push_back(AxStar(Axis::kChild));
        break;
      case SimpleStep::Kind::kTest:
        parts.push_back(Test(s.test));
        break;
    }
  }
  return SeqAll(std::move(parts));
}

}  // namespace xpc
