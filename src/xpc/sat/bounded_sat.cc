#include "xpc/sat/bounded_sat.h"

#include "xpc/common/stats.h"
#include "xpc/eval/evaluator.h"
#include "xpc/tree/tree_generator.h"
#include "xpc/xpath/metrics.h"

namespace xpc {

SatResult BoundedSatisfiable(const NodePtr& phi, const BoundedSatOptions& options) {
  StatsTimer timer(Metric::kSatBounded);
  SatResult result;
  result.engine = "bounded-sat";

  std::set<std::string> label_set = Labels(phi);
  std::vector<std::string> alphabet(label_set.begin(), label_set.end());
  alphabet.push_back(FreshLabel(label_set, "_other"));

  auto finish = [&]() -> SatResult {
    StatsAdd(Metric::kSatBoundedTrees, result.explored_states);
    StatsGaugeMax(Metric::kSatPeakExploredStates, result.explored_states);
    return std::move(result);
  };

  auto check = [&](const XmlTree& tree) -> bool {
    ++result.explored_states;
    Evaluator ev(tree);
    return ev.SatisfiedSomewhere(phi);
  };

  // Exhaustive phase. Tree counts grow as Catalan(n−1)·|Σ|^n; keep n small.
  for (int n = 1; n <= options.max_exhaustive_nodes; ++n) {
    for (const XmlTree& tree : EnumerateTrees(n, alphabet)) {
      if (check(tree)) {
        result.status = SolveStatus::kSat;
        result.witness = tree;
        return finish();
      }
    }
  }

  // Random phase.
  TreeGenerator gen(options.seed);
  for (int n = options.max_exhaustive_nodes + 1; n <= options.max_random_nodes; ++n) {
    for (int i = 0; i < options.random_trees; ++i) {
      TreeGenOptions opt;
      opt.num_nodes = n;
      opt.alphabet = alphabet;
      XmlTree tree = gen.Generate(opt);
      if (check(tree)) {
        result.status = SolveStatus::kSat;
        result.witness = std::move(tree);
        return finish();
      }
    }
  }

  result.status = SolveStatus::kResourceLimit;
  return finish();
}

}  // namespace xpc
