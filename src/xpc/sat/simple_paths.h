#ifndef XPC_SAT_SIMPLE_PATHS_H_
#define XPC_SAT_SIMPLE_PATHS_H_

#include <vector>

#include "xpc/xpath/ast.h"

namespace xpc {

/// One step of a *simple* CoreXPath↓(∩) path expression (Section 5): ↓, ↓*
/// or a test .[φ].
struct SimpleStep {
  enum class Kind { kDown, kDownStar, kTest };
  Kind kind;
  NodePtr test;  // kTest only.
};

/// Structural step equality (tests compared structurally).
inline bool operator==(const SimpleStep& x, const SimpleStep& y) {
  return x.kind == y.kind && (x.test == y.test || Equal(x.test, y.test));
}

/// A simple path α₁/…/αₙ — possibly empty (ε, the identity).
using SimplePath = std::vector<SimpleStep>;

/// int{α, β} of Lemma 20: rewrites the intersection of two simple paths as
/// a union of simple paths.
std::vector<SimplePath> IntersectSimple(const SimplePath& a, const SimplePath& b);

/// inst(α) of Lemma 20: a set of simple paths whose union is equivalent to
/// the CoreXPath↓(∩) path expression α. Properties (Lemma 20): |inst(α)| is
/// 2^{O(|α|²)}, each member has length ≤ 4|α|, and members only contain node
/// expressions occurring in α. Returns (ok, paths); ok is false if α leaves
/// the downward ∩ fragment or `max_paths` was exceeded.
std::pair<bool, std::vector<SimplePath>> Instantiate(const PathPtr& path,
                                                     int64_t max_paths = 1'000'000);

/// Converts a simple path back to a PathExpr (ε becomes ".").
PathPtr SimplePathToPathExpr(const SimplePath& path);

}  // namespace xpc

#endif  // XPC_SAT_SIMPLE_PATHS_H_
