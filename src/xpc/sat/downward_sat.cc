#include "xpc/sat/downward_sat.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "xpc/common/arena.h"
#include "xpc/common/bits.h"
#include "xpc/common/flat_table.h"
#include "xpc/common/stats.h"
#include "xpc/sat/simple_paths.h"
#include "xpc/schemaindex/schema_index.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/metrics.h"

namespace xpc {

namespace {

// A headed suffix atom: a simple path starting with ↓ or ↓*.
struct Atom {
  SimpleStep::Kind head;   // kDown or kDownStar.
  const SimplePath* path;  // Owning inst path.
  int pos;                 // Position of the head step within *path.
};

struct Summary {
  int type = 0;
  Bits bits;

  bool operator==(const Summary& o) const { return type == o.type && bits == o.bits; }
};

struct SummaryHash {
  size_t operator()(const Summary& s) const {
    return s.bits.Hash() * 31 + static_cast<size_t>(s.type);
  }
};

struct BitsPairHash {
  size_t operator()(const std::pair<Bits, Bits>& p) const {
    return p.first.Hash() * 0x9e3779b97f4a7c15ULL + p.second.Hash();
  }
};

struct BitsBoolHash {
  size_t operator()(const std::pair<Bits, bool>& p) const {
    return p.first.Hash() * 2 + (p.second ? 1 : 0);
  }
};

int ResolveSatThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return static_cast<int>(hw < 8 ? hw : 8);
}

// The realizability fixpoint is worklist-driven: each round expands only the
// *dirty* types (those whose content language gained a realizable child
// summary since their last expansion), and each type keeps its exploration
// frontier — the (NFA state-set, accumulated-bits) pairs already visited —
// across rounds, so a re-expansion scans only the child summaries it has not
// seen yet. Together these turn the old Θ(rounds × types × summaries)
// re-sweep into work proportional to the new (node, summary) pairs actually
// discovered.
//
// Determinism: a round's dirty set is frozen into a type-ascending
// generation, every type of the generation is expanded against the same
// frozen summary prefix (expansion never interns), and the per-type
// candidate lists are merged in generation order. A parallel run
// (sat_threads ≠ 1) distributes the expansion calls across a pool but
// merges identically, so the summary table — and with it every verdict,
// count and witness — is bit-identical to a serial run.
//
// Witnesses are *canonical*: derivations are not recorded during the
// fixpoint (whose discovery order depends on scheduling history) but
// recomputed afterwards — only on SAT, only for the types a witness needs —
// by a from-scratch BFS per type over the final summary set enumerated in
// sorted (type, bits) order. The satisfying summary itself is the first in
// that canonical order, so the produced tree is a pure function of the
// summary *set*. The pre-worklist global-sweep core is kept as a reference
// implementation in tests/sat_reference_test.cc and cross-checked for
// bit-identity on hundreds of seeded random instances.
class DownwardEngine {
  // Per-thread arenas owning every transient Bits / flat-table block of the
  // members below when the data-oriented layout is on (XPC_ARENA):
  // arenas_[0] serves the main thread, arenas_[1 + i] worker slot i of the
  // parallel fixpoint. Declared before every other member so the blocks are
  // destroyed last — after the Bits still pointing into them.
  std::deque<Arena> arenas_;
  // Latched once: selects the flat open-addressing tables (and arena
  // installs) or the pre-PR node-based containers, bit-identically.
  const bool flat_tables_ = ArenaEnabled();

 public:
  DownwardEngine(const NodePtr& phi, const Edtd& edtd, bool any_root,
                 const DownwardSatOptions& options)
      : options_(options), edtd_(edtd), any_root_(any_root) {
    phi_ = RewritePathEqDeep(phi);
  }

  SatResult Run() {
    ScopedArenaInstall arena_scope(MainArena());
    BitsStatsScope bits_stats;
    SatResult result;
    result.engine = "downward-sat";
    if (!supported_ || !RegisterAll(phi_)) {
      result.engine = "downward-sat:unsupported";
      result.status = SolveStatus::kResourceLimit;
      return result;
    }

    if (!FixpointRealizable()) {
      result.status = SolveStatus::kResourceLimit;
      result.explored_states = static_cast<int64_t>(summaries_.size());
      return result;
    }
    result.explored_states = static_cast<int64_t>(summaries_.size());

    // Usable types: reachable from the root through realizable words.
    Bits usable = ComputeUsableTypes();

    // Canonical enumeration: summaries sorted by (type, bits). The verdict
    // scan, the witness derivations and the filler subtrees all use this
    // order, so the answer does not depend on fixpoint discovery order.
    std::vector<int> order(summaries_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (summaries_[a].type != summaries_[b].type) {
        return summaries_[a].type < summaries_[b].type;
      }
      return summaries_[a].bits < summaries_[b].bits;
    });
    canon_order_ = std::move(order);

    for (int sid : canon_order_) {
      const Summary& s = summaries_[sid];
      if (!usable.Get(s.type)) continue;
      if (TruthOfNode(phi_, s.type, [&](int atom) { return s.bits.Get(atom); })) {
        result.status = SolveStatus::kSat;
        if (options_.want_witness) {
          result.witness = BuildWitness(sid);
        }
        return result;
      }
    }
    result.status = SolveStatus::kUnsat;
    return result;
  }

 private:
  using BitFn = std::function<bool(int)>;

  Arena* MainArena() {
    if (!flat_tables_) return nullptr;
    if (arenas_.empty()) arenas_.emplace_back();
    return &arenas_.front();
  }

  // Must be called on the main thread before the pool spawns (the deque is
  // not synchronized); slots persist across rounds, so a worker keeps
  // appending to the same arena every round it runs.
  Arena* WorkerArena(int slot) {
    if (!flat_tables_) return nullptr;
    while (static_cast<int>(arenas_.size()) < slot + 2) arenas_.emplace_back();
    return &arenas_[slot + 1];
  }

  NodePtr RewritePathEqDeep(const NodePtr& node) {
    // Full recursive rewrite (⟨·⟩ bodies may contain node expressions with
    // ≈ inside filters).
    switch (node->kind) {
      case NodeKind::kLabel:
      case NodeKind::kTrue:
      case NodeKind::kIsVar:
        return node;
      case NodeKind::kSome:
        return Some(RewriteInPath(node->path));
      case NodeKind::kNot:
        return Not(RewritePathEqDeep(node->child1));
      case NodeKind::kAnd:
        return And(RewritePathEqDeep(node->child1), RewritePathEqDeep(node->child2));
      case NodeKind::kOr:
        return Or(RewritePathEqDeep(node->child1), RewritePathEqDeep(node->child2));
      case NodeKind::kPathEq:
        return Some(Intersect(RewriteInPath(node->path), RewriteInPath(node->path2)));
    }
    return node;
  }

  PathPtr RewriteInPath(const PathPtr& path) {
    switch (path->kind) {
      case PathKind::kAxis:
      case PathKind::kAxisStar:
      case PathKind::kSelf:
        return path;
      case PathKind::kSeq:
        return Seq(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kUnion:
        return Union(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kFilter:
        return Filter(RewriteInPath(path->left), RewritePathEqDeep(path->filter));
      case PathKind::kIntersect:
        return Intersect(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kStar:
      case PathKind::kComplement:
      case PathKind::kFor:
        supported_ = false;
        return path;
    }
    return path;
  }

  // Registers inst(α) for every ⟨α⟩ in sub(φ) and all headed suffix atoms.
  bool RegisterAll(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kLabel:
      case NodeKind::kTrue:
        return true;
      case NodeKind::kIsVar:
        supported_ = false;
        return false;
      case NodeKind::kNot:
        return RegisterAll(node->child1);
      case NodeKind::kAnd:
      case NodeKind::kOr:
        return RegisterAll(node->child1) && RegisterAll(node->child2);
      case NodeKind::kPathEq:
        supported_ = false;  // Should have been rewritten.
        return false;
      case NodeKind::kSome:
        return RegisterSome(node);
    }
    return false;
  }

  bool RegisterSome(const NodePtr& some) {
    if (some_insts_.count(some.get())) return true;
    auto [ok, paths] = Instantiate(some->path, options_.max_inst_paths);
    if (!ok || static_cast<int64_t>(atoms_.size()) > options_.max_atoms) {
      supported_ = false;
      return false;
    }
    // Own the instantiated paths (atoms point into them).
    auto owned = std::make_shared<std::vector<SimplePath>>(std::move(paths));
    inst_storage_.push_back(owned);
    some_insts_[some.get()] = owned.get();
    for (const SimplePath& p : *owned) {
      // Register suffix atoms and recurse into tests.
      for (size_t i = 0; i < p.size(); ++i) {
        if (p[i].kind == SimpleStep::Kind::kTest) {
          if (!RegisterAll(p[i].test)) return false;
        } else {
          RegisterAtom(p, static_cast<int>(i));
        }
      }
      path_suffix_ids_[&p] = SuffixIdsFor(p);
    }
    return true;
  }

  // Canonical key of the suffix of `p` starting at `pos`.
  std::string SuffixKey(const SimplePath& p, int pos) const {
    std::ostringstream os;
    for (size_t i = pos; i < p.size(); ++i) {
      switch (p[i].kind) {
        case SimpleStep::Kind::kDown: os << 'D'; break;
        case SimpleStep::Kind::kDownStar: os << 'S'; break;
        case SimpleStep::Kind::kTest: os << 'T' << p[i].test.get(); break;
      }
    }
    return os.str();
  }

  int RegisterAtom(const SimplePath& p, int pos) {
    std::string key = SuffixKey(p, pos);
    auto it = atom_ids_.find(key);
    if (it != atom_ids_.end()) return it->second;
    int id = static_cast<int>(atoms_.size());
    atom_ids_.emplace(std::move(key), id);
    atoms_.push_back(Atom{p[pos].kind, &p, pos});
    return id;
  }

  std::vector<int> SuffixIdsFor(const SimplePath& p) {
    std::vector<int> ids(p.size(), -1);
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i].kind != SimpleStep::Kind::kTest) {
        ids[i] = atom_ids_.at(SuffixKey(p, static_cast<int>(i)));
      }
    }
    return ids;
  }

  // --- Truth evaluation against a summary ------------------------------

  bool TruthOfNode(const NodePtr& node, int type, const BitFn& bit) const {
    switch (node->kind) {
      case NodeKind::kLabel:
        return edtd_.types()[type].concrete_label == node->label;
      case NodeKind::kTrue:
        return true;
      case NodeKind::kNot:
        return !TruthOfNode(node->child1, type, bit);
      case NodeKind::kAnd:
        return TruthOfNode(node->child1, type, bit) &&
               TruthOfNode(node->child2, type, bit);
      case NodeKind::kOr:
        return TruthOfNode(node->child1, type, bit) ||
               TruthOfNode(node->child2, type, bit);
      case NodeKind::kSome: {
        const std::vector<SimplePath>* insts = some_insts_.at(node.get());
        for (const SimplePath& p : *insts) {
          if (TruthOfSuffix(p, 0, type, bit)) return true;
        }
        return false;
      }
      case NodeKind::kPathEq:
      case NodeKind::kIsVar:
        return false;  // Unreachable after rewriting.
    }
    return false;
  }

  // Truth of the suffix of `p` starting at `pos` at a node with the given
  // summary: consume leading tests, then consult the headed-atom bit.
  bool TruthOfSuffix(const SimplePath& p, int pos, int type, const BitFn& bit) const {
    int i = pos;
    while (i < static_cast<int>(p.size()) && p[i].kind == SimpleStep::Kind::kTest) {
      if (!TruthOfNode(p[i].test, type, bit)) return false;
      ++i;
    }
    if (i == static_cast<int>(p.size())) return true;
    return bit(path_suffix_ids_.at(&p)[i]);
  }

  // Contribution of a child summary to its parent's accumulated bits.
  // Computed eagerly when a summary is interned (merge step), so fixpoint
  // workers only ever read `contrib_`.
  Bits ComputeContribution(int summary_id) const {
    const Summary& c = summaries_[summary_id];
    Bits out(static_cast<int>(atoms_.size()));
    BitFn bit = [&](int a) { return c.bits.Get(a); };
    for (size_t a = 0; a < atoms_.size(); ++a) {
      const Atom& atom = atoms_[a];
      if (atom.head == SimpleStep::Kind::kDown) {
        // ⟨↓/β⟩ at the parent: some child satisfies ⟨β⟩.
        if (TruthOfSuffix(*atom.path, atom.pos + 1, c.type, bit)) out.Set(a);
      } else {
        // ⟨↓*/β⟩ at the parent via a child: the child itself satisfies it.
        if (c.bits.Get(static_cast<int>(a))) out.Set(a);
      }
    }
    return out;
  }

  // Resolves the final bits of a candidate node of type `t` whose children
  // contributed `acc`: ↓-atoms are exactly `acc`; ↓*-atoms additionally
  // hold if their tail holds at the node itself (well-founded recursion,
  // Theorem 23's ≺ order). The memo is a (known, value) bitset pair rather
  // than a byte-per-atom table — Resolve runs once per accepting node, so
  // its setup cost is on the fixpoint's hot path.
  Bits Resolve(int type, const Bits& acc) const {
    const int n = static_cast<int>(atoms_.size());
    Bits known(n), value(n);
    Bits out(n);
    for (int a = 0; a < n; ++a) {
      if (ResolveAtom(a, type, acc, &known, &value)) out.Set(a);
    }
    return out;
  }

  bool ResolveAtom(int a, int type, const Bits& acc, Bits* known, Bits* value) const {
    if (known->Get(a)) return value->Get(a);
    known->Set(a);  // Seed with acc; breaks no cycles (the ≺ order is
                    // well-founded), but keeps the recursion safe regardless.
    bool v = acc.Get(a);
    if (v) value->Set(a);
    if (!v && atoms_[a].head == SimpleStep::Kind::kDownStar) {
      BitFn bit = [&](int b) -> bool { return ResolveAtom(b, type, acc, known, value); };
      v = TruthOfSuffix(*atoms_[a].path, atoms_[a].pos + 1, type, bit);
      if (v) value->Set(a);
    }
    return v;
  }

  // --- Realizability fixpoint ------------------------------------------

  // Persistent exploration state of one type: the (NFA state-set,
  // accumulated-bits) pairs reached so far over the summaries scanned so
  // far. `scanned` is the exclusive upper bound of the global summary
  // prefix every node has been extended with.
  struct ExpNode {
    Bits states;
    Bits acc;
  };
  struct TypeState {
    bool initialized = false;
    size_t scanned = 0;
    std::vector<ExpNode> nodes;
    // (states, acc) dedup. The flat table stores (hash, node id) and
    // compares against `nodes` — no pair keys are ever copied; the map is
    // the XPC_ARENA=0 leg.
    IdTable seen_flat;
    std::unordered_map<std::pair<Bits, Bits>, int, BitsPairHash> seen;
  };

  // Result of one incremental expansion: new realizable (already resolved)
  // bit vectors, in discovery order, deduplicated within the round.
  struct RoundResult {
    std::vector<Bits> candidates;
    bool hit_cap = false;
  };

  // dependents_[c] = types whose content NFA has a transition on symbol c:
  // exactly the types whose expansion can read a new summary of type c. A
  // static over-approximation (the transition may be unreachable), which is
  // safe — the fixpoint is monotone and confluent — and cheap to index.
  void BuildDependents() {
    const int num_types = static_cast<int>(edtd_.types().size());
    // Warm schemas serve the relation from the SchemaIndex. The free-schema
    // path (`any_root_`) synthesizes a throwaway EDTD per query — consulting
    // the registry there would only churn the cold-miss counter.
    if (!any_root_) {
      if (std::shared_ptr<const SchemaIndex> index = SchemaIndex::Lookup(edtd_)) {
        dependents_ = index->dependents();
        return;
      }
    }
    dependents_.assign(num_types, Bits(num_types));
    for (int t = 0; t < num_types; ++t) {
      for (const Nfa::Transition& tr : edtd_.ContentNfa(t).transitions()) {
        if (tr.symbol >= 0) dependents_[tr.symbol].Set(t);
      }
    }
  }

  // Incrementally expands type `t` against the frozen summary prefix
  // [0, frozen): pre-existing nodes scan only the summaries added since the
  // type's last expansion; newly reached nodes scan the full prefix.
  // Never touches shared mutable state — safe to run per-type in parallel.
  RoundResult ExpandType(int t, size_t frozen) {
    TypeState& ts = type_states_[t];
    const Nfa& nfa = edtd_.ContentNfa(t);
    RoundResult out;
    std::vector<int> accepting;  // Accepting node ids, in creation order.
    std::vector<int> fresh;      // Node ids reached this round.

    auto add_node = [&](Bits states, Bits acc) {
      int id = static_cast<int>(ts.nodes.size());
      if (flat_tables_) {
        const uint64_t h = states.Hash() * 0x9e3779b97f4a7c15ULL + acc.Hash();
        if (ts.seen_flat.Find(h, [&](int32_t n) {
              return ts.nodes[n].states == states && ts.nodes[n].acc == acc;
            }) >= 0) {
          return;
        }
        ts.seen_flat.Insert(h, id);
      } else {
        auto key = std::make_pair(states, acc);
        if (ts.seen.count(key)) return;
        ts.seen.emplace(std::move(key), id);
      }
      ts.nodes.push_back({std::move(states), std::move(acc)});
      // The per-type node space is itself exponential; cap it alongside the
      // summary cap. (The persistent node set is monotone in the summary
      // set, so this triggers on the same instances as the pre-worklist
      // per-sweep cap.)
      if (static_cast<int64_t>(ts.nodes.size()) > options_.max_summaries) {
        out.hit_cap = true;
      }
      if (nfa.AnyAccepting(ts.nodes[id].states)) accepting.push_back(id);
      fresh.push_back(id);
    };

    // Per-node NFA steps memoized by child type (valid for the node id
    // stamped in step_epoch), allocated once for the whole expansion.
    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<int> step_epoch(num_types, -1);
    std::vector<Bits> step_memo(num_types);

    // Extends node `id` by children summaries [from, to).
    auto extend = [&](int id, size_t from, size_t to) {
      const Bits cur_states = ts.nodes[id].states;  // add_node may realloc.
      const Bits cur_acc = ts.nodes[id].acc;
      for (size_t c = from; c < to && !out.hit_cap; ++c) {
        const int ct = summaries_[c].type;
        if (step_epoch[ct] != id) {
          step_memo[ct] = nfa.Step(cur_states, ct);
          step_epoch[ct] = id;
        }
        const Bits& next = step_memo[ct];
        if (next.None()) continue;
        Bits acc = cur_acc;
        acc.UnionWith(contrib_[c]);
        add_node(next, std::move(acc));
      }
    };

    const size_t existing = ts.nodes.size();
    if (!ts.initialized) {
      ts.initialized = true;
      add_node(nfa.InitialSet(), Bits(static_cast<int>(atoms_.size())));
    }
    // Old nodes: only the summaries they have not seen yet.
    for (size_t i = 0; i < existing && !out.hit_cap; ++i) {
      extend(static_cast<int>(i), ts.scanned, frozen);
    }
    // Nodes first reached this round: the full frozen prefix.
    for (size_t w = 0; w < fresh.size() && !out.hit_cap; ++w) {
      extend(fresh[w], 0, frozen);
    }
    ts.scanned = frozen;

    // Atom resolution is the expensive half (O(atoms · formula) per call),
    // so it runs after the cheap state exploration: a capped round is
    // discarded unmerged, so its candidates are never resolved at all, and
    // Resolve is a pure function of (type, acc) — deduplicating by
    // accumulated bits first skips redundant calls without changing the
    // candidate sequence (equal accs resolve equal, so the first-occurrence
    // order by resolved bits is unchanged).
    if (!out.hit_cap) {
      if (flat_tables_) {
        IdTable acc_seen;   // Node ids, deduped by accumulated bits.
        IdTable cand_seen;  // Candidate indices, deduped by resolved bits.
        for (int id : accepting) {
          const Bits& a = ts.nodes[id].acc;
          const uint64_t ah = a.Hash();
          if (acc_seen.Find(ah, [&](int32_t n) { return ts.nodes[n].acc == a; }) >= 0) {
            continue;
          }
          acc_seen.Insert(ah, id);
          Bits resolved = Resolve(t, a);
          const uint64_t rh = resolved.Hash();
          if (cand_seen.Find(rh, [&](int32_t ci) {
                return out.candidates[ci] == resolved;
              }) < 0) {
            cand_seen.Insert(rh, static_cast<int32_t>(out.candidates.size()));
            out.candidates.push_back(std::move(resolved));
          }
        }
      } else {
        std::unordered_set<Bits, BitsHash> acc_seen;
        std::unordered_set<Bits, BitsHash> cand_seen;
        for (int id : accepting) {
          if (!acc_seen.insert(ts.nodes[id].acc).second) continue;
          Bits resolved = Resolve(t, ts.nodes[id].acc);
          if (cand_seen.insert(resolved).second) {
            out.candidates.push_back(std::move(resolved));
          }
        }
      }
    }
    return out;
  }

  // The worklist-driven bottom-up realizability fixpoint. Returns false on
  // a resource limit.
  bool FixpointRealizable() {
    const int num_types = static_cast<int>(edtd_.types().size());
    BuildDependents();
    type_states_ = std::vector<TypeState>(num_types);

    const int threads = ResolveSatThreads(options_.sat_threads);
    if (threads > 1) {
      // The lazily built content NFAs (CSR index + ε-closure memos) are not
      // synchronized under const; force them before any worker reads them.
      for (int t = 0; t < num_types; ++t) edtd_.ContentNfa(t).EnsureIndexed();
    }

    Bits dirty(num_types);
    for (int t = 0; t < num_types; ++t) dirty.Set(t);

    std::vector<int> generation;
    std::vector<RoundResult> results;
    while (!dirty.None()) {
      generation.clear();
      dirty.ForEach([&](int t) { generation.push_back(t); });
      dirty = Bits(num_types);
      StatsAdd(Metric::kSatWorklistPops, static_cast<int64_t>(generation.size()));

      const size_t frozen = summaries_.size();
      results.assign(generation.size(), RoundResult());
      int round_threads =
          std::min<int>(threads, static_cast<int>(generation.size()));
      if (round_threads > 1) {
        StatsAdd(Metric::kSatParallelRounds);
        // ContainsBatch-style pool: workers pull generation slots off an
        // atomic counter; each slot touches only its own type's state.
        // Telemetry hooks route to the round's sink (thread-safe atomics).
        Stats* sink = Stats::Current();
        // Worker arena slots are materialized up front on this thread; the
        // deque itself is not synchronized.
        std::vector<Arena*> worker_arenas(round_threads);
        for (int i = 0; i < round_threads; ++i) worker_arenas[i] = WorkerArena(i);
        std::atomic<size_t> next{0};
        auto worker = [&](int slot) {
          ScopedStatsSink stats_scope(sink);
          ScopedArenaInstall arena_scope(worker_arenas[slot]);
          BitsStatsScope bits_stats;
          for (size_t g = next.fetch_add(1); g < generation.size();
               g = next.fetch_add(1)) {
            results[g] = ExpandType(generation[g], frozen);
          }
        };
        std::vector<std::thread> pool;
        pool.reserve(round_threads);
        for (int i = 0; i < round_threads; ++i) pool.emplace_back(worker, i);
        for (std::thread& th : pool) th.join();
      } else {
        for (size_t g = 0; g < generation.size(); ++g) {
          results[g] = ExpandType(generation[g], frozen);
        }
      }

      // Merge in generation (type-ascending) order: intern candidates,
      // compute their contributions, and wake the dependents of every type
      // that gained a summary. This order is what makes parallel runs
      // bit-identical to serial ones.
      for (size_t g = 0; g < generation.size(); ++g) {
        const int t = generation[g];
        if (results[g].hit_cap) return false;
        bool added = false;
        for (Bits& bits : results[g].candidates) {
          Summary s;
          s.type = t;
          s.bits = std::move(bits);
          int sid = static_cast<int>(summaries_.size());
          if (flat_tables_) {
            const uint64_t h = SummaryHash()(s);
            if (summary_flat_.Find(h, [&](int32_t i) { return summaries_[i] == s; }) >= 0) {
              continue;
            }
            summary_flat_.Insert(h, sid);
          } else {
            if (summary_index_.count(s)) continue;
            summary_index_.emplace(s, sid);
          }
          summaries_.push_back(std::move(s));
          contrib_.push_back(ComputeContribution(sid));
          added = true;
          if (static_cast<int64_t>(summaries_.size()) > options_.max_summaries) {
            return false;
          }
        }
        if (added) {
          StatsAdd(Metric::kSatDepsInvalidated, dependents_[t].Count());
          dirty.UnionWith(dependents_[t]);
        }
      }
    }
    return true;
  }

  // Dual-mode summary lookup; -1 when absent.
  int FindSummaryId(const Summary& s) const {
    if (flat_tables_) {
      return summary_flat_.Find(SummaryHash()(s),
                                [&](int32_t sid) { return summaries_[sid] == s; });
    }
    auto it = summary_index_.find(s);
    return it == summary_index_.end() ? -1 : it->second;
  }

  // Symbols of `allowed` occurring in some word of L(nfa) over `allowed`:
  // exactly the symbols labelling a transition from a forward-reachable
  // state to a co-reachable one (reachability restricted to `allowed`).
  // Agrees with a per-symbol WordExistsContaining query but costs one pass
  // over the transition list instead of a subset-construction BFS each.
  Bits UsefulChildren(const Nfa& nfa, const Bits& allowed) const {
    const auto& trans = nfa.transitions();
    Bits fwd = nfa.InitialSet();
    Bits bwd(nfa.num_states());
    for (int s : nfa.accepting()) bwd.Set(s);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Nfa::Transition& tr : trans) {
        if (tr.symbol >= 0 && !allowed.Get(tr.symbol)) continue;
        if (fwd.Get(tr.from) && !fwd.Get(tr.to)) {
          fwd.Set(tr.to);
          changed = true;
        }
        if (bwd.Get(tr.to) && !bwd.Get(tr.from)) {
          bwd.Set(tr.from);
          changed = true;
        }
      }
    }
    Bits useful(allowed.size());
    for (const Nfa::Transition& tr : trans) {
      if (tr.symbol < 0 || !allowed.Get(tr.symbol)) continue;
      if (fwd.Get(tr.from) && bwd.Get(tr.to)) useful.Set(tr.symbol);
    }
    return useful;
  }

  Bits ComputeUsableTypes() {
    const int num_types = static_cast<int>(edtd_.types().size());
    Bits realizable(num_types);
    for (const Summary& s : summaries_) realizable.Set(s.type);
    Bits usable(num_types);
    if (any_root_) {
      return realizable;
    }
    int root = edtd_.TypeIndex(edtd_.root_type());
    if (realizable.Get(root)) usable.Set(root);
    // Close under one-step usefulness: a type is usable if it occurs in
    // some all-realizable children word of a usable type.
    std::vector<char> expanded(num_types, 0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (int t = 0; t < num_types; ++t) {
        if (!usable.Get(t) || expanded[t]) continue;
        expanded[t] = 1;
        Bits useful = UsefulChildren(edtd_.ContentNfa(t), realizable);
        useful.IntersectWith(realizable);
        if (usable.UnionWith(useful)) changed = true;
      }
    }
    return usable;
  }

  // Is there a word over {t : allowed[t]} in L(nfa) containing `must`?
  // If `word` is non-null, the found word is stored there.
  bool WordExistsContaining(const Nfa& nfa, const Bits& allowed, int must,
                            std::vector<int>* word) const {
    struct Node {
      Bits states;
      bool has = false;
      int prev = -1;
      int via = -1;
    };
    std::vector<Node> nodes;
    std::unordered_map<std::pair<Bits, bool>, int, BitsBoolHash> seen;
    std::queue<int> work;
    auto push = [&](Bits states, bool has, int prev, int via) {
      auto key = std::make_pair(states, has);
      if (seen.count(key)) return;
      int id = static_cast<int>(nodes.size());
      seen.emplace(std::move(key), id);
      nodes.push_back({std::move(states), has, prev, via});
      work.push(id);
    };
    push(nfa.InitialSet(), false, -1, -1);
    while (!work.empty()) {
      int id = work.front();
      work.pop();
      if (nodes[id].has && nfa.AnyAccepting(nodes[id].states)) {
        if (word != nullptr) {
          for (int n = id; nodes[n].prev >= 0; n = nodes[n].prev) word->push_back(nodes[n].via);
          std::reverse(word->begin(), word->end());
        }
        return true;
      }
      const int limit = allowed.size();
      for (int c = 0; c < limit; ++c) {
        if (!allowed.Get(c)) continue;
        Bits next = nfa.Step(nodes[id].states, c);
        if (next.None()) continue;
        push(std::move(next), nodes[id].has || c == must, id, c);
      }
    }
    return false;
  }

  // --- Witness construction --------------------------------------------

  // Canonical derivations: for each summary, a children word (of summary
  // ids) realizing it, recomputed from the *final* summary set — any
  // fixpoint run producing the same set produces the same derivations,
  // which is what keeps serial, parallel and reference-engine witnesses
  // identical. Derivations must be well-founded (ExpandSummary recurses
  // through them): a naive BFS over the whole set can derive a summary via
  // a word containing itself, so derivations are assigned in stratified
  // rounds — a round's BFS may only step over children that already held a
  // derivation at the round's start. Every table summary was interned from
  // strictly-earlier-round children during the fixpoint, so this converges
  // and covers the whole table.
  void ComputeCanonicalDerivations() {
    canon_deriv_.assign(summaries_.size(), {});
    deriv_set_.assign(summaries_.size(), 0);
    const int num_types = static_cast<int>(edtd_.types().size());

    // Dependency-driven like the fixpoint itself: a type only re-runs its
    // BFS when a type in its content alphabet gained a derivation (its view
    // of `frozen` is otherwise unchanged, so the BFS would repeat itself).
    // Equivalent to re-running every type each round, so the derivations
    // stay a pure function of the summary set.
    std::vector<int> remaining(num_types, 0);
    for (const Summary& s : summaries_) ++remaining[s.type];
    Bits dirty(num_types);
    for (int t = 0; t < num_types; ++t) {
      if (remaining[t] > 0) dirty.Set(t);
    }
    std::vector<int> generation;
    while (!dirty.None()) {
      generation.clear();
      dirty.ForEach([&](int t) {
        if (remaining[t] > 0) generation.push_back(t);
      });
      dirty = Bits(num_types);
      const std::vector<char> frozen = deriv_set_;
      for (int t : generation) {
        int gained = DeriveRound(t, frozen);
        if (gained > 0) {
          remaining[t] -= gained;
          dirty.UnionWith(dependents_[t]);
        }
      }
    }
  }

  // One stratified BFS for type `t`: children restricted to summaries with
  // frozen[c] set, explored in canonical order. Returns how many summaries
  // of `t` gained a derivation.
  int DeriveRound(int t, const std::vector<char>& frozen) {
    const Nfa& nfa = edtd_.ContentNfa(t);
    struct Node {
      Bits states;
      Bits acc;
      int prev = -1;
      int via_child = -1;  // Summary id taken to reach this node.
    };
    std::vector<Node> nodes;
    std::unordered_map<std::pair<Bits, Bits>, int, BitsPairHash> seen;
    std::queue<int> work;
    int gained = 0;
    auto push = [&](Bits states, Bits acc, int prev, int via) {
      auto key = std::make_pair(states, acc);
      if (seen.count(key)) return;
      int id = static_cast<int>(nodes.size());
      seen.emplace(std::move(key), id);
      nodes.push_back({std::move(states), std::move(acc), prev, via});
      work.push(id);
    };

    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<int> step_epoch(num_types, -1);
    std::vector<Bits> step_memo(num_types);

    push(nfa.InitialSet(), Bits(static_cast<int>(atoms_.size())), -1, -1);
    while (!work.empty()) {
      int id = work.front();
      work.pop();
      if (nfa.AnyAccepting(nodes[id].states)) {
        Summary s;
        s.type = t;
        s.bits = Resolve(t, nodes[id].acc);
        const int sid = FindSummaryId(s);
        // Record the first (BFS-shortest in canonical order) derivation.
        if (sid >= 0 && !deriv_set_[sid]) {
          deriv_set_[sid] = 1;
          ++gained;
          std::vector<int> word;
          for (int n = id; nodes[n].prev >= 0; n = nodes[n].prev) {
            word.push_back(nodes[n].via_child);
          }
          std::reverse(word.begin(), word.end());
          canon_deriv_[sid] = std::move(word);
        }
      }
      const Bits cur_states = nodes[id].states;  // push() may realloc nodes.
      for (int c : canon_order_) {
        if (!frozen[c]) continue;
        const int ct = summaries_[c].type;
        if (step_epoch[ct] != id) {
          step_memo[ct] = nfa.Step(cur_states, ct);
          step_epoch[ct] = id;
        }
        const Bits& next = step_memo[ct];
        if (next.None()) continue;
        Bits acc = nodes[id].acc;
        acc.UnionWith(contrib_[c]);
        push(next, std::move(acc), id, c);
      }
    }
    return gained;
  }

  // First summary of type `t` in canonical order (-1 if none).
  int CanonicalFirstOfType(int t) const {
    for (int sid : canon_order_) {
      if (summaries_[sid].type == t) return sid;
    }
    return -1;
  }

  // Expands summary `sid` as a subtree under `node` via its canonical
  // derivation word.
  void ExpandSummary(int sid, XmlTree* tree, NodeId node) {
    if (canon_deriv_.empty()) ComputeCanonicalDerivations();
    const std::vector<int>& word = canon_deriv_[sid];
    for (int child : word) {
      NodeId c = tree->AddChild(node, edtd_.types()[summaries_[child].type].concrete_label);
      ExpandSummary(child, tree, c);
    }
  }

  XmlTree BuildWitness(int target_sid) {
    const int num_types = static_cast<int>(edtd_.types().size());
    Bits realizable(num_types);
    for (const Summary& s : summaries_) realizable.Set(s.type);

    const int target_type = summaries_[target_sid].type;
    if (any_root_) {
      // The target itself can be the root.
      XmlTree tree(edtd_.types()[target_type].concrete_label);
      ExpandSummary(target_sid, &tree, tree.root());
      return tree;
    }
    // Chain of types from the root to target_type (BFS over usable types).
    std::vector<int> parent(num_types, -1);
    std::vector<bool> visited(num_types, false);
    std::queue<int> q;
    int start = edtd_.TypeIndex(edtd_.root_type());
    visited[start] = true;
    q.push(start);
    while (!q.empty()) {
      int t = q.front();
      q.pop();
      if (t == target_type) break;
      Bits useful = UsefulChildren(edtd_.ContentNfa(t), realizable);
      for (int c = 0; c < num_types; ++c) {
        if (visited[c] || !realizable.Get(c) || !useful.Get(c)) continue;
        visited[c] = true;
        parent[c] = t;
        q.push(c);
      }
    }
    // Path root = t0 → t1 → … → target.
    std::vector<int> chain;
    for (int t = target_type; t != -1; t = parent[t]) chain.push_back(t);
    std::reverse(chain.begin(), chain.end());

    XmlTree tree(edtd_.types()[chain[0]].concrete_label);
    NodeId at = tree.root();
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      // Children word of chain[i] containing chain[i+1].
      std::vector<int> word;
      bool ok = WordExistsContaining(edtd_.ContentNfa(chain[i]), realizable, chain[i + 1], &word);
      assert(ok);
      (void)ok;
      NodeId next_at = kNoNode;
      for (int ct : word) {
        NodeId c = tree.AddChild(at, edtd_.types()[ct].concrete_label);
        if (ct == chain[i + 1] && next_at == kNoNode) {
          next_at = c;
          if (i + 2 == chain.size()) {
            // Deepest level: expand the target summary here.
            ExpandSummary(target_sid, &tree, c);
          }
        } else {
          // Fill with the canonical summary of type ct.
          int filler = CanonicalFirstOfType(ct);
          if (filler >= 0) ExpandSummary(filler, &tree, c);
        }
      }
      at = next_at;
    }
    if (chain.size() == 1) ExpandSummary(target_sid, &tree, at);
    return tree;
  }

  DownwardSatOptions options_;
  const Edtd& edtd_;
  bool any_root_ = false;
  NodePtr phi_;
  bool supported_ = true;

  // inst(α) storage and atom registry.
  std::vector<std::shared_ptr<std::vector<SimplePath>>> inst_storage_;
  std::map<const NodeExpr*, const std::vector<SimplePath>*> some_insts_;
  std::map<std::string, int> atom_ids_;
  std::vector<Atom> atoms_;
  std::map<const SimplePath*, std::vector<int>> path_suffix_ids_;

  // Fixpoint state. The summary intern table is dual-mode like the
  // per-type `seen` tables: `summary_flat_` against the `summaries_` pool
  // when the data-oriented layout is on, `summary_index_` otherwise.
  std::vector<Summary> summaries_;
  IdTable summary_flat_;
  std::unordered_map<Summary, int, SummaryHash> summary_index_;
  std::vector<Bits> contrib_;
  std::vector<Bits> dependents_;
  std::vector<TypeState> type_states_;

  // Canonical finish (populated only after the fixpoint; derivations only
  // on SAT with want_witness).
  std::vector<int> canon_order_;
  std::vector<std::vector<int>> canon_deriv_;
  std::vector<char> deriv_set_;
};

}  // namespace

namespace {

SatResult RecordDownward(SatResult r) {
  StatsAdd(Metric::kSatDownwardSummaries, r.explored_states);
  StatsGaugeMax(Metric::kSatPeakExploredStates, r.explored_states);
  return r;
}

}  // namespace

SatResult DownwardSatisfiableWithEdtd(const NodePtr& phi, const Edtd& edtd,
                                      const DownwardSatOptions& options) {
  StatsTimer timer(Metric::kSatDownward);
  DownwardEngine engine(phi, edtd, /*any_root=*/false, options);
  return RecordDownward(engine.Run());
}

namespace {

// Process-wide memo of the synthesized free schemas ("every label, any
// children"), keyed by the query's label set. A no-schema query used to
// build — and regex-compile the content NFAs of — a throwaway EDTD on every
// call, a fixed per-query cost that dominated small-query traffic. Cached
// schemas are fully pre-built (content NFAs indexed, class predicates
// evaluated) before publication, so the shared instances are read-only and
// safe to borrow concurrently.
std::shared_ptr<const Edtd> FreeSchemaFor(const std::set<std::string>& labels) {
  static std::mutex mu;
  static auto* cache = new std::map<std::string, std::shared_ptr<const Edtd>>();
  std::string key;
  for (const std::string& l : labels) {
    key += l;
    key += '\n';
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  std::vector<Edtd::TypeDef> types;
  RegexPtr any;
  for (const std::string& l : labels) any = any ? RxUnion(any, RxSymbol(l)) : RxSymbol(l);
  for (const std::string& l : labels) types.push_back({l, RxStar(any), l});
  auto schema = std::make_shared<Edtd>(std::move(types), *labels.begin());
  {
    // The lazy caches under const are not synchronized; warm every one
    // before sharing. Long-lived NFA storage must not land in a per-query
    // arena.
    ScopedArenaPause pause;
    for (int t = 0; t < static_cast<int>(schema->types().size()); ++t) schema->ContentNfa(t);
    schema->HasDuplicateFreeContent();
    schema->HasDisjunctionFreeContent();
    schema->IsCovering();
  }
  std::lock_guard<std::mutex> lock(mu);
  if (cache->size() >= 64) cache->clear();  // Unbounded label sets: rare.
  return cache->emplace(std::move(key), std::move(schema)).first->second;
}

}  // namespace

SatResult DownwardSatisfiable(const NodePtr& phi, const DownwardSatOptions& options) {
  std::set<std::string> labels = Labels(phi);
  labels.insert(FreshLabel(labels, "_other"));
  std::shared_ptr<const Edtd> free_schema = FreeSchemaFor(labels);
  StatsTimer timer(Metric::kSatDownward);
  DownwardEngine engine(phi, *free_schema, /*any_root=*/true, options);
  return RecordDownward(engine.Run());
}

}  // namespace xpc
