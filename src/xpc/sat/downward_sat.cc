#include "xpc/sat/downward_sat.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "xpc/common/bits.h"
#include "xpc/common/stats.h"
#include "xpc/sat/simple_paths.h"
#include "xpc/xpath/build.h"
#include "xpc/xpath/metrics.h"

namespace xpc {

namespace {

// A headed suffix atom: a simple path starting with ↓ or ↓*.
struct Atom {
  SimpleStep::Kind head;   // kDown or kDownStar.
  const SimplePath* path;  // Owning inst path.
  int pos;                 // Position of the head step within *path.
};

struct Summary {
  int type = 0;
  Bits bits;

  bool operator==(const Summary& o) const { return type == o.type && bits == o.bits; }
};

struct SummaryHash {
  size_t operator()(const Summary& s) const {
    return s.bits.Hash() * 31 + static_cast<size_t>(s.type);
  }
};

struct BitsPairHash {
  size_t operator()(const std::pair<Bits, Bits>& p) const {
    return p.first.Hash() * 0x9e3779b97f4a7c15ULL + p.second.Hash();
  }
};

struct BitsBoolHash {
  size_t operator()(const std::pair<Bits, bool>& p) const {
    return p.first.Hash() * 2 + (p.second ? 1 : 0);
  }
};

class DownwardEngine {
 public:
  DownwardEngine(const NodePtr& phi, const Edtd& edtd, bool any_root,
                 const DownwardSatOptions& options)
      : options_(options), edtd_(edtd), any_root_(any_root) {
    phi_ = RewritePathEqDeep(phi);
  }

  SatResult Run() {
    SatResult result;
    result.engine = "downward-sat";
    if (!supported_ || !RegisterAll(phi_)) {
      result.engine = "downward-sat:unsupported";
      result.status = SolveStatus::kResourceLimit;
      return result;
    }

    // Bottom-up realizability fixpoint.
    const int num_types = static_cast<int>(edtd_.types().size());
    bool changed = true;
    while (changed) {
      changed = false;
      for (int t = 0; t < num_types; ++t) {
        if (!ExpandType(t, &changed)) {
          result.status = SolveStatus::kResourceLimit;
          result.explored_states = static_cast<int64_t>(summaries_.size());
          return result;
        }
      }
    }
    result.explored_states = static_cast<int64_t>(summaries_.size());

    // Usable types: reachable from the root through realizable words.
    std::vector<bool> usable = ComputeUsableTypes();

    for (size_t i = 0; i < summaries_.size(); ++i) {
      const Summary& s = summaries_[i];
      if (!usable[s.type]) continue;
      if (TruthOfNode(phi_, s.type, [&](int atom) { return s.bits.Get(atom); })) {
        result.status = SolveStatus::kSat;
        if (options_.want_witness) {
          result.witness = BuildWitness(static_cast<int>(i), usable);
        }
        return result;
      }
    }
    result.status = SolveStatus::kUnsat;
    return result;
  }

 private:
  using BitFn = std::function<bool(int)>;

  NodePtr RewritePathEqDeep(const NodePtr& node) {
    // Full recursive rewrite (RewritePathEq above stops at ⟨·⟩; paths may
    // contain node expressions with ≈ inside filters).
    switch (node->kind) {
      case NodeKind::kLabel:
      case NodeKind::kTrue:
      case NodeKind::kIsVar:
        return node;
      case NodeKind::kSome:
        return Some(RewriteInPath(node->path));
      case NodeKind::kNot:
        return Not(RewritePathEqDeep(node->child1));
      case NodeKind::kAnd:
        return And(RewritePathEqDeep(node->child1), RewritePathEqDeep(node->child2));
      case NodeKind::kOr:
        return Or(RewritePathEqDeep(node->child1), RewritePathEqDeep(node->child2));
      case NodeKind::kPathEq:
        return Some(Intersect(RewriteInPath(node->path), RewriteInPath(node->path2)));
    }
    return node;
  }

  PathPtr RewriteInPath(const PathPtr& path) {
    switch (path->kind) {
      case PathKind::kAxis:
      case PathKind::kAxisStar:
      case PathKind::kSelf:
        return path;
      case PathKind::kSeq:
        return Seq(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kUnion:
        return Union(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kFilter:
        return Filter(RewriteInPath(path->left), RewritePathEqDeep(path->filter));
      case PathKind::kIntersect:
        return Intersect(RewriteInPath(path->left), RewriteInPath(path->right));
      case PathKind::kStar:
      case PathKind::kComplement:
      case PathKind::kFor:
        supported_ = false;
        return path;
    }
    return path;
  }

  // Registers inst(α) for every ⟨α⟩ in sub(φ) and all headed suffix atoms.
  bool RegisterAll(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kLabel:
      case NodeKind::kTrue:
        return true;
      case NodeKind::kIsVar:
        supported_ = false;
        return false;
      case NodeKind::kNot:
        return RegisterAll(node->child1);
      case NodeKind::kAnd:
      case NodeKind::kOr:
        return RegisterAll(node->child1) && RegisterAll(node->child2);
      case NodeKind::kPathEq:
        supported_ = false;  // Should have been rewritten.
        return false;
      case NodeKind::kSome:
        return RegisterSome(node);
    }
    return false;
  }

  bool RegisterSome(const NodePtr& some) {
    if (some_insts_.count(some.get())) return true;
    auto [ok, paths] = Instantiate(some->path, options_.max_inst_paths);
    if (!ok || static_cast<int64_t>(atoms_.size()) > options_.max_atoms) {
      supported_ = false;
      return false;
    }
    // Own the instantiated paths (atoms point into them).
    auto owned = std::make_shared<std::vector<SimplePath>>(std::move(paths));
    inst_storage_.push_back(owned);
    some_insts_[some.get()] = owned.get();
    for (const SimplePath& p : *owned) {
      // Register suffix atoms and recurse into tests.
      for (size_t i = 0; i < p.size(); ++i) {
        if (p[i].kind == SimpleStep::Kind::kTest) {
          if (!RegisterAll(p[i].test)) return false;
        } else {
          RegisterAtom(p, static_cast<int>(i));
        }
      }
      path_suffix_ids_[&p] = SuffixIdsFor(p);
    }
    return true;
  }

  // Canonical key of the suffix of `p` starting at `pos`.
  std::string SuffixKey(const SimplePath& p, int pos) const {
    std::ostringstream os;
    for (size_t i = pos; i < p.size(); ++i) {
      switch (p[i].kind) {
        case SimpleStep::Kind::kDown: os << 'D'; break;
        case SimpleStep::Kind::kDownStar: os << 'S'; break;
        case SimpleStep::Kind::kTest: os << 'T' << p[i].test.get(); break;
      }
    }
    return os.str();
  }

  int RegisterAtom(const SimplePath& p, int pos) {
    std::string key = SuffixKey(p, pos);
    auto it = atom_ids_.find(key);
    if (it != atom_ids_.end()) return it->second;
    int id = static_cast<int>(atoms_.size());
    atom_ids_.emplace(std::move(key), id);
    atoms_.push_back(Atom{p[pos].kind, &p, pos});
    return id;
  }

  std::vector<int> SuffixIdsFor(const SimplePath& p) {
    std::vector<int> ids(p.size(), -1);
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i].kind != SimpleStep::Kind::kTest) {
        ids[i] = atom_ids_.at(SuffixKey(p, static_cast<int>(i)));
      }
    }
    return ids;
  }

  // --- Truth evaluation against a summary ------------------------------

  bool TruthOfNode(const NodePtr& node, int type, const BitFn& bit) const {
    switch (node->kind) {
      case NodeKind::kLabel:
        return edtd_.types()[type].concrete_label == node->label;
      case NodeKind::kTrue:
        return true;
      case NodeKind::kNot:
        return !TruthOfNode(node->child1, type, bit);
      case NodeKind::kAnd:
        return TruthOfNode(node->child1, type, bit) &&
               TruthOfNode(node->child2, type, bit);
      case NodeKind::kOr:
        return TruthOfNode(node->child1, type, bit) ||
               TruthOfNode(node->child2, type, bit);
      case NodeKind::kSome: {
        const std::vector<SimplePath>* insts = some_insts_.at(node.get());
        for (const SimplePath& p : *insts) {
          if (TruthOfSuffix(p, 0, type, bit)) return true;
        }
        return false;
      }
      case NodeKind::kPathEq:
      case NodeKind::kIsVar:
        return false;  // Unreachable after rewriting.
    }
    return false;
  }

  // Truth of the suffix of `p` starting at `pos` at a node with the given
  // summary: consume leading tests, then consult the headed-atom bit.
  bool TruthOfSuffix(const SimplePath& p, int pos, int type, const BitFn& bit) const {
    int i = pos;
    while (i < static_cast<int>(p.size()) && p[i].kind == SimpleStep::Kind::kTest) {
      if (!TruthOfNode(p[i].test, type, bit)) return false;
      ++i;
    }
    if (i == static_cast<int>(p.size())) return true;
    return bit(path_suffix_ids_.at(&p)[i]);
  }

  // Contribution of a child summary to its parent's accumulated bits.
  const Bits& ContributionOf(int summary_id) {
    while (summary_id >= static_cast<int>(contrib_.size())) {
      contrib_.push_back(ComputeContribution(static_cast<int>(contrib_.size())));
    }
    return contrib_[summary_id];
  }

  Bits ComputeContribution(int summary_id) const {
    const Summary& c = summaries_[summary_id];
    Bits out(static_cast<int>(atoms_.size()));
    BitFn bit = [&](int a) { return c.bits.Get(a); };
    for (size_t a = 0; a < atoms_.size(); ++a) {
      const Atom& atom = atoms_[a];
      if (atom.head == SimpleStep::Kind::kDown) {
        // ⟨↓/β⟩ at the parent: some child satisfies ⟨β⟩.
        if (TruthOfSuffix(*atom.path, atom.pos + 1, c.type, bit)) out.Set(a);
      } else {
        // ⟨↓*/β⟩ at the parent via a child: the child itself satisfies it.
        if (c.bits.Get(static_cast<int>(a))) out.Set(a);
      }
    }
    return out;
  }

  // Resolves the final bits of a candidate node of type `t` whose children
  // contributed `acc`: ↓-atoms are exactly `acc`; ↓*-atoms additionally
  // hold if their tail holds at the node itself (well-founded recursion,
  // Theorem 23's ≺ order).
  Bits Resolve(int type, const Bits& acc) const {
    const int n = static_cast<int>(atoms_.size());
    std::vector<int8_t> memo(n, -1);
    BitFn bit = [&](int a) -> bool { return ResolveAtom(a, type, acc, &memo); };
    Bits out(n);
    for (int a = 0; a < n; ++a) {
      if (bit(a)) out.Set(a);
    }
    return out;
  }

  bool ResolveAtom(int a, int type, const Bits& acc, std::vector<int8_t>* memo) const {
    if ((*memo)[a] >= 0) return (*memo)[a] == 1;
    (*memo)[a] = acc.Get(a) ? 1 : 0;  // Seed; breaks no cycles (the ≺ order
                                      // is well-founded), but keeps the
                                      // recursion safe regardless.
    bool value = acc.Get(a);
    if (!value && atoms_[a].head == SimpleStep::Kind::kDownStar) {
      BitFn bit = [&](int b) -> bool { return ResolveAtom(b, type, acc, memo); };
      value = TruthOfSuffix(*atoms_[a].path, atoms_[a].pos + 1, type, bit);
    }
    (*memo)[a] = value ? 1 : 0;
    return value;
  }

  // --- Realizability fixpoint ------------------------------------------

  // One pass over type `t`: explores (NFA state-set, accumulated bits)
  // pairs over the current summaries and adds every realizable summary.
  bool ExpandType(int t, bool* changed) {
    const Nfa& nfa = edtd_.ContentNfa(t);
    struct Node {
      Bits states;
      Bits acc;
      int prev = -1;      // Backpointer into `nodes`.
      int via_child = -1; // Summary id taken to reach this node.
    };
    std::vector<Node> nodes;
    std::unordered_map<std::pair<Bits, Bits>, int, BitsPairHash> seen;
    std::queue<int> work;

    auto push = [&](Bits states, Bits acc, int prev, int via) {
      auto key = std::make_pair(states, acc);
      if (seen.count(key)) return;
      int id = static_cast<int>(nodes.size());
      seen.emplace(std::move(key), id);
      nodes.push_back({std::move(states), std::move(acc), prev, via});
      work.push(id);
    };

    // Per-node NFA steps memoized by child type (valid for the node id
    // stamped in step_epoch), allocated once for the whole pass.
    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<int> step_epoch(num_types, -1);
    std::vector<Bits> step_memo(num_types);

    push(nfa.InitialSet(), Bits(static_cast<int>(atoms_.size())), -1, -1);
    while (!work.empty()) {
      // The (NFA-state-set, accumulated-bits) space explored per type is
      // itself exponential; cap it alongside the summary cap.
      if (static_cast<int64_t>(nodes.size()) > options_.max_summaries) return false;
      int id = work.front();
      work.pop();
      // Acceptance: materialize the summary.
      if (nfa.AnyAccepting(nodes[id].states)) {
        Summary s;
        s.type = t;
        s.bits = Resolve(t, nodes[id].acc);
        auto it = summary_index_.find(s);
        if (it == summary_index_.end()) {
          int sid = static_cast<int>(summaries_.size());
          summary_index_.emplace(s, sid);
          summaries_.push_back(s);
          // Record the children word for witness extraction.
          std::vector<int> word;
          for (int n = id; nodes[n].prev >= 0; n = nodes[n].prev) {
            word.push_back(nodes[n].via_child);
          }
          std::reverse(word.begin(), word.end());
          derivations_.push_back(std::move(word));
          *changed = true;
          if (static_cast<int64_t>(summaries_.size()) > options_.max_summaries) return false;
        }
      }
      // Extend by one child. Note: summaries_ may grow during this pass;
      // only the summaries present at pass start are used (the outer
      // fixpoint re-runs until stable). The NFA step depends only on the
      // summary's *type*, and many summaries share one, so steps are
      // hoisted into a per-node by-type memo.
      const size_t limit = summaries_.size();
      const Bits cur_states = nodes[id].states;  // push() may realloc nodes.
      for (size_t c = 0; c < limit; ++c) {
        const int ct = summaries_[c].type;
        if (step_epoch[ct] != id) {
          step_memo[ct] = nfa.Step(cur_states, ct);
          step_epoch[ct] = id;
        }
        const Bits& next = step_memo[ct];
        if (next.None()) continue;
        Bits acc = nodes[id].acc;
        acc.UnionWith(ContributionOf(static_cast<int>(c)));
        push(next, std::move(acc), id, static_cast<int>(c));
      }
    }
    return true;
  }

  std::vector<bool> ComputeUsableTypes() {
    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<bool> realizable(num_types, false);
    for (const Summary& s : summaries_) realizable[s.type] = true;
    std::vector<bool> usable(num_types, false);
    if (any_root_) {
      for (int t = 0; t < num_types; ++t) usable[t] = realizable[t];
      return usable;
    }
    int root = edtd_.TypeIndex(edtd_.root_type());
    usable[root] = realizable[root];
    bool changed = true;
    while (changed) {
      changed = false;
      for (int t = 0; t < num_types; ++t) {
        if (!usable[t]) continue;
        // Types reachable in one step: any type occurring in some word of
        // L(P(t)) over realizable types.
        const Nfa& nfa = edtd_.ContentNfa(t);
        for (int c = 0; c < num_types; ++c) {
          if (!realizable[c] || usable[c]) continue;
          if (WordExistsContaining(nfa, realizable, c, nullptr)) {
            usable[c] = true;
            changed = true;
          }
        }
      }
    }
    return usable;
  }

  // Is there a word over {t : allowed[t]} in L(nfa) containing `must`?
  // If `word` is non-null, the found word is stored there.
  bool WordExistsContaining(const Nfa& nfa, const std::vector<bool>& allowed, int must,
                            std::vector<int>* word) const {
    struct Node {
      Bits states;
      bool has = false;
      int prev = -1;
      int via = -1;
    };
    std::vector<Node> nodes;
    std::unordered_map<std::pair<Bits, bool>, int, BitsBoolHash> seen;
    std::queue<int> work;
    auto push = [&](Bits states, bool has, int prev, int via) {
      auto key = std::make_pair(states, has);
      if (seen.count(key)) return;
      int id = static_cast<int>(nodes.size());
      seen.emplace(std::move(key), id);
      nodes.push_back({std::move(states), has, prev, via});
      work.push(id);
    };
    push(nfa.InitialSet(), false, -1, -1);
    while (!work.empty()) {
      int id = work.front();
      work.pop();
      if (nodes[id].has && nfa.AnyAccepting(nodes[id].states)) {
        if (word != nullptr) {
          for (int n = id; nodes[n].prev >= 0; n = nodes[n].prev) word->push_back(nodes[n].via);
          std::reverse(word->begin(), word->end());
        }
        return true;
      }
      for (size_t c = 0; c < allowed.size(); ++c) {
        if (!allowed[c]) continue;
        Bits next = nfa.Step(nodes[id].states, static_cast<int>(c));
        if (next.None()) continue;
        push(std::move(next), nodes[id].has || static_cast<int>(c) == must,
             id, static_cast<int>(c));
      }
    }
    return false;
  }

  // --- Witness construction --------------------------------------------

  // Expands summary `sid` as a subtree under `parent` via its stored
  // derivation word.
  void ExpandSummary(int sid, XmlTree* tree, NodeId node) const {
    for (int child : derivations_[sid]) {
      NodeId c = tree->AddChild(node, edtd_.types()[summaries_[child].type].concrete_label);
      ExpandSummary(child, tree, c);
    }
  }

  XmlTree BuildWitness(int target_sid, const std::vector<bool>& /*usable*/) {
    const int num_types = static_cast<int>(edtd_.types().size());
    std::vector<bool> realizable(num_types, false);
    for (const Summary& s : summaries_) realizable[s.type] = true;

    const int target_type = summaries_[target_sid].type;
    // Chain of types from a root to target_type (BFS over usable types).
    std::vector<int> parent(num_types, -1);
    std::vector<bool> visited(num_types, false);
    std::queue<int> q;
    int start = any_root_ ? target_type : edtd_.TypeIndex(edtd_.root_type());
    if (any_root_) {
      // The target itself can be the root.
      XmlTree tree(edtd_.types()[target_type].concrete_label);
      ExpandSummary(target_sid, &tree, tree.root());
      return tree;
    }
    visited[start] = true;
    q.push(start);
    while (!q.empty()) {
      int t = q.front();
      q.pop();
      if (t == target_type) break;
      const Nfa& nfa = edtd_.ContentNfa(t);
      for (int c = 0; c < num_types; ++c) {
        if (visited[c] || !realizable[c]) continue;
        if (WordExistsContaining(nfa, realizable, c, nullptr)) {
          visited[c] = true;
          parent[c] = t;
          q.push(c);
        }
      }
    }
    // Path root = t0 → t1 → … → target.
    std::vector<int> chain;
    for (int t = target_type; t != -1; t = parent[t]) chain.push_back(t);
    std::reverse(chain.begin(), chain.end());

    XmlTree tree(edtd_.types()[chain[0]].concrete_label);
    NodeId at = tree.root();
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      // Children word of chain[i] containing chain[i+1].
      std::vector<int> word;
      bool ok = WordExistsContaining(edtd_.ContentNfa(chain[i]), realizable, chain[i + 1], &word);
      assert(ok);
      (void)ok;
      NodeId next_at = kNoNode;
      for (int ct : word) {
        NodeId c = tree.AddChild(at, edtd_.types()[ct].concrete_label);
        if (ct == chain[i + 1] && next_at == kNoNode) {
          next_at = c;
          if (i + 2 == chain.size()) {
            // Deepest level: expand the target summary here.
            ExpandSummary(target_sid, &tree, c);
          }
        } else {
          // Fill with any realizable summary of type ct.
          for (size_t s = 0; s < summaries_.size(); ++s) {
            if (summaries_[s].type == ct) {
              ExpandSummary(static_cast<int>(s), &tree, c);
              break;
            }
          }
        }
      }
      at = next_at;
    }
    if (chain.size() == 1) ExpandSummary(target_sid, &tree, at);
    return tree;
  }

  DownwardSatOptions options_;
  const Edtd& edtd_;
  bool any_root_ = false;
  NodePtr phi_;
  bool supported_ = true;

  // inst(α) storage and atom registry.
  std::vector<std::shared_ptr<std::vector<SimplePath>>> inst_storage_;
  std::map<const NodeExpr*, const std::vector<SimplePath>*> some_insts_;
  std::map<std::string, int> atom_ids_;
  std::vector<Atom> atoms_;
  std::map<const SimplePath*, std::vector<int>> path_suffix_ids_;

  // Fixpoint state.
  std::vector<Summary> summaries_;
  std::unordered_map<Summary, int, SummaryHash> summary_index_;
  std::vector<std::vector<int>> derivations_;
  std::vector<Bits> contrib_;
};

}  // namespace

namespace {

SatResult RecordDownward(SatResult r) {
  StatsAdd(Metric::kSatDownwardSummaries, r.explored_states);
  StatsGaugeMax(Metric::kSatPeakExploredStates, r.explored_states);
  return r;
}

}  // namespace

SatResult DownwardSatisfiableWithEdtd(const NodePtr& phi, const Edtd& edtd,
                                      const DownwardSatOptions& options) {
  StatsTimer timer(Metric::kSatDownward);
  DownwardEngine engine(phi, edtd, /*any_root=*/false, options);
  return RecordDownward(engine.Run());
}

SatResult DownwardSatisfiable(const NodePtr& phi, const DownwardSatOptions& options) {
  std::set<std::string> labels = Labels(phi);
  labels.insert(FreshLabel(labels, "_other"));
  // Free schema: every label, any children.
  std::vector<Edtd::TypeDef> types;
  RegexPtr any;
  for (const std::string& l : labels) any = any ? RxUnion(any, RxSymbol(l)) : RxSymbol(l);
  for (const std::string& l : labels) types.push_back({l, RxStar(any), l});
  Edtd free_schema(std::move(types), *labels.begin());
  StatsTimer timer(Metric::kSatDownward);
  DownwardEngine engine(phi, free_schema, /*any_root=*/true, options);
  return RecordDownward(engine.Run());
}

}  // namespace xpc
