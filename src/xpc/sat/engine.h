#ifndef XPC_SAT_ENGINE_H_
#define XPC_SAT_ENGINE_H_

#include <optional>
#include <string>

#include "xpc/common/stats.h"
#include "xpc/tree/xml_tree.h"

namespace xpc {

/// Outcome of a satisfiability / containment query.
enum class SolveStatus {
  kSat,            ///< Satisfiable (witness may be attached).
  kUnsat,          ///< Unsatisfiable (definitive).
  kResourceLimit,  ///< Gave up within the configured limits (bounded
                   ///< engines, or state-space caps) — answer unknown.
};

const char* SolveStatusName(SolveStatus status);

/// A satisfiability verdict with an optional witness tree. For containment
/// queries the witness is a counterexample tree.
struct SatResult {
  SolveStatus status = SolveStatus::kResourceLimit;
  std::optional<XmlTree> witness;
  /// Engine statistics (for the benchmark harness).
  int64_t explored_states = 0;
  std::string engine;
  /// Full telemetry of producing this answer: per-phase wall times, peak
  /// automaton sizes, explored-state counts (all-zero with XPC_STATS=OFF).
  StatsSnapshot stats;
};

}  // namespace xpc

#endif  // XPC_SAT_ENGINE_H_
