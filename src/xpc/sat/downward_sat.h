#ifndef XPC_SAT_DOWNWARD_SAT_H_
#define XPC_SAT_DOWNWARD_SAT_H_

#include "xpc/edtd/edtd.h"
#include "xpc/sat/engine.h"
#include "xpc/xpath/ast.h"

namespace xpc {

/// Resource limits for the downward engine.
struct DownwardSatOptions {
  int64_t max_inst_paths = 200'000;  ///< Cap on |inst(α)| per ⟨α⟩ (Lemma 20).
  int64_t max_summaries = 500'000;   ///< Cap on distinct (type, bits) summaries.
  int64_t max_atoms = 500'000;       ///< Cap on registered suffix atoms.
  bool want_witness = true;
  /// Threads for the realizability fixpoint: each worklist generation of
  /// dirty types is expanded on a pool and merged in fixed (type-ascending)
  /// order, so verdicts *and witnesses* are bit-identical to a serial run
  /// (a property the reference cross-check test asserts). 1 = serial
  /// (default); 0 = one per hardware thread (capped at 8); n > 1 = exactly n.
  int sat_threads = 1;
};

/// The EXPSPACE decision procedure for CoreXPath↓(∩) with respect to EDTDs
/// (Section 5, Figure 2), implemented as a deterministic bottom-up
/// realizability fixpoint over *complete types*:
///
///  - path expressions are instantiated into unions of simple paths
///    (inst/int of Lemma 20);
///  - a node's complete type is (abstract EDTD label, truth of every
///    ↓- or ↓*-headed suffix atom of aux(φ₀)) — all other members of
///    cl(φ₀) are derived;
///  - a summary is realizable iff some children word accepted by the
///    content model yields exactly its atom bits (the paper's demand /
///    compatibility conditions become an exact computation when the search
///    runs over (NFA state-set, accumulated-bits) pairs);
///  - φ₀ is satisfiable iff some realizable summary satisfies φ₀ and its
///    type is reachable from the root type through realizable content
///    words.
///
/// Path equalities are first rewritten as α ≈ β ⇝ ⟨α ∩ β⟩. Inputs outside
/// CoreXPath↓(∩, ≈) yield kResourceLimit with engine "downward-sat:unsupported".
SatResult DownwardSatisfiableWithEdtd(const NodePtr& phi, const Edtd& edtd,
                                      const DownwardSatOptions& options = {});

/// Satisfiability without a schema: runs the same engine against the
/// nonrestrictive schema over the formula's labels plus a fresh label, with
/// every label admissible at the root (the Proposition 5 reduction,
/// simplified — a downward formula holds at a node iff it holds at the root
/// of that node's subtree).
SatResult DownwardSatisfiable(const NodePtr& phi, const DownwardSatOptions& options = {});

}  // namespace xpc

#endif  // XPC_SAT_DOWNWARD_SAT_H_
