#include "xpc/sat/engine.h"

namespace xpc {

const char* SolveStatusName(SolveStatus status) {
  switch (status) {
    case SolveStatus::kSat: return "sat";
    case SolveStatus::kUnsat: return "unsat";
    case SolveStatus::kResourceLimit: return "unknown";
  }
  return "?";
}

}  // namespace xpc
