#ifndef XPC_SAT_LOOP_SAT_H_
#define XPC_SAT_LOOP_SAT_H_

#include "xpc/pathauto/lexpr.h"
#include "xpc/sat/engine.h"

namespace xpc {

/// Resource limits for the loop-satisfiability engine.
struct LoopSatOptions {
  /// Cap on the total number of node summaries explored across all strata.
  int64_t max_items = 2'000'000;
  /// Cap on the number of context (U) values discovered per automaton.
  int64_t max_pool = 200'000;
  /// Extract a witness tree on SAT.
  bool want_witness = true;
};

/// The EXPTIME satisfiability engine for CoreXPath_NFA(*, loop)
/// (Theorem 13), implemented as a bottom-up realizability fixpoint over
/// node summaries on the FCNS view — the finite-tree counterpart of the
/// paper's 2ATA emptiness test (Theorem 10).
///
/// A summary of a node v is (label, D₁..D_K, U₁..U_K) where, per automaton
/// π_k (strata ordered so that π_k's tests mention only lower strata),
/// D_k(v) collects the loops of π_k below v and U_k(v) the first-return
/// excursions above v (Lemma 11 split into two passes). The algorithm:
///
///   for each stratum k: compute the set of realizable "prefix summaries"
///   (label, D₁..D_k, U₁..U_{k−1}) bottom-up (D_k never depends on U_k, so
///   this is well-founded), then generate the pool of possible U_k values
///   top-down from parent configurations (U_k(root) = ∅; U_k(child) is a
///   function of the parent's tests, the sibling's D_k, and the parent's
///   U_k). Finally, re-run the bottom-up fixpoint with full child-U
///   consistency checks over the discovered pools.
///
/// φ is satisfiable iff some final summary with all-empty U (= FCNS root:
/// no parent, no siblings), derivable with the next-sibling slot absent, and
/// satisfying the SomewhereInTree(φ) wrapper exists. On SAT a witness tree
/// is reconstructed from the derivation.
///
/// The engine is sound and complete; `kResourceLimit` is returned only when
/// the configured caps are hit.
SatResult LoopSatisfiable(const LExprPtr& phi, const LoopSatOptions& options = {});

}  // namespace xpc

#endif  // XPC_SAT_LOOP_SAT_H_
