#include "xpc/sat/loop_sat.h"

#include <cassert>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "xpc/common/stats.h"
#include "xpc/pathauto/normal_form.h"
#include "xpc/pathauto/state_relation.h"

namespace xpc {

namespace {

// A node summary: (label, D per automaton stratum, U per stratum). U
// components are always pool members and are stored as pool indices, which
// makes the child-U consistency checks integer comparisons.
struct Item {
  int label = 0;
  std::vector<StateRel> d;
  std::vector<int> u_ids;

  bool operator==(const Item& o) const {
    return label == o.label && u_ids == o.u_ids && d == o.d;
  }

  size_t Hash() const {
    size_t h = static_cast<size_t>(label) * 0x9e3779b97f4a7c15ULL;
    for (const StateRel& r : d) h = h * 1099511628211ULL + r.Hash();
    for (int u : u_ids) h = h * 1099511628211ULL + static_cast<size_t>(u + 1);
    return h;
  }
};

struct ItemHash {
  size_t operator()(const Item& i) const { return i.Hash(); }
};

// Move matrices and test transitions of one automaton stratum.
struct AutoData {
  PathAutoPtr automaton;
  int nq = 0;
  StateRel down1, up1, right, left;
  struct TestEdge {
    int from;
    LExprPtr test;
    int to;
  };
  std::vector<TestEdge> tests;
};

// Derivation backpointers for witness reconstruction.
struct Derivation {
  int fc = -1;
  int ns = -1;
};

// An interning table for state relations.
class RelTable {
 public:
  int Intern(const StateRel& r) {
    auto [it, inserted] = ids_.emplace(r, static_cast<int>(rels_.size()));
    if (inserted) rels_.push_back(r);
    return it->second;
  }
  // Lookup without inserting; -1 if unknown.
  int Find(const StateRel& r) const {
    auto it = ids_.find(r);
    return it == ids_.end() ? -1 : it->second;
  }
  const StateRel& Get(int id) const { return rels_[id]; }
  int size() const { return static_cast<int>(rels_.size()); }
  void Clear() {
    ids_.clear();
    rels_.clear();
  }

 private:
  std::map<StateRel, int> ids_;
  std::vector<StateRel> rels_;
};

class LoopSatEngine {
 public:
  LoopSatEngine(const LExprPtr& phi, const LoopSatOptions& options)
      : options_(options), target_(MergeStrataAutomata(SomewhereInTree(phi))) {
    // Label table: labels of φ plus one fresh label (Proposition 4's
    // argument: labels not occurring in φ are interchangeable, so one
    // representative label suffices).
    for (const std::string& l : CollectLabels(target_)) labels_.push_back(l);
    labels_.push_back("_other");

    for (const PathAutoPtr& a : CollectAutomata(target_)) {
      AutoData data;
      data.automaton = a;
      data.nq = a->num_states;
      data.down1 = StateRel(data.nq);
      data.up1 = StateRel(data.nq);
      data.right = StateRel(data.nq);
      data.left = StateRel(data.nq);
      for (const PathAutomaton::Transition& t : a->transitions) {
        switch (t.move) {
          case Move::kDown1: data.down1.Set(t.from, t.to); break;
          case Move::kUp1: data.up1.Set(t.from, t.to); break;
          case Move::kRight: data.right.Set(t.from, t.to); break;
          case Move::kLeft: data.left.Set(t.from, t.to); break;
          case Move::kTest: data.tests.push_back({t.from, t.test, t.to}); break;
        }
      }
      auto_index_[a.get()] = static_cast<int>(autos_.size());
      autos_.push_back(std::move(data));
    }
  }

  SatResult Run() {
    const int num_autos = static_cast<int>(autos_.size());
    pools_.assign(num_autos, RelTable());
    for (int k = 0; k < num_autos; ++k) {
      // Prefix phase at level k+1: summaries (label, d[0..k], u[0..k-1]).
      if (!ComputeItems(k + 1, /*final_phase=*/false, nullptr, nullptr)) return Limit();
      if (!GrowPool(k)) return Limit();
    }
    // Final phase: full consistency, SAT detection, derivation tracking.
    std::vector<Derivation> derivs;
    int sat_index = -1;
    if (!ComputeItems(num_autos, /*final_phase=*/true, &derivs, &sat_index)) return Limit();

    SatResult result;
    result.engine = "loop-sat";
    result.explored_states = explored_;
    if (sat_index < 0) {
      result.status = SolveStatus::kUnsat;
      return result;
    }
    result.status = SolveStatus::kSat;
    if (options_.want_witness) {
      XmlTree tree(labels_[items_[sat_index].label]);
      if (derivs[sat_index].fc >= 0) {
        BuildSubtree(derivs, derivs[sat_index].fc, &tree, tree.root());
      }
      result.witness = std::move(tree);
    }
    return result;
  }

 private:
  SatResult Limit() {
    SatResult r;
    r.engine = "loop-sat";
    r.status = SolveStatus::kResourceLimit;
    r.explored_states = explored_;
    return r;
  }

  // Truth of `e` at a node with the given label, where the loop relation of
  // stratum j is supplied in loops[j] (entries beyond the known strata are
  // never consulted because tests are stratified).
  bool EvalTest(const LExprPtr& e, int label, const std::vector<StateRel>& loops) const {
    switch (e->kind) {
      case LExpr::Kind::kLabel:
        return labels_[label] == e->label;
      case LExpr::Kind::kTrue:
        return true;
      case LExpr::Kind::kNot:
        return !EvalTest(e->a, label, loops);
      case LExpr::Kind::kAnd:
        return EvalTest(e->a, label, loops) && EvalTest(e->b, label, loops);
      case LExpr::Kind::kOr:
        return EvalTest(e->a, label, loops) || EvalTest(e->b, label, loops);
      case LExpr::Kind::kLoop: {
        const int j = auto_index_.at(e->automaton.get());
        assert(j < static_cast<int>(loops.size()));
        return loops[j].Get(e->q_from, e->q_to);
      }
    }
    return false;
  }

  // Test-step generator matrix T for automaton stratum `j`.
  StateRel TestRel(int j, int label, const std::vector<StateRel>& loops) const {
    const AutoData& a = autos_[j];
    StateRel t(a.nq);
    for (const AutoData::TestEdge& e : a.tests) {
      if (EvalTest(e.test, label, loops)) t.Set(e.from, e.to);
    }
    return t;
  }

  // Expected pool id of the child U in slot `side` (0 = first child, 1 =
  // next sibling), given the parent's interned test matrix `t_id`, the
  // *other* child's excursion matrix id (`other_exc_id`, -1 if absent), and
  // the parent's own U pool id. Returns -2 if the expected relation is not
  // a pool member (then no child can match). Memoized.
  int ExpectedChildUId(int j, int t_id, int other_exc_id, int u_id, int side) {
    uint64_t key = ((static_cast<uint64_t>(t_id) * 2097152 + (other_exc_id + 1)) * 2097152 +
                    u_id) * 2 + side;
    auto it = expected_memo_[j].find(key);
    if (it != expected_memo_[j].end()) return it->second;
    const AutoData& a = autos_[j];
    StateRel m = test_table_[j].Get(t_id);
    if (other_exc_id >= 0) m.UnionWith(exc_table_[j].Get(other_exc_id));
    m.UnionWith(pools_[j].Get(u_id));
    m.CloseReflexiveTransitive();
    StateRel expected = side == 0 ? a.up1.Compose(m).Compose(a.down1)
                                  : a.left.Compose(m).Compose(a.right);
    int id = pools_[j].Find(expected);
    if (id < 0) id = -2;
    expected_memo_[j].emplace(key, id);
    return id;
  }

  // Interleaved bottom-up derivation: d[j] is computed from the children's
  // excursion matrices and the tests (which depend only on lower strata),
  // then u[j] is chosen from the pool with immediate child-consistency
  // pruning. `loops` accumulates L_j = closure(d_j ∪ u_j) for test
  // evaluation at higher strata.
  bool Extend(int j, int level, int u_size, Item* partial, std::vector<StateRel>* loops,
              int fc_id, int ns_id, const std::function<bool(const Item&)>& f) {
    if (j == level) return f(*partial);
    const AutoData& a = autos_[j];
    StateRel tests = TestRel(j, partial->label, *loops);
    StateRel d = tests;
    if (fc_id >= 0) d.UnionWith(exc_table_[j].Get(item_exc_[fc_id][j].as_fc));
    if (ns_id >= 0) d.UnionWith(exc_table_[j].Get(item_exc_[ns_id][j].as_ns));
    d.CloseReflexiveTransitive();
    partial->d.push_back(d);

    bool ok = true;
    if (j >= u_size) {
      // Last stratum of a prefix phase carries no U component; its L entry
      // is never consulted (no higher strata in this phase).
      loops->push_back(StateRel(a.nq));
      ok = Extend(j + 1, level, u_size, partial, loops, fc_id, ns_id, f);
      loops->pop_back();
    } else {
      const int t_id = test_table_[j].Intern(tests);
      const int fc_exc_ns = fc_id >= 0 ? item_exc_[fc_id][j].as_fc : -1;
      const int ns_exc = ns_id >= 0 ? item_exc_[ns_id][j].as_ns : -1;
      for (int u_id = 0; ok && u_id < pools_[j].size(); ++u_id) {
        if (fc_id >= 0 &&
            ExpectedChildUId(j, t_id, ns_exc, u_id, 0) != items_[fc_id].u_ids[j]) {
          continue;
        }
        if (ns_id >= 0 &&
            ExpectedChildUId(j, t_id, fc_exc_ns, u_id, 1) != items_[ns_id].u_ids[j]) {
          continue;
        }
        partial->u_ids.push_back(u_id);
        StateRel l = d;
        l.UnionWith(pools_[j].Get(u_id));
        l.CloseReflexiveTransitive();
        loops->push_back(std::move(l));
        ok = Extend(j + 1, level, u_size, partial, loops, fc_id, ns_id, f);
        loops->pop_back();
        partial->u_ids.pop_back();
      }
    }
    partial->d.pop_back();
    return ok;
  }

  // Full loop relations of an item (closure(d_j ∪ u_j) per stratum).
  std::vector<StateRel> LoopsOf(const Item& item) const {
    std::vector<StateRel> loops;
    for (size_t j = 0; j < item.d.size(); ++j) {
      StateRel l = item.d[j];
      if (j < item.u_ids.size()) l.UnionWith(pools_[j].Get(item.u_ids[j]));
      l.CloseReflexiveTransitive();
      loops.push_back(std::move(l));
    }
    return loops;
  }

  // Bottom-up realizability fixpoint at `level` strata. Fills items_ /
  // item-excursion caches; in the final phase records derivations and
  // checks the SAT condition.
  bool ComputeItems(int level, bool final_phase, std::vector<Derivation>* derivs,
                    int* sat_index) {
    const int u_size = final_phase ? level : level - 1;
    items_.clear();
    item_exc_.clear();
    item_index_.clear();
    for (int j = 0; j < static_cast<int>(autos_.size()); ++j) {
      test_table_[j].Clear();
      expected_memo_[j].clear();
    }
    std::vector<char> is_root_candidate;

    auto sat_found = [&] { return final_phase && sat_index != nullptr && *sat_index >= 0; };

    auto add_item = [&](const Item& item, int fc, int ns) -> bool {
      auto it = item_index_.find(item);
      int id;
      if (it == item_index_.end()) {
        id = static_cast<int>(items_.size());
        item_index_.emplace(item, id);
        items_.push_back(item);
        // Cache both excursion-orientation matrices per stratum.
        std::vector<ExcIds> exc(level);
        for (int j = 0; j < level; ++j) {
          const AutoData& a = autos_[j];
          exc[j].as_fc = exc_table_[j].Intern(a.down1.Compose(item.d[j]).Compose(a.up1));
          exc[j].as_ns = exc_table_[j].Intern(a.right.Compose(item.d[j]).Compose(a.left));
        }
        item_exc_.push_back(std::move(exc));
        if (derivs != nullptr) derivs->push_back({fc, ns});
        is_root_candidate.push_back(ns < 0 ? 1 : 0);
        ++explored_;
      } else {
        id = it->second;
        if (ns < 0 && !is_root_candidate[id]) {
          is_root_candidate[id] = 1;
          if (derivs != nullptr) (*derivs)[id] = {fc, ns};
        }
      }
      if (final_phase && sat_index != nullptr && *sat_index < 0 && is_root_candidate[id]) {
        // SAT condition: an FCNS root — all U components empty (no parent,
        // no left sibling) — whose loop relations satisfy the target.
        bool all_empty = true;
        for (int j = 0; j < u_size; ++j) {
          all_empty = all_empty && pools_[j].Get(items_[id].u_ids[j]) == StateRel(autos_[j].nq);
        }
        if (all_empty &&
            EvalTest(target_, items_[id].label, LoopsOf(items_[id]))) {
          *sat_index = id;
        }
      }
      return explored_ < options_.max_items && !sat_found();
    };

    const int num_labels = static_cast<int>(labels_.size());
    std::vector<StateRel> loops;
    auto try_children = [&](int fc_id, int ns_id) -> bool {
      for (int label = 0; label < num_labels; ++label) {
        Item partial;
        partial.label = label;
        loops.clear();
        bool ok = Extend(0, level, u_size, &partial, &loops, fc_id, ns_id,
                         [&](const Item& item) { return add_item(item, fc_id, ns_id); });
        if (!ok) return false;
      }
      return true;
    };

    if (!try_children(-1, -1)) return sat_found();
    size_t processed = 0;
    while (processed < items_.size()) {
      if (sat_found()) return true;
      const int current = static_cast<int>(processed);
      ++processed;
      if (!try_children(current, -1)) return sat_found();
      if (!try_children(-1, current)) return sat_found();
      for (int other = 0; other < static_cast<int>(processed); ++other) {
        if (!try_children(current, other)) return sat_found();
        if (other != current && !try_children(other, current)) return sat_found();
      }
    }
    return true;
  }

  // Grows pool_k from parent configurations over the current (prefix)
  // items, as a worklist fixpoint over deduplicated base matrices
  // T_parent ∪ excursion(other child).
  bool GrowPool(int k) {
    const AutoData& a = autos_[k];
    // Deduplicate by interned (test-matrix id, excursion id) pairs before
    // materializing matrices: the quadratic items x items loop then only
    // touches integers.
    std::set<int> t_ids;
    std::set<int> exc_ids[2];  // [0]: excursion as next sibling; [1]: as first child.
    exc_ids[0].insert(-1);
    exc_ids[1].insert(-1);
    for (const Item& parent : items_) {
      t_ids.insert(test_table_[k].Intern(TestRel(k, parent.label, LoopsOf(parent))));
    }
    for (const auto& exc : item_exc_) {
      exc_ids[0].insert(exc[k].as_ns);
      exc_ids[1].insert(exc[k].as_fc);
    }
    std::set<StateRel> base_set[2];
    for (int t_id : t_ids) {
      for (int side = 0; side < 2; ++side) {
        for (int exc_id : exc_ids[side]) {
          StateRel base = test_table_[k].Get(t_id);
          if (exc_id >= 0) base.UnionWith(exc_table_[k].Get(exc_id));
          base_set[side].insert(std::move(base));
        }
      }
    }

    RelTable& pool = pools_[k];
    std::vector<int> worklist;
    worklist.push_back(pool.Intern(StateRel(a.nq)));  // U_k(root) = ∅.
    while (!worklist.empty()) {
      StateRel u = pool.Get(worklist.back());
      worklist.pop_back();
      for (int side = 0; side < 2; ++side) {
        for (const StateRel& base : base_set[side]) {
          StateRel m = base;
          m.UnionWith(u);
          m.CloseReflexiveTransitive();
          StateRel expected = side == 0 ? a.up1.Compose(m).Compose(a.down1)
                                        : a.left.Compose(m).Compose(a.right);
          int before = pool.size();
          int id = pool.Intern(expected);
          if (pool.size() > before) {
            worklist.push_back(id);
            if (pool.size() > options_.max_pool) return false;
          }
        }
      }
    }
    return true;
  }

  void BuildSubtree(const std::vector<Derivation>& derivs, int item_id, XmlTree* tree,
                    NodeId parent) const {
    NodeId node = tree->AddChild(parent, labels_[items_[item_id].label]);
    if (derivs[item_id].fc >= 0) BuildSubtree(derivs, derivs[item_id].fc, tree, node);
    if (derivs[item_id].ns >= 0) BuildSubtree(derivs, derivs[item_id].ns, tree, parent);
  }

  struct ExcIds {
    int as_fc = -1;
    int as_ns = -1;
  };

  LoopSatOptions options_;
  LExprPtr target_;
  std::vector<std::string> labels_;
  std::vector<AutoData> autos_;
  std::map<const PathAutomaton*, int> auto_index_;

  std::vector<RelTable> pools_;
  // Per-stratum interning tables and memos (keyed by stratum index;
  // operator[] default-constructs). The excursion table persists across
  // phases (the matrices are phase-independent); test tables and the
  // expected-U memo are cleared per phase because their ids are reassigned.
  std::map<int, RelTable> exc_table_;
  std::map<int, RelTable> test_table_;
  std::map<int, std::unordered_map<uint64_t, int>> expected_memo_;

  // Items of the current phase.
  std::vector<Item> items_;
  std::vector<std::vector<ExcIds>> item_exc_;
  std::unordered_map<Item, int, ItemHash> item_index_;

  int64_t explored_ = 0;
};

}  // namespace

SatResult LoopSatisfiable(const LExprPtr& phi, const LoopSatOptions& options) {
  StatsTimer timer(Metric::kSatLoop);
  LoopSatEngine engine(phi, options);
  SatResult r = engine.Run();
  StatsAdd(Metric::kSatLoopItems, r.explored_states);
  StatsGaugeMax(Metric::kSatPeakExploredStates, r.explored_states);
  return r;
}

}  // namespace xpc
